#!/usr/bin/env python3
"""One-shot NDJSON client for ems_serve --tcp.

Reads request lines from stdin, sends them over one TCP connection,
half-closes the write side, and prints every response line the server
answers with. Exit 0 iff one response arrived per request.

    printf '{"id":"j1",...}\n' | python3 scripts/tcp_once.py HOST:PORT
"""
import socket
import sys


def main() -> int:
    if len(sys.argv) != 2 or ":" not in sys.argv[1]:
        print(f"usage: {sys.argv[0]} HOST:PORT < requests.ndjson",
              file=sys.stderr)
        return 2
    host, port = sys.argv[1].rsplit(":", 1)
    requests = [line for line in sys.stdin.read().splitlines() if line.strip()]

    with socket.create_connection((host, int(port)), timeout=60) as sock:
        sock.sendall(("".join(r + "\n" for r in requests)).encode())
        sock.shutdown(socket.SHUT_WR)
        buf = b""
        while True:
            chunk = sock.recv(65536)
            if not chunk:
                break
            buf = buf + chunk

    responses = [line for line in buf.decode().splitlines() if line.strip()]
    for line in responses:
        print(line)
    if len(responses) != len(requests):
        print(f"expected {len(requests)} responses, got {len(responses)}",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
