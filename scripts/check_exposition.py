#!/usr/bin/env python3
"""Lint a Prometheus text exposition document (ems_serve --stats-out).

Checks the grammar the scrape side depends on:
  * every line is a comment (# HELP / # TYPE), blank, or `name value`
    with a finite value and a metric name matching [a-zA-Z_][a-zA-Z0-9_]*
    (an optional {labels} block must balance and quote its values);
  * a # TYPE line precedes the first sample of each metric family;
  * counter samples end in _total;
  * histogram bucket counts are cumulative (non-decreasing as `le`
    rises) and every histogram has an le="+Inf" bucket whose count
    equals its _count sample;
  * summaries expose quantile labels with values in [0, 1].

Usage: check_exposition.py FILE [--require-metric NAME]...
Exits nonzero with one message per violation.
"""

import argparse
import math
import re
import sys

NAME_RE = re.compile(r"[a-zA-Z_][a-zA-Z0-9_]*")
SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_][a-zA-Z0-9_]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r" (?P<value>\S+)$"
)
LABEL_RE = re.compile(r'^([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"$')


def parse_labels(raw):
    """`a="x",b="y"` -> dict, or None on malformed labels."""
    if raw is None or raw == "":
        return {}
    labels = {}
    # Split on commas outside quotes.
    parts, depth, cur = [], False, ""
    for ch in raw:
        if ch == '"':
            depth = not depth
        if ch == "," and not depth:
            parts.append(cur)
            cur = ""
        else:
            cur += ch
    parts.append(cur)
    for part in parts:
        m = LABEL_RE.match(part.strip())
        if m is None:
            return None
        labels[m.group(1)] = m.group(2)
    return labels


def base_family(name):
    """Sample name -> metric family (strips histogram/summary suffixes)."""
    for suffix in ("_bucket", "_sum", "_count", "_total"):
        if name.endswith(suffix):
            return name[: -len(suffix)]
    return name


def le_key(value):
    return math.inf if value == "+Inf" else float(value)


def lint(path, required):
    errors = []
    types = {}  # family -> declared type
    first_sample_line = {}  # family -> line number of first sample
    buckets = {}  # family -> list of (le, count)
    counts = {}  # family -> _count value
    with open(path, encoding="utf-8") as f:
        lines = f.read().splitlines()
    if not lines:
        return ["empty exposition document"]

    seen_names = set()
    for lineno, line in enumerate(lines, start=1):
        if line == "" or line.strip() == "":
            continue
        if line.startswith("#"):
            fields = line.split(None, 3)
            if len(fields) >= 3 and fields[1] == "TYPE":
                family = fields[2]
                kind = fields[3] if len(fields) > 3 else ""
                if kind not in ("counter", "gauge", "histogram", "summary",
                                "untyped"):
                    errors.append(f"{lineno}: unknown TYPE '{kind}'")
                if family in first_sample_line:
                    errors.append(
                        f"{lineno}: TYPE for '{family}' after its first "
                        f"sample (line {first_sample_line[family]})")
                types[family] = kind
            continue
        m = SAMPLE_RE.match(line)
        if m is None:
            errors.append(f"{lineno}: unparseable sample line: {line!r}")
            continue
        name = m.group("name")
        labels = parse_labels(m.group("labels"))
        if labels is None:
            errors.append(f"{lineno}: malformed labels: {line!r}")
            continue
        try:
            value = float(m.group("value"))
        except ValueError:
            errors.append(f"{lineno}: non-numeric value: {line!r}")
            continue
        if math.isnan(value) or math.isinf(value):
            errors.append(f"{lineno}: non-finite value: {line!r}")
        family = base_family(name)
        first_sample_line.setdefault(name, lineno)
        first_sample_line.setdefault(family, lineno)
        seen_names.add(name)
        seen_names.add(family)

        # Counters declare TYPE under their full name (`# TYPE x_total
        # counter`); histograms/summaries declare the base family that
        # their _bucket/_sum/_count samples hang off. Accept either.
        kind = types.get(name)
        if kind is None:
            kind = types.get(family)
        if kind is None:
            errors.append(f"{lineno}: sample '{name}' has no preceding "
                          f"# TYPE {family}")
            continue
        if kind == "counter":
            if not name.endswith("_total"):
                errors.append(
                    f"{lineno}: counter sample '{name}' must end in _total")
            if value < 0:
                errors.append(f"{lineno}: negative counter: {line!r}")
        elif kind == "histogram" and name.endswith("_bucket"):
            le = labels.get("le")
            if le is None:
                errors.append(f"{lineno}: histogram bucket without le label")
            else:
                try:
                    buckets.setdefault(family, []).append(
                        (le_key(le), value, lineno))
                except ValueError:
                    errors.append(f"{lineno}: bad le value '{le}'")
        elif kind == "histogram" and name.endswith("_count"):
            counts[family] = (value, lineno)
        elif kind == "summary" and name == family:
            q = labels.get("quantile")
            if q is None:
                errors.append(
                    f"{lineno}: summary sample without quantile label")
            else:
                try:
                    qv = float(q)
                    if not 0.0 <= qv <= 1.0:
                        errors.append(
                            f"{lineno}: quantile {q} outside [0, 1]")
                except ValueError:
                    errors.append(f"{lineno}: bad quantile '{q}'")

    for family, entries in buckets.items():
        entries.sort(key=lambda e: e[0])
        prev = -1.0
        for le, value, lineno in entries:
            if value < prev:
                errors.append(
                    f"{lineno}: histogram '{family}' buckets not cumulative "
                    f"(le={le}: {value} < {prev})")
            prev = value
        if not entries or entries[-1][0] != math.inf:
            errors.append(f"histogram '{family}' is missing an le=\"+Inf\" "
                          f"bucket")
        elif family in counts and entries[-1][1] != counts[family][0]:
            errors.append(
                f"histogram '{family}': +Inf bucket ({entries[-1][1]}) != "
                f"_count ({counts[family][0]})")

    for name in required:
        if name not in seen_names:
            errors.append(f"required metric '{name}' not found")
    return errors


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("file")
    parser.add_argument("--require-metric", action="append", default=[],
                        help="fail unless this metric name appears")
    args = parser.parse_args()
    errors = lint(args.file, args.require_metric)
    for err in errors:
        print(f"{args.file}:{err}", file=sys.stderr)
    if errors:
        print(f"{len(errors)} exposition violation(s)", file=sys.stderr)
        return 1
    print(f"{args.file}: exposition OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
