#!/usr/bin/env bash
# Full verification: configure, build, run every test and every bench.
# Usage: scripts/check.sh [--quick]   (--quick scales the bench corpora down)
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build
ctest --test-dir build --output-on-failure

if [[ "${1:-}" == "--quick" ]]; then
  export EMS_BENCH_SCALE=0.2
  export EMS_BENCH_PAIRS_PER_SIZE=2
fi
for b in build/bench/*; do
  [[ -f "$b" && -x "$b" ]] && "$b"
done
echo "all checks passed"
