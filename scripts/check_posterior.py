#!/usr/bin/env python3
"""Sanity-checks a posterior TSV written by `ems_match --prob-out`.

Validates the calibrated-posterior contract (docs/PROBABILISTIC.md):
  * the header advertises the matrix shape and every (row, col) cell is
    present exactly once;
  * every row is a probability distribution: sums to 1 within 1e-9,
    no negative mass;
  * the MAP marks form a partial 1:1 assignment (at most one mark per
    row and per column), and each marked cell carries its row's
    maximum-weight column under the assignment (weakly: a marked cell
    must not be dominated by an unmarked cell in BOTH its row and
    column — Hungarian may trade a row's argmax for global weight).

Exit 0 when the file passes, 1 with a diagnostic otherwise.
"""

import sys


def fail(msg: str) -> None:
    print(f"check_posterior: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def main() -> None:
    if len(sys.argv) != 2:
        fail("usage: check_posterior.py POSTERIOR_TSV")
    path = sys.argv[1]
    with open(path, encoding="utf-8") as f:
        lines = [ln.rstrip("\n") for ln in f]
    if not lines or not lines[0].startswith("#"):
        fail("missing '# rows=... cols=...' header")
    header = dict(
        kv.split("=", 1) for kv in lines[0].lstrip("# ").split() if "=" in kv
    )
    try:
        rows, cols = int(header["rows"]), int(header["cols"])
        iterations = int(header["iterations"])
        converged = int(header["converged"])
    except (KeyError, ValueError) as e:
        fail(f"bad header {lines[0]!r}: {e}")
    if iterations < 0 or converged not in (0, 1):
        fail(f"implausible header stats: {lines[0]!r}")
    if lines[1].split("\t") != ["row", "col", "left", "right", "posterior", "map"]:
        fail(f"unexpected column line {lines[1]!r}")

    posterior = {}
    map_marks = []
    for ln in lines[2:]:
        if not ln:
            continue
        parts = ln.split("\t")
        if len(parts) != 6:
            fail(f"malformed line {ln!r}")
        i, j = int(parts[0]), int(parts[1])
        p, mark = float(parts[4]), int(parts[5])
        if not (0 <= i < rows and 0 <= j < cols):
            fail(f"cell ({i},{j}) outside {rows}x{cols}")
        if (i, j) in posterior:
            fail(f"duplicate cell ({i},{j})")
        if p < 0.0:
            fail(f"negative posterior {p} at ({i},{j})")
        if p > 1.0 + 1e-9:
            fail(f"posterior {p} > 1 at ({i},{j})")
        posterior[(i, j)] = p
        if mark == 1:
            map_marks.append((i, j))
        elif mark != 0:
            fail(f"map flag {mark} at ({i},{j}) not 0/1")

    if len(posterior) != rows * cols:
        fail(f"{len(posterior)} cells present, expected {rows * cols}")

    for i in range(rows):
        s = sum(posterior[(i, j)] for j in range(cols))
        if abs(s - 1.0) > 1e-9:
            fail(f"row {i} sums to {s!r}, off by {abs(s - 1.0):.3e} > 1e-9")

    seen_rows, seen_cols = set(), set()
    for i, j in map_marks:
        if i in seen_rows:
            fail(f"row {i} carries two MAP marks")
        if j in seen_cols:
            fail(f"column {j} carries two MAP marks")
        seen_rows.add(i)
        seen_cols.add(j)

    for i, j in map_marks:
        p = posterior[(i, j)]
        row_max = max(posterior[(i, k)] for k in range(cols))
        col_max = max(posterior[(k, j)] for k in range(rows))
        if p + 1e-12 < row_max and p + 1e-12 < col_max:
            fail(
                f"MAP cell ({i},{j})={p} dominated in both row (max "
                f"{row_max}) and column (max {col_max})"
            )

    print(
        f"check_posterior: OK ({rows}x{cols}, {len(map_marks)} MAP pairs, "
        f"{iterations} EM iterations, converged={converged})"
    )


if __name__ == "__main__":
    main()
