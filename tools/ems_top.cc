// ems_top: polling terminal dashboard for a running ems_serve. Connects
// to the service's Unix socket or TCP endpoint, issues {"cmd":"stats"}
// probes (answered inline by the service, so the dashboard stays live
// even when the job queue is saturated), and renders throughput, latency
// quantiles, cache hit rates, and pool utilization as a compact
// top-style screen. Against a sharded `ems_serve --tcp` deployment it
// additionally renders per-shard queue-depth/inflight gauges and the
// shard-balance spread.
//
//   ems_top --socket=/tmp/ems.sock [--interval=SECONDS] [--count=N]
//   ems_top --tcp=127.0.0.1:7463 --once
//   ems_top --from-file=stats.json        # render one captured response
//
// Options:
//   --socket=PATH    Unix socket of a running `ems_serve --socket=PATH`
//   --tcp=HOST:PORT  TCP endpoint of a running `ems_serve --tcp=...`
//   --interval=S     seconds between probes (default 2)
//   --count=N        exit after N frames (default 0 = until interrupted)
//   --once           shorthand for --count=1 (no screen clearing)
//   --from-file=PATH render a stats response line captured to a file and
//                    exit — the offline/testing mode, no connection
//                    needed
//
// Each frame sends one stats probe; the service computes interval rates
// against the previous probe, so QPS settles after the first frame.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#ifndef _WIN32
#include <unistd.h>
#endif

#include "net/wire.h"
#include "util/json_parser.h"
#include "util/log.h"
#include "util/status.h"

namespace {

using namespace ems;

void Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s (--socket=PATH | --tcp=HOST:PORT) "
               "[--interval=SECONDS] [--count=N] [--once]\n"
               "       %s --from-file=PATH\n"
               "polls a running ems_serve for {\"cmd\":\"stats\"} and renders "
               "a dashboard\n",
               argv0, argv0);
}

struct Flags {
  std::string socket_path;
  std::string tcp;
  std::string from_file;
  double interval = 2.0;
  long count = 0;  // 0 = run until interrupted
  bool clear_screen = true;
};

bool ParseFlag(const std::string& arg, const char* name, std::string* out) {
  const std::string prefix = std::string("--") + name + "=";
  if (arg.rfind(prefix, 0) != 0) return false;
  *out = arg.substr(prefix.size());
  return true;
}

Result<Flags> ParseArgs(int argc, char** argv) {
  Flags flags;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    std::string value;
    if (ParseFlag(arg, "socket", &value)) {
      flags.socket_path = value;
    } else if (ParseFlag(arg, "tcp", &value)) {
      flags.tcp = value;
    } else if (ParseFlag(arg, "from-file", &value)) {
      flags.from_file = value;
    } else if (ParseFlag(arg, "interval", &value)) {
      flags.interval = std::atof(value.c_str());
      if (flags.interval <= 0.0) {
        return Status::InvalidArgument("--interval must be > 0");
      }
    } else if (ParseFlag(arg, "count", &value)) {
      flags.count = std::atol(value.c_str());
      if (flags.count < 0) {
        return Status::InvalidArgument("--count must be >= 0");
      }
    } else if (arg == "--once") {
      flags.count = 1;
      flags.clear_screen = false;
    } else {
      return Status::InvalidArgument("unknown argument '" + arg + "'");
    }
  }
  const int endpoints = (flags.socket_path.empty() ? 0 : 1) +
                        (flags.tcp.empty() ? 0 : 1) +
                        (flags.from_file.empty() ? 0 : 1);
  if (endpoints != 1) {
    return Status::InvalidArgument(
        "exactly one of --socket, --tcp, or --from-file is required");
  }
  return flags;
}

double FindRate(const JsonValue& stats, const char* counter) {
  const JsonValue* rates = stats.Find("rates");
  return rates == nullptr ? 0.0 : rates->GetNumber(counter, 0.0);
}

// Latency digest of one quantile histogram in the snapshot, or zeros.
struct Latency {
  uint64_t count = 0;
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
};

Latency FindLatency(const JsonValue& stats, const char* name) {
  Latency latency;
  const JsonValue* snapshot = stats.Find("snapshot");
  if (snapshot == nullptr) return latency;
  const JsonValue* quantiles = snapshot->Find("quantile_histograms");
  if (quantiles == nullptr) return latency;
  const JsonValue* h = quantiles->Find(name);
  if (h == nullptr) return latency;
  latency.count = static_cast<uint64_t>(h->GetNumber("count", 0.0));
  latency.p50 = h->GetNumber("p50", 0.0);
  latency.p90 = h->GetNumber("p90", 0.0);
  latency.p99 = h->GetNumber("p99", 0.0);
  return latency;
}

// A counter from the metrics snapshot, or 0 when absent.
double FindCounter(const JsonValue& stats, const char* name) {
  const JsonValue* snapshot = stats.Find("snapshot");
  if (snapshot == nullptr) return 0.0;
  const JsonValue* counters = snapshot->Find("counters");
  return counters == nullptr ? 0.0 : counters->GetNumber(name, 0.0);
}

// The corpus-index breakdown (docs/CORPUS.md): how the top-k scheduler
// disposed of its candidates — pruned at the bound, aborted mid-run, or
// run to an exact score — plus the corpus-cache hit rate and the bound
// tightness p50/p90. Services that never answered a topk job carry no
// index.* counters, so this renders nothing for them.
void RenderIndexMetrics(const JsonValue& stats) {
  const double candidates = FindCounter(stats, "index.candidates_retrieved");
  const double topk_jobs = FindCounter(stats, "serve.topk_jobs");
  if (candidates <= 0.0 && topk_jobs <= 0.0) return;
  const double pruned = FindCounter(stats, "index.pruned_by_bound");
  const double aborted = FindCounter(stats, "index.aborted_runs");
  const double exact = FindCounter(stats, "index.exact_runs");
  std::printf("index       %lld queries, %lld candidates: "
              "%5.1f%% pruned  %5.1f%% aborted  %5.1f%% exact\n",
              static_cast<long long>(FindCounter(stats, "index.queries")),
              static_cast<long long>(candidates),
              candidates > 0.0 ? 100.0 * pruned / candidates : 0.0,
              candidates > 0.0 ? 100.0 * aborted / candidates : 0.0,
              candidates > 0.0 ? 100.0 * exact / candidates : 0.0);
  const double corpus_hits = FindCounter(stats, "serve.corpus_cache.hits");
  const double corpus_misses =
      FindCounter(stats, "serve.corpus_cache.misses");
  const double corpus_lookups = corpus_hits + corpus_misses;
  const Latency tightness = FindLatency(stats, "index.bound_tightness");
  std::printf("corpus      %lld topk jobs, index cache hit rate %5.1f%% "
              "(%lld/%lld), bound tightness p50 %.3f p90 %.3f\n",
              static_cast<long long>(topk_jobs),
              corpus_lookups > 0.0 ? 100.0 * corpus_hits / corpus_lookups
                                   : 0.0,
              static_cast<long long>(corpus_hits),
              static_cast<long long>(corpus_lookups), tightness.p50,
              tightness.p90);
}

// A ten-cell [=====     ] gauge of value/capacity.
std::string GaugeBar(double value, double capacity) {
  const int cells = 10;
  int filled = capacity > 0.0
                   ? static_cast<int>(cells * value / capacity + 0.5)
                   : 0;
  if (filled > cells) filled = cells;
  if (filled < 0) filled = 0;
  std::string bar = "[";
  bar.append(static_cast<size_t>(filled), '=');
  bar.append(static_cast<size_t>(cells - filled), ' ');
  bar += "]";
  return bar;
}

// A gauge from the metrics snapshot, or 0 when absent.
double FindGauge(const JsonValue& stats, const char* name) {
  const JsonValue* snapshot = stats.Find("snapshot");
  if (snapshot == nullptr) return 0.0;
  const JsonValue* gauges = snapshot->Find("gauges");
  return gauges == nullptr ? 0.0 : gauges->GetNumber(name, 0.0);
}

// The streaming-ingestion row (docs/STREAMING.md): live sessions, what
// the appends changed, and what the warm starts saved. Services that
// never answered an append carry no stream.* metrics; render nothing.
void RenderStreamMetrics(const JsonValue& stats) {
  const double appends = FindCounter(stats, "stream.appends");
  const double sessions = FindGauge(stats, "stream.sessions");
  if (appends <= 0.0 && sessions <= 0.0) return;
  const double warm = FindCounter(stats, "stream.warm_matches");
  const double warm_iters = FindCounter(stats, "stream.warm_iterations");
  const double saved = FindCounter(stats, "stream.iterations_saved");
  std::printf("stream      %lld sessions, %lld appends (%lld traces, "
              "%lld delta edges, %lld dist rows), %lld warm matches: "
              "%lld iters run, %lld saved (%5.1f%%)\n",
              static_cast<long long>(sessions),
              static_cast<long long>(appends),
              static_cast<long long>(
                  FindCounter(stats, "stream.appended_traces")),
              static_cast<long long>(FindCounter(stats, "stream.delta_edges")),
              static_cast<long long>(
                  FindCounter(stats, "stream.distance_rows_invalidated")),
              static_cast<long long>(warm),
              static_cast<long long>(warm_iters),
              static_cast<long long>(saved),
              warm_iters + saved > 0.0
                  ? 100.0 * saved / (warm_iters + saved)
                  : 0.0);
}

// The probabilistic-matching row (docs/PROBABILISTIC.md): how many jobs
// ran the EM posterior engine, its convergence behavior, and the
// posterior-entropy distribution (mean from the quantile histogram's
// sum/count; p90 marks the ambiguous tail). Services that never
// answered a prob job carry no prob.* counters; render nothing.
void RenderProbMetrics(const JsonValue& stats) {
  const double runs = FindCounter(stats, "prob.runs");
  if (runs <= 0.0) return;
  const double iters = FindCounter(stats, "prob.iterations");
  const double converged = FindCounter(stats, "prob.converged_runs");
  double mean_entropy = 0.0;
  const Latency entropy = FindLatency(stats, "prob.posterior_entropy");
  if (const JsonValue* snapshot = stats.Find("snapshot")) {
    if (const JsonValue* quantiles = snapshot->Find("quantile_histograms")) {
      if (const JsonValue* h = quantiles->Find("prob.posterior_entropy")) {
        const double count = h->GetNumber("count", 0.0);
        if (count > 0.0) mean_entropy = h->GetNumber("sum", 0.0) / count;
      }
    }
  }
  std::printf("prob        %lld EM runs, %.1f iters/run, %5.1f%% converged, "
              "posterior entropy mean %.3f p90 %.3f\n",
              static_cast<long long>(runs), runs > 0.0 ? iters / runs : 0.0,
              100.0 * converged / runs, mean_entropy, entropy.p90);
}

// The sharded deployment's breakdown: one row per shard with queue and
// inflight gauges, plus the routed-job balance spread. Single-service
// responses carry no "shards" array, so this renders nothing for them.
void RenderShards(const JsonValue& stats) {
  const JsonValue* shards = stats.Find("shards");
  if (shards == nullptr || !shards->is_array() ||
      shards->array_items().empty()) {
    return;
  }
  if (const JsonValue* router = stats.Find("router")) {
    std::printf("router      %d shards, %d vnodes/shard%s\n",
                router->GetInt("num_shards", 0),
                router->GetInt("vnodes_per_shard", 0),
                router->GetBool("draining", false) ? ", DRAINING" : "");
  }
  double routed_total = 0.0;
  double routed_max = 0.0;
  for (const JsonValue& shard : shards->array_items()) {
    const double routed = shard.GetNumber("routed", 0.0);
    routed_total += routed;
    if (routed > routed_max) routed_max = routed;
    const double queue_depth = shard.GetNumber("queue_depth", 0.0);
    const double queue_capacity = shard.GetNumber("queue_capacity", 0.0);
    const double inflight = shard.GetNumber("inflight", 0.0);
    const double max_inflight = shard.GetNumber("max_inflight", 0.0);
    std::printf("shard %-3d   queue %s %4lld/%-4lld  inflight %s "
                "%4lld/%-4lld  routed %lld  shed %lld\n",
                shard.GetInt("shard", 0),
                GaugeBar(queue_depth, queue_capacity).c_str(),
                static_cast<long long>(queue_depth),
                static_cast<long long>(queue_capacity),
                GaugeBar(inflight, max_inflight).c_str(),
                static_cast<long long>(inflight),
                static_cast<long long>(max_inflight),
                static_cast<long long>(routed),
                static_cast<long long>(
                    shard.GetNumber("rejected_overloaded", 0.0)));
  }
  const double mean =
      routed_total / static_cast<double>(shards->array_items().size());
  std::printf("balance     max/mean %.3f over %lld routed jobs\n",
              mean > 0.0 ? routed_max / mean : 0.0,
              static_cast<long long>(routed_total));
}

// Renders one stats response as the dashboard frame. Returns false (and
// prints the raw line) when the response is not a stats document.
bool RenderFrame(const std::string& line, bool clear_screen) {
  Result<JsonValue> parsed = ParseJson(line);
  if (!parsed.ok() || !parsed->is_object() ||
      parsed->GetString("status", "") != "ok") {
    std::fprintf(stderr, "unexpected response: %s\n", line.c_str());
    return false;
  }
  const JsonValue& stats = *parsed;
  if (clear_screen) std::fputs("\x1b[H\x1b[2J", stdout);

  std::printf("ems_top — uptime %.1fs, interval %.1fs\n",
              stats.GetNumber("uptime_seconds", 0.0),
              stats.GetNumber("interval_seconds", 0.0));

  const double qps_ok = FindRate(stats, "serve.jobs_ok");
  const double qps_failed = FindRate(stats, "serve.jobs_failed");
  std::printf("throughput  %8.2f jobs/s ok  %8.2f jobs/s failed\n", qps_ok,
              qps_failed);

  const Latency ok = FindLatency(stats, "serve.latency_ms.ok");
  const Latency err = FindLatency(stats, "serve.latency_ms.error");
  std::printf("latency ok  p50 %8.2fms  p90 %8.2fms  p99 %8.2fms  (n=%llu)\n",
              ok.p50, ok.p90, ok.p99,
              static_cast<unsigned long long>(ok.count));
  if (err.count > 0) {
    std::printf(
        "latency err p50 %8.2fms  p90 %8.2fms  p99 %8.2fms  (n=%llu)\n",
        err.p50, err.p90, err.p99,
        static_cast<unsigned long long>(err.count));
  }

  if (const JsonValue* cache = stats.Find("cache")) {
    const double hits = cache->GetNumber("hits", 0.0);
    const double misses = cache->GetNumber("misses", 0.0);
    const double lookups = hits + misses;
    std::printf("cache       %lld logs, %lld bytes, hit rate %5.1f%% "
                "(%lld/%lld)\n",
                static_cast<long long>(cache->GetNumber("entries", 0.0)),
                static_cast<long long>(cache->GetNumber("bytes", 0.0)),
                lookups > 0.0 ? 100.0 * hits / lookups : 0.0,
                static_cast<long long>(hits),
                static_cast<long long>(lookups));
  }

  if (const JsonValue* pool = stats.Find("pool")) {
    const double threads = pool->GetNumber("threads", 0.0);
    const double in_flight = pool->GetNumber("jobs_in_flight", 0.0);
    std::printf("pool        %lld threads, %lld in flight (%5.1f%% busy), "
                "queue %lld/%lld\n",
                static_cast<long long>(threads),
                static_cast<long long>(in_flight),
                threads > 0.0 ? 100.0 * in_flight / threads : 0.0,
                static_cast<long long>(pool->GetNumber("queue_depth", 0.0)),
                static_cast<long long>(
                    pool->GetNumber("queue_capacity", 0.0)));
  }
  RenderIndexMetrics(stats);
  RenderStreamMetrics(stats);
  RenderProbMetrics(stats);
  RenderShards(stats);
  std::fflush(stdout);
  return true;
}

int RunFromFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    LogError("cannot open " + path);
    return 1;
  }
  std::string content;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) content.append(buf, n);
  std::fclose(f);
  // Render the first non-empty line (a captured stats response).
  size_t start = content.find_first_not_of("\r\n");
  if (start == std::string::npos) {
    LogError("empty stats file " + path);
    return 1;
  }
  size_t end = content.find('\n', start);
  const std::string line = content.substr(
      start, end == std::string::npos ? std::string::npos : end - start);
  return RenderFrame(line, /*clear_screen=*/false) ? 0 : 1;
}

#ifndef _WIN32
// One connection per run, over either transport: send a probe line,
// read the answer line. ConnectEndpoint picks TCP when flags.tcp is
// set and the Unix socket otherwise.
int RunPolling(const Flags& flags) {
  Result<int> fd = net::ConnectEndpoint(flags.tcp, flags.socket_path);
  if (!fd.ok()) {
    LogError(fd.status().message());
    return 1;
  }
  net::FdLineReader reader(*fd);
  long frame = 0;
  int rc = 0;
  for (;;) {
    const Status sent =
        net::WriteAll(*fd, "{\"cmd\":\"stats\",\"id\":\"ems_top\"}\n");
    if (!sent.ok()) {
      LogError(sent.message());
      rc = 1;
      break;
    }
    std::string line;
    if (!reader.ReadLine(&line)) {
      LogError("service closed the connection");
      rc = 1;
      break;
    }
    RenderFrame(line, flags.clear_screen);
    ++frame;
    if (flags.count > 0 && frame >= flags.count) break;
    ::usleep(static_cast<useconds_t>(flags.interval * 1e6));
  }
  ::close(*fd);
  return rc;
}
#endif

int Run(int argc, char** argv) {
  Result<Flags> flags = ParseArgs(argc, argv);
  if (!flags.ok()) {
    LogError(flags.status().message());
    Usage(argv[0]);
    return 2;
  }
  if (!flags->from_file.empty()) return RunFromFile(flags->from_file);
#ifndef _WIN32
  return RunPolling(*flags);
#else
  LogError("--socket polling is not supported on this OS");
  return 2;
#endif
}

}  // namespace

int main(int argc, char** argv) { return Run(argc, argv); }
