// ems_match: command-line event matcher. Reads two event logs (XES, CSV,
// or trace-per-line format, auto-detected by extension), runs the full
// matching pipeline, and prints the correspondences.
//
//   ems_match [options] LOG1 LOG2
//   ems_match [options] --corpus=DIR --topk=K QUERY
//
// The second form ranks every log in DIR against QUERY and prints the
// top-k, scheduled through the corpus index (docs/CORPUS.md): candidates
// are ranked by an admissible score bound and exact matching stops once
// the k-th best exact score beats every remaining bound — same ranking
// as matching QUERY against every member, at a fraction of the runs.
// With --cache-dir the built index persists as a corpus snapshot, so
// re-querying an unchanged directory skips parsing and graph builds.
//
// Options:
//   --corpus=DIR                  corpus directory (top-k mode)
//   --topk=K                      hits to return (default 5)
//   --brute-force                 rank by matching every member (the
//                                 equivalence baseline for the index)
//   --format=auto|trace|csv|xes|mxml  input format (default auto)
//   --labels=none|qgram|levenshtein|jaro|tokens
//                                 label similarity (default qgram)
//   --alpha=F                     structural weight (default 0.5 with
//                                 labels, forced to 1 with --labels=none)
//   --c=F                         propagation decay (default 0.8)
//   --engine=exact|estimated      similarity engine (default exact)
//   --iterations=N                exact iterations for the estimated
//                                 engine (default 5)
//   --composites                  enable m:n composite matching
//   --delta=F                     composite acceptance threshold (0.005)
//   --selection=hungarian|greedy|mutual
//   --min-similarity=F            correspondence threshold (default 0.05)
//   --min-edge-frequency=F        dependency-graph edge filter (default 0)
//   --threads=N                   worker threads for the EMS iteration
//                                 and, with --composites, for parallel
//                                 candidate evaluation (default hardware
//                                 concurrency, 0 = serial)
//   --prob                        probabilistic matching (src/prob/):
//                                 EM posterior over the converged
//                                 similarity, MAP selection with
//                                 calibrated per-pair confidences
//   --prob-temp=F                 softmax temperature (default 0.05)
//   --prob-tol=F                  EM convergence tolerance (default 1e-6)
//   --prob-iters=N                EM iteration cap (default 50)
//   --prob-min-confidence=F       drop MAP pairs whose posterior is
//                                 below F (default 0.02)
//   --prob-out=PATH               write the full posterior as TSV
//                                 (row, col, names, posterior, map flag)
//   --matrix                      also print the similarity matrix
//   --tsv                         machine-readable tab-separated output
//   --json                        JSON output (correspondences + stats)
//   --metrics-out=PATH            write a PipelineReport JSON (span tree,
//                                 counters, gauges, histograms) to PATH
//   --trace-out=PATH              write Chrome trace_event JSON to PATH
//                                 (open in chrome://tracing / Perfetto)
//   --cache-dir=PATH              persistent artifact store
//                                 (docs/PERSISTENCE.md): parsed logs are
//                                 snapshotted there and re-runs load the
//                                 snapshot instead of re-parsing
#include <cstdio>
#include <cstring>
#include <optional>
#include <string>

#include "core/match_report.h"
#include "core/matcher.h"
#include "exec/thread_pool.h"
#include "index/corpus_io.h"
#include "index/topk_scheduler.h"
#include "obs/context.h"
#include "obs/report.h"
#include "serve/log_cache.h"
#include "store/artifact_store.h"
#include "store/hashing.h"
#include "util/json_writer.h"
#include "util/timer.h"

namespace {

using namespace ems;

void Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [options] LOG1 LOG2\n"
               "run '%s --help' style options are documented at the top of "
               "tools/ems_match.cc\n",
               argv0, argv0);
}

struct Flags {
  std::string format = "auto";
  std::string labels = "qgram";
  double alpha = 0.5;
  bool alpha_set = false;
  double c = 0.8;
  std::string engine = "exact";
  int iterations = 5;
  bool composites = false;
  double delta = 0.005;
  std::string selection = "hungarian";
  double min_similarity = 0.05;
  double min_edge_frequency = 0.0;
  int threads = -1;  // -1 = unset -> hardware concurrency
  bool prob = false;
  double prob_temp = 0.05;
  double prob_tol = 1e-6;
  int prob_iters = 50;
  double prob_min_confidence = 0.02;
  std::string prob_out;
  bool matrix = false;
  bool tsv = false;
  bool json = false;
  std::string metrics_out;
  std::string trace_out;
  std::string cache_dir;
  std::string corpus;
  int topk = 5;
  bool brute_force = false;
  std::vector<std::string> positional;
};

bool ParseFlag(const std::string& arg, const char* name, std::string* out) {
  std::string prefix = std::string("--") + name + "=";
  if (arg.rfind(prefix, 0) != 0) return false;
  *out = arg.substr(prefix.size());
  return true;
}

Result<Flags> ParseArgs(int argc, char** argv) {
  Flags flags;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    std::string value;
    if (arg == "--composites") flags.composites = true;
    else if (arg == "--prob") flags.prob = true;
    else if (ParseFlag(arg, "prob-temp", &value)) {
      flags.prob_temp = std::atof(value.c_str());
      if (flags.prob_temp <= 0.0) {
        return Status::InvalidArgument("--prob-temp must be > 0");
      }
    } else if (ParseFlag(arg, "prob-tol", &value)) {
      flags.prob_tol = std::atof(value.c_str());
      if (flags.prob_tol <= 0.0) {
        return Status::InvalidArgument("--prob-tol must be > 0");
      }
    } else if (ParseFlag(arg, "prob-iters", &value)) {
      flags.prob_iters = std::atoi(value.c_str());
      if (flags.prob_iters < 1) {
        return Status::InvalidArgument("--prob-iters must be >= 1");
      }
    } else if (ParseFlag(arg, "prob-min-confidence", &value)) {
      flags.prob_min_confidence = std::atof(value.c_str());
      if (flags.prob_min_confidence < 0.0 || flags.prob_min_confidence > 1.0) {
        return Status::InvalidArgument(
            "--prob-min-confidence must be in [0, 1]");
      }
    } else if (ParseFlag(arg, "prob-out", &value)) {
      flags.prob_out = value;
    } else if (arg == "--matrix") flags.matrix = true;
    else if (arg == "--tsv") flags.tsv = true;
    else if (arg == "--json") flags.json = true;
    else if (ParseFlag(arg, "format", &value)) flags.format = value;
    else if (ParseFlag(arg, "labels", &value)) flags.labels = value;
    else if (ParseFlag(arg, "alpha", &value)) {
      flags.alpha = std::atof(value.c_str());
      flags.alpha_set = true;
    } else if (ParseFlag(arg, "c", &value)) flags.c = std::atof(value.c_str());
    else if (ParseFlag(arg, "engine", &value)) flags.engine = value;
    else if (ParseFlag(arg, "iterations", &value)) {
      flags.iterations = std::atoi(value.c_str());
    } else if (ParseFlag(arg, "delta", &value)) {
      flags.delta = std::atof(value.c_str());
    } else if (ParseFlag(arg, "selection", &value)) flags.selection = value;
    else if (ParseFlag(arg, "min-similarity", &value)) {
      flags.min_similarity = std::atof(value.c_str());
    } else if (ParseFlag(arg, "min-edge-frequency", &value)) {
      flags.min_edge_frequency = std::atof(value.c_str());
    } else if (ParseFlag(arg, "threads", &value)) {
      flags.threads = std::atoi(value.c_str());
      if (flags.threads < 0) {
        return Status::InvalidArgument("--threads must be >= 0");
      }
    } else if (ParseFlag(arg, "metrics-out", &value)) {
      flags.metrics_out = value;
    } else if (ParseFlag(arg, "trace-out", &value)) {
      flags.trace_out = value;
    } else if (ParseFlag(arg, "cache-dir", &value)) {
      flags.cache_dir = value;
    } else if (ParseFlag(arg, "corpus", &value)) {
      flags.corpus = value;
    } else if (ParseFlag(arg, "topk", &value)) {
      flags.topk = std::atoi(value.c_str());
      if (flags.topk < 0) {
        return Status::InvalidArgument("--topk must be >= 0");
      }
    } else if (arg == "--brute-force") {
      flags.brute_force = true;
    } else if (arg.rfind("--", 0) == 0) {
      return Status::InvalidArgument("unknown option '" + arg + "'");
    } else {
      flags.positional.push_back(arg);
    }
  }
  if (flags.corpus.empty()) {
    if (flags.positional.size() != 2) {
      return Status::InvalidArgument("expected exactly two log files");
    }
  } else if (flags.positional.size() != 1) {
    return Status::InvalidArgument(
        "--corpus mode expects exactly one query log");
  }
  return flags;
}

Result<MatchOptions> ToMatchOptions(const Flags& flags) {
  MatchOptions options;
  if (flags.labels == "none") options.label_measure = LabelMeasure::kNone;
  else if (flags.labels == "qgram") {
    options.label_measure = LabelMeasure::kQGramCosine;
  } else if (flags.labels == "levenshtein") {
    options.label_measure = LabelMeasure::kLevenshtein;
  } else if (flags.labels == "jaro") {
    options.label_measure = LabelMeasure::kJaroWinkler;
  } else if (flags.labels == "tokens") {
    options.label_measure = LabelMeasure::kTokenJaccard;
  } else {
    return Status::InvalidArgument("unknown label measure '" + flags.labels +
                                   "'");
  }
  options.ems.alpha = options.label_measure == LabelMeasure::kNone
                          ? 1.0
                          : (flags.alpha_set ? flags.alpha : 0.5);
  if (options.ems.alpha < 0.0 || options.ems.alpha > 1.0) {
    return Status::InvalidArgument("--alpha must be in [0, 1]");
  }
  if (flags.c <= 0.0 || flags.c >= 1.0) {
    return Status::InvalidArgument("--c must be in (0, 1)");
  }
  options.ems.c = flags.c;
  if (flags.engine == "exact") options.engine = SimilarityEngine::kExact;
  else if (flags.engine == "estimated") {
    options.engine = SimilarityEngine::kEstimated;
  } else {
    return Status::InvalidArgument("unknown engine '" + flags.engine + "'");
  }
  options.estimation_iterations = flags.iterations;
  options.match_composites = flags.composites;
  options.composite.delta = flags.delta;
  if (flags.selection == "hungarian") {
    options.selection = SelectionStrategy::kMaxTotalSimilarity;
  } else if (flags.selection == "greedy") {
    options.selection = SelectionStrategy::kGreedy;
  } else if (flags.selection == "mutual") {
    options.selection = SelectionStrategy::kMutualBest;
  } else {
    return Status::InvalidArgument("unknown selection '" + flags.selection +
                                   "'");
  }
  options.min_match_similarity = flags.min_similarity;
  options.min_edge_frequency = flags.min_edge_frequency;
  options.prob.enabled = flags.prob;
  options.prob.temperature = flags.prob_temp;
  options.prob.rtole = flags.prob_tol;
  options.prob.max_iterations = flags.prob_iters;
  options.prob.min_confidence = flags.prob_min_confidence;
  // CLI contract: default = hardware concurrency, 0 = serial. EmsOptions
  // spells those 0 and 1 respectively.
  options.ems.num_threads =
      flags.threads < 0 ? 0 : (flags.threads == 0 ? 1 : flags.threads);
  return options;
}

std::string JoinNames(const std::vector<std::string>& names) {
  std::string out;
  for (size_t i = 0; i < names.size(); ++i) {
    if (i > 0) out += " + ";
    out += names[i];
  }
  return out;
}

// Display name of real-node index `real_index` (composite members joined).
std::string RealNodeName(const DependencyGraph& g, const EventLog& log,
                         int real_index) {
  const NodeId off = g.has_artificial() ? 1 : 0;
  std::vector<std::string> names;
  for (EventId e : g.Members(real_index + off)) names.push_back(log.EventName(e));
  return JoinNames(names);
}

// Full posterior as TSV: one line per (row, col) cell with the node
// names, the posterior mass, and whether the MAP assignment picked the
// pair. scripts/check_posterior.py verifies row-stochasticity on this.
Status WritePosteriorTsv(const std::string& path, const MatchResult& result,
                         const EventLog& log1, const EventLog& log2) {
  const prob::SoftMatchResult& soft = *result.soft;
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::IOError("cannot open " + path + " for writing");
  }
  std::fprintf(f, "# rows=%zu cols=%zu iterations=%d converged=%d\n",
               soft.posterior.rows(), soft.posterior.cols(),
               soft.stats.iterations, soft.stats.converged ? 1 : 0);
  std::fprintf(f, "row\tcol\tleft\tright\tposterior\tmap\n");
  for (size_t i = 0; i < soft.posterior.rows(); ++i) {
    const std::string left = RealNodeName(result.graph1, log1,
                                          static_cast<int>(i));
    for (size_t j = 0; j < soft.posterior.cols(); ++j) {
      const int map = i < soft.map_assignment.size() &&
                              soft.map_assignment[i] == static_cast<int>(j)
                          ? 1
                          : 0;
      std::fprintf(f, "%zu\t%zu\t%s\t%s\t%.17g\t%d\n", i, j, left.c_str(),
                   RealNodeName(result.graph2, log2, static_cast<int>(j))
                       .c_str(),
                   soft.posterior.at(static_cast<NodeId>(i),
                                     static_cast<NodeId>(j)),
                   map);
    }
  }
  std::fclose(f);
  return Status::OK();
}

int RunCorpusQuery(const Flags& flags, store::ArtifactStore* store,
                   ObsContext* obs) {
  Result<MatchOptions> options = ToMatchOptions(flags);
  if (!options.ok()) {
    std::fprintf(stderr, "error: %s\n", options.status().message().c_str());
    return 2;
  }
  MatchOptions match_options = *options;
  if (obs != nullptr) match_options.obs.context = obs;
  // Parallelism goes across candidates, not inside one EMS run.
  match_options.ems.num_threads = 1;

  index::CorpusLoadOptions load;
  load.format = flags.format;
  load.index.min_edge_frequency = match_options.min_edge_frequency;
  load.index.obs = obs;
  load.store = store;

  Timer build_timer;
  Result<index::CorpusIndex> corpus =
      index::LoadCorpusFromDirectory(flags.corpus, load);
  if (!corpus.ok()) {
    std::fprintf(stderr, "error loading corpus %s: %s\n",
                 flags.corpus.c_str(), corpus.status().ToString().c_str());
    return 1;
  }
  const double build_millis = build_timer.ElapsedMillis();

  Result<EventLog> query = serve::LoadEventLogThroughStore(
      store, flags.positional[0], flags.format);
  if (!query.ok()) {
    std::fprintf(stderr, "error reading %s: %s\n", flags.positional[0].c_str(),
                 query.status().ToString().c_str());
    return 1;
  }

  exec::ThreadPoolOptions pool_options;
  pool_options.num_threads =
      flags.threads < 0 ? 0 : (flags.threads == 0 ? 1 : flags.threads);
  exec::ThreadPool pool(pool_options);

  index::TopKOptions topk_options;
  topk_options.k = static_cast<size_t>(flags.topk);
  topk_options.match = match_options;
  topk_options.pool = &pool;
  topk_options.obs = obs;
  topk_options.force_brute_force = flags.brute_force;
  index::TopKScheduler scheduler(*corpus, topk_options);

  Timer query_timer;
  Result<std::vector<index::TopKHit>> hits = scheduler.Query(*query);
  const double query_millis = query_timer.ElapsedMillis();
  if (!hits.ok()) {
    std::fprintf(stderr, "query failed: %s\n",
                 hits.status().ToString().c_str());
    return 1;
  }
  const index::TopKStats& stats = scheduler.stats();

  if (flags.json) {
    JsonWriter w;
    w.BeginObject();
    w.Key("query");
    w.String(flags.positional[0]);
    w.Key("corpus");
    w.String(flags.corpus);
    w.Key("k");
    w.Int(flags.topk);
    w.Key("build_millis");
    w.Number(build_millis);
    w.Key("query_millis");
    w.Number(query_millis);
    w.Key("hits");
    w.BeginArray();
    for (size_t i = 0; i < hits->size(); ++i) {
      const index::TopKHit& hit = (*hits)[i];
      w.BeginObject();
      w.Key("member");
      w.String(hit.name);
      w.Key("rank");
      w.Int(static_cast<long long>(i + 1));
      w.Key("score");
      w.Number(hit.score);
      w.Key("bound");
      w.Number(hit.bound);
      w.Key("correspondences");
      w.Int(static_cast<long long>(hit.match.correspondences.size()));
      w.EndObject();
    }
    w.EndArray();
    w.Key("index");
    w.BeginObject();
    w.Key("candidates_retrieved");
    w.Int(static_cast<long long>(stats.candidates_retrieved));
    w.Key("pruned_by_bound");
    w.Int(static_cast<long long>(stats.pruned_by_bound));
    w.Key("exact_runs");
    w.Int(static_cast<long long>(stats.exact_runs));
    w.Key("aborted_runs");
    w.Int(static_cast<long long>(stats.aborted_runs));
    w.Key("brute_force");
    w.Bool(stats.used_brute_force);
    w.EndObject();
    w.EndObject();
    std::printf("%s\n", w.str().c_str());
  } else if (flags.tsv) {
    std::printf("rank\tmember\tscore\n");
    for (size_t i = 0; i < hits->size(); ++i) {
      std::printf("%zu\t%s\t%.12f\n", i + 1, (*hits)[i].name.c_str(),
                  (*hits)[i].score);
    }
  } else {
    std::printf("corpus %s: %zu members (indexed in %.1f ms)\n",
                flags.corpus.c_str(), corpus->size(), build_millis);
    std::printf("top %d for %s:\n", flags.topk, flags.positional[0].c_str());
    for (size_t i = 0; i < hits->size(); ++i) {
      const index::TopKHit& hit = (*hits)[i];
      std::printf("  %2zu. %-48s score %.6f (%zu correspondences)\n", i + 1,
                  hit.name.c_str(), hit.score,
                  hit.match.correspondences.size());
    }
    if (stats.used_brute_force) {
      std::printf("\nbrute force: %llu exact runs in %.1f ms\n",
                  static_cast<unsigned long long>(stats.exact_runs),
                  query_millis);
    } else {
      std::printf("\nindex: %llu candidates, %llu pruned by bound, %llu "
                  "exact runs (%llu aborted) in %.1f ms\n",
                  static_cast<unsigned long long>(stats.candidates_retrieved),
                  static_cast<unsigned long long>(stats.pruned_by_bound),
                  static_cast<unsigned long long>(stats.exact_runs),
                  static_cast<unsigned long long>(stats.aborted_runs),
                  query_millis);
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Result<Flags> flags_result = ParseArgs(argc, argv);
  if (!flags_result.ok()) {
    std::fprintf(stderr, "error: %s\n",
                 flags_result.status().message().c_str());
    Usage(argv[0]);
    return 2;
  }
  const Flags& flags = *flags_result;

  const bool want_obs = !flags.metrics_out.empty() || !flags.trace_out.empty();
  ObsContext obs;

  std::optional<store::ArtifactStore> artifact_store;
  if (!flags.cache_dir.empty()) {
    store::ArtifactStoreOptions store_options;
    store_options.dir = flags.cache_dir;
    store_options.obs = want_obs ? &obs : nullptr;
    Result<store::ArtifactStore> opened =
        store::ArtifactStore::Open(std::move(store_options));
    if (opened.ok()) {
      artifact_store = std::move(opened).value();
    } else {
      std::fprintf(stderr, "warning: %s; running without cache\n",
                   opened.status().message().c_str());
    }
  }
  store::ArtifactStore* store_ptr =
      artifact_store.has_value() ? &*artifact_store : nullptr;

  if (!flags.corpus.empty()) {
    return RunCorpusQuery(flags, store_ptr, want_obs ? &obs : nullptr);
  }

  Result<EventLog> log1 = serve::LoadEventLogThroughStore(
      store_ptr, flags.positional[0], flags.format);
  if (!log1.ok()) {
    std::fprintf(stderr, "error reading %s: %s\n",
                 flags.positional[0].c_str(),
                 log1.status().ToString().c_str());
    return 1;
  }
  Result<EventLog> log2 = serve::LoadEventLogThroughStore(
      store_ptr, flags.positional[1], flags.format);
  if (!log2.ok()) {
    std::fprintf(stderr, "error reading %s: %s\n",
                 flags.positional[1].c_str(),
                 log2.status().ToString().c_str());
    return 1;
  }

  Result<MatchOptions> options = ToMatchOptions(flags);
  if (!options.ok()) {
    std::fprintf(stderr, "error: %s\n", options.status().message().c_str());
    return 2;
  }

  MatchOptions match_options = *options;
  if (want_obs) match_options.obs.context = &obs;

  Matcher matcher(match_options);
  Timer total_timer;
  Result<MatchResult> result = matcher.Match(*log1, *log2);
  const double total_millis = total_timer.ElapsedMillis();
  if (!result.ok()) {
    std::fprintf(stderr, "matching failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }

  if (want_obs) {
    PipelineReport report =
        BuildPipelineReport(&obs, result->ems_stats, result->composite_stats,
                            total_millis);
    if (!flags.metrics_out.empty()) {
      Status st = report.WriteJsonFile(flags.metrics_out);
      if (!st.ok()) {
        std::fprintf(stderr, "error writing %s: %s\n",
                     flags.metrics_out.c_str(), st.ToString().c_str());
        return 1;
      }
    }
    if (!flags.trace_out.empty()) {
      Status st = report.WriteChromeTraceFile(flags.trace_out);
      if (!st.ok()) {
        std::fprintf(stderr, "error writing %s: %s\n",
                     flags.trace_out.c_str(), st.ToString().c_str());
        return 1;
      }
    }
  }

  // Posterior side outputs (prob runs only): TSV export for external
  // tooling, and a kSoftMatch snapshot through the artifact store keyed
  // like warm seeds — both logs' content hashes + the option fingerprint.
  if (result->soft.has_value()) {
    if (!flags.prob_out.empty()) {
      Status st = WritePosteriorTsv(flags.prob_out, *result, *log1, *log2);
      if (!st.ok()) {
        std::fprintf(stderr, "error writing %s: %s\n", flags.prob_out.c_str(),
                     st.ToString().c_str());
        return 1;
      }
    }
    if (store_ptr != nullptr) {
      Result<uint64_t> h1 = store::HashFile(flags.positional[0]);
      Result<uint64_t> h2 = store::HashFile(flags.positional[1]);
      if (h1.ok() && h2.ok()) {
        store::FingerprintBuilder fp;
        fp.Add("labels", flags.labels)
            .Add("alpha", match_options.ems.alpha)
            .Add("c", match_options.ems.c)
            .Add("engine", flags.engine)
            .Add("composites", flags.composites)
            .Add("min_similarity", flags.min_similarity)
            .Add("min_edge_frequency", flags.min_edge_frequency)
            .Add("prob_temp", flags.prob_temp)
            .Add("prob_tol", flags.prob_tol)
            .Add("prob_iters", static_cast<uint64_t>(flags.prob_iters))
            .Add("prob_min_confidence", flags.prob_min_confidence);
        store::ArtifactKey key{
            store::ArtifactKind::kSoftMatch,
            store::Hash64(store::HashHex(*h1) + ":" + store::HashHex(*h2)),
            fp.Finish()};
        store_ptr->Store(key, store::EncodeSoftMatch(*result->soft));
      }
    }
  }

  if (flags.json) {
    std::printf("%s\n", MatchResultToJson(*result).c_str());
  } else if (flags.tsv) {
    if (result->soft.has_value()) {
      std::printf("left\tright\tsimilarity\tconfidence\n");
      for (const Correspondence& c : result->correspondences) {
        std::printf("%s\t%s\t%.6f\t%.6f\n", JoinNames(c.events1).c_str(),
                    JoinNames(c.events2).c_str(), c.similarity, c.confidence);
      }
    } else {
      std::printf("left\tright\tsimilarity\n");
      for (const Correspondence& c : result->correspondences) {
        std::printf("%s\t%s\t%.6f\n", JoinNames(c.events1).c_str(),
                    JoinNames(c.events2).c_str(), c.similarity);
      }
    }
  } else {
    std::printf("%s: %zu events, %zu traces\n", flags.positional[0].c_str(),
                log1->NumEvents(), log1->NumTraces());
    std::printf("%s: %zu events, %zu traces\n\n", flags.positional[1].c_str(),
                log2->NumEvents(), log2->NumTraces());
    std::printf("correspondences:\n");
    for (const Correspondence& c : result->correspondences) {
      if (result->soft.has_value()) {
        std::printf("  %-40s <-> %-40s (%.3f, conf %.3f)\n",
                    JoinNames(c.events1).c_str(), JoinNames(c.events2).c_str(),
                    c.similarity, c.confidence);
      } else {
        std::printf("  %-40s <-> %-40s (%.3f)\n", JoinNames(c.events1).c_str(),
                    JoinNames(c.events2).c_str(), c.similarity);
      }
    }
    std::printf("\n%zu correspondences; EMS: %d iterations, %llu formula "
                "evaluations\n",
                result->correspondences.size(), result->ems_stats.iterations,
                static_cast<unsigned long long>(
                    result->ems_stats.formula_evaluations));
    if (result->soft.has_value()) {
      const prob::EmStats& em = result->soft->stats;
      std::printf("prob: %d EM iterations (%s, final delta %.2e), mean "
                  "posterior entropy %.3f\n",
                  em.iterations, em.converged ? "converged" : "iteration cap",
                  em.final_delta, em.mean_entropy);
    }
  }
  if (flags.matrix) {
    std::printf("\nsimilarity matrix:\n%s",
                result->similarity.DebugString(result->graph1, result->graph2)
                    .c_str());
  }
  return 0;
}
