// ems_serve: concurrent batch matching service. Reads newline-delimited
// JSON job requests (see src/serve/service.h for the schema) from stdin
// or a Unix socket, schedules them on a thread pool behind an LRU log
// cache, and writes one JSON result line per job in completion order.
// Admin commands ({"cmd":"stats"|"health"|"slow"}) ride the same
// protocol and are answered inline; tools/ems_top renders them as a
// live dashboard.
//
//   ems_serve [options] < jobs.ndjson > results.ndjson
//
// Options:
//   --threads=N        worker threads (default 0 = hardware concurrency)
//   --queue-size=N     bounded job queue capacity (default 256)
//   --cache-size=N     parsed-log LRU capacity, in logs (default 64)
//   --cache-bytes=N    parsed-log LRU byte budget (default 0 = entry
//                      count only)
//   --cache-dir=PATH   persistent artifact store directory
//                      (docs/PERSISTENCE.md); restarting with the same
//                      directory starts warm — the first job per log
//                      loads its snapshot instead of re-parsing
//   --cache-dir-bytes=N byte budget of the on-disk store (default 0 =
//                      unbounded; LRU file eviction)
//   --metrics-out=PATH write a PipelineReport JSON (pool, cache, store,
//                      and serve.* metrics) to PATH on exit
//   --stats-out=PATH   publish metrics in Prometheus text exposition
//                      format to PATH, atomically (tmp + rename), from a
//                      background thread; one final write on shutdown
//   --stats-interval=S exposition write period in seconds (default 5;
//                      requires --stats-out)
//   --flight-slow=N    flight recorder: retain the N slowest requests
//                      (default 16); --flight-failed=N likewise for the
//                      most recent failures
//   --log-level=L      structured stderr logging threshold:
//                      error|warn|info|debug (default warn; one JSON
//                      line per event)
//   --socket=PATH      accept one client at a time on a Unix domain
//                      socket instead of stdin/stdout (POSIX only)
//
// Example session (one job object per input line):
//   $ ems_serve --threads=4 < jobs.ndjson
//   with jobs.ndjson containing e.g.
//   {"id":"j1","log1":"a.xes","log2":"b.xes"}
//   {"cmd":"stats","id":"s1"}
//   prints one result line per job and one snapshot line for the stats
//   command.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#ifndef _WIN32
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <ext/stdio_filebuf.h>  // libstdc++; socket fd -> iostream
#endif

#include "obs/context.h"
#include "obs/report.h"
#include "serve/service.h"
#include "serve/stats_exporter.h"
#include "util/log.h"
#include "util/timer.h"

namespace {

using namespace ems;

void Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--threads=N] [--queue-size=N] [--cache-size=N]\n"
               "          [--cache-bytes=N] [--cache-dir=PATH]\n"
               "          [--cache-dir-bytes=N]\n"
               "          [--metrics-out=PATH] [--stats-out=PATH]\n"
               "          [--stats-interval=SECONDS] [--flight-slow=N]\n"
               "          [--flight-failed=N] [--log-level=LEVEL]\n"
               "          [--socket=PATH]\n"
               "reads NDJSON job lines from stdin (or the socket), writes one\n"
               "JSON result line per job; schema documented in "
               "src/serve/service.h\n",
               argv0);
}

struct Flags {
  int threads = 0;
  size_t queue_size = 256;
  size_t cache_size = 64;
  size_t cache_bytes = 0;
  std::string cache_dir;
  unsigned long long cache_dir_bytes = 0;
  std::string metrics_out;
  std::string stats_out;
  double stats_interval = 5.0;
  size_t flight_slow = 16;
  size_t flight_failed = 16;
  std::string socket_path;
};

bool ParseFlag(const std::string& arg, const char* name, std::string* out) {
  const std::string prefix = std::string("--") + name + "=";
  if (arg.rfind(prefix, 0) != 0) return false;
  *out = arg.substr(prefix.size());
  return true;
}

Result<Flags> ParseArgs(int argc, char** argv) {
  Flags flags;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    std::string value;
    if (ParseFlag(arg, "threads", &value)) {
      flags.threads = std::atoi(value.c_str());
      if (flags.threads < 0) {
        return Status::InvalidArgument("--threads must be >= 0");
      }
    } else if (ParseFlag(arg, "queue-size", &value)) {
      const long n = std::atol(value.c_str());
      if (n <= 0) return Status::InvalidArgument("--queue-size must be > 0");
      flags.queue_size = static_cast<size_t>(n);
    } else if (ParseFlag(arg, "cache-size", &value)) {
      const long n = std::atol(value.c_str());
      if (n <= 0) return Status::InvalidArgument("--cache-size must be > 0");
      flags.cache_size = static_cast<size_t>(n);
    } else if (ParseFlag(arg, "cache-bytes", &value)) {
      const long long n = std::atoll(value.c_str());
      if (n < 0) return Status::InvalidArgument("--cache-bytes must be >= 0");
      flags.cache_bytes = static_cast<size_t>(n);
    } else if (ParseFlag(arg, "cache-dir", &value)) {
      flags.cache_dir = value;
    } else if (ParseFlag(arg, "cache-dir-bytes", &value)) {
      const long long n = std::atoll(value.c_str());
      if (n < 0) {
        return Status::InvalidArgument("--cache-dir-bytes must be >= 0");
      }
      flags.cache_dir_bytes = static_cast<unsigned long long>(n);
    } else if (ParseFlag(arg, "metrics-out", &value)) {
      flags.metrics_out = value;
    } else if (ParseFlag(arg, "stats-out", &value)) {
      flags.stats_out = value;
    } else if (ParseFlag(arg, "stats-interval", &value)) {
      flags.stats_interval = std::atof(value.c_str());
      if (flags.stats_interval <= 0.0) {
        return Status::InvalidArgument("--stats-interval must be > 0");
      }
    } else if (ParseFlag(arg, "flight-slow", &value)) {
      const long n = std::atol(value.c_str());
      if (n < 0) return Status::InvalidArgument("--flight-slow must be >= 0");
      flags.flight_slow = static_cast<size_t>(n);
    } else if (ParseFlag(arg, "flight-failed", &value)) {
      const long n = std::atol(value.c_str());
      if (n < 0) {
        return Status::InvalidArgument("--flight-failed must be >= 0");
      }
      flags.flight_failed = static_cast<size_t>(n);
    } else if (ParseFlag(arg, "log-level", &value)) {
      Result<LogLevel> level = ParseLogLevel(value);
      if (!level.ok()) return level.status();
      SetGlobalLogLevel(*level);
    } else if (ParseFlag(arg, "socket", &value)) {
      flags.socket_path = value;
    } else {
      return Status::InvalidArgument("unknown argument '" + arg + "'");
    }
  }
  return flags;
}

#ifndef _WIN32
// Serves clients on a Unix domain socket, one connection at a time (each
// connection streams NDJSON jobs and reads NDJSON results back). Returns
// only on accept failure; clients end their session by closing.
int ServeSocket(serve::BatchMatchService& service, const std::string& path) {
  ::unlink(path.c_str());
  const int listen_fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd < 0) {
    LogError(std::string("socket: ") + std::strerror(errno));
    return 1;
  }
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    LogError("socket path too long: " + path);
    ::close(listen_fd);
    return 2;
  }
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  if (::bind(listen_fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
          0 ||
      ::listen(listen_fd, 4) < 0) {
    LogError(std::string("bind/listen: ") + std::strerror(errno));
    ::close(listen_fd);
    return 1;
  }
  LogInfo("listening on " + path);
  for (;;) {
    const int conn = ::accept(listen_fd, nullptr, nullptr);
    if (conn < 0) {
      LogError(std::string("accept: ") + std::strerror(errno));
      break;
    }
    {
      __gnu_cxx::stdio_filebuf<char> in_buf(conn, std::ios::in);
      __gnu_cxx::stdio_filebuf<char> out_buf(::dup(conn), std::ios::out);
      std::istream in(&in_buf);
      std::ostream out(&out_buf);
      const size_t jobs = service.RunStream(in, out);
      LogInfo("connection done (" + std::to_string(jobs) + " lines)");
    }  // filebufs close both fds
  }
  ::close(listen_fd);
  ::unlink(path.c_str());
  return 1;
}
#endif

int Run(int argc, char** argv) {
  Result<Flags> flags_result = ParseArgs(argc, argv);
  if (!flags_result.ok()) {
    LogError(flags_result.status().message());
    Usage(argv[0]);
    return 2;
  }
  const Flags& flags = *flags_result;

  serve::ServiceOptions options;
  options.threads = flags.threads;
  options.queue_capacity = flags.queue_size;
  options.cache_capacity = flags.cache_size;
  options.cache_byte_budget = flags.cache_bytes;
  options.cache_dir = flags.cache_dir;
  options.cache_dir_bytes = flags.cache_dir_bytes;
  options.flight_slow_capacity = flags.flight_slow;
  options.flight_failed_capacity = flags.flight_failed;
  // The service owns its telemetry context (options.obs stays null), so
  // stats/health/slow and the exposition export always have live data.

  serve::BatchMatchService service(options);
  serve::StatsExporter stats_exporter(
      flags.stats_out.empty() ? nullptr : service.obs(), flags.stats_out,
      flags.stats_interval);
  Timer total_timer;
  int rc = 0;
  if (!flags.socket_path.empty()) {
#ifndef _WIN32
    rc = ServeSocket(service, flags.socket_path);
#else
    LogError("--socket is not supported on this OS");
    return 2;
#endif
  } else {
    const size_t jobs = service.RunStream(std::cin, std::cout);
    LogInfo("stream done: " + std::to_string(jobs) + " lines, cache " +
            std::to_string(service.cache().hits()) + " hits / " +
            std::to_string(service.cache().misses()) + " misses");
  }

  stats_exporter.Stop();  // final exposition write before the report
  if (!flags.metrics_out.empty()) {
    PipelineReport report =
        BuildPipelineReport(service.obs(), EmsStats{}, CompositeStats{},
                            total_timer.ElapsedMillis());
    Status st = report.WriteJsonFile(flags.metrics_out);
    if (!st.ok()) {
      LogError("error writing " + flags.metrics_out + ": " + st.ToString());
      return 1;
    }
  }
  return rc;
}

}  // namespace

int main(int argc, char** argv) { return Run(argc, argv); }
