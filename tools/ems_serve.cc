// ems_serve: concurrent batch matching service. Reads newline-delimited
// JSON job requests (see src/serve/service.h for the schema) from stdin,
// a Unix socket, or a TCP listener, schedules them on a thread pool
// behind an LRU log cache, and writes one JSON result line per job in
// completion order. Admin commands ({"cmd":"stats"|"health"|"slow"|
// "drain"}) ride the same protocol and are answered inline; tools/
// ems_top renders them as a live dashboard.
//
//   ems_serve [options] < jobs.ndjson > results.ndjson
//
// Options:
//   --threads=N        worker threads (default 0 = hardware concurrency;
//                      in --tcp mode, the total across all shards)
//   --queue-size=N     bounded job queue capacity (default 256; per
//                      shard in --tcp mode)
//   --cache-size=N     parsed-log LRU capacity, in logs (default 64)
//   --cache-bytes=N    parsed-log LRU byte budget (default 0 = entry
//                      count only)
//   --cache-dir=PATH   persistent artifact store directory
//                      (docs/PERSISTENCE.md); restarting with the same
//                      directory starts warm — the first job per log
//                      loads its snapshot instead of re-parsing. In
//                      --tcp mode shard i persists under
//                      PATH/shard-<i>.
//   --cache-dir-bytes=N byte budget of the on-disk store (default 0 =
//                      unbounded; LRU file eviction)
//   --metrics-out=PATH write a PipelineReport JSON (pool, cache, store,
//                      and serve.* metrics) to PATH on exit
//   --stats-out=PATH   publish metrics in Prometheus text exposition
//                      format to PATH, atomically (tmp + rename), from a
//                      background thread; one final write on shutdown
//   --stats-interval=S exposition write period in seconds (default 5;
//                      requires --stats-out)
//   --flight-slow=N    flight recorder: retain the N slowest requests
//                      (default 16); --flight-failed=N likewise for the
//                      most recent failures
//   --log-level=L      structured stderr logging threshold:
//                      error|warn|info|debug (default warn; one JSON
//                      line per event)
//   --socket=PATH      accept one client at a time on a Unix domain
//                      socket instead of stdin/stdout (POSIX only). A
//                      stale socket file left by a killed process is
//                      replaced; a path owned by a live server is
//                      refused.
//   --tcp=HOST:PORT    sharded TCP mode (docs/SERVING.md): accept
//                      concurrent connections, consistent-hash jobs
//                      across shards, shed overload with explicit
//                      `overloaded` responses. PORT 0 binds an ephemeral
//                      port (see --tcp-announce).
//   --tcp-announce=PATH write the bound "host:port" to PATH atomically
//                      once listening (scripts discover ephemeral ports
//                      this way)
//   --shards=N         worker shards in --tcp mode (default 4)
//   --vnodes=N         hash-ring virtual nodes per shard (default 64)
//   --max-inflight=N   per-shard admission cap (default 0 = shard
//                      threads + queue capacity)
//
// SIGTERM/SIGINT trigger a graceful drain in --socket and --tcp modes:
// stop accepting, finish every admitted job, flush the stats exporter,
// exit 0.
//
// Example session (one job object per input line):
//   $ ems_serve --threads=4 < jobs.ndjson
//   with jobs.ndjson containing e.g.
//   {"id":"j1","log1":"a.xes","log2":"b.xes"}
//   {"cmd":"stats","id":"s1"}
//   prints one result line per job and one snapshot line for the stats
//   command.
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#ifndef _WIN32
#include <csignal>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <ext/stdio_filebuf.h>  // libstdc++; socket fd -> iostream
#endif

#include "net/tcp_server.h"
#include "net/wire.h"
#include "obs/context.h"
#include "obs/report.h"
#include "serve/service.h"
#include "serve/sharded_service.h"
#include "serve/stats_exporter.h"
#include "util/log.h"
#include "util/timer.h"

namespace {

using namespace ems;

void Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--threads=N] [--queue-size=N] [--cache-size=N]\n"
               "          [--cache-bytes=N] [--cache-dir=PATH]\n"
               "          [--cache-dir-bytes=N]\n"
               "          [--metrics-out=PATH] [--stats-out=PATH]\n"
               "          [--stats-interval=SECONDS] [--flight-slow=N]\n"
               "          [--flight-failed=N] [--log-level=LEVEL]\n"
               "          [--socket=PATH]\n"
               "          [--tcp=HOST:PORT] [--tcp-announce=PATH]\n"
               "          [--shards=N] [--vnodes=N] [--max-inflight=N]\n"
               "reads NDJSON job lines from stdin (or the socket/TCP\n"
               "listener), writes one JSON result line per job; schema\n"
               "documented in src/serve/service.h, wire protocol in\n"
               "docs/SERVING.md\n",
               argv0);
}

struct Flags {
  int threads = 0;
  size_t queue_size = 256;
  size_t cache_size = 64;
  size_t cache_bytes = 0;
  std::string cache_dir;
  unsigned long long cache_dir_bytes = 0;
  std::string metrics_out;
  std::string stats_out;
  double stats_interval = 5.0;
  size_t flight_slow = 16;
  size_t flight_failed = 16;
  std::string socket_path;
  std::string tcp;
  std::string tcp_announce;
  int shards = 4;
  int vnodes = 64;
  size_t max_inflight = 0;
};

bool ParseFlag(const std::string& arg, const char* name, std::string* out) {
  const std::string prefix = std::string("--") + name + "=";
  if (arg.rfind(prefix, 0) != 0) return false;
  *out = arg.substr(prefix.size());
  return true;
}

Result<Flags> ParseArgs(int argc, char** argv) {
  Flags flags;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    std::string value;
    if (ParseFlag(arg, "threads", &value)) {
      flags.threads = std::atoi(value.c_str());
      if (flags.threads < 0) {
        return Status::InvalidArgument("--threads must be >= 0");
      }
    } else if (ParseFlag(arg, "queue-size", &value)) {
      const long n = std::atol(value.c_str());
      if (n <= 0) return Status::InvalidArgument("--queue-size must be > 0");
      flags.queue_size = static_cast<size_t>(n);
    } else if (ParseFlag(arg, "cache-size", &value)) {
      const long n = std::atol(value.c_str());
      if (n <= 0) return Status::InvalidArgument("--cache-size must be > 0");
      flags.cache_size = static_cast<size_t>(n);
    } else if (ParseFlag(arg, "cache-bytes", &value)) {
      const long long n = std::atoll(value.c_str());
      if (n < 0) return Status::InvalidArgument("--cache-bytes must be >= 0");
      flags.cache_bytes = static_cast<size_t>(n);
    } else if (ParseFlag(arg, "cache-dir", &value)) {
      flags.cache_dir = value;
    } else if (ParseFlag(arg, "cache-dir-bytes", &value)) {
      const long long n = std::atoll(value.c_str());
      if (n < 0) {
        return Status::InvalidArgument("--cache-dir-bytes must be >= 0");
      }
      flags.cache_dir_bytes = static_cast<unsigned long long>(n);
    } else if (ParseFlag(arg, "metrics-out", &value)) {
      flags.metrics_out = value;
    } else if (ParseFlag(arg, "stats-out", &value)) {
      flags.stats_out = value;
    } else if (ParseFlag(arg, "stats-interval", &value)) {
      flags.stats_interval = std::atof(value.c_str());
      if (flags.stats_interval <= 0.0) {
        return Status::InvalidArgument("--stats-interval must be > 0");
      }
    } else if (ParseFlag(arg, "flight-slow", &value)) {
      const long n = std::atol(value.c_str());
      if (n < 0) return Status::InvalidArgument("--flight-slow must be >= 0");
      flags.flight_slow = static_cast<size_t>(n);
    } else if (ParseFlag(arg, "flight-failed", &value)) {
      const long n = std::atol(value.c_str());
      if (n < 0) {
        return Status::InvalidArgument("--flight-failed must be >= 0");
      }
      flags.flight_failed = static_cast<size_t>(n);
    } else if (ParseFlag(arg, "log-level", &value)) {
      Result<LogLevel> level = ParseLogLevel(value);
      if (!level.ok()) return level.status();
      SetGlobalLogLevel(*level);
    } else if (ParseFlag(arg, "socket", &value)) {
      flags.socket_path = value;
    } else if (ParseFlag(arg, "tcp", &value)) {
      flags.tcp = value;
    } else if (ParseFlag(arg, "tcp-announce", &value)) {
      flags.tcp_announce = value;
    } else if (ParseFlag(arg, "shards", &value)) {
      flags.shards = std::atoi(value.c_str());
      if (flags.shards < 1) {
        return Status::InvalidArgument("--shards must be >= 1");
      }
    } else if (ParseFlag(arg, "vnodes", &value)) {
      flags.vnodes = std::atoi(value.c_str());
      if (flags.vnodes < 1) {
        return Status::InvalidArgument("--vnodes must be >= 1");
      }
    } else if (ParseFlag(arg, "max-inflight", &value)) {
      const long long n = std::atoll(value.c_str());
      if (n < 0) {
        return Status::InvalidArgument("--max-inflight must be >= 0");
      }
      flags.max_inflight = static_cast<size_t>(n);
    } else {
      return Status::InvalidArgument("unknown argument '" + arg + "'");
    }
  }
  if (!flags.socket_path.empty() && !flags.tcp.empty()) {
    return Status::InvalidArgument("--socket and --tcp are exclusive");
  }
  return flags;
}

#ifndef _WIN32
// Graceful-drain signal plumbing. The handler may only touch lock-free
// atomics and async-signal-safe syscalls (write/shutdown), so it pokes
// the wake pipe, half-closes the in-flight socket-mode connection, and
// forwards to TcpServer::RequestDrain (itself a CAS + pipe write).
std::atomic<bool> g_drain_requested{false};
std::atomic<int> g_active_conn_fd{-1};
int g_signal_pipe[2] = {-1, -1};
net::TcpServer* g_tcp_server = nullptr;  // set before handlers install

extern "C" void HandleDrainSignal(int /*signo*/) {
  g_drain_requested.store(true, std::memory_order_release);
  if (g_tcp_server != nullptr) g_tcp_server->RequestDrain();
  const int conn = g_active_conn_fd.load(std::memory_order_acquire);
  if (conn >= 0) ::shutdown(conn, SHUT_RD);
  if (g_signal_pipe[1] >= 0) {
    const char byte = 1;
    [[maybe_unused]] ssize_t n = ::write(g_signal_pipe[1], &byte, 1);
  }
}

void InstallDrainHandlers() {
  struct sigaction action {};
  action.sa_handler = HandleDrainSignal;
  ::sigemptyset(&action.sa_mask);
  action.sa_flags = SA_RESTART;
  ::sigaction(SIGTERM, &action, nullptr);
  ::sigaction(SIGINT, &action, nullptr);
}

// Serves clients on a Unix domain socket, one connection at a time (each
// connection streams NDJSON jobs and reads NDJSON results back). Clients
// end their session by closing; SIGTERM/SIGINT drain: the current
// connection's read side is half-closed so RunStream sees EOF, finishes
// every queued job, and the loop exits 0.
int ServeSocket(serve::BatchMatchService& service, const std::string& path) {
  // A leftover socket file from a killed process must not block restart,
  // but a path a live server still answers on must not be stolen: probe
  // with a connect first — success means "address in use", refusal means
  // the file is stale and safe to unlink.
  if (Result<int> probe = net::ConnectUnix(path); probe.ok()) {
    ::close(*probe);
    LogError("socket " + path + " is in use by a running server");
    return 2;
  }
  ::unlink(path.c_str());
  const int listen_fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd < 0) {
    LogError(std::string("socket: ") + std::strerror(errno));
    return 1;
  }
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    LogError("socket path too long: " + path);
    ::close(listen_fd);
    return 2;
  }
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  if (::bind(listen_fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
          0 ||
      ::listen(listen_fd, 4) < 0) {
    LogError(std::string("bind/listen: ") + std::strerror(errno));
    ::close(listen_fd);
    return 1;
  }
  if (::pipe(g_signal_pipe) != 0) {
    LogError(std::string("pipe: ") + std::strerror(errno));
    ::close(listen_fd);
    return 1;
  }
  InstallDrainHandlers();
  LogInfo("listening on " + path);
  int rc = 1;
  for (;;) {
    if (g_drain_requested.load(std::memory_order_acquire)) {
      rc = 0;
      break;
    }
    struct pollfd fds[2] = {{listen_fd, POLLIN, 0},
                            {g_signal_pipe[0], POLLIN, 0}};
    if (::poll(fds, 2, -1) < 0) {
      if (errno == EINTR) continue;
      LogError(std::string("poll: ") + std::strerror(errno));
      break;
    }
    if (fds[1].revents != 0) {
      rc = 0;  // drain signal; nothing in flight
      break;
    }
    if ((fds[0].revents & POLLIN) == 0) continue;
    const int conn = ::accept(listen_fd, nullptr, nullptr);
    if (conn < 0) {
      if (errno == EINTR) continue;
      LogError(std::string("accept: ") + std::strerror(errno));
      break;
    }
    g_active_conn_fd.store(conn, std::memory_order_release);
    if (g_drain_requested.load(std::memory_order_acquire)) {
      // The signal raced the accept: the handler saw fd -1, so half-
      // close here; RunStream still answers whatever arrived first.
      ::shutdown(conn, SHUT_RD);
    }
    {
      __gnu_cxx::stdio_filebuf<char> in_buf(conn, std::ios::in);
      __gnu_cxx::stdio_filebuf<char> out_buf(::dup(conn), std::ios::out);
      std::istream in(&in_buf);
      std::ostream out(&out_buf);
      const size_t jobs = service.RunStream(in, out);
      g_active_conn_fd.store(-1, std::memory_order_release);
      LogInfo("connection done (" + std::to_string(jobs) + " lines)");
    }  // filebufs close both fds
    if (g_drain_requested.load(std::memory_order_acquire)) {
      rc = 0;
      break;
    }
  }
  ::close(listen_fd);
  ::close(g_signal_pipe[0]);
  ::close(g_signal_pipe[1]);
  ::unlink(path.c_str());
  if (rc == 0) LogInfo("drained; all accepted jobs answered");
  return rc;
}

// Writes the bound endpoint to the announce file atomically (tmp +
// rename), so scripts using --tcp=...:0 can discover the real port.
Status AnnounceEndpoint(const std::string& path, const std::string& host,
                        int port) {
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "w");
  if (f == nullptr) return Status::IOError("open " + tmp + " failed");
  const std::string line = host + ":" + std::to_string(port) + "\n";
  const bool wrote = std::fwrite(line.data(), 1, line.size(), f) ==
                     line.size();
  if (std::fclose(f) != 0 || !wrote ||
      std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::IOError("write " + path + " failed");
  }
  return Status::OK();
}

// Sharded TCP mode: router + transport + drain wiring (the tentpole
// deployment shape; docs/SERVING.md).
int ServeTcp(const Flags& flags) {
  Result<net::HostPort> endpoint = net::ParseHostPort(flags.tcp);
  if (!endpoint.ok()) {
    LogError("--tcp: " + endpoint.status().message());
    return 2;
  }

  serve::ShardedServiceOptions options;
  options.num_shards = flags.shards;
  options.vnodes_per_shard = flags.vnodes;
  options.total_threads = flags.threads;
  options.shard_queue_capacity = flags.queue_size;
  options.max_inflight_per_shard = flags.max_inflight;
  options.cache_capacity = flags.cache_size;
  options.cache_byte_budget = flags.cache_bytes;
  options.cache_dir = flags.cache_dir;
  options.cache_dir_bytes = flags.cache_dir_bytes;
  options.flight_slow_capacity = flags.flight_slow;
  options.flight_failed_capacity = flags.flight_failed;
  serve::ShardedMatchService router(options);

  serve::StatsExporter stats_exporter(
      flags.stats_out.empty() ? nullptr : router.obs(), flags.stats_out,
      flags.stats_interval);
  Timer total_timer;

  net::TcpServerOptions server_options;
  server_options.host = endpoint->host;
  server_options.port = endpoint->port;
  server_options.obs = router.obs();
  net::TcpServer server(server_options, &router);
  Status started = server.Start();
  if (!started.ok()) {
    LogError("listen on " + flags.tcp + ": " + started.message());
    return 1;
  }
  // The `drain` admin command stops the transport too; signals stop the
  // transport first and the router drains once connections are done.
  router.SetDrainRequestCallback([&server] { server.RequestDrain(); });
  g_tcp_server = &server;
  InstallDrainHandlers();

  LogInfo("listening on " + endpoint->host + ":" +
          std::to_string(server.port()) + " (" +
          std::to_string(router.num_shards()) + " shards)");
  if (!flags.tcp_announce.empty()) {
    Status announced =
        AnnounceEndpoint(flags.tcp_announce, endpoint->host, server.port());
    if (!announced.ok()) {
      LogError(announced.message());
      g_tcp_server = nullptr;
      return 1;
    }
  }

  const uint64_t served = server.Wait();
  g_tcp_server = nullptr;
  router.Drain();
  router.WaitDrained();
  LogInfo("drained after " + std::to_string(served) + " connections");

  stats_exporter.Stop();  // final exposition write before the report
  if (!flags.metrics_out.empty()) {
    PipelineReport report =
        BuildPipelineReport(router.obs(), EmsStats{}, CompositeStats{},
                            total_timer.ElapsedMillis());
    Status st = report.WriteJsonFile(flags.metrics_out);
    if (!st.ok()) {
      LogError("error writing " + flags.metrics_out + ": " + st.ToString());
      return 1;
    }
  }
  return 0;
}
#endif

int Run(int argc, char** argv) {
  Result<Flags> flags_result = ParseArgs(argc, argv);
  if (!flags_result.ok()) {
    LogError(flags_result.status().message());
    Usage(argv[0]);
    return 2;
  }
  const Flags& flags = *flags_result;

  if (!flags.tcp.empty()) {
#ifndef _WIN32
    return ServeTcp(flags);
#else
    LogError("--tcp is not supported on this OS");
    return 2;
#endif
  }

  serve::ServiceOptions options;
  options.threads = flags.threads;
  options.queue_capacity = flags.queue_size;
  options.cache_capacity = flags.cache_size;
  options.cache_byte_budget = flags.cache_bytes;
  options.cache_dir = flags.cache_dir;
  options.cache_dir_bytes = flags.cache_dir_bytes;
  options.flight_slow_capacity = flags.flight_slow;
  options.flight_failed_capacity = flags.flight_failed;
  // The service owns its telemetry context (options.obs stays null), so
  // stats/health/slow and the exposition export always have live data.

  serve::BatchMatchService service(options);
  serve::StatsExporter stats_exporter(
      flags.stats_out.empty() ? nullptr : service.obs(), flags.stats_out,
      flags.stats_interval);
  Timer total_timer;
  int rc = 0;
  if (!flags.socket_path.empty()) {
#ifndef _WIN32
    rc = ServeSocket(service, flags.socket_path);
#else
    LogError("--socket is not supported on this OS");
    return 2;
#endif
  } else {
    const size_t jobs = service.RunStream(std::cin, std::cout);
    LogInfo("stream done: " + std::to_string(jobs) + " lines, cache " +
            std::to_string(service.cache().hits()) + " hits / " +
            std::to_string(service.cache().misses()) + " misses");
  }

  stats_exporter.Stop();  // final exposition write before the report
  if (!flags.metrics_out.empty()) {
    PipelineReport report =
        BuildPipelineReport(service.obs(), EmsStats{}, CompositeStats{},
                            total_timer.ElapsedMillis());
    Status st = report.WriteJsonFile(flags.metrics_out);
    if (!st.ok()) {
      LogError("error writing " + flags.metrics_out + ": " + st.ToString());
      return 1;
    }
  }
  return rc;
}

}  // namespace

int main(int argc, char** argv) { return Run(argc, argv); }
