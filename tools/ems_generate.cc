// ems_generate: synthetic heterogeneous log-pair generator — exports the
// corpus this repository evaluates on so external tools (ProM, PM4Py,
// other matchers) can be compared on identical inputs.
//
//   ems_generate [options] OUTPUT_DIR
//
// Options:
//   --corpus=N           generate an N-member warehouse corpus instead
//                        of pairs: many process families with private
//                        vocabularies, --family-size members each
//                        (docs/CORPUS.md); writes <dir>/famK_<m>.<ext>
//   --family-size=N      members per corpus family (default 2)
//   --pairs=N            log pairs to generate (default 10)
//   --testbed=dsf|dsb|dsfb   dislocation testbed (default dsfb)
//   --activities=N       activities per process (default 20)
//   --traces=N           traces per log (default 150)
//   --dislocation=N      events removed from trace boundaries (default 2)
//   --composites=N       composite events injected per pair (default 0)
//   --append=N           traces per streaming delta batch (default 0:
//                        no batches); continues log a's own play-out, so
//                        a + batches in order == one longer play-out
//   --append-batches=B   delta batches per pair (default 1)
//   --seed=N             master seed (default 2014)
//   --format=xes|mxml|csv|trace  export format (default xes)
//
// Each pair becomes <dir>/pairK_a.<ext>, <dir>/pairK_b.<ext>, and
// <dir>/pairK_truth.tsv (left<TAB>right per correspondence link); with
// --append also <dir>/pairK_a_append<j>.<ext> per batch, ready to feed
// the serve layer's {"cmd": "append"} as `delta` files
// (docs/STREAMING.md).
#include <cstdio>
#include <fstream>
#include <string>

#include "log/log_io.h"
#include "log/mxml.h"
#include "log/xes.h"
#include "synth/dataset.h"

namespace {

using namespace ems;

Status ExportLog(const EventLog& log, const std::string& path,
                 const std::string& format) {
  if (format == "xes") return WriteXesFile(log, path + ".xes");
  if (format == "mxml") return WriteMxmlFile(log, path + ".mxml");
  if (format == "csv") {
    std::ofstream out(path + ".csv");
    if (!out) return Status::IOError("cannot open " + path + ".csv");
    return WriteCsv(log, out);
  }
  if (format == "trace") return WriteTraceFile(log, path + ".txt");
  return Status::InvalidArgument("unknown format '" + format + "'");
}

Status ExportTruth(const GroundTruth& truth, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open " + path);
  out << "left\tright\n";
  for (const auto& [l, r] : truth.Links()) {
    out << l << '\t' << r << '\n';
  }
  return out ? Status::OK() : Status::IOError("write failed");
}

}  // namespace

int main(int argc, char** argv) {
  int pairs = 10;
  int corpus = 0;
  int family_size = 2;
  std::string testbed = "dsfb";
  int activities = 20;
  int traces = 150;
  int dislocation = 2;
  int composites = 0;
  int append = 0;
  int append_batches = 1;
  uint64_t seed = 2014;
  std::string format = "xes";
  std::string dir;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto value_of = [&](const char* name) -> const char* {
      std::string prefix = std::string("--") + name + "=";
      return arg.rfind(prefix, 0) == 0 ? arg.c_str() + prefix.size()
                                       : nullptr;
    };
    if (const char* v = value_of("pairs")) pairs = std::atoi(v);
    else if (const char* v = value_of("corpus")) corpus = std::atoi(v);
    else if (const char* v = value_of("family-size")) {
      family_size = std::atoi(v);
    } else if (const char* v = value_of("testbed")) testbed = v;
    else if (const char* v = value_of("activities")) activities = std::atoi(v);
    else if (const char* v = value_of("traces")) traces = std::atoi(v);
    else if (const char* v = value_of("dislocation")) {
      dislocation = std::atoi(v);
    } else if (const char* v = value_of("composites")) {
      composites = std::atoi(v);
    } else if (const char* v = value_of("append")) {
      append = std::atoi(v);
    } else if (const char* v = value_of("append-batches")) {
      append_batches = std::atoi(v);
    } else if (const char* v = value_of("seed")) {
      seed = static_cast<uint64_t>(std::atoll(v));
    } else if (const char* v = value_of("format")) format = v;
    else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "unknown option %s\n", arg.c_str());
      return 2;
    } else {
      dir = arg;
    }
  }
  if (dir.empty()) {
    std::fprintf(stderr, "usage: %s [options] OUTPUT_DIR\n", argv[0]);
    return 2;
  }
  Testbed tb = testbed == "dsf"   ? Testbed::kDsF
               : testbed == "dsb" ? Testbed::kDsB
                                  : Testbed::kDsFB;

  if (corpus > 0) {
    SynthCorpusOptions corpus_opts;
    corpus_opts.num_members = corpus;
    corpus_opts.members_per_family = family_size;
    corpus_opts.seed = seed;
    corpus_opts.min_activities = std::max(4, activities - 5);
    corpus_opts.max_activities = activities + 5;
    corpus_opts.num_traces = traces;
    std::vector<CorpusMember> members = MakeCorpus(corpus_opts);
    for (const CorpusMember& member : members) {
      Status s = ExportLog(member.log, dir + "/" + member.name, format);
      if (!s.ok()) {
        std::fprintf(stderr, "export failed: %s\n", s.ToString().c_str());
        return 1;
      }
    }
    const int families =
        members.empty() ? 0 : members.back().family + 1;
    std::printf("generated a %zu-member corpus (%d families, ~%d members "
                "each, %d traces) in %s\n",
                members.size(), families, family_size, traces, dir.c_str());
    return 0;
  }

  Rng meta(seed);
  for (int k = 0; k < pairs; ++k) {
    PairOptions opts;
    opts.num_activities = activities;
    opts.num_traces = traces;
    opts.dislocation = dislocation;
    opts.num_composites = composites;
    opts.seed = meta.engine()();
    LogPair pair = MakeLogPair(tb, opts);

    std::string base = dir + "/pair" + std::to_string(k);
    Status s = ExportLog(pair.log1, base + "_a", format);
    if (s.ok()) s = ExportLog(pair.log2, base + "_b", format);
    if (s.ok()) s = ExportTruth(pair.truth, base + "_truth.tsv");
    if (s.ok() && append > 0) {
      std::vector<EventLog> batches =
          MakeAppendBatches(opts, append, append_batches);
      for (size_t j = 0; j < batches.size() && s.ok(); ++j) {
        s = ExportLog(batches[j], base + "_a_append" + std::to_string(j),
                      format);
      }
    }
    if (!s.ok()) {
      std::fprintf(stderr, "export failed: %s\n", s.ToString().c_str());
      return 1;
    }
  }
  std::printf("generated %d %s pairs (%d activities, %d traces, "
              "dislocation %d, %d composites%s) in %s\n",
              pairs, TestbedName(tb), activities, traces, dislocation,
              composites,
              append > 0 ? (", " + std::to_string(append_batches) + "x" +
                            std::to_string(append) + "-trace append batches")
                               .c_str()
                         : "",
              dir.c_str());
  return 0;
}
