// ems_stats: event-log inspection — summary counters, the most frequent
// trace variants, per-event frequencies, and (optionally) the dependency
// graph as Graphviz DOT.
//
//   ems_stats [--format=auto|trace|csv|xes|mxml] [--variants=N] [--dot]
//             [--cache-dir=PATH] LOG
//
// With --cache-dir the parsed log is snapshotted into the persistent
// artifact store (docs/PERSISTENCE.md) and re-runs load the snapshot
// instead of re-parsing.
#include <cstdio>
#include <optional>
#include <string>

#include "graph/dot_export.h"
#include "log/log_filter.h"
#include "log/log_stats.h"
#include "serve/log_cache.h"
#include "store/artifact_store.h"
#include "util/string_util.h"

using namespace ems;

int main(int argc, char** argv) {
  std::string format = "auto";
  size_t show_variants = 5;
  bool dot = false;
  std::string cache_dir;
  std::string path;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--format=", 0) == 0) format = arg.substr(9);
    else if (arg.rfind("--variants=", 0) == 0) {
      show_variants = static_cast<size_t>(std::atoi(arg.c_str() + 11));
    } else if (arg.rfind("--cache-dir=", 0) == 0) {
      cache_dir = arg.substr(12);
    } else if (arg == "--dot") dot = true;
    else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "unknown option %s\n", arg.c_str());
      return 2;
    } else path = arg;
  }
  if (path.empty()) {
    std::fprintf(stderr, "usage: %s [options] LOG\n", argv[0]);
    return 2;
  }

  std::optional<store::ArtifactStore> artifact_store;
  if (!cache_dir.empty()) {
    store::ArtifactStoreOptions store_options;
    store_options.dir = cache_dir;
    Result<store::ArtifactStore> opened =
        store::ArtifactStore::Open(std::move(store_options));
    if (opened.ok()) {
      artifact_store = std::move(opened).value();
    } else {
      std::fprintf(stderr, "warning: %s; running without cache\n",
                   opened.status().message().c_str());
    }
  }

  Result<EventLog> log = serve::LoadEventLogThroughStore(
      artifact_store.has_value() ? &*artifact_store : nullptr, path, format);
  if (!log.ok()) {
    std::fprintf(stderr, "error: %s\n", log.status().ToString().c_str());
    return 1;
  }

  LogSummary s = Summarize(*log);
  std::printf("%s\n", path.c_str());
  std::printf("  traces:            %zu\n", s.num_traces);
  std::printf("  distinct events:   %zu\n", s.num_events);
  std::printf("  occurrences:       %zu\n", s.total_occurrences);
  std::printf("  trace variants:    %zu\n", s.num_variants);
  std::printf("  trace length:      min %zu / mean %.1f / max %zu\n",
              s.min_trace_length, s.mean_trace_length, s.max_trace_length);

  LogStats stats(*log);
  std::printf("\nevent frequencies (fraction of traces):\n");
  for (EventId e = 0; e < static_cast<EventId>(log->NumEvents()); ++e) {
    std::printf("  %-40s %.3f\n", log->EventName(e).c_str(),
                stats.EventFrequency(e));
  }

  std::vector<TraceVariant> variants = TraceVariants(*log);
  std::printf("\ntop trace variants:\n");
  for (size_t i = 0; i < std::min(show_variants, variants.size()); ++i) {
    std::printf("  %4zux  %s\n", variants[i].count,
                Join(variants[i].activities, " -> ").c_str());
  }

  if (dot) {
    DependencyGraph g = DependencyGraph::Build(*log);
    std::printf("\n%s", ToDot(g).c_str());
  }
  return 0;
}
