// ems_loadgen: open-loop load generator for the networked matching
// service (docs/SERVING.md). Drives a weighted mix of match jobs, stats
// probes, and a cache-miss storm (match jobs cycling through many
// distinct generated logs so every request misses the parsed-log LRU)
// at a target arrival rate, and reports achieved QPS, latency quantiles,
// and per-status counts. The schedule is open-loop: it does not slow
// down when the service does, so saturation shows up as lag plus
// `overloaded` responses instead of being absorbed silently.
//
//   ems_loadgen --tcp=HOST:PORT [options]
//   ems_loadgen --socket=PATH [options]
//
// Options:
//   --tcp=HOST:PORT    TCP endpoint of ems_serve --tcp
//   --socket=PATH      Unix-socket endpoint of ems_serve --socket
//   --connections=N    concurrent connections (default 4)
//   --qps=Q            target arrival rate across connections
//                      (default 200)
//   --duration=S       generation window in seconds (default 5)
//   --max-requests=N   hard request cap (default 0 = duration governs)
//   --mix=M:S:C        integer weights of match:stats:storm requests
//                      (default 90:5:5); each request slot picks by
//                      sequence modulo the weight total
//   --log1=P --log2=P  the log pair of plain match jobs (required when
//                      the match weight is > 0)
//   --storm-logs=N     distinct generated logs the storm cycles through
//                      (default 64; written under TMPDIR, removed on
//                      exit)
//   --labels=NAME      label measure of generated jobs (default none)
//   --json-out=PATH    write the report as one JSON object to PATH
//                      (atomically, tmp + rename)
//
// Exit status: 0 on a clean run, 1 when any response failed to parse or
// carried an unknown id (protocol errors), 2 on usage/connect errors.
// Rejections (`overloaded`, `draining`) are load-test data, not errors.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "net/loadgen.h"
#include "net/wire.h"
#include "util/json_writer.h"
#include "util/log.h"
#include "util/status.h"

namespace {

using namespace ems;

void Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s (--tcp=HOST:PORT | --socket=PATH) [--connections=N]\n"
      "          [--qps=Q] [--duration=S] [--max-requests=N]\n"
      "          [--mix=MATCH:STATS:STORM] [--log1=PATH --log2=PATH]\n"
      "          [--storm-logs=N] [--labels=NAME] [--json-out=PATH]\n",
      argv0);
}

struct Flags {
  std::string tcp;
  std::string socket_path;
  int connections = 4;
  double qps = 200.0;
  double duration = 5.0;
  unsigned long long max_requests = 0;
  int match_weight = 90;
  int stats_weight = 5;
  int storm_weight = 5;
  std::string log1;
  std::string log2;
  int storm_logs = 64;
  std::string labels = "none";
  std::string json_out;
};

bool ParseFlag(const std::string& arg, const char* name, std::string* out) {
  const std::string prefix = std::string("--") + name + "=";
  if (arg.rfind(prefix, 0) != 0) return false;
  *out = arg.substr(prefix.size());
  return true;
}

Result<Flags> ParseArgs(int argc, char** argv) {
  Flags flags;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    std::string value;
    if (ParseFlag(arg, "tcp", &value)) {
      flags.tcp = value;
    } else if (ParseFlag(arg, "socket", &value)) {
      flags.socket_path = value;
    } else if (ParseFlag(arg, "connections", &value)) {
      flags.connections = std::atoi(value.c_str());
      if (flags.connections < 1) {
        return Status::InvalidArgument("--connections must be >= 1");
      }
    } else if (ParseFlag(arg, "qps", &value)) {
      flags.qps = std::atof(value.c_str());
      if (flags.qps <= 0.0) {
        return Status::InvalidArgument("--qps must be > 0");
      }
    } else if (ParseFlag(arg, "duration", &value)) {
      flags.duration = std::atof(value.c_str());
      if (flags.duration <= 0.0) {
        return Status::InvalidArgument("--duration must be > 0");
      }
    } else if (ParseFlag(arg, "max-requests", &value)) {
      flags.max_requests = std::strtoull(value.c_str(), nullptr, 10);
    } else if (ParseFlag(arg, "mix", &value)) {
      if (std::sscanf(value.c_str(), "%d:%d:%d", &flags.match_weight,
                      &flags.stats_weight, &flags.storm_weight) != 3 ||
          flags.match_weight < 0 || flags.stats_weight < 0 ||
          flags.storm_weight < 0 ||
          flags.match_weight + flags.stats_weight + flags.storm_weight ==
              0) {
        return Status::InvalidArgument(
            "--mix must be MATCH:STATS:STORM nonnegative weights, not all "
            "zero");
      }
    } else if (ParseFlag(arg, "log1", &value)) {
      flags.log1 = value;
    } else if (ParseFlag(arg, "log2", &value)) {
      flags.log2 = value;
    } else if (ParseFlag(arg, "storm-logs", &value)) {
      flags.storm_logs = std::atoi(value.c_str());
      if (flags.storm_logs < 1) {
        return Status::InvalidArgument("--storm-logs must be >= 1");
      }
    } else if (ParseFlag(arg, "labels", &value)) {
      flags.labels = value;
    } else if (ParseFlag(arg, "json-out", &value)) {
      flags.json_out = value;
    } else {
      return Status::InvalidArgument("unknown argument '" + arg + "'");
    }
  }
  if (flags.tcp.empty() == flags.socket_path.empty()) {
    return Status::InvalidArgument(
        "exactly one of --tcp or --socket is required");
  }
  if (flags.match_weight > 0 &&
      (flags.log1.empty() || flags.log2.empty())) {
    return Status::InvalidArgument(
        "--log1 and --log2 are required when the match weight is > 0");
  }
  return flags;
}

std::string TempDir() {
  const char* env = std::getenv("TMPDIR");
  return env != nullptr ? env : "/tmp";
}

// Generates the storm corpus: small distinct trace logs, one file per
// storm slot, each with a unique activity so no two parse identically.
Status WriteStormLogs(const std::string& dir, int count,
                      std::vector<std::string>* paths) {
  for (int i = 0; i < count; ++i) {
    const std::string path =
        dir + "/ems_loadgen_storm_" + std::to_string(i) + ".txt";
    std::ofstream out(path);
    if (!out) return Status::IOError("cannot write " + path);
    out << "a;b;s" << i << ";d\na;s" << i << ";d\nb;a;d\n";
    if (!out.good()) return Status::IOError("cannot write " + path);
    paths->push_back(path);
  }
  return Status::OK();
}

std::string MatchLine(const std::string& id, const std::string& log1,
                      const std::string& log2, const std::string& labels) {
  JsonWriter w;
  w.BeginObject();
  w.Key("id");
  w.String(id);
  w.Key("log1");
  w.String(log1);
  w.Key("log2");
  w.String(log2);
  w.Key("labels");
  w.String(labels);
  w.EndObject();
  return w.str();
}

Status WriteJsonReport(const std::string& path, const Flags& flags,
                       const net::LoadGenReport& report) {
  JsonWriter w;
  w.BeginObject();
  w.Key("target_qps");
  w.Number(flags.qps);
  w.Key("achieved_qps");
  w.Number(report.achieved_qps);
  w.Key("duration_seconds");
  w.Number(flags.duration);
  w.Key("elapsed_seconds");
  w.Number(report.elapsed_seconds);
  w.Key("connections");
  w.Int(flags.connections);
  w.Key("sent");
  w.Int(static_cast<long long>(report.sent));
  w.Key("responses");
  w.Int(static_cast<long long>(report.responses));
  w.Key("send_errors");
  w.Int(static_cast<long long>(report.send_errors));
  w.Key("protocol_errors");
  w.Int(static_cast<long long>(report.protocol_errors));
  w.Key("status_counts");
  w.BeginObject();
  for (const auto& [status, count] : report.status_counts) {
    w.Key(status);
    w.Int(static_cast<long long>(count));
  }
  w.EndObject();
  w.Key("latency_ms");
  w.BeginObject();
  w.Key("mean");
  w.Number(report.MeanLatencyMs());
  w.Key("p50");
  w.Number(report.LatencyQuantileMs(0.50));
  w.Key("p90");
  w.Number(report.LatencyQuantileMs(0.90));
  w.Key("p99");
  w.Number(report.LatencyQuantileMs(0.99));
  w.Key("max");
  w.Number(report.latencies_ms.empty() ? 0.0
                                       : report.latencies_ms.back());
  w.EndObject();
  w.Key("max_lag_seconds");
  w.Number(report.max_lag_seconds);
  w.EndObject();

  const std::string tmp = path + ".tmp";
  std::ofstream out(tmp);
  if (!out) return Status::IOError("cannot write " + tmp);
  out << w.str() << "\n";
  out.flush();
  const bool good = out.good();
  out.close();
  if (!good || std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::IOError("cannot write " + path);
  }
  return Status::OK();
}

int Run(int argc, char** argv) {
  Result<Flags> flags_result = ParseArgs(argc, argv);
  if (!flags_result.ok()) {
    LogError(flags_result.status().message());
    Usage(argv[0]);
    return 2;
  }
  const Flags& flags = *flags_result;

  std::vector<std::string> storm_paths;
  if (flags.storm_weight > 0) {
    Status st = WriteStormLogs(TempDir(), flags.storm_logs, &storm_paths);
    if (!st.ok()) {
      LogError(st.message());
      return 2;
    }
  }

  const int total_weight =
      flags.match_weight + flags.stats_weight + flags.storm_weight;
  net::LoadGenOptions options;
  options.tcp = flags.tcp;
  options.socket_path = flags.socket_path;
  options.connections = flags.connections;
  options.target_qps = flags.qps;
  options.duration_seconds = flags.duration;
  options.max_requests = flags.max_requests;
  options.make_line = [&flags, &storm_paths, total_weight](
                          uint64_t seq, const std::string& id) {
    const int slot = static_cast<int>(seq % total_weight);
    if (slot < flags.match_weight) {
      return MatchLine(id, flags.log1, flags.log2, flags.labels);
    }
    if (slot < flags.match_weight + flags.stats_weight) {
      return std::string("{\"id\":\"") + id + "\",\"cmd\":\"stats\"}";
    }
    // Cache-miss storm: cycle the generated corpus; successive storm
    // requests hit different logs, so the LRU never warms up.
    const std::string& log1 =
        storm_paths[seq % storm_paths.size()];
    const std::string& log2 =
        storm_paths[(seq + 1) % storm_paths.size()];
    return MatchLine(id, log1, log2, flags.labels);
  };

  Result<net::LoadGenReport> run = net::RunLoadGen(options);
  for (const std::string& path : storm_paths) std::remove(path.c_str());
  if (!run.ok()) {
    LogError(run.status().ToString());
    return 2;
  }
  const net::LoadGenReport& report = *run;

  std::printf("sent %llu, responses %llu (%.1f qps achieved of %.1f)\n",
              static_cast<unsigned long long>(report.sent),
              static_cast<unsigned long long>(report.responses),
              report.achieved_qps, flags.qps);
  for (const auto& [status, count] : report.status_counts) {
    std::printf("  status %-12s %llu\n", status.c_str(),
                static_cast<unsigned long long>(count));
  }
  std::printf("latency ms: p50 %.2f  p90 %.2f  p99 %.2f  max %.2f\n",
              report.LatencyQuantileMs(0.50),
              report.LatencyQuantileMs(0.90),
              report.LatencyQuantileMs(0.99),
              report.latencies_ms.empty() ? 0.0
                                          : report.latencies_ms.back());
  std::printf("max schedule lag: %.3f s; send errors %llu; protocol "
              "errors %llu\n",
              report.max_lag_seconds,
              static_cast<unsigned long long>(report.send_errors),
              static_cast<unsigned long long>(report.protocol_errors));

  if (!flags.json_out.empty()) {
    Status st = WriteJsonReport(flags.json_out, flags, report);
    if (!st.ok()) {
      LogError(st.message());
      return 2;
    }
  }
  return report.protocol_errors == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) { return Run(argc, argv); }
