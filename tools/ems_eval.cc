// ems_eval: score a matching against ground truth. Both files are TSV
// link lists (header "left<TAB>right", one correspondence link per row —
// exactly what ems_generate exports and `ems_match --tsv` emits, after
// expanding "a + b" groups into their member links).
//
//   ems_eval [--threads=N] [--metrics-out=PATH] TRUTH.tsv FOUND.tsv
//
// --threads controls the worker pool (default hardware concurrency,
// 0 = serial); with more than one worker the two link files load
// concurrently. --metrics-out writes a PipelineReport JSON with spans
// for the load_truth / load_found / evaluate phases and link counters
// (parallel loads are counted, not spanned — spans are single-thread).
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <set>
#include <string>

#include "eval/metrics.h"
#include "exec/parallel.h"
#include "exec/thread_pool.h"
#include "obs/context.h"
#include "obs/report.h"
#include "util/string_util.h"
#include "util/timer.h"

namespace {

using namespace ems;

// Splits an "a + b + c" group cell into member names.
std::vector<std::string> ExpandGroup(const std::string& cell) {
  std::vector<std::string> members;
  for (const std::string& part : Split(cell, '+')) {
    std::string_view trimmed = Trim(part);
    if (!trimmed.empty()) members.emplace_back(trimmed);
  }
  return members;
}

Result<std::set<std::pair<std::string, std::string>>> ReadLinks(
    const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open '" + path + "'");
  std::set<std::pair<std::string, std::string>> links;
  std::string line;
  bool first = true;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (Trim(line).empty()) continue;
    std::vector<std::string> cells = Split(line, '\t');
    if (cells.size() < 2) {
      return Status::ParseError(path + ":" + std::to_string(line_no) +
                                ": expected two tab-separated columns");
    }
    if (first) {
      first = false;
      std::string l = ToLower(Trim(cells[0]));
      if (l == "left") continue;  // header row
    }
    // Group cells expand to the cartesian product of their members.
    for (const std::string& l : ExpandGroup(cells[0])) {
      for (const std::string& r : ExpandGroup(cells[1])) {
        links.emplace(l, r);
      }
    }
  }
  return links;
}

}  // namespace

int main(int argc, char** argv) {
  std::string metrics_out;
  int threads = -1;  // -1 = unset -> hardware concurrency
  std::vector<std::string> positional;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    const std::string prefix = "--metrics-out=";
    const std::string threads_prefix = "--threads=";
    if (arg.rfind(prefix, 0) == 0) {
      metrics_out = arg.substr(prefix.size());
    } else if (arg.rfind(threads_prefix, 0) == 0) {
      threads = std::atoi(arg.substr(threads_prefix.size()).c_str());
      if (threads < 0) {
        std::fprintf(stderr, "error: --threads must be >= 0\n");
        return 2;
      }
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "error: unknown option '%s'\n", arg.c_str());
      return 2;
    } else {
      positional.push_back(arg);
    }
  }
  if (positional.size() != 2) {
    std::fprintf(stderr,
                 "usage: %s [--threads=N] [--metrics-out=PATH] TRUTH.tsv "
                 "FOUND.tsv\n",
                 argv[0]);
    return 2;
  }

  ObsContext obs_storage;
  ObsContext* obs = metrics_out.empty() ? nullptr : &obs_storage;
  Timer total_timer;

  // CLI contract: default = hardware concurrency, 0 = serial.
  const int workers =
      threads < 0 ? exec::ThreadPool::EffectiveThreads(0) : threads;
  Result<std::set<std::pair<std::string, std::string>>> truth =
      Status::Internal("not loaded");
  Result<std::set<std::pair<std::string, std::string>>> found =
      Status::Internal("not loaded");
  if (workers > 1) {
    exec::ThreadPool pool(2);
    exec::TaskGroup group(&pool);
    group.Run([&]() -> Status {
      truth = ReadLinks(positional[0]);
      return Status::OK();
    });
    group.Run([&]() -> Status {
      found = ReadLinks(positional[1]);
      return Status::OK();
    });
    (void)group.Wait();
  } else {
    ScopedSpan truth_span(obs, "load_truth");
    truth = ReadLinks(positional[0]);
    truth_span.End();
    ScopedSpan found_span(obs, "load_found");
    found = ReadLinks(positional[1]);
    found_span.End();
  }
  if (!truth.ok()) {
    std::fprintf(stderr, "error: %s\n", truth.status().ToString().c_str());
    return 1;
  }
  if (!found.ok()) {
    std::fprintf(stderr, "error: %s\n", found.status().ToString().c_str());
    return 1;
  }
  ScopedSpan eval_span(obs, "evaluate");
  MatchQuality q = EvaluateLinks(*truth, *found);
  eval_span.End();
  std::printf("truth links:   %zu\n", q.truth_links);
  std::printf("found links:   %zu\n", q.found_links);
  std::printf("correct links: %zu\n", q.correct_links);
  std::printf("precision:     %.4f\n", q.precision);
  std::printf("recall:        %.4f\n", q.recall);
  std::printf("f-measure:     %.4f\n", q.f_measure);

  if (obs != nullptr) {
    ObsIncrement(obs, "eval.truth_links", q.truth_links);
    ObsIncrement(obs, "eval.found_links", q.found_links);
    ObsIncrement(obs, "eval.correct_links", q.correct_links);
    ObsSetGauge(obs, "eval.precision", q.precision);
    ObsSetGauge(obs, "eval.recall", q.recall);
    ObsSetGauge(obs, "eval.f_measure", q.f_measure);
    PipelineReport report = BuildPipelineReport(
        obs, EmsStats{}, CompositeStats{}, total_timer.ElapsedMillis());
    Status st = report.WriteJsonFile(metrics_out);
    if (!st.ok()) {
      std::fprintf(stderr, "error writing %s: %s\n", metrics_out.c_str(),
                   st.ToString().c_str());
      return 1;
    }
  }
  return 0;
}
