// ems_eval: score a matching against ground truth. Both files are TSV
// link lists (header "left<TAB>right", one correspondence link per row —
// exactly what ems_generate exports and `ems_match --tsv` emits, after
// expanding "a + b" groups into their member links).
//
//   ems_eval TRUTH.tsv FOUND.tsv
#include <cstdio>
#include <fstream>
#include <set>
#include <string>

#include "eval/metrics.h"
#include "util/string_util.h"

namespace {

using namespace ems;

// Splits an "a + b + c" group cell into member names.
std::vector<std::string> ExpandGroup(const std::string& cell) {
  std::vector<std::string> members;
  for (const std::string& part : Split(cell, '+')) {
    std::string_view trimmed = Trim(part);
    if (!trimmed.empty()) members.emplace_back(trimmed);
  }
  return members;
}

Result<std::set<std::pair<std::string, std::string>>> ReadLinks(
    const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open '" + path + "'");
  std::set<std::pair<std::string, std::string>> links;
  std::string line;
  bool first = true;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (Trim(line).empty()) continue;
    std::vector<std::string> cells = Split(line, '\t');
    if (cells.size() < 2) {
      return Status::ParseError(path + ":" + std::to_string(line_no) +
                                ": expected two tab-separated columns");
    }
    if (first) {
      first = false;
      std::string l = ToLower(Trim(cells[0]));
      if (l == "left") continue;  // header row
    }
    // Group cells expand to the cartesian product of their members.
    for (const std::string& l : ExpandGroup(cells[0])) {
      for (const std::string& r : ExpandGroup(cells[1])) {
        links.emplace(l, r);
      }
    }
  }
  return links;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 3) {
    std::fprintf(stderr, "usage: %s TRUTH.tsv FOUND.tsv\n", argv[0]);
    return 2;
  }
  auto truth = ReadLinks(argv[1]);
  if (!truth.ok()) {
    std::fprintf(stderr, "error: %s\n", truth.status().ToString().c_str());
    return 1;
  }
  auto found = ReadLinks(argv[2]);
  if (!found.ok()) {
    std::fprintf(stderr, "error: %s\n", found.status().ToString().c_str());
    return 1;
  }
  MatchQuality q = EvaluateLinks(*truth, *found);
  std::printf("truth links:   %zu\n", q.truth_links);
  std::printf("found links:   %zu\n", q.found_links);
  std::printf("correct links: %zu\n", q.correct_links);
  std::printf("precision:     %.4f\n", q.precision);
  std::printf("recall:        %.4f\n", q.recall);
  std::printf("f-measure:     %.4f\n", q.f_measure);
  return 0;
}
