#include "assignment/hungarian.h"

#include <algorithm>
#include <limits>

#include "util/status.h"

namespace ems {

std::vector<int> MaxWeightAssignment(
    const std::vector<std::vector<double>>& weights) {
  const size_t rows = weights.size();
  if (rows == 0) return {};
  const size_t cols = weights[0].size();
#ifndef NDEBUG
  for (const auto& row : weights) EMS_DCHECK(row.size() == cols);
#endif
  if (cols == 0) return std::vector<int>(rows, -1);

  // Square cost matrix: cost = -weight (minimization), padded with zeros
  // to (rows + cols) so every row can route to a padding column and every
  // column can be covered by a padding row. A row matched to padding is
  // "unassigned"; since padding costs 0 and beneficial real pairs cost
  // negative, the optimum takes exactly the profitable pairs and is never
  // forced into negative-weight assignments.
  const size_t n = rows + cols;
  std::vector<std::vector<double>> cost(n, std::vector<double>(n, 0.0));
  for (size_t i = 0; i < rows; ++i) {
    for (size_t j = 0; j < cols; ++j) cost[i][j] = -weights[i][j];
  }

  // Jonker-Volgenant style shortest augmenting path with potentials,
  // 1-indexed internal arrays (classic formulation).
  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<double> u(n + 1, 0.0), v(n + 1, 0.0);
  std::vector<size_t> p(n + 1, 0);    // p[j] = row matched to column j
  std::vector<size_t> way(n + 1, 0);  // back-pointers along the alternating path

  for (size_t i = 1; i <= n; ++i) {
    p[0] = i;
    size_t j0 = 0;
    std::vector<double> minv(n + 1, kInf);
    std::vector<bool> used(n + 1, false);
    do {
      used[j0] = true;
      size_t i0 = p[j0];
      double delta = kInf;
      size_t j1 = 0;
      for (size_t j = 1; j <= n; ++j) {
        if (used[j]) continue;
        double cur = cost[i0 - 1][j - 1] - u[i0] - v[j];
        if (cur < minv[j]) {
          minv[j] = cur;
          way[j] = j0;
        }
        if (minv[j] < delta) {
          delta = minv[j];
          j1 = j;
        }
      }
      for (size_t j = 0; j <= n; ++j) {
        if (used[j]) {
          u[p[j]] += delta;
          v[j] -= delta;
        } else {
          minv[j] -= delta;
        }
      }
      j0 = j1;
    } while (p[j0] != 0);
    // Augment along the path.
    do {
      size_t j1 = way[j0];
      p[j0] = p[j1];
      j0 = j1;
    } while (j0 != 0);
  }

  std::vector<int> assignment(rows, -1);
  for (size_t j = 1; j <= n; ++j) {
    size_t i = p[j];
    if (i >= 1 && i <= rows && j <= cols) {
      assignment[i - 1] = static_cast<int>(j - 1);
    }
  }
  return assignment;
}

double AssignmentWeight(const std::vector<std::vector<double>>& weights,
                        const std::vector<int>& assignment) {
  double total = 0.0;
  for (size_t i = 0; i < assignment.size(); ++i) {
    if (assignment[i] >= 0) {
      total += weights[i][static_cast<size_t>(assignment[i])];
    }
  }
  return total;
}

}  // namespace ems
