#include "assignment/set_packing.h"

#include <algorithm>
#include <numeric>

namespace ems {

namespace {

struct SearchState {
  const std::vector<WeightedSet>* candidates;
  std::vector<size_t> order;        // candidate indices, best weight first
  std::vector<double> suffix_sum;   // sum of weights from position k on
  std::vector<bool> used_elements;
  std::vector<size_t> current;
  std::vector<size_t> best;
  double current_weight = 0.0;
  double best_weight = 0.0;
  uint64_t nodes = 0;
  uint64_t max_nodes = 0;
  bool exhausted = false;

  void Search(size_t pos) {
    if (exhausted) return;
    if (++nodes > max_nodes) {
      exhausted = true;
      return;
    }
    if (pos == order.size()) {
      if (current_weight > best_weight) {
        best_weight = current_weight;
        best = current;
      }
      return;
    }
    // Bound: even taking every remaining candidate cannot beat the best.
    if (current_weight + suffix_sum[pos] <= best_weight) return;

    const WeightedSet& cand = (*candidates)[order[pos]];
    bool feasible = cand.weight > 0.0;
    if (feasible) {
      for (int e : cand.elements) {
        if (used_elements[static_cast<size_t>(e)]) {
          feasible = false;
          break;
        }
      }
    }
    if (feasible) {
      // Take.
      for (int e : cand.elements) used_elements[static_cast<size_t>(e)] = true;
      current.push_back(order[pos]);
      current_weight += cand.weight;
      Search(pos + 1);
      current_weight -= cand.weight;
      current.pop_back();
      for (int e : cand.elements) used_elements[static_cast<size_t>(e)] = false;
    }
    // Skip.
    Search(pos + 1);
  }
};

}  // namespace

Result<PackingResult> MaxWeightSetPacking(
    const std::vector<WeightedSet>& candidates, int universe_size,
    uint64_t max_nodes) {
  for (const WeightedSet& s : candidates) {
    for (int e : s.elements) {
      if (e < 0 || e >= universe_size) {
        return Status::InvalidArgument(
            "set packing: element outside the universe");
      }
    }
  }
  SearchState state;
  state.candidates = &candidates;
  state.order.resize(candidates.size());
  std::iota(state.order.begin(), state.order.end(), size_t{0});
  std::sort(state.order.begin(), state.order.end(), [&](size_t a, size_t b) {
    return candidates[a].weight > candidates[b].weight;
  });
  state.suffix_sum.assign(candidates.size() + 1, 0.0);
  for (size_t k = candidates.size(); k-- > 0;) {
    double w = std::max(0.0, candidates[state.order[k]].weight);
    state.suffix_sum[k] = state.suffix_sum[k + 1] + w;
  }
  state.used_elements.assign(static_cast<size_t>(universe_size), false);
  state.max_nodes = max_nodes;
  state.Search(0);
  if (state.exhausted) {
    return Status::ResourceExhausted(
        "set packing search exceeded the node budget");
  }
  PackingResult result;
  result.chosen = std::move(state.best);
  result.total_weight = state.best_weight;
  result.nodes_expanded = state.nodes;
  return result;
}

PackingResult GreedySetPacking(const std::vector<WeightedSet>& candidates,
                               int universe_size) {
  std::vector<size_t> order(candidates.size());
  std::iota(order.begin(), order.end(), size_t{0});
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return candidates[a].weight > candidates[b].weight;
  });
  std::vector<bool> used(static_cast<size_t>(universe_size), false);
  PackingResult result;
  for (size_t idx : order) {
    const WeightedSet& cand = candidates[idx];
    if (cand.weight <= 0.0) break;
    bool feasible = true;
    for (int e : cand.elements) {
      if (used[static_cast<size_t>(e)]) {
        feasible = false;
        break;
      }
    }
    if (!feasible) continue;
    for (int e : cand.elements) used[static_cast<size_t>(e)] = true;
    result.chosen.push_back(idx);
    result.total_weight += cand.weight;
  }
  return result;
}

}  // namespace ems
