// Correspondence selection: turning a pair-wise similarity matrix into a
// set of matches (Section 2, "Selecting matching correspondences" /
// Section 6). The paper's evaluation uses maximum total similarity
// selection [17]; greedy and threshold-based selection are provided as
// alternatives.
#pragma once

#include <cstdint>
#include <vector>

namespace ems {

/// One selected correspondence between row entity i and column entity j.
struct Match {
  int row;
  int col;
  double similarity;

  bool operator==(const Match& other) const {
    return row == other.row && col == other.col;
  }
};

/// Options shared by the selection strategies.
struct SelectionOptions {
  /// Pairs with similarity < threshold are never selected. The paper's
  /// pipeline needs this because the Hungarian solver would otherwise
  /// assign every row somewhere, destroying precision when the true
  /// mapping is partial.
  double min_similarity = 1e-9;
};

/// Maximum total similarity selection: the 1:1 matching maximizing the sum
/// of similarities (Hungarian / Munkres), then filtered by the threshold.
std::vector<Match> SelectMaxTotalSimilarity(
    const std::vector<std::vector<double>>& similarity,
    const SelectionOptions& options = {});

/// Greedy selection: repeatedly picks the globally best remaining pair
/// whose row and column are both unused.
std::vector<Match> SelectGreedy(
    const std::vector<std::vector<double>>& similarity,
    const SelectionOptions& options = {});

/// Symmetric best-match selection: keeps (i, j) iff j is i's best column
/// AND i is j's best row (ties broken by lower index).
std::vector<Match> SelectMutualBest(
    const std::vector<std::vector<double>>& similarity,
    const SelectionOptions& options = {});

}  // namespace ems
