#include "assignment/selection.h"

#include <algorithm>
#include <tuple>

#include "assignment/hungarian.h"
#include "util/status.h"

namespace ems {

std::vector<Match> SelectMaxTotalSimilarity(
    const std::vector<std::vector<double>>& similarity,
    const SelectionOptions& options) {
  std::vector<int> assignment = MaxWeightAssignment(similarity);
  std::vector<Match> out;
  for (size_t i = 0; i < assignment.size(); ++i) {
    int j = assignment[i];
    if (j < 0) continue;
    double s = similarity[i][static_cast<size_t>(j)];
    if (s < options.min_similarity) continue;
    out.push_back(Match{static_cast<int>(i), j, s});
  }
  return out;
}

std::vector<Match> SelectGreedy(
    const std::vector<std::vector<double>>& similarity,
    const SelectionOptions& options) {
  std::vector<std::tuple<double, int, int>> pairs;
  for (size_t i = 0; i < similarity.size(); ++i) {
    for (size_t j = 0; j < similarity[i].size(); ++j) {
      if (similarity[i][j] >= options.min_similarity) {
        pairs.emplace_back(similarity[i][j], static_cast<int>(i),
                           static_cast<int>(j));
      }
    }
  }
  std::sort(pairs.begin(), pairs.end(), [](const auto& a, const auto& b) {
    // Highest similarity first; deterministic tie-break on indices.
    if (std::get<0>(a) != std::get<0>(b)) return std::get<0>(a) > std::get<0>(b);
    if (std::get<1>(a) != std::get<1>(b)) return std::get<1>(a) < std::get<1>(b);
    return std::get<2>(a) < std::get<2>(b);
  });
  std::vector<bool> row_used(similarity.size(), false);
  std::vector<bool> col_used(
      similarity.empty() ? 0 : similarity[0].size(), false);
  std::vector<Match> out;
  for (const auto& [s, i, j] : pairs) {
    if (row_used[static_cast<size_t>(i)] || col_used[static_cast<size_t>(j)]) {
      continue;
    }
    row_used[static_cast<size_t>(i)] = true;
    col_used[static_cast<size_t>(j)] = true;
    out.push_back(Match{i, j, s});
  }
  return out;
}

std::vector<Match> SelectMutualBest(
    const std::vector<std::vector<double>>& similarity,
    const SelectionOptions& options) {
  const size_t rows = similarity.size();
  if (rows == 0) return {};
  const size_t cols = similarity[0].size();
  std::vector<int> best_col(rows, -1);
  std::vector<int> best_row(cols, -1);
  for (size_t i = 0; i < rows; ++i) {
    for (size_t j = 0; j < cols; ++j) {
      if (best_col[i] < 0 ||
          similarity[i][j] > similarity[i][static_cast<size_t>(best_col[i])]) {
        best_col[i] = static_cast<int>(j);
      }
      if (best_row[j] < 0 ||
          similarity[i][j] > similarity[static_cast<size_t>(best_row[j])][j]) {
        best_row[j] = static_cast<int>(i);
      }
    }
  }
  std::vector<Match> out;
  for (size_t i = 0; i < rows; ++i) {
    int j = best_col[i];
    if (j < 0) continue;
    if (best_row[static_cast<size_t>(j)] != static_cast<int>(i)) continue;
    double s = similarity[i][static_cast<size_t>(j)];
    if (s < options.min_similarity) continue;
    out.push_back(Match{static_cast<int>(i), j, s});
  }
  return out;
}

}  // namespace ems
