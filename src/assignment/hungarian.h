// Maximum-weight bipartite assignment (Munkres/Hungarian [17]) — the
// paper's "maximum total similarity selection method" for turning a
// pair-wise similarity matrix into 1:1 event correspondences.
#pragma once

#include <vector>

namespace ems {

/// \brief Solves max-weight assignment on a rectangular weight matrix.
///
/// `weights[i][j]` is the benefit of assigning row i to column j (weights
/// may be any finite doubles; the solver internally pads to a square
/// zero-benefit matrix, so leaving an entity unassigned has benefit 0 and
/// negative-weight pairs are never forced).
///
/// Returns assignment[i] = column of row i, or -1 if row i is unassigned
/// (possible when columns are scarcer or only negative weights remain).
/// Runs in O(max(n,m)^3) via the Jonker-Volgenant shortest augmenting
/// path formulation with potentials.
std::vector<int> MaxWeightAssignment(
    const std::vector<std::vector<double>>& weights);

/// Total weight of an assignment returned by MaxWeightAssignment.
double AssignmentWeight(const std::vector<std::vector<double>>& weights,
                        const std::vector<int>& assignment);

}  // namespace ems
