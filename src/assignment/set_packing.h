// Exact maximum-weight set packing via branch and bound. The composite
// event matching problem reduces from maximum set packing (Theorem 3);
// this exact solver provides ground truth on small instances to measure
// the quality of the greedy heuristic (Section 4.1), and documents the
// exponential blow-up the heuristic avoids.
#pragma once

#include <cstdint>
#include <vector>

#include "util/status.h"

namespace ems {

/// One candidate set with a weight.
struct WeightedSet {
  std::vector<int> elements;  // universe element ids, distinct
  double weight = 0.0;
};

/// Result of a packing search.
struct PackingResult {
  std::vector<size_t> chosen;  // indices into the candidate vector
  double total_weight = 0.0;
  uint64_t nodes_expanded = 0;  // search-tree size, for cost reporting
};

/// \brief Exact maximum-weight set packing.
///
/// Finds a subfamily of pairwise-disjoint candidate sets maximizing total
/// weight. Branch and bound: candidates sorted by weight, bound = optimum
/// of the fractional remainder. `max_nodes` caps the search; if exceeded,
/// returns ResourceExhausted (callers fall back to the greedy heuristic).
/// Universe elements must be >= 0 and < universe_size.
Result<PackingResult> MaxWeightSetPacking(
    const std::vector<WeightedSet>& candidates, int universe_size,
    uint64_t max_nodes = 10'000'000);

/// Greedy set packing baseline: repeatedly takes the feasible candidate
/// with the highest weight. Used in tests to quantify the optimality gap.
PackingResult GreedySetPacking(const std::vector<WeightedSet>& candidates,
                               int universe_size);

}  // namespace ems
