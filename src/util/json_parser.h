// Minimal JSON parser — the read side of util/json_writer, written for
// the batch matching service's newline-delimited job requests. Supports
// the full JSON value grammar (objects, arrays, strings with escapes,
// numbers, booleans, null) with a recursion-depth cap; numbers are held
// as double, which is exact for the path/flag/threshold payloads we
// parse. No external dependencies.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace ems {

/// \brief One parsed JSON value (a tree; children owned by value).
class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() = default;

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  bool bool_value() const { return bool_; }
  double number_value() const { return number_; }
  const std::string& string_value() const { return string_; }
  const std::vector<JsonValue>& array_items() const { return items_; }

  /// Object member by key; null when absent or not an object.
  const JsonValue* Find(std::string_view key) const;

  /// Object member keys in document order (empty otherwise).
  const std::vector<std::string>& object_keys() const { return keys_; }

  // Typed lookups with defaults — the job-request idiom.
  std::string GetString(std::string_view key,
                        const std::string& fallback) const;
  double GetNumber(std::string_view key, double fallback) const;
  int GetInt(std::string_view key, int fallback) const;
  bool GetBool(std::string_view key, bool fallback) const;

 private:
  friend class JsonParser;

  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> items_;               // kArray
  std::vector<std::string> keys_;              // kObject, document order
  std::map<std::string, JsonValue> members_;   // kObject
};

/// Parses one JSON document; trailing non-whitespace is a ParseError.
Result<JsonValue> ParseJson(std::string_view text);

}  // namespace ems
