// Structured stderr logging for long-running tools (ems_serve): one JSON
// line per event — {"ts":"2026-08-08T12:00:00.123Z","level":"info",
// "msg":"..."} — replacing ad-hoc std::cerr writes, so service output
// stays machine-parseable and CI smoke runs stay quiet. The global
// threshold defaults to warn; tools raise it with --log-level. Emission
// is thread-safe (each line is one write(2)-sized fputs).
#pragma once

#include <string>
#include <string_view>

#include "util/status.h"

namespace ems {

enum class LogLevel : int {
  kError = 0,
  kWarn = 1,
  kInfo = 2,
  kDebug = 3,
};

/// "error" | "warn" | "info" | "debug".
const char* LogLevelName(LogLevel level);

/// Parses a --log-level value; InvalidArgument on anything else.
Result<LogLevel> ParseLogLevel(std::string_view name);

/// Process-wide emission threshold (default kWarn): events with a level
/// numerically above it are dropped.
void SetGlobalLogLevel(LogLevel level);
LogLevel GlobalLogLevel();

/// True when an event at `level` would be emitted — guard expensive
/// message construction with this.
bool LogEnabled(LogLevel level);

/// The JSON line LogLine would emit (without trailing newline), with an
/// explicit timestamp in milliseconds since the Unix epoch — the
/// testable core of the logger.
std::string FormatLogLine(LogLevel level, std::string_view msg,
                          int64_t unix_millis);

/// Emits one structured line to stderr when `level` passes the global
/// threshold. Thread-safe.
void LogLine(LogLevel level, std::string_view msg);

inline void LogError(std::string_view msg) { LogLine(LogLevel::kError, msg); }
inline void LogWarn(std::string_view msg) { LogLine(LogLevel::kWarn, msg); }
inline void LogInfo(std::string_view msg) { LogLine(LogLevel::kInfo, msg); }
inline void LogDebug(std::string_view msg) { LogLine(LogLevel::kDebug, msg); }

}  // namespace ems
