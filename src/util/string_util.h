// Small string helpers shared by parsing and reporting code.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace ems {

/// Splits `s` on `delim`, keeping empty fields.
std::vector<std::string> Split(std::string_view s, char delim);

/// Removes leading and trailing ASCII whitespace.
std::string_view Trim(std::string_view s);

/// ASCII lowercase copy.
std::string ToLower(std::string_view s);

/// True if `s` starts with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

/// True if `s` ends with `suffix`.
bool EndsWith(std::string_view s, std::string_view suffix);

/// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Formats a double with `precision` digits after the decimal point.
std::string FormatDouble(double value, int precision);

/// Escapes XML special characters (&, <, >, ", ').
std::string XmlEscape(std::string_view s);

}  // namespace ems
