#include "util/random.h"

#include <algorithm>

namespace ems {

int Rng::UniformInt(int lo, int hi) {
  EMS_DCHECK(lo <= hi);
  uint64_t span = static_cast<uint64_t>(hi) - static_cast<uint64_t>(lo) + 1;
  return lo + static_cast<int>(engine_() % span);
}

size_t Rng::UniformIndex(size_t n) {
  EMS_DCHECK(n > 0);
  return static_cast<size_t>(engine_() % n);
}

double Rng::UniformDouble() {
  // 53 random bits -> [0, 1) with full double mantissa resolution.
  return static_cast<double>(engine_() >> 11) * (1.0 / 9007199254740992.0);
}

bool Rng::Bernoulli(double p) { return UniformDouble() < p; }

int Rng::Geometric(double p, int cap) {
  int n = 0;
  while (n < cap && Bernoulli(p)) ++n;
  return n;
}

size_t Rng::WeightedIndex(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) total += w;
  EMS_DCHECK(total > 0.0);
  double r = UniformDouble() * total;
  double acc = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (r < acc) return i;
  }
  return weights.size() - 1;
}

std::string Rng::HexString(size_t length) {
  static const char kHex[] = "0123456789abcdef";
  std::string out;
  out.reserve(length);
  for (size_t i = 0; i < length; ++i) out.push_back(kHex[engine_() % 16]);
  return out;
}

std::vector<size_t> Rng::SampleWithoutReplacement(size_t n, size_t k) {
  EMS_DCHECK(k <= n);
  std::vector<size_t> all(n);
  for (size_t i = 0; i < n; ++i) all[i] = i;
  // Partial Fisher-Yates: the first k positions become the sample.
  for (size_t i = 0; i < k; ++i) {
    size_t j = i + UniformIndex(n - i);
    std::swap(all[i], all[j]);
  }
  all.resize(k);
  return all;
}

Rng Rng::Fork() { return Rng(engine_()); }

}  // namespace ems
