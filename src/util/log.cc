#include "util/log.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <ctime>

#include "util/json_writer.h"

namespace ems {

namespace {

std::atomic<int> g_level{static_cast<int>(LogLevel::kWarn)};

std::string FormatTimestamp(int64_t unix_millis) {
  const std::time_t seconds = static_cast<std::time_t>(unix_millis / 1000);
  const int millis = static_cast<int>(unix_millis % 1000);
  std::tm utc{};
  gmtime_r(&seconds, &utc);
  char buf[80];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02dT%02d:%02d:%02d.%03dZ",
                utc.tm_year + 1900, utc.tm_mon + 1, utc.tm_mday, utc.tm_hour,
                utc.tm_min, utc.tm_sec, millis);
  return buf;
}

}  // namespace

const char* LogLevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kError:
      return "error";
    case LogLevel::kWarn:
      return "warn";
    case LogLevel::kInfo:
      return "info";
    case LogLevel::kDebug:
      return "debug";
  }
  return "unknown";
}

Result<LogLevel> ParseLogLevel(std::string_view name) {
  if (name == "error") return LogLevel::kError;
  if (name == "warn") return LogLevel::kWarn;
  if (name == "info") return LogLevel::kInfo;
  if (name == "debug") return LogLevel::kDebug;
  return Status::InvalidArgument("unknown log level '" + std::string(name) +
                                 "' (expected error|warn|info|debug)");
}

void SetGlobalLogLevel(LogLevel level) {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GlobalLogLevel() {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

bool LogEnabled(LogLevel level) {
  return static_cast<int>(level) <=
         g_level.load(std::memory_order_relaxed);
}

std::string FormatLogLine(LogLevel level, std::string_view msg,
                          int64_t unix_millis) {
  JsonWriter w;
  w.BeginObject();
  w.Key("ts");
  w.String(FormatTimestamp(unix_millis));
  w.Key("level");
  w.String(LogLevelName(level));
  w.Key("msg");
  w.String(msg);
  w.EndObject();
  return w.str();
}

void LogLine(LogLevel level, std::string_view msg) {
  if (!LogEnabled(level)) return;
  const int64_t now = std::chrono::duration_cast<std::chrono::milliseconds>(
                          std::chrono::system_clock::now().time_since_epoch())
                          .count();
  // One fputs per line keeps concurrent emitters from interleaving.
  const std::string line = FormatLogLine(level, msg, now) + "\n";
  std::fputs(line.c_str(), stderr);
}

}  // namespace ems
