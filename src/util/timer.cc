#include "util/timer.h"

// Timer is header-only; this translation unit anchors the target.
