// Status and Result<T>: error propagation without exceptions, following the
// idiom used by Arrow and RocksDB. Fallible operations on the public API
// boundary (parsing, I/O, configuration validation) return Status or
// Result<T>; internal invariants use EMS_DCHECK.
#pragma once

#include <cassert>
#include <memory>
#include <string>
#include <utility>
#include <variant>

namespace ems {

/// Error category of a failed operation.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kIOError,
  kParseError,
  kOutOfRange,
  kNotImplemented,
  kResourceExhausted,
  kInternal,
  kCancelled,
};

/// Human-readable name of a StatusCode (e.g. "InvalidArgument").
const char* StatusCodeToString(StatusCode code);

/// \brief Outcome of a fallible operation.
///
/// A Status is either OK (the common case, carrying no allocation) or an
/// error with a code and message. Statuses are cheap to move and copy:
/// the OK state is a null pointer.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  /// Constructs an error status with the given code and message.
  Status(StatusCode code, std::string msg) {
    assert(code != StatusCode::kOk);
    state_ = std::make_shared<State>(State{code, std::move(msg)});
  }

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }

  bool ok() const { return state_ == nullptr; }
  StatusCode code() const { return ok() ? StatusCode::kOk : state_->code; }
  const std::string& message() const {
    static const std::string kEmpty;
    return ok() ? kEmpty : state_->msg;
  }

  bool IsInvalidArgument() const { return code() == StatusCode::kInvalidArgument; }
  bool IsNotFound() const { return code() == StatusCode::kNotFound; }
  bool IsIOError() const { return code() == StatusCode::kIOError; }
  bool IsParseError() const { return code() == StatusCode::kParseError; }
  bool IsOutOfRange() const { return code() == StatusCode::kOutOfRange; }
  bool IsNotImplemented() const { return code() == StatusCode::kNotImplemented; }
  bool IsResourceExhausted() const {
    return code() == StatusCode::kResourceExhausted;
  }
  bool IsInternal() const { return code() == StatusCode::kInternal; }
  bool IsCancelled() const { return code() == StatusCode::kCancelled; }

  /// "OK" or "<Code>: <message>".
  std::string ToString() const;

 private:
  struct State {
    StatusCode code;
    std::string msg;
  };
  std::shared_ptr<const State> state_;  // nullptr == OK
};

/// \brief Either a value of type T or an error Status.
///
/// Callers must check ok() before dereferencing. Moved-from Results are
/// valid but unspecified.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (success).
  Result(T value) : repr_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  /// Implicit construction from an error status. Must not be OK.
  Result(Status status) : repr_(std::move(status)) {  // NOLINT
    assert(!std::get<Status>(repr_).ok());
  }

  bool ok() const { return std::holds_alternative<T>(repr_); }

  /// The error status; OK if this Result holds a value.
  Status status() const {
    return ok() ? Status::OK() : std::get<Status>(repr_);
  }

  const T& value() const& {
    assert(ok());
    return std::get<T>(repr_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(repr_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(repr_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value, or `alternative` if this holds an error.
  T ValueOr(T alternative) const {
    return ok() ? value() : std::move(alternative);
  }

 private:
  std::variant<T, Status> repr_;
};

}  // namespace ems

/// Propagates a non-OK Status to the caller.
#define EMS_RETURN_NOT_OK(expr)                \
  do {                                         \
    ::ems::Status _st = (expr);                \
    if (!_st.ok()) return _st;                 \
  } while (0)

#define EMS_CONCAT_IMPL(a, b) a##b
#define EMS_CONCAT(a, b) EMS_CONCAT_IMPL(a, b)

/// Assigns the value of a Result expression to `lhs`, propagating errors.
#define EMS_ASSIGN_OR_RETURN(lhs, rexpr)                        \
  auto EMS_CONCAT(_res_, __LINE__) = (rexpr);                   \
  if (!EMS_CONCAT(_res_, __LINE__).ok())                        \
    return EMS_CONCAT(_res_, __LINE__).status();                \
  lhs = std::move(EMS_CONCAT(_res_, __LINE__)).value()

/// Debug-only invariant check.
#ifndef NDEBUG
#define EMS_DCHECK(cond) assert(cond)
#else
#define EMS_DCHECK(cond) ((void)0)
#endif
