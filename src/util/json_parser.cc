#include "util/json_parser.h"

#include <cctype>
#include <cmath>
#include <cstdlib>

namespace ems {

const JsonValue* JsonValue::Find(std::string_view key) const {
  if (type_ != Type::kObject) return nullptr;
  auto it = members_.find(std::string(key));
  return it == members_.end() ? nullptr : &it->second;
}

std::string JsonValue::GetString(std::string_view key,
                                 const std::string& fallback) const {
  const JsonValue* v = Find(key);
  return v != nullptr && v->is_string() ? v->string_value() : fallback;
}

double JsonValue::GetNumber(std::string_view key, double fallback) const {
  const JsonValue* v = Find(key);
  return v != nullptr && v->is_number() ? v->number_value() : fallback;
}

int JsonValue::GetInt(std::string_view key, int fallback) const {
  const JsonValue* v = Find(key);
  return v != nullptr && v->is_number()
             ? static_cast<int>(std::lround(v->number_value()))
             : fallback;
}

bool JsonValue::GetBool(std::string_view key, bool fallback) const {
  const JsonValue* v = Find(key);
  return v != nullptr && v->is_bool() ? v->bool_value() : fallback;
}

/// Recursive-descent parser over a string_view cursor.
class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  Result<JsonValue> Parse() {
    JsonValue root;
    EMS_RETURN_NOT_OK(ParseValue(&root, 0));
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Error("trailing characters after JSON document");
    }
    return root;
  }

 private:
  static constexpr int kMaxDepth = 64;

  Status Error(const std::string& msg) const {
    return Status::ParseError("json: " + msg + " at offset " +
                              std::to_string(pos_));
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeLiteral(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  Status ParseValue(JsonValue* out, int depth) {
    if (depth > kMaxDepth) return Error("nesting too deep");
    SkipWhitespace();
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    const char c = text_[pos_];
    switch (c) {
      case '{':
        return ParseObject(out, depth);
      case '[':
        return ParseArray(out, depth);
      case '"':
        out->type_ = JsonValue::Type::kString;
        return ParseString(&out->string_);
      case 't':
        if (!ConsumeLiteral("true")) return Error("invalid literal");
        out->type_ = JsonValue::Type::kBool;
        out->bool_ = true;
        return Status::OK();
      case 'f':
        if (!ConsumeLiteral("false")) return Error("invalid literal");
        out->type_ = JsonValue::Type::kBool;
        out->bool_ = false;
        return Status::OK();
      case 'n':
        if (!ConsumeLiteral("null")) return Error("invalid literal");
        out->type_ = JsonValue::Type::kNull;
        return Status::OK();
      default:
        return ParseNumber(out);
    }
  }

  Status ParseObject(JsonValue* out, int depth) {
    ++pos_;  // '{'
    out->type_ = JsonValue::Type::kObject;
    SkipWhitespace();
    if (Consume('}')) return Status::OK();
    while (true) {
      SkipWhitespace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Error("expected object key");
      }
      std::string key;
      EMS_RETURN_NOT_OK(ParseString(&key));
      SkipWhitespace();
      if (!Consume(':')) return Error("expected ':'");
      JsonValue value;
      EMS_RETURN_NOT_OK(ParseValue(&value, depth + 1));
      if (out->members_.find(key) == out->members_.end()) {
        out->keys_.push_back(key);
      }
      out->members_[key] = std::move(value);  // last duplicate wins
      SkipWhitespace();
      if (Consume('}')) return Status::OK();
      if (!Consume(',')) return Error("expected ',' or '}'");
    }
  }

  Status ParseArray(JsonValue* out, int depth) {
    ++pos_;  // '['
    out->type_ = JsonValue::Type::kArray;
    SkipWhitespace();
    if (Consume(']')) return Status::OK();
    while (true) {
      JsonValue value;
      EMS_RETURN_NOT_OK(ParseValue(&value, depth + 1));
      out->items_.push_back(std::move(value));
      SkipWhitespace();
      if (Consume(']')) return Status::OK();
      if (!Consume(',')) return Error("expected ',' or ']'");
    }
  }

  Status ParseString(std::string* out) {
    ++pos_;  // '"'
    out->clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return Status::OK();
      if (static_cast<unsigned char>(c) < 0x20) {
        return Error("unescaped control character in string");
      }
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) break;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return Error("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else return Error("invalid \\u escape");
          }
          // UTF-8 encode the BMP code point (surrogate pairs are passed
          // through as two 3-byte sequences — lossy but never crashes;
          // event names in this system are ASCII in practice).
          if (code < 0x80) {
            out->push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out->push_back(static_cast<char>(0xC0 | (code >> 6)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out->push_back(static_cast<char>(0xE0 | (code >> 12)));
            out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          return Error("invalid escape character");
      }
    }
    return Error("unterminated string");
  }

  Status ParseNumber(JsonValue* out) {
    const size_t start = pos_;
    if (Consume('-')) {}
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return Error("invalid value");
    const std::string token(text_.substr(start, pos_ - start));
    // JSON forbids leading zeros ("01"); strtod would accept them.
    const size_t first_digit = token[0] == '-' ? 1 : 0;
    if (token.size() > first_digit + 1 && token[first_digit] == '0' &&
        std::isdigit(static_cast<unsigned char>(token[first_digit + 1]))) {
      return Error("invalid number");
    }
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') return Error("invalid number");
    out->type_ = JsonValue::Type::kNumber;
    out->number_ = value;
    return Status::OK();
  }

  std::string_view text_;
  size_t pos_ = 0;
};

Result<JsonValue> ParseJson(std::string_view text) {
  return JsonParser(text).Parse();
}

}  // namespace ems
