#include "util/json_writer.h"

#include <cstdio>

namespace ems {

void JsonWriter::MaybeComma() {
  if (pending_key_) return;  // value follows its key directly
  if (!scopes_.empty() && !first_in_scope_.back()) out_ << ',';
  if (!first_in_scope_.empty()) first_in_scope_.back() = false;
}

void JsonWriter::ValueEmitted() { pending_key_ = false; }

void JsonWriter::BeginObject() {
  MaybeComma();
  out_ << '{';
  scopes_.push_back(Scope::kObject);
  first_in_scope_.push_back(true);
  pending_key_ = false;
}

void JsonWriter::EndObject() {
  EMS_DCHECK(!scopes_.empty() && scopes_.back() == Scope::kObject);
  out_ << '}';
  scopes_.pop_back();
  first_in_scope_.pop_back();
}

void JsonWriter::BeginArray() {
  MaybeComma();
  out_ << '[';
  scopes_.push_back(Scope::kArray);
  first_in_scope_.push_back(true);
  pending_key_ = false;
}

void JsonWriter::EndArray() {
  EMS_DCHECK(!scopes_.empty() && scopes_.back() == Scope::kArray);
  out_ << ']';
  scopes_.pop_back();
  first_in_scope_.pop_back();
}

void JsonWriter::Key(std::string_view key) {
  EMS_DCHECK(!scopes_.empty() && scopes_.back() == Scope::kObject);
  MaybeComma();
  out_ << '"' << Escape(key) << "\":";
  pending_key_ = true;
}

void JsonWriter::String(std::string_view value) {
  MaybeComma();
  out_ << '"' << Escape(value) << '"';
  ValueEmitted();
}

void JsonWriter::Number(double value) {
  MaybeComma();
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.12g", value);
  out_ << buf;
  ValueEmitted();
}

void JsonWriter::Int(long long value) {
  MaybeComma();
  out_ << value;
  ValueEmitted();
}

void JsonWriter::Bool(bool value) {
  MaybeComma();
  out_ << (value ? "true" : "false");
  ValueEmitted();
}

void JsonWriter::Null() {
  MaybeComma();
  out_ << "null";
  ValueEmitted();
}

std::string JsonWriter::Escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

}  // namespace ems
