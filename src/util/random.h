// Seeded random number generation. All stochastic components (synthetic
// generators, perturbations) take an explicit Rng so that every dataset and
// experiment in this repository is deterministic and reproducible.
#pragma once

#include <cstdint>
#include <random>
#include <string>
#include <vector>

#include "util/status.h"

namespace ems {

/// \brief Deterministic pseudo-random generator with convenience draws.
///
/// Wraps std::mt19937_64; a given seed always produces the same stream on
/// every platform we target (mt19937_64 output is standardized; the
/// distributions used here are implemented locally to avoid libstdc++
/// version drift in distribution algorithms).
class Rng {
 public:
  explicit Rng(uint64_t seed) : engine_(seed) {}

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  int UniformInt(int lo, int hi);

  /// Uniform size_t in [0, n-1]. Requires n > 0.
  size_t UniformIndex(size_t n);

  /// Uniform double in [0, 1).
  double UniformDouble();

  /// Bernoulli trial with success probability p.
  bool Bernoulli(double p);

  /// Geometric number of repeats: 0 with prob (1-p), else 1 + Geom.
  /// Capped at `cap` to bound trace lengths.
  int Geometric(double p, int cap);

  /// Draws an index in [0, weights.size()) proportionally to weights.
  /// Requires a positive total weight.
  size_t WeightedIndex(const std::vector<double>& weights);

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* items) {
    if (items->empty()) return;
    for (size_t i = items->size() - 1; i > 0; --i) {
      size_t j = UniformIndex(i + 1);
      std::swap((*items)[i], (*items)[j]);
    }
  }

  /// Random lowercase hex string of the given length (for opaque names).
  std::string HexString(size_t length);

  /// Draws `k` distinct indices from [0, n). Requires k <= n.
  std::vector<size_t> SampleWithoutReplacement(size_t n, size_t k);

  /// Forks a child generator whose stream is a deterministic function of
  /// this generator's state; use to give sub-tasks independent streams.
  Rng Fork();

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace ems
