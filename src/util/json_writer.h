// Minimal JSON emitter (no parsing): nested objects/arrays with proper
// string escaping, for exporting match results and reports to tooling.
#pragma once

#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace ems {

/// \brief Streaming JSON writer with explicit begin/end nesting.
///
/// Usage:
///   JsonWriter w;
///   w.BeginObject();
///   w.Key("pairs");
///   w.BeginArray();
///   w.BeginObject();
///   w.Key("name"); w.String("a"); w.Key("score"); w.Number(0.9);
///   w.EndObject();
///   w.EndArray();
///   w.EndObject();
///   std::string json = w.str();
///
/// The writer inserts commas automatically. Nesting mismatches are
/// EMS_DCHECKed.
class JsonWriter {
 public:
  void BeginObject();
  void EndObject();
  void BeginArray();
  void EndArray();

  /// Emits an object key; the next value belongs to it.
  void Key(std::string_view key);

  void String(std::string_view value);
  void Number(double value);
  void Int(long long value);
  void Bool(bool value);
  void Null();

  /// The document so far. Valid once all scopes are closed.
  std::string str() const { return out_.str(); }

  /// JSON string escaping (quotes, backslashes, control characters).
  static std::string Escape(std::string_view s);

 private:
  enum class Scope { kObject, kArray };

  void MaybeComma();
  void ValueEmitted();

  std::ostringstream out_;
  std::vector<Scope> scopes_;
  std::vector<bool> first_in_scope_;
  bool pending_key_ = false;
};

}  // namespace ems
