// Wall-clock timing for the evaluation harness.
#pragma once

#include <chrono>
#include <cstdint>

namespace ems {

/// \brief Monotonic stopwatch. Starts on construction.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  /// Elapsed time since construction/Reset, in milliseconds.
  double ElapsedMillis() const {
    return std::chrono::duration<double, std::milli>(Clock::now() - start_)
        .count();
  }

  /// Elapsed time since construction/Reset, in seconds.
  double ElapsedSeconds() const { return ElapsedMillis() / 1000.0; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace ems
