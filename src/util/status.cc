#include "util/status.h"

namespace ems {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kNotImplemented:
      return "NotImplemented";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kCancelled:
      return "Cancelled";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code());
  out += ": ";
  out += message();
  return out;
}

}  // namespace ems
