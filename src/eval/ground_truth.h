// Ground-truth correspondences between two event logs and the matching
// quality metrics of Section 5.1. Correspondences are m:n sets of event
// names; precision/recall/F-measure are computed at the level of
// singleton links (every (e1, e2) with e1 in the left set and e2 in the
// right set), the standard flattening for complex matches [23].
#pragma once

#include <set>
#include <string>
#include <utility>
#include <vector>

#include "core/matcher.h"

namespace ems {

/// One true (or found) m:n correspondence between name sets.
struct TruthEntry {
  std::vector<std::string> left;
  std::vector<std::string> right;
};

/// \brief The reference mapping between two logs.
class GroundTruth {
 public:
  GroundTruth() = default;

  /// Adds a 1:1 correspondence.
  void Add(const std::string& left, const std::string& right);

  /// Adds an m:n correspondence.
  void AddComplex(std::vector<std::string> left,
                  std::vector<std::string> right);

  /// Renames left-side events (e.g. after perturbations); names absent
  /// from the map are kept.
  void RenameLeft(const std::map<std::string, std::string>& renames);

  /// Renames right-side events.
  void RenameRight(const std::map<std::string, std::string>& renames);

  /// Drops correspondences whose left/right events are no longer in the
  /// respective vocabularies (after dislocation removed them). Partial
  /// overlaps shrink to the surviving members; empty sides drop the entry.
  void RestrictToVocabularies(const std::set<std::string>& left_vocab,
                              const std::set<std::string>& right_vocab);

  const std::vector<TruthEntry>& entries() const { return entries_; }
  size_t size() const { return entries_.size(); }

  /// All singleton links (e1, e2) implied by the correspondences.
  std::set<std::pair<std::string, std::string>> Links() const;

 private:
  std::vector<TruthEntry> entries_;
};

/// Flattens matcher output into singleton links.
std::set<std::pair<std::string, std::string>> CorrespondenceLinks(
    const std::vector<Correspondence>& found);

}  // namespace ems
