// Fixed-width text tables for figure reproductions: every bench binary
// prints the same rows/series the paper's figures plot.
#pragma once

#include <string>
#include <vector>

namespace ems {

/// \brief Column-aligned text table.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);

  /// Adds a data row; must match the header width.
  void AddRow(std::vector<std::string> cells);

  /// Renders with column alignment and a header separator.
  std::string ToString() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// "0.812" style cell.
std::string Cell(double value, int precision = 3);

/// "12.4ms" style cell.
std::string MillisCell(double millis);

}  // namespace ems
