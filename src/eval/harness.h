// Evaluation harness: runs one matching method on one log pair and
// reports quality and time — the common machinery behind every figure
// reproduction in bench/. Methods mirror the paper's evaluation:
// EMS, EMS+es, GED, OPQ, BHV (plus SimRank for ablation).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/matcher.h"
#include "eval/metrics.h"
#include "synth/dataset.h"

namespace ems {

struct ObsContext;

namespace exec {
class ThreadPool;
}  // namespace exec

/// The matching approaches compared in Section 5.
enum class Method {
  kEms,           // the paper's contribution, exact iteration
  kEmsEstimated,  // EMS+es with I exact iterations
  kGed,           // graph edit distance [5]
  kOpq,           // opaque matching [11]
  kBhv,           // behavioral similarity [19]
  kSimRank,       // classic SimRank [10] (ablation)
  kFlooding,      // similarity flooding [14] (ablation)
  kIcop,          // ICoP-style label-only m:n matching [23]
};

const char* MethodName(Method method);

/// Harness configuration shared across methods.
struct HarnessOptions {
  /// Integrate typographic (q-gram cosine) label similarity. When false,
  /// alpha is forced to 1 (the opaque scenario of Figures 3/10).
  bool use_labels = false;

  /// alpha used when labels are integrated (Figures 4/11).
  double alpha_with_labels = 0.5;

  /// EMS parameters (alpha is overridden per use_labels).
  EmsOptions ems;

  /// I for EMS+es (the paper uses 5 in the headline comparisons).
  int estimation_iterations = 5;

  /// Run composite (m:n) matching for the EMS methods. Baselines always
  /// produce 1:1 mappings (their published form); flattened links give
  /// them partial credit against m:n truth, as in the paper.
  bool composites = false;
  CompositeOptions composite;

  /// Correspondence-selection threshold (relative to each method's own
  /// similarity scale).
  double min_match_similarity = 0.05;

  /// Minimum direct-follows frequency kept in every method's dependency
  /// graph (noise filtering; Figure 7 studies EMS's sensitivity to it).
  double min_edge_frequency = 0.05;

  /// Expansion budget for exact OPQ; exceeding it records a DNF, which
  /// is how the paper reports OPQ beyond 30 events.
  uint64_t opq_max_expansions = 2'000'000;

  /// When the exact OPQ search exhausts its budget, fall back to the
  /// 2-opt hill climbing Kang-Naughton propose for larger instances
  /// (counts as finished). Disable to reproduce the hard-DNF regime of
  /// Figure 8.
  bool opq_fallback_hill_climb = true;

  /// Observability sink threaded into whichever method runs (EMS gets
  /// the full pipeline spans; baselines get graph_build + their own
  /// similarity span + selection). Null (default) disables. Borrowed.
  ObsContext* obs = nullptr;
};

/// Outcome of running one method on one pair.
struct MethodRun {
  MatchQuality quality;
  double millis = 0.0;
  bool dnf = false;  // method exceeded its budget (OPQ)
  EmsStats ems_stats;
  CompositeStats composite_stats;
};

/// Runs `method` on `pair` and evaluates against the pair's ground truth.
MethodRun RunMethod(Method method, const LogPair& pair,
                    const HarnessOptions& options);

/// Runs `method` on every pair, fanned out across `pool` (serial, in
/// index order, when null). The returned runs are index-aligned with
/// `pairs` and bit-identical to the serial sweep: each run is a pure
/// function of (method, pair, options) — stochastic methods (OPQ
/// hill-climb) seed a private RNG stream from their options, so workers
/// never share generator state.
///
/// When `per_pair_obs` is non-null it is filled with one fresh ObsContext
/// per pair and `options.obs` is ignored; a single TraceRecorder cannot
/// hold the span trees of concurrent runs (spans nest per thread), which
/// is also why a shared `options.obs` is dropped when the sweep actually
/// runs in parallel.
std::vector<MethodRun> RunMethodOnPairs(
    Method method, const std::vector<const LogPair*>& pairs,
    const HarnessOptions& options, exec::ThreadPool* pool,
    std::vector<std::unique_ptr<ObsContext>>* per_pair_obs = nullptr);

}  // namespace ems
