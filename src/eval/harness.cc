#include "eval/harness.h"

#include "exec/parallel.h"

#include "baselines/bhv.h"
#include "baselines/ged.h"
#include "baselines/icop.h"
#include "baselines/opq.h"
#include "baselines/flooding.h"
#include "baselines/simrank.h"
#include "obs/context.h"
#include "util/timer.h"

namespace ems {

const char* MethodName(Method method) {
  switch (method) {
    case Method::kEms:
      return "EMS";
    case Method::kEmsEstimated:
      return "EMS+es";
    case Method::kGed:
      return "GED";
    case Method::kOpq:
      return "OPQ";
    case Method::kBhv:
      return "BHV";
    case Method::kSimRank:
      return "SimRank";
    case Method::kFlooding:
      return "SimFlood";
    case Method::kIcop:
      return "ICoP";
  }
  return "?";
}

namespace {

// Correspondences from a similarity matrix over two graphs (baselines).
std::vector<Correspondence> SelectFromMatrix(
    const SimilarityMatrix& sim, const DependencyGraph& g1,
    const DependencyGraph& g2, const EventLog& log1, const EventLog& log2,
    double min_similarity) {
  std::vector<std::vector<double>> sub =
      sim.RealSubmatrix(g1.has_artificial(), g2.has_artificial());
  // Similarity scales differ per method (SimRank values decay toward 0
  // on deep graphs); apply the threshold relative to the method's own
  // scale so the comparison stays fair.
  double max_value = 0.0;
  for (const auto& row : sub) {
    for (double v : row) max_value = std::max(max_value, v);
  }
  SelectionOptions sel;
  sel.min_similarity = min_similarity * std::max(max_value, 1e-12);
  std::vector<Match> matches = SelectMaxTotalSimilarity(sub, sel);
  const NodeId off1 = g1.has_artificial() ? 1 : 0;
  const NodeId off2 = g2.has_artificial() ? 1 : 0;
  std::vector<Correspondence> out;
  for (const Match& m : matches) {
    Correspondence corr;
    corr.similarity = m.similarity;
    for (EventId e : g1.Members(m.row + off1)) {
      corr.events1.push_back(log1.EventName(e));
    }
    for (EventId e : g2.Members(m.col + off2)) {
      corr.events2.push_back(log2.EventName(e));
    }
    out.push_back(std::move(corr));
  }
  return out;
}

// Correspondences from a node mapping (GED / OPQ; mapping indexes real
// nodes of g1 into real nodes of g2).
std::vector<Correspondence> MappingToCorrespondences(
    const std::vector<int>& mapping, const DependencyGraph& g1,
    const DependencyGraph& g2, const EventLog& log1, const EventLog& log2) {
  const NodeId off1 = g1.has_artificial() ? 1 : 0;
  const NodeId off2 = g2.has_artificial() ? 1 : 0;
  std::vector<Correspondence> out;
  for (size_t i = 0; i < mapping.size(); ++i) {
    if (mapping[i] < 0) continue;
    Correspondence corr;
    corr.similarity = 1.0;
    for (EventId e : g1.Members(static_cast<NodeId>(i) + off1)) {
      corr.events1.push_back(log1.EventName(e));
    }
    for (EventId e :
         g2.Members(static_cast<NodeId>(mapping[i]) + off2)) {
      corr.events2.push_back(log2.EventName(e));
    }
    out.push_back(std::move(corr));
  }
  return out;
}

MethodRun RunEms(bool estimated, const LogPair& pair,
                 const HarnessOptions& options) {
  MatchOptions match_opts;
  match_opts.min_edge_frequency = options.min_edge_frequency;
  match_opts.ems = options.ems;
  match_opts.ems.alpha = options.use_labels ? options.alpha_with_labels : 1.0;
  match_opts.engine = estimated ? SimilarityEngine::kEstimated
                                : SimilarityEngine::kExact;
  match_opts.estimation_iterations = options.estimation_iterations;
  match_opts.label_measure = options.use_labels ? LabelMeasure::kQGramCosine
                                                : LabelMeasure::kNone;
  match_opts.min_match_similarity = options.min_match_similarity;
  match_opts.match_composites = options.composites;
  match_opts.composite = options.composite;
  match_opts.obs.context = options.obs;

  Matcher matcher(match_opts);
  MethodRun run;
  Timer timer;
  Result<MatchResult> result = matcher.Match(pair.log1, pair.log2);
  run.millis = timer.ElapsedMillis();
  if (!result.ok()) {
    run.dnf = true;
    return run;
  }
  run.quality = Evaluate(pair.truth, result->correspondences);
  run.ems_stats = result->ems_stats;
  run.composite_stats = result->composite_stats;
  return run;
}

MethodRun RunBhvOrSimRank(Method method, const LogPair& pair,
                          const HarnessOptions& options) {
  DependencyGraphOptions graph_opts;
  graph_opts.add_artificial_event = false;
  graph_opts.min_edge_frequency = options.min_edge_frequency;
  ScopedSpan graph_span(options.obs, "graph_build");
  DependencyGraph g1 = DependencyGraph::Build(pair.log1, graph_opts);
  DependencyGraph g2 = DependencyGraph::Build(pair.log2, graph_opts);
  graph_span.End();

  MethodRun run;
  Timer timer;
  SimilarityMatrix sim;
  if (method == Method::kBhv) {
    std::vector<std::vector<double>> labels;
    const std::vector<std::vector<double>>* labels_ptr = nullptr;
    QGramCosineSimilarity qgram;
    if (options.use_labels) {
      labels = LabelSimilarityMatrix(g1, g2, qgram);
      labels_ptr = &labels;
    }
    BhvOptions bhv;
    bhv.alpha = options.use_labels ? options.alpha_with_labels : 1.0;
    bhv.c = options.ems.c;
    bhv.obs = options.obs;
    sim = ComputeBhvSimilarity(g1, g2, bhv, labels_ptr);
  } else if (method == Method::kSimRank) {
    SimRankOptions sr;
    sr.c = options.ems.c;
    sr.obs = options.obs;
    sim = ComputeSimRank(g1, g2, sr);
  } else {
    FloodingOptions fl;
    fl.obs = options.obs;
    std::vector<std::vector<double>> labels;
    const std::vector<std::vector<double>>* labels_ptr = nullptr;
    QGramCosineSimilarity qgram;
    if (options.use_labels) {
      labels = LabelSimilarityMatrix(g1, g2, qgram);
      labels_ptr = &labels;
    }
    sim = ComputeSimilarityFlooding(g1, g2, fl, labels_ptr);
  }
  ScopedSpan selection_span(options.obs, "selection");
  std::vector<Correspondence> found = SelectFromMatrix(
      sim, g1, g2, pair.log1, pair.log2, options.min_match_similarity);
  selection_span.End();
  run.millis = timer.ElapsedMillis();
  run.quality = Evaluate(pair.truth, found);
  return run;
}

MethodRun RunGed(const LogPair& pair, const HarnessOptions& options) {
  DependencyGraphOptions graph_opts;
  graph_opts.add_artificial_event = false;
  graph_opts.min_edge_frequency = options.min_edge_frequency;
  ScopedSpan graph_span(options.obs, "graph_build");
  DependencyGraph g1 = DependencyGraph::Build(pair.log1, graph_opts);
  DependencyGraph g2 = DependencyGraph::Build(pair.log2, graph_opts);
  graph_span.End();

  MethodRun run;
  Timer timer;
  GedOptions ged;
  ged.obs = options.obs;
  QGramCosineSimilarity qgram;
  if (options.use_labels) ged.label_measure = &qgram;
  GedResult result = ComputeGedMatching(g1, g2, ged);
  std::vector<Correspondence> found = MappingToCorrespondences(
      result.mapping, g1, g2, pair.log1, pair.log2);
  run.millis = timer.ElapsedMillis();
  run.quality = Evaluate(pair.truth, found);
  return run;
}

MethodRun RunOpq(const LogPair& pair, const HarnessOptions& options) {
  DependencyGraphOptions graph_opts;
  graph_opts.add_artificial_event = false;
  graph_opts.min_edge_frequency = options.min_edge_frequency;
  ScopedSpan graph_span(options.obs, "graph_build");
  DependencyGraph g1 = DependencyGraph::Build(pair.log1, graph_opts);
  DependencyGraph g2 = DependencyGraph::Build(pair.log2, graph_opts);
  graph_span.End();

  MethodRun run;
  Timer timer;
  OpqOptions opq;
  opq.obs = options.obs;
  opq.max_expansions = options.opq_max_expansions;
  Result<OpqResult> result = ComputeOpqExact(g1, g2, opq);
  OpqResult outcome;
  if (result.ok()) {
    outcome = std::move(result).value();
  } else if (options.opq_fallback_hill_climb) {
    outcome = ComputeOpqHillClimb(g1, g2, opq);
  } else {
    run.millis = timer.ElapsedMillis();
    run.dnf = true;  // the paper's "OPQ cannot finish" regime
    return run;
  }
  run.millis = timer.ElapsedMillis();
  std::vector<Correspondence> found = MappingToCorrespondences(
      outcome.mapping, g1, g2, pair.log1, pair.log2);
  run.quality = Evaluate(pair.truth, found);
  return run;
}

MethodRun RunIcop(const LogPair& pair, const HarnessOptions& options) {
  // ICoP consumes labels exclusively; in the opaque (structural-only)
  // scenario it still sees the q-gram measure, which carries no signal
  // for garbled names — the paper's point about [23].
  MethodRun run;
  Timer timer;
  QGramCosineSimilarity qgram;
  IcopOptions icop;
  icop.obs = options.obs;
  std::vector<Correspondence> found =
      IcopMatch(pair.log1, pair.log2, qgram, icop);
  run.millis = timer.ElapsedMillis();
  run.quality = Evaluate(pair.truth, found);
  return run;
}

}  // namespace

MethodRun RunMethod(Method method, const LogPair& pair,
                    const HarnessOptions& options) {
  switch (method) {
    case Method::kEms:
      return RunEms(/*estimated=*/false, pair, options);
    case Method::kEmsEstimated:
      return RunEms(/*estimated=*/true, pair, options);
    case Method::kGed:
      return RunGed(pair, options);
    case Method::kOpq:
      return RunOpq(pair, options);
    case Method::kBhv:
    case Method::kSimRank:
    case Method::kFlooding:
      return RunBhvOrSimRank(method, pair, options);
    case Method::kIcop:
      return RunIcop(pair, options);
  }
  return MethodRun{};
}

std::vector<MethodRun> RunMethodOnPairs(
    Method method, const std::vector<const LogPair*>& pairs,
    const HarnessOptions& options, exec::ThreadPool* pool,
    std::vector<std::unique_ptr<ObsContext>>* per_pair_obs) {
  std::vector<MethodRun> runs(pairs.size());
  if (per_pair_obs != nullptr) {
    per_pair_obs->clear();
    per_pair_obs->reserve(pairs.size());
    for (size_t i = 0; i < pairs.size(); ++i) {
      per_pair_obs->push_back(std::make_unique<ObsContext>());
    }
  }
  const bool parallel = pool != nullptr && pool->num_threads() > 1;
  exec::TaskGroup group(pool);
  for (size_t i = 0; i < pairs.size(); ++i) {
    group.Run([&, i]() -> Status {
      HarnessOptions run_options = options;
      if (per_pair_obs != nullptr) {
        run_options.obs = (*per_pair_obs)[i].get();
      } else if (parallel) {
        run_options.obs = nullptr;  // span trees cannot interleave
      }
      runs[i] = RunMethod(method, *pairs[i], run_options);
      return Status::OK();
    });
  }
  // RunMethod reports failures as DNF runs rather than statuses; the
  // only Wait errors are escaped exceptions, which have nowhere better
  // to surface than the (empty) runs they left behind.
  (void)group.Wait();
  return runs;
}

}  // namespace ems
