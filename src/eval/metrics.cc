#include "eval/metrics.h"

#include <algorithm>

namespace ems {

MatchQuality EvaluateLinks(
    const std::set<std::pair<std::string, std::string>>& truth,
    const std::set<std::pair<std::string, std::string>>& found) {
  MatchQuality q;
  q.truth_links = truth.size();
  q.found_links = found.size();
  for (const auto& link : found) {
    if (truth.count(link)) ++q.correct_links;
  }
  if (truth.empty() && found.empty()) {
    q.precision = q.recall = q.f_measure = 1.0;
    return q;
  }
  q.precision = found.empty()
                    ? 0.0
                    : static_cast<double>(q.correct_links) /
                          static_cast<double>(found.size());
  q.recall = truth.empty()
                 ? 0.0
                 : static_cast<double>(q.correct_links) /
                       static_cast<double>(truth.size());
  q.f_measure = (q.precision + q.recall) <= 0.0
                    ? 0.0
                    : 2.0 * q.precision * q.recall /
                          (q.precision + q.recall);
  return q;
}

MatchQuality Evaluate(const GroundTruth& truth,
                      const std::vector<Correspondence>& found) {
  return EvaluateLinks(truth.Links(), CorrespondenceLinks(found));
}

void QualityAccumulator::Add(const MatchQuality& q) {
  precision_sum_ += q.precision;
  recall_sum_ += q.recall;
  f_sum_ += q.f_measure;
  ++count_;
}

MatchQuality QualityAccumulator::Mean() const {
  MatchQuality q;
  if (count_ == 0) return q;
  q.precision = precision_sum_ / static_cast<double>(count_);
  q.recall = recall_sum_ / static_cast<double>(count_);
  q.f_measure = f_sum_ / static_cast<double>(count_);
  return q;
}

}  // namespace ems
