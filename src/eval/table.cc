#include "eval/table.h"

#include <algorithm>
#include <sstream>

#include "util/status.h"
#include "util/string_util.h"

namespace ems {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TextTable::AddRow(std::vector<std::string> cells) {
  EMS_DCHECK(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TextTable::ToString() const {
  std::vector<size_t> widths(headers_.size(), 0);
  for (size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (c > 0) out << "  ";
      out << row[c];
      for (size_t pad = row[c].size(); pad < widths[c]; ++pad) out << ' ';
    }
    out << '\n';
  };
  emit_row(headers_);
  size_t total = 0;
  for (size_t w : widths) total += w + 2;
  out << std::string(total > 2 ? total - 2 : total, '-') << '\n';
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

std::string Cell(double value, int precision) {
  return FormatDouble(value, precision);
}

std::string MillisCell(double millis) {
  if (millis >= 1000.0) return FormatDouble(millis / 1000.0, 2) + "s";
  return FormatDouble(millis, 1) + "ms";
}

}  // namespace ems
