// Precision / recall / F-measure over correspondence links (Section 5.1).
#pragma once

#include <set>
#include <string>
#include <utility>

#include "eval/ground_truth.h"

namespace ems {

/// Matching-quality scores. All in [0, 1].
struct MatchQuality {
  double precision = 0.0;
  double recall = 0.0;
  double f_measure = 0.0;
  size_t truth_links = 0;
  size_t found_links = 0;
  size_t correct_links = 0;
};

/// Computes quality of `found` links against `truth` links. Empty truth
/// and empty found counts as perfect (nothing to find, nothing found).
MatchQuality EvaluateLinks(
    const std::set<std::pair<std::string, std::string>>& truth,
    const std::set<std::pair<std::string, std::string>>& found);

/// Convenience overload over matcher output and GroundTruth.
MatchQuality Evaluate(const GroundTruth& truth,
                      const std::vector<Correspondence>& found);

/// Accumulates qualities across many log pairs (macro average, the
/// paper's per-testbed "average accuracy").
class QualityAccumulator {
 public:
  void Add(const MatchQuality& q);
  MatchQuality Mean() const;
  size_t count() const { return count_; }

 private:
  double precision_sum_ = 0.0;
  double recall_sum_ = 0.0;
  double f_sum_ = 0.0;
  size_t count_ = 0;
};

}  // namespace ems
