#include "eval/ground_truth.h"

#include <algorithm>
#include <map>

namespace ems {

void GroundTruth::Add(const std::string& left, const std::string& right) {
  entries_.push_back(TruthEntry{{left}, {right}});
}

void GroundTruth::AddComplex(std::vector<std::string> left,
                             std::vector<std::string> right) {
  entries_.push_back(TruthEntry{std::move(left), std::move(right)});
}

namespace {

void RenameSide(std::vector<TruthEntry>* entries, bool left,
                const std::map<std::string, std::string>& renames) {
  for (TruthEntry& e : *entries) {
    std::vector<std::string>& side = left ? e.left : e.right;
    for (std::string& name : side) {
      auto it = renames.find(name);
      if (it != renames.end()) name = it->second;
    }
  }
}

}  // namespace

void GroundTruth::RenameLeft(
    const std::map<std::string, std::string>& renames) {
  RenameSide(&entries_, /*left=*/true, renames);
}

void GroundTruth::RenameRight(
    const std::map<std::string, std::string>& renames) {
  RenameSide(&entries_, /*left=*/false, renames);
}

void GroundTruth::RestrictToVocabularies(
    const std::set<std::string>& left_vocab,
    const std::set<std::string>& right_vocab) {
  std::vector<TruthEntry> kept;
  for (TruthEntry& e : entries_) {
    std::vector<std::string> left, right;
    for (const std::string& n : e.left) {
      if (left_vocab.count(n)) left.push_back(n);
    }
    for (const std::string& n : e.right) {
      if (right_vocab.count(n)) right.push_back(n);
    }
    if (!left.empty() && !right.empty()) {
      kept.push_back(TruthEntry{std::move(left), std::move(right)});
    }
  }
  entries_ = std::move(kept);
}

std::set<std::pair<std::string, std::string>> GroundTruth::Links() const {
  std::set<std::pair<std::string, std::string>> links;
  for (const TruthEntry& e : entries_) {
    for (const std::string& l : e.left) {
      for (const std::string& r : e.right) links.emplace(l, r);
    }
  }
  return links;
}

std::set<std::pair<std::string, std::string>> CorrespondenceLinks(
    const std::vector<Correspondence>& found) {
  std::set<std::pair<std::string, std::string>> links;
  for (const Correspondence& c : found) {
    for (const std::string& l : c.events1) {
      for (const std::string& r : c.events2) links.emplace(l, r);
    }
  }
  return links;
}

}  // namespace ems
