// Memoizing decorator over any LabelSimilarity. The composite search
// evaluates S^L for the same label pairs at every greedy step (only the
// merged node's label is new); this cache interns per-label q-gram
// profiles and memoizes pairwise scores so repeated pairs cost one hash
// lookup. Scores are bit-identical to the wrapped measure: for
// QGramCosineSimilarity the cached profile is built by the exact same
// construction (ToLower + QGramProfile) and combined by the same
// Cosine call; every other measure is simply invoked once per distinct
// ordered pair and the result replayed.
#pragma once

#include <atomic>
#include <cstdint>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "text/label_similarity.h"
#include "text/qgram.h"

namespace ems {

/// \brief Thread-safe memoizing wrapper around a label similarity.
///
/// The wrapped measure is borrowed and must outlive the cache. Safe for
/// concurrent Similarity calls (shared_mutex around the memo tables);
/// concurrent first computations of the same pair may both count as
/// misses, but always store the same value.
class CachedLabelSimilarity final : public LabelSimilarity {
 public:
  explicit CachedLabelSimilarity(const LabelSimilarity& base);

  double Similarity(std::string_view a, std::string_view b) const override;
  std::string Name() const override { return "cached(" + base_.Name() + ")"; }

  /// Lookups answered from the score memo.
  uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  /// Lookups that computed a fresh score.
  uint64_t misses() const { return misses_.load(std::memory_order_relaxed); }

  /// Snapshot support (src/store/snapshot.h): the score memo as raw
  /// (pair key, score) entries, sorted by key so exports of equal caches
  /// are byte-identical. Thread-safe.
  std::vector<std::pair<std::string, double>> ExportScores() const;

  /// Pre-seeds the score memo with exported entries. Entries must come
  /// from a cache wrapping the same measure (the artifact store's
  /// fingerprint includes Name() to guarantee this); existing entries
  /// are kept. Profiles are not imported — they rebuild lazily on the
  /// first miss of a new label. Thread-safe.
  void ImportScores(const std::vector<std::pair<std::string, double>>& entries);

 private:
  // Profiles are immutable after construction and unordered_map never
  // invalidates element addresses on insert, so pointers handed out under
  // the lock stay valid for the cosine computed after releasing it.
  const QGramProfile& ProfileLocked(std::string_view label) const;

  const LabelSimilarity& base_;
  int qgram_q_ = -1;  // >= 1 when base is a QGramCosineSimilarity

  mutable std::shared_mutex mu_;
  mutable std::unordered_map<std::string, double> scores_;
  mutable std::unordered_map<std::string, QGramProfile> profiles_;
  mutable std::atomic<uint64_t> hits_{0};
  mutable std::atomic<uint64_t> misses_{0};
};

}  // namespace ems
