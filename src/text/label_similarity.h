// Pluggable label (typographic) similarity S^L used as the (1 - alpha)
// component of the EMS similarity (Definition 2). The library ships the
// paper's choice (q-gram cosine), Levenshtein, a constant-zero measure for
// the opaque-name scenario of Figure 3, and token-set overlap for
// multi-word activity names.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <string_view>

#include "graph/dependency_graph.h"

namespace ems {

namespace exec {
class ThreadPool;
}  // namespace exec

/// \brief Interface of a label similarity measure over event names.
///
/// Implementations return values in [0, 1]; 1 means identical labels.
class LabelSimilarity {
 public:
  virtual ~LabelSimilarity() = default;

  /// Similarity of two event labels, in [0, 1].
  virtual double Similarity(std::string_view a, std::string_view b) const = 0;

  /// Name of the measure, for reports.
  virtual std::string Name() const = 0;
};

/// Constant 0: structural-only matching (the opaque-name scenario of the
/// paper's Figure 3; combined with alpha = 1 it disables S^L entirely).
class NoLabelSimilarity final : public LabelSimilarity {
 public:
  double Similarity(std::string_view, std::string_view) const override {
    return 0.0;
  }
  std::string Name() const override { return "none"; }
};

/// Cosine similarity over character q-grams (the paper's measure [9]).
class QGramCosineSimilarity final : public LabelSimilarity {
 public:
  explicit QGramCosineSimilarity(int q = 3) : q_(q) {}
  double Similarity(std::string_view a, std::string_view b) const override;
  std::string Name() const override;

  int q() const { return q_; }

 private:
  int q_;
};

/// Normalized Levenshtein similarity [13].
class LevenshteinLabelSimilarity final : public LabelSimilarity {
 public:
  double Similarity(std::string_view a, std::string_view b) const override;
  std::string Name() const override { return "levenshtein"; }
};

/// Jaro-Winkler similarity, prefix-boosted (good for identifier labels).
class JaroWinklerLabelSimilarity final : public LabelSimilarity {
 public:
  double Similarity(std::string_view a, std::string_view b) const override;
  std::string Name() const override { return "jaro-winkler"; }
};

/// Jaccard overlap of lower-cased whitespace/underscore-separated tokens;
/// robust for "Check Inventory" vs "inventory_check" style labels.
class TokenJaccardSimilarity final : public LabelSimilarity {
 public:
  double Similarity(std::string_view a, std::string_view b) const override;
  std::string Name() const override { return "token-jaccard"; }
};

/// Precomputed S^L matrix between the nodes of two dependency graphs.
/// Composite nodes take the maximum member-label similarity; pairs
/// involving the artificial node get 0 (its similarity is pinned by the
/// iteration, never read through S^L).
///
/// `pool` (optional, borrowed) partitions the rows across workers; every
/// cell is an independent pure function of two labels, so the result is
/// identical for any pool. Measures must be stateless/thread-safe (all
/// the measures in this header are).
std::vector<std::vector<double>> LabelSimilarityMatrix(
    const DependencyGraph& g1, const DependencyGraph& g2,
    const LabelSimilarity& measure, exec::ThreadPool* pool = nullptr);

}  // namespace ems
