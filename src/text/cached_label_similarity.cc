#include "text/cached_label_similarity.h"

#include <algorithm>
#include <mutex>
#include <utility>

#include "util/string_util.h"

namespace ems {

namespace {

// Length-prefixed ordered pair key: unambiguous for any label contents.
std::string PairKey(std::string_view a, std::string_view b) {
  std::string key = std::to_string(a.size());
  key.push_back(':');
  key.append(a);
  key.append(b);
  return key;
}

}  // namespace

CachedLabelSimilarity::CachedLabelSimilarity(const LabelSimilarity& base)
    : base_(base) {
  if (const auto* qgram = dynamic_cast<const QGramCosineSimilarity*>(&base)) {
    qgram_q_ = qgram->q();
  }
}

const QGramProfile& CachedLabelSimilarity::ProfileLocked(
    std::string_view label) const {
  auto it = profiles_.find(std::string(label));
  if (it != profiles_.end()) return it->second;
  return profiles_
      .emplace(std::string(label), QGramProfile(ToLower(label), qgram_q_))
      .first->second;
}

double CachedLabelSimilarity::Similarity(std::string_view a,
                                         std::string_view b) const {
  std::string key = PairKey(a, b);
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    auto it = scores_.find(key);
    if (it != scores_.end()) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      return it->second;
    }
  }
  misses_.fetch_add(1, std::memory_order_relaxed);

  double score;
  if (qgram_q_ >= 1) {
    // Same construction and call orientation as
    // QGramCosineSimilarity::Similarity, so the result is bit-identical.
    const QGramProfile* pa;
    const QGramProfile* pb;
    {
      std::unique_lock<std::shared_mutex> lock(mu_);
      pa = &ProfileLocked(a);
      pb = &ProfileLocked(b);
    }
    score = pa->Cosine(*pb);
  } else {
    score = base_.Similarity(a, b);
  }

  std::unique_lock<std::shared_mutex> lock(mu_);
  scores_.emplace(std::move(key), score);
  return score;
}

std::vector<std::pair<std::string, double>> CachedLabelSimilarity::ExportScores()
    const {
  std::vector<std::pair<std::string, double>> entries;
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    entries.assign(scores_.begin(), scores_.end());
  }
  std::sort(entries.begin(), entries.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return entries;
}

void CachedLabelSimilarity::ImportScores(
    const std::vector<std::pair<std::string, double>>& entries) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  for (const auto& [key, score] : entries) scores_.emplace(key, score);
}

}  // namespace ems
