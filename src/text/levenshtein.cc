#include "text/levenshtein.h"

#include <algorithm>
#include <vector>

namespace ems {

size_t LevenshteinDistance(std::string_view a, std::string_view b) {
  if (a.size() < b.size()) std::swap(a, b);  // b is the shorter string
  if (b.empty()) return a.size();
  // Single-row dynamic program over the shorter string.
  std::vector<size_t> row(b.size() + 1);
  for (size_t j = 0; j <= b.size(); ++j) row[j] = j;
  for (size_t i = 1; i <= a.size(); ++i) {
    size_t diag = row[0];
    row[0] = i;
    for (size_t j = 1; j <= b.size(); ++j) {
      size_t up = row[j];
      size_t cost = (a[i - 1] == b[j - 1]) ? 0 : 1;
      row[j] = std::min({row[j] + 1, row[j - 1] + 1, diag + cost});
      diag = up;
    }
  }
  return row[b.size()];
}

double LevenshteinSimilarity(std::string_view a, std::string_view b) {
  size_t longest = std::max(a.size(), b.size());
  if (longest == 0) return 1.0;
  return 1.0 - static_cast<double>(LevenshteinDistance(a, b)) /
                   static_cast<double>(longest);
}

}  // namespace ems
