#include "text/qgram.h"

#include <cmath>

#include "util/status.h"

namespace ems {

QGramProfile::QGramProfile(std::string_view s, int q) : q_(q) {
  EMS_DCHECK(q >= 1);
  std::string padded;
  padded.reserve(s.size() + 2 * static_cast<size_t>(q - 1));
  padded.append(static_cast<size_t>(q - 1), '#');
  padded.append(s);
  padded.append(static_cast<size_t>(q - 1), '$');
  if (padded.size() >= static_cast<size_t>(q)) {
    for (size_t i = 0; i + static_cast<size_t>(q) <= padded.size(); ++i) {
      ++counts_[padded.substr(i, static_cast<size_t>(q))];
    }
  }
  double sq = 0.0;
  for (const auto& [gram, count] : counts_) {
    (void)gram;
    sq += static_cast<double>(count) * static_cast<double>(count);
  }
  norm_ = std::sqrt(sq);
}

double QGramProfile::Cosine(const QGramProfile& other) const {
  EMS_DCHECK(q_ == other.q_);
  if (counts_.empty() && other.counts_.empty()) return 1.0;
  if (counts_.empty() || other.counts_.empty()) return 0.0;
  // Iterate the smaller map for the dot product.
  const QGramProfile* small = this;
  const QGramProfile* large = &other;
  if (small->counts_.size() > large->counts_.size()) std::swap(small, large);
  double dot = 0.0;
  for (const auto& [gram, count] : small->counts_) {
    auto it = large->counts_.find(gram);
    if (it != large->counts_.end()) {
      dot += static_cast<double>(count) * static_cast<double>(it->second);
    }
  }
  return dot / (norm_ * other.norm_);
}

double QGramCosine(std::string_view a, std::string_view b, int q) {
  return QGramProfile(a, q).Cosine(QGramProfile(b, q));
}

}  // namespace ems
