// Levenshtein edit distance [13] and its normalized similarity, the
// classic syntactic label-similarity baseline.
#pragma once

#include <cstddef>
#include <string_view>

namespace ems {

/// Number of single-character insertions, deletions, and substitutions
/// transforming `a` into `b`.
size_t LevenshteinDistance(std::string_view a, std::string_view b);

/// 1 - distance / max(len); in [0, 1]. Two empty strings have similarity 1.
double LevenshteinSimilarity(std::string_view a, std::string_view b);

}  // namespace ems
