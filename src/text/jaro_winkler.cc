#include "text/jaro_winkler.h"

#include <algorithm>
#include <vector>

namespace ems {

double JaroSimilarity(std::string_view a, std::string_view b) {
  if (a.empty() && b.empty()) return 1.0;
  if (a.empty() || b.empty()) return 0.0;
  const size_t la = a.size();
  const size_t lb = b.size();
  const size_t window = std::max<size_t>(1, std::max(la, lb) / 2) - 1;

  std::vector<bool> matched_a(la, false), matched_b(lb, false);
  size_t matches = 0;
  for (size_t i = 0; i < la; ++i) {
    size_t lo = i > window ? i - window : 0;
    size_t hi = std::min(lb, i + window + 1);
    for (size_t j = lo; j < hi; ++j) {
      if (matched_b[j] || a[i] != b[j]) continue;
      matched_a[i] = matched_b[j] = true;
      ++matches;
      break;
    }
  }
  if (matches == 0) return 0.0;

  // Transpositions: matched characters out of order, halved.
  size_t transpositions = 0;
  size_t k = 0;
  for (size_t i = 0; i < la; ++i) {
    if (!matched_a[i]) continue;
    while (!matched_b[k]) ++k;
    if (a[i] != b[k]) ++transpositions;
    ++k;
  }
  double m = static_cast<double>(matches);
  return (m / static_cast<double>(la) + m / static_cast<double>(lb) +
          (m - static_cast<double>(transpositions) / 2.0) / m) /
         3.0;
}

double JaroWinklerSimilarity(std::string_view a, std::string_view b,
                             double prefix_scale) {
  double jaro = JaroSimilarity(a, b);
  size_t prefix = 0;
  for (size_t i = 0; i < std::min({a.size(), b.size(), size_t{4}}); ++i) {
    if (a[i] != b[i]) break;
    ++prefix;
  }
  return jaro + static_cast<double>(prefix) * prefix_scale * (1.0 - jaro);
}

}  // namespace ems
