// Jaro and Jaro-Winkler string similarity — standard measures for short
// identifier-like labels, complementing q-gram cosine and Levenshtein.
#pragma once

#include <string_view>

namespace ems {

/// Jaro similarity in [0, 1]: transposition-aware common-character
/// overlap. Two empty strings score 1.
double JaroSimilarity(std::string_view a, std::string_view b);

/// Jaro-Winkler: Jaro boosted by the length of the common prefix (up to
/// 4 characters) scaled by `prefix_scale` (standard 0.1, must keep
/// prefix_scale * 4 <= 1 so results stay within [0, 1]).
double JaroWinklerSimilarity(std::string_view a, std::string_view b,
                             double prefix_scale = 0.1);

}  // namespace ems
