// q-gram cosine similarity — the paper's choice of label similarity
// ("A state-of-the-art string similarity measure, cosine similarity with
// q-grams [9], is employed to compute the label similarity", Section 5.1).
#pragma once

#include <string>
#include <string_view>
#include <unordered_map>

namespace ems {

/// \brief Bag of character q-grams of a string.
///
/// The string is padded with q-1 leading and trailing sentinel characters
/// ('#' / '$'), the standard construction that lets prefixes/suffixes
/// contribute distinguishing grams.
class QGramProfile {
 public:
  /// Builds the q-gram profile of `s`. Requires q >= 1.
  QGramProfile(std::string_view s, int q = 3);

  /// Cosine similarity between two profiles, in [0, 1]. Two empty strings
  /// have similarity 1; an empty vs non-empty string has similarity 0.
  double Cosine(const QGramProfile& other) const;

  /// Number of distinct q-grams.
  size_t DistinctGrams() const { return counts_.size(); }

  int q() const { return q_; }

  /// Euclidean norm of the count vector (0 for the empty string).
  double norm() const { return norm_; }

  /// The raw gram -> count map (the corpus index posts these grams).
  const std::unordered_map<std::string, int>& counts() const {
    return counts_;
  }

 private:
  int q_;
  double norm_ = 0.0;  // Euclidean norm of the count vector
  std::unordered_map<std::string, int> counts_;
};

/// One-shot q-gram cosine similarity of two strings.
double QGramCosine(std::string_view a, std::string_view b, int q = 3);

}  // namespace ems
