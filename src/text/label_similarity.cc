#include "text/label_similarity.h"

#include <algorithm>
#include <set>

#include "exec/parallel.h"
#include "text/jaro_winkler.h"
#include "text/levenshtein.h"
#include "text/qgram.h"
#include "util/string_util.h"

namespace ems {

double QGramCosineSimilarity::Similarity(std::string_view a,
                                         std::string_view b) const {
  // Case-folded, as is standard for typographic matching: "Check Stock"
  // and "CHECK_STOCK" are the same activity spelled differently.
  return QGramCosine(ToLower(a), ToLower(b), q_);
}

std::string QGramCosineSimilarity::Name() const {
  return "qgram-cosine(q=" + std::to_string(q_) + ")";
}

double LevenshteinLabelSimilarity::Similarity(std::string_view a,
                                              std::string_view b) const {
  return LevenshteinSimilarity(a, b);
}

double JaroWinklerLabelSimilarity::Similarity(std::string_view a,
                                              std::string_view b) const {
  return JaroWinklerSimilarity(ToLower(a), ToLower(b));
}

namespace {

std::set<std::string> Tokenize(std::string_view s) {
  std::set<std::string> tokens;
  std::string cur;
  for (char c : s) {
    if (std::isalnum(static_cast<unsigned char>(c))) {
      cur.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
    } else if (!cur.empty()) {
      tokens.insert(cur);
      cur.clear();
    }
  }
  if (!cur.empty()) tokens.insert(cur);
  return tokens;
}

}  // namespace

double TokenJaccardSimilarity::Similarity(std::string_view a,
                                          std::string_view b) const {
  std::set<std::string> ta = Tokenize(a);
  std::set<std::string> tb = Tokenize(b);
  if (ta.empty() && tb.empty()) return 1.0;
  if (ta.empty() || tb.empty()) return 0.0;
  size_t inter = 0;
  for (const auto& t : ta) inter += tb.count(t);
  size_t uni = ta.size() + tb.size() - inter;
  return static_cast<double>(inter) / static_cast<double>(uni);
}

std::vector<std::vector<double>> LabelSimilarityMatrix(
    const DependencyGraph& g1, const DependencyGraph& g2,
    const LabelSimilarity& measure, exec::ThreadPool* pool) {
  const size_t n1 = g1.NumNodes();
  const size_t n2 = g2.NumNodes();
  std::vector<std::vector<double>> m(n1, std::vector<double>(n2, 0.0));
  // Each row is written by exactly one worker; cells are pure functions
  // of the two labels, so pool size cannot change the result.
  exec::ParallelFor(pool, 0, n1, [&](size_t row) {
    const NodeId v1 = static_cast<NodeId>(row);
    if (g1.IsArtificial(v1)) return;
    // Composite nodes compare by member labels; the display name joins
    // members with '+', which would spuriously lower q-gram overlap.
    std::vector<std::string> parts1 = Split(g1.NodeName(v1), '+');
    for (NodeId v2 = 0; v2 < static_cast<NodeId>(n2); ++v2) {
      if (g2.IsArtificial(v2)) continue;
      std::vector<std::string> parts2 = Split(g2.NodeName(v2), '+');
      double best = 0.0;
      for (const auto& p1 : parts1) {
        for (const auto& p2 : parts2) {
          best = std::max(best, measure.Similarity(p1, p2));
        }
      }
      m[static_cast<size_t>(v1)][static_cast<size_t>(v2)] = best;
    }
  });
  return m;
}

}  // namespace ems
