// Thread-safe LRU cache: the repository layer of the batch matching
// service. Values are handed out by copy (use shared_ptr values for
// heavy payloads like parsed event logs), so an eviction never
// invalidates an entry a concurrent job is still matching against.
#pragma once

#include <cstdint>
#include <list>
#include <map>
#include <mutex>
#include <optional>
#include <utility>

namespace ems {
namespace serve {

/// \brief Bounded map with least-recently-used eviction.
///
/// Get refreshes recency; Put inserts or overwrites and evicts the
/// coldest entry beyond `capacity`. Hit/miss counters are cumulative.
///
/// Entries optionally carry a cost (bytes, for the serve layer). With a
/// non-zero `max_cost` budget the cache additionally evicts coldest
/// entries while the resident cost exceeds the budget — except the
/// most-recent entry, which always stays (an over-budget single entry
/// would otherwise make the cache useless). The default budget of 0
/// keeps pure entry-count semantics.
template <typename Key, typename Value>
class LruCache {
 public:
  explicit LruCache(size_t capacity, uint64_t max_cost = 0)
      : capacity_(capacity > 0 ? capacity : 1), max_cost_(max_cost) {}

  LruCache(const LruCache&) = delete;
  LruCache& operator=(const LruCache&) = delete;

  /// The cached value, refreshed as most-recent; nullopt on miss.
  std::optional<Value> Get(const Key& key) {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = index_.find(key);
    if (it == index_.end()) {
      ++misses_;
      return std::nullopt;
    }
    ++hits_;
    order_.splice(order_.begin(), order_, it->second);
    return it->second->value;
  }

  /// Inserts or replaces; the entry becomes most-recent. `cost` is the
  /// entry's contribution to the byte budget (ignored when no budget).
  void Put(const Key& key, Value value, uint64_t cost = 0) {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = index_.find(key);
    if (it != index_.end()) {
      total_cost_ -= it->second->cost;
      total_cost_ += cost;
      it->second->value = std::move(value);
      it->second->cost = cost;
      order_.splice(order_.begin(), order_, it->second);
      EvictLocked();
      return;
    }
    order_.push_front(Entry{key, std::move(value), cost});
    index_[key] = order_.begin();
    total_cost_ += cost;
    EvictLocked();
  }

  void Clear() {
    std::lock_guard<std::mutex> lock(mu_);
    order_.clear();
    index_.clear();
    total_cost_ = 0;
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return index_.size();
  }

  size_t capacity() const { return capacity_; }

  uint64_t max_cost() const { return max_cost_; }

  /// Total cost of resident entries (the serve.cache_bytes gauge).
  uint64_t cost_bytes() const {
    std::lock_guard<std::mutex> lock(mu_);
    return total_cost_;
  }

  uint64_t evictions() const {
    std::lock_guard<std::mutex> lock(mu_);
    return evictions_;
  }

  uint64_t hits() const {
    std::lock_guard<std::mutex> lock(mu_);
    return hits_;
  }

  uint64_t misses() const {
    std::lock_guard<std::mutex> lock(mu_);
    return misses_;
  }

 private:
  struct Entry {
    Key key;
    Value value;
    uint64_t cost = 0;
  };

  // Called with mu_ held after any insert/update.
  void EvictLocked() {
    while (index_.size() > capacity_ ||
           (max_cost_ > 0 && total_cost_ > max_cost_ && index_.size() > 1)) {
      total_cost_ -= order_.back().cost;
      index_.erase(order_.back().key);
      order_.pop_back();
      ++evictions_;
    }
  }

  const size_t capacity_;
  const uint64_t max_cost_;
  mutable std::mutex mu_;
  std::list<Entry> order_;  // most-recent first
  std::map<Key, typename std::list<Entry>::iterator> index_;
  uint64_t total_cost_ = 0;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t evictions_ = 0;
};

}  // namespace serve
}  // namespace ems
