// Thread-safe LRU cache: the repository layer of the batch matching
// service. Values are handed out by copy (use shared_ptr values for
// heavy payloads like parsed event logs), so an eviction never
// invalidates an entry a concurrent job is still matching against.
#pragma once

#include <cstdint>
#include <list>
#include <map>
#include <mutex>
#include <optional>
#include <utility>

namespace ems {
namespace serve {

/// \brief Bounded map with least-recently-used eviction.
///
/// Get refreshes recency; Put inserts or overwrites and evicts the
/// coldest entry beyond `capacity`. Hit/miss counters are cumulative.
template <typename Key, typename Value>
class LruCache {
 public:
  explicit LruCache(size_t capacity) : capacity_(capacity > 0 ? capacity : 1) {}

  LruCache(const LruCache&) = delete;
  LruCache& operator=(const LruCache&) = delete;

  /// The cached value, refreshed as most-recent; nullopt on miss.
  std::optional<Value> Get(const Key& key) {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = index_.find(key);
    if (it == index_.end()) {
      ++misses_;
      return std::nullopt;
    }
    ++hits_;
    order_.splice(order_.begin(), order_, it->second);
    return it->second->second;
  }

  /// Inserts or replaces; the entry becomes most-recent.
  void Put(const Key& key, Value value) {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = index_.find(key);
    if (it != index_.end()) {
      it->second->second = std::move(value);
      order_.splice(order_.begin(), order_, it->second);
      return;
    }
    order_.emplace_front(key, std::move(value));
    index_[key] = order_.begin();
    if (index_.size() > capacity_) {
      index_.erase(order_.back().first);
      order_.pop_back();
    }
  }

  void Clear() {
    std::lock_guard<std::mutex> lock(mu_);
    order_.clear();
    index_.clear();
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return index_.size();
  }

  size_t capacity() const { return capacity_; }

  uint64_t hits() const {
    std::lock_guard<std::mutex> lock(mu_);
    return hits_;
  }

  uint64_t misses() const {
    std::lock_guard<std::mutex> lock(mu_);
    return misses_;
  }

 private:
  using Entry = std::pair<Key, Value>;

  const size_t capacity_;
  mutable std::mutex mu_;
  std::list<Entry> order_;  // most-recent first
  std::map<Key, typename std::list<Entry>::iterator> index_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
};

}  // namespace serve
}  // namespace ems
