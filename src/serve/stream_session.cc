#include "serve/stream_session.h"

#include <optional>
#include <shared_mutex>
#include <utility>

#include "graph/dependency_graph.h"
#include "log/event_log.h"
#include "obs/context.h"
#include "serve/log_cache.h"
#include "serve/service.h"
#include "store/artifact_store.h"
#include "store/hashing.h"
#include "store/snapshot.h"

namespace ems {
namespace serve {

namespace {

// Touches both lazy longest-distance caches so later shared-lock readers
// never race the first (mutable) computation.
void WarmDistanceCaches(const DependencyGraph& g) {
  g.LongestDistancesFromArtificial();
  g.LongestDistancesToArtificial();
}

// The append batch as name vectors: inline traces, or the traces of a
// delta log file parsed with the service's format detection.
Result<std::vector<std::vector<std::string>>> ResolveBatch(
    const AppendRequest& request) {
  if (request.delta.empty()) return request.traces;
  if (!request.traces.empty()) {
    return Status::InvalidArgument(
        "append takes either inline traces or a delta file, not both");
  }
  auto delta_log = LoadEventLog(request.delta, request.format);
  if (!delta_log.ok()) return delta_log.status();
  std::vector<std::vector<std::string>> batch;
  batch.reserve(delta_log->NumTraces());
  for (size_t t = 0; t < delta_log->NumTraces(); ++t) {
    const Trace& trace = delta_log->trace(t);
    std::vector<std::string> names;
    names.reserve(trace.size());
    for (EventId id : trace) names.push_back(delta_log->EventName(id));
    batch.push_back(std::move(names));
  }
  return batch;
}

// Folds both source hashes into the content-hash half of the seed's
// artifact key (ArtifactKey has one content-hash slot; a seed derives
// from two files).
uint64_t PairContentHash(uint64_t hash1, uint64_t hash2) {
  return store::FingerprintBuilder()
      .Add("log1_hash", hash1)
      .Add("log2_hash", hash2)
      .Finish();
}

Status ValidateStreamOptions(const MatchOptions& options) {
  if (options.engine != SimilarityEngine::kExact) {
    return Status::InvalidArgument(
        "streaming sessions require the exact engine");
  }
  if (options.match_composites) {
    return Status::InvalidArgument(
        "streaming sessions do not support composite matching");
  }
  return Status::OK();
}

}  // namespace

uint64_t StreamOptionsFingerprint(const MatchOptions& options) {
  return store::FingerprintBuilder()
      .Add("engine", static_cast<uint64_t>(options.engine))
      .Add("alpha", options.ems.alpha)
      .Add("c", options.ems.c)
      .Add("epsilon", options.ems.epsilon)
      .Add("max_iterations", static_cast<uint64_t>(options.ems.max_iterations))
      .Add("label_measure", static_cast<uint64_t>(options.label_measure))
      .Add("min_edge_frequency", options.min_edge_frequency)
      .Add("selection", static_cast<uint64_t>(options.selection))
      .Add("min_match_similarity", options.min_match_similarity)
      .Add("match_composites", options.match_composites)
      .Finish();
}

/// One live pair. Heap-allocated and never moved: `graph1` borrows
/// `log1`, so the log must stay at a fixed address for the session's
/// lifetime (log1 is assigned before graph1 is emplaced and only mutated
/// through AppendTraces afterwards).
struct StreamSessionManager::Session {
  std::shared_mutex mu;

  std::string canon1;
  std::string canon2;
  std::string format1;
  std::string format2;
  uint64_t base_hash1 = 0;  // on-disk content hashes at session creation
  uint64_t base_hash2 = 0;
  uint64_t options_fingerprint = 0;
  MatchOptions options;

  EventLog log1;
  EventLog log2;
  std::optional<StreamingDependencyGraph> graph1;
  DependencyGraph graph2;

  WarmSeed seed;
  /// False while the seed came from a persisted snapshot and no match has
  /// run over the CURRENT graphs yet — a restart reloads the base files,
  /// which may differ from the appended state the snapshot converged on,
  /// so resume must warm-start with null hints, never assume_unchanged.
  bool seed_matches_current_graphs = false;
  size_t appends = 0;
};

StreamSessionManager::StreamSessionManager(store::ArtifactStore* store,
                                           ObsContext* obs)
    : store_(store), obs_(obs) {}

StreamSessionManager::~StreamSessionManager() = default;

namespace {

std::string SessionKey(const std::string& canon1, const std::string& canon2,
                       const std::string& format1, const std::string& format2,
                       uint64_t options_fingerprint) {
  std::string key = canon1;
  key += '\x1f';
  key += canon2;
  key += '\x1f';
  key += format1;
  key += '\x1f';
  key += format2;
  key += '\x1f';
  key += store::HashHex(options_fingerprint);
  return key;
}

}  // namespace

Result<std::shared_ptr<StreamSessionManager::Session>>
StreamSessionManager::GetOrCreate(const AppendRequest& request, bool* created,
                                  bool* resumed) {
  *created = false;
  *resumed = false;
  const std::string canon1 = CanonicalPath(request.log1);
  const std::string canon2 = CanonicalPath(request.log2);
  const std::string format1 = ResolveLogFormat(request.log1, request.format);
  const std::string format2 = ResolveLogFormat(request.log2, request.format);
  const uint64_t fp = StreamOptionsFingerprint(request.options);
  const std::string key = SessionKey(canon1, canon2, format1, format2, fp);

  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = sessions_.find(key);
    if (it != sessions_.end()) return it->second;
  }

  // Build outside the registry lock: parsing and graph construction are
  // expensive and must not stall unrelated sessions.
  auto session = std::make_shared<Session>();
  session->canon1 = canon1;
  session->canon2 = canon2;
  session->format1 = format1;
  session->format2 = format2;
  session->options = request.options;
  session->options.obs = ObsOptions{};  // per-job contexts attach per call
  session->options_fingerprint = fp;

  auto log1 = LoadEventLogThroughStore(store_, request.log1, request.format,
                                       &session->base_hash1);
  if (!log1.ok()) return log1.status();
  auto log2 = LoadEventLogThroughStore(store_, request.log2, request.format,
                                       &session->base_hash2);
  if (!log2.ok()) return log2.status();
  // Storeless services skip the snapshot layer (and its hashing), but
  // the base hashes still anchor TryMatch's disk-divergence check.
  if (store_ == nullptr) {
    auto hash1 = store::HashFile(request.log1);
    auto hash2 = store::HashFile(request.log2);
    if (!hash1.ok()) return hash1.status();
    if (!hash2.ok()) return hash2.status();
    session->base_hash1 = *hash1;
    session->base_hash2 = *hash2;
  }
  session->log1 = std::move(*log1);
  session->log2 = std::move(*log2);

  DependencyGraphOptions graph_options;
  graph_options.min_edge_frequency = request.options.min_edge_frequency;
  session->graph1.emplace(session->log1, graph_options);
  session->graph2 = DependencyGraph::Build(session->log2, graph_options);
  WarmDistanceCaches(session->graph1->graph());
  WarmDistanceCaches(session->graph2);

  if (store_ != nullptr) {
    store::ArtifactKey seed_key{
        store::ArtifactKind::kSimilarityMatrix,
        PairContentHash(session->base_hash1, session->base_hash2), fp};
    if (auto snapshot = store_->Load(seed_key)) {
      auto seed = store::DecodeWarmSeed(*snapshot);
      // The snapshot may have converged on an appended log whose
      // vocabulary outgrew the base file reloaded here; any-seed
      // warm-start is sound only over matching dimensions.
      if (seed.ok() &&
          seed->forward.rows() == session->graph1->graph().NumNodes() &&
          seed->forward.cols() == session->graph2.NumNodes()) {
        session->seed = std::move(*seed);
        session->seed_matches_current_graphs = false;
        *resumed = true;
        ObsIncrement(obs_, "stream.seed_resumes");
      }
    }
  }

  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = sessions_.emplace(key, session);
  if (!inserted) return it->second;  // lost a creation race; theirs wins
  *created = true;
  ObsSetGauge(obs_, "stream.sessions", static_cast<double>(sessions_.size()));
  return session;
}

Result<StreamAppendOutcome> StreamSessionManager::Append(
    const AppendRequest& request, ObsContext* job_obs) {
  Status valid = ValidateStreamOptions(request.options);
  if (!valid.ok()) return valid;
  auto batch = ResolveBatch(request);
  if (!batch.ok()) return batch.status();

  bool created = false;
  bool resumed = false;
  auto session_or = GetOrCreate(request, &created, &resumed);
  if (!session_or.ok()) return session_or.status();
  Session& session = **session_or;

  std::unique_lock<std::shared_mutex> lock(session.mu);

  const AppendDelta delta = session.log1.AppendTraces(*batch);
  StreamingGraphStats graph_stats;
  if (delta.appended_traces > 0) {
    graph_stats = session.graph1->ApplyAppend(delta.first_new_trace);
    WarmDistanceCaches(session.graph1->graph());
  }

  // assume_unchanged needs the seed's graphs bit-identical to the current
  // ones: a live in-memory seed with an empty batch qualifies; a seed
  // resumed from a snapshot does not until one match re-converges it.
  const bool assume_unchanged = session.seed.valid &&
                                session.seed_matches_current_graphs &&
                                delta.appended_traces == 0;

  MatchOptions match_options = session.options;
  match_options.obs.context = job_obs;
  StreamAppendOutcome outcome;
  auto match = MatchWithGraphsWarm(
      match_options, session.log1, session.log2, session.graph1->graph(),
      session.graph2, session.seed.valid ? &session.seed : nullptr,
      assume_unchanged, &session.seed, &outcome.match_stats);
  if (!match.ok()) return match.status();
  session.seed_matches_current_graphs = true;
  session.appends += 1;
  PersistSeed(session);

  outcome.match = std::move(*match);
  outcome.graph_stats = graph_stats;
  outcome.new_events = delta.new_events;
  outcome.total_traces = session.log1.NumTraces();
  outcome.session_created = created;
  outcome.resumed_from_store = resumed;
  outcome.log_snapshot = session.log1;
  lock.unlock();

  ObsIncrement(obs_, "stream.appends");
  ObsIncrement(obs_, "stream.appended_traces", delta.appended_traces);
  ObsIncrement(obs_, "stream.new_nodes", graph_stats.new_nodes);
  ObsIncrement(obs_, "stream.delta_edges",
               graph_stats.added_edges + graph_stats.removed_edges);
  ObsIncrement(obs_, "stream.distance_rows_invalidated",
               graph_stats.distance_rows_invalidated);
  if (outcome.match_stats.warm) {
    ObsIncrement(obs_, "stream.warm_matches");
    ObsIncrement(obs_, "stream.warm_iterations",
                 static_cast<uint64_t>(outcome.match_stats.iterations));
    ObsIncrement(obs_, "stream.iterations_saved",
                 static_cast<uint64_t>(outcome.match_stats.iterations_saved));
  }
  return outcome;
}

std::optional<Result<StreamMatchOutcome>> StreamSessionManager::TryMatch(
    const JobRequest& request, ObsContext* job_obs) {
  if (!ValidateStreamOptions(request.options).ok()) return std::nullopt;
  const std::string canon1 = CanonicalPath(request.log1);
  const std::string canon2 = CanonicalPath(request.log2);
  const std::string key = SessionKey(
      canon1, canon2, ResolveLogFormat(request.log1, request.format),
      ResolveLogFormat(request.log2, request.format),
      StreamOptionsFingerprint(request.options));

  std::shared_ptr<Session> session;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = sessions_.find(key);
    if (it == sessions_.end()) return std::nullopt;
    session = it->second;
  }

  // A backing file rewritten since session start means the disk state
  // diverged from the stream; the session's appends are stale relative
  // to it, so the session is dropped and the normal cache path (which
  // hashes and re-parses the file) serves the job.
  auto hash1 = store::HashFile(request.log1);
  auto hash2 = store::HashFile(request.log2);
  if (!hash1.ok() || !hash2.ok() || *hash1 != session->base_hash1 ||
      *hash2 != session->base_hash2) {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = sessions_.find(key);
    if (it != sessions_.end() && it->second == session) {
      sessions_.erase(it);
      ObsIncrement(obs_, "stream.sessions_invalidated");
      ObsSetGauge(obs_, "stream.sessions",
                  static_cast<double>(sessions_.size()));
    }
    return std::nullopt;
  }

  std::shared_lock<std::shared_mutex> lock(session->mu);
  if (!session->seed.valid || !session->seed_matches_current_graphs) {
    return std::nullopt;
  }

  // The session's in-memory appended log is authoritative over the
  // on-disk file, which never sees the appended traces: serving from the
  // session (one all-clean warm iteration, byte-identical to the last
  // fixpoint) is what fixes the append-then-match stale-parse bug.
  MatchOptions match_options = session->options;
  match_options.obs.context = job_obs;
  StreamMatchOutcome outcome;
  auto match = MatchWithGraphsWarm(
      match_options, session->log1, session->log2, session->graph1->graph(),
      session->graph2, &session->seed, /*assume_unchanged=*/true,
      /*next_seed=*/nullptr, &outcome.match_stats);
  if (!match.ok()) return Result<StreamMatchOutcome>(match.status());
  outcome.match = std::move(*match);
  lock.unlock();

  ObsIncrement(obs_, "stream.session_matches");
  return Result<StreamMatchOutcome>(std::move(outcome));
}

size_t StreamSessionManager::live_sessions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sessions_.size();
}

void StreamSessionManager::PersistSeed(const Session& session) {
  if (store_ == nullptr || !session.seed.valid) return;
  store::ArtifactKey key{
      store::ArtifactKind::kSimilarityMatrix,
      PairContentHash(session.base_hash1, session.base_hash2),
      session.options_fingerprint};
  store_->Store(key, store::EncodeWarmSeed(session.seed));
}

}  // namespace serve
}  // namespace ems
