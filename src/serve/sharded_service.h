// Sharded matching service: the router that turns N independent
// BatchMatchService workers into one deployment (docs/SERVING.md). Jobs
// arrive as the same NDJSON lines the single-process service speaks;
// the router consistent-hashes the canonical path of each job's first
// log onto a shard (net::HashRing, so resizing N remaps only ~1/N of
// keys and per-shard caches stay warm), applies admission control at
// the boundary — a bounded per-shard inflight budget on top of each
// shard pool's bounded queue, with explicit `overloaded` rejections
// instead of unbounded buffering — and hands admitted jobs to the
// shard's own ThreadPool / LogCache / ArtifactStore slice.
//
// Each shard is a full BatchMatchService: its own pool, its own parsed-
// log LRU, its own artifact-store directory (`<cache_dir>/shard-<i>`),
// its own flight recorder. All shards report into one shared ObsContext
// so serve.* totals aggregate, and the router adds per-shard
// serve.shard.<i>.* instruments for balance monitoring.
//
// Top-k corpus queries (the `query`-keyed lines of docs/CORPUS.md) fan
// out instead of routing to one shard: the router partitions the member
// list by each member's consistent-hash owner, reserves admission on
// every involved shard (all-or-nothing, with rollback), runs one
// sub-query per shard over its member subset, and merges the per-shard
// top-k lists by (score desc, global member order) — scores travel as
// exact IEEE-754 bit strings, so the merged ranking is the ranking the
// single-process service would have produced over the whole corpus.
//
// Admin commands (stats/health/slow) answer inline with aggregated
// documents plus a "shards" breakdown; the new `drain` command (and
// SIGTERM in ems_serve) flips the router into draining mode: every
// subsequent job line is rejected with status "draining" (still
// answered), admitted jobs run to completion, and WaitDrained() returns
// once the last one finished.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "net/hash_ring.h"
#include "net/tcp_server.h"
#include "obs/metrics_snapshot.h"
#include "serve/service.h"
#include "util/timer.h"

namespace ems {
namespace serve {

/// Sharded deployment configuration.
struct ShardedServiceOptions {
  /// Worker shards. Each owns a disjoint slice of the log corpus.
  int num_shards = 4;

  /// Ring points per shard (net::HashRingOptions).
  int vnodes_per_shard = 64;

  /// Total worker threads across all shards; 0 = hardware concurrency.
  /// Each shard gets max(1, total / num_shards).
  int total_threads = 0;

  /// Bounded task-queue capacity of each shard's pool.
  size_t shard_queue_capacity = 64;

  /// Admission cap: jobs admitted (queued or running) per shard. Beyond
  /// it the router sheds with an `overloaded` response. 0 derives
  /// threads-per-shard + shard_queue_capacity.
  size_t max_inflight_per_shard = 0;

  /// Per-shard parsed-log LRU capacity / byte budget (serve::LogCache).
  size_t cache_capacity = 64;
  size_t cache_byte_budget = 0;

  /// Artifact-store root; shard i persists under `<dir>/shard-<i>` so
  /// consistent placement keeps disk caches shard-local. Empty disables.
  std::string cache_dir;
  uint64_t cache_dir_bytes = 0;

  /// Shared metrics/trace sink (borrowed). Null + telemetry=true makes
  /// the router own one, shared by every shard.
  ObsContext* obs = nullptr;
  bool telemetry = true;

  /// Per-shard flight-recorder retention.
  size_t flight_slow_capacity = 16;
  size_t flight_failed_capacity = 16;
};

/// \brief Consistent-hash router over N in-process worker shards.
///
/// Implements net::LineHandler, so a net::TcpServer can plug it in
/// directly; HandleLineSync serves tests and non-network callers.
class ShardedMatchService : public net::LineHandler {
 public:
  explicit ShardedMatchService(const ShardedServiceOptions& options);
  ~ShardedMatchService() override;

  ShardedMatchService(const ShardedMatchService&) = delete;
  ShardedMatchService& operator=(const ShardedMatchService&) = delete;

  /// Routes one request line. `emit` fires exactly once: inline for
  /// admin commands, rejections, and malformed lines; from the owning
  /// shard's pool for admitted jobs.
  void HandleLine(const std::string& line, net::EmitFn emit) override;

  /// Blocking convenience: HandleLine and return the response.
  std::string HandleLineSync(const std::string& line);

  /// The shard owning `path` (canonicalized internally, same derivation
  /// as routing: consistent hash of the canonical path of log1).
  int ShardForPath(const std::string& path) const;

  int num_shards() const { return ring_.num_shards(); }

  /// The effective shared telemetry context (owned or borrowed).
  ObsContext* obs() { return options_.obs; }

  /// Shard i's underlying service (tests, bench balance checks).
  BatchMatchService& shard_service(int i);

  /// Jobs admitted to shard i and not yet completed.
  int64_t shard_inflight(int i) const;

  /// Stops admitting match jobs: subsequent job lines answer with
  /// status "draining". Idempotent. Also invoked by the `drain` admin
  /// command, which additionally fires the drain-request callback.
  void Drain();

  /// Blocks until every admitted job has completed (and was emitted).
  void WaitDrained();

  bool draining() const {
    return draining_.load(std::memory_order_acquire);
  }

  /// Hook fired (once) when a `drain` admin command arrives — ems_serve
  /// wires this to TcpServer::RequestDrain so the transport stops
  /// accepting while the router stops admitting.
  void SetDrainRequestCallback(std::function<void()> callback) {
    drain_callback_ = std::move(callback);
  }

 private:
  struct Shard;
  struct TopKAggregate;

  void EmitJobResponse(Shard& shard, const std::string& line,
                       const net::EmitFn& emit);
  void HandleTopK(const std::string& line, const net::EmitFn& emit);
  void FinishShardJob(Shard& shard);
  std::string MergeTopKResponses(const TopKAggregate& aggregate) const;
  std::string HandleAdmin(const std::string& cmd, const std::string& id);
  std::string RenderStats(const std::string& id);
  std::string RenderHealth(const std::string& id);
  std::string RenderSlow(const std::string& id);
  std::string RenderDrainAck(const std::string& id);

  std::unique_ptr<ObsContext> owned_obs_;  // before options_
  ShardedServiceOptions options_;
  net::HashRing ring_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::function<void()> drain_callback_;
  std::atomic<bool> draining_{false};
  std::atomic<bool> drain_callback_fired_{false};
  Timer uptime_;

  // Drain rendezvous: completions notify, WaitDrained waits for the
  // admitted-job count to reach zero.
  mutable std::mutex drain_mu_;
  std::condition_variable drain_cv_;

  // Interval rates for the aggregated stats command, as in the single
  // service.
  std::mutex stats_mu_;
  MetricsSnapshot last_stats_;
  bool has_last_stats_ = false;
};

}  // namespace serve
}  // namespace ems
