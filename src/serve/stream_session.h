// Streaming ingestion sessions for the batch matching service: one
// session per (log pair, options) holds the appended-to event log, the
// incrementally maintained dependency graph, and the warm-start seed of
// the last EMS fixpoint. An {"cmd": "append"} wire request folds a batch
// of traces into the session and warm re-matches in a fraction of the
// cold iteration count (docs/STREAMING.md).
//
// Sessions are also the authority for plain match jobs over a pair they
// cover: after an append, the file on disk is stale relative to the
// session, so the service consults TryMatch BEFORE the parsed-log cache
// — the append-then-match stale-parse regression test pins this order.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "core/matcher.h"
#include "core/warm_match.h"
#include "graph/streaming_graph.h"
#include "log/event_log.h"
#include "util/status.h"

namespace ems {

struct ObsContext;

namespace store {
class ArtifactStore;
}  // namespace store

namespace serve {

struct JobRequest;

/// One parsed {"cmd": "append"} line. Exactly one of `traces` (inline
/// batch: an array of arrays of event names) or `delta` (a log file in
/// any supported format, appended trace by trace) provides the batch;
/// an empty batch is allowed and resumes/creates the session without
/// changing it.
struct AppendRequest {
  std::string id;
  std::string log1;  // the log the batch appends to (session routing key)
  std::string log2;
  std::string format = "auto";
  std::vector<std::vector<std::string>> traces;
  std::string delta;
  MatchOptions options;
};

/// Everything one append produced — the response material.
struct StreamAppendOutcome {
  MatchResult match;
  WarmMatchStats match_stats;
  StreamingGraphStats graph_stats;
  size_t new_events = 0;
  size_t total_traces = 0;  // traces in the session log after the batch
  bool session_created = false;
  bool resumed_from_store = false;  // seed loaded from a persisted snapshot

  /// Copy of the session's log1 after the batch — what downstream caches
  /// (the service's corpus indexes) refresh their member state from,
  /// taken under the session lock so it is a consistent snapshot.
  EventLog log_snapshot;
};

/// A match served from a live session (byte-identical to the session's
/// last fixpoint, one warm iteration).
struct StreamMatchOutcome {
  MatchResult match;
  WarmMatchStats match_stats;
};

/// Fingerprint of every MatchOptions field that affects a session's
/// graphs, similarity, or selection — part of the session key and of the
/// persisted seed's artifact key.
uint64_t StreamOptionsFingerprint(const MatchOptions& options);

/// \brief Registry of live streaming sessions.
///
/// Thread-safe: the registry map has its own mutex; each session carries
/// a shared_mutex (appends exclusive — they mutate log, graph, and seed
/// and re-match inside the lock; session-served matches shared). Both
/// `store` and `obs` are borrowed and may be null: without a store,
/// seeds live only in memory and restarts resume cold.
class StreamSessionManager {
 public:
  StreamSessionManager(store::ArtifactStore* store, ObsContext* obs);
  ~StreamSessionManager();

  /// Folds one append batch into the pair's session (creating it from
  /// the on-disk files — through the artifact store when available — on
  /// first touch) and warm re-matches. Requires the exact engine and no
  /// composites. `job_obs` (may be null) receives the match's span tree.
  Result<StreamAppendOutcome> Append(const AppendRequest& request,
                                     ObsContext* job_obs);

  /// Serves a match from a live session when one covers the request's
  /// pair with the same options and the backing files are unchanged on
  /// disk since session start; nullopt sends the caller down the normal
  /// cache path. A session whose backing file WAS rewritten on disk is
  /// dropped here (the disk state wins over lost in-memory appends).
  std::optional<Result<StreamMatchOutcome>> TryMatch(
      const JobRequest& request, ObsContext* job_obs);

  size_t live_sessions() const;

 private:
  struct Session;

  Result<std::shared_ptr<Session>> GetOrCreate(const AppendRequest& request,
                                               bool* created, bool* resumed);
  void PersistSeed(const Session& session);

  mutable std::mutex mu_;
  std::map<std::string, std::shared_ptr<Session>> sessions_;
  store::ArtifactStore* store_;
  ObsContext* obs_;
};

}  // namespace serve
}  // namespace ems
