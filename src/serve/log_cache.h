// LRU repository of parsed event logs keyed by canonical path + format —
// the cache in front of the batch matching service. Bulk workloads
// (Khan et al.'s reproducibility sweeps, warehouse scans) match the same
// logs against many partners; parsing each log once per batch instead of
// once per job is the difference between I/O-bound and CPU-bound.
#pragma once

#include <memory>
#include <string>

#include "log/event_log.h"
#include "serve/lru_cache.h"
#include "util/status.h"

namespace ems {

struct ObsContext;

namespace serve {

/// \brief Thread-safe load-through cache of parsed event logs.
///
/// Keys are `canonical_path|format`, where the canonical path resolves
/// symlinks and relative segments (realpath) so two spellings of one
/// file share an entry. Values are shared_ptr<const EventLog>: eviction
/// never invalidates a log a running job still holds.
class LogCache {
 public:
  /// `obs` (borrowed, may be null) receives serve.cache.{hits,misses}.
  explicit LogCache(size_t capacity, ObsContext* obs = nullptr);

  /// The parsed log for `path`, loading and caching it on a miss.
  /// `format` is auto|trace|csv|xes|mxml, as in the CLI tools; "auto"
  /// detects from the extension.
  Result<std::shared_ptr<const EventLog>> GetOrLoad(const std::string& path,
                                                    const std::string& format);

  uint64_t hits() const { return cache_.hits(); }
  uint64_t misses() const { return cache_.misses(); }
  size_t size() const { return cache_.size(); }

 private:
  LruCache<std::string, std::shared_ptr<const EventLog>> cache_;
  ObsContext* obs_;
};

/// Loads one event log with the CLI tools' format auto-detection.
Result<EventLog> LoadEventLog(const std::string& path,
                              const std::string& format);

/// Resolves symlinks/relative segments; the input path when resolution
/// fails (e.g. the file does not exist yet — the load will report that).
std::string CanonicalPath(const std::string& path);

}  // namespace serve
}  // namespace ems
