// LRU repository of parsed event logs — the cache in front of the batch
// matching service. Bulk workloads (Khan et al.'s reproducibility
// sweeps, warehouse scans) match the same logs against many partners;
// parsing each log once per batch instead of once per job is the
// difference between I/O-bound and CPU-bound.
//
// Keys include the file's content hash, so a log rewritten between jobs
// is re-parsed, never served stale. With an artifact store attached the
// cache is two-level: a memory miss first consults the on-disk snapshot
// store (docs/PERSISTENCE.md) and only re-parses the source format when
// the store misses too — which is what makes a restarted ems_serve warm.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "log/event_log.h"
#include "serve/lru_cache.h"
#include "util/status.h"

namespace ems {

struct ObsContext;

namespace store {
class ArtifactStore;
}  // namespace store

namespace serve {

/// \brief Thread-safe two-level load-through cache of parsed event logs.
///
/// Keys are `canonical_path|format|content_hash`: the canonical path
/// resolves symlinks and relative segments (realpath) so two spellings
/// of one file share an entry, and the XXH64 content hash makes a
/// rewritten file a different key — hashing re-reads the file on every
/// lookup, which is cheap next to parsing and is exactly what keeps the
/// cache coherent without invalidation messages. Values are
/// shared_ptr<const EventLog>: eviction never invalidates a log a
/// running job still holds.
class LogCache {
 public:
  /// `obs` (borrowed, may be null) receives serve.cache.{hits,misses}
  /// and the serve.cache_bytes gauge. `store` (borrowed, may be null)
  /// is the on-disk snapshot layer consulted between memory and source.
  /// `max_cost_bytes` bounds resident logs by estimated snapshot size;
  /// 0 keeps the entry-count bound alone (the default mode).
  explicit LogCache(size_t capacity, ObsContext* obs = nullptr,
                    store::ArtifactStore* store = nullptr,
                    uint64_t max_cost_bytes = 0);

  /// The parsed log for `path`, loading and caching it on a miss.
  /// `format` is auto|trace|csv|xes|mxml, as in the CLI tools; "auto"
  /// detects from the extension.
  Result<std::shared_ptr<const EventLog>> GetOrLoad(const std::string& path,
                                                    const std::string& format);

  uint64_t hits() const { return cache_.hits(); }
  uint64_t misses() const { return cache_.misses(); }
  size_t size() const { return cache_.size(); }
  uint64_t cost_bytes() const { return cache_.cost_bytes(); }

 private:
  LruCache<std::string, std::shared_ptr<const EventLog>> cache_;
  ObsContext* obs_;
  store::ArtifactStore* store_;
};

/// The concrete format name ("trace", "csv", "xes", "mxml") that `format`
/// resolves to for `path`; "auto"/"" detect from the extension. Unknown
/// explicit formats pass through and fail in LoadEventLog.
std::string ResolveLogFormat(const std::string& path,
                             const std::string& format);

/// Loads one event log with the CLI tools' format auto-detection.
Result<EventLog> LoadEventLog(const std::string& path,
                              const std::string& format);

/// Loads `path` through `store` when non-null: on a store hit the log
/// decodes from its snapshot without touching the source parser; on a
/// miss it parses from source and writes the snapshot back. With a null
/// store this is LoadEventLog. `content_hash_out` (optional) receives
/// the source file's XXH64.
Result<EventLog> LoadEventLogThroughStore(store::ArtifactStore* store,
                                          const std::string& path,
                                          const std::string& format,
                                          uint64_t* content_hash_out = nullptr);

/// Resolves symlinks/relative segments; the input path when resolution
/// fails (e.g. the file does not exist yet — the load will report that).
std::string CanonicalPath(const std::string& path);

}  // namespace serve
}  // namespace ems
