#include "serve/sharded_service.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <future>
#include <map>
#include <unordered_map>
#include <utility>

#include "index/corpus_io.h"
#include "obs/context.h"
#include "serve/log_cache.h"
#include "util/json_parser.h"
#include "util/json_writer.h"
#include "util/log.h"

namespace ems {
namespace serve {

namespace {

// Admin command of a parsed line, or empty when it is a match job.
std::string AdminCommandOf(const JsonValue& doc) {
  return doc.is_object() ? doc.GetString("cmd", "") : "";
}

std::string RenderError(const std::string& id, const Status& status) {
  JsonWriter w;
  w.BeginObject();
  w.Key("id");
  w.String(id);
  w.Key("status");
  w.String("error");
  w.Key("code");
  w.String(StatusCodeToString(status.code()));
  w.Key("error");
  w.String(status.message());
  w.EndObject();
  return w.str();
}

// The per-job option keys a topk sub-request must carry verbatim so
// every shard parses the same MatchOptions the single service would.
constexpr const char* kTopKOptionKeys[] = {
    "labels",    "alpha",          "c",
    "engine",    "iterations",     "composites",
    "delta",     "selection",      "min_similarity",
    "min_edge_frequency"};

std::string SubRequestLine(const JsonValue& doc, const TopKRequest& request,
                           const std::vector<std::string>& members) {
  JsonWriter w;
  w.BeginObject();
  w.Key("id");
  w.String(request.id);
  w.Key("query");
  w.String(request.query);
  w.Key("topk");
  w.Int(static_cast<long long>(request.k));
  w.Key("format");
  w.String(request.format);
  w.Key("brute_force");
  w.Bool(request.brute_force);
  w.Key("members");
  w.BeginArray();
  for (const std::string& m : members) w.String(m);
  w.EndArray();
  for (const char* key : kTopKOptionKeys) {
    const JsonValue* value = doc.Find(key);
    if (value == nullptr) continue;
    w.Key(key);
    if (value->is_string()) {
      w.String(value->string_value());
    } else if (value->is_number()) {
      w.Number(value->number_value());
    } else if (value->is_bool()) {
      w.Bool(value->bool_value());
    } else {
      w.Null();  // preserved for the shard's parser to reject uniformly
    }
  }
  w.EndObject();
  return w.str();
}

double ScoreFromBits(const std::string& hex) {
  const unsigned long long bits = std::strtoull(hex.c_str(), nullptr, 16);
  double score = 0.0;
  std::memcpy(&score, &bits, sizeof(score));
  return score;
}

}  // namespace

// One worker shard: a full BatchMatchService slice plus the router-side
// admission state and pre-resolved per-shard instruments.
struct ShardedMatchService::Shard {
  int index = 0;
  std::unique_ptr<BatchMatchService> service;
  std::atomic<int64_t> inflight{0};
  size_t max_inflight = 0;

  // serve.shard.<i>.* instruments; null when telemetry is off.
  Counter* routed = nullptr;
  Counter* rejected_overloaded = nullptr;
  Counter* rejected_draining = nullptr;
  Gauge* inflight_gauge = nullptr;
  Gauge* queue_depth_gauge = nullptr;
};

ShardedMatchService::ShardedMatchService(const ShardedServiceOptions& options)
    : owned_obs_(options.obs == nullptr && options.telemetry
                     ? std::make_unique<ObsContext>()
                     : nullptr),
      options_([&] {
        ShardedServiceOptions effective = options;
        if (effective.num_shards < 1) effective.num_shards = 1;
        if (effective.obs == nullptr) effective.obs = owned_obs_.get();
        return effective;
      }()),
      ring_(net::HashRingOptions{options_.num_shards,
                                 options_.vnodes_per_shard}) {
  const int total =
      exec::ThreadPool::EffectiveThreads(options_.total_threads);
  const int per_shard = std::max(1, total / options_.num_shards);
  shards_.reserve(static_cast<size_t>(options_.num_shards));
  for (int i = 0; i < options_.num_shards; ++i) {
    auto shard = std::make_unique<Shard>();
    shard->index = i;

    ServiceOptions shard_options;
    shard_options.threads = per_shard;
    shard_options.queue_capacity = options_.shard_queue_capacity;
    shard_options.cache_capacity = options_.cache_capacity;
    shard_options.cache_byte_budget = options_.cache_byte_budget;
    if (!options_.cache_dir.empty()) {
      // Consistent placement makes disk caches shard-local: the keys a
      // shard serves are the keys whose snapshots live in its directory,
      // and a resize only re-derives the ~1/N that actually moved.
      shard_options.cache_dir =
          options_.cache_dir + "/shard-" + std::to_string(i);
    }
    shard_options.cache_dir_bytes = options_.cache_dir_bytes;
    shard_options.obs = options_.obs;  // shared: serve.* totals aggregate
    shard_options.telemetry = options_.telemetry;
    shard_options.flight_slow_capacity = options_.flight_slow_capacity;
    shard_options.flight_failed_capacity = options_.flight_failed_capacity;
    shard->service = std::make_unique<BatchMatchService>(shard_options);

    shard->max_inflight =
        options_.max_inflight_per_shard != 0
            ? options_.max_inflight_per_shard
            : options_.shard_queue_capacity + static_cast<size_t>(per_shard);
    if (options_.obs != nullptr) {
      MetricsRegistry& metrics = options_.obs->metrics;
      shard->routed =
          metrics.GetCounter(ShardMetricName("serve.shard", i, "routed"));
      shard->rejected_overloaded = metrics.GetCounter(
          ShardMetricName("serve.shard", i, "rejected_overloaded"));
      shard->rejected_draining = metrics.GetCounter(
          ShardMetricName("serve.shard", i, "rejected_draining"));
      shard->inflight_gauge =
          metrics.GetGauge(ShardMetricName("serve.shard", i, "inflight"));
      shard->queue_depth_gauge =
          metrics.GetGauge(ShardMetricName("serve.shard", i, "queue_depth"));
    }
    shards_.push_back(std::move(shard));
  }
}

ShardedMatchService::~ShardedMatchService() {
  Drain();
  WaitDrained();
}

BatchMatchService& ShardedMatchService::shard_service(int i) {
  return *shards_[static_cast<size_t>(i)]->service;
}

int64_t ShardedMatchService::shard_inflight(int i) const {
  return shards_[static_cast<size_t>(i)]->inflight.load(
      std::memory_order_relaxed);
}

int ShardedMatchService::ShardForPath(const std::string& path) const {
  return ring_.ShardFor(CanonicalPath(path));
}

void ShardedMatchService::HandleLine(const std::string& line,
                                     net::EmitFn emit) {
  Result<JsonValue> doc = ParseJson(line);
  if (!doc.ok()) {
    // Unroutable bytes: answered inline through shard 0's renderer so
    // malformed input gets the same error shape as the single service.
    ObsIncrement(options_.obs, "net.protocol_errors");
    emit(shards_[0]->service->HandleJobLine(line));
    return;
  }
  // Append lines are jobs, not admin probes: they carry log1/log2, so
  // they fall through to ParseJobRequest below and route to the shard
  // owning log1 — the same shard every match for that pair routes to,
  // which is what keeps each streaming session on exactly one shard.
  const std::string cmd = AdminCommandOf(*doc);
  if (!cmd.empty() && cmd != "append") {
    emit(HandleAdmin(cmd, doc->GetString("id", "")));
    return;
  }
  if (IsTopKRequest(*doc)) {
    HandleTopK(line, emit);
    return;
  }

  Result<JobRequest> request = ParseJobRequest(line);
  if (!request.ok()) {
    // Parseable but invalid (missing logs, bad options): no routing key,
    // answered inline with the single service's error rendering.
    emit(shards_[0]->service->HandleJobLine(line));
    return;
  }

  Shard& shard = *shards_[ring_.ShardFor(CanonicalPath(request->log1))];
  if (shard.routed != nullptr) shard.routed->Increment();

  if (draining()) {
    if (shard.rejected_draining != nullptr) {
      shard.rejected_draining->Increment();
    }
    ObsIncrement(options_.obs, "net.jobs_rejected_draining");
    JsonWriter w;
    w.BeginObject();
    w.Key("id");
    w.String(request->id);
    w.Key("status");
    w.String("draining");
    w.Key("shard");
    w.Int(shard.index);
    w.Key("error");
    w.String("service is draining; resubmit elsewhere");
    w.EndObject();
    emit(w.str());
    return;
  }

  // Admission control at the network boundary: a bounded inflight budget
  // per shard, shedding with an explicit response instead of buffering.
  const int64_t admitted =
      shard.inflight.fetch_add(1, std::memory_order_acq_rel) + 1;
  bool accepted = admitted <= static_cast<int64_t>(shard.max_inflight);
  if (accepted) {
    const std::string job_line = line;
    net::EmitFn job_emit = emit;
    accepted = shard.service->pool().TrySubmit(
        [this, &shard, job_line, job_emit] {
          EmitJobResponse(shard, job_line, job_emit);
        });
  }
  if (!accepted) {
    shard.inflight.fetch_sub(1, std::memory_order_acq_rel);
    if (shard.rejected_overloaded != nullptr) {
      shard.rejected_overloaded->Increment();
    }
    ObsIncrement(options_.obs, "net.jobs_rejected_overloaded");
    JsonWriter w;
    w.BeginObject();
    w.Key("id");
    w.String(request->id);
    w.Key("status");
    w.String("overloaded");
    w.Key("shard");
    w.Int(shard.index);
    w.Key("error");
    w.String("shard " + std::to_string(shard.index) +
             " at admission capacity (" +
             std::to_string(shard.max_inflight) + " jobs in flight)");
    w.EndObject();
    emit(w.str());
    return;
  }
  if (shard.inflight_gauge != nullptr) {
    shard.inflight_gauge->Set(static_cast<double>(admitted));
  }
  if (shard.queue_depth_gauge != nullptr) {
    shard.queue_depth_gauge->Set(
        static_cast<double>(shard.service->pool().QueueDepth()));
  }
}

void ShardedMatchService::EmitJobResponse(Shard& shard,
                                          const std::string& line,
                                          const net::EmitFn& emit) {
  emit(shard.service->HandleJobLine(line));
  FinishShardJob(shard);
}

void ShardedMatchService::FinishShardJob(Shard& shard) {
  const int64_t now =
      shard.inflight.fetch_sub(1, std::memory_order_acq_rel) - 1;
  if (shard.inflight_gauge != nullptr) {
    shard.inflight_gauge->Set(static_cast<double>(now));
  }
  if (shard.queue_depth_gauge != nullptr) {
    shard.queue_depth_gauge->Set(
        static_cast<double>(shard.service->pool().QueueDepth()));
  }
  // Publish the decrement under the drain mutex so WaitDrained's
  // predicate re-check cannot miss the final completion.
  {
    std::lock_guard<std::mutex> lock(drain_mu_);
  }
  drain_cv_.notify_all();
}

// Shared state of one fanned-out top-k query: per-shard responses land
// in their slot; the last completion merges and emits.
struct ShardedMatchService::TopKAggregate {
  std::mutex mu;
  size_t remaining = 0;
  std::vector<std::string> responses;  // one slot per involved shard
  std::string id;
  size_t k = 5;
  size_t shards_involved = 0;
  // Member path -> position in the resolved full member list: the merge
  // tie-breaker that reproduces the single service's index order.
  std::unordered_map<std::string, size_t> global_index;
  net::EmitFn emit;
  Timer timer;
};

void ShardedMatchService::HandleTopK(const std::string& line,
                                     const net::EmitFn& emit) {
  Result<TopKRequest> request = ParseTopKRequest(line);
  if (!request.ok()) {
    // Parseable but invalid: answered inline with the single service's
    // error rendering.
    emit(shards_[0]->service->HandleJobLine(line));
    return;
  }
  Result<JsonValue> doc = ParseJson(line);  // for verbatim option relay
  if (!doc.ok()) {
    emit(RenderError(request->id, doc.status()));
    return;
  }

  // Resolve the full member list router-side: both the partition and the
  // merge tie-break need the same order the single service would use.
  std::vector<std::string> members = request->members;
  if (!request->corpus.empty()) {
    Result<std::vector<std::string>> listed =
        index::ListCorpusFiles(request->corpus);
    if (!listed.ok()) {
      emit(RenderError(request->id, listed.status()));
      return;
    }
    members = *std::move(listed);
  }

  if (draining()) {
    ObsIncrement(options_.obs, "net.jobs_rejected_draining");
    JsonWriter w;
    w.BeginObject();
    w.Key("id");
    w.String(request->id);
    w.Key("status");
    w.String("draining");
    w.Key("error");
    w.String("service is draining; resubmit elsewhere");
    w.EndObject();
    emit(w.str());
    return;
  }

  std::vector<std::vector<std::string>> shard_members(shards_.size());
  auto aggregate = std::make_shared<TopKAggregate>();
  aggregate->id = request->id;
  aggregate->k = request->k;
  aggregate->emit = emit;
  for (size_t g = 0; g < members.size(); ++g) {
    aggregate->global_index.emplace(members[g], g);
    const int s = ring_.ShardFor(CanonicalPath(members[g]));
    shard_members[static_cast<size_t>(s)].push_back(members[g]);
  }
  std::vector<int> involved;
  for (size_t s = 0; s < shards_.size(); ++s) {
    if (!shard_members[s].empty()) involved.push_back(static_cast<int>(s));
  }

  // All-or-nothing admission: reserve an inflight slot on every involved
  // shard, rolling back on the first full one — a partially admitted
  // fan-out would hold slots while unable to answer.
  for (size_t i = 0; i < involved.size(); ++i) {
    Shard& shard = *shards_[static_cast<size_t>(involved[i])];
    if (shard.routed != nullptr) shard.routed->Increment();
    const int64_t admitted =
        shard.inflight.fetch_add(1, std::memory_order_acq_rel) + 1;
    if (admitted <= static_cast<int64_t>(shard.max_inflight)) continue;
    shard.inflight.fetch_sub(1, std::memory_order_acq_rel);
    for (size_t j = 0; j < i; ++j) {
      shards_[static_cast<size_t>(involved[j])]->inflight.fetch_sub(
          1, std::memory_order_acq_rel);
    }
    if (shard.rejected_overloaded != nullptr) {
      shard.rejected_overloaded->Increment();
    }
    ObsIncrement(options_.obs, "net.jobs_rejected_overloaded");
    JsonWriter w;
    w.BeginObject();
    w.Key("id");
    w.String(request->id);
    w.Key("status");
    w.String("overloaded");
    w.Key("shard");
    w.Int(shard.index);
    w.Key("error");
    w.String("shard " + std::to_string(shard.index) +
             " at admission capacity (" +
             std::to_string(shard.max_inflight) + " jobs in flight)");
    w.EndObject();
    emit(w.str());
    return;
  }

  aggregate->remaining = involved.size();
  aggregate->shards_involved = involved.size();
  aggregate->responses.resize(involved.size());
  for (size_t i = 0; i < involved.size(); ++i) {
    Shard* shard = shards_[static_cast<size_t>(involved[i])].get();
    std::string sub_line =
        SubRequestLine(*doc, *request,
                       shard_members[static_cast<size_t>(involved[i])]);
    auto run = [this, shard, aggregate, i, sub_line] {
      std::string response = shard->service->HandleJobLine(sub_line);
      FinishShardJob(*shard);
      bool last = false;
      {
        std::lock_guard<std::mutex> lock(aggregate->mu);
        aggregate->responses[i] = std::move(response);
        last = --aggregate->remaining == 0;
      }
      if (last) aggregate->emit(MergeTopKResponses(*aggregate));
    };
    // The slot is reserved; a full task queue degrades to running the
    // sub-query on this thread instead of shedding the whole fan-out.
    if (!shard->service->pool().TrySubmit(run)) run();
  }
}

std::string ShardedMatchService::MergeTopKResponses(
    const TopKAggregate& aggregate) const {
  struct MergedHit {
    std::string member;
    double score = 0.0;
    std::string score_bits;
    long long correspondences = 0;
    size_t global_index = 0;
  };
  std::vector<MergedHit> hits;
  long long candidates = 0, pruned = 0, exact = 0, aborted = 0;
  bool brute_force = false;
  for (const std::string& response : aggregate.responses) {
    Result<JsonValue> doc = ParseJson(response);
    if (!doc.ok()) return RenderError(aggregate.id, doc.status());
    if (doc->GetString("status", "") != "ok") {
      // A failed shard fails the query; its rendered error already
      // carries the request id and status code.
      return response;
    }
    const JsonValue* index_stats = doc->Find("index");
    if (index_stats != nullptr) {
      candidates += static_cast<long long>(
          index_stats->GetNumber("candidates_retrieved", 0));
      pruned += static_cast<long long>(
          index_stats->GetNumber("pruned_by_bound", 0));
      exact +=
          static_cast<long long>(index_stats->GetNumber("exact_runs", 0));
      aborted +=
          static_cast<long long>(index_stats->GetNumber("aborted_runs", 0));
      brute_force = brute_force || index_stats->GetBool("brute_force", false);
    }
    const JsonValue* shard_hits = doc->Find("hits");
    if (shard_hits == nullptr || !shard_hits->is_array()) continue;
    for (const JsonValue& h : shard_hits->array_items()) {
      MergedHit hit;
      hit.member = h.GetString("member", "");
      hit.score_bits = h.GetString("score_bits", "0");
      hit.score = ScoreFromBits(hit.score_bits);
      hit.correspondences =
          static_cast<long long>(h.GetNumber("correspondences", 0));
      auto g = aggregate.global_index.find(hit.member);
      hit.global_index = g != aggregate.global_index.end()
                             ? g->second
                             : aggregate.global_index.size();
      hits.push_back(std::move(hit));
    }
  }
  std::sort(hits.begin(), hits.end(),
            [](const MergedHit& a, const MergedHit& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.global_index < b.global_index;
            });
  if (hits.size() > aggregate.k) hits.resize(aggregate.k);

  JsonWriter w;
  w.BeginObject();
  w.Key("id");
  w.String(aggregate.id);
  w.Key("status");
  w.String("ok");
  w.Key("millis");
  w.Number(aggregate.timer.ElapsedMillis());
  w.Key("k");
  w.Int(static_cast<long long>(aggregate.k));
  w.Key("shards");
  w.Int(static_cast<long long>(aggregate.shards_involved));
  w.Key("hits");
  w.BeginArray();
  for (size_t i = 0; i < hits.size(); ++i) {
    w.BeginObject();
    w.Key("member");
    w.String(hits[i].member);
    w.Key("rank");
    w.Int(static_cast<long long>(i + 1));
    w.Key("score");
    w.Number(hits[i].score);
    w.Key("score_bits");
    w.String(hits[i].score_bits);
    w.Key("correspondences");
    w.Int(hits[i].correspondences);
    w.EndObject();
  }
  w.EndArray();
  w.Key("index");
  w.BeginObject();
  w.Key("candidates_retrieved");
  w.Int(candidates);
  w.Key("pruned_by_bound");
  w.Int(pruned);
  w.Key("exact_runs");
  w.Int(exact);
  w.Key("aborted_runs");
  w.Int(aborted);
  w.Key("brute_force");
  w.Bool(brute_force);
  w.EndObject();
  w.EndObject();
  return w.str();
}

std::string ShardedMatchService::HandleLineSync(const std::string& line) {
  std::promise<std::string> done;
  std::future<std::string> response = done.get_future();
  HandleLine(line,
             [&done](const std::string& result) { done.set_value(result); });
  return response.get();
}

void ShardedMatchService::Drain() {
  draining_.store(true, std::memory_order_release);
}

void ShardedMatchService::WaitDrained() {
  std::unique_lock<std::mutex> lock(drain_mu_);
  drain_cv_.wait(lock, [this] {
    for (const auto& shard : shards_) {
      if (shard->inflight.load(std::memory_order_acquire) != 0) return false;
    }
    return true;
  });
}

std::string ShardedMatchService::HandleAdmin(const std::string& cmd,
                                             const std::string& id) {
  ObsIncrement(options_.obs, "serve.admin_commands");
  if (cmd == "stats") return RenderStats(id);
  if (cmd == "health") return RenderHealth(id);
  if (cmd == "slow") return RenderSlow(id);
  if (cmd == "drain") return RenderDrainAck(id);
  return RenderError(
      id, Status::InvalidArgument("unknown cmd '" + cmd +
                                  "' (stats|health|slow|drain)"));
}

std::string ShardedMatchService::RenderDrainAck(const std::string& id) {
  LogInfo("drain requested via admin command");
  Drain();
  // The transport stops accepting while the router stops admitting; the
  // callback fires once even if drain is commanded repeatedly.
  bool expected = false;
  if (drain_callback_fired_.compare_exchange_strong(expected, true) &&
      drain_callback_) {
    drain_callback_();
  }
  JsonWriter w;
  w.BeginObject();
  w.Key("id");
  w.String(id);
  w.Key("status");
  w.String("ok");
  w.Key("cmd");
  w.String("drain");
  w.Key("draining");
  w.Bool(true);
  w.EndObject();
  return w.str();
}

std::string ShardedMatchService::RenderStats(const std::string& id) {
  JsonWriter w;
  w.BeginObject();
  w.Key("id");
  w.String(id);
  w.Key("status");
  w.String("ok");
  w.Key("cmd");
  w.String("stats");
  w.Key("uptime_seconds");
  w.Number(uptime_.ElapsedSeconds());
  if (options_.obs != nullptr) {
    MetricsSnapshot snapshot = CaptureMetricsSnapshot(options_.obs->metrics);
    std::map<std::string, double> rates;
    double interval = 0.0;
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      if (has_last_stats_) {
        rates = DiffRates(last_stats_, snapshot);
        interval = snapshot.at_seconds - last_stats_.at_seconds;
      }
      last_stats_ = snapshot;
      has_last_stats_ = true;
    }
    w.Key("snapshot");
    snapshot.WriteJson(&w);
    w.Key("interval_seconds");
    w.Number(interval);
    w.Key("rates");
    w.BeginObject();
    for (const auto& [name, rate] : rates) {
      w.Key(name);
      w.Number(rate);
    }
    w.EndObject();
  }
  w.Key("router");
  w.BeginObject();
  w.Key("num_shards");
  w.Int(ring_.num_shards());
  w.Key("vnodes_per_shard");
  w.Int(ring_.vnodes_per_shard());
  w.Key("draining");
  w.Bool(draining());
  w.EndObject();
  w.Key("shards");
  w.BeginArray();
  for (const auto& shard : shards_) {
    BatchMatchService& service = *shard->service;
    w.BeginObject();
    w.Key("shard");
    w.Int(shard->index);
    w.Key("routed");
    w.Int(static_cast<long long>(
        shard->routed != nullptr ? shard->routed->value() : 0));
    w.Key("rejected_overloaded");
    w.Int(static_cast<long long>(shard->rejected_overloaded != nullptr
                                     ? shard->rejected_overloaded->value()
                                     : 0));
    w.Key("inflight");
    w.Int(shard->inflight.load(std::memory_order_relaxed));
    w.Key("max_inflight");
    w.Int(static_cast<long long>(shard->max_inflight));
    w.Key("queue_depth");
    w.Int(static_cast<long long>(service.pool().QueueDepth()));
    w.Key("queue_capacity");
    w.Int(static_cast<long long>(service.queue_capacity()));
    w.Key("threads");
    w.Int(service.pool().num_threads());
    w.Key("cache");
    w.BeginObject();
    w.Key("entries");
    w.Int(static_cast<long long>(service.cache().size()));
    w.Key("bytes");
    w.Int(static_cast<long long>(service.cache().cost_bytes()));
    w.Key("hits");
    w.Int(static_cast<long long>(service.cache().hits()));
    w.Key("misses");
    w.Int(static_cast<long long>(service.cache().misses()));
    w.EndObject();
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  return w.str();
}

std::string ShardedMatchService::RenderHealth(const std::string& id) {
  int64_t total_inflight = 0;
  for (const auto& shard : shards_) {
    total_inflight += shard->inflight.load(std::memory_order_relaxed);
  }
  JsonWriter w;
  w.BeginObject();
  w.Key("id");
  w.String(id);
  w.Key("status");
  w.String("ok");
  w.Key("cmd");
  w.String("health");
  w.Key("healthy");
  w.Bool(!draining());
  w.Key("draining");
  w.Bool(draining());
  w.Key("uptime_seconds");
  w.Number(uptime_.ElapsedSeconds());
  w.Key("num_shards");
  w.Int(ring_.num_shards());
  w.Key("jobs_in_flight");
  w.Int(total_inflight);
  w.Key("shards");
  w.BeginArray();
  for (const auto& shard : shards_) {
    w.BeginObject();
    w.Key("shard");
    w.Int(shard->index);
    w.Key("inflight");
    w.Int(shard->inflight.load(std::memory_order_relaxed));
    w.Key("queue_depth");
    w.Int(static_cast<long long>(shard->service->pool().QueueDepth()));
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  return w.str();
}

std::string ShardedMatchService::RenderSlow(const std::string& id) {
  JsonWriter w;
  w.BeginObject();
  w.Key("id");
  w.String(id);
  w.Key("status");
  w.String("ok");
  w.Key("cmd");
  w.String("slow");
  w.Key("shards");
  w.BeginArray();
  for (const auto& shard : shards_) {
    w.BeginObject();
    w.Key("shard");
    w.Int(shard->index);
    w.Key("flight_recorder");
    if (shard->service->flight_recorder() != nullptr) {
      shard->service->flight_recorder()->WriteJson(&w);
    } else {
      w.Null();
    }
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  return w.str();
}

}  // namespace serve
}  // namespace ems
