#include "serve/log_cache.h"

#include <cstdlib>

#include "log/log_io.h"
#include "log/mxml.h"
#include "log/xes.h"
#include "obs/context.h"
#include "store/artifact_store.h"
#include "store/hashing.h"
#include "store/snapshot.h"
#include "util/string_util.h"

namespace ems {
namespace serve {

std::string CanonicalPath(const std::string& path) {
  char* resolved = ::realpath(path.c_str(), nullptr);
  if (resolved == nullptr) return path;
  std::string out(resolved);
  std::free(resolved);
  return out;
}

std::string ResolveLogFormat(const std::string& path,
                             const std::string& format) {
  if (format != "auto" && !format.empty()) return format;
  if (EndsWith(path, ".xes")) return "xes";
  if (EndsWith(path, ".mxml")) return "mxml";
  if (EndsWith(path, ".csv")) return "csv";
  return "trace";
}

Result<EventLog> LoadEventLog(const std::string& path,
                              const std::string& format) {
  const std::string fmt = ResolveLogFormat(path, format);
  if (fmt == "xes") return ReadXesFile(path);
  if (fmt == "mxml") return ReadMxmlFile(path);
  if (fmt == "csv") return ReadCsvFile(path);
  if (fmt == "trace") return ReadTraceFile(path);
  return Status::InvalidArgument("unknown format '" + fmt + "'");
}

Result<EventLog> LoadEventLogThroughStore(store::ArtifactStore* store,
                                          const std::string& path,
                                          const std::string& format,
                                          uint64_t* content_hash_out) {
  if (store == nullptr) return LoadEventLog(path, format);
  // An unreadable file falls through to the source parser, whose error
  // message names the format and path.
  Result<uint64_t> hashed = store::HashFile(path);
  if (!hashed.ok()) return LoadEventLog(path, format);
  if (content_hash_out != nullptr) *content_hash_out = hashed.value();
  const std::string fmt = ResolveLogFormat(path, format);
  const store::ArtifactKey key{store::ArtifactKind::kEventLog, hashed.value(),
                               store::LogFingerprint(fmt)};
  if (std::optional<std::string> snapshot = store->Load(key)) {
    Result<EventLog> decoded = store::DecodeEventLog(*snapshot);
    if (decoded.ok()) return decoded;
    // The envelope verified but the payload didn't decode (a logic-level
    // inconsistency): count the re-derive like any other fallback.
    ObsIncrement(store->obs(), "store.fallback_rederives");
  }
  EMS_ASSIGN_OR_RETURN(EventLog log, LoadEventLog(path, format));
  store->Store(key, store::EncodeEventLog(log));
  return log;
}

LogCache::LogCache(size_t capacity, ObsContext* obs,
                   store::ArtifactStore* store, uint64_t max_cost_bytes)
    : cache_(capacity, max_cost_bytes), obs_(obs), store_(store) {}

Result<std::shared_ptr<const EventLog>> LogCache::GetOrLoad(
    const std::string& path, const std::string& format) {
  // Hash the file on every lookup: a rewritten file gets a fresh key, so
  // no job is ever answered with a stale parse. An unreadable file hashes
  // as 0 and misses — the load below reports the real error.
  uint64_t content_hash = 0;
  if (Result<uint64_t> hashed = store::HashFile(path); hashed.ok()) {
    content_hash = hashed.value();
  }
  const std::string fmt = ResolveLogFormat(path, format);
  const std::string key =
      CanonicalPath(path) + "|" + fmt + "|" + store::HashHex(content_hash);
  if (std::optional<std::shared_ptr<const EventLog>> hit = cache_.Get(key)) {
    ObsIncrement(obs_, "serve.cache.hits");
    return *hit;
  }
  ObsIncrement(obs_, "serve.cache.misses");
  // Concurrent misses on one key may both load; the second Put wins.
  // Wasted work on a cold start beats holding the cache lock across
  // file I/O.
  EMS_ASSIGN_OR_RETURN(EventLog log,
                       LoadEventLogThroughStore(store_, path, format));
  const uint64_t cost = store::EstimateLogSnapshotBytes(log);
  auto shared = std::make_shared<const EventLog>(std::move(log));
  cache_.Put(key, shared, cost);
  ObsSetGauge(obs_, "serve.cache_bytes",
              static_cast<double>(cache_.cost_bytes()));
  return shared;
}

}  // namespace serve
}  // namespace ems
