#include "serve/log_cache.h"

#include <cstdlib>

#include "log/log_io.h"
#include "log/mxml.h"
#include "log/xes.h"
#include "obs/context.h"
#include "util/string_util.h"

namespace ems {
namespace serve {

std::string CanonicalPath(const std::string& path) {
  char* resolved = ::realpath(path.c_str(), nullptr);
  if (resolved == nullptr) return path;
  std::string out(resolved);
  std::free(resolved);
  return out;
}

Result<EventLog> LoadEventLog(const std::string& path,
                              const std::string& format) {
  std::string fmt = format;
  if (fmt == "auto" || fmt.empty()) {
    if (EndsWith(path, ".xes")) fmt = "xes";
    else if (EndsWith(path, ".mxml")) fmt = "mxml";
    else if (EndsWith(path, ".csv")) fmt = "csv";
    else fmt = "trace";
  }
  if (fmt == "xes") return ReadXesFile(path);
  if (fmt == "mxml") return ReadMxmlFile(path);
  if (fmt == "csv") return ReadCsvFile(path);
  if (fmt == "trace") return ReadTraceFile(path);
  return Status::InvalidArgument("unknown format '" + fmt + "'");
}

LogCache::LogCache(size_t capacity, ObsContext* obs)
    : cache_(capacity), obs_(obs) {}

Result<std::shared_ptr<const EventLog>> LogCache::GetOrLoad(
    const std::string& path, const std::string& format) {
  const std::string key = CanonicalPath(path) + "|" + format;
  if (std::optional<std::shared_ptr<const EventLog>> hit = cache_.Get(key)) {
    ObsIncrement(obs_, "serve.cache.hits");
    return *hit;
  }
  ObsIncrement(obs_, "serve.cache.misses");
  // Concurrent misses on one key may both load; the second Put wins.
  // Wasted work on a cold start beats holding the cache lock across
  // file I/O.
  EMS_ASSIGN_OR_RETURN(EventLog log, LoadEventLog(path, format));
  auto shared = std::make_shared<const EventLog>(std::move(log));
  cache_.Put(key, shared);
  return shared;
}

}  // namespace serve
}  // namespace ems
