// Concurrent batch matching service: newline-delimited JSON job requests
// in, one JSON result line per job out. Jobs are scheduled on a
// ThreadPool behind an LRU log cache, so a stream of thousands of
// matchings (the paper's Section-7 evaluation regime, warehouse
// reconciliation sweeps) parses each log once and saturates every core.
//
// Job request (one JSON object per line; `log1`/`log2` required):
//   {"id": "j1", "log1": "a.xes", "log2": "b.xes",
//    "format": "auto|trace|csv|xes|mxml",
//    "labels": "none|qgram|levenshtein|jaro|tokens",
//    "alpha": 0.5, "c": 0.8, "engine": "exact|estimated",
//    "iterations": 5, "composites": false, "delta": 0.005,
//    "selection": "hungarian|greedy|mutual",
//    "min_similarity": 0.05, "min_edge_frequency": 0.0,
//    "prob": false, "prob_temp": 0.05, "prob_tol": 1e-6,
//    "prob_iters": 50, "prob_min_confidence": 0.02}
//
// Result line (completion order; correlate by id):
//   {"id": "j1", "status": "ok", "millis": 12.3,
//    "correspondences": [{"left": [..], "right": [..],
//                         "similarity": 0.81}, ...],
//    "ems": {"iterations": 7, "formula_evaluations": 1234}}
// or {"id": "j1", "status": "error", "code": "NotFound",
//     "error": "..."}.
// With "prob": true (docs/PROBABILISTIC.md) each correspondence gains a
// "confidence" (its EM posterior mass) and the result a
// "prob": {"iterations", "converged", "final_delta", "mean_entropy"}
// object; non-prob responses are byte-identical to older builds. The
// sharded router forwards job lines verbatim, so prob jobs work
// unchanged under --shards/--tcp.
//
// Top-k corpus queries ride the same protocol, dispatched on the
// `query` key (docs/CORPUS.md): rank the members of a corpus against
// one query log and return the k best, exactly as a brute-force scan
// would rank them but scheduled through the corpus index:
//   {"id": "t1", "query": "q.xes", "topk": 5,
//    "members": ["a.xes", ...]  |  "corpus": "warehouse/",
//    "brute_force": false, ...match options as above}
// ->
//   {"id": "t1", "status": "ok", "millis": targeted, "k": 5,
//    "hits": [{"member": "a.xes", "rank": 1, "score": 0.83,
//              "score_bits": "3fe51eb851eb851f" (IEEE-754 hex, exact),
//              "correspondences": 17}, ...],
//    "index": {"candidates_retrieved": N, "pruned_by_bound": P,
//              "exact_runs": E, "aborted_runs": A,
//              "brute_force": false}}
// Hits carry the ranking and per-member scores; for the full
// correspondence list of one hit, issue a regular match job for that
// pair (it is served from the same caches). Built corpus indexes are
// cached in-process keyed by member content hashes, and persisted
// through the artifact store, so repeated queries against one corpus
// skip the build entirely.
//
// Admin commands ride the same NDJSON protocol (one object per line,
// dispatched on the `cmd` key) and are answered inline — never queued
// behind match jobs — so a saturated service still reports:
//   {"cmd": "stats"}  -> metrics snapshot: counters, integer gauges,
//                        per-outcome latency quantiles (p50/p90/p99),
//                        interval rates since the previous stats call,
//                        cache and pool gauges
//   {"cmd": "health"} -> liveness: queue depth/capacity, threads,
//                        jobs in flight, uptime
//   {"cmd": "slow"}   -> flight-recorder dump: span trees of the N
//                        slowest and N most recently failed requests
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <optional>
#include <string>

#include "core/matcher.h"
#include "exec/cancellation.h"
#include "exec/thread_pool.h"
#include "index/corpus_index.h"
#include "obs/flight_recorder.h"
#include "obs/metrics_snapshot.h"
#include "serve/log_cache.h"
#include "serve/stream_session.h"
#include "store/artifact_store.h"
#include "util/timer.h"

namespace ems {

struct ObsContext;
class JsonValue;

namespace serve {

/// Service configuration.
struct ServiceOptions {
  /// Worker threads; 0 = hardware concurrency, 1 = serve jobs serially.
  int threads = 0;

  /// Bounded job queue; a client streaming faster than the pool drains
  /// blocks here (backpressure) instead of growing memory.
  size_t queue_capacity = 256;

  /// LRU capacity of the parsed-log cache, in logs.
  size_t cache_capacity = 64;

  /// Byte budget of the parsed-log cache (estimated snapshot bytes of
  /// resident logs); 0 keeps the entry-count bound alone.
  size_t cache_byte_budget = 0;

  /// Directory of the persistent artifact store (docs/PERSISTENCE.md);
  /// empty disables persistence. A restarted service with the same
  /// directory starts warm: the first job per log loads its snapshot
  /// instead of re-parsing the source file. An unusable directory is
  /// tolerated — the service runs without persistence.
  std::string cache_dir;

  /// Byte budget of the on-disk store (LRU file eviction); 0 = unbounded.
  uint64_t cache_dir_bytes = 0;

  /// Observability sink for serve.*, store.*, and exec.pool.* metrics
  /// (borrowed). When null and `telemetry` is true (the default), the
  /// service owns a private ObsContext so the stats/health/slow admin
  /// commands always have live data.
  ObsContext* obs = nullptr;

  /// Master switch for the telemetry plane. False runs the service bare
  /// (no owned context, no per-job tracing, no flight recorder) — the
  /// pre-telemetry behavior, kept measurable for bench_serve_obs.
  bool telemetry = true;

  /// Flight-recorder retention: the N slowest and the N most recently
  /// failed requests, each with its span tree.
  size_t flight_slow_capacity = 16;
  size_t flight_failed_capacity = 16;
};

/// A parsed job line.
struct JobRequest {
  std::string id;
  std::string log1;
  std::string log2;
  std::string format = "auto";
  MatchOptions options;
};

/// Parses one NDJSON job line into a request (ParseError/InvalidArgument
/// on malformed input).
Result<JobRequest> ParseJobRequest(const std::string& line);

/// Parses one {"cmd": "append"} streaming-ingestion line
/// (docs/STREAMING.md): a match-job line plus either `traces` (array of
/// arrays of event names appended to log1) or `delta` (a log file whose
/// traces are appended), e.g.
///   {"cmd": "append", "id": "a1", "log1": "live.xes", "log2": "ref.xes",
///    "traces": [["receive", "check", "ship"]], ...match options}
Result<AppendRequest> ParseAppendRequest(const std::string& line);

/// A parsed top-k corpus query line. Exactly one of `members` / `corpus`
/// is set.
struct TopKRequest {
  std::string id;
  std::string query;                 // the query log's path
  std::string format = "auto";
  size_t k = 5;
  std::vector<std::string> members;  // explicit member paths, in rank
                                     // tie-break order
  std::string corpus;                // or: a corpus directory
  bool brute_force = false;          // baseline scan (tests, CI checks)
  MatchOptions options;
};

/// True when a parsed NDJSON line is a top-k query (has a `query` key);
/// both services dispatch on this before the match-job path.
bool IsTopKRequest(const JsonValue& doc);

/// Parses one top-k query line.
Result<TopKRequest> ParseTopKRequest(const std::string& line);

/// \brief The batch matching service.
///
/// HandleJobLine is the pure per-job path (parse -> load via cache ->
/// match -> render), safe to call from any thread; RunStream drives it
/// concurrently from an NDJSON stream. Results are emitted in
/// completion order — clients correlate by id.
class BatchMatchService {
 public:
  explicit BatchMatchService(const ServiceOptions& options);
  ~BatchMatchService();  // out of line: ObsContext is incomplete here

  /// Processes one job or admin line synchronously and returns the
  /// result line (without trailing newline). Never fails: malformed
  /// requests render as status:"error" results.
  std::string HandleJobLine(const std::string& line);

  /// Reads lines from `in` until EOF, schedules match jobs on the pool,
  /// and writes one result line per job to `out` as jobs complete.
  /// Admin-command lines ({"cmd": ...}) are answered inline from the
  /// reader thread — a full queue never blocks a stats or health probe.
  /// Returns the number of lines processed (jobs plus admin commands).
  size_t RunStream(std::istream& in, std::ostream& out);

  /// Cooperatively stops a running RunStream: no further lines are
  /// scheduled and queued jobs report Cancelled results.
  void Cancel() { cancel_.Cancel(); }

  LogCache& cache() { return cache_; }
  exec::ThreadPool& pool() { return pool_; }

  /// Live streaming-ingestion sessions (docs/STREAMING.md).
  StreamSessionManager& stream_sessions() { return stream_sessions_; }

  /// The persistent artifact store, or null when `cache_dir` was empty
  /// or unusable.
  store::ArtifactStore* artifact_store() {
    return store_.has_value() ? &*store_ : nullptr;
  }

  /// The effective telemetry context: the caller's, the owned one, or
  /// null when `telemetry` was disabled without a caller context.
  ObsContext* obs() { return options_.obs; }

  /// The slow/failed request retention, or null when telemetry is off.
  FlightRecorder* flight_recorder() { return flight_.get(); }

  /// Seconds since the service was constructed.
  double UptimeSeconds() const { return uptime_.ElapsedSeconds(); }

  /// Jobs currently inside HandleMatchJob (racy snapshot; the sharded
  /// router reads this for per-shard health).
  int64_t jobs_in_flight() const {
    return jobs_in_flight_.load(std::memory_order_relaxed);
  }

  /// The configured bounded-queue capacity (admission headroom).
  size_t queue_capacity() const { return options_.queue_capacity; }

  /// Renders one admin response (the `{"cmd": ...}` path of
  /// HandleJobLine, exposed for direct calls): "stats", "health", or
  /// "slow". Unknown commands render as status:"error".
  std::string HandleAdminCommand(const std::string& cmd,
                                 const std::string& id);

 private:
  std::string RenderStats(const std::string& id);
  std::string RenderHealth(const std::string& id);
  std::string RenderSlow(const std::string& id);
  std::string HandleMatchJob(const std::string& line);
  std::string HandleTopKJob(const std::string& line);
  std::string HandleAppendJob(const std::string& line);

  /// Refreshes cached corpus indexes containing `path` after an append:
  /// the member is re-added from `log` (the session's appended state) so
  /// top-k queries rank against the stream, not the stale file.
  void RefreshCorpusMember(const std::string& path, const EventLog& log,
                           const std::string& format);

  /// The corpus index for `members` (in order), built with the request's
  /// min_edge_frequency — from the in-process cache when the member
  /// files are unchanged, else through the artifact store
  /// (index::LoadCorpusFromFiles). Keys include member content hashes,
  /// so a rewritten member rebuilds, never serves stale.
  Result<std::shared_ptr<const index::CorpusIndex>> GetOrBuildCorpus(
      const std::vector<std::string>& members, const std::string& format,
      const MatchOptions& options);

  std::unique_ptr<ObsContext> owned_obs_;  // set before options_
  ServiceOptions options_;
  exec::ThreadPool pool_;
  std::optional<store::ArtifactStore> store_;  // must outlive cache_
  LogCache cache_;
  StreamSessionManager stream_sessions_;  // after store_: borrows it
  exec::CancellationSource cancel_;
  std::unique_ptr<FlightRecorder> flight_;
  Timer uptime_;
  std::atomic<uint64_t> next_request_seq_{1};
  std::atomic<int64_t> jobs_in_flight_{0};

  // Previous stats snapshot, so consecutive {"cmd":"stats"} calls report
  // interval rates (counter deltas / elapsed seconds).
  std::mutex stats_mu_;
  MetricsSnapshot last_stats_;
  bool has_last_stats_ = false;

  // Tiny MRU cache of built corpus indexes (shared so concurrent top-k
  // jobs read one immutable index). An index over a 1k-member corpus is
  // expensive to build and cheap to keep; a handful covers the working
  // set of corpora one deployment serves.
  struct CorpusCacheEntry {
    std::string key;  // content hash + options fingerprint
    std::shared_ptr<const index::CorpusIndex> index;
  };
  static constexpr size_t kCorpusCacheCapacity = 4;
  std::mutex corpus_mu_;
  std::vector<CorpusCacheEntry> corpus_cache_;  // MRU at the back
};

}  // namespace serve
}  // namespace ems
