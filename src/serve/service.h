// Concurrent batch matching service: newline-delimited JSON job requests
// in, one JSON result line per job out. Jobs are scheduled on a
// ThreadPool behind an LRU log cache, so a stream of thousands of
// matchings (the paper's Section-7 evaluation regime, warehouse
// reconciliation sweeps) parses each log once and saturates every core.
//
// Job request (one JSON object per line; `log1`/`log2` required):
//   {"id": "j1", "log1": "a.xes", "log2": "b.xes",
//    "format": "auto|trace|csv|xes|mxml",
//    "labels": "none|qgram|levenshtein|jaro|tokens",
//    "alpha": 0.5, "c": 0.8, "engine": "exact|estimated",
//    "iterations": 5, "composites": false, "delta": 0.005,
//    "selection": "hungarian|greedy|mutual",
//    "min_similarity": 0.05, "min_edge_frequency": 0.0}
//
// Result line (completion order; correlate by id):
//   {"id": "j1", "status": "ok", "millis": 12.3,
//    "correspondences": [{"left": [..], "right": [..],
//                         "similarity": 0.81}, ...],
//    "ems": {"iterations": 7, "formula_evaluations": 1234}}
// or {"id": "j1", "status": "error", "code": "NotFound",
//     "error": "..."}.
#pragma once

#include <iosfwd>
#include <memory>
#include <optional>
#include <string>

#include "core/matcher.h"
#include "exec/cancellation.h"
#include "exec/thread_pool.h"
#include "serve/log_cache.h"
#include "store/artifact_store.h"

namespace ems {

struct ObsContext;

namespace serve {

/// Service configuration.
struct ServiceOptions {
  /// Worker threads; 0 = hardware concurrency, 1 = serve jobs serially.
  int threads = 0;

  /// Bounded job queue; a client streaming faster than the pool drains
  /// blocks here (backpressure) instead of growing memory.
  size_t queue_capacity = 256;

  /// LRU capacity of the parsed-log cache, in logs.
  size_t cache_capacity = 64;

  /// Byte budget of the parsed-log cache (estimated snapshot bytes of
  /// resident logs); 0 keeps the entry-count bound alone.
  size_t cache_byte_budget = 0;

  /// Directory of the persistent artifact store (docs/PERSISTENCE.md);
  /// empty disables persistence. A restarted service with the same
  /// directory starts warm: the first job per log loads its snapshot
  /// instead of re-parsing the source file. An unusable directory is
  /// tolerated — the service runs without persistence.
  std::string cache_dir;

  /// Byte budget of the on-disk store (LRU file eviction); 0 = unbounded.
  uint64_t cache_dir_bytes = 0;

  /// Observability sink for serve.*, store.*, and exec.pool.* metrics
  /// (borrowed; null disables).
  ObsContext* obs = nullptr;
};

/// A parsed job line.
struct JobRequest {
  std::string id;
  std::string log1;
  std::string log2;
  std::string format = "auto";
  MatchOptions options;
};

/// Parses one NDJSON job line into a request (ParseError/InvalidArgument
/// on malformed input).
Result<JobRequest> ParseJobRequest(const std::string& line);

/// \brief The batch matching service.
///
/// HandleJobLine is the pure per-job path (parse -> load via cache ->
/// match -> render), safe to call from any thread; RunStream drives it
/// concurrently from an NDJSON stream. Results are emitted in
/// completion order — clients correlate by id.
class BatchMatchService {
 public:
  explicit BatchMatchService(const ServiceOptions& options);

  /// Processes one job line synchronously and returns the result line
  /// (without trailing newline). Never fails: malformed requests render
  /// as status:"error" results.
  std::string HandleJobLine(const std::string& line);

  /// Reads job lines from `in` until EOF, schedules them on the pool,
  /// and writes one result line per job to `out` as jobs complete.
  /// Returns the number of jobs processed.
  size_t RunStream(std::istream& in, std::ostream& out);

  /// Cooperatively stops a running RunStream: no further lines are
  /// scheduled and queued jobs report Cancelled results.
  void Cancel() { cancel_.Cancel(); }

  LogCache& cache() { return cache_; }
  exec::ThreadPool& pool() { return pool_; }

  /// The persistent artifact store, or null when `cache_dir` was empty
  /// or unusable.
  store::ArtifactStore* artifact_store() {
    return store_.has_value() ? &*store_ : nullptr;
  }

 private:
  ServiceOptions options_;
  exec::ThreadPool pool_;
  std::optional<store::ArtifactStore> store_;  // must outlive cache_
  LogCache cache_;
  exec::CancellationSource cancel_;
};

}  // namespace serve
}  // namespace ems
