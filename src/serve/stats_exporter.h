// Background stats export for ems_serve --stats-out/--stats-interval: a
// thread that periodically renders the service's MetricsRegistry in text
// exposition format (obs/exposition.h) and publishes it with the
// atomic-tmp-rename idiom, so a scraper tailing the file never reads a
// torn document. Stop() (also run by the destructor) wakes the thread,
// writes one final snapshot, and joins — shutdown never waits out a full
// interval and never drops the last stats of a short run.
#pragma once

#include <condition_variable>
#include <mutex>
#include <string>
#include <thread>

#include "util/status.h"

namespace ems {

struct ObsContext;

namespace serve {

/// \brief Periodic exposition-format metrics writer.
class StatsExporter {
 public:
  /// Starts the export thread. `obs` is borrowed and must outlive the
  /// exporter; a null context disables it (no thread, no file).
  /// `interval_seconds` <= 0 snaps to 1s.
  StatsExporter(const ObsContext* obs, std::string path,
                double interval_seconds);
  ~StatsExporter();

  StatsExporter(const StatsExporter&) = delete;
  StatsExporter& operator=(const StatsExporter&) = delete;

  /// Final write + join. Idempotent; called by the destructor.
  void Stop();

  /// Renders and publishes one snapshot now (also the final write of
  /// Stop). IOError when the temp file cannot be written or renamed.
  Status WriteOnce();

  uint64_t writes() const;
  uint64_t write_errors() const;

 private:
  void Loop();

  const ObsContext* obs_;
  const std::string path_;
  const double interval_seconds_;
  mutable std::mutex mu_;
  std::condition_variable wake_;
  bool stopping_ = false;
  bool stopped_ = false;
  uint64_t writes_ = 0;
  uint64_t write_errors_ = 0;
  std::thread thread_;  // last member: starts after everything above
};

}  // namespace serve
}  // namespace ems
