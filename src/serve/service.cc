#include "serve/service.h"

#include <istream>
#include <mutex>
#include <ostream>

#include "exec/parallel.h"
#include "obs/context.h"
#include "util/json_parser.h"
#include "util/json_writer.h"
#include "util/timer.h"

namespace ems {
namespace serve {

namespace {

exec::ThreadPoolOptions PoolOptions(const ServiceOptions& options) {
  exec::ThreadPoolOptions pool;
  pool.num_threads = options.threads;
  pool.queue_capacity = options.queue_capacity;
  pool.obs = options.obs;
  return pool;
}

Status ParseMatchOptions(const JsonValue& job, MatchOptions* out) {
  const std::string labels = job.GetString("labels", "qgram");
  if (labels == "none") out->label_measure = LabelMeasure::kNone;
  else if (labels == "qgram") out->label_measure = LabelMeasure::kQGramCosine;
  else if (labels == "levenshtein") {
    out->label_measure = LabelMeasure::kLevenshtein;
  } else if (labels == "jaro") {
    out->label_measure = LabelMeasure::kJaroWinkler;
  } else if (labels == "tokens") {
    out->label_measure = LabelMeasure::kTokenJaccard;
  } else {
    return Status::InvalidArgument("unknown label measure '" + labels + "'");
  }
  out->ems.alpha = job.GetNumber(
      "alpha", out->label_measure == LabelMeasure::kNone ? 1.0 : 0.5);
  if (out->ems.alpha < 0.0 || out->ems.alpha > 1.0) {
    return Status::InvalidArgument("alpha must be in [0, 1]");
  }
  out->ems.c = job.GetNumber("c", 0.8);
  if (out->ems.c <= 0.0 || out->ems.c >= 1.0) {
    return Status::InvalidArgument("c must be in (0, 1)");
  }
  const std::string engine = job.GetString("engine", "exact");
  if (engine == "exact") out->engine = SimilarityEngine::kExact;
  else if (engine == "estimated") out->engine = SimilarityEngine::kEstimated;
  else return Status::InvalidArgument("unknown engine '" + engine + "'");
  out->estimation_iterations = job.GetInt("iterations", 5);
  out->match_composites = job.GetBool("composites", false);
  out->composite.delta = job.GetNumber("delta", out->composite.delta);
  const std::string selection = job.GetString("selection", "hungarian");
  if (selection == "hungarian") {
    out->selection = SelectionStrategy::kMaxTotalSimilarity;
  } else if (selection == "greedy") {
    out->selection = SelectionStrategy::kGreedy;
  } else if (selection == "mutual") {
    out->selection = SelectionStrategy::kMutualBest;
  } else {
    return Status::InvalidArgument("unknown selection '" + selection + "'");
  }
  out->min_match_similarity =
      job.GetNumber("min_similarity", out->min_match_similarity);
  out->min_edge_frequency =
      job.GetNumber("min_edge_frequency", out->min_edge_frequency);
  return Status::OK();
}

void WriteNames(JsonWriter* w, const std::vector<std::string>& names) {
  w->BeginArray();
  for (const std::string& n : names) w->String(n);
  w->EndArray();
}

std::string RenderError(const std::string& id, const Status& status) {
  JsonWriter w;
  w.BeginObject();
  w.Key("id");
  w.String(id);
  w.Key("status");
  w.String("error");
  w.Key("code");
  w.String(StatusCodeToString(status.code()));
  w.Key("error");
  w.String(status.message());
  w.EndObject();
  return w.str();
}

std::string RenderResult(const std::string& id, const MatchResult& result,
                         double millis) {
  JsonWriter w;
  w.BeginObject();
  w.Key("id");
  w.String(id);
  w.Key("status");
  w.String("ok");
  w.Key("millis");
  w.Number(millis);
  w.Key("correspondences");
  w.BeginArray();
  for (const Correspondence& c : result.correspondences) {
    w.BeginObject();
    w.Key("left");
    WriteNames(&w, c.events1);
    w.Key("right");
    WriteNames(&w, c.events2);
    w.Key("similarity");
    w.Number(c.similarity);
    w.EndObject();
  }
  w.EndArray();
  w.Key("ems");
  w.BeginObject();
  w.Key("iterations");
  w.Int(result.ems_stats.iterations);
  w.Key("formula_evaluations");
  w.Int(static_cast<long long>(result.ems_stats.formula_evaluations +
                               result.composite_stats.formula_evaluations));
  w.EndObject();
  w.EndObject();
  return w.str();
}

}  // namespace

Result<JobRequest> ParseJobRequest(const std::string& line) {
  EMS_ASSIGN_OR_RETURN(JsonValue doc, ParseJson(line));
  if (!doc.is_object()) {
    return Status::InvalidArgument("job request must be a JSON object");
  }
  JobRequest request;
  request.id = doc.GetString("id", "");
  if (request.id.empty()) {
    const JsonValue* id = doc.Find("id");
    if (id != nullptr && id->is_number()) {
      request.id = std::to_string(id->GetInt("", 0));
    }
  }
  request.log1 = doc.GetString("log1", "");
  request.log2 = doc.GetString("log2", "");
  if (request.log1.empty() || request.log2.empty()) {
    return Status::InvalidArgument("job needs 'log1' and 'log2' paths");
  }
  request.format = doc.GetString("format", "auto");
  EMS_RETURN_NOT_OK(ParseMatchOptions(doc, &request.options));
  return request;
}

namespace {

std::optional<store::ArtifactStore> OpenStore(const ServiceOptions& options) {
  if (options.cache_dir.empty()) return std::nullopt;
  store::ArtifactStoreOptions store_options;
  store_options.dir = options.cache_dir;
  store_options.max_bytes = options.cache_dir_bytes;
  store_options.obs = options.obs;
  Result<store::ArtifactStore> opened =
      store::ArtifactStore::Open(std::move(store_options));
  if (!opened.ok()) {
    // An unusable cache directory must not take the service down; it
    // just runs cold.
    ObsIncrement(options.obs, "store.open_errors");
    return std::nullopt;
  }
  return std::move(opened).value();
}

}  // namespace

BatchMatchService::BatchMatchService(const ServiceOptions& options)
    : options_(options),
      pool_(PoolOptions(options)),
      store_(OpenStore(options)),
      cache_(options.cache_capacity, options.obs, artifact_store(),
             options.cache_byte_budget) {}

std::string BatchMatchService::HandleJobLine(const std::string& line) {
  ObsIncrement(options_.obs, "serve.jobs_submitted");
  Result<JobRequest> request = ParseJobRequest(line);
  if (!request.ok()) {
    ObsIncrement(options_.obs, "serve.jobs_failed");
    return RenderError("", request.status());
  }
  if (cancel_.cancelled()) {
    ObsIncrement(options_.obs, "serve.jobs_failed");
    return RenderError(request->id,
                       Status::Cancelled("service shutting down"));
  }
  Timer timer;
  Result<std::shared_ptr<const EventLog>> log1 =
      cache_.GetOrLoad(request->log1, request->format);
  if (!log1.ok()) {
    ObsIncrement(options_.obs, "serve.jobs_failed");
    return RenderError(request->id, log1.status());
  }
  Result<std::shared_ptr<const EventLog>> log2 =
      cache_.GetOrLoad(request->log2, request->format);
  if (!log2.ok()) {
    ObsIncrement(options_.obs, "serve.jobs_failed");
    return RenderError(request->id, log2.status());
  }
  // Jobs parallelize across the pool, so each matching runs
  // single-threaded inside its worker (nested ParallelFor on the same
  // pool would degrade to inline execution anyway).
  Matcher matcher(request->options);
  Result<MatchResult> result = matcher.Match(**log1, **log2);
  const double millis = timer.ElapsedMillis();
  if (!result.ok()) {
    ObsIncrement(options_.obs, "serve.jobs_failed");
    return RenderError(request->id, result.status());
  }
  ObsIncrement(options_.obs, "serve.jobs_ok");
  ObsObserve(options_.obs, "serve.job_millis", millis);
  return RenderResult(request->id, *result, millis);
}

size_t BatchMatchService::RunStream(std::istream& in, std::ostream& out) {
  std::mutex out_mu;
  size_t jobs = 0;
  exec::TaskGroup group(&pool_, cancel_.token());
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (cancel_.cancelled()) break;
    ++jobs;
    group.Run([this, &out, &out_mu, line]() -> Status {
      std::string result = HandleJobLine(line);
      std::lock_guard<std::mutex> lock(out_mu);
      out << result << "\n";
      out.flush();
      return Status::OK();
    });
  }
  (void)group.Wait();
  return jobs;
}

}  // namespace serve
}  // namespace ems
