#include "serve/service.h"

#include <istream>
#include <mutex>
#include <ostream>

#include "exec/parallel.h"
#include "obs/context.h"
#include "util/json_parser.h"
#include "util/json_writer.h"
#include "util/log.h"
#include "util/timer.h"

namespace ems {
namespace serve {

namespace {

exec::ThreadPoolOptions PoolOptions(const ServiceOptions& options) {
  exec::ThreadPoolOptions pool;
  pool.num_threads = options.threads;
  pool.queue_capacity = options.queue_capacity;
  pool.obs = options.obs;
  return pool;
}

Status ParseMatchOptions(const JsonValue& job, MatchOptions* out) {
  const std::string labels = job.GetString("labels", "qgram");
  if (labels == "none") out->label_measure = LabelMeasure::kNone;
  else if (labels == "qgram") out->label_measure = LabelMeasure::kQGramCosine;
  else if (labels == "levenshtein") {
    out->label_measure = LabelMeasure::kLevenshtein;
  } else if (labels == "jaro") {
    out->label_measure = LabelMeasure::kJaroWinkler;
  } else if (labels == "tokens") {
    out->label_measure = LabelMeasure::kTokenJaccard;
  } else {
    return Status::InvalidArgument("unknown label measure '" + labels + "'");
  }
  out->ems.alpha = job.GetNumber(
      "alpha", out->label_measure == LabelMeasure::kNone ? 1.0 : 0.5);
  if (out->ems.alpha < 0.0 || out->ems.alpha > 1.0) {
    return Status::InvalidArgument("alpha must be in [0, 1]");
  }
  out->ems.c = job.GetNumber("c", 0.8);
  if (out->ems.c <= 0.0 || out->ems.c >= 1.0) {
    return Status::InvalidArgument("c must be in (0, 1)");
  }
  const std::string engine = job.GetString("engine", "exact");
  if (engine == "exact") out->engine = SimilarityEngine::kExact;
  else if (engine == "estimated") out->engine = SimilarityEngine::kEstimated;
  else return Status::InvalidArgument("unknown engine '" + engine + "'");
  out->estimation_iterations = job.GetInt("iterations", 5);
  out->match_composites = job.GetBool("composites", false);
  out->composite.delta = job.GetNumber("delta", out->composite.delta);
  const std::string selection = job.GetString("selection", "hungarian");
  if (selection == "hungarian") {
    out->selection = SelectionStrategy::kMaxTotalSimilarity;
  } else if (selection == "greedy") {
    out->selection = SelectionStrategy::kGreedy;
  } else if (selection == "mutual") {
    out->selection = SelectionStrategy::kMutualBest;
  } else {
    return Status::InvalidArgument("unknown selection '" + selection + "'");
  }
  out->min_match_similarity =
      job.GetNumber("min_similarity", out->min_match_similarity);
  out->min_edge_frequency =
      job.GetNumber("min_edge_frequency", out->min_edge_frequency);
  return Status::OK();
}

void WriteNames(JsonWriter* w, const std::vector<std::string>& names) {
  w->BeginArray();
  for (const std::string& n : names) w->String(n);
  w->EndArray();
}

std::string RenderError(const std::string& id, const Status& status) {
  JsonWriter w;
  w.BeginObject();
  w.Key("id");
  w.String(id);
  w.Key("status");
  w.String("error");
  w.Key("code");
  w.String(StatusCodeToString(status.code()));
  w.Key("error");
  w.String(status.message());
  w.EndObject();
  return w.str();
}

std::string RenderResult(const std::string& id, const MatchResult& result,
                         double millis) {
  JsonWriter w;
  w.BeginObject();
  w.Key("id");
  w.String(id);
  w.Key("status");
  w.String("ok");
  w.Key("millis");
  w.Number(millis);
  w.Key("correspondences");
  w.BeginArray();
  for (const Correspondence& c : result.correspondences) {
    w.BeginObject();
    w.Key("left");
    WriteNames(&w, c.events1);
    w.Key("right");
    WriteNames(&w, c.events2);
    w.Key("similarity");
    w.Number(c.similarity);
    w.EndObject();
  }
  w.EndArray();
  w.Key("ems");
  w.BeginObject();
  w.Key("iterations");
  w.Int(result.ems_stats.iterations);
  w.Key("formula_evaluations");
  w.Int(static_cast<long long>(result.ems_stats.formula_evaluations +
                               result.composite_stats.formula_evaluations));
  w.EndObject();
  w.EndObject();
  return w.str();
}

}  // namespace

Result<JobRequest> ParseJobRequest(const std::string& line) {
  EMS_ASSIGN_OR_RETURN(JsonValue doc, ParseJson(line));
  if (!doc.is_object()) {
    return Status::InvalidArgument("job request must be a JSON object");
  }
  JobRequest request;
  request.id = doc.GetString("id", "");
  if (request.id.empty()) {
    const JsonValue* id = doc.Find("id");
    if (id != nullptr && id->is_number()) {
      request.id = std::to_string(id->GetInt("", 0));
    }
  }
  request.log1 = doc.GetString("log1", "");
  request.log2 = doc.GetString("log2", "");
  if (request.log1.empty() || request.log2.empty()) {
    return Status::InvalidArgument("job needs 'log1' and 'log2' paths");
  }
  request.format = doc.GetString("format", "auto");
  EMS_RETURN_NOT_OK(ParseMatchOptions(doc, &request.options));
  return request;
}

namespace {

std::optional<store::ArtifactStore> OpenStore(const ServiceOptions& options) {
  if (options.cache_dir.empty()) return std::nullopt;
  store::ArtifactStoreOptions store_options;
  store_options.dir = options.cache_dir;
  store_options.max_bytes = options.cache_dir_bytes;
  store_options.obs = options.obs;
  Result<store::ArtifactStore> opened =
      store::ArtifactStore::Open(std::move(store_options));
  if (!opened.ok()) {
    // An unusable cache directory must not take the service down; it
    // just runs cold.
    ObsIncrement(options.obs, "store.open_errors");
    LogWarn("cache directory unusable, serving cold: " +
            opened.status().message());
    return std::nullopt;
  }
  return std::move(opened).value();
}

ServiceOptions WithEffectiveObs(const ServiceOptions& options,
                                ObsContext* owned) {
  ServiceOptions effective = options;
  if (effective.obs == nullptr) effective.obs = owned;
  return effective;
}

// Admin command of a parsed line, or empty when it is a match job.
std::string AdminCommandOf(const JsonValue& doc) {
  return doc.is_object() ? doc.GetString("cmd", "") : "";
}

}  // namespace

BatchMatchService::BatchMatchService(const ServiceOptions& options)
    : owned_obs_(options.obs == nullptr && options.telemetry
                     ? std::make_unique<ObsContext>()
                     : nullptr),
      options_(WithEffectiveObs(options, owned_obs_.get())),
      pool_(PoolOptions(options_)),
      store_(OpenStore(options_)),
      cache_(options_.cache_capacity, options_.obs, artifact_store(),
             options_.cache_byte_budget),
      flight_(options_.telemetry
                  ? std::make_unique<FlightRecorder>(
                        options_.flight_slow_capacity,
                        options_.flight_failed_capacity)
                  : nullptr) {}

BatchMatchService::~BatchMatchService() = default;

std::string BatchMatchService::HandleJobLine(const std::string& line) {
  Result<JsonValue> doc = ParseJson(line);
  if (doc.ok()) {
    const std::string cmd = AdminCommandOf(*doc);
    if (!cmd.empty()) {
      return HandleAdminCommand(cmd, doc->GetString("id", ""));
    }
  }
  return HandleMatchJob(line);
}

std::string BatchMatchService::HandleMatchJob(const std::string& line) {
  ObsIncrement(options_.obs, "serve.jobs_submitted");
  jobs_in_flight_.fetch_add(1, std::memory_order_relaxed);
  Timer timer;

  // Every job gets a request id — the client's, or an assigned req-N —
  // propagated into the job's span tree and the flight recorder.
  Result<JobRequest> request = ParseJobRequest(line);
  std::string request_id;
  if (request.ok() && !request->id.empty()) {
    request_id = request->id;
  } else {
    request_id =
        "req-" +
        std::to_string(next_request_seq_.fetch_add(1,
                                                   std::memory_order_relaxed));
  }

  // The per-job trace is private to the request (the shared registry
  // would interleave concurrent jobs); its span snapshot lands in the
  // flight recorder at completion.
  std::unique_ptr<ObsContext> job_obs;
  if (flight_ != nullptr) job_obs = std::make_unique<ObsContext>();
  ScopedSpan request_span(job_obs.get(), "request:" + request_id);

  Status failure = Status::OK();
  std::string rendered;
  if (!request.ok()) {
    failure = request.status();
    rendered = RenderError(request_id, failure);
  } else if (cancel_.cancelled()) {
    failure = Status::Cancelled("service shutting down");
    rendered = RenderError(request_id, failure);
  } else {
    if (job_obs != nullptr) {
      request->options.obs.context = job_obs.get();
    }
    ScopedSpan load_span(job_obs.get(), "load_logs");
    Result<std::shared_ptr<const EventLog>> log1 =
        cache_.GetOrLoad(request->log1, request->format);
    Result<std::shared_ptr<const EventLog>> log2 =
        log1.ok() ? cache_.GetOrLoad(request->log2, request->format)
                  : Result<std::shared_ptr<const EventLog>>(log1.status());
    load_span.End();
    if (!log1.ok()) {
      failure = log1.status();
    } else if (!log2.ok()) {
      failure = log2.status();
    } else {
      // Jobs parallelize across the pool, so each matching runs
      // single-threaded inside its worker (nested ParallelFor on the
      // same pool would degrade to inline execution anyway).
      Matcher matcher(request->options);
      Result<MatchResult> result = matcher.Match(**log1, **log2);
      if (result.ok()) {
        rendered = RenderResult(request_id, *result, timer.ElapsedMillis());
      } else {
        failure = result.status();
      }
    }
    if (!failure.ok()) rendered = RenderError(request_id, failure);
  }
  request_span.End();

  const double millis = timer.ElapsedMillis();
  const bool ok = failure.ok();
  ObsIncrement(options_.obs, ok ? "serve.jobs_ok" : "serve.jobs_failed");
  ObsObserve(options_.obs, "serve.job_millis", millis);
  // Per-outcome latency quantiles: the stats command's p50/p90/p99.
  ObsObserveQuantile(options_.obs,
                     ok ? "serve.latency_ms.ok" : "serve.latency_ms.error",
                     millis);
  if (flight_ != nullptr) {
    FlightRecord record;
    record.request_id = request_id;
    record.outcome = ok ? "ok" : "error";
    record.error = failure.message();
    record.millis = millis;
    record.spans = job_obs->trace.Snapshot();
    flight_->Record(std::move(record));
  }
  if (!ok && LogEnabled(LogLevel::kInfo)) {
    LogInfo("job " + request_id + " failed: " + failure.message());
  }
  jobs_in_flight_.fetch_sub(1, std::memory_order_relaxed);
  return rendered;
}

std::string BatchMatchService::HandleAdminCommand(const std::string& cmd,
                                                  const std::string& id) {
  ObsIncrement(options_.obs, "serve.admin_commands");
  if (cmd == "stats") return RenderStats(id);
  if (cmd == "health") return RenderHealth(id);
  if (cmd == "slow") return RenderSlow(id);
  return RenderError(id,
                     Status::InvalidArgument(
                         "unknown cmd '" + cmd + "' (stats|health|slow)"));
}

std::string BatchMatchService::RenderStats(const std::string& id) {
  JsonWriter w;
  w.BeginObject();
  w.Key("id");
  w.String(id);
  w.Key("status");
  w.String("ok");
  w.Key("cmd");
  w.String("stats");
  w.Key("uptime_seconds");
  w.Number(UptimeSeconds());
  if (options_.obs != nullptr) {
    MetricsSnapshot snapshot = CaptureMetricsSnapshot(options_.obs->metrics);
    std::map<std::string, double> rates;
    double interval = 0.0;
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      if (has_last_stats_) {
        rates = DiffRates(last_stats_, snapshot);
        interval = snapshot.at_seconds - last_stats_.at_seconds;
      }
      last_stats_ = snapshot;
      has_last_stats_ = true;
    }
    w.Key("snapshot");
    snapshot.WriteJson(&w);
    w.Key("interval_seconds");
    w.Number(interval);
    w.Key("rates");
    w.BeginObject();
    for (const auto& [name, rate] : rates) {
      w.Key(name);
      w.Number(rate);
    }
    w.EndObject();
  }
  w.Key("cache");
  w.BeginObject();
  w.Key("entries");
  w.Int(static_cast<long long>(cache_.size()));
  w.Key("bytes");
  w.Int(static_cast<long long>(cache_.cost_bytes()));
  w.Key("hits");
  w.Int(static_cast<long long>(cache_.hits()));
  w.Key("misses");
  w.Int(static_cast<long long>(cache_.misses()));
  w.EndObject();
  w.Key("pool");
  w.BeginObject();
  w.Key("threads");
  w.Int(pool_.num_threads());
  w.Key("queue_depth");
  w.Int(static_cast<long long>(pool_.QueueDepth()));
  w.Key("queue_capacity");
  w.Int(static_cast<long long>(options_.queue_capacity));
  w.Key("jobs_in_flight");
  w.Int(jobs_in_flight_.load(std::memory_order_relaxed));
  w.EndObject();
  w.EndObject();
  return w.str();
}

std::string BatchMatchService::RenderHealth(const std::string& id) {
  const size_t depth = pool_.QueueDepth();
  JsonWriter w;
  w.BeginObject();
  w.Key("id");
  w.String(id);
  w.Key("status");
  w.String("ok");
  w.Key("cmd");
  w.String("health");
  w.Key("healthy");
  w.Bool(!cancel_.cancelled());
  w.Key("draining");
  w.Bool(cancel_.cancelled());
  w.Key("uptime_seconds");
  w.Number(UptimeSeconds());
  w.Key("queue_depth");
  w.Int(static_cast<long long>(depth));
  w.Key("queue_capacity");
  w.Int(static_cast<long long>(options_.queue_capacity));
  w.Key("threads");
  w.Int(pool_.num_threads());
  w.Key("jobs_in_flight");
  w.Int(jobs_in_flight_.load(std::memory_order_relaxed));
  w.EndObject();
  return w.str();
}

std::string BatchMatchService::RenderSlow(const std::string& id) {
  JsonWriter w;
  w.BeginObject();
  w.Key("id");
  w.String(id);
  w.Key("status");
  w.String("ok");
  w.Key("cmd");
  w.String("slow");
  w.Key("flight_recorder");
  if (flight_ != nullptr) {
    flight_->WriteJson(&w);
  } else {
    w.Null();
  }
  w.EndObject();
  return w.str();
}

size_t BatchMatchService::RunStream(std::istream& in, std::ostream& out) {
  std::mutex out_mu;
  size_t lines = 0;
  exec::TaskGroup group(&pool_, cancel_.token());
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (cancel_.cancelled()) break;
    ++lines;
    // Admin probes answer from the reader thread: a queue full of match
    // jobs must never delay a stats/health scrape.
    Result<JsonValue> doc = ParseJson(line);
    if (doc.ok()) {
      const std::string cmd = AdminCommandOf(*doc);
      if (!cmd.empty()) {
        std::string result =
            HandleAdminCommand(cmd, doc->GetString("id", ""));
        std::lock_guard<std::mutex> lock(out_mu);
        out << result << "\n";
        out.flush();
        continue;
      }
    }
    group.Run([this, &out, &out_mu, line]() -> Status {
      std::string result = HandleJobLine(line);
      std::lock_guard<std::mutex> lock(out_mu);
      out << result << "\n";
      out.flush();
      return Status::OK();
    });
  }
  (void)group.Wait();
  return lines;
}

}  // namespace serve
}  // namespace ems
