#include "serve/service.h"

#include <cstring>
#include <istream>
#include <mutex>
#include <ostream>

#include "exec/parallel.h"
#include "index/corpus_io.h"
#include "index/topk_scheduler.h"
#include "obs/context.h"
#include "util/json_parser.h"
#include "util/json_writer.h"
#include "util/log.h"
#include "util/timer.h"

namespace ems {
namespace serve {

namespace {

exec::ThreadPoolOptions PoolOptions(const ServiceOptions& options) {
  exec::ThreadPoolOptions pool;
  pool.num_threads = options.threads;
  pool.queue_capacity = options.queue_capacity;
  pool.obs = options.obs;
  return pool;
}

Status ParseMatchOptions(const JsonValue& job, MatchOptions* out) {
  const std::string labels = job.GetString("labels", "qgram");
  if (labels == "none") out->label_measure = LabelMeasure::kNone;
  else if (labels == "qgram") out->label_measure = LabelMeasure::kQGramCosine;
  else if (labels == "levenshtein") {
    out->label_measure = LabelMeasure::kLevenshtein;
  } else if (labels == "jaro") {
    out->label_measure = LabelMeasure::kJaroWinkler;
  } else if (labels == "tokens") {
    out->label_measure = LabelMeasure::kTokenJaccard;
  } else {
    return Status::InvalidArgument("unknown label measure '" + labels + "'");
  }
  out->ems.alpha = job.GetNumber(
      "alpha", out->label_measure == LabelMeasure::kNone ? 1.0 : 0.5);
  if (out->ems.alpha < 0.0 || out->ems.alpha > 1.0) {
    return Status::InvalidArgument("alpha must be in [0, 1]");
  }
  out->ems.c = job.GetNumber("c", 0.8);
  if (out->ems.c <= 0.0 || out->ems.c >= 1.0) {
    return Status::InvalidArgument("c must be in (0, 1)");
  }
  const std::string engine = job.GetString("engine", "exact");
  if (engine == "exact") out->engine = SimilarityEngine::kExact;
  else if (engine == "estimated") out->engine = SimilarityEngine::kEstimated;
  else return Status::InvalidArgument("unknown engine '" + engine + "'");
  out->estimation_iterations = job.GetInt("iterations", 5);
  out->match_composites = job.GetBool("composites", false);
  out->composite.delta = job.GetNumber("delta", out->composite.delta);
  const std::string selection = job.GetString("selection", "hungarian");
  if (selection == "hungarian") {
    out->selection = SelectionStrategy::kMaxTotalSimilarity;
  } else if (selection == "greedy") {
    out->selection = SelectionStrategy::kGreedy;
  } else if (selection == "mutual") {
    out->selection = SelectionStrategy::kMutualBest;
  } else {
    return Status::InvalidArgument("unknown selection '" + selection + "'");
  }
  out->min_match_similarity =
      job.GetNumber("min_similarity", out->min_match_similarity);
  out->min_edge_frequency =
      job.GetNumber("min_edge_frequency", out->min_edge_frequency);
  // Probabilistic matching (src/prob/): {"prob":true} switches the job
  // to EM posterior selection; the knobs mirror ems_match's --prob-*.
  out->prob.enabled = job.GetBool("prob", false);
  out->prob.temperature = job.GetNumber("prob_temp", out->prob.temperature);
  if (out->prob.temperature <= 0.0) {
    return Status::InvalidArgument("prob_temp must be > 0");
  }
  out->prob.rtole = job.GetNumber("prob_tol", out->prob.rtole);
  if (out->prob.rtole <= 0.0) {
    return Status::InvalidArgument("prob_tol must be > 0");
  }
  out->prob.max_iterations = job.GetInt("prob_iters", out->prob.max_iterations);
  if (out->prob.max_iterations < 1) {
    return Status::InvalidArgument("prob_iters must be >= 1");
  }
  out->prob.min_confidence =
      job.GetNumber("prob_min_confidence", out->prob.min_confidence);
  if (out->prob.min_confidence < 0.0 || out->prob.min_confidence > 1.0) {
    return Status::InvalidArgument("prob_min_confidence must be in [0, 1]");
  }
  return Status::OK();
}

void WriteNames(JsonWriter* w, const std::vector<std::string>& names) {
  w->BeginArray();
  for (const std::string& n : names) w->String(n);
  w->EndArray();
}

std::string RenderError(const std::string& id, const Status& status) {
  JsonWriter w;
  w.BeginObject();
  w.Key("id");
  w.String(id);
  w.Key("status");
  w.String("error");
  w.Key("code");
  w.String(StatusCodeToString(status.code()));
  w.Key("error");
  w.String(status.message());
  w.EndObject();
  return w.str();
}

std::string RenderResult(const std::string& id, const MatchResult& result,
                         double millis) {
  JsonWriter w;
  w.BeginObject();
  w.Key("id");
  w.String(id);
  w.Key("status");
  w.String("ok");
  w.Key("millis");
  w.Number(millis);
  w.Key("correspondences");
  w.BeginArray();
  for (const Correspondence& c : result.correspondences) {
    w.BeginObject();
    w.Key("left");
    WriteNames(&w, c.events1);
    w.Key("right");
    WriteNames(&w, c.events2);
    w.Key("similarity");
    w.Number(c.similarity);
    // Calibrated confidence exists only on prob jobs; omitting the key
    // otherwise keeps non-prob responses byte-identical to older builds.
    if (result.soft.has_value()) {
      w.Key("confidence");
      w.Number(c.confidence);
    }
    w.EndObject();
  }
  w.EndArray();
  w.Key("ems");
  w.BeginObject();
  w.Key("iterations");
  w.Int(result.ems_stats.iterations);
  w.Key("formula_evaluations");
  w.Int(static_cast<long long>(result.ems_stats.formula_evaluations +
                               result.composite_stats.formula_evaluations));
  w.EndObject();
  if (result.soft.has_value()) {
    const prob::EmStats& em = result.soft->stats;
    w.Key("prob");
    w.BeginObject();
    w.Key("iterations");
    w.Int(em.iterations);
    w.Key("converged");
    w.Bool(em.converged);
    w.Key("final_delta");
    w.Number(em.final_delta);
    w.Key("mean_entropy");
    w.Number(em.mean_entropy);
    w.EndObject();
  }
  w.EndObject();
  return w.str();
}

// Service-wide prob.* rollup (the per-job obs context the engine writes
// into is private to the request and discarded with it).
void RecordProbMetrics(ObsContext* obs, const MatchResult& result) {
  if (obs == nullptr || !result.soft.has_value()) return;
  ObsIncrement(obs, "prob.runs");
  ObsIncrement(obs, "prob.iterations",
               static_cast<uint64_t>(result.soft->stats.iterations));
  if (result.soft->stats.converged) ObsIncrement(obs, "prob.converged_runs");
  for (double h : result.soft->row_entropy) {
    ObsObserveQuantile(obs, "prob.posterior_entropy", h);
  }
}

// An append result is a match result plus the streaming report: what the
// batch changed and what the warm start saved.
std::string RenderAppendResult(const std::string& id,
                               const StreamAppendOutcome& outcome,
                               double millis) {
  std::string base = RenderResult(id, outcome.match, millis);
  // Splice the "stream" object before the closing brace of the match
  // rendering, keeping the two renderers from drifting apart.
  base.pop_back();  // '}'
  JsonWriter w;
  w.BeginObject();
  w.Key("appended_traces");
  w.Int(static_cast<long long>(outcome.graph_stats.appended_traces));
  w.Key("total_traces");
  w.Int(static_cast<long long>(outcome.total_traces));
  w.Key("new_events");
  w.Int(static_cast<long long>(outcome.new_events));
  w.Key("new_nodes");
  w.Int(static_cast<long long>(outcome.graph_stats.new_nodes));
  w.Key("added_edges");
  w.Int(static_cast<long long>(outcome.graph_stats.added_edges));
  w.Key("removed_edges");
  w.Int(static_cast<long long>(outcome.graph_stats.removed_edges));
  w.Key("distance_rows_invalidated");
  w.Int(static_cast<long long>(
      outcome.graph_stats.distance_rows_invalidated));
  w.Key("warm");
  w.Bool(outcome.match_stats.warm);
  w.Key("iterations");
  w.Int(outcome.match_stats.iterations);
  w.Key("iterations_saved");
  w.Int(outcome.match_stats.iterations_saved);
  w.Key("session_created");
  w.Bool(outcome.session_created);
  w.Key("resumed_from_store");
  w.Bool(outcome.resumed_from_store);
  w.EndObject();
  return base + ",\"stream\":" + w.str() + "}";
}

// The exact IEEE-754 bits of a score, as a hex string. JSON numbers pass
// through the parser as double, so a 64-bit integer would lose its low
// bits on the way back in; a string round-trips exactly, which is what
// lets the sharded router merge per-shard rankings losslessly.
std::string ScoreBitsHex(double score) {
  static_assert(sizeof(unsigned long long) == sizeof(double),
                "bit-cast width");
  unsigned long long bits = 0;
  std::memcpy(&bits, &score, sizeof(bits));
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%llx", bits);
  return buf;
}

std::string RenderTopKResult(const std::string& id, const TopKRequest& request,
                             const std::vector<index::TopKHit>& hits,
                             const index::TopKStats& stats, double millis) {
  JsonWriter w;
  w.BeginObject();
  w.Key("id");
  w.String(id);
  w.Key("status");
  w.String("ok");
  w.Key("millis");
  w.Number(millis);
  w.Key("k");
  w.Int(static_cast<long long>(request.k));
  w.Key("hits");
  w.BeginArray();
  for (size_t i = 0; i < hits.size(); ++i) {
    const index::TopKHit& hit = hits[i];
    w.BeginObject();
    w.Key("member");
    w.String(hit.name);
    w.Key("rank");
    w.Int(static_cast<long long>(i + 1));
    w.Key("score");
    w.Number(hit.score);
    w.Key("score_bits");
    w.String(ScoreBitsHex(hit.score));
    w.Key("correspondences");
    w.Int(static_cast<long long>(hit.match.correspondences.size()));
    w.EndObject();
  }
  w.EndArray();
  w.Key("index");
  w.BeginObject();
  w.Key("candidates_retrieved");
  w.Int(static_cast<long long>(stats.candidates_retrieved));
  w.Key("pruned_by_bound");
  w.Int(static_cast<long long>(stats.pruned_by_bound));
  w.Key("exact_runs");
  w.Int(static_cast<long long>(stats.exact_runs));
  w.Key("aborted_runs");
  w.Int(static_cast<long long>(stats.aborted_runs));
  w.Key("brute_force");
  w.Bool(stats.used_brute_force);
  w.EndObject();
  w.EndObject();
  return w.str();
}

}  // namespace

Result<JobRequest> ParseJobRequest(const std::string& line) {
  EMS_ASSIGN_OR_RETURN(JsonValue doc, ParseJson(line));
  if (!doc.is_object()) {
    return Status::InvalidArgument("job request must be a JSON object");
  }
  JobRequest request;
  request.id = doc.GetString("id", "");
  if (request.id.empty()) {
    const JsonValue* id = doc.Find("id");
    if (id != nullptr && id->is_number()) {
      request.id = std::to_string(id->GetInt("", 0));
    }
  }
  request.log1 = doc.GetString("log1", "");
  request.log2 = doc.GetString("log2", "");
  if (request.log1.empty() || request.log2.empty()) {
    return Status::InvalidArgument("job needs 'log1' and 'log2' paths");
  }
  request.format = doc.GetString("format", "auto");
  EMS_RETURN_NOT_OK(ParseMatchOptions(doc, &request.options));
  return request;
}

Result<AppendRequest> ParseAppendRequest(const std::string& line) {
  EMS_ASSIGN_OR_RETURN(JsonValue doc, ParseJson(line));
  if (!doc.is_object()) {
    return Status::InvalidArgument("append request must be a JSON object");
  }
  AppendRequest request;
  request.id = doc.GetString("id", "");
  request.log1 = doc.GetString("log1", "");
  request.log2 = doc.GetString("log2", "");
  if (request.log1.empty() || request.log2.empty()) {
    return Status::InvalidArgument("append needs 'log1' and 'log2' paths");
  }
  request.format = doc.GetString("format", "auto");
  request.delta = doc.GetString("delta", "");
  const JsonValue* traces = doc.Find("traces");
  if (traces != nullptr) {
    if (!traces->is_array()) {
      return Status::InvalidArgument(
          "'traces' must be an array of arrays of event names");
    }
    for (const JsonValue& trace : traces->array_items()) {
      if (!trace.is_array()) {
        return Status::InvalidArgument("each appended trace must be an array");
      }
      std::vector<std::string> names;
      names.reserve(trace.array_items().size());
      for (const JsonValue& event : trace.array_items()) {
        if (!event.is_string()) {
          return Status::InvalidArgument("trace events must be strings");
        }
        names.push_back(event.string_value());
      }
      request.traces.push_back(std::move(names));
    }
  }
  EMS_RETURN_NOT_OK(ParseMatchOptions(doc, &request.options));
  return request;
}

bool IsTopKRequest(const JsonValue& doc) {
  return doc.is_object() && doc.Find("query") != nullptr;
}

Result<TopKRequest> ParseTopKRequest(const std::string& line) {
  EMS_ASSIGN_OR_RETURN(JsonValue doc, ParseJson(line));
  if (!doc.is_object()) {
    return Status::InvalidArgument("topk request must be a JSON object");
  }
  TopKRequest request;
  request.id = doc.GetString("id", "");
  request.query = doc.GetString("query", "");
  if (request.query.empty()) {
    return Status::InvalidArgument("topk request needs a 'query' log path");
  }
  const int k = doc.GetInt("topk", 5);
  if (k < 0) return Status::InvalidArgument("'topk' must be >= 0");
  request.k = static_cast<size_t>(k);
  const JsonValue* members = doc.Find("members");
  request.corpus = doc.GetString("corpus", "");
  if ((members != nullptr) == !request.corpus.empty()) {
    return Status::InvalidArgument(
        "topk request needs exactly one of 'members' or 'corpus'");
  }
  if (members != nullptr) {
    if (!members->is_array() || members->array_items().empty()) {
      return Status::InvalidArgument(
          "'members' must be a non-empty array of log paths");
    }
    for (const JsonValue& item : members->array_items()) {
      if (!item.is_string() || item.string_value().empty()) {
        return Status::InvalidArgument("'members' entries must be paths");
      }
      request.members.push_back(item.string_value());
    }
  }
  request.format = doc.GetString("format", "auto");
  request.brute_force = doc.GetBool("brute_force", false);
  EMS_RETURN_NOT_OK(ParseMatchOptions(doc, &request.options));
  return request;
}

namespace {

std::optional<store::ArtifactStore> OpenStore(const ServiceOptions& options) {
  if (options.cache_dir.empty()) return std::nullopt;
  store::ArtifactStoreOptions store_options;
  store_options.dir = options.cache_dir;
  store_options.max_bytes = options.cache_dir_bytes;
  store_options.obs = options.obs;
  Result<store::ArtifactStore> opened =
      store::ArtifactStore::Open(std::move(store_options));
  if (!opened.ok()) {
    // An unusable cache directory must not take the service down; it
    // just runs cold.
    ObsIncrement(options.obs, "store.open_errors");
    LogWarn("cache directory unusable, serving cold: " +
            opened.status().message());
    return std::nullopt;
  }
  return std::move(opened).value();
}

ServiceOptions WithEffectiveObs(const ServiceOptions& options,
                                ObsContext* owned) {
  ServiceOptions effective = options;
  if (effective.obs == nullptr) effective.obs = owned;
  return effective;
}

// Admin command of a parsed line, or empty when it is a match job.
std::string AdminCommandOf(const JsonValue& doc) {
  return doc.is_object() ? doc.GetString("cmd", "") : "";
}

}  // namespace

BatchMatchService::BatchMatchService(const ServiceOptions& options)
    : owned_obs_(options.obs == nullptr && options.telemetry
                     ? std::make_unique<ObsContext>()
                     : nullptr),
      options_(WithEffectiveObs(options, owned_obs_.get())),
      pool_(PoolOptions(options_)),
      store_(OpenStore(options_)),
      cache_(options_.cache_capacity, options_.obs, artifact_store(),
             options_.cache_byte_budget),
      stream_sessions_(artifact_store(), options_.obs),
      flight_(options_.telemetry
                  ? std::make_unique<FlightRecorder>(
                        options_.flight_slow_capacity,
                        options_.flight_failed_capacity)
                  : nullptr) {}

BatchMatchService::~BatchMatchService() = default;

std::string BatchMatchService::HandleJobLine(const std::string& line) {
  Result<JsonValue> doc = ParseJson(line);
  if (doc.ok()) {
    const std::string cmd = AdminCommandOf(*doc);
    if (cmd == "append") return HandleAppendJob(line);
    if (!cmd.empty()) {
      return HandleAdminCommand(cmd, doc->GetString("id", ""));
    }
    if (IsTopKRequest(*doc)) return HandleTopKJob(line);
  }
  return HandleMatchJob(line);
}

Result<std::shared_ptr<const index::CorpusIndex>>
BatchMatchService::GetOrBuildCorpus(const std::vector<std::string>& members,
                                    const std::string& format,
                                    const MatchOptions& options) {
  index::CorpusLoadOptions load;
  load.format = format;
  load.index.min_edge_frequency = options.min_edge_frequency;
  load.index.obs = options_.obs;
  load.store = artifact_store();

  EMS_ASSIGN_OR_RETURN(store::ArtifactKey key,
                       index::CorpusKeyForFiles(members, load));
  const std::string cache_key = std::to_string(key.content_hash) + "/" +
                                std::to_string(key.fingerprint);
  {
    std::lock_guard<std::mutex> lock(corpus_mu_);
    for (size_t i = 0; i < corpus_cache_.size(); ++i) {
      if (corpus_cache_[i].key != cache_key) continue;
      CorpusCacheEntry hit = corpus_cache_[i];
      corpus_cache_.erase(corpus_cache_.begin() + static_cast<long>(i));
      corpus_cache_.push_back(hit);
      ObsIncrement(options_.obs, "serve.corpus_cache.hits");
      return hit.index;
    }
  }
  ObsIncrement(options_.obs, "serve.corpus_cache.misses");

  // Built outside the lock: concurrent first queries may build twice,
  // which wastes work but never correctness — both builds are identical.
  EMS_ASSIGN_OR_RETURN(index::CorpusIndex built,
                       index::LoadCorpusFromFiles(members, load));
  auto shared =
      std::make_shared<const index::CorpusIndex>(std::move(built));
  {
    std::lock_guard<std::mutex> lock(corpus_mu_);
    corpus_cache_.push_back(CorpusCacheEntry{cache_key, shared});
    if (corpus_cache_.size() > kCorpusCacheCapacity) {
      corpus_cache_.erase(corpus_cache_.begin());
    }
  }
  return shared;
}

std::string BatchMatchService::HandleTopKJob(const std::string& line) {
  ObsIncrement(options_.obs, "serve.jobs_submitted");
  ObsIncrement(options_.obs, "serve.topk_jobs");
  jobs_in_flight_.fetch_add(1, std::memory_order_relaxed);
  Timer timer;

  Result<TopKRequest> request = ParseTopKRequest(line);
  std::string request_id;
  if (request.ok() && !request->id.empty()) {
    request_id = request->id;
  } else {
    request_id =
        "req-" +
        std::to_string(next_request_seq_.fetch_add(1,
                                                   std::memory_order_relaxed));
  }

  std::unique_ptr<ObsContext> job_obs;
  if (flight_ != nullptr) job_obs = std::make_unique<ObsContext>();
  ScopedSpan request_span(job_obs.get(), "topk:" + request_id);

  Status failure = Status::OK();
  std::string rendered;
  if (!request.ok()) {
    failure = request.status();
  } else if (cancel_.cancelled()) {
    failure = Status::Cancelled("service shutting down");
  } else {
    if (job_obs != nullptr) {
      request->options.obs.context = job_obs.get();
    }
    std::vector<std::string> members = request->members;
    if (!request->corpus.empty()) {
      Result<std::vector<std::string>> listed =
          index::ListCorpusFiles(request->corpus);
      if (listed.ok()) {
        members = *std::move(listed);
      } else {
        failure = listed.status();
      }
    }
    if (failure.ok()) {
      ScopedSpan build_span(job_obs.get(), "build_corpus");
      Result<std::shared_ptr<const index::CorpusIndex>> corpus =
          GetOrBuildCorpus(members, request->format, request->options);
      build_span.End();
      Result<std::shared_ptr<const EventLog>> query =
          corpus.ok()
              ? cache_.GetOrLoad(request->query, request->format)
              : Result<std::shared_ptr<const EventLog>>(corpus.status());
      if (!corpus.ok()) {
        failure = corpus.status();
      } else if (!query.ok()) {
        failure = query.status();
      } else {
        index::TopKOptions opts;
        opts.k = request->k;
        opts.match = request->options;
        // Candidate evaluations fan out on the service pool; when this
        // job itself runs on a pool worker (RunStream, shard pools) the
        // nested group degrades to serial inside the worker, which is
        // exactly the per-job parallelism budget match jobs get.
        opts.pool = &pool_;
        opts.obs = options_.obs;  // index.* aggregates service-wide
        opts.force_brute_force = request->brute_force;
        index::TopKScheduler scheduler(**corpus, opts);
        Result<std::vector<index::TopKHit>> hits = scheduler.Query(**query);
        if (hits.ok()) {
          rendered = RenderTopKResult(request_id, *request, *hits,
                                      scheduler.stats(),
                                      timer.ElapsedMillis());
        } else {
          failure = hits.status();
        }
      }
    }
  }
  if (!failure.ok()) rendered = RenderError(request_id, failure);
  request_span.End();

  const double millis = timer.ElapsedMillis();
  const bool ok = failure.ok();
  ObsIncrement(options_.obs, ok ? "serve.jobs_ok" : "serve.jobs_failed");
  ObsObserve(options_.obs, "serve.job_millis", millis);
  ObsObserveQuantile(options_.obs,
                     ok ? "serve.latency_ms.ok" : "serve.latency_ms.error",
                     millis);
  if (flight_ != nullptr) {
    FlightRecord record;
    record.request_id = request_id;
    record.outcome = ok ? "ok" : "error";
    record.error = failure.message();
    record.millis = millis;
    record.spans = job_obs->trace.Snapshot();
    flight_->Record(std::move(record));
  }
  if (!ok && LogEnabled(LogLevel::kInfo)) {
    LogInfo("topk " + request_id + " failed: " + failure.message());
  }
  jobs_in_flight_.fetch_sub(1, std::memory_order_relaxed);
  return rendered;
}

std::string BatchMatchService::HandleMatchJob(const std::string& line) {
  ObsIncrement(options_.obs, "serve.jobs_submitted");
  jobs_in_flight_.fetch_add(1, std::memory_order_relaxed);
  Timer timer;

  // Every job gets a request id — the client's, or an assigned req-N —
  // propagated into the job's span tree and the flight recorder.
  Result<JobRequest> request = ParseJobRequest(line);
  std::string request_id;
  if (request.ok() && !request->id.empty()) {
    request_id = request->id;
  } else {
    request_id =
        "req-" +
        std::to_string(next_request_seq_.fetch_add(1,
                                                   std::memory_order_relaxed));
  }

  // The per-job trace is private to the request (the shared registry
  // would interleave concurrent jobs); its span snapshot lands in the
  // flight recorder at completion.
  std::unique_ptr<ObsContext> job_obs;
  if (flight_ != nullptr) job_obs = std::make_unique<ObsContext>();
  ScopedSpan request_span(job_obs.get(), "request:" + request_id);

  Status failure = Status::OK();
  std::string rendered;
  if (!request.ok()) {
    failure = request.status();
    rendered = RenderError(request_id, failure);
  } else if (cancel_.cancelled()) {
    failure = Status::Cancelled("service shutting down");
    rendered = RenderError(request_id, failure);
  } else {
    if (job_obs != nullptr) {
      request->options.obs.context = job_obs.get();
    }
    // A live streaming session covering this pair is authoritative: its
    // in-memory log carries appended traces the on-disk file (and hence
    // the parsed-log cache) never sees. Consulting it FIRST is what
    // keeps an append-then-match sequence from serving a stale parse.
    std::optional<Result<StreamMatchOutcome>> session_match =
        stream_sessions_.TryMatch(*request, job_obs.get());
    if (session_match.has_value()) {
      if (session_match->ok()) {
        rendered = RenderResult(request_id, (*session_match)->match,
                                timer.ElapsedMillis());
        RecordProbMetrics(options_.obs, (*session_match)->match);
      } else {
        failure = session_match->status();
      }
    } else {
      ScopedSpan load_span(job_obs.get(), "load_logs");
      Result<std::shared_ptr<const EventLog>> log1 =
          cache_.GetOrLoad(request->log1, request->format);
      Result<std::shared_ptr<const EventLog>> log2 =
          log1.ok() ? cache_.GetOrLoad(request->log2, request->format)
                    : Result<std::shared_ptr<const EventLog>>(log1.status());
      load_span.End();
      if (!log1.ok()) {
        failure = log1.status();
      } else if (!log2.ok()) {
        failure = log2.status();
      } else {
        // Jobs parallelize across the pool, so each matching runs
        // single-threaded inside its worker (nested ParallelFor on the
        // same pool would degrade to inline execution anyway).
        Matcher matcher(request->options);
        Result<MatchResult> result = matcher.Match(**log1, **log2);
        if (result.ok()) {
          rendered = RenderResult(request_id, *result, timer.ElapsedMillis());
          RecordProbMetrics(options_.obs, *result);
        } else {
          failure = result.status();
        }
      }
    }
    if (!failure.ok()) rendered = RenderError(request_id, failure);
  }
  request_span.End();

  const double millis = timer.ElapsedMillis();
  const bool ok = failure.ok();
  ObsIncrement(options_.obs, ok ? "serve.jobs_ok" : "serve.jobs_failed");
  ObsObserve(options_.obs, "serve.job_millis", millis);
  // Per-outcome latency quantiles: the stats command's p50/p90/p99.
  ObsObserveQuantile(options_.obs,
                     ok ? "serve.latency_ms.ok" : "serve.latency_ms.error",
                     millis);
  if (flight_ != nullptr) {
    FlightRecord record;
    record.request_id = request_id;
    record.outcome = ok ? "ok" : "error";
    record.error = failure.message();
    record.millis = millis;
    record.spans = job_obs->trace.Snapshot();
    flight_->Record(std::move(record));
  }
  if (!ok && LogEnabled(LogLevel::kInfo)) {
    LogInfo("job " + request_id + " failed: " + failure.message());
  }
  jobs_in_flight_.fetch_sub(1, std::memory_order_relaxed);
  return rendered;
}

std::string BatchMatchService::HandleAppendJob(const std::string& line) {
  ObsIncrement(options_.obs, "serve.jobs_submitted");
  ObsIncrement(options_.obs, "serve.append_jobs");
  jobs_in_flight_.fetch_add(1, std::memory_order_relaxed);
  Timer timer;

  Result<AppendRequest> request = ParseAppendRequest(line);
  std::string request_id;
  if (request.ok() && !request->id.empty()) {
    request_id = request->id;
  } else {
    request_id =
        "req-" +
        std::to_string(next_request_seq_.fetch_add(1,
                                                   std::memory_order_relaxed));
  }

  std::unique_ptr<ObsContext> job_obs;
  if (flight_ != nullptr) job_obs = std::make_unique<ObsContext>();
  ScopedSpan request_span(job_obs.get(), "append:" + request_id);

  Status failure = Status::OK();
  std::string rendered;
  if (!request.ok()) {
    failure = request.status();
  } else if (cancel_.cancelled()) {
    failure = Status::Cancelled("service shutting down");
  } else {
    Result<StreamAppendOutcome> outcome =
        stream_sessions_.Append(*request, job_obs.get());
    if (outcome.ok()) {
      rendered =
          RenderAppendResult(request_id, *outcome, timer.ElapsedMillis());
      RecordProbMetrics(options_.obs, outcome->match);
      if (outcome->graph_stats.appended_traces > 0) {
        RefreshCorpusMember(request->log1, outcome->log_snapshot,
                            request->format);
      }
    } else {
      failure = outcome.status();
    }
  }
  if (!failure.ok()) rendered = RenderError(request_id, failure);
  request_span.End();

  const double millis = timer.ElapsedMillis();
  const bool ok = failure.ok();
  ObsIncrement(options_.obs, ok ? "serve.jobs_ok" : "serve.jobs_failed");
  ObsObserve(options_.obs, "serve.job_millis", millis);
  ObsObserveQuantile(options_.obs,
                     ok ? "serve.latency_ms.ok" : "serve.latency_ms.error",
                     millis);
  if (flight_ != nullptr) {
    FlightRecord record;
    record.request_id = request_id;
    record.outcome = ok ? "ok" : "error";
    record.error = failure.message();
    record.millis = millis;
    record.spans = job_obs->trace.Snapshot();
    flight_->Record(std::move(record));
  }
  if (!ok && LogEnabled(LogLevel::kInfo)) {
    LogInfo("append " + request_id + " failed: " + failure.message());
  }
  jobs_in_flight_.fetch_sub(1, std::memory_order_relaxed);
  return rendered;
}

void BatchMatchService::RefreshCorpusMember(const std::string& path,
                                            const EventLog& log,
                                            const std::string& format) {
  const std::string canon = CanonicalPath(path);
  std::lock_guard<std::mutex> lock(corpus_mu_);
  for (CorpusCacheEntry& cached : corpus_cache_) {
    int member = -1;
    for (size_t i = 0; i < cached.index->size(); ++i) {
      const index::CorpusEntry& entry = cached.index->entry(i);
      const std::string& source =
          entry.source_path.empty() ? entry.name : entry.source_path;
      if (CanonicalPath(source) == canon) {
        member = static_cast<int>(i);
        break;
      }
    }
    if (member < 0) continue;
    // Copy-on-write: concurrent top-k jobs keep reading the old immutable
    // index; the cache entry flips to the refreshed copy when done.
    const index::CorpusEntry stale = cached.index->entry(member);
    index::CorpusIndex refreshed = *cached.index;
    if (!refreshed.Remove(stale.name).ok()) continue;
    if (!refreshed
             .Add(stale.name, log, stale.source_path, stale.content_hash,
                  stale.format.empty() ? format : stale.format)
             .ok()) {
      continue;
    }
    cached.index =
        std::make_shared<const index::CorpusIndex>(std::move(refreshed));
    ObsIncrement(options_.obs, "stream.corpus_refreshes");
  }
}

std::string BatchMatchService::HandleAdminCommand(const std::string& cmd,
                                                  const std::string& id) {
  ObsIncrement(options_.obs, "serve.admin_commands");
  if (cmd == "stats") return RenderStats(id);
  if (cmd == "health") return RenderHealth(id);
  if (cmd == "slow") return RenderSlow(id);
  return RenderError(id,
                     Status::InvalidArgument(
                         "unknown cmd '" + cmd + "' (stats|health|slow)"));
}

std::string BatchMatchService::RenderStats(const std::string& id) {
  JsonWriter w;
  w.BeginObject();
  w.Key("id");
  w.String(id);
  w.Key("status");
  w.String("ok");
  w.Key("cmd");
  w.String("stats");
  w.Key("uptime_seconds");
  w.Number(UptimeSeconds());
  if (options_.obs != nullptr) {
    MetricsSnapshot snapshot = CaptureMetricsSnapshot(options_.obs->metrics);
    std::map<std::string, double> rates;
    double interval = 0.0;
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      if (has_last_stats_) {
        rates = DiffRates(last_stats_, snapshot);
        interval = snapshot.at_seconds - last_stats_.at_seconds;
      }
      last_stats_ = snapshot;
      has_last_stats_ = true;
    }
    w.Key("snapshot");
    snapshot.WriteJson(&w);
    w.Key("interval_seconds");
    w.Number(interval);
    w.Key("rates");
    w.BeginObject();
    for (const auto& [name, rate] : rates) {
      w.Key(name);
      w.Number(rate);
    }
    w.EndObject();
  }
  w.Key("cache");
  w.BeginObject();
  w.Key("entries");
  w.Int(static_cast<long long>(cache_.size()));
  w.Key("bytes");
  w.Int(static_cast<long long>(cache_.cost_bytes()));
  w.Key("hits");
  w.Int(static_cast<long long>(cache_.hits()));
  w.Key("misses");
  w.Int(static_cast<long long>(cache_.misses()));
  w.EndObject();
  w.Key("pool");
  w.BeginObject();
  w.Key("threads");
  w.Int(pool_.num_threads());
  w.Key("queue_depth");
  w.Int(static_cast<long long>(pool_.QueueDepth()));
  w.Key("queue_capacity");
  w.Int(static_cast<long long>(options_.queue_capacity));
  w.Key("jobs_in_flight");
  w.Int(jobs_in_flight_.load(std::memory_order_relaxed));
  w.EndObject();
  w.EndObject();
  return w.str();
}

std::string BatchMatchService::RenderHealth(const std::string& id) {
  const size_t depth = pool_.QueueDepth();
  JsonWriter w;
  w.BeginObject();
  w.Key("id");
  w.String(id);
  w.Key("status");
  w.String("ok");
  w.Key("cmd");
  w.String("health");
  w.Key("healthy");
  w.Bool(!cancel_.cancelled());
  w.Key("draining");
  w.Bool(cancel_.cancelled());
  w.Key("uptime_seconds");
  w.Number(UptimeSeconds());
  w.Key("queue_depth");
  w.Int(static_cast<long long>(depth));
  w.Key("queue_capacity");
  w.Int(static_cast<long long>(options_.queue_capacity));
  w.Key("threads");
  w.Int(pool_.num_threads());
  w.Key("jobs_in_flight");
  w.Int(jobs_in_flight_.load(std::memory_order_relaxed));
  w.EndObject();
  return w.str();
}

std::string BatchMatchService::RenderSlow(const std::string& id) {
  JsonWriter w;
  w.BeginObject();
  w.Key("id");
  w.String(id);
  w.Key("status");
  w.String("ok");
  w.Key("cmd");
  w.String("slow");
  w.Key("flight_recorder");
  if (flight_ != nullptr) {
    flight_->WriteJson(&w);
  } else {
    w.Null();
  }
  w.EndObject();
  return w.str();
}

size_t BatchMatchService::RunStream(std::istream& in, std::ostream& out) {
  std::mutex out_mu;
  size_t lines = 0;
  exec::TaskGroup group(&pool_, cancel_.token());
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (cancel_.cancelled()) break;
    ++lines;
    // Admin probes answer from the reader thread: a queue full of match
    // jobs must never delay a stats/health scrape. Appends are real work
    // (parse, graph maintenance, a warm match) and schedule on the pool
    // like any job.
    Result<JsonValue> doc = ParseJson(line);
    if (doc.ok()) {
      const std::string cmd = AdminCommandOf(*doc);
      if (!cmd.empty() && cmd != "append") {
        std::string result =
            HandleAdminCommand(cmd, doc->GetString("id", ""));
        std::lock_guard<std::mutex> lock(out_mu);
        out << result << "\n";
        out.flush();
        continue;
      }
    }
    group.Run([this, &out, &out_mu, line]() -> Status {
      std::string result = HandleJobLine(line);
      std::lock_guard<std::mutex> lock(out_mu);
      out << result << "\n";
      out.flush();
      return Status::OK();
    });
  }
  (void)group.Wait();
  return lines;
}

}  // namespace serve
}  // namespace ems
