#include "serve/stats_exporter.h"

#include <chrono>
#include <cstdio>
#include <fstream>

#include "obs/context.h"
#include "obs/exposition.h"
#include "util/log.h"

namespace ems {
namespace serve {

StatsExporter::StatsExporter(const ObsContext* obs, std::string path,
                             double interval_seconds)
    : obs_(obs),
      path_(std::move(path)),
      interval_seconds_(interval_seconds > 0.0 ? interval_seconds : 1.0) {
  if (obs_ == nullptr || path_.empty()) {
    stopped_ = true;
    return;
  }
  thread_ = std::thread([this] { Loop(); });
}

StatsExporter::~StatsExporter() { Stop(); }

void StatsExporter::Loop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (!stopping_) {
    const auto interval = std::chrono::duration_cast<
        std::chrono::steady_clock::duration>(
        std::chrono::duration<double>(interval_seconds_));
    if (wake_.wait_for(lock, interval, [this] { return stopping_; })) {
      break;  // Stop() handles the final write
    }
    lock.unlock();
    Status st = WriteOnce();
    if (!st.ok()) LogWarn("stats export failed: " + st.message());
    lock.lock();
  }
}

void StatsExporter::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopped_) return;
    stopped_ = true;
    stopping_ = true;
  }
  wake_.notify_all();
  if (thread_.joinable()) thread_.join();
  Status st = WriteOnce();
  if (!st.ok()) LogWarn("final stats export failed: " + st.message());
}

Status StatsExporter::WriteOnce() {
  if (obs_ == nullptr || path_.empty()) return Status::OK();
  const std::string body = RenderExpositionText(obs_->metrics);
  const std::string tmp = path_ + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) {
      std::lock_guard<std::mutex> lock(mu_);
      ++write_errors_;
      return Status::IOError("cannot open '" + tmp + "' for writing");
    }
    out << body;
    if (!out.flush()) {
      std::lock_guard<std::mutex> lock(mu_);
      ++write_errors_;
      return Status::IOError("write to '" + tmp + "' failed");
    }
  }
  if (std::rename(tmp.c_str(), path_.c_str()) != 0) {
    std::remove(tmp.c_str());
    std::lock_guard<std::mutex> lock(mu_);
    ++write_errors_;
    return Status::IOError("rename '" + tmp + "' -> '" + path_ + "' failed");
  }
  std::lock_guard<std::mutex> lock(mu_);
  ++writes_;
  return Status::OK();
}

uint64_t StatsExporter::writes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return writes_;
}

uint64_t StatsExporter::write_errors() const {
  std::lock_guard<std::mutex> lock(mu_);
  return write_errors_;
}

}  // namespace serve
}  // namespace ems
