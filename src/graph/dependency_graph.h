// Event dependency graph (Definition 1) with the artificial event v^X
// (Section 2) that makes dislocated matching possible, minimum-frequency
// filtering, node merging for composite events (Section 4), and the
// structural quantities the algorithms need: pre/post sets, longest
// distances l(v) from v^X (Proposition 2), and ancestor sets
// (Proposition 4).
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "log/event_log.h"
#include "log/log_stats.h"
#include "util/status.h"

namespace ems {

namespace store {
struct SnapshotAccess;  // binary snapshot serializer (src/store/snapshot.h)
}  // namespace store

/// Dense node index within a DependencyGraph. Node 0 is always the
/// artificial event v^X when the graph is built with artificial events.
using NodeId = int32_t;

/// l(v) value for nodes on/downstream of a cycle: never early-converges.
inline constexpr int kInfiniteDistance = std::numeric_limits<int>::max();

/// One direction of a graph's adjacency flattened into CSR form: node v's
/// neighbors are `neighbors[offsets[v] .. offsets[v+1])` with the edge
/// frequencies parallel in `frequencies`. Per-node neighbor order is
/// exactly the order of Predecessors()/Successors(), so kernels built on
/// the flat arrays reproduce vector-of-vector traversals bit-identically.
struct CsrAdjacency {
  std::vector<int32_t> offsets;    // size NumNodes() + 1
  std::vector<NodeId> neighbors;   // concatenated per-node lists
  std::vector<double> frequencies; // aligned with `neighbors`

  int32_t Degree(NodeId v) const {
    return offsets[static_cast<size_t>(v) + 1] -
           offsets[static_cast<size_t>(v)];
  }
  /// Total neighbor entries over the real (non-artificial) nodes — the
  /// row-dimension budget of per-pair coefficient tables.
  int64_t RealEntries(bool has_artificial) const {
    int64_t total = static_cast<int64_t>(neighbors.size());
    if (has_artificial) total -= Degree(0);
    return total;
  }
};

/// Options controlling dependency-graph construction.
struct DependencyGraphOptions {
  /// Adds the artificial event v^X with edges (v^X, v) and (v, v^X)
  /// weighted f(v) for every real event (paper, Section 2). The EMS
  /// similarity requires this; baselines construct graphs without it.
  bool add_artificial_event = true;

  /// Drops real edges with normalized frequency strictly below this
  /// threshold ("minimum frequency control", Section 2 / Figure 7).
  /// Artificial edges are never dropped.
  double min_edge_frequency = 0.0;
};

/// \brief Labeled directed graph G(V, E, f) over the events of one log.
///
/// Vertices carry normalized event frequencies f(v); edges carry the
/// normalized frequency f(v1, v2) of the two events occurring
/// consecutively (both are fractions of traces, Definition 1). Composite
/// events are represented by nodes covering multiple member EventIds.
class DependencyGraph {
 public:
  /// Builds the dependency graph of `log` (Definition 1 + Section 2).
  static DependencyGraph Build(const EventLog& log,
                               const DependencyGraphOptions& options = {});

  /// Builds the graph of `log` after collapsing each composite in
  /// `composites` (disjoint sets of EventIds) into a single node: maximal
  /// runs of a composite's members occurring consecutively in a trace
  /// become one occurrence of the composite event. Singleton events not
  /// covered by any composite remain as-is.
  ///
  /// Returns InvalidArgument if composites overlap or contain invalid ids.
  static Result<DependencyGraph> BuildWithComposites(
      const EventLog& log, const std::vector<std::vector<EventId>>& composites,
      const DependencyGraphOptions& options = {});

  /// Constructs a graph directly from explicit data (used by tests that
  /// pin the paper's running-example frequencies, and by generators).
  /// `names[i]` labels node i; edges are (from, to, frequency). If
  /// `options.add_artificial_event` is set, node 0 of the result is v^X
  /// and all given indices shift by one.
  static DependencyGraph FromExplicit(
      const std::vector<std::string>& names,
      const std::vector<double>& node_frequencies,
      const std::vector<std::tuple<NodeId, NodeId, double>>& edges,
      const DependencyGraphOptions& options = {});

  /// Number of nodes, including v^X if present.
  size_t NumNodes() const { return names_.size(); }

  /// Number of directed edges, including artificial ones.
  size_t NumEdges() const;

  /// True if node 0 is the artificial event v^X.
  bool has_artificial() const { return has_artificial_; }

  /// Index of v^X. Requires has_artificial().
  NodeId artificial_node() const {
    EMS_DCHECK(has_artificial_);
    return 0;
  }

  /// True for the artificial node.
  bool IsArtificial(NodeId v) const { return has_artificial_ && v == 0; }

  /// Display label of node `v`; composite nodes show joined member names.
  const std::string& NodeName(NodeId v) const {
    EMS_DCHECK(ValidNode(v));
    return names_[static_cast<size_t>(v)];
  }

  /// Normalized frequency f(v) of node `v`.
  double NodeFrequency(NodeId v) const {
    EMS_DCHECK(ValidNode(v));
    return node_freq_[static_cast<size_t>(v)];
  }

  /// Normalized frequency f(a, b) of edge (a, b); 0 if the edge is absent.
  double EdgeFrequency(NodeId a, NodeId b) const;

  /// True if the edge (a, b) exists.
  bool HasEdge(NodeId a, NodeId b) const { return EdgeFrequency(a, b) > 0.0; }

  /// Pre-set •v: nodes with an edge into `v`.
  const std::vector<NodeId>& Predecessors(NodeId v) const {
    EMS_DCHECK(ValidNode(v));
    return pre_[static_cast<size_t>(v)];
  }

  /// Post-set v•: nodes with an edge out of `v`.
  const std::vector<NodeId>& Successors(NodeId v) const {
    EMS_DCHECK(ValidNode(v));
    return post_[static_cast<size_t>(v)];
  }

  /// Average degree (mean of |v•| over all nodes) — the d_avg of the
  /// complexity analysis in Section 3.2.
  double AverageDegree() const;

  /// The EventIds of the log events this node represents (singleton for
  /// plain events, >1 for composites, empty for v^X).
  const std::vector<EventId>& Members(NodeId v) const {
    EMS_DCHECK(ValidNode(v));
    return members_[static_cast<size_t>(v)];
  }

  /// Longest distance l(v) from v^X to v, ignoring edges into v^X
  /// (Proposition 2). Nodes reachable from a non-trivial SCC get
  /// kInfiniteDistance. l(v^X) = 0. Requires has_artificial().
  /// Computed lazily on first call and cached; the first call must not
  /// race with other accesses — callers sharing a graph across threads
  /// warm the cache first (see EmsSimilarity::Iterate).
  const std::vector<int>& LongestDistancesFromArtificial() const;

  /// Symmetric quantity for backward similarity: longest distance from v
  /// to v^X, ignoring edges out of v^X.
  const std::vector<int>& LongestDistancesToArtificial() const;

  /// AN(v): all ancestors of `v` (nodes with a directed path to v),
  /// excluding v^X and v itself, following real edges only.
  std::vector<NodeId> Ancestors(NodeId v) const;

  /// All descendants of `v` (nodes reachable from v), excluding v^X and v.
  std::vector<NodeId> Descendants(NodeId v) const;

  /// Graph-level node merging (edge contraction) for composite events when
  /// no log is available: the merged node's frequency is the max of member
  /// frequencies, and parallel edges keep the max frequency. Edges
  /// internal to the merged set disappear. `nodes` must be >= 2 distinct
  /// real nodes.
  Result<DependencyGraph> MergeNodes(const std::vector<NodeId>& nodes) const;

  /// Copy with real edges below `threshold` removed (minimum frequency
  /// control; artificial edges retained).
  DependencyGraph FilterEdges(double threshold) const;

  /// Adjacency of one direction flattened into contiguous CSR arrays —
  /// the form the optimized EMS kernel scans (see docs/PERFORMANCE.md).
  CsrAdjacency ExportPredecessorCsr() const;
  CsrAdjacency ExportSuccessorCsr() const;

  /// Human-readable adjacency dump for debugging.
  std::string DebugString() const;

 private:
  friend class DependencyGraphBuilder;
  friend class StreamingDependencyGraph;  // in-place append maintenance
  friend struct store::SnapshotAccess;

  bool ValidNode(NodeId v) const {
    return v >= 0 && static_cast<size_t>(v) < names_.size();
  }

  void AddNode(std::string name, double freq, std::vector<EventId> members);
  void AddEdge(NodeId a, NodeId b, double freq);
  void FinalizeArtificial();

  bool has_artificial_ = false;
  std::vector<std::string> names_;
  std::vector<double> node_freq_;
  std::vector<std::vector<EventId>> members_;
  // Adjacency: parallel arrays of neighbor ids and edge frequencies.
  std::vector<std::vector<NodeId>> pre_;
  std::vector<std::vector<double>> pre_freq_;
  std::vector<std::vector<NodeId>> post_;
  std::vector<std::vector<double>> post_freq_;

  mutable std::vector<int> longest_from_;  // lazily computed
  mutable std::vector<int> longest_to_;

 public:
  /// Edge frequency aligned with Predecessors(v): frequency of
  /// (Predecessors(v)[i], v).
  const std::vector<double>& PredecessorFrequencies(NodeId v) const {
    EMS_DCHECK(ValidNode(v));
    return pre_freq_[static_cast<size_t>(v)];
  }
  /// Edge frequency aligned with Successors(v): frequency of
  /// (v, Successors(v)[i]).
  const std::vector<double>& SuccessorFrequencies(NodeId v) const {
    EMS_DCHECK(ValidNode(v));
    return post_freq_[static_cast<size_t>(v)];
  }
};

}  // namespace ems
