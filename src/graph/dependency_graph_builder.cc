#include "graph/dependency_graph_builder.h"

#include <algorithm>
#include <cstddef>
#include <map>
#include <string>
#include <unordered_map>

#include "util/string_util.h"

namespace ems {

DependencyGraphBuilder::DependencyGraphBuilder(const EventLog& log)
    : log_(log), num_traces_(log.NumTraces()) {
  for (const std::string& name : log.event_names()) {
    if (name.find('+') != std::string::npos) plus_in_names_ = true;
  }

  std::vector<char> seen_event(log.NumEvents(), 0);
  // Group key -> index into groups_. std::map keeps keys alive for the
  // duration of the loop so groups_ can hold copies without re-hashing.
  std::map<std::pair<std::vector<EventId>,
                     std::vector<std::pair<EventId, EventId>>>,
           size_t>
      index;
  for (const Trace& t : log.traces()) {
    std::vector<EventId> events;
    events.reserve(t.size());
    for (EventId e : t) {
      events.push_back(e);
      if (!seen_event[static_cast<size_t>(e)]) {
        seen_event[static_cast<size_t>(e)] = 1;
        first_occurrence_.push_back(e);
      }
    }
    std::sort(events.begin(), events.end());
    events.erase(std::unique(events.begin(), events.end()), events.end());

    std::vector<std::pair<EventId, EventId>> successions;
    successions.reserve(t.size());
    for (size_t i = 1; i < t.size(); ++i) {
      // (a, a) pairs never produce an edge (f(v, v) is node frequency) and
      // collapse to (s, s) under any member map, so they are dropped here.
      if (t[i - 1] != t[i]) successions.emplace_back(t[i - 1], t[i]);
    }
    std::sort(successions.begin(), successions.end());
    successions.erase(std::unique(successions.begin(), successions.end()),
                      successions.end());

    auto key = std::make_pair(std::move(events), std::move(successions));
    auto [it, inserted] = index.emplace(std::move(key), groups_.size());
    if (inserted) {
      groups_.push_back({it->first.first, it->first.second, 1});
    } else {
      ++groups_[it->second].multiplicity;
    }
  }
}

void DependencyGraphBuilder::Append(size_t first_new_trace) {
  EMS_DCHECK(first_new_trace == num_traces_);
  EMS_DCHECK(log_.NumTraces() >= first_new_trace);
  if (!has_group_index_) {
    for (size_t gi = 0; gi < groups_.size(); ++gi) {
      group_index_.emplace(
          std::make_pair(groups_[gi].events, groups_[gi].successions), gi);
    }
    has_group_index_ = true;
  }

  // seen-before set reconstructed from the first-occurrence order (the
  // constructor's transient vector); new vocabulary extends it.
  std::vector<char> seen_event(log_.NumEvents(), 0);
  for (EventId e : first_occurrence_) seen_event[static_cast<size_t>(e)] = 1;

  for (size_t ti = first_new_trace; ti < log_.NumTraces(); ++ti) {
    const Trace& t = log_.trace(ti);
    std::vector<EventId> events;
    events.reserve(t.size());
    for (EventId e : t) {
      events.push_back(e);
      if (!seen_event[static_cast<size_t>(e)]) {
        seen_event[static_cast<size_t>(e)] = 1;
        first_occurrence_.push_back(e);
        if (log_.EventName(e).find('+') != std::string::npos) {
          plus_in_names_ = true;
        }
      }
    }
    std::sort(events.begin(), events.end());
    events.erase(std::unique(events.begin(), events.end()), events.end());

    std::vector<std::pair<EventId, EventId>> successions;
    successions.reserve(t.size());
    for (size_t i = 1; i < t.size(); ++i) {
      if (t[i - 1] != t[i]) successions.emplace_back(t[i - 1], t[i]);
    }
    std::sort(successions.begin(), successions.end());
    successions.erase(std::unique(successions.begin(), successions.end()),
                      successions.end());

    auto key = std::make_pair(std::move(events), std::move(successions));
    auto [it, inserted] = group_index_.emplace(std::move(key), groups_.size());
    if (inserted) {
      groups_.push_back({it->first.first, it->first.second, 1});
    } else {
      ++groups_[it->second].multiplicity;
    }
  }
  num_traces_ = log_.NumTraces();
}

Result<DependencyGraph> DependencyGraphBuilder::BuildWithComposites(
    const std::vector<std::vector<EventId>>& composites,
    const DependencyGraphOptions& options) const {
  if (plus_in_names_) {
    // By-name interning in the rewritten log could alias a composite's
    // joined display name with a real event name; the trace-scan path
    // resolves that arithmetic naturally, so delegate to it.
    fallback_builds_.fetch_add(1, std::memory_order_relaxed);
    return DependencyGraph::BuildWithComposites(log_, composites, options);
  }

  // Validation identical to DependencyGraph::BuildWithComposites (same
  // order, same messages) so callers see the same statuses on both paths.
  std::vector<int> composite_of(log_.NumEvents(), -1);
  for (size_t k = 0; k < composites.size(); ++k) {
    if (composites[k].size() < 1) {
      return Status::InvalidArgument("empty composite");
    }
    for (EventId e : composites[k]) {
      if (e < 0 || static_cast<size_t>(e) >= log_.NumEvents()) {
        return Status::InvalidArgument("composite contains invalid event id");
      }
      if (composite_of[static_cast<size_t>(e)] != -1) {
        return Status::InvalidArgument("composites overlap on event '" +
                                       log_.EventName(e) + "'");
      }
      composite_of[static_cast<size_t>(e)] = static_cast<int>(k);
    }
  }

  std::vector<std::string> composite_names(composites.size());
  for (size_t k = 0; k < composites.size(); ++k) {
    std::vector<EventId> sorted = composites[k];
    std::sort(sorted.begin(), sorted.end());
    std::vector<std::string> parts;
    parts.reserve(sorted.size());
    for (EventId e : sorted) parts.push_back(log_.EventName(e));
    composite_names[k] = Join(parts, "+");
  }

  // Symbol table of the (virtual) rewritten log: composites take ids
  // 0..K-1 (pre-interned), then every non-member event that occurs in a
  // trace, in stream first-occurrence order — exactly the interning order
  // of the reference path's rewritten EventLog.
  const int32_t num_composites = static_cast<int32_t>(composites.size());
  std::vector<int32_t> sym_of(log_.NumEvents(), -1);
  for (size_t k = 0; k < composites.size(); ++k) {
    for (EventId e : composites[k]) {
      sym_of[static_cast<size_t>(e)] = static_cast<int32_t>(k);
    }
  }
  int32_t num_symbols = num_composites;
  std::vector<EventId> singleton_event;  // symbol id - K -> original event
  for (EventId e : first_occurrence_) {
    if (sym_of[static_cast<size_t>(e)] != -1) continue;  // composite member
    sym_of[static_cast<size_t>(e)] = num_symbols++;
    singleton_event.push_back(e);
  }

  // Aggregate per-symbol trace counts and per-succession trace counts over
  // the trace groups. Stamps dedup within one group (several members of a
  // group may collapse onto the same symbol or symbol pair).
  const size_t s_count = static_cast<size_t>(num_symbols);
  std::vector<size_t> node_count(s_count, 0);
  std::vector<int32_t> node_stamp(s_count, -1);
  struct EdgeEntry {
    int32_t stamp = -1;
    size_t count = 0;
  };
  std::unordered_map<int64_t, EdgeEntry> edge_counts;
  for (size_t gi = 0; gi < groups_.size(); ++gi) {
    const TraceGroup& group = groups_[gi];
    const int32_t stamp = static_cast<int32_t>(gi);
    for (EventId e : group.events) {
      int32_t s = sym_of[static_cast<size_t>(e)];
      if (node_stamp[static_cast<size_t>(s)] == stamp) continue;
      node_stamp[static_cast<size_t>(s)] = stamp;
      node_count[static_cast<size_t>(s)] += group.multiplicity;
    }
    for (const auto& [a, b] : group.successions) {
      int32_t sa = sym_of[static_cast<size_t>(a)];
      int32_t sb = sym_of[static_cast<size_t>(b)];
      if (sa == sb) continue;  // internal to one composite: run-collapsed
      int64_t key = (static_cast<int64_t>(sa) << 32) |
                    static_cast<int64_t>(static_cast<uint32_t>(sb));
      EdgeEntry& entry = edge_counts[key];
      if (entry.stamp == stamp) continue;
      entry.stamp = stamp;
      entry.count += group.multiplicity;
    }
  }

  // Assemble the graph exactly as DependencyGraph::Build does on the
  // rewritten log: artificial node first, event nodes in symbol order,
  // edges in (a, b) order, then artificial fan-in/out. Frequencies are the
  // same integer-count divisions, so every double is bit-identical.
  DependencyGraph g;
  g.has_artificial_ = options.add_artificial_event;
  if (g.has_artificial_) g.AddNode("<X>", 1.0, {});
  const NodeId offset = g.has_artificial_ ? 1 : 0;
  const double traces = static_cast<double>(num_traces_);
  for (int32_t s = 0; s < num_symbols; ++s) {
    double freq = num_traces_ == 0
                      ? 0.0
                      : static_cast<double>(node_count[static_cast<size_t>(s)]) /
                            traces;
    if (s < num_composites) {
      g.AddNode(composite_names[static_cast<size_t>(s)], freq,
                composites[static_cast<size_t>(s)]);
    } else {
      EventId e = singleton_event[static_cast<size_t>(s - num_composites)];
      g.AddNode(log_.EventName(e), freq, {e});
    }
  }
  std::vector<int64_t> keys;
  keys.reserve(edge_counts.size());
  for (const auto& [key, entry] : edge_counts) {
    (void)entry;
    keys.push_back(key);
  }
  // (sa << 32) | sb sorts exactly like the reference's std::map over
  // (sa, sb) pairs for non-negative symbol ids.
  std::sort(keys.begin(), keys.end());
  for (int64_t key : keys) {
    const EdgeEntry& entry = edge_counts[key];
    double f = num_traces_ == 0
                   ? 0.0
                   : static_cast<double>(entry.count) / traces;
    if (f < options.min_edge_frequency) continue;
    NodeId sa = static_cast<NodeId>(key >> 32);
    NodeId sb = static_cast<NodeId>(key & 0x7fffffff);
    g.AddEdge(sa + offset, sb + offset, f);
  }
  if (g.has_artificial_) g.FinalizeArtificial();

  incremental_builds_.fetch_add(1, std::memory_order_relaxed);
  return g;
}

}  // namespace ems
