#include "graph/graph_algorithms.h"

#include <algorithm>

namespace ems {

std::vector<std::vector<double>> FrequencyMatrix(const DependencyGraph& g,
                                                 bool include_artificial) {
  const NodeId start = (g.has_artificial() && !include_artificial) ? 1 : 0;
  const size_t n = g.NumNodes() - static_cast<size_t>(start);
  std::vector<std::vector<double>> m(n, std::vector<double>(n, 0.0));
  for (NodeId v = start; v < static_cast<NodeId>(g.NumNodes()); ++v) {
    const auto& succ = g.Successors(v);
    const auto& freq = g.SuccessorFrequencies(v);
    for (size_t i = 0; i < succ.size(); ++i) {
      if (!include_artificial && g.IsArtificial(succ[i])) continue;
      m[static_cast<size_t>(v - start)][static_cast<size_t>(succ[i] - start)] =
          freq[i];
    }
  }
  return m;
}

std::vector<double> NodeFrequencies(const DependencyGraph& g,
                                    bool include_artificial) {
  const NodeId start = (g.has_artificial() && !include_artificial) ? 1 : 0;
  std::vector<double> out;
  out.reserve(g.NumNodes() - static_cast<size_t>(start));
  for (NodeId v = start; v < static_cast<NodeId>(g.NumNodes()); ++v) {
    out.push_back(g.NodeFrequency(v));
  }
  return out;
}

std::vector<std::vector<bool>> TransitiveClosure(const DependencyGraph& g) {
  const NodeId start = g.has_artificial() ? 1 : 0;
  const size_t n = g.NumNodes() - static_cast<size_t>(start);
  std::vector<std::vector<bool>> closure(n, std::vector<bool>(n, false));
  for (NodeId v = start; v < static_cast<NodeId>(g.NumNodes()); ++v) {
    for (NodeId w : g.Successors(v)) {
      if (g.IsArtificial(w)) continue;
      closure[static_cast<size_t>(v - start)][static_cast<size_t>(w - start)] =
          true;
    }
  }
  for (size_t k = 0; k < n; ++k) {
    for (size_t i = 0; i < n; ++i) {
      if (!closure[i][k]) continue;
      for (size_t j = 0; j < n; ++j) {
        if (closure[k][j]) closure[i][j] = true;
      }
    }
  }
  return closure;
}

bool IsAcyclic(const DependencyGraph& g) {
  auto closure = TransitiveClosure(g);
  for (size_t i = 0; i < closure.size(); ++i) {
    if (closure[i][i]) return false;
  }
  return true;
}

std::vector<NodeId> TopologicalOrder(const DependencyGraph& g) {
  const NodeId start = g.has_artificial() ? 1 : 0;
  const size_t n = g.NumNodes() - static_cast<size_t>(start);
  std::vector<size_t> indegree(n, 0);
  for (NodeId v = start; v < static_cast<NodeId>(g.NumNodes()); ++v) {
    for (NodeId w : g.Successors(v)) {
      if (g.IsArtificial(w)) continue;
      ++indegree[static_cast<size_t>(w - start)];
    }
  }
  std::vector<NodeId> ready;
  for (size_t i = 0; i < n; ++i) {
    if (indegree[i] == 0) ready.push_back(static_cast<NodeId>(i) + start);
  }
  std::vector<NodeId> order;
  order.reserve(n);
  while (!ready.empty()) {
    NodeId v = ready.back();
    ready.pop_back();
    order.push_back(v);
    for (NodeId w : g.Successors(v)) {
      if (g.IsArtificial(w)) continue;
      if (--indegree[static_cast<size_t>(w - start)] == 0) ready.push_back(w);
    }
  }
  if (order.size() != n) return {};  // cyclic
  return order;
}

}  // namespace ems
