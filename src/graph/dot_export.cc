#include "graph/dot_export.h"

#include <ostream>
#include <sstream>

#include "util/string_util.h"

namespace ems {

namespace {

// DOT string literal: quotes and escapes embedded quotes/backslashes.
std::string DotQuote(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  out.push_back('"');
  return out;
}

void EmitNodesAndEdges(const DependencyGraph& g, const DotOptions& options,
                       const std::string& prefix, std::ostream& out) {
  for (NodeId v = 0; v < static_cast<NodeId>(g.NumNodes()); ++v) {
    if (g.IsArtificial(v) && !options.show_artificial) continue;
    out << "  " << prefix << v << " [label="
        << DotQuote(g.NodeName(v) + "\\nf=" +
                    FormatDouble(g.NodeFrequency(v), 2));
    if (g.IsArtificial(v)) out << ", shape=diamond, style=dashed";
    out << "];\n";
  }
  for (NodeId v = 0; v < static_cast<NodeId>(g.NumNodes()); ++v) {
    if (g.IsArtificial(v) && !options.show_artificial) continue;
    const auto& succ = g.Successors(v);
    const auto& freq = g.SuccessorFrequencies(v);
    for (size_t i = 0; i < succ.size(); ++i) {
      if (g.IsArtificial(succ[i]) && !options.show_artificial) continue;
      out << "  " << prefix << v << " -> " << prefix << succ[i];
      bool artificial_edge = g.IsArtificial(v) || g.IsArtificial(succ[i]);
      out << " [";
      if (options.edge_frequencies) {
        out << "label=" << DotQuote(FormatDouble(freq[i], 2));
      }
      if (artificial_edge) {
        out << (options.edge_frequencies ? ", " : "") << "style=dashed";
      }
      out << "];\n";
    }
  }
}

}  // namespace

Status WriteDot(const DependencyGraph& g, std::ostream& out,
                const DotOptions& options) {
  out << "digraph " << options.name << " {\n";
  out << "  rankdir=LR;\n  node [shape=box, fontsize=10];\n";
  EmitNodesAndEdges(g, options, "n", out);
  out << "}\n";
  if (!out) return Status::IOError("write failed");
  return Status::OK();
}

Status WriteMatchDot(const MatchResult& result, std::ostream& out,
                     const DotOptions& options) {
  out << "digraph " << options.name << " {\n";
  out << "  rankdir=LR;\n  node [shape=box, fontsize=10];\n";
  out << "  subgraph cluster_left {\n    label=\"log 1\";\n";
  EmitNodesAndEdges(result.graph1, options, "a", out);
  out << "  }\n";
  out << "  subgraph cluster_right {\n    label=\"log 2\";\n";
  EmitNodesAndEdges(result.graph2, options, "b", out);
  out << "  }\n";

  // Cross-edges: resolve correspondences back to node ids by member name
  // sets (display names are unique per graph).
  auto find_node = [](const DependencyGraph& g,
                      const std::vector<std::string>& names) -> NodeId {
    for (NodeId v = 0; v < static_cast<NodeId>(g.NumNodes()); ++v) {
      if (g.IsArtificial(v)) continue;
      if (g.Members(v).size() != names.size()) continue;
      // Member names come from the log; the node display name joins them
      // with '+'. Compare as sorted joined strings.
      std::vector<std::string> a = names;
      std::sort(a.begin(), a.end());
      std::vector<std::string> b = Split(g.NodeName(v), '+');
      std::sort(b.begin(), b.end());
      if (a == b) return v;
    }
    return -1;
  };
  for (const Correspondence& c : result.correspondences) {
    NodeId left = find_node(result.graph1, c.events1);
    NodeId right = find_node(result.graph2, c.events2);
    if (left < 0 || right < 0) continue;
    out << "  a" << left << " -> b" << right
        << " [dir=none, style=dashed, color=red, label="
        << DotQuote(FormatDouble(c.similarity, 2)) << "];\n";
  }
  out << "}\n";
  if (!out) return Status::IOError("write failed");
  return Status::OK();
}

std::string ToDot(const DependencyGraph& g, const DotOptions& options) {
  std::ostringstream out;
  (void)WriteDot(g, out, options);
  return out.str();
}

}  // namespace ems
