#include "graph/dependency_graph.h"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>
#include <tuple>

#include "util/string_util.h"

namespace ems {

void DependencyGraph::AddNode(std::string name, double freq,
                              std::vector<EventId> members) {
  names_.push_back(std::move(name));
  node_freq_.push_back(freq);
  members_.push_back(std::move(members));
  pre_.emplace_back();
  pre_freq_.emplace_back();
  post_.emplace_back();
  post_freq_.emplace_back();
}

void DependencyGraph::AddEdge(NodeId a, NodeId b, double freq) {
  EMS_DCHECK(ValidNode(a) && ValidNode(b));
  EMS_DCHECK(a != b);
  EMS_DCHECK(freq > 0.0);
  post_[static_cast<size_t>(a)].push_back(b);
  post_freq_[static_cast<size_t>(a)].push_back(freq);
  pre_[static_cast<size_t>(b)].push_back(a);
  pre_freq_[static_cast<size_t>(b)].push_back(freq);
}

void DependencyGraph::FinalizeArtificial() {
  // Connect v^X to every real node in both directions with weight f(v):
  // any event may virtually start or end a trace (Section 2).
  EMS_DCHECK(has_artificial_);
  for (NodeId v = 1; v < static_cast<NodeId>(names_.size()); ++v) {
    double f = node_freq_[static_cast<size_t>(v)];
    if (f <= 0.0) continue;
    AddEdge(0, v, f);
    AddEdge(v, 0, f);
  }
}

DependencyGraph DependencyGraph::Build(const EventLog& log,
                                       const DependencyGraphOptions& options) {
  DependencyGraph g;
  g.has_artificial_ = options.add_artificial_event;
  if (g.has_artificial_) g.AddNode("<X>", 1.0, {});

  LogStats stats(log);
  const NodeId offset = g.has_artificial_ ? 1 : 0;
  for (EventId e = 0; e < static_cast<EventId>(log.NumEvents()); ++e) {
    g.AddNode(log.EventName(e), stats.EventFrequency(e), {e});
  }
  for (const auto& [pair, count] : stats.follows_trace_counts()) {
    (void)count;
    auto [a, b] = pair;
    if (a == b) continue;  // f(v, v) denotes node frequency, not a self-edge
    double f = stats.FollowsFrequency(a, b);
    if (f < options.min_edge_frequency) continue;
    g.AddEdge(a + offset, b + offset, f);
  }
  if (g.has_artificial_) g.FinalizeArtificial();
  return g;
}

Result<DependencyGraph> DependencyGraph::BuildWithComposites(
    const EventLog& log, const std::vector<std::vector<EventId>>& composites,
    const DependencyGraphOptions& options) {
  // Map each member event to its composite index; -1 = not in a composite.
  std::vector<int> composite_of(log.NumEvents(), -1);
  for (size_t k = 0; k < composites.size(); ++k) {
    if (composites[k].size() < 1) {
      return Status::InvalidArgument("empty composite");
    }
    for (EventId e : composites[k]) {
      if (e < 0 || static_cast<size_t>(e) >= log.NumEvents()) {
        return Status::InvalidArgument("composite contains invalid event id");
      }
      if (composite_of[static_cast<size_t>(e)] != -1) {
        return Status::InvalidArgument("composites overlap on event '" +
                                       log.EventName(e) + "'");
      }
      composite_of[static_cast<size_t>(e)] = static_cast<int>(k);
    }
  }

  // Composite display names: members joined with '+' in id order.
  std::vector<std::string> composite_names(composites.size());
  for (size_t k = 0; k < composites.size(); ++k) {
    std::vector<EventId> sorted = composites[k];
    std::sort(sorted.begin(), sorted.end());
    std::vector<std::string> parts;
    parts.reserve(sorted.size());
    for (EventId e : sorted) parts.push_back(log.EventName(e));
    composite_names[k] = Join(parts, "+");
  }

  // Rewrite traces: a maximal run of events belonging to the same
  // composite collapses into one occurrence of the composite event.
  EventLog rewritten;
  // Pre-intern composite events so their ids are stable, then real events
  // in original order for determinism.
  std::vector<EventId> composite_ids(composites.size());
  for (size_t k = 0; k < composites.size(); ++k) {
    composite_ids[k] = rewritten.AddEvent(composite_names[k]);
  }
  for (const Trace& t : log.traces()) {
    std::vector<std::string> names;
    names.reserve(t.size());
    int run_composite = -1;
    for (EventId e : t) {
      int k = composite_of[static_cast<size_t>(e)];
      if (k >= 0 && k == run_composite) continue;  // extend current run
      run_composite = k;
      names.push_back(k >= 0 ? composite_names[static_cast<size_t>(k)]
                             : log.EventName(e));
    }
    rewritten.AddTrace(names);
  }

  DependencyGraph g = Build(rewritten, options);
  // Fix Members() to report original EventIds (Build gives rewritten ids).
  const NodeId offset = g.has_artificial_ ? 1 : 0;
  for (NodeId v = offset; v < static_cast<NodeId>(g.NumNodes()); ++v) {
    EventId rew = g.members_[static_cast<size_t>(v)][0];
    const std::string& name = rewritten.EventName(rew);
    // Composite node?
    bool is_composite = false;
    for (size_t k = 0; k < composites.size(); ++k) {
      if (name == composite_names[k]) {
        g.members_[static_cast<size_t>(v)] = composites[k];
        is_composite = true;
        break;
      }
    }
    if (!is_composite) {
      EventId original = log.FindEvent(name);
      EMS_DCHECK(original != kInvalidEvent);
      g.members_[static_cast<size_t>(v)] = {original};
    }
  }
  return g;
}

DependencyGraph DependencyGraph::FromExplicit(
    const std::vector<std::string>& names,
    const std::vector<double>& node_frequencies,
    const std::vector<std::tuple<NodeId, NodeId, double>>& edges,
    const DependencyGraphOptions& options) {
  EMS_DCHECK(names.size() == node_frequencies.size());
  DependencyGraph g;
  g.has_artificial_ = options.add_artificial_event;
  if (g.has_artificial_) g.AddNode("<X>", 1.0, {});
  const NodeId offset = g.has_artificial_ ? 1 : 0;
  for (size_t i = 0; i < names.size(); ++i) {
    g.AddNode(names[i], node_frequencies[i], {static_cast<EventId>(i)});
  }
  for (const auto& [a, b, f] : edges) {
    if (f < options.min_edge_frequency) continue;
    g.AddEdge(a + offset, b + offset, f);
  }
  if (g.has_artificial_) g.FinalizeArtificial();
  return g;
}

size_t DependencyGraph::NumEdges() const {
  size_t n = 0;
  for (const auto& adj : post_) n += adj.size();
  return n;
}

double DependencyGraph::EdgeFrequency(NodeId a, NodeId b) const {
  EMS_DCHECK(ValidNode(a) && ValidNode(b));
  const auto& nbrs = post_[static_cast<size_t>(a)];
  for (size_t i = 0; i < nbrs.size(); ++i) {
    if (nbrs[i] == b) return post_freq_[static_cast<size_t>(a)][i];
  }
  return 0.0;
}

double DependencyGraph::AverageDegree() const {
  if (names_.empty()) return 0.0;
  return static_cast<double>(NumEdges()) / static_cast<double>(names_.size());
}

namespace {

// Iterative Tarjan SCC over the real-edge subgraph (artificial node and
// its edges excluded). Returns the SCC id of each node (artificial gets
// -1) and whether each SCC is non-trivial (size > 1; self-loops cannot
// occur because the builder rejects them).
struct SccResult {
  std::vector<int> comp;       // node -> scc id, -1 for excluded nodes
  std::vector<bool> nontrivial;
  int num_comps = 0;
};

SccResult ComputeScc(const DependencyGraph& g, bool skip_artificial) {
  const size_t n = g.NumNodes();
  SccResult result;
  result.comp.assign(n, -1);
  std::vector<int> index(n, -1), low(n, 0);
  std::vector<bool> on_stack(n, false);
  std::vector<NodeId> stack;
  std::vector<size_t> comp_size;
  int next_index = 0;

  // Explicit DFS stack: (node, next-successor-position).
  std::vector<std::pair<NodeId, size_t>> dfs;
  for (NodeId start = 0; start < static_cast<NodeId>(n); ++start) {
    if (skip_artificial && g.IsArtificial(start)) continue;
    if (index[static_cast<size_t>(start)] != -1) continue;
    dfs.emplace_back(start, 0);
    while (!dfs.empty()) {
      auto& [v, pos] = dfs.back();
      if (pos == 0) {
        index[static_cast<size_t>(v)] = low[static_cast<size_t>(v)] =
            next_index++;
        stack.push_back(v);
        on_stack[static_cast<size_t>(v)] = true;
      }
      const auto& succ = g.Successors(v);
      bool descended = false;
      while (pos < succ.size()) {
        NodeId w = succ[pos++];
        if (skip_artificial && g.IsArtificial(w)) continue;
        if (index[static_cast<size_t>(w)] == -1) {
          dfs.emplace_back(w, 0);
          descended = true;
          break;
        }
        if (on_stack[static_cast<size_t>(w)]) {
          low[static_cast<size_t>(v)] =
              std::min(low[static_cast<size_t>(v)], index[static_cast<size_t>(w)]);
        }
      }
      if (descended) continue;
      // v finished: pop SCC if root.
      if (low[static_cast<size_t>(v)] == index[static_cast<size_t>(v)]) {
        size_t size = 0;
        while (true) {
          NodeId w = stack.back();
          stack.pop_back();
          on_stack[static_cast<size_t>(w)] = false;
          result.comp[static_cast<size_t>(w)] = result.num_comps;
          ++size;
          if (w == v) break;
        }
        comp_size.push_back(size);
        ++result.num_comps;
      }
      NodeId finished = v;
      dfs.pop_back();
      if (!dfs.empty()) {
        NodeId parent = dfs.back().first;
        low[static_cast<size_t>(parent)] =
            std::min(low[static_cast<size_t>(parent)],
                     low[static_cast<size_t>(finished)]);
      }
    }
  }
  result.nontrivial.resize(static_cast<size_t>(result.num_comps));
  for (int cid = 0; cid < result.num_comps; ++cid) {
    result.nontrivial[static_cast<size_t>(cid)] =
        comp_size[static_cast<size_t>(cid)] > 1;
  }
  return result;
}

// Longest distance from v^X to each node (`forward` = true) or from each
// node to v^X (`forward` = false), following real edges; nodes on or
// downstream of a cycle get kInfiniteDistance.
std::vector<int> LongestDistances(const DependencyGraph& g, bool forward) {
  const size_t n = g.NumNodes();
  EMS_DCHECK(g.has_artificial());
  SccResult scc = ComputeScc(g, /*skip_artificial=*/true);

  // Condensation DAG processed in reverse-Tarjan order (Tarjan emits SCCs
  // in reverse topological order of the condensation, i.e. successors
  // before predecessors for forward edges).
  // dist[v] = 1 (the artificial edge) + max over real in-neighbors (resp.
  // out-neighbors) of dist; infinite if v is in/under a nontrivial SCC.
  std::vector<int> dist(n, 0);
  std::vector<bool> infinite(n, false);

  // Process nodes grouped by SCC in topological order. For forward
  // distances, topological order of the condensation = reverse of Tarjan
  // emission order.
  std::vector<std::vector<NodeId>> comp_nodes(
      static_cast<size_t>(scc.num_comps));
  for (NodeId v = 0; v < static_cast<NodeId>(n); ++v) {
    int cid = scc.comp[static_cast<size_t>(v)];
    if (cid >= 0) comp_nodes[static_cast<size_t>(cid)].push_back(v);
  }

  auto neighbors_in = [&](NodeId v) -> const std::vector<NodeId>& {
    return forward ? g.Predecessors(v) : g.Successors(v);
  };

  // Tarjan emits components children-first w.r.t. forward edges, so
  // ascending cid visits successors before predecessors. Forward
  // distances consume predecessor values (process predecessors first:
  // descending); backward distances consume successor values (ascending).
  for (int step = 0; step < scc.num_comps; ++step) {
    int cid = forward ? (scc.num_comps - 1 - step) : step;
    const auto& nodes = comp_nodes[static_cast<size_t>(cid)];
    bool comp_infinite = scc.nontrivial[static_cast<size_t>(cid)];
    int comp_dist = 1;  // at minimum the direct artificial edge
    for (NodeId v : nodes) {
      for (NodeId u : neighbors_in(v)) {
        if (g.IsArtificial(u)) continue;
        int ucid = scc.comp[static_cast<size_t>(u)];
        if (ucid == cid) continue;  // intra-component edge
        if (infinite[static_cast<size_t>(u)]) {
          comp_infinite = true;
        } else {
          comp_dist = std::max(comp_dist, dist[static_cast<size_t>(u)] + 1);
        }
      }
    }
    for (NodeId v : nodes) {
      infinite[static_cast<size_t>(v)] = comp_infinite;
      dist[static_cast<size_t>(v)] =
          comp_infinite ? kInfiniteDistance : comp_dist;
    }
  }
  if (g.has_artificial()) dist[0] = 0;
  return dist;
}

}  // namespace

const std::vector<int>& DependencyGraph::LongestDistancesFromArtificial()
    const {
  if (longest_from_.empty() && !names_.empty()) {
    longest_from_ = LongestDistances(*this, /*forward=*/true);
  }
  return longest_from_;
}

const std::vector<int>& DependencyGraph::LongestDistancesToArtificial() const {
  if (longest_to_.empty() && !names_.empty()) {
    longest_to_ = LongestDistances(*this, /*forward=*/false);
  }
  return longest_to_;
}

namespace {

std::vector<NodeId> Reachable(const DependencyGraph& g, NodeId v,
                              bool reverse) {
  std::vector<bool> seen(g.NumNodes(), false);
  std::vector<NodeId> queue = {v};
  seen[static_cast<size_t>(v)] = true;
  std::vector<NodeId> out;
  while (!queue.empty()) {
    NodeId cur = queue.back();
    queue.pop_back();
    const auto& nbrs = reverse ? g.Predecessors(cur) : g.Successors(cur);
    for (NodeId w : nbrs) {
      if (g.IsArtificial(w)) continue;  // real paths only
      if (seen[static_cast<size_t>(w)]) continue;
      seen[static_cast<size_t>(w)] = true;
      out.push_back(w);
      queue.push_back(w);
    }
  }
  // Exclude v itself unless it lies on a cycle through itself; for the
  // pruning propositions self-reachability is irrelevant, so drop v.
  out.erase(std::remove(out.begin(), out.end(), v), out.end());
  return out;
}

}  // namespace

std::vector<NodeId> DependencyGraph::Ancestors(NodeId v) const {
  EMS_DCHECK(ValidNode(v));
  return Reachable(*this, v, /*reverse=*/true);
}

std::vector<NodeId> DependencyGraph::Descendants(NodeId v) const {
  EMS_DCHECK(ValidNode(v));
  return Reachable(*this, v, /*reverse=*/false);
}

Result<DependencyGraph> DependencyGraph::MergeNodes(
    const std::vector<NodeId>& nodes) const {
  if (nodes.size() < 2) {
    return Status::InvalidArgument("MergeNodes requires >= 2 nodes");
  }
  std::set<NodeId> merge_set;
  for (NodeId v : nodes) {
    if (!ValidNode(v) || IsArtificial(v)) {
      return Status::InvalidArgument("MergeNodes: invalid or artificial node");
    }
    if (!merge_set.insert(v).second) {
      return Status::InvalidArgument("MergeNodes: duplicate node");
    }
  }

  DependencyGraph g;
  g.has_artificial_ = has_artificial_;
  if (g.has_artificial_) g.AddNode("<X>", 1.0, {});

  // Old-node -> new-node map. Merged members all map to one node.
  std::vector<NodeId> remap(NumNodes(), -1);
  const NodeId start = has_artificial_ ? 1 : 0;

  // Merged node first (stable position), then survivors in order.
  std::vector<std::string> merged_parts;
  double merged_freq = 0.0;
  std::vector<EventId> merged_members;
  for (NodeId v : merge_set) {
    merged_parts.push_back(names_[static_cast<size_t>(v)]);
    merged_freq = std::max(merged_freq, node_freq_[static_cast<size_t>(v)]);
    for (EventId e : members_[static_cast<size_t>(v)]) {
      merged_members.push_back(e);
    }
  }
  std::sort(merged_members.begin(), merged_members.end());
  NodeId merged_id = static_cast<NodeId>(g.NumNodes());
  g.AddNode(Join(merged_parts, "+"), merged_freq, merged_members);
  for (NodeId v : merge_set) remap[static_cast<size_t>(v)] = merged_id;

  for (NodeId v = start; v < static_cast<NodeId>(NumNodes()); ++v) {
    if (merge_set.count(v)) continue;
    remap[static_cast<size_t>(v)] = static_cast<NodeId>(g.NumNodes());
    g.AddNode(names_[static_cast<size_t>(v)], node_freq_[static_cast<size_t>(v)],
              members_[static_cast<size_t>(v)]);
  }

  // Parallel edges keep the maximum frequency; internal edges vanish.
  std::map<std::pair<NodeId, NodeId>, double> new_edges;
  for (NodeId a = start; a < static_cast<NodeId>(NumNodes()); ++a) {
    const auto& succ = post_[static_cast<size_t>(a)];
    const auto& freq = post_freq_[static_cast<size_t>(a)];
    for (size_t i = 0; i < succ.size(); ++i) {
      NodeId b = succ[i];
      if (IsArtificial(b)) continue;  // artificial edges rebuilt below
      NodeId na = remap[static_cast<size_t>(a)];
      NodeId nb = remap[static_cast<size_t>(b)];
      if (na == nb) continue;
      auto key = std::make_pair(na, nb);
      auto it = new_edges.find(key);
      if (it == new_edges.end()) new_edges.emplace(key, freq[i]);
      else it->second = std::max(it->second, freq[i]);
    }
  }
  for (const auto& [key, f] : new_edges) g.AddEdge(key.first, key.second, f);
  if (g.has_artificial_) g.FinalizeArtificial();
  return g;
}

DependencyGraph DependencyGraph::FilterEdges(double threshold) const {
  DependencyGraph g;
  g.has_artificial_ = has_artificial_;
  const NodeId start = has_artificial_ ? 1 : 0;
  if (has_artificial_) g.AddNode("<X>", 1.0, {});
  for (NodeId v = start; v < static_cast<NodeId>(NumNodes()); ++v) {
    g.AddNode(names_[static_cast<size_t>(v)],
              node_freq_[static_cast<size_t>(v)],
              members_[static_cast<size_t>(v)]);
  }
  for (NodeId a = start; a < static_cast<NodeId>(NumNodes()); ++a) {
    const auto& succ = post_[static_cast<size_t>(a)];
    const auto& freq = post_freq_[static_cast<size_t>(a)];
    for (size_t i = 0; i < succ.size(); ++i) {
      if (IsArtificial(succ[i])) continue;
      if (freq[i] < threshold) continue;
      g.AddEdge(a, succ[i], freq[i]);
    }
  }
  if (g.has_artificial_) g.FinalizeArtificial();
  return g;
}

namespace {

CsrAdjacency FlattenAdjacency(const std::vector<std::vector<NodeId>>& nbrs,
                              const std::vector<std::vector<double>>& freqs) {
  CsrAdjacency csr;
  csr.offsets.resize(nbrs.size() + 1, 0);
  size_t total = 0;
  for (size_t v = 0; v < nbrs.size(); ++v) total += nbrs[v].size();
  csr.neighbors.reserve(total);
  csr.frequencies.reserve(total);
  for (size_t v = 0; v < nbrs.size(); ++v) {
    csr.offsets[v] = static_cast<int32_t>(csr.neighbors.size());
    csr.neighbors.insert(csr.neighbors.end(), nbrs[v].begin(), nbrs[v].end());
    csr.frequencies.insert(csr.frequencies.end(), freqs[v].begin(),
                           freqs[v].end());
  }
  csr.offsets[nbrs.size()] = static_cast<int32_t>(csr.neighbors.size());
  return csr;
}

}  // namespace

CsrAdjacency DependencyGraph::ExportPredecessorCsr() const {
  return FlattenAdjacency(pre_, pre_freq_);
}

CsrAdjacency DependencyGraph::ExportSuccessorCsr() const {
  return FlattenAdjacency(post_, post_freq_);
}

std::string DependencyGraph::DebugString() const {
  std::ostringstream out;
  out << "DependencyGraph(" << NumNodes() << " nodes, " << NumEdges()
      << " edges)\n";
  for (NodeId v = 0; v < static_cast<NodeId>(NumNodes()); ++v) {
    out << "  [" << v << "] " << NodeName(v) << " f="
        << FormatDouble(NodeFrequency(v), 3) << " ->";
    const auto& succ = post_[static_cast<size_t>(v)];
    const auto& freq = post_freq_[static_cast<size_t>(v)];
    for (size_t i = 0; i < succ.size(); ++i) {
      out << ' ' << NodeName(succ[i]) << '('
          << FormatDouble(freq[i], 2) << ')';
    }
    out << '\n';
  }
  return out.str();
}

}  // namespace ems
