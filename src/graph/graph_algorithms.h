// Generic graph helpers shared by the core similarity and the baselines:
// dense frequency-matrix extraction (OPQ operates on these), transitive
// closure, and simple reachability/topology queries.
#pragma once

#include <vector>

#include "graph/dependency_graph.h"

namespace ems {

/// Dense |V|x|V| matrix of edge frequencies f(a, b); entry [a][b] is 0 when
/// the edge is absent. Row/column order follows node ids. By default the
/// artificial node is excluded (OPQ and GED operate on the raw Definition-1
/// graph); pass include_artificial to keep it as row/column 0.
std::vector<std::vector<double>> FrequencyMatrix(const DependencyGraph& g,
                                                 bool include_artificial = false);

/// Node frequencies in the same order as FrequencyMatrix rows.
std::vector<double> NodeFrequencies(const DependencyGraph& g,
                                    bool include_artificial = false);

/// Boolean reachability closure over real edges (Floyd-Warshall on the
/// adjacency structure). closure[a][b] == true iff a path a -> ... -> b of
/// length >= 1 exists. Artificial node excluded.
std::vector<std::vector<bool>> TransitiveClosure(const DependencyGraph& g);

/// True if the real-edge subgraph (artificial node excluded) is acyclic.
bool IsAcyclic(const DependencyGraph& g);

/// Topological order of the real-edge subgraph; empty if cyclic. Node ids
/// in the returned order are DependencyGraph NodeIds (artificial excluded).
std::vector<NodeId> TopologicalOrder(const DependencyGraph& g);

}  // namespace ems
