// Incremental dependency-graph maintenance for streaming ingestion
// (docs/STREAMING.md). A batch of appended traces changes the graph in
// two very different ways:
//   * structurally, it is sparse — only direct-follows pairs whose trace
//     count crossed zero (or crossed the minimum-frequency threshold as
//     the denominator grew) add or remove edges, and only new vocabulary
//     adds nodes;
//   * numerically, it is dense — every normalized frequency is a count
//     divided by the trace total, so one appended trace rescales every
//     node and edge weight.
// StreamingDependencyGraph therefore keeps the cumulative distinct-event
// and distinct-succession trace counts, patches both adjacency
// directions in place for the structural delta, rewrites the frequency
// doubles with the exact count/num_traces divisions the batch builder
// uses, and re-derives longest-distance cache rows only for nodes whose
// path set could have changed (the reachability closure of the changed
// edges). The maintained graph is bit-identical to
// DependencyGraph::Build over the extended log — node order, edge order,
// every double, and both distance caches (pinned by
// tests/graph/streaming_graph_test.cc and the append-sequence fuzz in
// tests/property/streaming_property_test.cc).
#pragma once

#include <cstddef>
#include <map>
#include <utility>
#include <vector>

#include "graph/dependency_graph.h"
#include "log/event_log.h"

namespace ems {

/// Per-append maintenance report (feeds the stream.* serve metrics).
struct StreamingGraphStats {
  size_t appended_traces = 0;
  size_t new_nodes = 0;
  /// Real edges inserted (new pairs, or pairs that crossed the
  /// minimum-frequency threshold upward).
  size_t added_edges = 0;
  /// Real edges dropped (frequency fell below the threshold as the
  /// trace denominator grew).
  size_t removed_edges = 0;
  /// Longest-distance cache rows re-derived across both directions; 0
  /// when the caches were cold (still lazy) or the delta was purely
  /// numeric (distances depend on structure only).
  size_t distance_rows_invalidated = 0;
};

/// \brief Owns a DependencyGraph kept incrementally in sync with a
/// growing EventLog.
///
/// The log is borrowed and must outlive this object; it must only grow
/// through EventLog::AppendTraces between ApplyAppend calls (strict
/// extension — existing trace indices and EventIds unchanged). Not
/// thread-safe; callers serialize appends against readers of graph()
/// (the serve layer holds a per-session lock).
class StreamingDependencyGraph {
 public:
  explicit StreamingDependencyGraph(const EventLog& log,
                                    const DependencyGraphOptions& options = {});

  /// Folds traces [first_new_trace, log.NumTraces()) into the graph.
  /// `first_new_trace` is AppendDelta::first_new_trace of the
  /// corresponding EventLog::AppendTraces call (appends may be coalesced:
  /// folding two batches at once is equivalent to folding them one by
  /// one).
  StreamingGraphStats ApplyAppend(size_t first_new_trace);

  /// The maintained graph. Valid until the next ApplyAppend.
  const DependencyGraph& graph() const { return graph_; }

  size_t num_traces() const { return num_traces_; }
  const DependencyGraphOptions& options() const { return options_; }

 private:
  using EdgeKey = std::pair<EventId, EventId>;

  // Re-derives the rows of one longest-distance cache whose values could
  // have changed: the reachability closure (along `forward` edges) of
  // the changed-edge endpoints and new nodes, computed by a Tarjan pass
  // restricted to the closure with clean-boundary reads from the cached
  // array. Returns the number of rows rewritten.
  size_t MaintainDistances(std::vector<int>& dist, bool forward,
                           const std::vector<NodeId>& seeds) const;

  const EventLog& log_;
  DependencyGraphOptions options_;
  DependencyGraph graph_;
  size_t num_traces_ = 0;
  // Cumulative Definition-1 counters: traces containing each event /
  // each ordered direct-follows pair at least once.
  std::vector<size_t> event_trace_counts_;
  std::map<EdgeKey, size_t> follows_trace_counts_;
};

}  // namespace ems
