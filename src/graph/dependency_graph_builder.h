// Incremental dependency-graph construction for the composite search
// (Section 4). DependencyGraph::BuildWithComposites re-scans every trace
// of the log for every candidate the greedy loop evaluates; this builder
// summarizes the log ONCE — distinct-event and distinct-succession sets
// per group of equivalent traces — and aggregates candidate graphs from
// the summary in O(vocabulary + distinct successions) per build.
//
// The output is bit-identical to the trace-scan path: node order, edge
// order, members, and every frequency double match
// DependencyGraph::BuildWithComposites exactly (pinned by
// tests/graph/dependency_graph_builder_test.cc). The equivalence rests on
// two facts about run-collapsing a trace t under the member->composite
// map rho:
//   - the distinct events of collapse(t) are rho(distinct events of t);
//   - the distinct successions of collapse(t) are the image under rho of
//     the distinct successions of t, minus pairs with rho(a) == rho(b)
//     (a maximal run emits no internal succession, and (v, v) pairs never
//     become edges).
// Both are functions of the per-trace distinct sets alone, so traces with
// equal distinct sets can be aggregated with a multiplicity.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "graph/dependency_graph.h"
#include "log/event_log.h"
#include "util/status.h"

namespace ems {

namespace store {
struct SnapshotAccess;  // binary snapshot serializer (src/store/snapshot.h)
}  // namespace store

/// \brief Per-log summary that builds composite-collapsed dependency
/// graphs without re-scanning traces.
///
/// Construction scans the log once; BuildWithComposites is then const and
/// thread-safe (candidate evaluations of one greedy step share a builder
/// across workers). The log is borrowed and must outlive the builder.
class DependencyGraphBuilder {
 public:
  explicit DependencyGraphBuilder(const EventLog& log);

  /// Drop-in replacement for DependencyGraph::BuildWithComposites(log,
  /// composites, options): same graph, bit for bit, same error statuses.
  /// Falls back to the trace-scan path when any event name contains '+'
  /// (the composite display-name separator) — the only case where the
  /// rewritten log's name-interning could alias distinct symbols.
  Result<DependencyGraph> BuildWithComposites(
      const std::vector<std::vector<EventId>>& composites,
      const DependencyGraphOptions& options = {}) const;

  /// Folds traces [first_new_trace, log.NumTraces()) of the borrowed log
  /// into the summary (streaming ingestion, docs/STREAMING.md). The log
  /// must have grown in place via EventLog::AppendTraces;
  /// `first_new_trace` must equal num_traces(). The resulting builder
  /// state — group order, multiplicities, first-occurrence order — is
  /// identical to constructing a fresh builder over the extended log, so
  /// subsequent BuildWithComposites calls stay bit-identical to the
  /// trace-scan reference.
  void Append(size_t first_new_trace);

  /// Builds completed from the summary (no trace re-scan).
  uint64_t incremental_builds() const {
    return incremental_builds_.load(std::memory_order_relaxed);
  }

  /// Builds delegated to the reference trace-scan path ('+' in a name).
  uint64_t fallback_builds() const {
    return fallback_builds_.load(std::memory_order_relaxed);
  }

  size_t num_traces() const { return num_traces_; }

  /// Distinct (event set, succession set) classes found; the per-build
  /// work is proportional to their total size, not the log's.
  size_t num_trace_groups() const { return groups_.size(); }

 private:
  friend struct store::SnapshotAccess;

  // Snapshot restore: binds the log without scanning it; SnapshotAccess
  // fills the summary fields from a decoded GraphSummary artifact.
  struct RestoreTag {};
  DependencyGraphBuilder(const EventLog& log, RestoreTag) : log_(log) {}

  // One class of traces sharing distinct-event and distinct-succession
  // sets; `multiplicity` counts the traces in the class.
  struct TraceGroup {
    std::vector<EventId> events;                           // sorted
    std::vector<std::pair<EventId, EventId>> successions;  // sorted, a != b
    size_t multiplicity = 0;
  };

  const EventLog& log_;
  size_t num_traces_ = 0;
  // EventIds in order of first occurrence over the trace stream — the
  // interning order of the rewritten log's non-composite events. Events
  // never occurring in a trace are absent (they get no node, exactly as
  // in the reference path).
  std::vector<EventId> first_occurrence_;
  std::vector<TraceGroup> groups_;
  // '+' occurs in an event name: composite display names could collide
  // with singleton names under by-name interning; delegate to the
  // reference path instead of reproducing the aliasing arithmetic.
  bool plus_in_names_ = false;

  // Group key -> index into groups_, rebuilt lazily on the first Append
  // (the constructor's map is transient) and maintained thereafter.
  using GroupKey = std::pair<std::vector<EventId>,
                             std::vector<std::pair<EventId, EventId>>>;
  std::map<GroupKey, size_t> group_index_;
  bool has_group_index_ = false;

  mutable std::atomic<uint64_t> incremental_builds_{0};
  mutable std::atomic<uint64_t> fallback_builds_{0};
};

}  // namespace ems
