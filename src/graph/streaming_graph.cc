#include "graph/streaming_graph.h"

#include <algorithm>
#include <set>

namespace ems {

namespace {

constexpr size_t kNpos = static_cast<size_t>(-1);

// Length of the sorted real-neighbor prefix of one adjacency list; the
// trailing artificial entry FinalizeArtificial appends (node 0, always
// last) is excluded. The artificial node's own lists hold real nodes
// only, so the check is uniform.
size_t RealPrefixLen(const std::vector<NodeId>& nbrs, bool has_artificial) {
  if (has_artificial && !nbrs.empty() && nbrs.back() == 0) {
    return nbrs.size() - 1;
  }
  return nbrs.size();
}

// Position of `b` in the sorted real prefix of `nbrs`, or kNpos.
size_t FindReal(const std::vector<NodeId>& nbrs, bool has_artificial,
                NodeId b) {
  const size_t len = RealPrefixLen(nbrs, has_artificial);
  auto end = nbrs.begin() + static_cast<ptrdiff_t>(len);
  auto it = std::lower_bound(nbrs.begin(), end, b);
  if (it != end && *it == b) return static_cast<size_t>(it - nbrs.begin());
  return kNpos;
}

// Inserts `b` into the sorted real prefix, keeping the frequency array
// aligned (the value is rewritten by the frequency sweep).
void InsertReal(std::vector<NodeId>& nbrs, std::vector<double>& freqs,
                bool has_artificial, NodeId b) {
  const size_t len = RealPrefixLen(nbrs, has_artificial);
  auto end = nbrs.begin() + static_cast<ptrdiff_t>(len);
  auto it = std::lower_bound(nbrs.begin(), end, b);
  const size_t pos = static_cast<size_t>(it - nbrs.begin());
  nbrs.insert(it, b);
  freqs.insert(freqs.begin() + static_cast<ptrdiff_t>(pos), 0.0);
}

void EraseAt(std::vector<NodeId>& nbrs, std::vector<double>& freqs,
             size_t pos) {
  nbrs.erase(nbrs.begin() + static_cast<ptrdiff_t>(pos));
  freqs.erase(freqs.begin() + static_cast<ptrdiff_t>(pos));
}

}  // namespace

StreamingDependencyGraph::StreamingDependencyGraph(
    const EventLog& log, const DependencyGraphOptions& options)
    : log_(log),
      options_(options),
      graph_(DependencyGraph::Build(log, options)),
      num_traces_(log.NumTraces()),
      event_trace_counts_(log.NumEvents(), 0) {
  // Cumulative Definition-1 counters, folded exactly as LogStats does.
  std::set<EventId> seen_events;
  std::set<EdgeKey> seen_pairs;
  for (const Trace& t : log.traces()) {
    seen_events.clear();
    seen_pairs.clear();
    for (size_t i = 0; i < t.size(); ++i) {
      seen_events.insert(t[i]);
      if (i + 1 < t.size()) seen_pairs.emplace(t[i], t[i + 1]);
    }
    for (EventId v : seen_events) {
      ++event_trace_counts_[static_cast<size_t>(v)];
    }
    for (const EdgeKey& p : seen_pairs) ++follows_trace_counts_[p];
  }
}

StreamingGraphStats StreamingDependencyGraph::ApplyAppend(
    size_t first_new_trace) {
  StreamingGraphStats stats;
  EMS_DCHECK(first_new_trace == num_traces_);
  EMS_DCHECK(log_.NumTraces() >= first_new_trace);
  const bool art = graph_.has_artificial_;
  const NodeId offset = art ? 1 : 0;
  const size_t old_vocab = graph_.names_.size() - static_cast<size_t>(offset);
  stats.appended_traces = log_.NumTraces() - first_new_trace;
  if (stats.appended_traces == 0 && log_.NumEvents() == old_vocab) {
    return stats;
  }

  // 1. Fold the delta traces into the cumulative counters, remembering
  // which events were absent before (they gain artificial edges) and
  // which direct-follows pairs were touched (the threshold-free
  // membership fast path).
  event_trace_counts_.resize(log_.NumEvents(), 0);
  std::vector<char> was_absent(log_.NumEvents(), 0);
  for (size_t e = 0; e < event_trace_counts_.size(); ++e) {
    was_absent[e] = event_trace_counts_[e] == 0;
  }
  std::set<EdgeKey> touched_pairs;
  std::set<EventId> seen_events;
  std::set<EdgeKey> seen_pairs;
  for (size_t ti = first_new_trace; ti < log_.NumTraces(); ++ti) {
    const Trace& t = log_.trace(ti);
    seen_events.clear();
    seen_pairs.clear();
    for (size_t i = 0; i < t.size(); ++i) {
      seen_events.insert(t[i]);
      if (i + 1 < t.size()) seen_pairs.emplace(t[i], t[i + 1]);
    }
    for (EventId v : seen_events) {
      ++event_trace_counts_[static_cast<size_t>(v)];
    }
    for (const EdgeKey& p : seen_pairs) {
      ++follows_trace_counts_[p];
      touched_pairs.insert(p);
    }
  }
  num_traces_ = log_.NumTraces();

  // 2. New vocabulary becomes new nodes, in EventId order — Build's node
  // order, so existing NodeIds are a strict prefix of the rebuilt ones.
  std::vector<NodeId> new_nodes;
  for (size_t e = old_vocab; e < log_.NumEvents(); ++e) {
    new_nodes.push_back(static_cast<NodeId>(graph_.names_.size()));
    graph_.AddNode(log_.EventName(static_cast<EventId>(e)), 0.0,
                   {static_cast<EventId>(e)});
  }
  stats.new_nodes = new_nodes.size();

  // 3. Structural membership: an edge (a, b) exists iff a != b, its
  // trace count is nonzero, and count/num_traces clears the minimum
  // frequency. A growing denominator can push old edges below the
  // threshold, so a nonzero threshold rescans every counted pair; with
  // no threshold only pairs touched by the delta can change membership.
  const double traces = static_cast<double>(num_traces_);
  std::vector<std::pair<NodeId, NodeId>> added;
  std::vector<std::pair<NodeId, NodeId>> removed;
  auto apply_membership = [&](const EdgeKey& key, size_t count) {
    if (key.first == key.second) return;  // f(v, v) is node frequency
    const NodeId a = key.first + offset;
    const NodeId b = key.second + offset;
    const double f =
        num_traces_ == 0 ? 0.0 : static_cast<double>(count) / traces;
    const bool desired = count > 0 && !(f < options_.min_edge_frequency);
    const size_t pos =
        FindReal(graph_.post_[static_cast<size_t>(a)], art, b);
    if (desired == (pos != kNpos)) return;
    if (desired) {
      InsertReal(graph_.post_[static_cast<size_t>(a)],
                 graph_.post_freq_[static_cast<size_t>(a)], art, b);
      InsertReal(graph_.pre_[static_cast<size_t>(b)],
                 graph_.pre_freq_[static_cast<size_t>(b)], art, a);
      added.emplace_back(a, b);
    } else {
      EraseAt(graph_.post_[static_cast<size_t>(a)],
              graph_.post_freq_[static_cast<size_t>(a)], pos);
      const size_t ppos =
          FindReal(graph_.pre_[static_cast<size_t>(b)], art, a);
      EMS_DCHECK(ppos != kNpos);
      EraseAt(graph_.pre_[static_cast<size_t>(b)],
              graph_.pre_freq_[static_cast<size_t>(b)], ppos);
      removed.emplace_back(a, b);
    }
  };
  if (options_.min_edge_frequency > 0.0) {
    for (const auto& [key, count] : follows_trace_counts_) {
      apply_membership(key, count);
    }
  } else {
    for (const EdgeKey& key : touched_pairs) {
      apply_membership(key, follows_trace_counts_[key]);
    }
  }
  stats.added_edges = added.size();
  stats.removed_edges = removed.size();

  // 4. Events that went from absent to present gain their artificial
  // fan-in/out, placed exactly where FinalizeArtificial puts it: sorted
  // among the artificial node's real neighbors, trailing on the event's
  // own lists (after any real edges step 3 just inserted).
  if (art) {
    for (size_t e = 0; e < event_trace_counts_.size(); ++e) {
      if (!was_absent[e] || event_trace_counts_[e] == 0) continue;
      const NodeId v = static_cast<NodeId>(e) + offset;
      InsertReal(graph_.post_[0], graph_.post_freq_[0], art, v);
      graph_.pre_[static_cast<size_t>(v)].push_back(0);
      graph_.pre_freq_[static_cast<size_t>(v)].push_back(0.0);
      graph_.post_[static_cast<size_t>(v)].push_back(0);
      graph_.post_freq_[static_cast<size_t>(v)].push_back(0.0);
      InsertReal(graph_.pre_[0], graph_.pre_freq_[0], art, v);
    }
  }

  // 5. Numeric sweep: every normalized frequency is count/num_traces and
  // the denominator just changed, so rewrite them all with the same
  // double divisions LogStats evaluates — this is what makes the
  // maintained graph bit-identical to a from-scratch Build.
  const size_t n = graph_.names_.size();
  for (size_t v = 0; v < n; ++v) {
    if (art && v == 0) continue;  // f(v^X) is pinned at 1.0
    const EventId e = graph_.members_[v][0];
    graph_.node_freq_[v] =
        num_traces_ == 0
            ? 0.0
            : static_cast<double>(
                  event_trace_counts_[static_cast<size_t>(e)]) /
                  traces;
  }
  auto edge_freq = [&](NodeId a, NodeId b) -> double {
    if (art && a == 0) return graph_.node_freq_[static_cast<size_t>(b)];
    if (art && b == 0) return graph_.node_freq_[static_cast<size_t>(a)];
    const EventId ea = graph_.members_[static_cast<size_t>(a)][0];
    const EventId eb = graph_.members_[static_cast<size_t>(b)][0];
    auto it = follows_trace_counts_.find({ea, eb});
    EMS_DCHECK(it != follows_trace_counts_.end());
    return static_cast<double>(it->second) / traces;
  };
  for (size_t v = 0; v < n; ++v) {
    const auto& post = graph_.post_[v];
    auto& post_freq = graph_.post_freq_[v];
    for (size_t i = 0; i < post.size(); ++i) {
      post_freq[i] = edge_freq(static_cast<NodeId>(v), post[i]);
    }
    const auto& pre = graph_.pre_[v];
    auto& pre_freq = graph_.pre_freq_[v];
    for (size_t i = 0; i < pre.size(); ++i) {
      pre_freq[i] = edge_freq(pre[i], static_cast<NodeId>(v));
    }
  }

  // 6. Longest-distance maintenance. Distances depend on structure only,
  // so a purely numeric delta leaves warm caches untouched; otherwise
  // re-derive exactly the rows whose path set could have changed.
  if (art && (!added.empty() || !removed.empty() || !new_nodes.empty())) {
    std::vector<NodeId> fwd_seeds;
    std::vector<NodeId> bwd_seeds;
    for (const auto& [a, b] : added) {
      fwd_seeds.push_back(b);
      bwd_seeds.push_back(a);
    }
    for (const auto& [a, b] : removed) {
      fwd_seeds.push_back(b);
      bwd_seeds.push_back(a);
    }
    for (NodeId v : new_nodes) {
      fwd_seeds.push_back(v);
      bwd_seeds.push_back(v);
    }
    if (!graph_.longest_from_.empty()) {
      stats.distance_rows_invalidated +=
          MaintainDistances(graph_.longest_from_, /*forward=*/true,
                            fwd_seeds);
    }
    if (!graph_.longest_to_.empty()) {
      stats.distance_rows_invalidated +=
          MaintainDistances(graph_.longest_to_, /*forward=*/false,
                            bwd_seeds);
    }
  }
  return stats;
}

size_t StreamingDependencyGraph::MaintainDistances(
    std::vector<int>& dist, bool forward,
    const std::vector<NodeId>& seeds) const {
  const DependencyGraph& g = graph_;
  const size_t n = g.NumNodes();
  dist.resize(n, 0);

  // Dirty closure: every changed path from (resp. to) v^X traverses a
  // changed edge, so it passes that edge's downstream (resp. upstream)
  // endpoint — a seed. Closing the seeds under `forward` real edges of
  // the NEW graph therefore covers every node whose distance could
  // differ; all other rows are provably unchanged and stay cached.
  std::vector<char> dirty(n, 0);
  std::vector<NodeId> work;
  for (NodeId s : seeds) {
    if (dirty[static_cast<size_t>(s)]) continue;
    dirty[static_cast<size_t>(s)] = 1;
    work.push_back(s);
  }
  auto walk_nbrs = [&](NodeId v) -> const std::vector<NodeId>& {
    return forward ? g.Successors(v) : g.Predecessors(v);
  };
  auto in_nbrs = [&](NodeId v) -> const std::vector<NodeId>& {
    return forward ? g.Predecessors(v) : g.Successors(v);
  };
  while (!work.empty()) {
    const NodeId v = work.back();
    work.pop_back();
    for (NodeId w : walk_nbrs(v)) {
      if (g.IsArtificial(w) || dirty[static_cast<size_t>(w)]) continue;
      dirty[static_cast<size_t>(w)] = 1;
      work.push_back(w);
    }
  }

  // Tarjan restricted to the dirty set (a cycle through a dirty node is
  // entirely reachable from it, hence entirely dirty — induced SCCs are
  // full SCCs), mirroring the batch ComputeScc's iterative structure so
  // the condensation order semantics match LongestDistances exactly.
  std::vector<int> comp(n, -1);
  std::vector<int> index(n, -1);
  std::vector<int> low(n, 0);
  std::vector<char> on_stack(n, 0);
  std::vector<NodeId> scc_stack;
  std::vector<std::vector<NodeId>> comp_nodes;
  std::vector<char> nontrivial;
  int next_index = 0;
  std::vector<std::pair<NodeId, size_t>> dfs;
  for (NodeId start = 0; start < static_cast<NodeId>(n); ++start) {
    if (!dirty[static_cast<size_t>(start)]) continue;
    if (index[static_cast<size_t>(start)] != -1) continue;
    dfs.emplace_back(start, 0);
    while (!dfs.empty()) {
      auto& [v, pos] = dfs.back();
      if (pos == 0) {
        index[static_cast<size_t>(v)] = low[static_cast<size_t>(v)] =
            next_index++;
        scc_stack.push_back(v);
        on_stack[static_cast<size_t>(v)] = 1;
      }
      const auto& succ = g.Successors(v);
      bool descended = false;
      while (pos < succ.size()) {
        const NodeId w = succ[pos++];
        if (g.IsArtificial(w) || !dirty[static_cast<size_t>(w)]) continue;
        if (index[static_cast<size_t>(w)] == -1) {
          dfs.emplace_back(w, 0);
          descended = true;
          break;
        }
        if (on_stack[static_cast<size_t>(w)]) {
          low[static_cast<size_t>(v)] = std::min(
              low[static_cast<size_t>(v)], index[static_cast<size_t>(w)]);
        }
      }
      if (descended) continue;
      if (low[static_cast<size_t>(v)] == index[static_cast<size_t>(v)]) {
        comp_nodes.emplace_back();
        const int cid = static_cast<int>(comp_nodes.size()) - 1;
        while (true) {
          const NodeId w = scc_stack.back();
          scc_stack.pop_back();
          on_stack[static_cast<size_t>(w)] = 0;
          comp[static_cast<size_t>(w)] = cid;
          comp_nodes.back().push_back(w);
          if (w == v) break;
        }
        nontrivial.push_back(comp_nodes.back().size() > 1 ? 1 : 0);
      }
      const NodeId finished = v;
      dfs.pop_back();
      if (!dfs.empty()) {
        NodeId parent = dfs.back().first;
        low[static_cast<size_t>(parent)] =
            std::min(low[static_cast<size_t>(parent)],
                     low[static_cast<size_t>(finished)]);
      }
    }
  }

  // Condensation sweep over the dirty components. Forward distances
  // consume in-neighbor values, so predecessors go first (reverse Tarjan
  // emission); backward distances consume successor values (ascending).
  // In-neighbors outside the dirty set read their final value straight
  // from the cache; dirty in-neighbors always live in an
  // already-processed component.
  const int num_comps = static_cast<int>(comp_nodes.size());
  size_t rewritten = 0;
  for (int step = 0; step < num_comps; ++step) {
    const int cid = forward ? num_comps - 1 - step : step;
    const auto& nodes = comp_nodes[static_cast<size_t>(cid)];
    bool comp_infinite = nontrivial[static_cast<size_t>(cid)] != 0;
    int comp_dist = 1;  // at minimum the direct artificial edge
    for (NodeId v : nodes) {
      for (NodeId u : in_nbrs(v)) {
        if (g.IsArtificial(u)) continue;
        if (dirty[static_cast<size_t>(u)] &&
            comp[static_cast<size_t>(u)] == cid) {
          continue;  // intra-component edge
        }
        const int du = dist[static_cast<size_t>(u)];
        if (du == kInfiniteDistance) {
          comp_infinite = true;
        } else {
          comp_dist = std::max(comp_dist, du + 1);
        }
      }
    }
    for (NodeId v : nodes) {
      dist[static_cast<size_t>(v)] =
          comp_infinite ? kInfiniteDistance : comp_dist;
      ++rewritten;
    }
  }
  return rewritten;
}

}  // namespace ems
