// Graphviz export: dependency graphs and matching results as DOT, for
// debugging and documentation. `dot -Tsvg` renders the output directly.
#pragma once

#include <iosfwd>
#include <string>

#include "core/matcher.h"
#include "graph/dependency_graph.h"

namespace ems {

/// Options for DOT rendering.
struct DotOptions {
  /// Include the artificial event v^X and its edges.
  bool show_artificial = false;

  /// Label edges with their normalized frequencies.
  bool edge_frequencies = true;

  /// Graph name (DOT identifier).
  std::string name = "dependency_graph";
};

/// Writes one dependency graph as a DOT digraph.
Status WriteDot(const DependencyGraph& g, std::ostream& out,
                const DotOptions& options = {});

/// Writes a match result as a two-cluster DOT digraph: both dependency
/// graphs side by side with dashed cross-edges for every correspondence,
/// labeled by similarity.
Status WriteMatchDot(const MatchResult& result, std::ostream& out,
                     const DotOptions& options = {});

/// Renders WriteDot to a string (convenience for logging/tests).
std::string ToDot(const DependencyGraph& g, const DotOptions& options = {});

}  // namespace ems
