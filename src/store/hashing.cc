#include "store/hashing.h"

#include <cstring>
#include <fstream>

namespace ems {
namespace store {

namespace {

constexpr uint64_t kPrime1 = 11400714785074694791ULL;
constexpr uint64_t kPrime2 = 14029467366897019727ULL;
constexpr uint64_t kPrime3 = 1609587929392839161ULL;
constexpr uint64_t kPrime4 = 9650029242287828579ULL;
constexpr uint64_t kPrime5 = 2870177450012600261ULL;

inline uint64_t Rotl(uint64_t x, int r) {
  return (x << r) | (x >> (64 - r));
}

inline uint64_t Read64(const unsigned char* p) {
  uint64_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

inline uint64_t Read32(const unsigned char* p) {
  uint32_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

inline uint64_t Round(uint64_t acc, uint64_t input) {
  acc += input * kPrime2;
  acc = Rotl(acc, 31);
  acc *= kPrime1;
  return acc;
}

inline uint64_t MergeRound(uint64_t acc, uint64_t val) {
  acc ^= Round(0, val);
  acc = acc * kPrime1 + kPrime4;
  return acc;
}

}  // namespace

uint64_t Hash64(const void* data, size_t len, uint64_t seed) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  const unsigned char* end = p + len;
  uint64_t h;

  if (len >= 32) {
    uint64_t v1 = seed + kPrime1 + kPrime2;
    uint64_t v2 = seed + kPrime2;
    uint64_t v3 = seed;
    uint64_t v4 = seed - kPrime1;
    const unsigned char* limit = end - 32;
    do {
      v1 = Round(v1, Read64(p));
      v2 = Round(v2, Read64(p + 8));
      v3 = Round(v3, Read64(p + 16));
      v4 = Round(v4, Read64(p + 24));
      p += 32;
    } while (p <= limit);
    h = Rotl(v1, 1) + Rotl(v2, 7) + Rotl(v3, 12) + Rotl(v4, 18);
    h = MergeRound(h, v1);
    h = MergeRound(h, v2);
    h = MergeRound(h, v3);
    h = MergeRound(h, v4);
  } else {
    h = seed + kPrime5;
  }

  h += static_cast<uint64_t>(len);
  while (p + 8 <= end) {
    h ^= Round(0, Read64(p));
    h = Rotl(h, 27) * kPrime1 + kPrime4;
    p += 8;
  }
  if (p + 4 <= end) {
    h ^= Read32(p) * kPrime1;
    h = Rotl(h, 23) * kPrime2 + kPrime3;
    p += 4;
  }
  while (p < end) {
    h ^= (*p) * kPrime5;
    h = Rotl(h, 11) * kPrime1;
    ++p;
  }

  h ^= h >> 33;
  h *= kPrime2;
  h ^= h >> 29;
  h *= kPrime3;
  h ^= h >> 32;
  return h;
}

Result<uint64_t> HashFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open '" + path + "' for hashing");
  // Chunked XXH64 would avoid holding the file, but event logs are read
  // fully by the parsers anyway; one contiguous read keeps the hash
  // byte-for-byte equal to Hash64(entire contents).
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  if (in.bad()) return Status::IOError("read error hashing '" + path + "'");
  return Hash64(contents.data(), contents.size());
}

std::string HashHex(uint64_t h) {
  static const char* kDigits = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<size_t>(i)] = kDigits[h & 0xF];
    h >>= 4;
  }
  return out;
}

namespace {

// One tagged field folds in as hash(name) then hash(value bytes), each
// chained through the accumulator as the seed — order-sensitive, and a
// field's name always hashes adjacent to its value.
uint64_t Fold(uint64_t acc, std::string_view name, const void* value,
              size_t len) {
  acc = Hash64(name.data(), name.size(), acc);
  return Hash64(value, len, acc);
}

}  // namespace

FingerprintBuilder& FingerprintBuilder::Add(std::string_view name,
                                            std::string_view value) {
  acc_ = Fold(acc_, name, value.data(), value.size());
  return *this;
}

FingerprintBuilder& FingerprintBuilder::Add(std::string_view name,
                                            uint64_t value) {
  acc_ = Fold(acc_, name, &value, sizeof(value));
  return *this;
}

FingerprintBuilder& FingerprintBuilder::Add(std::string_view name,
                                            double value) {
  uint64_t bits;
  std::memcpy(&bits, &value, sizeof(bits));
  acc_ = Fold(acc_, name, &bits, sizeof(bits));
  return *this;
}

FingerprintBuilder& FingerprintBuilder::Add(std::string_view name,
                                            bool value) {
  const unsigned char byte = value ? 1 : 0;
  acc_ = Fold(acc_, name, &byte, sizeof(byte));
  return *this;
}

}  // namespace store
}  // namespace ems
