// Content-addressed on-disk cache of snapshot artifacts — the
// persistence layer of docs/PERSISTENCE.md. A store is one directory of
// framed snapshots (src/store/snapshot.h), each named by its key:
//
//   <kind>-<content hash hex>-<options fingerprint hex>.emsnap
//
// so a key changes whenever the source bytes or any derivation option
// changes, and stale entries are simply never addressed again. Writes
// are atomic (tmp file + rename); loads verify the envelope checksum
// and NEVER surface corruption to the caller — a short read, version
// skew, checksum mismatch, or wrong kind counts store.fallback_rederives,
// evicts the bad file, and returns nullopt so the caller re-derives
// from source. An optional byte budget evicts least-recently-used
// entries (by file mtime, refreshed on every hit) after each write.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>

#include "store/snapshot.h"
#include "util/status.h"

namespace ems {

struct ObsContext;

namespace store {

/// Identity of one cached artifact. Two keys collide only if the kind,
/// the source content hash, AND the options fingerprint all match — at
/// which point the cached bytes are interchangeable with re-deriving.
struct ArtifactKey {
  ArtifactKind kind = ArtifactKind::kEventLog;
  /// XXH64 of the source bytes the artifact derives from (for logs: the
  /// raw file; for graphs/label caches: the log snapshot they came from).
  uint64_t content_hash = 0;
  /// FingerprintBuilder digest of every option that affects derivation.
  uint64_t fingerprint = 0;

  /// "<kind>-<hash hex>-<fingerprint hex>.emsnap"
  std::string FileName() const;
};

struct ArtifactStoreOptions {
  /// Cache directory; created (with parents) by Open.
  std::string dir;
  /// Byte budget over all .emsnap files; 0 disables eviction.
  uint64_t max_bytes = 0;
  /// Metrics sink for the store.* counters (docs/OBSERVABILITY.md);
  /// null runs without instrumentation.
  ObsContext* obs = nullptr;
};

/// \brief Directory-backed artifact cache with graceful fallback.
///
/// Thread-safe: Load and Store serialize on an internal mutex (file
/// system work is trivial next to the parse/derive it saves). Multiple
/// processes may share a directory — atomic renames keep files
/// internally consistent, and verification catches anything else.
class ArtifactStore {
 public:
  /// Creates `options.dir` if needed. IOError if that fails.
  static Result<ArtifactStore> Open(ArtifactStoreOptions options);

  ArtifactStore(ArtifactStore&&) = default;
  ArtifactStore& operator=(ArtifactStore&&) = default;

  /// The verified snapshot bytes for `key`, or nullopt when absent or
  /// invalid (counted as store.misses resp. store.fallback_rederives —
  /// invalid files are also deleted so the next Store replaces them).
  /// A hit refreshes the entry's mtime for LRU and counts store.hits
  /// and store.bytes_read.
  std::optional<std::string> Load(const ArtifactKey& key);

  /// Atomically writes `snapshot` (already framed by SnapshotWriter)
  /// under `key`, then enforces the byte budget by deleting
  /// least-recently-used entries (store.evictions). Write failures are
  /// swallowed after counting store.write_errors: the cache being
  /// unwritable must not fail the pipeline.
  void Store(const ArtifactKey& key, std::string_view snapshot);

  /// Bytes currently held in .emsnap files (directory scan).
  uint64_t TotalBytes() const;

  const std::string& dir() const { return options_.dir; }
  uint64_t max_bytes() const { return options_.max_bytes; }
  ObsContext* obs() const { return options_.obs; }

 private:
  explicit ArtifactStore(ArtifactStoreOptions options);

  void EnforceBudgetLocked();

  ArtifactStoreOptions options_;
  std::unique_ptr<std::mutex> mu_;  // unique_ptr keeps the store movable
  uint64_t tmp_counter_ = 0;
};

/// Fingerprint of event-log parsing: the resolved format name. Logs
/// parsed from the same bytes as CSV vs XES are distinct artifacts.
uint64_t LogFingerprint(std::string_view format_name);

}  // namespace store
}  // namespace ems
