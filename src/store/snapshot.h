// Versioned, checksummed binary snapshots of the pipeline's derived
// artifacts — the serialization layer of the persistent artifact store
// (docs/PERSISTENCE.md).
//
// Every snapshot is one self-describing blob:
//
//   header  (24 bytes): magic "EMS1" | format version | artifact kind |
//                       reserved 0   | payload size (u64)
//   payload (n bytes):  artifact-specific field stream
//   trailer (8 bytes):  XXH64 of header + payload
//
// Integers and doubles are fixed-width native-endian (snapshots are a
// same-machine cache, not an interchange format); doubles round-trip by
// bit pattern, so decoded artifacts reproduce the source bit for bit.
// Any malformed input — short read, bad magic, version skew, wrong kind,
// checksum mismatch, or an inconsistent payload — decodes to an error
// Status, never a crash: readers bounds-check every field and decoders
// validate counts and ids before allocating.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/status.h"

namespace ems {

class EventLog;
class DependencyGraph;
class DependencyGraphBuilder;
class CachedLabelSimilarity;
struct WarmSeed;

namespace prob {
struct SoftMatchResult;
}

namespace store {

/// What a snapshot contains; written into the header and into cache
/// file names, so a key never deserializes as the wrong type.
enum class ArtifactKind : uint32_t {
  kEventLog = 1,         // interned vocabulary + trace multiset
  kDependencyGraph = 2,  // nodes, adjacency, cached l(v) distances
  kGraphSummary = 3,     // DependencyGraphBuilder trace-group summary
  kLabelCache = 4,       // CachedLabelSimilarity score memo
  kCorpusIndex = 5,      // corpus top-k index (src/index/corpus_io.h)
  kSimilarityMatrix = 6,  // warm-start seed: per-direction EMS fixpoints
  kSoftMatch = 7,         // EM posterior + MAP (src/prob/soft_match.h)
};

/// Short lowercase name ("log", "graph", ...) used in cache file names;
/// "unknown" for unrecognized values.
const char* ArtifactKindName(ArtifactKind kind);

/// "EMS1" read as a little-endian u32.
inline constexpr uint32_t kSnapshotMagic = 0x31534D45u;

/// Bump whenever any payload layout changes: old files then fail
/// verification and fall back to re-deriving from source.
inline constexpr uint32_t kSnapshotVersion = 1;

inline constexpr size_t kSnapshotHeaderBytes = 24;
inline constexpr size_t kSnapshotTrailerBytes = 8;

/// Checks the envelope only (length, magic, version, kind, payload size,
/// trailer checksum) — cheap enough to run on every cache read.
Status VerifySnapshot(std::string_view snapshot, ArtifactKind expected);

/// \brief Appends fixed-width fields to a payload, then frames it.
class SnapshotWriter {
 public:
  void U8(uint8_t v);
  void U32(uint32_t v);
  void U64(uint64_t v);
  void I32(int32_t v);
  void F64(double v);  // bit pattern, exact round-trip incl. -0.0 / NaN
  void Str(std::string_view s);

  /// The framed snapshot: header + payload + checksum trailer.
  std::string Finish(ArtifactKind kind) const;

  size_t payload_size() const { return payload_.size(); }

 private:
  std::string payload_;
};

/// \brief Bounds-checked field reader with a sticky error.
///
/// Getters return 0/empty once any read has failed; decoders check ok()
/// at structural boundaries instead of per field. CheckCount guards
/// element counts against allocation bombs from corrupted lengths.
class SnapshotReader {
 public:
  /// Verifies the envelope and positions the cursor at the payload.
  static Result<SnapshotReader> Open(std::string_view snapshot,
                                     ArtifactKind expected);

  uint8_t U8();
  uint32_t U32();
  uint64_t U64();
  int32_t I32();
  double F64();
  std::string Str();

  /// True if `count` elements of at least `min_bytes_each` could still
  /// fit in the remaining payload; sets the sticky error otherwise.
  bool CheckCount(uint64_t count, size_t min_bytes_each);

  /// Fails unless the payload was consumed exactly.
  Status ExpectEnd();

  size_t remaining() const { return end_ - pos_; }
  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

 private:
  SnapshotReader(const char* begin, const char* end)
      : pos_(begin), end_(end) {}

  bool Take(void* out, size_t n);
  void Fail(const std::string& what);

  const char* pos_;
  const char* end_;
  Status status_;
};

// ---------------------------------------------------------------------
// Typed serializers. Every Encode returns a fully framed snapshot;
// every Decode verifies the envelope itself (so callers can hand raw
// file bytes straight in) and reproduces the artifact bit-identically:
// re-encoding a decoded artifact yields the same bytes, and matching on
// decoded artifacts equals matching on freshly derived ones.
// ---------------------------------------------------------------------

/// Event log: vocabulary in EventId order + every trace.
std::string EncodeEventLog(const EventLog& log);
Result<EventLog> DecodeEventLog(std::string_view snapshot);

/// Dependency graph: nodes (name, frequency, members) and both
/// adjacency directions with edge frequencies — the exact arrays CSR
/// exports flatten, so ExportPredecessorCsr/ExportSuccessorCsr of a
/// decoded graph equal the source's. With `include_distances` (default)
/// the lazy longest-distance caches are computed now and embedded, so a
/// warm-started graph skips that derivation too.
std::string EncodeDependencyGraph(const DependencyGraph& g,
                                  bool include_distances = true);
Result<DependencyGraph> DecodeDependencyGraph(std::string_view snapshot);

/// Trace-group summary of a DependencyGraphBuilder (PR 4). Decoding
/// binds the summary to `log`, which must be the log the summary was
/// built from (the store keys summaries by the log's content hash; ids
/// out of range for `log` fail cleanly).
std::string EncodeGraphSummary(const DependencyGraphBuilder& builder);
Result<std::unique_ptr<DependencyGraphBuilder>> DecodeGraphSummary(
    std::string_view snapshot, const EventLog& log);

/// Label-similarity score memo. The wrapped measure's Name() is
/// embedded and checked on import, so a memo never replays scores into
/// a cache over a different measure.
std::string EncodeLabelCache(const CachedLabelSimilarity& cache);
Status DecodeLabelCacheInto(std::string_view snapshot,
                            CachedLabelSimilarity* cache);

/// Warm-start seed (src/core/warm_match.h): both per-direction EMS
/// fixpoint matrices plus the chain's cold-iteration baseline. The store
/// keys these by the content hashes of BOTH logs and the match-option
/// fingerprint, so a restarted server only resumes a seed produced by
/// the exact state it is re-matching. Only valid seeds encode.
std::string EncodeWarmSeed(const WarmSeed& seed);
Result<WarmSeed> DecodeWarmSeed(std::string_view snapshot);

/// EM soft-match posterior (src/prob/soft_match.h): responsibilities,
/// column priors, MAP assignment, per-row modes/entropies and the
/// convergence stats. The store keys these like warm seeds — content
/// hashes of both logs plus the match-option fingerprint (temperature,
/// tolerance, iteration caps included), so a cached posterior is only
/// replayed for the exact run that produced it. Decoding validates all
/// per-row/per-column array lengths against the posterior shape.
std::string EncodeSoftMatch(const prob::SoftMatchResult& soft);
Result<prob::SoftMatchResult> DecodeSoftMatch(std::string_view snapshot);

/// Size EncodeEventLog(log) would produce, computed arithmetically
/// (no encoding) — the cost estimate for byte-budget caches.
size_t EstimateLogSnapshotBytes(const EventLog& log);

}  // namespace store
}  // namespace ems
