// Content hashing for the persistent artifact store: a self-contained
// XXH64 implementation (Collet's xxHash, 64-bit variant) used for cache
// keys, options fingerprints, and snapshot trailer checksums. The
// algorithm is fixed — hashes are written into on-disk cache file names
// and snapshot trailers, so changing it invalidates every cache (bump
// kSnapshotVersion in snapshot.h if that ever becomes necessary).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "util/status.h"

namespace ems {
namespace store {

/// XXH64 of `len` bytes at `data`.
uint64_t Hash64(const void* data, size_t len, uint64_t seed = 0);

inline uint64_t Hash64(std::string_view bytes, uint64_t seed = 0) {
  return Hash64(bytes.data(), bytes.size(), seed);
}

/// XXH64 of a whole file's contents (IOError when unreadable). The file
/// is read once; for event logs this is far cheaper than parsing, which
/// is what makes content-addressed cache keys affordable per request.
Result<uint64_t> HashFile(const std::string& path);

/// 16-character lowercase hex rendering (stable across platforms; used
/// in cache file names).
std::string HashHex(uint64_t h);

/// \brief Order-sensitive fingerprint of a set of tagged option fields.
///
/// Add each field as (name, value); Finish() folds them into one 64-bit
/// fingerprint. Two option sets collide only if they agree on every
/// tagged field, so a fingerprint in a cache key invalidates entries
/// whenever any relevant option changes.
class FingerprintBuilder {
 public:
  FingerprintBuilder& Add(std::string_view name, std::string_view value);
  FingerprintBuilder& Add(std::string_view name, uint64_t value);
  FingerprintBuilder& Add(std::string_view name, double value);
  FingerprintBuilder& Add(std::string_view name, bool value);

  uint64_t Finish() const { return acc_; }

 private:
  uint64_t acc_ = 0x9e3779b97f4a7c15ULL;  // arbitrary non-zero start
};

}  // namespace store
}  // namespace ems
