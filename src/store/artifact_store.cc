#include "store/artifact_store.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <system_error>
#include <vector>

#include "obs/context.h"
#include "store/hashing.h"

namespace ems {
namespace store {

namespace fs = std::filesystem;

namespace {

constexpr std::string_view kSnapshotExtension = ".emsnap";

bool ReadFileBytes(const fs::path& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  out->assign(std::istreambuf_iterator<char>(in),
              std::istreambuf_iterator<char>());
  return !in.bad();
}

void RemoveQuietly(const fs::path& path) {
  std::error_code ec;
  fs::remove(path, ec);
}

}  // namespace

std::string ArtifactKey::FileName() const {
  std::string name = ArtifactKindName(kind);
  name.push_back('-');
  name += HashHex(content_hash);
  name.push_back('-');
  name += HashHex(fingerprint);
  name += kSnapshotExtension;
  return name;
}

ArtifactStore::ArtifactStore(ArtifactStoreOptions options)
    : options_(std::move(options)), mu_(std::make_unique<std::mutex>()) {}

Result<ArtifactStore> ArtifactStore::Open(ArtifactStoreOptions options) {
  if (options.dir.empty()) {
    return Status::InvalidArgument("artifact store directory is empty");
  }
  std::error_code ec;
  fs::create_directories(options.dir, ec);
  if (ec || !fs::is_directory(options.dir)) {
    return Status::IOError("cannot create artifact store directory '" +
                           options.dir + "': " + ec.message());
  }
  return ArtifactStore(std::move(options));
}

std::optional<std::string> ArtifactStore::Load(const ArtifactKey& key) {
  std::lock_guard<std::mutex> lock(*mu_);
  const fs::path path = fs::path(options_.dir) / key.FileName();
  std::string bytes;
  if (!ReadFileBytes(path, &bytes)) {
    ObsIncrement(options_.obs, "store.misses");
    return std::nullopt;
  }
  const Status verified = VerifySnapshot(bytes, key.kind);
  if (!verified.ok()) {
    // Corrupt, truncated, or version-skewed: drop the file so the next
    // Store replaces it, and tell the caller to re-derive from source.
    ObsIncrement(options_.obs, "store.fallback_rederives");
    RemoveQuietly(path);
    return std::nullopt;
  }
  ObsIncrement(options_.obs, "store.hits");
  ObsIncrement(options_.obs, "store.bytes_read", bytes.size());
  std::error_code ec;
  fs::last_write_time(path, fs::file_time_type::clock::now(), ec);  // LRU touch
  return bytes;
}

void ArtifactStore::Store(const ArtifactKey& key, std::string_view snapshot) {
  std::lock_guard<std::mutex> lock(*mu_);
  const fs::path dir(options_.dir);
  const fs::path final_path = dir / key.FileName();
  const fs::path tmp_path =
      dir / (key.FileName() + ".tmp" + std::to_string(tmp_counter_++));
  {
    std::ofstream out(tmp_path, std::ios::binary | std::ios::trunc);
    if (out) out.write(snapshot.data(), snapshot.size());
    if (!out) {
      ObsIncrement(options_.obs, "store.write_errors");
      RemoveQuietly(tmp_path);
      return;
    }
  }
  std::error_code ec;
  fs::rename(tmp_path, final_path, ec);
  if (ec) {
    ObsIncrement(options_.obs, "store.write_errors");
    RemoveQuietly(tmp_path);
    return;
  }
  ObsIncrement(options_.obs, "store.writes");
  ObsIncrement(options_.obs, "store.bytes_written", snapshot.size());
  EnforceBudgetLocked();
}

uint64_t ArtifactStore::TotalBytes() const {
  std::lock_guard<std::mutex> lock(*mu_);
  uint64_t total = 0;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(options_.dir, ec)) {
    if (entry.path().extension() == kSnapshotExtension) {
      std::error_code size_ec;
      const uint64_t size = entry.file_size(size_ec);
      if (!size_ec) total += size;
    }
  }
  return total;
}

void ArtifactStore::EnforceBudgetLocked() {
  if (options_.max_bytes == 0) return;
  struct Entry {
    fs::path path;
    uint64_t bytes;
    fs::file_time_type mtime;
  };
  std::vector<Entry> entries;
  uint64_t total = 0;
  std::error_code ec;
  for (const auto& item : fs::directory_iterator(options_.dir, ec)) {
    if (item.path().extension() != kSnapshotExtension) continue;
    std::error_code item_ec;
    const uint64_t bytes = item.file_size(item_ec);
    const auto mtime = item.last_write_time(item_ec);
    if (item_ec) continue;
    total += bytes;
    entries.push_back({item.path(), bytes, mtime});
  }
  if (total <= options_.max_bytes) return;
  std::sort(entries.begin(), entries.end(),
            [](const Entry& a, const Entry& b) { return a.mtime < b.mtime; });
  for (const Entry& entry : entries) {
    if (total <= options_.max_bytes) break;
    RemoveQuietly(entry.path);
    total -= std::min(total, entry.bytes);
    ObsIncrement(options_.obs, "store.evictions");
  }
}

uint64_t LogFingerprint(std::string_view format_name) {
  return FingerprintBuilder()
      .Add("artifact", "event_log")
      .Add("format", format_name)
      .Finish();
}

}  // namespace store
}  // namespace ems
