#include "store/snapshot.h"

#include <cstring>

#include "core/warm_match.h"
#include "graph/dependency_graph.h"
#include "graph/dependency_graph_builder.h"
#include "log/event_log.h"
#include "prob/soft_match.h"
#include "store/hashing.h"
#include "text/cached_label_similarity.h"

namespace ems {
namespace store {

const char* ArtifactKindName(ArtifactKind kind) {
  switch (kind) {
    case ArtifactKind::kEventLog: return "log";
    case ArtifactKind::kDependencyGraph: return "graph";
    case ArtifactKind::kGraphSummary: return "summary";
    case ArtifactKind::kLabelCache: return "labels";
    case ArtifactKind::kCorpusIndex: return "corpus";
    case ArtifactKind::kSimilarityMatrix: return "seed";
    case ArtifactKind::kSoftMatch: return "soft";
  }
  return "unknown";
}

namespace {

void AppendRaw(std::string* out, const void* data, size_t n) {
  out->append(static_cast<const char*>(data), n);
}

void AppendU32(std::string* out, uint32_t v) { AppendRaw(out, &v, sizeof(v)); }
void AppendU64(std::string* out, uint64_t v) { AppendRaw(out, &v, sizeof(v)); }

}  // namespace

void SnapshotWriter::U8(uint8_t v) { AppendRaw(&payload_, &v, sizeof(v)); }
void SnapshotWriter::U32(uint32_t v) { AppendU32(&payload_, v); }
void SnapshotWriter::U64(uint64_t v) { AppendU64(&payload_, v); }

void SnapshotWriter::I32(int32_t v) {
  uint32_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  AppendU32(&payload_, bits);
}

void SnapshotWriter::F64(double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  AppendU64(&payload_, bits);
}

void SnapshotWriter::Str(std::string_view s) {
  U64(s.size());
  AppendRaw(&payload_, s.data(), s.size());
}

std::string SnapshotWriter::Finish(ArtifactKind kind) const {
  std::string out;
  out.reserve(kSnapshotHeaderBytes + payload_.size() + kSnapshotTrailerBytes);
  AppendU32(&out, kSnapshotMagic);
  AppendU32(&out, kSnapshotVersion);
  AppendU32(&out, static_cast<uint32_t>(kind));
  AppendU32(&out, 0);  // reserved
  AppendU64(&out, payload_.size());
  out += payload_;
  AppendU64(&out, Hash64(out.data(), out.size()));
  return out;
}

Status VerifySnapshot(std::string_view snapshot, ArtifactKind expected) {
  if (snapshot.size() < kSnapshotHeaderBytes + kSnapshotTrailerBytes) {
    return Status::ParseError("snapshot truncated: " +
                              std::to_string(snapshot.size()) + " bytes");
  }
  const char* p = snapshot.data();
  uint32_t magic, version, kind;
  uint64_t payload_size;
  std::memcpy(&magic, p, sizeof(magic));
  std::memcpy(&version, p + 4, sizeof(version));
  std::memcpy(&kind, p + 8, sizeof(kind));
  std::memcpy(&payload_size, p + 16, sizeof(payload_size));
  if (magic != kSnapshotMagic) {
    return Status::ParseError("snapshot has bad magic");
  }
  if (version != kSnapshotVersion) {
    return Status::ParseError("snapshot version skew: file has v" +
                              std::to_string(version) + ", expected v" +
                              std::to_string(kSnapshotVersion));
  }
  if (kind != static_cast<uint32_t>(expected)) {
    return Status::ParseError(
        "snapshot kind mismatch: expected " +
        std::string(ArtifactKindName(expected)) + " (" +
        std::to_string(static_cast<uint32_t>(expected)) + "), file has " +
        std::to_string(kind));
  }
  if (payload_size !=
      snapshot.size() - kSnapshotHeaderBytes - kSnapshotTrailerBytes) {
    return Status::ParseError("snapshot payload size mismatch");
  }
  const size_t hashed = snapshot.size() - kSnapshotTrailerBytes;
  uint64_t recorded;
  std::memcpy(&recorded, p + hashed, sizeof(recorded));
  if (recorded != Hash64(p, hashed)) {
    return Status::ParseError("snapshot checksum mismatch");
  }
  return Status::OK();
}

Result<SnapshotReader> SnapshotReader::Open(std::string_view snapshot,
                                            ArtifactKind expected) {
  EMS_RETURN_NOT_OK(VerifySnapshot(snapshot, expected));
  const char* begin = snapshot.data() + kSnapshotHeaderBytes;
  const char* end = snapshot.data() + snapshot.size() - kSnapshotTrailerBytes;
  return SnapshotReader(begin, end);
}

void SnapshotReader::Fail(const std::string& what) {
  if (status_.ok()) status_ = Status::ParseError("snapshot corrupt: " + what);
}

bool SnapshotReader::Take(void* out, size_t n) {
  if (!status_.ok()) return false;
  if (remaining() < n) {
    Fail("short read");
    return false;
  }
  std::memcpy(out, pos_, n);
  pos_ += n;
  return true;
}

uint8_t SnapshotReader::U8() {
  uint8_t v = 0;
  Take(&v, sizeof(v));
  return v;
}

uint32_t SnapshotReader::U32() {
  uint32_t v = 0;
  Take(&v, sizeof(v));
  return v;
}

uint64_t SnapshotReader::U64() {
  uint64_t v = 0;
  Take(&v, sizeof(v));
  return v;
}

int32_t SnapshotReader::I32() {
  uint32_t bits = U32();
  int32_t v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

double SnapshotReader::F64() {
  uint64_t bits = U64();
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

std::string SnapshotReader::Str() {
  uint64_t len = U64();
  if (!status_.ok()) return std::string();
  if (remaining() < len) {
    Fail("string length exceeds payload");
    return std::string();
  }
  std::string s(pos_, pos_ + len);
  pos_ += len;
  return s;
}

bool SnapshotReader::CheckCount(uint64_t count, size_t min_bytes_each) {
  if (!status_.ok()) return false;
  if (min_bytes_each != 0 && count > remaining() / min_bytes_each) {
    Fail("element count exceeds payload");
    return false;
  }
  return true;
}

Status SnapshotReader::ExpectEnd() {
  EMS_RETURN_NOT_OK(status_);
  if (remaining() != 0) {
    return Status::ParseError("snapshot corrupt: " +
                              std::to_string(remaining()) +
                              " trailing payload bytes");
  }
  return Status::OK();
}

// ---------------------------------------------------------------------
// EventLog
// ---------------------------------------------------------------------

std::string EncodeEventLog(const EventLog& log) {
  SnapshotWriter w;
  w.U64(log.NumEvents());
  for (const std::string& name : log.event_names()) w.Str(name);
  w.U64(log.NumTraces());
  for (const Trace& t : log.traces()) {
    w.U64(t.size());
    for (EventId e : t) w.I32(e);
  }
  return w.Finish(ArtifactKind::kEventLog);
}

Result<EventLog> DecodeEventLog(std::string_view snapshot) {
  EMS_ASSIGN_OR_RETURN(SnapshotReader r,
                       SnapshotReader::Open(snapshot, ArtifactKind::kEventLog));
  EventLog log;
  const uint64_t num_events = r.U64();
  if (!r.CheckCount(num_events, 8)) return r.status();
  for (uint64_t i = 0; i < num_events && r.ok(); ++i) {
    log.AddEvent(r.Str());
    if (log.NumEvents() != i + 1) {
      return Status::ParseError("snapshot corrupt: duplicate event name");
    }
  }
  EMS_RETURN_NOT_OK(r.status());
  const uint64_t num_traces = r.U64();
  if (!r.CheckCount(num_traces, 8)) return r.status();
  for (uint64_t i = 0; i < num_traces && r.ok(); ++i) {
    const uint64_t len = r.U64();
    if (!r.CheckCount(len, 4)) return r.status();
    Trace t;
    t.reserve(len);
    for (uint64_t j = 0; j < len; ++j) {
      EventId e = r.I32();
      if (e < 0 || static_cast<uint64_t>(e) >= num_events) {
        return Status::ParseError("snapshot corrupt: event id out of range");
      }
      t.push_back(e);
    }
    if (r.ok()) log.AddTraceIds(std::move(t));
  }
  EMS_RETURN_NOT_OK(r.ExpectEnd());
  return log;
}

size_t EstimateLogSnapshotBytes(const EventLog& log) {
  // Mirrors EncodeEventLog's layout field by field.
  size_t bytes = kSnapshotHeaderBytes + kSnapshotTrailerBytes;
  bytes += 8;  // event count
  for (const std::string& name : log.event_names()) bytes += 8 + name.size();
  bytes += 8;  // trace count
  bytes += 8 * log.NumTraces();           // per-trace lengths
  bytes += 4 * log.TotalOccurrences();    // event ids
  return bytes;
}

// ---------------------------------------------------------------------
// DependencyGraph / DependencyGraphBuilder (via SnapshotAccess)
// ---------------------------------------------------------------------

struct SnapshotAccess {
  static void EncodeAdjacency(const std::vector<std::vector<NodeId>>& nbrs,
                              const std::vector<std::vector<double>>& freqs,
                              SnapshotWriter* w) {
    for (size_t v = 0; v < nbrs.size(); ++v) {
      w->U64(nbrs[v].size());
      for (NodeId u : nbrs[v]) w->I32(u);
      for (double f : freqs[v]) w->F64(f);
    }
  }

  static Status DecodeAdjacency(SnapshotReader* r, size_t n,
                                std::vector<std::vector<NodeId>>* nbrs,
                                std::vector<std::vector<double>>* freqs) {
    nbrs->resize(n);
    freqs->resize(n);
    for (size_t v = 0; v < n && r->ok(); ++v) {
      const uint64_t deg = r->U64();
      if (!r->CheckCount(deg, 12)) break;  // 4 (id) + 8 (freq) per entry
      auto& adj = (*nbrs)[v];
      auto& adj_freq = (*freqs)[v];
      adj.reserve(deg);
      adj_freq.reserve(deg);
      for (uint64_t i = 0; i < deg; ++i) {
        NodeId u = r->I32();
        if (u < 0 || static_cast<size_t>(u) >= n) {
          return Status::ParseError("snapshot corrupt: neighbor out of range");
        }
        adj.push_back(u);
      }
      for (uint64_t i = 0; i < deg; ++i) adj_freq.push_back(r->F64());
    }
    return r->status();
  }

  static std::string EncodeGraph(const DependencyGraph& g,
                                 bool include_distances) {
    if (include_distances && g.has_artificial() && g.NumNodes() > 0) {
      // Force the lazy caches so the snapshot carries them.
      (void)g.LongestDistancesFromArtificial();
      (void)g.LongestDistancesToArtificial();
    }
    SnapshotWriter w;
    w.U8(g.has_artificial_ ? 1 : 0);
    const size_t n = g.NumNodes();
    w.U64(n);
    for (size_t v = 0; v < n; ++v) {
      w.Str(g.names_[v]);
      w.F64(g.node_freq_[v]);
      w.U64(g.members_[v].size());
      for (EventId e : g.members_[v]) w.I32(e);
    }
    EncodeAdjacency(g.pre_, g.pre_freq_, &w);
    EncodeAdjacency(g.post_, g.post_freq_, &w);
    for (const std::vector<int>* dist : {&g.longest_from_, &g.longest_to_}) {
      const bool present = dist->size() == n && n > 0;
      w.U8(present ? 1 : 0);
      if (present) {
        for (int d : *dist) w.I32(d);
      }
    }
    return w.Finish(ArtifactKind::kDependencyGraph);
  }

  static Result<DependencyGraph> DecodeGraph(std::string_view snapshot) {
    EMS_ASSIGN_OR_RETURN(
        SnapshotReader r,
        SnapshotReader::Open(snapshot, ArtifactKind::kDependencyGraph));
    DependencyGraph g;
    g.has_artificial_ = r.U8() != 0;
    const uint64_t n = r.U64();
    if (!r.CheckCount(n, 24)) return r.status();
    g.names_.reserve(n);
    g.node_freq_.reserve(n);
    g.members_.reserve(n);
    for (uint64_t v = 0; v < n && r.ok(); ++v) {
      std::string name = r.Str();
      double freq = r.F64();
      const uint64_t num_members = r.U64();
      if (!r.CheckCount(num_members, 4)) break;
      std::vector<EventId> members;
      members.reserve(num_members);
      for (uint64_t i = 0; i < num_members; ++i) {
        EventId e = r.I32();
        if (e < 0) {
          return Status::ParseError("snapshot corrupt: negative member id");
        }
        members.push_back(e);
      }
      if (r.ok()) g.AddNode(std::move(name), freq, std::move(members));
    }
    EMS_RETURN_NOT_OK(r.status());
    EMS_RETURN_NOT_OK(DecodeAdjacency(&r, n, &g.pre_, &g.pre_freq_));
    EMS_RETURN_NOT_OK(DecodeAdjacency(&r, n, &g.post_, &g.post_freq_));
    for (std::vector<int>* dist : {&g.longest_from_, &g.longest_to_}) {
      if (r.U8() != 0) {
        if (!r.CheckCount(n, 4)) break;
        dist->reserve(n);
        for (uint64_t v = 0; v < n; ++v) dist->push_back(r.I32());
      }
    }
    // Per-direction degree consistency: every pre entry has a matching
    // frequency (DecodeAdjacency enforces it structurally), and the
    // artificial flag is only meaningful with at least one node.
    if (g.has_artificial_ && g.NumNodes() == 0) {
      return Status::ParseError("snapshot corrupt: artificial flag on empty "
                                "graph");
    }
    EMS_RETURN_NOT_OK(r.ExpectEnd());
    return g;
  }

  static std::string EncodeBuilder(const DependencyGraphBuilder& b) {
    SnapshotWriter w;
    w.U64(b.num_traces_);
    w.U8(b.plus_in_names_ ? 1 : 0);
    w.U64(b.first_occurrence_.size());
    for (EventId e : b.first_occurrence_) w.I32(e);
    w.U64(b.groups_.size());
    for (const auto& group : b.groups_) {
      w.U64(group.events.size());
      for (EventId e : group.events) w.I32(e);
      w.U64(group.successions.size());
      for (const auto& [a, bb] : group.successions) {
        w.I32(a);
        w.I32(bb);
      }
      w.U64(group.multiplicity);
    }
    return w.Finish(ArtifactKind::kGraphSummary);
  }

  static Result<std::unique_ptr<DependencyGraphBuilder>> DecodeBuilder(
      std::string_view snapshot, const EventLog& log) {
    EMS_ASSIGN_OR_RETURN(
        SnapshotReader r,
        SnapshotReader::Open(snapshot, ArtifactKind::kGraphSummary));
    auto builder = std::unique_ptr<DependencyGraphBuilder>(
        new DependencyGraphBuilder(log, DependencyGraphBuilder::RestoreTag{}));
    builder->num_traces_ = r.U64();
    if (builder->num_traces_ != log.NumTraces()) {
      return Status::ParseError(
          "snapshot does not match log: trace count differs");
    }
    builder->plus_in_names_ = r.U8() != 0;
    const auto check_event = [&log](EventId e) {
      return e >= 0 && static_cast<size_t>(e) < log.NumEvents();
    };
    const uint64_t num_first = r.U64();
    if (!r.CheckCount(num_first, 4)) return r.status();
    builder->first_occurrence_.reserve(num_first);
    for (uint64_t i = 0; i < num_first && r.ok(); ++i) {
      EventId e = r.I32();
      if (!check_event(e)) {
        return Status::ParseError("snapshot does not match log: event id out "
                                  "of range");
      }
      builder->first_occurrence_.push_back(e);
    }
    const uint64_t num_groups = r.U64();
    if (!r.CheckCount(num_groups, 24)) return r.status();
    builder->groups_.reserve(num_groups);
    for (uint64_t gi = 0; gi < num_groups && r.ok(); ++gi) {
      DependencyGraphBuilder::TraceGroup group;
      const uint64_t num_events = r.U64();
      if (!r.CheckCount(num_events, 4)) break;
      group.events.reserve(num_events);
      for (uint64_t i = 0; i < num_events && r.ok(); ++i) {
        EventId e = r.I32();
        if (!check_event(e)) {
          return Status::ParseError("snapshot does not match log: event id "
                                    "out of range");
        }
        group.events.push_back(e);
      }
      const uint64_t num_successions = r.U64();
      if (!r.CheckCount(num_successions, 8)) break;
      group.successions.reserve(num_successions);
      for (uint64_t i = 0; i < num_successions && r.ok(); ++i) {
        EventId a = r.I32();
        EventId b = r.I32();
        if (!check_event(a) || !check_event(b)) {
          return Status::ParseError("snapshot does not match log: event id "
                                    "out of range");
        }
        group.successions.emplace_back(a, b);
      }
      group.multiplicity = r.U64();
      if (r.ok()) builder->groups_.push_back(std::move(group));
    }
    EMS_RETURN_NOT_OK(r.ExpectEnd());
    return builder;
  }
};

std::string EncodeDependencyGraph(const DependencyGraph& g,
                                  bool include_distances) {
  return SnapshotAccess::EncodeGraph(g, include_distances);
}

Result<DependencyGraph> DecodeDependencyGraph(std::string_view snapshot) {
  return SnapshotAccess::DecodeGraph(snapshot);
}

std::string EncodeGraphSummary(const DependencyGraphBuilder& builder) {
  return SnapshotAccess::EncodeBuilder(builder);
}

Result<std::unique_ptr<DependencyGraphBuilder>> DecodeGraphSummary(
    std::string_view snapshot, const EventLog& log) {
  return SnapshotAccess::DecodeBuilder(snapshot, log);
}

// ---------------------------------------------------------------------
// CachedLabelSimilarity
// ---------------------------------------------------------------------

std::string EncodeLabelCache(const CachedLabelSimilarity& cache) {
  SnapshotWriter w;
  w.Str(cache.Name());
  const auto entries = cache.ExportScores();
  w.U64(entries.size());
  for (const auto& [key, score] : entries) {
    w.Str(key);
    w.F64(score);
  }
  return w.Finish(ArtifactKind::kLabelCache);
}

Status DecodeLabelCacheInto(std::string_view snapshot,
                            CachedLabelSimilarity* cache) {
  EMS_ASSIGN_OR_RETURN(
      SnapshotReader r,
      SnapshotReader::Open(snapshot, ArtifactKind::kLabelCache));
  const std::string name = r.Str();
  EMS_RETURN_NOT_OK(r.status());
  if (name != cache->Name()) {
    return Status::InvalidArgument("label-cache snapshot wraps measure '" +
                                   name + "', cache wraps '" + cache->Name() +
                                   "'");
  }
  const uint64_t count = r.U64();
  if (!r.CheckCount(count, 16)) return r.status();
  std::vector<std::pair<std::string, double>> entries;
  entries.reserve(count);
  for (uint64_t i = 0; i < count && r.ok(); ++i) {
    std::string key = r.Str();
    double score = r.F64();
    if (r.ok()) entries.emplace_back(std::move(key), score);
  }
  EMS_RETURN_NOT_OK(r.ExpectEnd());
  cache->ImportScores(entries);
  return Status::OK();
}

namespace {

void EncodeMatrix(SnapshotWriter* w, const SimilarityMatrix& m) {
  w->U64(m.rows());
  w->U64(m.cols());
  for (double v : m.data()) w->F64(v);
}

SimilarityMatrix DecodeMatrix(SnapshotReader* r) {
  const uint64_t rows = r->U64();
  const uint64_t cols = r->U64();
  // Guard rows * cols against overflow before the count check sizes the
  // allocation; an impossible count trips the reader's sticky error.
  if (rows != 0 && cols > (UINT64_MAX / rows)) {
    r->CheckCount(UINT64_MAX, sizeof(double));
    return SimilarityMatrix();
  }
  const uint64_t cells = rows * cols;
  if (!r->CheckCount(cells, sizeof(double))) return SimilarityMatrix();
  SimilarityMatrix m(static_cast<size_t>(rows), static_cast<size_t>(cols));
  double* data = m.mutable_data();
  for (uint64_t i = 0; i < cells && r->ok(); ++i) data[i] = r->F64();
  return m;
}

}  // namespace

std::string EncodeWarmSeed(const WarmSeed& seed) {
  EMS_DCHECK(seed.valid);
  SnapshotWriter w;
  w.I32(seed.cold_iterations);
  EncodeMatrix(&w, seed.forward);
  EncodeMatrix(&w, seed.backward);
  return w.Finish(ArtifactKind::kSimilarityMatrix);
}

Result<WarmSeed> DecodeWarmSeed(std::string_view snapshot) {
  EMS_ASSIGN_OR_RETURN(
      SnapshotReader r,
      SnapshotReader::Open(snapshot, ArtifactKind::kSimilarityMatrix));
  WarmSeed seed;
  seed.cold_iterations = r.I32();
  seed.forward = DecodeMatrix(&r);
  seed.backward = DecodeMatrix(&r);
  if (seed.cold_iterations < 0) {
    return Status::InvalidArgument("warm-seed snapshot: negative baseline");
  }
  EMS_RETURN_NOT_OK(r.ExpectEnd());
  seed.valid = true;
  return seed;
}

std::string EncodeSoftMatch(const prob::SoftMatchResult& soft) {
  SnapshotWriter w;
  EncodeMatrix(&w, soft.posterior);
  w.I32(soft.stats.iterations);
  w.U8(soft.stats.converged ? 1 : 0);
  w.F64(soft.stats.final_delta);
  w.F64(soft.stats.mean_entropy);
  w.U64(soft.column_prior.size());
  for (double v : soft.column_prior) w.F64(v);
  w.U64(soft.map_assignment.size());
  for (int v : soft.map_assignment) w.I32(v);
  w.U64(soft.mode.size());
  for (int v : soft.mode) w.I32(v);
  w.U64(soft.row_entropy.size());
  for (double v : soft.row_entropy) w.F64(v);
  return w.Finish(ArtifactKind::kSoftMatch);
}

Result<prob::SoftMatchResult> DecodeSoftMatch(std::string_view snapshot) {
  EMS_ASSIGN_OR_RETURN(
      SnapshotReader r, SnapshotReader::Open(snapshot, ArtifactKind::kSoftMatch));
  prob::SoftMatchResult soft;
  soft.posterior = DecodeMatrix(&r);
  soft.stats.iterations = r.I32();
  soft.stats.converged = r.U8() != 0;
  soft.stats.final_delta = r.F64();
  soft.stats.mean_entropy = r.F64();
  const size_t rows = soft.posterior.rows();
  const size_t cols = soft.posterior.cols();

  const uint64_t priors = r.U64();
  if (!r.CheckCount(priors, sizeof(double))) return r.status();
  soft.column_prior.reserve(static_cast<size_t>(priors));
  for (uint64_t i = 0; i < priors && r.ok(); ++i) {
    soft.column_prior.push_back(r.F64());
  }
  const uint64_t maps = r.U64();
  if (!r.CheckCount(maps, sizeof(int32_t))) return r.status();
  soft.map_assignment.reserve(static_cast<size_t>(maps));
  for (uint64_t i = 0; i < maps && r.ok(); ++i) {
    soft.map_assignment.push_back(r.I32());
  }
  const uint64_t modes = r.U64();
  if (!r.CheckCount(modes, sizeof(int32_t))) return r.status();
  soft.mode.reserve(static_cast<size_t>(modes));
  for (uint64_t i = 0; i < modes && r.ok(); ++i) soft.mode.push_back(r.I32());
  const uint64_t entropies = r.U64();
  if (!r.CheckCount(entropies, sizeof(double))) return r.status();
  soft.row_entropy.reserve(static_cast<size_t>(entropies));
  for (uint64_t i = 0; i < entropies && r.ok(); ++i) {
    soft.row_entropy.push_back(r.F64());
  }
  EMS_RETURN_NOT_OK(r.ExpectEnd());

  if (soft.stats.iterations < 0) {
    return Status::InvalidArgument("soft-match snapshot: negative iterations");
  }
  if (soft.column_prior.size() != cols ||
      soft.map_assignment.size() != rows || soft.mode.size() != rows ||
      soft.row_entropy.size() != rows) {
    return Status::InvalidArgument(
        "soft-match snapshot: array lengths inconsistent with posterior "
        "shape");
  }
  for (int v : soft.map_assignment) {
    if (v < -1 || (v >= 0 && static_cast<size_t>(v) >= cols)) {
      return Status::InvalidArgument(
          "soft-match snapshot: MAP column out of range");
    }
  }
  for (int v : soft.mode) {
    if (v < -1 || (v >= 0 && static_cast<size_t>(v) >= cols)) {
      return Status::InvalidArgument(
          "soft-match snapshot: mode column out of range");
    }
  }
  return soft;
}

}  // namespace store
}  // namespace ems
