// Corpus matching index: the candidate-retrieval half of corpus-scale
// top-k matching (docs/CORPUS.md). Holds every corpus log together with
// its prebuilt dependency graph (artificial event, warmed longest-
// distance caches) and a q-gram inverted index over the graphs' node
// labels, so a query can cheaply obtain, per candidate,
//
//   * the per-direction convergence-horizon cap (max over real nodes of
//     l(v), combined with the query's own cap), and
//   * the maximum label cosine any (query label, candidate label) pair
//     can reach — an upper bound on every entry of the S^L matrix a
//     real match would compute,
//
// which together feed the admissible stage-0 score bound
// (LabeledHorizonUpperBound) the top-k scheduler ranks candidates by —
// all without running a single EMS iteration.
//
// Label profiles replicate LabelSimilarityMatrix's exact preprocessing
// (split node names on '+', lower-case each part, q-gram with the same
// q): anything less would let the retrieval bound under-estimate the
// label matrix and break the scheduler's exactness guarantee.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "graph/dependency_graph.h"
#include "log/event_log.h"
#include "text/qgram.h"
#include "util/status.h"

namespace ems {

struct ObsContext;

namespace index {

/// Options fixed at index-build time. `min_edge_frequency` must equal
/// the MatchOptions value used at query time for the prebuilt graphs to
/// be the graphs a brute-force Match would build — the scheduler checks
/// and falls back to a brute scan on mismatch.
struct CorpusIndexOptions {
  /// q of the q-gram profiles; must match QGramCosineSimilarity's q for
  /// the label bound to be usable (the scheduler checks).
  int qgram_q = 3;

  /// DependencyGraphOptions::min_edge_frequency of the prebuilt graphs.
  double min_edge_frequency = 0.0;

  /// Metrics sink for index.* counters (borrowed, may be null).
  ObsContext* obs = nullptr;
};

/// One indexed corpus member.
struct CorpusEntry {
  std::string name;         // unique key (Add) — the member path for
                            // directory-loaded corpora
  std::string source_path;  // origin file; empty for in-memory adds
  uint64_t content_hash = 0;  // XXH64 of the source bytes; 0 in-memory
  std::string format;         // resolved parse format; "" in-memory
  EventLog log;
  DependencyGraph graph;  // artificial event + warmed distance caches

  /// max over real nodes of l(v) for each direction (kInfiniteDistance
  /// when any real node sits on/behind a cycle). The pairwise horizon
  /// cap against a query with caps (qf, qt) is min(qf, max_longest_from)
  /// resp. min(qt, max_longest_to).
  int max_longest_from = 0;
  int max_longest_to = 0;

  /// True when some node label splits into a part whose q-gram profile
  /// is empty (shorter than the padding floor): an empty query part then
  /// reaches cosine 1 against it.
  bool has_empty_label_part = false;

  /// Per node (indexed by NodeId), the q-gram profiles of its lower-
  /// cased '+'-parts — exactly the profiles QGramCosineSimilarity builds
  /// per cell of LabelSimilarityMatrix, precomputed once. Artificial
  /// nodes hold an empty vector. Lets the scheduler assemble S^L without
  /// re-profiling every label for every candidate; valid only for the
  /// q-gram measure at the index's q (the scheduler checks).
  std::vector<std::vector<QGramProfile>> label_profiles;
};

/// \brief The corpus index: entries + q-gram postings over their labels.
class CorpusIndex {
 public:
  explicit CorpusIndex(const CorpusIndexOptions& options = {})
      : options_(options) {}

  /// Adds a log under a unique name, building its graph (with the
  /// index's min_edge_frequency), warming both distance caches, and
  /// posting its label q-grams. InvalidArgument on duplicate or empty
  /// names. The optional source metadata keys the persistence layer
  /// (src/index/corpus_io.h).
  Status Add(const std::string& name, EventLog log,
             const std::string& source_path = "", uint64_t content_hash = 0,
             const std::string& format = "");

  /// Adds an entry whose graph was already built (snapshot warm path).
  /// The graph must be the one Add would have built from `log` under
  /// this index's options.
  Status AddPrebuilt(const std::string& name, EventLog log,
                     DependencyGraph graph, const std::string& source_path,
                     uint64_t content_hash, const std::string& format);

  /// Removes the named entry; NotFound if absent. Later entries shift
  /// down one index and the postings are rebuilt (O(corpus) — removal is
  /// an administrative operation, queries are the hot path).
  Status Remove(const std::string& name);

  size_t size() const { return entries_.size(); }
  const CorpusEntry& entry(size_t i) const { return entries_[i]; }

  /// Index of the named entry, or -1.
  int FindIndex(const std::string& name) const;

  const CorpusIndexOptions& options() const { return options_; }

  /// For each entry, an upper bound on max_{v1,v2} S^L(v1, v2) of the
  /// q-gram label matrix between `query` and that entry: the maximum
  /// cosine between any lower-cased '+'-part of a query event name and
  /// any posted part of the entry (1.0 when both sides contribute an
  /// empty-profile part). One sparse pass over the inverted index —
  /// no per-entry string comparisons.
  std::vector<double> MaxLabelCosines(const EventLog& query) const;

 private:
  struct Slot {
    uint32_t entry;  // index into entries_
    double norm;     // Euclidean norm of the part's q-gram profile
  };

  void IndexLabels(uint32_t entry_index);
  void RebuildPostings();

  CorpusIndexOptions options_;
  std::vector<CorpusEntry> entries_;
  std::vector<Slot> slots_;
  // gram -> (slot, count) postings, slot-sorted by construction.
  std::unordered_map<std::string, std::vector<std::pair<uint32_t, int>>>
      postings_;
};

}  // namespace index
}  // namespace ems
