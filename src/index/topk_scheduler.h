// Bound-ranked best-first top-k scheduler — the query half of corpus-
// scale matching (docs/CORPUS.md). Candidates come out of a CorpusIndex
// with an admissible stage-0 score upper bound (LabeledHorizonUpperBound
// over the per-direction horizon caps and the retrieval label-cosine
// bound); a max-heap pops them bound-first, exact EMS runs in parallel
// batches, and the k-th best exact score so far (the incumbent) both
// terminates the scan — once it is strictly above every remaining bound
// nothing left can enter the top k — and aborts in-flight runs whose
// per-pair bounds all drop strictly below it mid-iteration.
//
// Exactness: pruning and aborting are strict (<), the incumbent is
// monotone non-decreasing, and batches freeze one incumbent snapshot, so
// any candidate whose exact score ties or beats the final k-th score is
// always run to completion — the returned ranking is byte-identical to
// the brute-force all-pairs scan, including boundary ties, for every
// thread count.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/matcher.h"
#include "index/corpus_index.h"
#include "util/status.h"

namespace ems {

namespace exec {
class ThreadPool;
}  // namespace exec

namespace index {

/// Scheduler configuration.
struct TopKOptions {
  /// Hits to return (the k of top-k).
  size_t k = 5;

  /// Full matching configuration — must agree with the index on
  /// min_edge_frequency (otherwise, and for the estimated engine or
  /// composite matching, the scheduler transparently falls back to the
  /// brute-force scan: those paths have no admissible cheap bound).
  MatchOptions match;

  /// Fans candidate evaluations out across workers (borrowed, may be
  /// null = serial). Scores and ranking are identical for any pool.
  exec::ThreadPool* pool = nullptr;

  /// index.* metrics sink; falls back to match.obs.context when null.
  ObsContext* obs = nullptr;

  /// Candidates evaluated per batch between incumbent refreshes; 0
  /// derives max(4, pool workers). Larger batches parallelize better,
  /// smaller ones tighten the incumbent sooner.
  size_t batch_size = 0;

  /// Forces the brute-force scan (bench/test baseline).
  bool force_brute_force = false;
};

/// One ranked answer.
struct TopKHit {
  std::string name;
  size_t member_index = 0;  // position in the index at query time
  double score = 0.0;       // mean selected-correspondence similarity
  double bound = 1.0;       // stage-0 bound it was admitted with
  MatchResult match;
};

/// Counters of one Query call.
struct TopKStats {
  uint64_t candidates_retrieved = 0;
  uint64_t pruned_by_bound = 0;  // never started EMS
  uint64_t exact_runs = 0;       // EMS runs completed (scored)
  uint64_t aborted_runs = 0;     // started, then killed by the in-run bound
  bool used_brute_force = false;
};

/// \brief Runs top-k queries against a CorpusIndex.
class TopKScheduler {
 public:
  TopKScheduler(const CorpusIndex& index, const TopKOptions& options);

  /// The top-k entries for `query`, best score first (ties keep index
  /// order). Returns min(k, corpus size) hits.
  Result<std::vector<TopKHit>> Query(const EventLog& query);

  /// Counters of the last Query call.
  const TopKStats& stats() const { return stats_; }

 private:
  Result<std::vector<TopKHit>> BruteForce(const EventLog& query);
  bool CanUseIndex() const;

  const CorpusIndex& index_;
  TopKOptions options_;
  TopKStats stats_;
};

}  // namespace index
}  // namespace ems
