// Corpus index persistence and directory loading (docs/CORPUS.md).
//
// A corpus directory is a flat set of log files (trace/csv/xes/mxml,
// sorted lexicographically for a deterministic member order). Loading
// goes through the artifact store twice when one is attached:
//
//   1. whole-index snapshot — kind `corpus`, keyed by the XXH64 fold of
//      every member's (path, content hash) plus the index options
//      fingerprint; a hit decodes every member log AND its prebuilt
//      dependency graph (distance caches included) in one read, so a
//      warm restart skips parsing, graph builds, and distance
//      derivation entirely;
//   2. per-log snapshots (LoadEventLogThroughStore) on the cold path,
//      so even a first-time index build reuses any log snapshots other
//      tools already wrote.
#pragma once

#include <string>
#include <vector>

#include "index/corpus_index.h"
#include "store/artifact_store.h"
#include "util/status.h"

namespace ems {
namespace index {

struct CorpusLoadOptions {
  /// Log format passed to the parser: auto|trace|csv|xes|mxml.
  std::string format = "auto";

  /// Index build options (q, min_edge_frequency, obs).
  CorpusIndexOptions index;

  /// Artifact store for warm loads (borrowed, may be null = always cold).
  store::ArtifactStore* store = nullptr;
};

/// The member files of a corpus directory: regular files with a log
/// extension (.txt/.log/.trace/.csv/.xes/.mxml), sorted by path.
/// IOError when the directory cannot be read.
Result<std::vector<std::string>> ListCorpusFiles(const std::string& dir);

/// Loads every member of `dir` into a corpus index, warm when possible.
Result<CorpusIndex> LoadCorpusFromDirectory(const std::string& dir,
                                            const CorpusLoadOptions& options);

/// Builds an index over an explicit member list (the sharded service's
/// per-shard subsets). Same warm-load behavior; the whole-index snapshot
/// is keyed by the member list, so disjoint subsets cache independently.
Result<CorpusIndex> LoadCorpusFromFiles(const std::vector<std::string>& paths,
                                        const CorpusLoadOptions& options);

/// The artifact key LoadCorpusFromFiles would store the index under:
/// content hash folds every member's (path, file hash), fingerprint
/// folds the load options. Re-hashes every file — a changed member
/// yields a different key, which is what keeps in-memory index caches
/// built on this key coherent without invalidation.
Result<store::ArtifactKey> CorpusKeyForFiles(
    const std::vector<std::string>& paths, const CorpusLoadOptions& options);

/// Framed `corpus` snapshot of an index: options + per-entry source
/// metadata + embedded log and graph snapshots.
std::string EncodeCorpusIndex(const CorpusIndex& index);

/// Decodes a corpus snapshot into a fresh index built with `options`.
/// Fails (without side effects worth keeping) when the snapshot's build
/// options disagree with `options` — the caller falls back to a cold
/// build.
Result<CorpusIndex> DecodeCorpusIndex(std::string_view snapshot,
                                      const CorpusIndexOptions& options);

}  // namespace index
}  // namespace ems
