#include "index/topk_scheduler.h"

#include <algorithm>
#include <cmath>
#include <queue>

#include "core/bounds.h"
#include "core/ems_similarity.h"
#include "exec/parallel.h"
#include "obs/context.h"
#include "text/label_similarity.h"
#include "text/qgram.h"
#include "util/string_util.h"

namespace ems {
namespace index {

namespace {

// A candidate in the bound-ordered max-heap; ties pop in member order so
// the scan is deterministic.
struct HeapItem {
  double bound;
  size_t idx;
};

struct HeapLess {
  bool operator()(const HeapItem& a, const HeapItem& b) const {
    if (a.bound != b.bound) return a.bound < b.bound;
    return a.idx > b.idx;
  }
};

// Outcome of one candidate evaluation.
struct EvalOutcome {
  bool aborted = false;
  double score = 0.0;
  MatchResult match;
};

// min(l(query), l(entry)) per real pair, folded to r^h (0 for pairs that
// never early-converge). `l1`/`l2` are the direction's longest-distance
// arrays of the two graphs.
std::vector<double> PairHorizonPowers(const DependencyGraph& g1,
                                      const DependencyGraph& g2,
                                      const std::vector<int>& l1,
                                      const std::vector<int>& l2, double r) {
  const size_t n1 = g1.NumNodes();
  const size_t n2 = g2.NumNodes();
  std::vector<double> rh((n1 - 1) * (n2 - 1), 0.0);
  for (size_t v1 = 1; v1 < n1; ++v1) {
    for (size_t v2 = 1; v2 < n2; ++v2) {
      const int h = std::min(l1[v1], l2[v2]);
      rh[(v1 - 1) * (n2 - 1) + (v2 - 1)] =
          h == kInfiniteDistance ? 0.0 : std::pow(r, h);
    }
  }
  return rh;
}

// The query-side counterpart of CorpusEntry::label_profiles: per node,
// the q-gram profiles of its lower-cased '+'-parts.
std::vector<std::vector<QGramProfile>> NodeLabelProfiles(
    const DependencyGraph& g, int q) {
  std::vector<std::vector<QGramProfile>> profiles(g.NumNodes());
  for (NodeId v = 0; v < static_cast<NodeId>(g.NumNodes()); ++v) {
    if (g.IsArtificial(v)) continue;
    for (const std::string& part : Split(g.NodeName(v), '+')) {
      profiles[static_cast<size_t>(v)].emplace_back(ToLower(part), q);
    }
  }
  return profiles;
}

// LabelSimilarityMatrix for the q-gram measure, assembled from
// precomputed profiles: same all-nodes layout with zeroed artificial
// rows/columns, same max over '+'-part pairs, same receiver/argument
// order into Cosine. Profiles built from identical strings hold
// identical count maps, so every cell is bit-identical to the freshly-
// profiled path — the corpus pays the profiling cost once at build time
// instead of once per candidate evaluation.
std::vector<std::vector<double>> LabelMatrixFromProfiles(
    const DependencyGraph& g1, const DependencyGraph& g2,
    const std::vector<std::vector<QGramProfile>>& p1,
    const std::vector<std::vector<QGramProfile>>& p2) {
  const size_t n1 = g1.NumNodes();
  const size_t n2 = g2.NumNodes();
  std::vector<std::vector<double>> m(n1, std::vector<double>(n2, 0.0));
  for (size_t v1 = 0; v1 < n1; ++v1) {
    if (g1.IsArtificial(static_cast<NodeId>(v1))) continue;
    for (size_t v2 = 0; v2 < n2; ++v2) {
      if (g2.IsArtificial(static_cast<NodeId>(v2))) continue;
      double best = 0.0;
      for (const QGramProfile& a : p1[v1]) {
        for (const QGramProfile& b : p2[v2]) {
          best = std::max(best, a.Cosine(b));
        }
      }
      m[v1][v2] = best;
    }
  }
  return m;
}

double MaxLabelValue(const std::vector<std::vector<double>>& labels) {
  double max_l = 0.0;
  for (const auto& row : labels) {
    for (double v : row) max_l = std::max(max_l, v);
  }
  return max_l;
}

// Runs the exact match of (query, entry) with the in-run abandonment
// bound: after each EMS iteration, if every real pair's admissible final-
// score component is strictly below the incumbent, the run aborts —
// the candidate provably cannot reach the top k (docs/CORPUS.md).
// Completed runs reproduce Matcher::Match's non-composite path
// bit-identically (same graphs, same label matrix, same kernel and
// direction aggregation, same selection tail).
EvalOutcome EvaluateCandidate(
    const EventLog& query, const DependencyGraph& query_graph,
    const CorpusEntry& entry, const LabelSimilarity* measure,
    const std::vector<std::vector<QGramProfile>>* query_profiles,
    const MatchOptions& match, double incumbent) {
  EvalOutcome out;
  const DependencyGraph& g1 = query_graph;
  const DependencyGraph& g2 = entry.graph;

  std::vector<std::vector<double>> labels;
  const std::vector<std::vector<double>>* labels_ptr = nullptr;
  double label_max = 0.0;
  if (measure != nullptr && match.label_measure != LabelMeasure::kNone) {
    if (query_profiles != nullptr &&
        entry.label_profiles.size() == g2.NumNodes()) {
      labels = LabelMatrixFromProfiles(g1, g2, *query_profiles,
                                       entry.label_profiles);
    } else {
      labels = LabelSimilarityMatrix(g1, g2, *measure, match.ems.pool);
    }
    labels_ptr = &labels;
    label_max = MaxLabelValue(labels);
  }

  const double alpha = match.ems.alpha;
  const double r = alpha * match.ems.c;
  // Per-increment cap with labels present: one iteration moves a pair by
  // at most alpha*c + (1-alpha)*max S^L (see LabeledHorizonUpperBound).
  const double coef = (r + (1.0 - alpha) * label_max) / (1.0 - r);
  const size_t n1 = g1.NumNodes();
  const size_t n2 = g2.NumNodes();
  const size_t cols = n2 - 1;
  const Direction direction = match.ems.direction;
  const bool run_fwd = direction != Direction::kBackward;
  const bool run_bwd = direction != Direction::kForward;

  std::vector<double> rh_f, rh_b, b0_b;
  if (run_fwd) {
    rh_f = PairHorizonPowers(g1, g2, g1.LongestDistancesFromArtificial(),
                             g2.LongestDistancesFromArtificial(), r);
  }
  if (run_bwd) {
    rh_b = PairHorizonPowers(g1, g2, g1.LongestDistancesToArtificial(),
                             g2.LongestDistancesToArtificial(), r);
  }
  if (direction == Direction::kBoth) {
    // Backward component during the forward run: its k=0 bound.
    b0_b.resize(rh_b.size());
    for (size_t p = 0; p < rh_b.size(); ++p) {
      b0_b[p] = std::min(1.0, coef * (1.0 - rh_b[p]));
    }
  }

  // Admissible upper bound on a pair's final value in one direction,
  // given its value s after n iterations: max(0, ...) collapses the tail
  // for pairs already past their horizon.
  const auto pair_bound = [coef](double s, double rn, double rh) {
    return std::min(1.0, s + coef * std::max(0.0, rn - rh));
  };

  EmsOptions ems_opts = match.ems;
  ems_opts.obs = match.obs.context;
  EmsSimilarity sim(g1, g2, ems_opts, labels_ptr);

  bool aborted = false;
  SimilarityMatrix forward;
  EmsStats stats_fwd;
  if (run_fwd) {
    RunControls rc;
    rc.aborted = &aborted;
    if (incumbent >= 0.0) {
      rc.should_abort = [&](int n, const SimilarityMatrix& s) {
        const double rn = std::pow(r, n);
        for (size_t v1 = 1; v1 < n1; ++v1) {
          for (size_t v2 = 1; v2 < n2; ++v2) {
            const size_t p = (v1 - 1) * cols + (v2 - 1);
            const double bf = pair_bound(
                s.at(static_cast<NodeId>(v1), static_cast<NodeId>(v2)), rn,
                rh_f[p]);
            const double total =
                direction == Direction::kBoth ? 0.5 * (bf + b0_b[p]) : bf;
            if (total >= incumbent) return false;
          }
        }
        return true;
      };
    }
    forward = sim.ComputeControlled(Direction::kForward, rc);
    stats_fwd = sim.stats();
    if (aborted) {
      out.aborted = true;
      return out;
    }
    if (direction == Direction::kForward) {
      out.match.similarity = std::move(forward);
      out.match.ems_stats = stats_fwd;
    }
  }
  if (run_bwd) {
    RunControls rc;
    rc.aborted = &aborted;
    if (incumbent >= 0.0) {
      rc.should_abort = [&](int n, const SimilarityMatrix& s) {
        const double rn = std::pow(r, n);
        for (size_t v1 = 1; v1 < n1; ++v1) {
          for (size_t v2 = 1; v2 < n2; ++v2) {
            const size_t p = (v1 - 1) * cols + (v2 - 1);
            const double bb = pair_bound(
                s.at(static_cast<NodeId>(v1), static_cast<NodeId>(v2)), rn,
                rh_b[p]);
            const double total =
                direction == Direction::kBoth
                    ? 0.5 * (forward.at(static_cast<NodeId>(v1),
                                        static_cast<NodeId>(v2)) +
                             bb)
                    : bb;
            if (total >= incumbent) return false;
          }
        }
        return true;
      };
    }
    SimilarityMatrix backward = sim.ComputeControlled(Direction::kBackward, rc);
    EmsStats stats_bwd = sim.stats();
    if (aborted) {
      out.aborted = true;
      return out;
    }
    if (direction == Direction::kBackward) {
      out.match.similarity = std::move(backward);
      out.match.ems_stats = stats_bwd;
    } else {
      // Combine exactly as EmsSimilarity::Compute does for kBoth:
      // element-wise average, iteration count = max over directions,
      // work counters summed.
      for (size_t v1 = 0; v1 < n1; ++v1) {
        for (size_t v2 = 0; v2 < n2; ++v2) {
          forward.set(static_cast<NodeId>(v1), static_cast<NodeId>(v2),
                      (forward.at(static_cast<NodeId>(v1),
                                  static_cast<NodeId>(v2)) +
                       backward.at(static_cast<NodeId>(v1),
                                   static_cast<NodeId>(v2))) /
                          2.0);
        }
      }
      out.match.similarity = std::move(forward);
      out.match.ems_stats = stats_fwd;
      out.match.ems_stats.iterations =
          std::max(stats_fwd.iterations, stats_bwd.iterations);
      out.match.ems_stats.formula_evaluations +=
          stats_bwd.formula_evaluations;
      out.match.ems_stats.pairs_pruned_converged +=
          stats_bwd.pairs_pruned_converged;
      out.match.ems_stats.pairs_skipped_unchanged +=
          stats_bwd.pairs_skipped_unchanged;
    }
  }

  out.match.graph1 = query_graph;
  out.match.graph2 = entry.graph;
  SelectCorrespondences(match, query, entry.log, &out.match);
  double total = 0.0;
  for (const Correspondence& c : out.match.correspondences) {
    total += c.similarity;
  }
  out.score =
      out.match.correspondences.empty()
          ? 0.0
          : total / static_cast<double>(out.match.correspondences.size());
  return out;
}

}  // namespace

TopKScheduler::TopKScheduler(const CorpusIndex& index,
                             const TopKOptions& options)
    : index_(index), options_(options) {}

bool TopKScheduler::CanUseIndex() const {
  const MatchOptions& m = options_.match;
  if (options_.force_brute_force) return false;
  if (m.engine != SimilarityEngine::kExact) return false;
  if (m.match_composites) return false;
  if (m.min_edge_frequency != index_.options().min_edge_frequency) {
    return false;
  }
  const double r = m.ems.alpha * m.ems.c;
  if (!(r >= 0.0 && r < 1.0)) return false;
  return true;
}

Result<std::vector<TopKHit>> TopKScheduler::Query(const EventLog& query) {
  stats_ = TopKStats{};
  ObsContext* obs =
      options_.obs != nullptr ? options_.obs : options_.match.obs.context;
  const size_t n = index_.size();
  stats_.candidates_retrieved = n;
  if (!CanUseIndex()) return BruteForce(query);
  ObsIncrement(obs, "index.queries");
  std::vector<TopKHit> hits;
  if (n == 0 || options_.k == 0) {
    stats_.pruned_by_bound = n;
    ObsIncrement(obs, "index.candidates_retrieved", n);
    ObsIncrement(obs, "index.pruned_by_bound", n);
    return hits;
  }

  const MatchOptions& match = options_.match;
  DependencyGraphOptions graph_opts;
  graph_opts.min_edge_frequency = match.min_edge_frequency;
  DependencyGraph query_graph = DependencyGraph::Build(query, graph_opts);
  // Warm the lazy distance caches before candidates share this graph
  // across worker threads.
  int query_max_from = 0;
  int query_max_to = 0;
  {
    const std::vector<int>& lf = query_graph.LongestDistancesFromArtificial();
    const std::vector<int>& lt = query_graph.LongestDistancesToArtificial();
    for (NodeId v = 0; v < static_cast<NodeId>(query_graph.NumNodes()); ++v) {
      if (query_graph.IsArtificial(v)) continue;
      query_max_from = std::max(query_max_from, lf[static_cast<size_t>(v)]);
      query_max_to = std::max(query_max_to, lt[static_cast<size_t>(v)]);
    }
  }

  std::unique_ptr<LabelSimilarity> measure =
      MakeLabelMeasure(match.label_measure);

  // Stage-0 label cap per entry: the exact retrieval bound for the
  // q-gram measure (when the index was built with the measure's q), 0
  // for structural-only matching, and the trivial 1 otherwise — every
  // case admissible for scores in [0, 1]. The same gate enables the
  // cached-profile label matrix inside candidate evaluations.
  const bool qgram_labels =
      match.label_measure == LabelMeasure::kQGramCosine &&
      index_.options().qgram_q == QGramCosineSimilarity().q();
  std::vector<double> label_caps(n, 1.0);
  if (match.label_measure == LabelMeasure::kNone) {
    std::fill(label_caps.begin(), label_caps.end(), 0.0);
  } else if (qgram_labels) {
    label_caps = index_.MaxLabelCosines(query);
  }
  std::vector<std::vector<QGramProfile>> query_profiles;
  if (qgram_labels) {
    query_profiles = NodeLabelProfiles(query_graph, index_.options().qgram_q);
  }

  const double alpha = match.ems.alpha;
  const double c = match.ems.c;
  const Direction direction = match.ems.direction;
  std::priority_queue<HeapItem, std::vector<HeapItem>, HeapLess> heap;
  std::vector<double> bounds(n, 0.0);
  for (size_t i = 0; i < n; ++i) {
    const CorpusEntry& e = index_.entry(i);
    const int h_f = std::min(query_max_from, e.max_longest_from);
    const int h_b = std::min(query_max_to, e.max_longest_to);
    const double bf =
        LabeledHorizonUpperBound(0.0, 0, h_f, alpha, c, label_caps[i]);
    const double bb =
        LabeledHorizonUpperBound(0.0, 0, h_b, alpha, c, label_caps[i]);
    double bound = 0.0;
    switch (direction) {
      case Direction::kForward: bound = bf; break;
      case Direction::kBackward: bound = bb; break;
      case Direction::kBoth: bound = 0.5 * (bf + bb); break;
    }
    bounds[i] = bound;
    heap.push(HeapItem{bound, i});
  }
  ObsIncrement(obs, "index.candidates_retrieved", n);

  const size_t batch_size =
      options_.batch_size > 0
          ? options_.batch_size
          : std::max<size_t>(
                4, options_.pool != nullptr
                       ? static_cast<size_t>(options_.pool->num_threads())
                       : 1);

  // The incumbent: k-th best exact score among completed runs, or -1
  // until k runs completed (nothing may be pruned before that).
  std::priority_queue<double, std::vector<double>, std::greater<double>>
      top_scores;
  const auto incumbent = [&]() -> double {
    return top_scores.size() == options_.k ? top_scores.top() : -1.0;
  };

  std::vector<TopKHit> completed;
  while (!heap.empty()) {
    const double inc = incumbent();
    if (inc >= 0.0 && heap.top().bound < inc) break;
    std::vector<HeapItem> batch;
    while (!heap.empty() && batch.size() < batch_size) {
      if (inc >= 0.0 && heap.top().bound < inc) break;
      batch.push_back(heap.top());
      heap.pop();
    }
    std::vector<EvalOutcome> outcomes(batch.size());
    exec::TaskGroup group(options_.pool);
    for (size_t b = 0; b < batch.size(); ++b) {
      group.Run([&, b]() -> Status {
        outcomes[b] = EvaluateCandidate(
            query, query_graph, index_.entry(batch[b].idx), measure.get(),
            qgram_labels ? &query_profiles : nullptr, match, inc);
        return Status::OK();
      });
    }
    EMS_RETURN_NOT_OK(group.Wait());
    for (size_t b = 0; b < batch.size(); ++b) {
      EvalOutcome& o = outcomes[b];
      if (o.aborted) {
        ++stats_.aborted_runs;
        continue;
      }
      ++stats_.exact_runs;
      top_scores.push(o.score);
      if (top_scores.size() > options_.k) top_scores.pop();
      ObsObserveQuantile(obs, "index.bound_tightness",
                         batch[b].bound - o.score);
      TopKHit hit;
      hit.name = index_.entry(batch[b].idx).name;
      hit.member_index = batch[b].idx;
      hit.score = o.score;
      hit.bound = batch[b].bound;
      hit.match = std::move(o.match);
      completed.push_back(std::move(hit));
    }
  }
  stats_.pruned_by_bound = heap.size();
  ObsIncrement(obs, "index.pruned_by_bound", stats_.pruned_by_bound);
  ObsIncrement(obs, "index.exact_runs", stats_.exact_runs);
  ObsIncrement(obs, "index.aborted_runs", stats_.aborted_runs);

  // Reproduce the brute-force ranking byte for byte: member order, then
  // a stable sort on score — boundary ties keep insertion order.
  std::sort(completed.begin(), completed.end(),
            [](const TopKHit& a, const TopKHit& b) {
              return a.member_index < b.member_index;
            });
  std::stable_sort(completed.begin(), completed.end(),
                   [](const TopKHit& a, const TopKHit& b) {
                     return a.score > b.score;
                   });
  if (completed.size() > options_.k) completed.resize(options_.k);
  return completed;
}

Result<std::vector<TopKHit>> TopKScheduler::BruteForce(
    const EventLog& query) {
  stats_.used_brute_force = true;
  const size_t n = index_.size();
  stats_.exact_runs = n;
  Matcher matcher(options_.match);
  std::vector<TopKHit> hits(n);
  exec::TaskGroup group(options_.pool);
  for (size_t i = 0; i < n; ++i) {
    group.Run([&, i, token = group.token()]() -> Status {
      if (token.cancelled()) return Status::Cancelled("top-k query aborted");
      const CorpusEntry& e = index_.entry(i);
      EMS_ASSIGN_OR_RETURN(MatchResult match, matcher.Match(query, e.log));
      double total = 0.0;
      for (const Correspondence& corr : match.correspondences) {
        total += corr.similarity;
      }
      TopKHit& hit = hits[i];
      hit.name = e.name;
      hit.member_index = i;
      hit.score = match.correspondences.empty()
                      ? 0.0
                      : total / static_cast<double>(
                                    match.correspondences.size());
      hit.match = std::move(match);
      return Status::OK();
    });
  }
  EMS_RETURN_NOT_OK(group.Wait());
  std::stable_sort(hits.begin(), hits.end(),
                   [](const TopKHit& a, const TopKHit& b) {
                     return a.score > b.score;
                   });
  if (hits.size() > options_.k) hits.resize(options_.k);
  return hits;
}

}  // namespace index
}  // namespace ems
