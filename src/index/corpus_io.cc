#include "index/corpus_io.h"

#include <algorithm>
#include <filesystem>
#include <utility>

#include "serve/log_cache.h"
#include "store/hashing.h"
#include "store/snapshot.h"

namespace ems {
namespace index {

namespace fs = std::filesystem;

namespace {

bool HasLogExtension(const fs::path& p) {
  std::string ext = p.extension().string();
  std::transform(ext.begin(), ext.end(), ext.begin(),
                 [](unsigned char ch) { return std::tolower(ch); });
  return ext == ".txt" || ext == ".log" || ext == ".trace" || ext == ".csv" ||
         ext == ".xes" || ext == ".mxml";
}

uint64_t OptionsFingerprint(const CorpusLoadOptions& options) {
  return store::FingerprintBuilder()
      .Add("format", options.format)
      .Add("qgram_q", static_cast<uint64_t>(options.index.qgram_q))
      .Add("min_edge_frequency", options.index.min_edge_frequency)
      .Finish();
}

}  // namespace

Result<std::vector<std::string>> ListCorpusFiles(const std::string& dir) {
  std::error_code ec;
  fs::directory_iterator it(dir, ec);
  if (ec) {
    return Status::IOError("cannot read corpus directory '" + dir +
                           "': " + ec.message());
  }
  std::vector<std::string> paths;
  for (const fs::directory_entry& entry : it) {
    if (!entry.is_regular_file(ec) || ec) continue;
    if (!HasLogExtension(entry.path())) continue;
    paths.push_back(entry.path().string());
  }
  std::sort(paths.begin(), paths.end());
  if (paths.empty()) {
    return Status::InvalidArgument("corpus directory '" + dir +
                                   "' contains no log files");
  }
  return paths;
}

std::string EncodeCorpusIndex(const CorpusIndex& index) {
  store::SnapshotWriter w;
  w.U32(static_cast<uint32_t>(index.options().qgram_q));
  w.F64(index.options().min_edge_frequency);
  w.U64(index.size());
  for (size_t i = 0; i < index.size(); ++i) {
    const CorpusEntry& e = index.entry(i);
    w.Str(e.name);
    w.Str(e.source_path);
    w.U64(e.content_hash);
    w.Str(e.format);
    // Framed sub-snapshots ride as length-prefixed strings; decoding
    // re-verifies each inner envelope.
    w.Str(store::EncodeEventLog(e.log));
    w.Str(store::EncodeDependencyGraph(e.graph, /*include_distances=*/true));
  }
  return w.Finish(store::ArtifactKind::kCorpusIndex);
}

Result<CorpusIndex> DecodeCorpusIndex(std::string_view snapshot,
                                      const CorpusIndexOptions& options) {
  EMS_ASSIGN_OR_RETURN(
      store::SnapshotReader r,
      store::SnapshotReader::Open(snapshot, store::ArtifactKind::kCorpusIndex));
  const uint32_t q = r.U32();
  const double min_edge_frequency = r.F64();
  EMS_RETURN_NOT_OK(r.status());
  if (q != static_cast<uint32_t>(options.qgram_q) ||
      min_edge_frequency != options.min_edge_frequency) {
    return Status::InvalidArgument(
        "corpus snapshot was built with different index options");
  }
  CorpusIndex index(options);
  const uint64_t n = r.U64();
  if (!r.CheckCount(n, 48)) return r.status();
  for (uint64_t i = 0; i < n && r.ok(); ++i) {
    std::string name = r.Str();
    std::string source_path = r.Str();
    const uint64_t content_hash = r.U64();
    std::string format = r.Str();
    std::string log_snapshot = r.Str();
    std::string graph_snapshot = r.Str();
    EMS_RETURN_NOT_OK(r.status());
    EMS_ASSIGN_OR_RETURN(EventLog log, store::DecodeEventLog(log_snapshot));
    EMS_ASSIGN_OR_RETURN(DependencyGraph graph,
                         store::DecodeDependencyGraph(graph_snapshot));
    EMS_RETURN_NOT_OK(index.AddPrebuilt(name, std::move(log), std::move(graph),
                                        source_path, content_hash, format));
  }
  EMS_RETURN_NOT_OK(r.ExpectEnd());
  return index;
}

Result<store::ArtifactKey> CorpusKeyForFiles(
    const std::vector<std::string>& paths, const CorpusLoadOptions& options) {
  store::FingerprintBuilder members;
  for (const std::string& path : paths) {
    EMS_ASSIGN_OR_RETURN(uint64_t hash, store::HashFile(path));
    members.Add(path, hash);
  }
  store::ArtifactKey key;
  key.kind = store::ArtifactKind::kCorpusIndex;
  key.content_hash = members.Finish();
  key.fingerprint = OptionsFingerprint(options);
  return key;
}

Result<CorpusIndex> LoadCorpusFromFiles(const std::vector<std::string>& paths,
                                        const CorpusLoadOptions& options) {
  // Hash every member first: cheap relative to parsing, and it both
  // keys the whole-index snapshot and catches unreadable files early.
  std::vector<uint64_t> hashes;
  hashes.reserve(paths.size());
  store::FingerprintBuilder members;
  for (const std::string& path : paths) {
    EMS_ASSIGN_OR_RETURN(uint64_t hash, store::HashFile(path));
    hashes.push_back(hash);
    members.Add(path, hash);
  }
  store::ArtifactKey key;
  key.kind = store::ArtifactKind::kCorpusIndex;
  key.content_hash = members.Finish();
  key.fingerprint = OptionsFingerprint(options);

  if (options.store != nullptr) {
    if (std::optional<std::string> snapshot = options.store->Load(key)) {
      Result<CorpusIndex> warm = DecodeCorpusIndex(*snapshot, options.index);
      if (warm.ok()) return warm;
      // Corrupt or mismatched snapshot: fall through to the cold build
      // (the store already evicted invalid bytes on verification).
    }
  }

  CorpusIndex index(options.index);
  for (size_t i = 0; i < paths.size(); ++i) {
    EMS_ASSIGN_OR_RETURN(
        EventLog log,
        serve::LoadEventLogThroughStore(options.store, paths[i],
                                        options.format));
    const std::string format = serve::ResolveLogFormat(paths[i],
                                                       options.format);
    EMS_RETURN_NOT_OK(
        index.Add(paths[i], std::move(log), paths[i], hashes[i], format));
  }
  if (options.store != nullptr) {
    options.store->Store(key, EncodeCorpusIndex(index));
  }
  return index;
}

Result<CorpusIndex> LoadCorpusFromDirectory(const std::string& dir,
                                            const CorpusLoadOptions& options) {
  EMS_ASSIGN_OR_RETURN(std::vector<std::string> paths, ListCorpusFiles(dir));
  return LoadCorpusFromFiles(paths, options);
}

}  // namespace index
}  // namespace ems
