#include "index/corpus_index.h"

#include <algorithm>
#include <unordered_set>

#include "obs/context.h"
#include "text/qgram.h"
#include "util/string_util.h"

namespace ems {
namespace index {

namespace {

// The label parts LabelSimilarityMatrix would compare for this node
// name, preprocessed identically: '+'-split, then lower-cased (the
// q-gram measure case-folds before profiling).
std::vector<std::string> LabelParts(const std::string& node_name) {
  std::vector<std::string> parts = Split(node_name, '+');
  for (std::string& p : parts) p = ToLower(p);
  return parts;
}

int MaxRealDistance(const DependencyGraph& g, const std::vector<int>& l) {
  int max_l = 0;
  for (NodeId v = 0; v < static_cast<NodeId>(g.NumNodes()); ++v) {
    if (g.IsArtificial(v)) continue;
    max_l = std::max(max_l, l[static_cast<size_t>(v)]);
  }
  return max_l;
}

}  // namespace

Status CorpusIndex::Add(const std::string& name, EventLog log,
                        const std::string& source_path, uint64_t content_hash,
                        const std::string& format) {
  DependencyGraphOptions graph_opts;
  graph_opts.min_edge_frequency = options_.min_edge_frequency;
  DependencyGraph graph = DependencyGraph::Build(log, graph_opts);
  return AddPrebuilt(name, std::move(log), std::move(graph), source_path,
                     content_hash, format);
}

Status CorpusIndex::AddPrebuilt(const std::string& name, EventLog log,
                                DependencyGraph graph,
                                const std::string& source_path,
                                uint64_t content_hash,
                                const std::string& format) {
  if (name.empty()) {
    return Status::InvalidArgument("corpus entry name must not be empty");
  }
  if (FindIndex(name) >= 0) {
    return Status::InvalidArgument("corpus entry '" + name +
                                   "' already exists");
  }
  CorpusEntry entry;
  entry.name = name;
  entry.source_path = source_path;
  entry.content_hash = content_hash;
  entry.format = format;
  entry.log = std::move(log);
  entry.graph = std::move(graph);
  if (entry.graph.has_artificial() && entry.graph.NumNodes() > 0) {
    // Warm both lazy caches now: queries read them from many threads.
    entry.max_longest_from =
        MaxRealDistance(entry.graph, entry.graph.LongestDistancesFromArtificial());
    entry.max_longest_to =
        MaxRealDistance(entry.graph, entry.graph.LongestDistancesToArtificial());
  }
  const DependencyGraph& g = entry.graph;
  entry.label_profiles.resize(g.NumNodes());
  for (NodeId v = 0; v < static_cast<NodeId>(g.NumNodes()); ++v) {
    if (g.IsArtificial(v)) continue;
    for (const std::string& part : LabelParts(g.NodeName(v))) {
      entry.label_profiles[static_cast<size_t>(v)].emplace_back(
          part, options_.qgram_q);
    }
  }
  entries_.push_back(std::move(entry));
  IndexLabels(static_cast<uint32_t>(entries_.size() - 1));
  ObsIncrement(options_.obs, "index.entries_added");
  return Status::OK();
}

Status CorpusIndex::Remove(const std::string& name) {
  const int i = FindIndex(name);
  if (i < 0) return Status::NotFound("no corpus entry named '" + name + "'");
  entries_.erase(entries_.begin() + i);
  RebuildPostings();
  return Status::OK();
}

int CorpusIndex::FindIndex(const std::string& name) const {
  for (size_t i = 0; i < entries_.size(); ++i) {
    if (entries_[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

void CorpusIndex::IndexLabels(uint32_t entry_index) {
  CorpusEntry& entry = entries_[entry_index];
  const DependencyGraph& g = entry.graph;
  // One slot per distinct (lower-cased) part per entry: duplicate labels
  // would only re-derive the same cosine.
  std::unordered_set<std::string> seen;
  for (NodeId v = 0; v < static_cast<NodeId>(g.NumNodes()); ++v) {
    if (g.IsArtificial(v)) continue;
    for (const std::string& part : LabelParts(g.NodeName(v))) {
      if (!seen.insert(part).second) continue;
      QGramProfile profile(part, options_.qgram_q);
      if (profile.counts().empty()) {
        entry.has_empty_label_part = true;
        continue;
      }
      const uint32_t slot = static_cast<uint32_t>(slots_.size());
      slots_.push_back(Slot{entry_index, profile.norm()});
      for (const auto& [gram, count] : profile.counts()) {
        postings_[gram].emplace_back(slot, count);
      }
    }
  }
}

void CorpusIndex::RebuildPostings() {
  slots_.clear();
  postings_.clear();
  for (size_t i = 0; i < entries_.size(); ++i) {
    entries_[i].has_empty_label_part = false;
    IndexLabels(static_cast<uint32_t>(i));
  }
}

std::vector<double> CorpusIndex::MaxLabelCosines(const EventLog& query) const {
  std::vector<double> max_cos(entries_.size(), 0.0);
  if (entries_.empty()) return max_cos;

  bool query_has_empty_part = false;
  std::unordered_set<std::string> seen;
  std::vector<double> dot(slots_.size(), 0.0);
  std::vector<uint32_t> touched;
  for (const std::string& event_name : query.event_names()) {
    for (const std::string& part : LabelParts(event_name)) {
      if (!seen.insert(part).second) continue;
      QGramProfile profile(part, options_.qgram_q);
      if (profile.counts().empty()) {
        query_has_empty_part = true;
        continue;
      }
      touched.clear();
      for (const auto& [gram, count] : profile.counts()) {
        auto it = postings_.find(gram);
        if (it == postings_.end()) continue;
        for (const auto& [slot, posted_count] : it->second) {
          if (dot[slot] == 0.0) touched.push_back(slot);
          dot[slot] += static_cast<double>(count) *
                       static_cast<double>(posted_count);
        }
      }
      const double qnorm = profile.norm();
      for (uint32_t slot : touched) {
        const double cos = dot[slot] / (qnorm * slots_[slot].norm);
        double& best = max_cos[slots_[slot].entry];
        if (cos > best) best = cos;
        dot[slot] = 0.0;
      }
    }
  }
  if (query_has_empty_part) {
    for (size_t i = 0; i < entries_.size(); ++i) {
      if (entries_[i].has_empty_label_part) max_cos[i] = 1.0;
    }
  }
  for (double& v : max_cos) v = std::min(v, 1.0);
  return max_cos;
}

}  // namespace index
}  // namespace ems
