#include "synth/process_tree.h"

#include <algorithm>

namespace ems {

std::unique_ptr<ProcessNode> ProcessNode::Clone() const {
  auto copy = std::make_unique<ProcessNode>();
  copy->op = op;
  copy->activity = activity;
  copy->branch_weights = branch_weights;
  copy->loop_probability = loop_probability;
  copy->children.reserve(children.size());
  for (const auto& child : children) copy->children.push_back(child->Clone());
  return copy;
}

size_t ProcessNode::CountActivities() const {
  if (op == ProcessOp::kActivity) return 1;
  size_t total = 0;
  for (const auto& child : children) total += child->CountActivities();
  return total;
}

void ProcessNode::CollectActivities(std::vector<std::string>* out) const {
  if (op == ProcessOp::kActivity) {
    out->push_back(activity);
    return;
  }
  for (const auto& child : children) child->CollectActivities(out);
}

std::string ProcessNode::ToString() const {
  switch (op) {
    case ProcessOp::kActivity:
      return activity;
    case ProcessOp::kSequence:
    case ProcessOp::kXor:
    case ProcessOp::kAnd:
    case ProcessOp::kLoop: {
      std::string name;
      switch (op) {
        case ProcessOp::kSequence:
          name = "SEQ";
          break;
        case ProcessOp::kXor:
          name = "XOR";
          break;
        case ProcessOp::kAnd:
          name = "AND";
          break;
        default:
          name = "LOOP";
          break;
      }
      std::string out = name + "(";
      for (size_t i = 0; i < children.size(); ++i) {
        if (i > 0) out += ", ";
        out += children[i]->ToString();
      }
      out += ")";
      return out;
    }
  }
  return "?";
}

namespace {

// Builds a subtree over activities [begin, end) of the naming sequence.
std::unique_ptr<ProcessNode> BuildSubtree(const ProcessTreeOptions& options,
                                          int begin, int end, Rng* rng,
                                          int depth) {
  auto node = std::make_unique<ProcessNode>();
  const int count = end - begin;
  EMS_DCHECK(count >= 1);
  if (count == 1) {
    node->op = ProcessOp::kActivity;
    node->activity = options.activity_prefix + std::to_string(begin);
    return node;
  }

  // Choose an operator. Loops need at least 2 activities (body + redo);
  // beyond depth 6 prefer sequences to keep play-out traces short.
  std::vector<double> weights = {options.weight_sequence, options.weight_xor,
                                 options.weight_and, options.weight_loop};
  if (depth > 6) weights = {1.0, 0.0, 0.0, 0.0};
  size_t pick = rng->WeightedIndex(weights);
  switch (pick) {
    case 0:
      node->op = ProcessOp::kSequence;
      break;
    case 1:
      node->op = ProcessOp::kXor;
      break;
    case 2:
      node->op = ProcessOp::kAnd;
      break;
    default:
      node->op = ProcessOp::kLoop;
      break;
  }

  // Split the activity range into 2..max_branching chunks (LOOP: exactly
  // 2 — body and redo part).
  int branches = node->op == ProcessOp::kLoop
                     ? 2
                     : rng->UniformInt(2, std::max(2, options.max_branching));
  branches = std::min(branches, count);
  // Random split points.
  std::vector<int> cuts = {begin, end};
  std::vector<size_t> inner =
      rng->SampleWithoutReplacement(static_cast<size_t>(count - 1),
                                    static_cast<size_t>(branches - 1));
  for (size_t off : inner) cuts.push_back(begin + 1 + static_cast<int>(off));
  std::sort(cuts.begin(), cuts.end());
  for (size_t k = 0; k + 1 < cuts.size(); ++k) {
    node->children.push_back(
        BuildSubtree(options, cuts[k], cuts[k + 1], rng, depth + 1));
  }
  if (node->op == ProcessOp::kXor) {
    // Skewed branch odds: each branch gets weight in [0.15, 1), so
    // branches carry distinct (identifiable) frequencies but none
    // vanishes entirely.
    node->branch_weights.resize(node->children.size());
    for (double& w : node->branch_weights) {
      w = 0.15 + 0.85 * rng->UniformDouble();
    }
  } else if (node->op == ProcessOp::kLoop) {
    node->loop_probability = 0.1 + 0.4 * rng->UniformDouble();
  }
  return node;
}

}  // namespace

std::unique_ptr<ProcessNode> GenerateProcessTree(
    const ProcessTreeOptions& options, Rng* rng) {
  EMS_DCHECK(options.num_activities >= 1);
  return BuildSubtree(options, 0, options.num_activities, rng, 0);
}

void DriftProbabilities(ProcessNode* tree, double drift, Rng* rng) {
  if (tree->op == ProcessOp::kXor) {
    for (double& w : tree->branch_weights) {
      double factor = 1.0 + drift * (2.0 * rng->UniformDouble() - 1.0);
      w = std::max(0.05, w * factor);
    }
  } else if (tree->op == ProcessOp::kLoop && tree->loop_probability >= 0.0) {
    double factor = 1.0 + drift * (2.0 * rng->UniformDouble() - 1.0);
    tree->loop_probability =
        std::clamp(tree->loop_probability * factor, 0.02, 0.8);
  }
  for (auto& child : tree->children) {
    DriftProbabilities(child.get(), drift, rng);
  }
}

namespace {

void CollectSplittableLeaves(ProcessNode* node, bool under_and,
                             std::vector<ProcessNode*>* out) {
  if (node->op == ProcessOp::kActivity) {
    if (!under_and) out->push_back(node);
    return;
  }
  bool child_under_and = under_and || node->op == ProcessOp::kAnd;
  for (auto& child : node->children) {
    CollectSplittableLeaves(child.get(), child_under_and, out);
  }
}

}  // namespace

std::vector<std::pair<std::string, std::string>> InjectSequentialPairs(
    ProcessNode* tree, int count, Rng* rng, const std::string& suffix) {
  std::vector<ProcessNode*> leaves;
  CollectSplittableLeaves(tree, /*under_and=*/false, &leaves);
  rng->Shuffle(&leaves);
  std::vector<std::pair<std::string, std::string>> injected;
  for (ProcessNode* leaf : leaves) {
    if (static_cast<int>(injected.size()) >= count) break;
    std::string first = leaf->activity;
    std::string second = first + suffix;
    auto a = std::make_unique<ProcessNode>();
    a->op = ProcessOp::kActivity;
    a->activity = first;
    auto b = std::make_unique<ProcessNode>();
    b->op = ProcessOp::kActivity;
    b->activity = second;
    leaf->op = ProcessOp::kSequence;
    leaf->activity.clear();
    leaf->children.push_back(std::move(a));
    leaf->children.push_back(std::move(b));
    injected.emplace_back(std::move(first), std::move(second));
  }
  // Fallback when the tree has no AND-free leaf (rare): prepend strict
  // SEQ pairs at the root, where nothing can interleave.
  while (static_cast<int>(injected.size()) < count) {
    size_t k = injected.size();
    std::string first = "act_head" + std::to_string(k);
    std::string second = first + suffix;
    auto a = std::make_unique<ProcessNode>();
    a->op = ProcessOp::kActivity;
    a->activity = first;
    auto b = std::make_unique<ProcessNode>();
    b->op = ProcessOp::kActivity;
    b->activity = second;
    auto old_root = std::make_unique<ProcessNode>(std::move(*tree));
    *tree = ProcessNode{};
    tree->op = ProcessOp::kSequence;
    tree->children.push_back(std::move(a));
    tree->children.push_back(std::move(b));
    tree->children.push_back(std::move(old_root));
    injected.emplace_back(std::move(first), std::move(second));
  }
  return injected;
}

}  // namespace ems
