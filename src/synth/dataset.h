// Dataset builders replacing the paper's proprietary corpora:
//  * the "bus manufacturer" real dataset of 149 event log pairs — 103
//    without composites split into the DS-F / DS-B / DS-FB dislocation
//    testbeds and 46 with composite events (Section 5.1); here each pair
//    is two play-outs of the same random process specification, the
//    second log opaquely renamed and dislocated/merged, with ground truth
//    carried through every perturbation;
//  * the BeehiveZ-style scalability corpus (event sizes 10..100, 20
//    specifications per size, 2 logs per specification);
//  * the Figure-9 dislocation sweep (100-event logs, first m events of
//    every trace removed from one log).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "eval/ground_truth.h"
#include "log/event_log.h"
#include "synth/log_generator.h"
#include "synth/process_tree.h"

namespace ems {

/// The dislocation testbeds of Section 5.1.
enum class Testbed {
  kDsF,   // dislocated events at the end of traces
  kDsB,   // dislocated events at the beginning of traces
  kDsFB,  // both
};

const char* TestbedName(Testbed t);

/// One benchmark unit: two heterogeneous logs plus their reference
/// mapping.
struct LogPair {
  std::string name;
  EventLog log1;
  EventLog log2;
  GroundTruth truth;
  bool has_composites = false;
};

/// Knobs of a single generated pair.
struct PairOptions {
  int num_activities = 20;
  int num_traces = 150;

  /// Events removed from trace boundaries of log 2 (Challenge 2).
  int dislocation = 2;

  /// Renaming of log 2 (Challenge 1). When enabled, `opaque_fraction` of
  /// the events get garbled names and the rest get typographic variants
  /// (so Figures 4/11's label integration has signal to use, as in the
  /// paper's real corpus).
  bool opaque = true;
  double opaque_fraction = 0.35;

  /// Number of consecutive pairs merged into composite events in log 2
  /// (Challenge 3). 0 disables.
  int num_composites = 0;

  uint64_t seed = 1;

  /// Process heterogeneity between the two subsidiaries: log 2 plays out
  /// a drifted copy of the specification (XOR/LOOP probabilities shifted
  /// by up to this relative factor), loses `dropped_events` activities
  /// entirely, and records `swap_noise` of adjacent event pairs out of
  /// order. Two play-outs of an identical spec are near-isomorphic,
  /// which no real pair of independently built systems is.
  double frequency_drift = 0.15;
  int dropped_events = 1;
  double swap_noise = 0.01;

  ProcessTreeOptions tree;
  PlayoutOptions playout;
};

/// Generates one log pair for the given testbed.
LogPair MakeLogPair(Testbed testbed, const PairOptions& options);

/// Streaming-ingestion delta batches for the pair `options` generates:
/// plays log 1's OWN trace stream `num_batches * batch_traces` traces
/// further, so the pair's log 1 followed by the batches in order is
/// trace-for-trace the log a single play-out with
/// `num_traces + num_batches * batch_traces` traces would have produced
/// (PlayoutLog draws one trace at a time, so prefixes are deterministic).
/// Log 2 and the ground truth are untouched — appends extend the
/// observed case history of subsidiary 1, not the process.
std::vector<EventLog> MakeAppendBatches(const PairOptions& options,
                                        int batch_traces, int num_batches);

/// The 149-pair replacement corpus: 23 DS-F + 22 DS-B + 58 DS-FB pairs
/// without composites, and 46 composite pairs (DS-FB style dislocation).
struct RealisticDataset {
  std::vector<LogPair> ds_f;
  std::vector<LogPair> ds_b;
  std::vector<LogPair> ds_fb;
  std::vector<LogPair> composite;

  /// The three dislocation testbeds concatenated (the "first group with
  /// 103 event log pairs").
  std::vector<const LogPair*> Singleton() const;
};

/// Options scaling the corpus down for quick runs (tests use small
/// counts; benches use the full 149).
struct RealisticDatasetOptions {
  uint64_t seed = 2014;
  int ds_f_pairs = 23;
  int ds_b_pairs = 22;
  int ds_fb_pairs = 58;
  int composite_pairs = 46;
  int min_activities = 15;
  int max_activities = 25;
  int num_traces = 150;
};

RealisticDataset MakeRealisticDataset(const RealisticDatasetOptions& options =
                                          {});

/// Scalability pairs (Figure 8): two play-outs of one specification with
/// `num_events` activities; truth is name identity. No renaming or
/// dislocation — the experiment isolates graph size.
std::vector<LogPair> MakeScalabilityPairs(int num_events, int num_pairs,
                                          uint64_t seed);

/// Dislocation sweep pair (Figure 9): `num_events` activities, first `m`
/// events of every trace removed from log 2, opaque renaming applied.
LogPair MakeDislocationPair(int num_events, int m, uint64_t seed);

/// One member of a synthetic warehouse corpus (docs/CORPUS.md).
struct CorpusMember {
  std::string name;  // "fam<F>_<a|b|...>" — unique within the corpus
  int family = 0;    // members of one family describe the same process
  EventLog log;
};

/// Knobs of MakeCorpus.
struct SynthCorpusOptions {
  /// Total member logs. Families contribute `members_per_family` each
  /// (the last family may be truncated).
  int num_members = 100;
  int members_per_family = 2;

  uint64_t seed = 2014;

  /// Per-family process size, drawn uniformly from [min, max].
  int min_activities = 12;
  int max_activities = 24;
  int num_traces = 60;

  /// Heterogeneity between members of one family (PairOptions).
  int dislocation = 1;
};

/// The warehouse-query corpus: many distinct process families, each with
/// a family-private activity vocabulary (random letter prefixes, so
/// cross-family q-gram overlap is near zero — the regime where the
/// corpus index's label bound has discriminating power) and
/// `members_per_family` heterogeneous logs of the same process. A query
/// with one member's log should rank its family first.
std::vector<CorpusMember> MakeCorpus(const SynthCorpusOptions& options = {});

}  // namespace ems
