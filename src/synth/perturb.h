// Perturbations that inject the paper's three challenges into synthetic
// logs: opaque renaming (Challenge 1), dislocation by removing leading or
// trailing events of every trace (Challenge 2, the protocol of Figure 9),
// and merging consecutive events into composites (Challenge 3). All
// transformations report how names moved so ground truth can be carried
// through the pipeline.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "log/event_log.h"
#include "util/random.h"

namespace ems {

/// Renames every event of `log` to an opaque identifier ("ev_<hex>").
/// Returns the new log; `renames` (if non-null) receives old -> new names.
EventLog OpaqueRename(const EventLog& log, Rng* rng,
                      std::map<std::string, std::string>* renames = nullptr);

/// A mild typographic variation of `name` (case change, separator swap,
/// suffix, abbreviation) — the way the same activity is spelled by a
/// different subsidiary's system. Deterministic in `rng`.
std::string TypoVariant(const std::string& name, Rng* rng);

/// Heterogeneous renaming: a fraction `opaque_fraction` of the events
/// get fully opaque names (Challenge 1) and the rest get typographic
/// variants that remain recognizable to label similarity — the mixture
/// real multi-source logs exhibit (paper, Section 1).
EventLog HeterogeneousRename(const EventLog& log, double opaque_fraction,
                             Rng* rng,
                             std::map<std::string, std::string>* renames =
                                 nullptr);

/// Removes the first `m` events of every trace (Figure 9's dislocation
/// protocol). Events that vanish from every trace leave the vocabulary.
EventLog RemoveHeadEvents(const EventLog& log, int m);

/// Removes the last `m` events of every trace.
EventLog RemoveTailEvents(const EventLog& log, int m);

/// Replaces every occurrence of the consecutive pair `first second` by a
/// single event named `merged_name`. Non-consecutive occurrences of the
/// two events are left alone (SEQ composites always co-occur, so with
/// generator-produced inputs nothing is left behind).
EventLog MergeConsecutivePair(const EventLog& log, const std::string& first,
                              const std::string& second,
                              const std::string& merged_name);

/// Removes every occurrence of the named event from all traces (the
/// activity simply does not exist in the other subsidiary's process).
EventLog RemoveEventCompletely(const EventLog& log, const std::string& name);

/// Swaps adjacent events within traces with probability `p` per position
/// (order noise, simulating concurrent recording).
EventLog AddSwapNoise(const EventLog& log, double p, Rng* rng);

/// Drops individual events with probability `p` per occurrence
/// (missing-entry noise).
EventLog AddDropNoise(const EventLog& log, double p, Rng* rng);

}  // namespace ems
