#include "synth/perturb.h"

#include <algorithm>
#include <cctype>
#include <set>

namespace ems {

EventLog OpaqueRename(const EventLog& log, Rng* rng,
                      std::map<std::string, std::string>* renames) {
  std::vector<std::string> new_names(log.NumEvents());
  for (EventId e = 0; e < static_cast<EventId>(log.NumEvents()); ++e) {
    // Collision-free by construction: a counter plus random payload.
    new_names[static_cast<size_t>(e)] =
        "ev_" + rng->HexString(8) + "_" + std::to_string(e);
    if (renames != nullptr) {
      (*renames)[log.EventName(e)] = new_names[static_cast<size_t>(e)];
    }
  }
  EventLog out;
  for (const Trace& t : log.traces()) {
    std::vector<std::string> names;
    names.reserve(t.size());
    for (EventId e : t) names.push_back(new_names[static_cast<size_t>(e)]);
    out.AddTrace(names);
  }
  return out;
}

std::string TypoVariant(const std::string& name, Rng* rng) {
  std::string out = name;
  switch (rng->UniformInt(0, 4)) {
    case 0:  // uppercase
      for (char& c : out) c = static_cast<char>(std::toupper(
          static_cast<unsigned char>(c)));
      break;
    case 1:  // separator swap
      for (char& c : out) {
        if (c == '_') c = '-';
        else if (c == ' ') c = '_';
      }
      break;
    case 2:  // versioned suffix
      out += "_v" + std::to_string(rng->UniformInt(2, 9));
      break;
    case 3:  // vowel-dropping abbreviation (keep the first character)
      if (out.size() > 3) {
        std::string abbr;
        abbr.push_back(out[0]);
        for (size_t i = 1; i < out.size(); ++i) {
          char lower = static_cast<char>(std::tolower(
              static_cast<unsigned char>(out[i])));
          if (lower != 'a' && lower != 'e' && lower != 'i' && lower != 'o' &&
              lower != 'u') {
            abbr.push_back(out[i]);
          }
        }
        out = abbr;
      } else {
        out += "x";
      }
      break;
    default:  // camel-ish prefix
      out.insert(0, "do");
      break;
  }
  return out;
}

EventLog HeterogeneousRename(const EventLog& log, double opaque_fraction,
                             Rng* rng,
                             std::map<std::string, std::string>* renames) {
  std::vector<std::string> new_names(log.NumEvents());
  std::set<std::string> used;
  for (EventId e = 0; e < static_cast<EventId>(log.NumEvents()); ++e) {
    const std::string& original = log.EventName(e);
    std::string candidate;
    if (rng->Bernoulli(opaque_fraction)) {
      candidate = "ev_" + rng->HexString(8) + "_" + std::to_string(e);
    } else {
      candidate = TypoVariant(original, rng);
      // Resolve collisions deterministically.
      while (used.count(candidate) ||
             log.FindEvent(candidate) != kInvalidEvent) {
        candidate.push_back('_');
        candidate.append(std::to_string(e));
      }
    }
    used.insert(candidate);
    new_names[static_cast<size_t>(e)] = candidate;
    if (renames != nullptr) (*renames)[original] = candidate;
  }
  EventLog out;
  for (const Trace& t : log.traces()) {
    std::vector<std::string> names;
    names.reserve(t.size());
    for (EventId e : t) names.push_back(new_names[static_cast<size_t>(e)]);
    out.AddTrace(names);
  }
  return out;
}

EventLog RemoveHeadEvents(const EventLog& log, int m) {
  EMS_DCHECK(m >= 0);
  std::vector<Trace> new_traces;
  new_traces.reserve(log.NumTraces());
  for (const Trace& t : log.traces()) {
    size_t skip = std::min(t.size(), static_cast<size_t>(m));
    new_traces.emplace_back(t.begin() + static_cast<long>(skip), t.end());
  }
  return log.TransformTraces(new_traces, nullptr);
}

EventLog RemoveTailEvents(const EventLog& log, int m) {
  EMS_DCHECK(m >= 0);
  std::vector<Trace> new_traces;
  new_traces.reserve(log.NumTraces());
  for (const Trace& t : log.traces()) {
    size_t keep = t.size() - std::min(t.size(), static_cast<size_t>(m));
    new_traces.emplace_back(t.begin(), t.begin() + static_cast<long>(keep));
  }
  return log.TransformTraces(new_traces, nullptr);
}

EventLog MergeConsecutivePair(const EventLog& log, const std::string& first,
                              const std::string& second,
                              const std::string& merged_name) {
  EventId a = log.FindEvent(first);
  EventId b = log.FindEvent(second);
  EventLog out;
  for (const Trace& t : log.traces()) {
    std::vector<std::string> names;
    names.reserve(t.size());
    for (size_t i = 0; i < t.size(); ++i) {
      if (a != kInvalidEvent && b != kInvalidEvent && i + 1 < t.size() &&
          t[i] == a && t[i + 1] == b) {
        names.push_back(merged_name);
        ++i;
      } else {
        names.push_back(log.EventName(t[i]));
      }
    }
    out.AddTrace(names);
  }
  return out;
}

EventLog RemoveEventCompletely(const EventLog& log, const std::string& name) {
  EventId target = log.FindEvent(name);
  if (target == kInvalidEvent) {
    return log.TransformTraces(log.traces(), nullptr);
  }
  std::vector<Trace> new_traces;
  new_traces.reserve(log.NumTraces());
  for (const Trace& t : log.traces()) {
    Trace copy;
    copy.reserve(t.size());
    for (EventId e : t) {
      if (e != target) copy.push_back(e);
    }
    new_traces.push_back(std::move(copy));
  }
  return log.TransformTraces(new_traces, nullptr);
}

EventLog AddSwapNoise(const EventLog& log, double p, Rng* rng) {
  std::vector<Trace> new_traces;
  new_traces.reserve(log.NumTraces());
  for (const Trace& t : log.traces()) {
    Trace copy = t;
    for (size_t i = 0; i + 1 < copy.size(); ++i) {
      if (rng->Bernoulli(p)) std::swap(copy[i], copy[i + 1]);
    }
    new_traces.push_back(std::move(copy));
  }
  return log.TransformTraces(new_traces, nullptr);
}

EventLog AddDropNoise(const EventLog& log, double p, Rng* rng) {
  std::vector<Trace> new_traces;
  new_traces.reserve(log.NumTraces());
  for (const Trace& t : log.traces()) {
    Trace copy;
    copy.reserve(t.size());
    for (EventId e : t) {
      if (!rng->Bernoulli(p)) copy.push_back(e);
    }
    new_traces.push_back(std::move(copy));
  }
  return log.TransformTraces(new_traces, nullptr);
}

}  // namespace ems
