#include "synth/log_generator.h"

#include <algorithm>

namespace ems {

namespace {

void Playout(const ProcessNode& node, const PlayoutOptions& options, Rng* rng,
             std::vector<std::string>* out) {
  switch (node.op) {
    case ProcessOp::kActivity:
      out->push_back(node.activity);
      return;
    case ProcessOp::kSequence:
      for (const auto& child : node.children) {
        Playout(*child, options, rng, out);
      }
      return;
    case ProcessOp::kXor: {
      size_t pick = node.branch_weights.empty()
                        ? rng->UniformIndex(node.children.size())
                        : rng->WeightedIndex(node.branch_weights);
      Playout(*node.children[pick], options, rng, out);
      return;
    }
    case ProcessOp::kAnd: {
      // Random interleaving: play each child into its own buffer, then
      // merge order-preservingly at random.
      std::vector<std::vector<std::string>> buffers(node.children.size());
      for (size_t i = 0; i < node.children.size(); ++i) {
        Playout(*node.children[i], options, rng, &buffers[i]);
      }
      std::vector<size_t> cursor(buffers.size(), 0);
      size_t remaining = 0;
      for (const auto& b : buffers) remaining += b.size();
      while (remaining > 0) {
        // Pick a child with items left, weighted by remaining length so
        // long branches are not starved.
        std::vector<double> weights(buffers.size(), 0.0);
        for (size_t i = 0; i < buffers.size(); ++i) {
          weights[i] = static_cast<double>(buffers[i].size() - cursor[i]);
        }
        size_t pick = rng->WeightedIndex(weights);
        out->push_back(buffers[pick][cursor[pick]++]);
        --remaining;
      }
      return;
    }
    case ProcessOp::kLoop: {
      EMS_DCHECK(node.children.size() == 2);
      Playout(*node.children[0], options, rng, out);
      double p = node.loop_probability >= 0.0
                     ? node.loop_probability
                     : options.loop_repeat_probability;
      int rounds = rng->Geometric(p, options.max_loop_rounds);
      for (int r = 0; r < rounds; ++r) {
        Playout(*node.children[1], options, rng, out);
        Playout(*node.children[0], options, rng, out);
      }
      return;
    }
  }
}

}  // namespace

std::vector<std::string> PlayoutTrace(const ProcessNode& tree,
                                      const PlayoutOptions& options,
                                      Rng* rng) {
  std::vector<std::string> trace;
  Playout(tree, options, rng, &trace);
  return trace;
}

EventLog PlayoutLog(const ProcessNode& tree, const PlayoutOptions& options,
                    Rng* rng) {
  EventLog log;
  for (int i = 0; i < options.num_traces; ++i) {
    log.AddTrace(PlayoutTrace(tree, options, rng));
  }
  return log;
}

}  // namespace ems
