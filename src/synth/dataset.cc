#include "synth/dataset.h"

#include <algorithm>
#include <map>
#include <set>

#include "core/composite_candidates.h"
#include "synth/perturb.h"

namespace ems {

const char* TestbedName(Testbed t) {
  switch (t) {
    case Testbed::kDsF:
      return "DS-F";
    case Testbed::kDsB:
      return "DS-B";
    case Testbed::kDsFB:
      return "DS-FB";
  }
  return "?";
}

namespace {

std::set<std::string> Vocabulary(const EventLog& log) {
  std::set<std::string> vocab;
  for (const std::string& name : log.event_names()) vocab.insert(name);
  return vocab;
}

}  // namespace

std::vector<EventLog> MakeAppendBatches(const PairOptions& options,
                                        int batch_traces, int num_batches) {
  // Mirror MakeLogPair's rng choreography exactly up to the log-1
  // play-out — same tree, same composite injection, same fork order — so
  // rng1 starts from the identical state the pair's log 1 was drawn from.
  Rng rng(options.seed);
  ProcessTreeOptions tree_opts = options.tree;
  tree_opts.num_activities = options.num_activities;
  std::unique_ptr<ProcessNode> tree = GenerateProcessTree(tree_opts, &rng);
  if (options.num_composites > 0) {
    (void)InjectSequentialPairs(tree.get(), options.num_composites, &rng);
  }
  if (options.frequency_drift > 0.0) {
    (void)rng.Fork();  // MakeLogPair's drift_rng; drift touches log 2 only
  }
  Rng rng1 = rng.Fork();

  // Replay the base play-out to advance rng1 to the continuation point,
  // then slice the extension into batches.
  PlayoutOptions playout = options.playout;
  playout.num_traces = options.num_traces;
  (void)PlayoutLog(*tree, playout, &rng1);
  playout.num_traces = batch_traces;
  std::vector<EventLog> batches;
  batches.reserve(static_cast<size_t>(std::max(0, num_batches)));
  for (int j = 0; j < num_batches; ++j) {
    batches.push_back(PlayoutLog(*tree, playout, &rng1));
  }
  return batches;
}

LogPair MakeLogPair(Testbed testbed, const PairOptions& options) {
  Rng rng(options.seed);
  ProcessTreeOptions tree_opts = options.tree;
  tree_opts.num_activities = options.num_activities;
  std::unique_ptr<ProcessNode> tree = GenerateProcessTree(tree_opts, &rng);

  // Challenge 3 setup: split leaves into strict SEQ pairs so both logs
  // contain them always-consecutively; log 2 merges them below.
  std::vector<std::pair<std::string, std::string>> injected;
  if (options.num_composites > 0) {
    injected = InjectSequentialPairs(tree.get(), options.num_composites, &rng);
  }

  // The second subsidiary runs the same process with a drifted case mix.
  std::unique_ptr<ProcessNode> tree2 = tree->Clone();
  if (options.frequency_drift > 0.0) {
    Rng drift_rng = rng.Fork();
    DriftProbabilities(tree2.get(), options.frequency_drift, &drift_rng);
  }

  PlayoutOptions playout = options.playout;
  playout.num_traces = options.num_traces;
  Rng rng1 = rng.Fork();
  Rng rng2 = rng.Fork();
  LogPair pair;
  pair.log1 = PlayoutLog(*tree, playout, &rng1);
  pair.log2 = PlayoutLog(*tree2, playout, &rng2);

  // Activities the second system simply does not record. Events that are
  // members of injected composites stay.
  if (options.dropped_events > 0) {
    Rng drop_rng = rng.Fork();
    std::set<std::string> protected_names;
    for (const auto& [a, b] : injected) {
      protected_names.insert(a);
      protected_names.insert(b);
    }
    std::vector<std::string> droppable;
    for (const std::string& name : pair.log2.event_names()) {
      if (!protected_names.count(name)) droppable.push_back(name);
    }
    drop_rng.Shuffle(&droppable);
    for (int i = 0; i < options.dropped_events &&
                    i < static_cast<int>(droppable.size());
         ++i) {
      pair.log2 = RemoveEventCompletely(pair.log2, droppable[static_cast<size_t>(i)]);
    }
  }

  // Initial ground truth: identity over the shared vocabulary.
  std::set<std::string> vocab1 = Vocabulary(pair.log1);
  std::set<std::string> vocab2 = Vocabulary(pair.log2);
  for (const std::string& name : vocab1) {
    if (vocab2.count(name)) pair.truth.Add(name, name);
  }

  // Challenge 3: merge the injected strict SEQ pairs of log 2 into
  // composite events and rewrite the ground truth to m:n entries.
  if (!injected.empty()) {
    int merged = 0;
    std::vector<TruthEntry> complex_entries;
    std::set<std::string> absorbed;
    for (const auto& [a, b] : injected) {
      // The pair must exist in both logs (it always does unless a play-out
      // never visited that XOR branch).
      if (!vocab1.count(a) || !vocab1.count(b)) continue;
      if (pair.log2.FindEvent(a) == kInvalidEvent ||
          pair.log2.FindEvent(b) == kInvalidEvent) {
        continue;
      }
      std::string merged_name = "cmp_" + std::to_string(merged) + "_" + a;
      pair.log2 = MergeConsecutivePair(pair.log2, a, b, merged_name);
      absorbed.insert(a);
      absorbed.insert(b);
      complex_entries.push_back(TruthEntry{{a, b}, {merged_name}});
      ++merged;
    }
    if (merged > 0) {
      pair.has_composites = true;
      // Rebuild the truth: identity entries for absorbed events vanish,
      // the complex entries replace them.
      GroundTruth rebuilt;
      for (const TruthEntry& e : pair.truth.entries()) {
        if (e.left.size() == 1 && absorbed.count(e.left[0])) continue;
        rebuilt.AddComplex(e.left, e.right);
      }
      for (TruthEntry& e : complex_entries) {
        rebuilt.AddComplex(std::move(e.left), std::move(e.right));
      }
      pair.truth = std::move(rebuilt);
    }
  }

  // Recording-order noise (concurrent steps logged out of order);
  // applied after composite merging so injected pairs stay adjacent.
  if (options.swap_noise > 0.0) {
    Rng noise_rng = rng.Fork();
    pair.log2 = AddSwapNoise(pair.log2, options.swap_noise, &noise_rng);
  }

  // Challenge 2: dislocation at trace boundaries of log 2.
  const int m = options.dislocation;
  if (m > 0) {
    switch (testbed) {
      case Testbed::kDsF:
        pair.log2 = RemoveTailEvents(pair.log2, m);
        break;
      case Testbed::kDsB:
        pair.log2 = RemoveHeadEvents(pair.log2, m);
        break;
      case Testbed::kDsFB:
        pair.log2 = RemoveHeadEvents(pair.log2, (m + 1) / 2);
        pair.log2 = RemoveTailEvents(pair.log2, m / 2);
        break;
    }
  }

  // Challenge 1: heterogeneous renaming of log 2 (a mix of garbled and
  // typographically-varied names).
  if (options.opaque) {
    std::map<std::string, std::string> renames;
    Rng rng3 = rng.Fork();
    pair.log2 = HeterogeneousRename(pair.log2, options.opaque_fraction,
                                    &rng3, &renames);
    pair.truth.RenameRight(renames);
  }

  // Dislocation may have removed events from log 2 entirely.
  pair.truth.RestrictToVocabularies(Vocabulary(pair.log1),
                                    Vocabulary(pair.log2));
  pair.name = std::string(TestbedName(testbed)) + "/" +
              std::to_string(options.seed);
  return pair;
}

std::vector<const LogPair*> RealisticDataset::Singleton() const {
  std::vector<const LogPair*> out;
  for (const auto& p : ds_f) out.push_back(&p);
  for (const auto& p : ds_b) out.push_back(&p);
  for (const auto& p : ds_fb) out.push_back(&p);
  return out;
}

RealisticDataset MakeRealisticDataset(const RealisticDatasetOptions& options) {
  RealisticDataset ds;
  Rng meta(options.seed);
  auto make_group = [&](Testbed testbed, int count, int composites,
                        std::vector<LogPair>* out) {
    for (int i = 0; i < count; ++i) {
      PairOptions pair_opts;
      pair_opts.num_activities =
          meta.UniformInt(options.min_activities, options.max_activities);
      pair_opts.num_traces = options.num_traces;
      pair_opts.dislocation = meta.UniformInt(1, 2);
      pair_opts.num_composites = composites;
      pair_opts.seed = meta.engine()();
      out->push_back(MakeLogPair(testbed, pair_opts));
    }
  };
  make_group(Testbed::kDsF, options.ds_f_pairs, 0, &ds.ds_f);
  make_group(Testbed::kDsB, options.ds_b_pairs, 0, &ds.ds_b);
  make_group(Testbed::kDsFB, options.ds_fb_pairs, 0, &ds.ds_fb);
  make_group(Testbed::kDsFB, options.composite_pairs, 2, &ds.composite);
  return ds;
}

std::vector<LogPair> MakeScalabilityPairs(int num_events, int num_pairs,
                                          uint64_t seed) {
  std::vector<LogPair> out;
  Rng meta(seed);
  for (int i = 0; i < num_pairs; ++i) {
    PairOptions pair_opts;
    pair_opts.num_activities = num_events;
    pair_opts.num_traces = 100;
    pair_opts.dislocation = 0;
    pair_opts.opaque = false;
    pair_opts.seed = meta.engine()();
    LogPair pair = MakeLogPair(Testbed::kDsFB, pair_opts);
    pair.name = "scal/" + std::to_string(num_events) + "/" + std::to_string(i);
    out.push_back(std::move(pair));
  }
  return out;
}

LogPair MakeDislocationPair(int num_events, int m, uint64_t seed) {
  PairOptions pair_opts;
  pair_opts.num_activities = num_events;
  pair_opts.num_traces = 100;
  pair_opts.dislocation = m;
  pair_opts.opaque = true;
  pair_opts.seed = seed;
  LogPair pair = MakeLogPair(Testbed::kDsB, pair_opts);
  pair.name = "disl/m=" + std::to_string(m);
  return pair;
}

std::vector<CorpusMember> MakeCorpus(const SynthCorpusOptions& options) {
  std::vector<CorpusMember> members;
  members.reserve(static_cast<size_t>(std::max(0, options.num_members)));
  Rng meta(options.seed);
  const int per_family = std::max(2, options.members_per_family);
  int family = 0;
  while (static_cast<int>(members.size()) < options.num_members) {
    // A family-private vocabulary: random letters, no shared "act_"
    // substring, so activity names of different families share almost no
    // q-grams.
    std::string prefix;
    for (int i = 0; i < 6; ++i) {
      prefix += static_cast<char>('a' + meta.UniformInt(0, 25));
    }
    prefix += '_';

    PairOptions pair_opts;
    pair_opts.tree.activity_prefix = prefix;
    pair_opts.num_activities =
        meta.UniformInt(options.min_activities, options.max_activities);
    pair_opts.num_traces = options.num_traces;
    pair_opts.dislocation = options.dislocation;
    pair_opts.seed = meta.engine()();

    // Families larger than two members are additional heterogeneous
    // play-outs of the same specification: fresh pair seeds reuse the
    // family seed stream but the vocabulary prefix pins the process.
    int produced = 0;
    while (produced < per_family &&
           static_cast<int>(members.size()) < options.num_members) {
      LogPair pair = MakeLogPair(Testbed::kDsFB, pair_opts);
      const std::string base = "fam" + std::to_string(family) + "_";
      EventLog* logs[2] = {&pair.log1, &pair.log2};
      for (EventLog* log : logs) {
        if (produced >= per_family ||
            static_cast<int>(members.size()) >= options.num_members) {
          break;
        }
        CorpusMember member;
        member.family = family;
        member.name = base + std::string(1, static_cast<char>('a' + produced));
        member.log = std::move(*log);
        members.push_back(std::move(member));
        ++produced;
      }
      pair_opts.seed = meta.engine()();
    }
    ++family;
  }
  return members;
}

}  // namespace ems
