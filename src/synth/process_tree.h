// Random process specifications: block-structured process trees with
// SEQ / XOR / AND / LOOP operators over activity leaves — the substitute
// for the BeehiveZ model generator [18, 15] used in the paper's
// scalability study (Section 5.1). Trees are generated from a seed and
// played out into event logs by log_generator.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "util/random.h"
#include "util/status.h"

namespace ems {

/// Operator of an internal process-tree node.
enum class ProcessOp {
  kActivity,  // leaf: one activity
  kSequence,  // children in order
  kXor,       // exactly one child
  kAnd,       // all children, interleaved
  kLoop,      // first child once, then (second child, first child)*
};

/// \brief A node of a block-structured process specification.
struct ProcessNode {
  ProcessOp op = ProcessOp::kActivity;
  std::string activity;  // for leaves
  std::vector<std::unique_ptr<ProcessNode>> children;

  /// XOR branch weights (same length as children). Real processes choose
  /// branches with skewed probabilities; the asymmetry is what makes
  /// events statistically identifiable. Empty = uniform.
  std::vector<double> branch_weights;

  /// LOOP repeat probability for this node; < 0 = use the play-out
  /// default.
  double loop_probability = -1.0;

  /// Deep copy of this subtree.
  std::unique_ptr<ProcessNode> Clone() const;

  /// Number of activity leaves in this subtree.
  size_t CountActivities() const;

  /// Collects the activity names of all leaves, in left-to-right order.
  void CollectActivities(std::vector<std::string>* out) const;

  /// Structural dump (e.g. "SEQ(a, XOR(b, c))") for debugging and tests.
  std::string ToString() const;
};

/// Parameters of the random tree generator.
struct ProcessTreeOptions {
  /// Number of activity leaves the tree must contain.
  int num_activities = 20;

  /// Relative odds of choosing each operator for an internal node.
  double weight_sequence = 5.0;
  double weight_xor = 2.0;
  double weight_and = 2.0;
  double weight_loop = 1.0;

  /// Maximum children of one internal node (>= 2).
  int max_branching = 4;

  /// Activity naming prefix; leaves get "<prefix>0", "<prefix>1", ...
  std::string activity_prefix = "act_";
};

/// Generates a random process tree with exactly
/// `options.num_activities` distinct activities. Deterministic in `rng`.
std::unique_ptr<ProcessNode> GenerateProcessTree(
    const ProcessTreeOptions& options, Rng* rng);

/// Perturbs the stochastic parameters of a specification in place: every
/// XOR branch weight and LOOP repeat probability drifts by a relative
/// factor up to `drift` (e.g. 0.3 = up to +/-30%). Models the same
/// business process executed with different case mixes in another
/// subsidiary; the structure is untouched.
void DriftProbabilities(ProcessNode* tree, double drift, Rng* rng);

/// Splits up to `count` randomly chosen activity leaves into
/// SEQ(activity, activity + suffix) blocks, guaranteeing strict
/// always-consecutive pairs in every play-out. Leaves under an AND
/// ancestor are skipped (interleaving could separate the pair). Returns
/// the (first, second) activity-name pairs actually injected — the
/// ground-truth composites of the synthetic composite-event datasets.
std::vector<std::pair<std::string, std::string>> InjectSequentialPairs(
    ProcessNode* tree, int count, Rng* rng,
    const std::string& suffix = "_b");

}  // namespace ems
