// Play-out simulation: executes a process tree repeatedly to produce an
// event log (the paper generates "2 event logs per process specification"
// this way, Section 5.1). AND blocks interleave children randomly, XOR
// picks a branch, LOOP repeats its redo part geometrically.
#pragma once

#include "log/event_log.h"
#include "synth/process_tree.h"
#include "util/random.h"

namespace ems {

struct PlayoutOptions {
  /// Number of traces to simulate.
  int num_traces = 200;

  /// Probability of taking another loop round after each body execution.
  double loop_repeat_probability = 0.3;

  /// Hard cap on loop rounds (keeps traces finite).
  int max_loop_rounds = 3;
};

/// Simulates one trace of the tree.
std::vector<std::string> PlayoutTrace(const ProcessNode& tree,
                                      const PlayoutOptions& options, Rng* rng);

/// Simulates a full log of `options.num_traces` traces.
EventLog PlayoutLog(const ProcessNode& tree, const PlayoutOptions& options,
                    Rng* rng);

}  // namespace ems
