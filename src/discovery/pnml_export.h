// PNML export: renders a mined causal net as a Petri net in the PNML
// interchange format that ProM / PM4Py / WoPeD consume. The conversion is
// the standard one for dependency nets: one labeled transition per
// activity, one place per causal edge, plus a source place feeding the
// start activities and a sink place fed by the end activities.
#pragma once

#include <iosfwd>
#include <string>

#include "discovery/heuristic_miner.h"
#include "util/status.h"

namespace ems {

/// Writes `net` as a PNML document.
Status WritePnml(const CausalNet& net, std::ostream& out,
                 const std::string& net_name = "mined_net");

/// Writes `net` as a PNML file at `path`.
Status WritePnmlFile(const CausalNet& net, const std::string& path,
                     const std::string& net_name = "mined_net");

}  // namespace ems
