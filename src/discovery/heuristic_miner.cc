#include "discovery/heuristic_miner.h"

#include <algorithm>
#include <map>
#include <set>

#include "log/log_stats.h"

namespace ems {

bool CausalNet::HasEdge(EventId from, EventId to) const {
  for (const CausalEdge& e : edges) {
    if (e.from == from && e.to == to) return true;
  }
  return false;
}

CausalNet MineHeuristicNet(const EventLog& log, const MinerOptions& options) {
  CausalNet net;
  net.activities = log.event_names();
  const size_t n = log.NumEvents();
  if (n == 0) return net;

  LogStats stats(log);

  // Dependency measure per ordered pair.
  for (EventId a = 0; a < static_cast<EventId>(n); ++a) {
    for (EventId b = 0; b < static_cast<EventId>(n); ++b) {
      if (a == b) continue;
      double ab = static_cast<double>(stats.FollowsOccurrences(a, b));
      double ba = static_cast<double>(stats.FollowsOccurrences(b, a));
      if (ab < static_cast<double>(options.min_observations)) continue;
      double dependency = (ab - ba) / (ab + ba + 1.0);
      if (dependency >= options.dependency_threshold) {
        net.edges.push_back(CausalEdge{a, b, dependency});
      }
    }
  }

  // Start/end activities: first/last event of each trace.
  std::vector<size_t> starts(n, 0), ends(n, 0);
  size_t nonempty = 0;
  for (const Trace& t : log.traces()) {
    if (t.empty()) continue;
    ++nonempty;
    ++starts[static_cast<size_t>(t.front())];
    ++ends[static_cast<size_t>(t.back())];
  }
  for (EventId v = 0; v < static_cast<EventId>(n); ++v) {
    size_t occurring = stats.EventTraceCount(v);
    if (occurring == 0) continue;
    if (static_cast<double>(starts[static_cast<size_t>(v)]) >=
        0.5 * static_cast<double>(occurring)) {
      net.start_activities.push_back(v);
    }
    if (static_cast<double>(ends[static_cast<size_t>(v)]) >=
        0.5 * static_cast<double>(occurring)) {
      net.end_activities.push_back(v);
    }
  }

  // Length-two loops: count a b a windows.
  std::map<std::pair<EventId, EventId>, size_t> aba;
  for (const Trace& t : log.traces()) {
    for (size_t i = 0; i + 2 < t.size(); ++i) {
      if (t[i] == t[i + 2] && t[i] != t[i + 1]) {
        ++aba[std::make_pair(t[i], t[i + 1])];
      }
    }
  }
  std::set<std::pair<EventId, EventId>> loop_seen;
  for (const auto& [pair, count] : aba) {
    auto [a, b] = pair;
    if (loop_seen.count(std::make_pair(b, a))) continue;
    size_t reverse = 0;
    auto it = aba.find(std::make_pair(b, a));
    if (it != aba.end()) reverse = it->second;
    double measure = static_cast<double>(count + reverse) /
                     static_cast<double>(count + reverse + 1);
    if (measure >= options.loop2_threshold &&
        count + reverse >= options.min_observations) {
      net.loops2.emplace_back(a, b);
      loop_seen.insert(pair);
    }
  }

  // Split semantics: for an activity with causal successors b, c, ...,
  // AND-split if successors tend to co-occur within the traces that
  // contain the activity; XOR if they are mutually exclusive.
  net.and_split.assign(n, false);
  std::vector<std::vector<EventId>> successors(n);
  for (const CausalEdge& e : net.edges) {
    successors[static_cast<size_t>(e.from)].push_back(e.to);
  }
  for (EventId a = 0; a < static_cast<EventId>(n); ++a) {
    const auto& succ = successors[static_cast<size_t>(a)];
    if (succ.size() < 2) continue;
    // Count traces containing a where >= 2 distinct successors occur.
    size_t with_a = 0;
    size_t with_many = 0;
    for (const Trace& t : log.traces()) {
      bool has_a = false;
      size_t present = 0;
      std::set<EventId> seen;
      for (EventId e : t) {
        if (e == a) has_a = true;
        if (seen.insert(e).second &&
            std::find(succ.begin(), succ.end(), e) != succ.end()) {
          ++present;
        }
      }
      if (!has_a) continue;
      ++with_a;
      if (present >= 2) ++with_many;
    }
    if (with_a > 0 &&
        static_cast<double>(with_many) >= 0.5 * static_cast<double>(with_a)) {
      net.and_split[static_cast<size_t>(a)] = true;
    }
  }
  (void)nonempty;
  return net;
}

}  // namespace ems
