#include "discovery/pnml_export.h"

#include <fstream>
#include <ostream>

#include "util/string_util.h"

namespace ems {

Status WritePnml(const CausalNet& net, std::ostream& out,
                 const std::string& net_name) {
  out << "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n";
  out << "<pnml xmlns=\"http://www.pnml.org/version-2009/grammar/pnml\">\n";
  out << "  <net id=\"" << XmlEscape(net_name)
      << "\" type=\"http://www.pnml.org/version-2009/grammar/ptnet\">\n";
  out << "    <name><text>" << XmlEscape(net_name) << "</text></name>\n";
  out << "    <page id=\"page0\">\n";

  // Transitions: one per activity.
  for (size_t i = 0; i < net.activities.size(); ++i) {
    out << "      <transition id=\"t" << i << "\">\n";
    out << "        <name><text>" << XmlEscape(net.activities[i])
        << "</text></name>\n";
    out << "      </transition>\n";
  }

  // Source and sink places with initial marking on the source.
  out << "      <place id=\"p_source\">\n";
  out << "        <initialMarking><text>1</text></initialMarking>\n";
  out << "      </place>\n";
  out << "      <place id=\"p_sink\"/>\n";

  // One place per causal edge.
  for (size_t k = 0; k < net.edges.size(); ++k) {
    out << "      <place id=\"p" << k << "\"/>\n";
  }

  size_t arc = 0;
  auto arc_open = [&]() -> std::ostream& {
    out << "      <arc id=\"a" << arc++ << "\" source=\"";
    return out;
  };
  for (size_t k = 0; k < net.edges.size(); ++k) {
    arc_open() << 't' << net.edges[k].from << "\" target=\"p" << k
               << "\"/>\n";
    arc_open() << 'p' << k << "\" target=\"t" << net.edges[k].to << "\"/>\n";
  }
  for (EventId s : net.start_activities) {
    arc_open() << "p_source\" target=\"t" << s << "\"/>\n";
  }
  for (EventId e : net.end_activities) {
    arc_open() << 't' << e << "\" target=\"p_sink\"/>\n";
  }

  out << "    </page>\n";
  out << "  </net>\n";
  out << "</pnml>\n";
  if (!out) return Status::IOError("write failed");
  return Status::OK();
}

Status WritePnmlFile(const CausalNet& net, const std::string& path,
                     const std::string& net_name) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open '" + path + "' for writing");
  return WritePnml(net, out, net_name);
}

}  // namespace ems
