// Heuristic process discovery in the style of the Heuristics Miner:
// derives a causal net from an event log via dependency measures over
// direct-follows counts. Used here to sanity-check the synthetic
// generator (mined models must reflect the generating specification) and
// as the natural companion of event matching in a process warehouse
// (discover per-subsidiary models, then match their events).
#pragma once

#include <string>
#include <vector>

#include "log/event_log.h"

namespace ems {

/// Parameters of the dependency-measure thresholding.
struct MinerOptions {
  /// Minimum dependency measure a => b for a causal edge:
  /// (|a>b| - |b>a|) / (|a>b| + |b>a| + 1).
  double dependency_threshold = 0.8;

  /// Minimum absolute direct-follows occurrences for an edge to be
  /// considered at all.
  size_t min_observations = 2;

  /// Dependency threshold for length-two loops (a b a patterns):
  /// (|aba| + |bab|) / (|aba| + |bab| + 1).
  double loop2_threshold = 0.8;
};

/// One causal edge of the mined net.
struct CausalEdge {
  EventId from;
  EventId to;
  double dependency;  // the dependency measure, in (-1, 1)
};

/// The mined model: a causal net plus split/join semantics hints.
struct CausalNet {
  std::vector<std::string> activities;  // by EventId of the source log
  std::vector<CausalEdge> edges;

  /// Activities that start (resp. end) traces with relative frequency
  /// above 50%.
  std::vector<EventId> start_activities;
  std::vector<EventId> end_activities;

  /// Detected length-two loops as (a, b) pairs: a b a occurs dependably.
  std::vector<std::pair<EventId, EventId>> loops2;

  /// For each activity, whether its outgoing split behaves like AND
  /// (successors co-occur in the same traces) rather than XOR. Indexed
  /// like `activities`; meaningless for out-degree < 2.
  std::vector<bool> and_split;

  /// True if `edges` contains (from, to).
  bool HasEdge(EventId from, EventId to) const;
};

/// Mines the causal net of `log`.
CausalNet MineHeuristicNet(const EventLog& log,
                           const MinerOptions& options = {});

}  // namespace ems
