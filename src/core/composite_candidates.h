// Discovery of composite event candidates (Section 4 / Section 5.1):
// "Candidates of composite events are obtained by grouping singleton
// events that always appear consecutively, following the convention of
// SEQ pattern in CEP [6]". A pair (a, b) is a SEQ candidate when, within
// the log, occurrences of a are (almost) always immediately followed by b
// and occurrences of b are (almost) always immediately preceded by a;
// chains close transitively into longer candidates. Different candidates
// may overlap (the matcher resolves overlap greedily).
#pragma once

#include <vector>

#include "log/event_log.h"

namespace ems {

/// Parameters of SEQ-pattern candidate discovery.
struct CandidateOptions {
  /// Minimum fraction of a's occurrences immediately followed by b (and of
  /// b's occurrences immediately preceded by a). 1.0 = strict "always".
  double min_confidence = 1.0;

  /// Maximum number of singleton events in one candidate.
  int max_size = 4;

  /// Minimum number of occurrences of the pair for statistical relevance.
  int min_support = 1;

  /// Upper bound on the number of candidates returned (best-confidence
  /// first); 0 = unlimited. This is the knob Figure 14 sweeps.
  int max_candidates = 0;
};

/// One candidate: the member events in sequence order, plus the fraction
/// of member occurrences respecting the SEQ pattern (the candidate score
/// used for ordering).
struct CompositeCandidate {
  std::vector<EventId> events;
  double confidence = 0.0;

  bool operator==(const CompositeCandidate& other) const {
    return events == other.events;
  }
};

/// Discovers SEQ composite candidates in `log`. Pairs are found first;
/// adjacent pairs sharing an endpoint chain into longer candidates up to
/// max_size. Candidates are returned with size >= 2, highest confidence
/// first (deterministic order).
std::vector<CompositeCandidate> DiscoverCandidates(
    const EventLog& log, const CandidateOptions& options = {});

}  // namespace ems
