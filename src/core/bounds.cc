#include "core/bounds.h"

#include <algorithm>
#include <cmath>

namespace ems {

double SimilarityUpperBound(double s_at_k, int k, double alpha, double c) {
  const double r = alpha * c;
  EMS_DCHECK(r >= 0.0 && r < 1.0);
  return std::min(1.0, s_at_k + r * std::pow(r, k) / (1.0 - r));
}

double PaperUpperBound(double s_at_k, int k, double alpha, double c) {
  const double r = alpha * c;
  EMS_DCHECK(r >= 0.0 && r < 1.0);
  return std::min(1.0, s_at_k + std::pow(r, k) / (1.0 - r));
}

double HorizonUpperBound(double s_at_k, int k, int horizon, double alpha,
                         double c) {
  if (horizon == kInfiniteDistance) {
    return SimilarityUpperBound(s_at_k, k, alpha, c);
  }
  if (horizon <= k) return s_at_k;  // already converged (Proposition 2)
  const double r = alpha * c;
  EMS_DCHECK(r >= 0.0 && r < 1.0);
  double tail = r * (std::pow(r, k) - std::pow(r, horizon)) / (1.0 - r);
  return std::min(1.0, s_at_k + tail);
}

double LabeledHorizonUpperBound(double s_at_k, int k, int horizon,
                                double alpha, double c, double label_max) {
  if (horizon != kInfiniteDistance && horizon <= k) return s_at_k;
  const double r = alpha * c;
  EMS_DCHECK(r >= 0.0 && r < 1.0);
  EMS_DCHECK(label_max >= 0.0);
  const double delta1 = r + (1.0 - alpha) * label_max;
  const double rh = horizon == kInfiniteDistance ? 0.0 : std::pow(r, horizon);
  const double tail = delta1 * (std::pow(r, k) - rh) / (1.0 - r);
  return std::min(1.0, s_at_k + tail);
}

double AverageUpperBound(const EmsSimilarity& ems, Direction direction,
                         const SimilarityMatrix& s_at_k, int k,
                         const DependencyGraph& g1,
                         const DependencyGraph& g2) {
  const double alpha = ems.options().alpha;
  const double c = ems.options().c;
  double total = 0.0;
  size_t count = 0;
  for (NodeId v1 = 0; v1 < static_cast<NodeId>(g1.NumNodes()); ++v1) {
    if (g1.IsArtificial(v1)) continue;
    for (NodeId v2 = 0; v2 < static_cast<NodeId>(g2.NumNodes()); ++v2) {
      if (g2.IsArtificial(v2)) continue;
      int h = ems.ConvergenceHorizon(direction, v1, v2);
      total += HorizonUpperBound(s_at_k.at(v1, v2), k, h, alpha, c);
      ++count;
    }
  }
  return count == 0 ? 0.0 : total / static_cast<double>(count);
}

}  // namespace ems
