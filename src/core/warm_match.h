// Warm-start matching for streaming ingestion: re-runs the 1:1 match
// pipeline over already-maintained dependency graphs, seeding the EMS
// iteration with the previous fixpoint (EmsOptions::seed) so small
// appends converge in a fraction of the cold iteration count. The seed
// produced by each run feeds the next one, and `cold_iterations` carries
// the chain's cold baseline forward so iterations_saved stays meaningful
// across warm generations.
#pragma once

#include "core/matcher.h"
#include "graph/dependency_graph.h"
#include "log/event_log.h"
#include "util/status.h"

namespace ems {

/// State carried between warm re-matches of one log pair: the converged
/// per-direction EMS matrices plus the iteration count of the cold run
/// that started the chain.
struct WarmSeed {
  SimilarityMatrix forward;
  SimilarityMatrix backward;

  /// Iterations of the chain's cold (unseeded) run — the baseline that
  /// iterations_saved is measured against. Propagated, not recomputed,
  /// across warm generations.
  int cold_iterations = 0;

  bool valid = false;
};

/// Counters of one MatchWithGraphsWarm call.
struct WarmMatchStats {
  /// Iterations of this run (max over directions).
  int iterations = 0;

  /// max(0, seed cold_iterations - iterations); 0 on cold runs.
  int iterations_saved = 0;

  /// True when a valid seed was applied.
  bool warm = false;
};

/// Runs the non-composite exact match pipeline (label similarity, EMS,
/// selection) over prebuilt graphs, warm-started from `seed` when it is
/// non-null and valid.
///
/// `assume_unchanged` asserts the graphs are bit-identical to the ones
/// the seed converged on (restart resume, or an append that folded zero
/// traces): the run then passes all-clean change hints and returns the
/// seed byte-identically after one iteration. For real appends leave it
/// false — the trace-count denominator moves every frequency, so
/// everything must be marked changed (null hints).
///
/// On success fills `next_seed` (when non-null) with this run's
/// per-direction fixpoints for the next generation, and `stats` (when
/// non-null) with iteration counters. Requires engine == kExact and
/// match_composites == false; composite and estimated pipelines restart
/// cold by design (their inner runs are not seedable).
Result<MatchResult> MatchWithGraphsWarm(
    const MatchOptions& options, const EventLog& log1, const EventLog& log2,
    const DependencyGraph& g1, const DependencyGraph& g2,
    const WarmSeed* seed, bool assume_unchanged, WarmSeed* next_seed,
    WarmMatchStats* stats);

}  // namespace ems
