#include "core/match_report.h"

#include "util/json_writer.h"

namespace ems {

std::string MatchResultToJson(const MatchResult& result) {
  JsonWriter w;
  w.BeginObject();
  w.Key("correspondences");
  w.BeginArray();
  for (const Correspondence& c : result.correspondences) {
    w.BeginObject();
    w.Key("left");
    w.BeginArray();
    for (const std::string& name : c.events1) w.String(name);
    w.EndArray();
    w.Key("right");
    w.BeginArray();
    for (const std::string& name : c.events2) w.String(name);
    w.EndArray();
    w.Key("similarity");
    w.Number(c.similarity);
    // Only prob runs carry calibrated confidences; omitting the key
    // otherwise keeps the report byte-identical to pre-prob builds.
    if (result.soft.has_value()) {
      w.Key("confidence");
      w.Number(c.confidence);
    }
    w.EndObject();
  }
  w.EndArray();
  w.Key("stats");
  w.BeginObject();
  w.Key("iterations");
  w.Int(result.ems_stats.iterations);
  w.Key("formula_evaluations");
  w.Int(static_cast<long long>(result.ems_stats.formula_evaluations));
  w.Key("composite_merges");
  w.Int(result.composite_stats.merges_accepted);
  w.Key("composite_candidates_evaluated");
  w.Int(result.composite_stats.candidates_evaluated);
  w.EndObject();
  w.Key("graphs");
  w.BeginObject();
  w.Key("left_events");
  w.Int(static_cast<long long>(result.graph1.NumNodes()) -
        (result.graph1.has_artificial() ? 1 : 0));
  w.Key("right_events");
  w.Int(static_cast<long long>(result.graph2.NumNodes()) -
        (result.graph2.has_artificial() ? 1 : 0));
  w.EndObject();
  if (result.soft.has_value()) {
    const prob::EmStats& em = result.soft->stats;
    w.Key("prob");
    w.BeginObject();
    w.Key("iterations");
    w.Int(em.iterations);
    w.Key("converged");
    w.Bool(em.converged);
    w.Key("final_delta");
    w.Number(em.final_delta);
    w.Key("mean_entropy");
    w.Number(em.mean_entropy);
    w.EndObject();
  }
  w.EndObject();
  return w.str();
}

std::string ConformanceToJson(const ConformanceReport& report) {
  JsonWriter w;
  w.BeginObject();
  w.Key("vocabulary_overlap");
  w.Number(report.vocabulary_overlap);
  w.Key("relation_overlap");
  w.Number(report.relation_overlap);
  w.Key("trace_coverage_1in2");
  w.Number(report.trace_coverage_1in2);
  w.Key("trace_coverage_2in1");
  w.Number(report.trace_coverage_2in1);
  w.Key("f_conformance");
  w.Number(report.f_conformance);
  w.EndObject();
  return w.str();
}

}  // namespace ems
