#include "core/ems_similarity.h"

#include <algorithm>
#include <cmath>

#include "exec/parallel.h"
#include "exec/thread_pool.h"
#include "obs/context.h"

namespace ems {

EmsSimilarity::EmsSimilarity(
    const DependencyGraph& g1, const DependencyGraph& g2,
    const EmsOptions& options,
    const std::vector<std::vector<double>>* label_similarity)
    : g1_(g1), g2_(g2), options_(options), label_(label_similarity) {
  EMS_DCHECK(g1.has_artificial() && g2.has_artificial());
  EMS_DCHECK(options.alpha >= 0.0 && options.alpha <= 1.0);
  EMS_DCHECK(options.c > 0.0 && options.c < 1.0);
#ifndef NDEBUG
  if (label_ != nullptr) {
    EMS_DCHECK(label_->size() == g1.NumNodes());
    for (const auto& row : *label_) EMS_DCHECK(row.size() == g2.NumNodes());
  }
#endif
}

EmsSimilarity::~EmsSimilarity() = default;

double EmsSimilarity::EdgeCoefficient(double fa, double fb) const {
  EMS_DCHECK(fa > 0.0 || fb > 0.0);
  return options_.c * (1.0 - std::fabs(fa - fb) / (fa + fb));
}

double EmsSimilarity::LabelAt(NodeId v1, NodeId v2) const {
  if (label_ == nullptr) return 0.0;
  return (*label_)[static_cast<size_t>(v1)][static_cast<size_t>(v2)];
}

int EmsSimilarity::ConvergenceHorizon(Direction direction, NodeId v1,
                                      NodeId v2) const {
  EMS_DCHECK(direction != Direction::kBoth);
  const std::vector<int>& l1 = direction == Direction::kForward
                                   ? g1_.LongestDistancesFromArtificial()
                                   : g1_.LongestDistancesToArtificial();
  const std::vector<int>& l2 = direction == Direction::kForward
                                   ? g2_.LongestDistancesFromArtificial()
                                   : g2_.LongestDistancesToArtificial();
  return std::min(l1[static_cast<size_t>(v1)], l2[static_cast<size_t>(v2)]);
}

SimilarityMatrix EmsSimilarity::InitialMatrix() const {
  // S^0(v1^X, v2^X) = 1; every other pair starts at 0 (Section 3.2).
  SimilarityMatrix s(g1_.NumNodes(), g2_.NumNodes(), 0.0);
  s.set(g1_.artificial_node(), g2_.artificial_node(), 1.0);
  return s;
}

double EmsSimilarity::OneSide(Direction direction, const SimilarityMatrix& prev,
                              NodeId v1, NodeId v2, bool transposed) const {
  // s(v1, v2) = (1/|N(v1)|) * sum over v1' in N(v1) of
  //             max over v2' in N(v2) of C(...) * S^{n-1}(v1', v2'),
  // where N is the pre-set (forward) or post-set (backward). When
  // `transposed`, the roles of the two graphs swap (s(v2, v1)) but matrix
  // indexing stays (g1-node, g2-node).
  const bool forward = direction == Direction::kForward;
  const DependencyGraph& ga = transposed ? g2_ : g1_;
  const DependencyGraph& gb = transposed ? g1_ : g2_;
  const NodeId a = transposed ? v2 : v1;
  const NodeId b = transposed ? v1 : v2;

  const auto& nbrs_a = forward ? ga.Predecessors(a) : ga.Successors(a);
  const auto& freq_a =
      forward ? ga.PredecessorFrequencies(a) : ga.SuccessorFrequencies(a);
  const auto& nbrs_b = forward ? gb.Predecessors(b) : gb.Successors(b);
  const auto& freq_b =
      forward ? gb.PredecessorFrequencies(b) : gb.SuccessorFrequencies(b);

  if (nbrs_a.empty() || nbrs_b.empty()) return 0.0;

  double sum = 0.0;
  for (size_t i = 0; i < nbrs_a.size(); ++i) {
    double best = 0.0;
    for (size_t j = 0; j < nbrs_b.size(); ++j) {
      double sim = transposed ? prev.at(nbrs_b[j], nbrs_a[i])
                              : prev.at(nbrs_a[i], nbrs_b[j]);
      if (sim <= 0.0) continue;
      double coeff = EdgeCoefficient(freq_a[i], freq_b[j]);
      best = std::max(best, coeff * sim);
    }
    sum += best;
  }
  return sum / static_cast<double>(nbrs_a.size());
}

namespace {

struct RowRangeResult {
  double max_delta = 0.0;
  uint64_t evaluations = 0;
  uint64_t pruned = 0;
};

}  // namespace

double EmsSimilarity::Iterate(Direction direction, int iteration,
                              const SimilarityMatrix& prev,
                              SimilarityMatrix* next,
                              const std::vector<bool>* frozen_rows,
                              const std::vector<bool>* frozen_cols) {
  const NodeId rows = static_cast<NodeId>(g1_.NumNodes());

  auto run_rows = [&](NodeId row_begin, NodeId row_end) {
    RowRangeResult result;
    for (NodeId v1 = row_begin; v1 < row_end; ++v1) {
      if (g1_.IsArtificial(v1)) continue;
      const bool row_frozen =
          frozen_rows != nullptr && (*frozen_rows)[static_cast<size_t>(v1)];
      for (NodeId v2 = 0; v2 < static_cast<NodeId>(g2_.NumNodes()); ++v2) {
        if (g2_.IsArtificial(v2)) continue;
        if (row_frozen || (frozen_cols != nullptr &&
                           (*frozen_cols)[static_cast<size_t>(v2)])) {
          next->set(v1, v2, prev.at(v1, v2));
          continue;
        }
        if (options_.prune_converged &&
            iteration > ConvergenceHorizon(direction, v1, v2)) {
          // Proposition 2: the value can no longer change; keep it.
          next->set(v1, v2, prev.at(v1, v2));
          ++result.pruned;
          continue;
        }
        double s12 = OneSide(direction, prev, v1, v2, /*transposed=*/false);
        double s21 = OneSide(direction, prev, v1, v2, /*transposed=*/true);
        double value = options_.alpha * (s12 + s21) / 2.0 +
                       (1.0 - options_.alpha) * LabelAt(v1, v2);
        ++result.evaluations;
        next->set(v1, v2, value);
        result.max_delta = std::max(result.max_delta,
                                    std::fabs(value - prev.at(v1, v2)));
      }
    }
    return result;
  };

  int threads = options_.pool != nullptr
                    ? options_.pool->num_threads()
                    : exec::ThreadPool::EffectiveThreads(options_.num_threads);
  threads = std::min<int>(threads, std::max<NodeId>(rows, 1));

  if (threads <= 1) {
    RowRangeResult result = run_rows(0, rows);
    stats_.formula_evaluations += result.evaluations;
    stats_.pairs_pruned_converged += result.pruned;
    return result.max_delta;
  }

  if (options_.prune_converged) {
    // The graphs memoize their longest-distance vectors lazily in a
    // const accessor; first-touch them here, on the coordinating
    // thread, so concurrent chunks calling ConvergenceHorizon only read.
    if (direction == Direction::kForward) {
      g1_.LongestDistancesFromArtificial();
      g2_.LongestDistancesFromArtificial();
    } else {
      g1_.LongestDistancesToArtificial();
      g2_.LongestDistancesToArtificial();
    }
  }

  // Each chunk writes a disjoint row range of `next` and reads only
  // `prev`; no synchronization needed beyond the join. Per-chunk results
  // merge by sum/max, so the outcome is independent of scheduling.
  std::vector<RowRangeResult> results(static_cast<size_t>(threads));
  exec::ParallelForChunks(
      IteratePool(threads), 0, static_cast<size_t>(rows), threads,
      [&](int chunk, size_t begin, size_t end) {
        results[static_cast<size_t>(chunk)] = run_rows(
            static_cast<NodeId>(begin), static_cast<NodeId>(end));
      });
  double max_delta = 0.0;
  for (const RowRangeResult& r : results) {
    max_delta = std::max(max_delta, r.max_delta);
    stats_.formula_evaluations += r.evaluations;
    stats_.pairs_pruned_converged += r.pruned;
  }
  return max_delta;
}

exec::ThreadPool* EmsSimilarity::IteratePool(int threads) {
  if (options_.pool != nullptr) return options_.pool;
  if (owned_pool_ == nullptr || owned_pool_->num_threads() < threads) {
    owned_pool_ = std::make_unique<exec::ThreadPool>(threads);
  }
  return owned_pool_.get();
}

SimilarityMatrix EmsSimilarity::RunDirection(Direction direction,
                                             int max_iterations,
                                             int* iterations_done,
                                             const RunControls* controls) {
  ScopedSpan span(options_.obs, direction == Direction::kForward
                                    ? "ems_forward"
                                    : "ems_backward");
  SimilarityMatrix prev = InitialMatrix();
  const std::vector<bool>* frozen_rows = nullptr;
  const std::vector<bool>* frozen_cols = nullptr;
  if (controls != nullptr &&
      (controls->frozen_rows != nullptr || controls->frozen_cols != nullptr)) {
    frozen_rows = controls->frozen_rows;
    frozen_cols = controls->frozen_cols;
    EMS_DCHECK(controls->frozen_values != nullptr);
    for (NodeId v1 = 0; v1 < static_cast<NodeId>(g1_.NumNodes()); ++v1) {
      if (g1_.IsArtificial(v1)) continue;
      bool rf = frozen_rows != nullptr &&
                (*frozen_rows)[static_cast<size_t>(v1)];
      for (NodeId v2 = 0; v2 < static_cast<NodeId>(g2_.NumNodes()); ++v2) {
        if (g2_.IsArtificial(v2)) continue;
        if (rf || (frozen_cols != nullptr &&
                   (*frozen_cols)[static_cast<size_t>(v2)])) {
          prev.set(v1, v2, controls->frozen_values->at(v1, v2));
        }
      }
    }
  }
  if (controls != nullptr && controls->aborted != nullptr) {
    *controls->aborted = false;
  }
  SimilarityMatrix next = prev;
  int n = 0;
  while (n < max_iterations) {
    ++n;
    double delta = Iterate(direction, n, prev, &next, frozen_rows, frozen_cols);
    std::swap(prev, next);
    if (controls != nullptr && controls->should_abort &&
        controls->should_abort(n, prev)) {
      if (controls->aborted != nullptr) *controls->aborted = true;
      break;
    }
    if (delta <= options_.epsilon) break;
  }
  if (iterations_done != nullptr) *iterations_done = n;
  return prev;
}

void EmsSimilarity::FlushStatsToObs() const {
  ObsContext* obs = options_.obs;
  if (obs == nullptr) return;
  ObsIncrement(obs, "ems.runs");
  ObsIncrement(obs, "ems.iterations",
               static_cast<uint64_t>(stats_.iterations));
  ObsIncrement(obs, "ems.formula_evaluations", stats_.formula_evaluations);
  ObsIncrement(obs, "ems.pairs_pruned_converged",
               stats_.pairs_pruned_converged);
  ObsObserve(obs, "ems.iterations_per_run",
             static_cast<double>(stats_.iterations));
}

SimilarityMatrix EmsSimilarity::ComputeControlled(Direction direction,
                                                  const RunControls& controls) {
  EMS_DCHECK(direction != Direction::kBoth);
  stats_ = EmsStats{};
  int iters = 0;
  SimilarityMatrix result =
      RunDirection(direction, options_.max_iterations, &iters, &controls);
  stats_.iterations = iters;
  if (controls.aborted != nullptr && *controls.aborted) {
    ObsIncrement(options_.obs, "ems.aborted_runs");
  }
  FlushStatsToObs();
  return result;
}

SimilarityMatrix EmsSimilarity::Compute() {
  ScopedSpan span(options_.obs, "ems_fixpoint");
  stats_ = EmsStats{};
  if (options_.direction != Direction::kBoth) {
    int iters = 0;
    SimilarityMatrix result =
        RunDirection(options_.direction, options_.max_iterations, &iters);
    stats_.iterations = iters;
    FlushStatsToObs();
    return result;
  }
  int fwd_iters = 0;
  int bwd_iters = 0;
  SimilarityMatrix forward =
      RunDirection(Direction::kForward, options_.max_iterations, &fwd_iters);
  SimilarityMatrix backward =
      RunDirection(Direction::kBackward, options_.max_iterations, &bwd_iters);
  stats_.iterations = std::max(fwd_iters, bwd_iters);
  FlushStatsToObs();
  // Aggregate the two directions by average (Section 3.6).
  SimilarityMatrix combined(g1_.NumNodes(), g2_.NumNodes(), 0.0);
  for (NodeId v1 = 0; v1 < static_cast<NodeId>(g1_.NumNodes()); ++v1) {
    for (NodeId v2 = 0; v2 < static_cast<NodeId>(g2_.NumNodes()); ++v2) {
      combined.set(v1, v2,
                   (forward.at(v1, v2) + backward.at(v1, v2)) / 2.0);
    }
  }
  return combined;
}

SimilarityMatrix EmsSimilarity::ComputePartial(Direction direction,
                                               int iterations) {
  EMS_DCHECK(direction != Direction::kBoth);
  stats_ = EmsStats{};
  int iters = 0;
  SimilarityMatrix result = RunDirection(direction, iterations, &iters);
  stats_.iterations = iters;
  FlushStatsToObs();
  return result;
}

SimilarityMatrix ComputeEmsSimilarity(const EventLog& log1,
                                      const EventLog& log2,
                                      const EmsOptions& options,
                                      EmsStats* stats) {
  DependencyGraph g1 = DependencyGraph::Build(log1);
  DependencyGraph g2 = DependencyGraph::Build(log2);
  EmsSimilarity sim(g1, g2, options);
  SimilarityMatrix result = sim.Compute();
  if (stats != nullptr) *stats = sim.stats();
  return result;
}

}  // namespace ems
