#include "core/ems_similarity.h"

#include <algorithm>
#include <cmath>

#if defined(__SSE2__)
#include <emmintrin.h>
#endif

#include "exec/parallel.h"
#include "exec/thread_pool.h"
#include "obs/context.h"

namespace ems {

namespace {

#if defined(__GNUC__) || defined(__clang__)
#define EMS_NOINLINE __attribute__((noinline))
#else
#define EMS_NOINLINE
#endif

// The edge-similarity coefficient C of Definition 2. Single definition
// shared by EdgeCoefficient, the table builder, and the on-the-fly
// fallback, so every path evaluates the exact same expression.
inline double EdgeCoeff(double c, double fa, double fb) {
  return c * (1.0 - std::fabs(fa - fb) / (fa + fb));
}

// The final blend of formula (1). Shared — and deliberately kept out of
// line — by the naive and optimized kernels: one instruction sequence
// rules out call-site-dependent floating-point contraction breaking the
// kernels' bit-identity contract.
EMS_NOINLINE double BlendPair(double alpha, double s12, double s21,
                              double label) {
  return alpha * (s12 + s21) / 2.0 + (1.0 - alpha) * label;
}

// dirty[v] = OR of changed[a] over v's neighbors a — the reverse-adjacency
// marking of the delta propagation, expressed as a forward CSR scan.
void DeriveDirty(const CsrAdjacency& adj, const std::vector<uint8_t>& changed,
                 std::vector<uint8_t>* dirty) {
  const size_t n = adj.offsets.size() - 1;
  for (size_t v = 0; v < n; ++v) {
    uint8_t d = 0;
    for (int32_t k = adj.offsets[v]; k < adj.offsets[v + 1]; ++k) {
      d |= changed[static_cast<size_t>(adj.neighbors[static_cast<size_t>(k)])];
    }
    (*dirty)[v] = d;
  }
}

// One row of the fused scan: returns max_j crow[j] * prow[j] and updates
// cb[j] = max(cb[j], crow[j] * prow[j]) elementwise. Two-wide under SSE2:
// multiply and max are exact elementwise operations, max is associative
// and commutative, and every product here is a non-negative +0.0-signed
// double — so lane split and horizontal-max order cannot change a bit.
inline double MulMaxRow(const double* crow, const double* prow, double* cb,
                        int32_t d2) {
  double best = 0.0;
  int32_t j = 0;
#if defined(__SSE2__)
  __m128d vbest = _mm_setzero_pd();
  for (; j + 2 <= d2; j += 2) {
    const __m128d p =
        _mm_mul_pd(_mm_loadu_pd(crow + j), _mm_loadu_pd(prow + j));
    vbest = _mm_max_pd(vbest, p);
    _mm_storeu_pd(cb + j, _mm_max_pd(_mm_loadu_pd(cb + j), p));
  }
  best = std::max(_mm_cvtsd_f64(vbest),
                  _mm_cvtsd_f64(_mm_unpackhi_pd(vbest, vbest)));
#endif
  for (; j < d2; ++j) {
    const double p = crow[j] * prow[j];
    best = std::max(best, p);
    cb[j] = std::max(cb[j], p);
  }
  return best;
}

struct RowRangeResult {
  double max_delta = 0.0;
  uint64_t evaluations = 0;
  uint64_t pruned = 0;
  uint64_t skipped = 0;
  // Column-changed flags of this chunk's rows (delta tracking); merged by
  // OR after the join — order-independent, so still deterministic.
  std::vector<uint8_t> col_changed;
};

}  // namespace

// Iteration-invariant per-direction state of the optimized kernel: both
// graphs' adjacency for that direction flattened to CSR, and (memory
// permitting) the precomputed C(fa, fb) blocks — for each real pair
// (v1, v2) a deg(v1) x deg(v2) row-major block at
// row_base[v1] + deg(v1) * col_base[v2].
struct EmsSimilarity::DirectionTables {
  CsrAdjacency a1;  // g1 neighbors (pre-sets forward, post-sets backward)
  CsrAdjacency a2;  // g2 neighbors
  int32_t max_degree2 = 0;
  int32_t art2_entries = 0;    // neighbor-list entries of g2's artificial node
  size_t panel_stride = 0;     // real g2 neighbor-list entries (panel row width)
  bool have_coeff = false;
  std::vector<double> coeff;
  std::vector<size_t> row_base;  // per g1 node: offset of its first block
  std::vector<size_t> col_base;  // per g2 node: real entries before it
};

// Changed/dirty bitmaps of one RunDirection (delta-driven recomputation):
// row_changed/col_changed describe the previous iteration, dirty1/dirty2
// are derived marks for the current one, next_* collect the running
// iteration's changes.
struct EmsSimilarity::DeltaState {
  bool active = false;  // false for iteration 1 (no previous iteration)
  // True once panel_ holds the previous iteration's gathers for this
  // direction; rows whose row_changed bit is clear are then re-usable.
  bool panel_primed = false;
  std::vector<uint8_t> row_changed, col_changed;
  std::vector<uint8_t> dirty1, dirty2;
  std::vector<uint8_t> next_row_changed, next_col_changed;
};

EmsSimilarity::EmsSimilarity(
    const DependencyGraph& g1, const DependencyGraph& g2,
    const EmsOptions& options,
    const std::vector<std::vector<double>>* label_similarity)
    : g1_(g1), g2_(g2), options_(options) {
  EMS_DCHECK(g1.has_artificial() && g2.has_artificial());
  EMS_DCHECK(options.alpha >= 0.0 && options.alpha <= 1.0);
  EMS_DCHECK(options.c > 0.0 && options.c < 1.0);
  if (label_similarity != nullptr) {
    EMS_DCHECK(label_similarity->size() == g1.NumNodes());
    has_labels_ = true;
    label_flat_.reserve(g1.NumNodes() * g2.NumNodes());
    for (const auto& row : *label_similarity) {
      EMS_DCHECK(row.size() == g2.NumNodes());
      label_flat_.insert(label_flat_.end(), row.begin(), row.end());
    }
  }
}

EmsSimilarity::~EmsSimilarity() = default;

double EmsSimilarity::EdgeCoefficient(double fa, double fb) const {
  EMS_DCHECK(fa > 0.0 || fb > 0.0);
  return EdgeCoeff(options_.c, fa, fb);
}

double EmsSimilarity::LabelAt(NodeId v1, NodeId v2) const {
  if (!has_labels_) return 0.0;
  return label_flat_[static_cast<size_t>(v1) * g2_.NumNodes() +
                     static_cast<size_t>(v2)];
}

int EmsSimilarity::ConvergenceHorizon(Direction direction, NodeId v1,
                                      NodeId v2) const {
  EMS_DCHECK(direction != Direction::kBoth);
  const std::vector<int>& l1 = direction == Direction::kForward
                                   ? g1_.LongestDistancesFromArtificial()
                                   : g1_.LongestDistancesToArtificial();
  const std::vector<int>& l2 = direction == Direction::kForward
                                   ? g2_.LongestDistancesFromArtificial()
                                   : g2_.LongestDistancesToArtificial();
  return std::min(l1[static_cast<size_t>(v1)], l2[static_cast<size_t>(v2)]);
}

SimilarityMatrix EmsSimilarity::InitialMatrix() const {
  // S^0(v1^X, v2^X) = 1; every other pair starts at 0 (Section 3.2).
  SimilarityMatrix s(g1_.NumNodes(), g2_.NumNodes(), 0.0);
  s.set(g1_.artificial_node(), g2_.artificial_node(), 1.0);
  return s;
}

double EmsSimilarity::OneSide(Direction direction, const SimilarityMatrix& prev,
                              NodeId v1, NodeId v2, bool transposed) const {
  // s(v1, v2) = (1/|N(v1)|) * sum over v1' in N(v1) of
  //             max over v2' in N(v2) of C(...) * S^{n-1}(v1', v2'),
  // where N is the pre-set (forward) or post-set (backward). When
  // `transposed`, the roles of the two graphs swap (s(v2, v1)) but matrix
  // indexing stays (g1-node, g2-node).
  const bool forward = direction == Direction::kForward;
  const DependencyGraph& ga = transposed ? g2_ : g1_;
  const DependencyGraph& gb = transposed ? g1_ : g2_;
  const NodeId a = transposed ? v2 : v1;
  const NodeId b = transposed ? v1 : v2;

  const auto& nbrs_a = forward ? ga.Predecessors(a) : ga.Successors(a);
  const auto& freq_a =
      forward ? ga.PredecessorFrequencies(a) : ga.SuccessorFrequencies(a);
  const auto& nbrs_b = forward ? gb.Predecessors(b) : gb.Successors(b);
  const auto& freq_b =
      forward ? gb.PredecessorFrequencies(b) : gb.SuccessorFrequencies(b);

  if (nbrs_a.empty() || nbrs_b.empty()) return 0.0;

  double sum = 0.0;
  for (size_t i = 0; i < nbrs_a.size(); ++i) {
    double best = 0.0;
    for (size_t j = 0; j < nbrs_b.size(); ++j) {
      double sim = transposed ? prev.at(nbrs_b[j], nbrs_a[i])
                              : prev.at(nbrs_a[i], nbrs_b[j]);
      if (sim <= 0.0) continue;
      double coeff = EdgeCoefficient(freq_a[i], freq_b[j]);
      best = std::max(best, coeff * sim);
    }
    sum += best;
  }
  return sum / static_cast<double>(nbrs_a.size());
}

const EmsSimilarity::DirectionTables& EmsSimilarity::TablesFor(
    Direction direction) {
  EMS_DCHECK(direction != Direction::kBoth);
  std::unique_ptr<DirectionTables>& slot = direction == Direction::kForward
                                               ? forward_tables_
                                               : backward_tables_;
  if (slot != nullptr) return *slot;
  auto t = std::make_unique<DirectionTables>();
  if (direction == Direction::kForward) {
    t->a1 = g1_.ExportPredecessorCsr();
    t->a2 = g2_.ExportPredecessorCsr();
  } else {
    t->a1 = g1_.ExportSuccessorCsr();
    t->a2 = g2_.ExportSuccessorCsr();
  }
  const NodeId n1 = static_cast<NodeId>(g1_.NumNodes());
  const NodeId n2 = static_cast<NodeId>(g2_.NumNodes());
  for (NodeId v2 = 0; v2 < n2; ++v2) {
    t->max_degree2 = std::max(t->max_degree2, t->a2.Degree(v2));
  }
  const int64_t e1 = t->a1.RealEntries(g1_.has_artificial());
  const int64_t e2 = t->a2.RealEntries(g2_.has_artificial());
  t->art2_entries = g2_.has_artificial() ? t->a2.Degree(0) : 0;
  t->panel_stride = static_cast<size_t>(e2);
  // col_base powers both the coefficient-block addressing and the panel
  // (gathered S^{n-1}) addressing, so it is built even when the
  // coefficient tables do not fit the cap.
  t->col_base.assign(static_cast<size_t>(n2), 0);
  for (NodeId v2 = 1; v2 < n2; ++v2) {
    t->col_base[static_cast<size_t>(v2)] = static_cast<size_t>(
        t->a2.offsets[static_cast<size_t>(v2)] - t->art2_entries);
  }
  // Coefficient tables need 8 * E1_real * E2_real bytes; fall back to
  // on-the-fly coefficients when that exceeds the configured cap
  // (division-based check to dodge overflow on adversarial sizes).
  const int64_t cap_doubles =
      static_cast<int64_t>(options_.coeff_table_max_bytes / sizeof(double));
  const bool fits =
      e1 == 0 || e2 == 0 || (cap_doubles > 0 && e2 <= cap_doubles / e1);
  if (fits) {
    t->coeff.reserve(static_cast<size_t>(e1 * e2));
    t->row_base.assign(static_cast<size_t>(n1), 0);
    for (NodeId v1 = 1; v1 < n1; ++v1) {
      t->row_base[static_cast<size_t>(v1)] = t->coeff.size();
      const int32_t d1 = t->a1.Degree(v1);
      const double* f1 =
          t->a1.frequencies.data() + t->a1.offsets[static_cast<size_t>(v1)];
      for (NodeId v2 = 1; v2 < n2; ++v2) {
        const int32_t d2 = t->a2.Degree(v2);
        const double* f2 =
            t->a2.frequencies.data() + t->a2.offsets[static_cast<size_t>(v2)];
        for (int32_t i = 0; i < d1; ++i) {
          for (int32_t j = 0; j < d2; ++j) {
            t->coeff.push_back(EdgeCoeff(options_.c, f1[i], f2[j]));
          }
        }
      }
    }
    t->have_coeff = true;
  }
  slot = std::move(t);
  return *slot;
}

size_t EmsSimilarity::coefficient_table_bytes() const {
  size_t total = 0;
  if (forward_tables_ != nullptr && forward_tables_->have_coeff) {
    total += forward_tables_->coeff.size() * sizeof(double);
  }
  if (backward_tables_ != nullptr && backward_tables_->have_coeff) {
    total += backward_tables_->coeff.size() * sizeof(double);
  }
  return total;
}

double EmsSimilarity::Iterate(Direction direction, int iteration,
                              const SimilarityMatrix& prev,
                              SimilarityMatrix* next,
                              const std::vector<bool>* frozen_rows,
                              const std::vector<bool>* frozen_cols,
                              DeltaState* delta) {
  const NodeId rows = static_cast<NodeId>(g1_.NumNodes());
  const NodeId cols = static_cast<NodeId>(g2_.NumNodes());
  const bool optimized = options_.kernel == EmsKernel::kOptimized;
  const DirectionTables* tables = optimized ? &TablesFor(direction) : nullptr;

  const int* l1 = nullptr;
  const int* l2 = nullptr;
  if (options_.prune_converged) {
    // The graphs memoize their longest-distance vectors lazily in a
    // const accessor; first-touch them here, on the coordinating
    // thread, so concurrent chunks only read.
    l1 = (direction == Direction::kForward
              ? g1_.LongestDistancesFromArtificial()
              : g1_.LongestDistancesToArtificial())
             .data();
    l2 = (direction == Direction::kForward
              ? g2_.LongestDistancesFromArtificial()
              : g2_.LongestDistancesToArtificial())
             .data();
  }

  const bool use_delta = delta != nullptr && delta->active;
  const uint8_t* dirty1 = use_delta ? delta->dirty1.data() : nullptr;
  const uint8_t* dirty2 = use_delta ? delta->dirty2.data() : nullptr;
  uint8_t* next_row_changed =
      delta != nullptr ? delta->next_row_changed.data() : nullptr;

  const double* prev_data = prev.data().data();
  double* next_data = next->mutable_data();
  const double alpha = options_.alpha;
  const double c = options_.c;

  // Gather S^{n-1} into the panel: panel row r holds prev(r, n2[k]) for
  // every real-node neighbor slot k of g2, so the fused scan below reads
  // coefficients and similarities as two contiguous streams. Pure copies
  // of prev values — bit-identity is unaffected.
  const double* panel_data = nullptr;
  if (optimized && tables->panel_stride > 0) {
    const size_t stride = tables->panel_stride;
    panel_.resize(static_cast<size_t>(rows) * stride);
    const NodeId* slots =
        tables->a2.neighbors.data() + tables->art2_entries;
    // Once primed, rows whose row_changed bit is clear are bit-identical
    // to the previous iteration's prev, so their gathers are still valid.
    const uint8_t* changed = (delta != nullptr && delta->panel_primed &&
                              delta->active)
                                 ? delta->row_changed.data()
                                 : nullptr;
    for (NodeId r = 0; r < rows; ++r) {
      if (changed != nullptr && changed[static_cast<size_t>(r)] == 0) {
        continue;
      }
      const double* pr = prev_data + static_cast<size_t>(r) * cols;
      double* dst = panel_.data() + static_cast<size_t>(r) * stride;
      for (size_t k = 0; k < stride; ++k) {
        dst[k] = pr[slots[k]];
      }
    }
    if (delta != nullptr) delta->panel_primed = true;
    panel_data = panel_.data();
  }

  auto run_rows = [&](NodeId row_begin, NodeId row_end,
                      RowRangeResult* result) {
    // Scratch for the fused scan's per-column maxima; one allocation per
    // chunk, reused across its pairs.
    std::vector<double> col_best;
    if (optimized) {
      col_best.resize(
          static_cast<size_t>(std::max<int32_t>(tables->max_degree2, 1)));
    }
    if (delta != nullptr) {
      result->col_changed.assign(static_cast<size_t>(cols), 0);
    }
    for (NodeId v1 = row_begin; v1 < row_end; ++v1) {
      if (g1_.IsArtificial(v1)) continue;
      const bool row_frozen =
          frozen_rows != nullptr && (*frozen_rows)[static_cast<size_t>(v1)];
      const bool row_dirty =
          !use_delta || dirty1[static_cast<size_t>(v1)] != 0;
      const size_t row_off = static_cast<size_t>(v1) * cols;
      for (NodeId v2 = 0; v2 < cols; ++v2) {
        if (g2_.IsArtificial(v2)) continue;
        const size_t idx = row_off + static_cast<size_t>(v2);
        if (row_frozen || (frozen_cols != nullptr &&
                           (*frozen_cols)[static_cast<size_t>(v2)])) {
          next_data[idx] = prev_data[idx];
          continue;
        }
        if (l1 != nullptr &&
            iteration > std::min(l1[v1], l2[v2])) {
          // Proposition 2: the value can no longer change; keep it.
          next_data[idx] = prev_data[idx];
          ++result->pruned;
          continue;
        }
        if (use_delta &&
            !(row_dirty && dirty2[static_cast<size_t>(v2)] != 0)) {
          // Neither input neighborhood changed last iteration: the
          // re-evaluation would reproduce the previous value bit for
          // bit, so copy it forward instead.
          next_data[idx] = prev_data[idx];
          ++result->skipped;
          continue;
        }
        double value;
        if (optimized) {
          // Fused forward/transposed pass over the deg(v1) x deg(v2)
          // block: one read of S^{n-1} per neighbor pair feeds both the
          // row maxima (s12) and the column maxima (s21). Sums run in
          // the naive kernel's index order; maxima are order-free.
          const DirectionTables& t = *tables;
          const int32_t d1 = t.a1.Degree(v1);
          const int32_t d2 = t.a2.Degree(v2);
          double s12 = 0.0;
          double s21 = 0.0;
          if (d1 > 0 && d2 > 0) {
            const NodeId* n1 =
                t.a1.neighbors.data() + t.a1.offsets[static_cast<size_t>(v1)];
            const size_t cb_off = t.col_base[static_cast<size_t>(v2)];
            double* cb = col_best.data();
            for (int32_t j = 0; j < d2; ++j) cb[j] = 0.0;
            double sum_rows = 0.0;
            if (t.have_coeff) {
              const double* block =
                  t.coeff.data() + t.row_base[static_cast<size_t>(v1)] +
                  static_cast<size_t>(d1) * cb_off;
              for (int32_t i = 0; i < d1; ++i) {
                const double* crow = block + static_cast<size_t>(i) * d2;
                const double* prow = panel_data +
                                     static_cast<size_t>(n1[i]) *
                                         t.panel_stride +
                                     cb_off;
                sum_rows += MulMaxRow(crow, prow, cb, d2);
              }
            } else {
              const double* f1 = t.a1.frequencies.data() +
                                 t.a1.offsets[static_cast<size_t>(v1)];
              const double* f2 = t.a2.frequencies.data() +
                                 t.a2.offsets[static_cast<size_t>(v2)];
              for (int32_t i = 0; i < d1; ++i) {
                const double* prow = panel_data +
                                     static_cast<size_t>(n1[i]) *
                                         t.panel_stride +
                                     cb_off;
                double best = 0.0;
                for (int32_t j = 0; j < d2; ++j) {
                  // The divide only matters when s != 0 (matches the
                  // naive kernel's early-out; maxes of non-negative
                  // products are unaffected by skipped zeros).
                  const double s = prow[j];
                  if (s <= 0.0) continue;
                  const double p = EdgeCoeff(c, f1[i], f2[j]) * s;
                  best = std::max(best, p);
                  cb[j] = std::max(cb[j], p);
                }
                sum_rows += best;
              }
            }
            s12 = sum_rows / static_cast<double>(d1);
            double sum_cols = 0.0;
            for (int32_t j = 0; j < d2; ++j) sum_cols += cb[j];
            s21 = sum_cols / static_cast<double>(d2);
          }
          value = BlendPair(alpha, s12, s21, LabelAt(v1, v2));
        } else {
          double s12 = OneSide(direction, prev, v1, v2, /*transposed=*/false);
          double s21 = OneSide(direction, prev, v1, v2, /*transposed=*/true);
          value = BlendPair(alpha, s12, s21, LabelAt(v1, v2));
        }
        ++result->evaluations;
        const double old = prev_data[idx];
        next_data[idx] = value;
        const double d = std::fabs(value - old);
        if (d > result->max_delta) result->max_delta = d;
        if (delta != nullptr && value != old) {
          next_row_changed[v1] = 1;
          result->col_changed[static_cast<size_t>(v2)] = 1;
        }
      }
    }
  };

  int threads = options_.pool != nullptr
                    ? options_.pool->num_threads()
                    : exec::ThreadPool::EffectiveThreads(options_.num_threads);
  threads = std::min<int>(threads, std::max<NodeId>(rows, 1));

  auto merge = [&](const RowRangeResult& r, double* max_delta) {
    *max_delta = std::max(*max_delta, r.max_delta);
    stats_.formula_evaluations += r.evaluations;
    stats_.pairs_pruned_converged += r.pruned;
    stats_.pairs_skipped_unchanged += r.skipped;
    if (delta != nullptr) {
      for (size_t v2 = 0; v2 < r.col_changed.size(); ++v2) {
        delta->next_col_changed[v2] |= r.col_changed[v2];
      }
    }
  };

  if (threads <= 1) {
    RowRangeResult result;
    run_rows(0, rows, &result);
    double max_delta = 0.0;
    merge(result, &max_delta);
    return max_delta;
  }

  // Each chunk writes a disjoint row range of `next` (and of the
  // row-changed bitmap) and reads only `prev`; no synchronization needed
  // beyond the join. Per-chunk results merge by sum/max/or, so the
  // outcome is independent of scheduling.
  std::vector<RowRangeResult> results(static_cast<size_t>(threads));
  exec::ParallelForChunks(
      IteratePool(threads), 0, static_cast<size_t>(rows), threads,
      [&](int chunk, size_t begin, size_t end) {
        run_rows(static_cast<NodeId>(begin), static_cast<NodeId>(end),
                 &results[static_cast<size_t>(chunk)]);
      });
  double max_delta = 0.0;
  for (const RowRangeResult& r : results) merge(r, &max_delta);
  return max_delta;
}

exec::ThreadPool* EmsSimilarity::IteratePool(int threads) {
  if (options_.pool != nullptr) return options_.pool;
  if (owned_pool_ == nullptr || owned_pool_->num_threads() < threads) {
    owned_pool_ = std::make_unique<exec::ThreadPool>(threads);
  }
  return owned_pool_.get();
}

SimilarityMatrix EmsSimilarity::RunDirection(Direction direction,
                                             int max_iterations,
                                             int* iterations_done,
                                             const RunControls* controls) {
  ScopedSpan span(options_.obs, direction == Direction::kForward
                                    ? "ems_forward"
                                    : "ems_backward");
  SimilarityMatrix prev = InitialMatrix();
  const SimilarityMatrix* seed_matrix = nullptr;
  if (options_.seed != nullptr) {
    seed_matrix = direction == Direction::kForward ? options_.seed->forward
                                                   : options_.seed->backward;
    if (seed_matrix != nullptr && seed_matrix->rows() == 0) {
      seed_matrix = nullptr;
    }
  }
  if (seed_matrix != nullptr) {
    // Warm start: overlay the seed's real block over S^0 (see EmsSeed in
    // the header for why any seed converges to the same fixpoint). The
    // artificial row/column keeps the S^0 boundary, and nodes beyond the
    // seed's dimensions (appended vocabulary) start cold at 0.
    const NodeId copy_rows = static_cast<NodeId>(
        std::min(g1_.NumNodes(), seed_matrix->rows()));
    const NodeId copy_cols = static_cast<NodeId>(
        std::min(g2_.NumNodes(), seed_matrix->cols()));
    for (NodeId v1 = 0; v1 < copy_rows; ++v1) {
      if (g1_.IsArtificial(v1)) continue;
      for (NodeId v2 = 0; v2 < copy_cols; ++v2) {
        if (g2_.IsArtificial(v2)) continue;
        prev.set(v1, v2, seed_matrix->at(v1, v2));
      }
    }
  }
  const std::vector<bool>* frozen_rows = nullptr;
  const std::vector<bool>* frozen_cols = nullptr;
  if (controls != nullptr &&
      (controls->frozen_rows != nullptr || controls->frozen_cols != nullptr)) {
    frozen_rows = controls->frozen_rows;
    frozen_cols = controls->frozen_cols;
    EMS_DCHECK(controls->frozen_values != nullptr);
    for (NodeId v1 = 0; v1 < static_cast<NodeId>(g1_.NumNodes()); ++v1) {
      if (g1_.IsArtificial(v1)) continue;
      bool rf = frozen_rows != nullptr &&
                (*frozen_rows)[static_cast<size_t>(v1)];
      for (NodeId v2 = 0; v2 < static_cast<NodeId>(g2_.NumNodes()); ++v2) {
        if (g2_.IsArtificial(v2)) continue;
        if (rf || (frozen_cols != nullptr &&
                   (*frozen_cols)[static_cast<size_t>(v2)])) {
          prev.set(v1, v2, controls->frozen_values->at(v1, v2));
        }
      }
    }
  }
  if (controls != nullptr && controls->aborted != nullptr) {
    *controls->aborted = false;
  }

  DeltaState delta_state;
  DeltaState* delta = nullptr;
  if (options_.kernel == EmsKernel::kOptimized && options_.skip_unchanged) {
    const size_t n1 = g1_.NumNodes();
    const size_t n2 = g2_.NumNodes();
    delta_state.row_changed.assign(n1, 0);
    delta_state.col_changed.assign(n2, 0);
    delta_state.dirty1.assign(n1, 0);
    delta_state.dirty2.assign(n2, 0);
    delta_state.next_row_changed.assign(n1, 0);
    delta_state.next_col_changed.assign(n2, 0);
    delta = &delta_state;
    if (seed_matrix != nullptr) {
      // Prime the change bitmaps from the caller's hints so iteration 1
      // may copy pairs whose input neighborhoods are entirely clean
      // (EmsSeed documents when a clear bit is sound). Absent hints mean
      // everything changed; indices past a hint's length are new nodes.
      auto prime = [](std::vector<uint8_t>* bits,
                      const std::vector<uint8_t>* hint) {
        for (size_t i = 0; i < bits->size(); ++i) {
          (*bits)[i] = hint != nullptr && i < hint->size() ? (*hint)[i] : 1;
        }
      };
      prime(&delta_state.row_changed, options_.seed->changed_rows);
      prime(&delta_state.col_changed, options_.seed->changed_cols);
      const DirectionTables& t = TablesFor(direction);
      DeriveDirty(t.a1, delta_state.row_changed, &delta_state.dirty1);
      DeriveDirty(t.a2, delta_state.col_changed, &delta_state.dirty2);
      delta_state.active = true;
    }
  }

  // With run_to_horizon, keep iterating at least through the largest
  // finite convergence horizon of this direction: every finite-horizon
  // pair then holds its seed-independent exact fixpoint bits on return
  // (warm == cold byte-identical on acyclic instances).
  int horizon_floor = 0;
  if (options_.run_to_horizon) {
    const std::vector<int>& h1 = direction == Direction::kForward
                                     ? g1_.LongestDistancesFromArtificial()
                                     : g1_.LongestDistancesToArtificial();
    const std::vector<int>& h2 = direction == Direction::kForward
                                     ? g2_.LongestDistancesFromArtificial()
                                     : g2_.LongestDistancesToArtificial();
    for (int d : h1) {
      if (d != kInfiniteDistance) horizon_floor = std::max(horizon_floor, d);
    }
    for (int d : h2) {
      if (d != kInfiniteDistance) horizon_floor = std::max(horizon_floor, d);
    }
  }

  SimilarityMatrix next = prev;
  int n = 0;
  while (n < max_iterations) {
    ++n;
    double delta_max =
        Iterate(direction, n, prev, &next, frozen_rows, frozen_cols, delta);
    std::swap(prev, next);
    if (delta != nullptr) {
      // Promote this iteration's changed-entry flags and derive the next
      // iteration's dirty marks: pair (v1, v2) must be re-evaluated only
      // if some input row in N(v1) changed AND some input column in
      // N(v2) changed (docs/PERFORMANCE.md explains why the conjunction
      // is a sound over-approximation).
      const DirectionTables& t = TablesFor(direction);
      delta->row_changed.swap(delta->next_row_changed);
      delta->col_changed.swap(delta->next_col_changed);
      std::fill(delta->next_row_changed.begin(),
                delta->next_row_changed.end(), 0);
      std::fill(delta->next_col_changed.begin(),
                delta->next_col_changed.end(), 0);
      DeriveDirty(t.a1, delta->row_changed, &delta->dirty1);
      DeriveDirty(t.a2, delta->col_changed, &delta->dirty2);
      delta->active = true;
    }
    if (controls != nullptr && controls->should_abort &&
        controls->should_abort(n, prev)) {
      if (controls->aborted != nullptr) *controls->aborted = true;
      break;
    }
    if (delta_max <= options_.epsilon && n >= horizon_floor) break;
  }
  if (iterations_done != nullptr) *iterations_done = n;
  return prev;
}

void EmsSimilarity::FlushStatsToObs() const {
  ObsContext* obs = options_.obs;
  if (obs == nullptr) return;
  ObsIncrement(obs, "ems.runs");
  ObsIncrement(obs, "ems.iterations",
               static_cast<uint64_t>(stats_.iterations));
  ObsIncrement(obs, "ems.formula_evaluations", stats_.formula_evaluations);
  ObsIncrement(obs, "ems.pairs_pruned_converged",
               stats_.pairs_pruned_converged);
  ObsIncrement(obs, "ems.pairs_skipped_unchanged",
               stats_.pairs_skipped_unchanged);
  ObsSetGauge(obs, "ems.coefficient_table_bytes",
              static_cast<double>(coefficient_table_bytes()));
  ObsObserve(obs, "ems.iterations_per_run",
             static_cast<double>(stats_.iterations));
}

SimilarityMatrix EmsSimilarity::ComputeControlled(Direction direction,
                                                  const RunControls& controls) {
  EMS_DCHECK(direction != Direction::kBoth);
  stats_ = EmsStats{};
  int iters = 0;
  SimilarityMatrix result =
      RunDirection(direction, options_.max_iterations, &iters, &controls);
  stats_.iterations = iters;
  if (controls.aborted != nullptr && *controls.aborted) {
    ObsIncrement(options_.obs, "ems.aborted_runs");
  }
  FlushStatsToObs();
  return result;
}

SimilarityMatrix EmsSimilarity::Compute() {
  ScopedSpan span(options_.obs, "ems_fixpoint");
  stats_ = EmsStats{};
  captured_forward_.reset();
  captured_backward_.reset();
  if (options_.direction != Direction::kBoth) {
    int iters = 0;
    SimilarityMatrix result =
        RunDirection(options_.direction, options_.max_iterations, &iters);
    stats_.iterations = iters;
    if (options_.capture_direction_matrices) {
      (options_.direction == Direction::kForward ? captured_forward_
                                                 : captured_backward_) =
          result;
    }
    FlushStatsToObs();
    return result;
  }
  int fwd_iters = 0;
  int bwd_iters = 0;
  SimilarityMatrix forward =
      RunDirection(Direction::kForward, options_.max_iterations, &fwd_iters);
  SimilarityMatrix backward =
      RunDirection(Direction::kBackward, options_.max_iterations, &bwd_iters);
  stats_.iterations = std::max(fwd_iters, bwd_iters);
  if (options_.capture_direction_matrices) {
    captured_forward_ = forward;
    captured_backward_ = backward;
  }
  FlushStatsToObs();
  // Aggregate the two directions by average (Section 3.6): an
  // element-wise pass over the flat buffers, partitioned across the pool
  // when one is configured. Cells are independent, so the parallel pass
  // is bit-identical to the serial one.
  SimilarityMatrix combined(g1_.NumNodes(), g2_.NumNodes(), 0.0);
  const double* f = forward.data().data();
  const double* b = backward.data().data();
  double* out = combined.mutable_data();
  const size_t cells = g1_.NumNodes() * g2_.NumNodes();
  int threads = options_.pool != nullptr
                    ? options_.pool->num_threads()
                    : exec::ThreadPool::EffectiveThreads(options_.num_threads);
  if (threads <= 1 || cells < 4096) {
    for (size_t i = 0; i < cells; ++i) out[i] = (f[i] + b[i]) / 2.0;
  } else {
    exec::ParallelForChunks(IteratePool(threads), 0, cells, threads,
                            [&](int, size_t begin, size_t end) {
                              for (size_t i = begin; i < end; ++i) {
                                out[i] = (f[i] + b[i]) / 2.0;
                              }
                            });
  }
  return combined;
}

SimilarityMatrix EmsSimilarity::ComputePartial(Direction direction,
                                               int iterations) {
  EMS_DCHECK(direction != Direction::kBoth);
  stats_ = EmsStats{};
  int iters = 0;
  SimilarityMatrix result = RunDirection(direction, iterations, &iters);
  stats_.iterations = iters;
  FlushStatsToObs();
  return result;
}

SimilarityMatrix ComputeEmsSimilarity(const EventLog& log1,
                                      const EventLog& log2,
                                      const EmsOptions& options,
                                      EmsStats* stats) {
  DependencyGraph g1 = DependencyGraph::Build(log1);
  DependencyGraph g2 = DependencyGraph::Build(log2);
  EmsSimilarity sim(g1, g2, options);
  SimilarityMatrix result = sim.Compute();
  if (stats != nullptr) *stats = sim.stats();
  return result;
}

}  // namespace ems
