// Fast estimation of EMS similarities (Section 3.5, Algorithm 1): run a
// constant number I of exact iterations, then extrapolate each remaining
// pair in closed form by treating the recurrence as geometric
// (formula (2)). I trades accuracy for time: I = 0 gives O(|V1||V2|)
// total cost; I >= max pair horizon reproduces the exact similarity.
#pragma once

#include "core/ems_similarity.h"

namespace ems {

/// Options for the estimated similarity.
struct EstimationOptions {
  /// Exact iterations before extrapolation (the paper's I; Figure 5
  /// sweeps this from 0 to MAX). Must be >= 0.
  int exact_iterations = 5;

  /// Underlying EMS parameters. `direction` kBoth averages the forward
  /// and backward estimates.
  EmsOptions ems;
};

/// \brief EMS + estimation (the paper's EMS+es).
class EstimatedEmsSimilarity {
 public:
  EstimatedEmsSimilarity(const DependencyGraph& g1, const DependencyGraph& g2,
                         const EstimationOptions& options,
                         const std::vector<std::vector<double>>*
                             label_similarity = nullptr);

  /// Runs Algorithm 1: I exact iterations + closed-form extrapolation.
  SimilarityMatrix Compute();

  /// Counters of the last Compute (exact iterations only; extrapolation
  /// is one closed-form evaluation per pair and is not counted as a
  /// formula-(1) evaluation).
  const EmsStats& stats() const { return stats_; }

 private:
  SimilarityMatrix ComputeDirection(Direction direction);

  // Formula (2) applied to one pair: extrapolates from the exact value
  // S^I to the horizon h (possibly infinite).
  double Extrapolate(Direction direction, NodeId v1, NodeId v2,
                     double exact_at_i, int horizon) const;

  const DependencyGraph& g1_;
  const DependencyGraph& g2_;
  EstimationOptions options_;
  const std::vector<std::vector<double>>* label_;
  EmsStats stats_;
};

}  // namespace ems
