#include "core/warm_match.h"

#include <algorithm>
#include <cstdint>
#include <memory>
#include <vector>

#include "core/ems_similarity.h"
#include "obs/context.h"
#include "text/label_similarity.h"

namespace ems {

Result<MatchResult> MatchWithGraphsWarm(
    const MatchOptions& options, const EventLog& log1, const EventLog& log2,
    const DependencyGraph& g1, const DependencyGraph& g2,
    const WarmSeed* seed, bool assume_unchanged, WarmSeed* next_seed,
    WarmMatchStats* stats) {
  if (options.match_composites) {
    return Status::InvalidArgument(
        "warm matching requires match_composites == false");
  }
  if (options.engine != SimilarityEngine::kExact) {
    return Status::InvalidArgument("warm matching requires the exact engine");
  }
  ObsContext* obs = options.obs.context;
  ScopedSpan root(obs, "warm_match");

  MatchResult result;
  result.graph1 = g1;
  result.graph2 = g2;

  std::unique_ptr<LabelSimilarity> measure =
      MakeLabelMeasure(options.label_measure);
  std::vector<std::vector<double>> labels;
  const std::vector<std::vector<double>>* labels_ptr = nullptr;
  if (options.label_measure != LabelMeasure::kNone) {
    ScopedSpan span(obs, "label_similarity");
    labels = LabelSimilarityMatrix(g1, g2, *measure, options.ems.pool);
    labels_ptr = &labels;
  }

  EmsOptions ems_opts = options.ems;
  ems_opts.obs = obs;
  ems_opts.capture_direction_matrices = true;
  EmsSeed ems_seed;
  std::vector<uint8_t> clean_rows, clean_cols;
  const bool warm = seed != nullptr && seed->valid;
  if (warm) {
    ems_seed.forward = &seed->forward;
    ems_seed.backward = &seed->backward;
    if (assume_unchanged) {
      clean_rows.assign(g1.NumNodes(), 0);
      clean_cols.assign(g2.NumNodes(), 0);
      ems_seed.changed_rows = &clean_rows;
      ems_seed.changed_cols = &clean_cols;
    }
    ems_opts.seed = &ems_seed;
  }

  EmsSimilarity sim(g1, g2, ems_opts, labels_ptr);
  result.similarity = sim.Compute();
  result.ems_stats = sim.stats();

  if (next_seed != nullptr) {
    const SimilarityMatrix* fwd = sim.captured_forward();
    const SimilarityMatrix* bwd = sim.captured_backward();
    next_seed->forward = fwd != nullptr ? *fwd : SimilarityMatrix();
    next_seed->backward = bwd != nullptr ? *bwd : SimilarityMatrix();
    // A warm chain keeps measuring against the cold run that started it.
    next_seed->cold_iterations =
        warm ? seed->cold_iterations : sim.stats().iterations;
    next_seed->valid = true;
  }
  if (stats != nullptr) {
    stats->iterations = sim.stats().iterations;
    stats->warm = warm;
    stats->iterations_saved =
        warm ? std::max(0, seed->cold_iterations - sim.stats().iterations)
             : 0;
  }
  if (obs != nullptr && warm) {
    ObsIncrement(obs, "stream.warm_matches");
    ObsIncrement(obs, "stream.warm_iterations",
                 static_cast<uint64_t>(sim.stats().iterations));
    ObsIncrement(
        obs, "stream.iterations_saved",
        static_cast<uint64_t>(std::max(
            0, (seed->cold_iterations - sim.stats().iterations))));
  }

  SelectCorrespondences(options, log1, log2, &result);
  return result;
}

}  // namespace ems
