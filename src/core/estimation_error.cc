#include "core/estimation_error.h"

#include <cmath>

namespace ems {

EstimationErrorReport AnalyzeEstimationError(
    const DependencyGraph& g1, const DependencyGraph& g2, int exact_iterations,
    const EmsOptions& ems,
    const std::vector<std::vector<double>>* label_similarity) {
  EmsOptions exact_opts = ems;
  EmsSimilarity exact(g1, g2, exact_opts, label_similarity);
  SimilarityMatrix s_exact = exact.Compute();

  EstimationOptions est_opts;
  est_opts.exact_iterations = exact_iterations;
  est_opts.ems = ems;
  EstimatedEmsSimilarity estimated(g1, g2, est_opts, label_similarity);
  SimilarityMatrix s_est = estimated.Compute();

  // Horizons are direction-specific; for the combined (kBoth) matrix use
  // the forward horizon as the classifier (finite forward ancestry is
  // what Proposition 2 speaks about).
  Direction horizon_dir =
      ems.direction == Direction::kBackward ? Direction::kBackward
                                            : Direction::kForward;

  EstimationErrorReport report;
  report.exact_iterations = exact_iterations;
  double sum_abs = 0.0;
  double sum_sq = 0.0;
  size_t undershoot = 0;
  for (NodeId v1 = 0; v1 < static_cast<NodeId>(g1.NumNodes()); ++v1) {
    if (g1.IsArtificial(v1)) continue;
    for (NodeId v2 = 0; v2 < static_cast<NodeId>(g2.NumNodes()); ++v2) {
      if (g2.IsArtificial(v2)) continue;
      double err = s_est.at(v1, v2) - s_exact.at(v1, v2);
      double abs_err = std::fabs(err);
      sum_abs += abs_err;
      sum_sq += err * err;
      if (err < 0.0) ++undershoot;
      report.max_abs_error = std::max(report.max_abs_error, abs_err);
      int h = exact.ConvergenceHorizon(horizon_dir, v1, v2);
      if (h == kInfiniteDistance) {
        report.max_error_infinite_horizon =
            std::max(report.max_error_infinite_horizon, abs_err);
      } else {
        report.max_error_finite_horizon =
            std::max(report.max_error_finite_horizon, abs_err);
      }
      ++report.pairs;
    }
  }
  if (report.pairs > 0) {
    report.mean_abs_error = sum_abs / static_cast<double>(report.pairs);
    report.rmse = std::sqrt(sum_sq / static_cast<double>(report.pairs));
    report.undershoot_fraction =
        static_cast<double>(undershoot) / static_cast<double>(report.pairs);
  }
  return report;
}

std::vector<EstimationErrorReport> EstimationErrorCurve(
    const DependencyGraph& g1, const DependencyGraph& g2,
    const std::vector<int>& iterations, const EmsOptions& ems) {
  std::vector<EstimationErrorReport> curve;
  curve.reserve(iterations.size());
  for (int i : iterations) {
    curve.push_back(AnalyzeEstimationError(g1, g2, i, ems));
  }
  return curve;
}

}  // namespace ems
