// Composite event matching (Section 4). The optimal problem (Problem 1)
// is NP-hard (Theorem 3, by reduction from maximum set packing), so the
// production path is the greedy heuristic of Section 4.1 / Algorithm 2,
// accelerated by two prunings:
//   Uc — unchanged-similarity identification (Proposition 4): node pairs
//        whose ancestors (forward) / descendants (backward) are disjoint
//        from the freshly merged composite keep their similarities;
//   Bd — upper-bound abandonment (Section 4.3): a candidate whose average
//        similarity upper bound falls below the incumbent is dropped
//        mid-iteration.
// An exact enumerator over disjoint candidate subfamilies is provided for
// small instances to measure the greedy optimality gap.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/composite_candidates.h"
#include "core/ems_similarity.h"
#include "prob/em_engine.h"
#include "text/label_similarity.h"
#include "util/status.h"

namespace ems {

class CachedLabelSimilarity;
class DependencyGraphBuilder;

/// Objective the greedy search maximizes per step.
enum class CompositeObjective {
  /// avg(S(W1, W2)) over all node pairs — the literal Problem-1
  /// objective. On logs whose graphs differ from the paper's running
  /// example this proved insensitive to true merges (see DESIGN.md), so
  /// it is retained for fidelity and ablation rather than production.
  kAveragePairs,

  /// Quality mass of the best 1:1 correspondence: the Hungarian
  /// assignment's matched similarities, counting only pairs at least
  /// `objective_threshold`, normalized by min(|V1|, |V2|) of the ORIGINAL
  /// singleton vocabularies. Shedding a junk match is free; destroying a
  /// genuine match (over-merging) loses counted mass; a true merge
  /// consolidates two so-so matches into one strong one. Default.
  kMatchedTotal,
};

/// Options for greedy composite matching.
struct CompositeOptions {
  /// Minimum average-similarity improvement to accept a merge (the
  /// delta of Algorithm 2; Figure 13 sweeps it).
  double delta = 0.005;

  CompositeObjective objective = CompositeObjective::kMatchedTotal;

  /// Matched pairs below this similarity do not count toward the
  /// kMatchedTotal objective (junk-match mass must not reward keeping
  /// events unmerged).
  double objective_threshold = 0.3;

  /// Enable Proposition-4 pruning (unchanged similarities).
  bool prune_unchanged = true;

  /// Enable upper-bound pruning (Section 4.3).
  bool prune_bounds = true;

  /// Candidate discovery parameters (applied to both logs).
  CandidateOptions candidates;

  /// EMS parameters for the similarity computations.
  EmsOptions ems;

  /// Graph construction parameters (minimum edge frequency etc.); the
  /// artificial event is always added regardless.
  DependencyGraphOptions graph;

  /// Evaluate candidates with the estimated similarity (EMS+es) instead
  /// of exact iteration — the composite analogue of Figure 10/11's
  /// EMS+es rows. Disables the Uc/Bd prunings (which steer the exact
  /// iteration) in favor of the estimation's own cost model.
  bool use_estimation = false;
  int estimation_iterations = 5;

  /// Hard cap on greedy steps (paper's loop is unbounded; candidates are
  /// finite so this is a safety net).
  int max_steps = 64;

  /// Build candidate graphs from a one-time per-log direct-follows
  /// summary (DependencyGraphBuilder) instead of re-scanning every trace
  /// per candidate. Bit-identical to the trace-scan path, which remains
  /// available as the equivalence reference when this is false.
  bool incremental_graphs = true;

  /// Memoize label similarities across candidate evaluations (only the
  /// merged node's label is new per greedy step). Bit-identical scores;
  /// hit/miss counts surface as text.label_cache_hits/_misses.
  bool cache_labels = true;

  /// Workers for evaluating one greedy step's candidates concurrently:
  /// 1 = serial (default), 0 = hardware concurrency. Winner selection is
  /// bit-identical to the serial loop at any count (see
  /// docs/CONCURRENCY.md). Inner EMS runs go serial inside parallel
  /// tasks, so total parallelism stays bounded by this count.
  int num_threads = 1;

  /// Borrowed shared pool for candidate evaluation; overrides
  /// num_threads when set. Null (default) creates a private pool when
  /// num_threads asks for one.
  exec::ThreadPool* pool = nullptr;

  /// Observability sink (spans + counters); null (default) disables
  /// instrumentation. Borrowed, not owned. The nested `ems` options
  /// carry their own pointer; CompositeMatcher propagates this one into
  /// them so one assignment instruments the whole search.
  ObsContext* obs = nullptr;

  /// Posterior-guided candidate ranking (src/prob/): when
  /// `prob.enabled`, each greedy step runs the EM engine over the
  /// current combined similarity and evaluates candidates in descending
  /// posterior-overlap order (members agreeing on the same partner
  /// first) instead of discovery order. Promising candidates then raise
  /// the serial Bd incumbent earlier, and posterior-consistent merges
  /// win ties. An opt-in mode: candidate order can change which of
  /// several exactly-tied candidates merges, so it is NOT bit-identical
  /// to the default order (off by default, which is).
  prob::EmOptions prob;
};

/// Counters describing one composite matching run (Figure 12 reports
/// formula evaluations and time across pruning configurations).
///
/// Reset semantics: CompositeMatcher::Match zeroes its stats at entry, so
/// `CompositeMatchResult::stats` describes that run only. Aggregate
/// across runs with Add; plain assignment overwrites earlier runs.
struct CompositeStats {
  /// Formula-(1) evaluations across every inner EMS run of the search
  /// (kept alongside `ems.formula_evaluations` for Figure 12's series).
  uint64_t formula_evaluations = 0;

  int candidates_evaluated = 0;
  /// Of those, how many were evaluated by a parallel greedy step (the
  /// same candidates a serial run would evaluate; prune counts may
  /// differ — see docs/CONCURRENCY.md).
  int candidates_evaluated_parallel = 0;
  int candidates_pruned_by_bound = 0;  // aborted via Bd
  int merges_accepted = 0;
  uint64_t rows_frozen = 0;  // row-freeze events via Uc

  /// Greedy steps whose candidate order came from the EM posterior
  /// (CompositeOptions::prob.enabled and a non-empty posterior).
  int prob_ranked_steps = 0;

  /// Inner EMS/estimation runs folded in via AddEmsRun.
  uint64_t ems_runs = 0;

  /// All inner EMS runs accumulated (iterations sum over candidate
  /// evaluations; this is where EMS counters live when composite
  /// matching ran — MatchResult::ems_stats stays zero in that mode).
  EmsStats ems;

  /// Folds one inner EMS/estimation run into the aggregate.
  void AddEmsRun(const EmsStats& run) {
    ems.Add(run);
    formula_evaluations += run.formula_evaluations;
    ++ems_runs;
  }

  void Add(const CompositeStats& other) {
    formula_evaluations += other.formula_evaluations;
    candidates_evaluated += other.candidates_evaluated;
    candidates_evaluated_parallel += other.candidates_evaluated_parallel;
    candidates_pruned_by_bound += other.candidates_pruned_by_bound;
    merges_accepted += other.merges_accepted;
    rows_frozen += other.rows_frozen;
    prob_ranked_steps += other.prob_ranked_steps;
    ems_runs += other.ems_runs;
    ems.Add(other.ems);
  }
};

/// Result of composite matching between two logs.
struct CompositeMatchResult {
  /// Accepted non-overlapping composites per side (original EventIds).
  std::vector<std::vector<EventId>> composites1;
  std::vector<std::vector<EventId>> composites2;

  /// Final dependency graphs (with composites merged).
  DependencyGraph graph1;
  DependencyGraph graph2;

  /// Final combined (forward+backward averaged) similarity matrix over
  /// the final graphs' nodes.
  SimilarityMatrix similarity;

  /// Final objective value (avg(S(W1, W2)) over real node pairs for
  /// kAveragePairs; normalized matched total for kMatchedTotal).
  double average_similarity = 0.0;

  CompositeStats stats;
};

/// \brief Greedy composite matcher (Algorithm 2).
class CompositeMatcher {
 public:
  /// `label_measure` may be null for structural-only matching.
  CompositeMatcher(const EventLog& log1, const EventLog& log2,
                   const CompositeOptions& options,
                   const LabelSimilarity* label_measure = nullptr);
  ~CompositeMatcher();

  /// Runs the greedy loop to a fixed point and returns the result.
  Result<CompositeMatchResult> Match();

  /// Supplies explicit candidate sets instead of discovering them
  /// (used by tests and by Figure 14's candidate-size sweep).
  void SetCandidates(std::vector<CompositeCandidate> candidates1,
                     std::vector<CompositeCandidate> candidates2);

 private:
  struct GraphState {
    DependencyGraph g1;
    DependencyGraph g2;
    SimilarityMatrix forward;
    SimilarityMatrix backward;
    double average = 0.0;
  };

  // Collapsed graph of one side's log under accepted composites `w`:
  // aggregated from the per-log summary when incremental_graphs is on,
  // the reference trace scan otherwise (bit-identical either way).
  Result<DependencyGraph> BuildGraph(
      int side, const std::vector<std::vector<EventId>>& w,
      const DependencyGraphOptions& graph_opts) const;

  // Builds graphs for the given accepted composite sets and computes both
  // directional matrices from scratch (or with Uc row reuse against
  // `previous` when merging `merged_on_side1`/`new_composite`). Const and
  // data-race-free against concurrent calls: all counters go to `stats`,
  // spans to `obs` (null inside parallel tasks — one TraceRecorder cannot
  // interleave concurrent spans), and `serial_ems` pins the inner EMS to
  // one thread so a parallel step never oversubscribes the machine.
  Result<GraphState> Evaluate(
      const std::vector<std::vector<EventId>>& w1,
      const std::vector<std::vector<EventId>>& w2, const GraphState* previous,
      bool merged_on_side1, const std::vector<EventId>* new_composite,
      double incumbent_average, bool* pruned_out, CompositeStats* stats,
      ObsContext* obs, bool serial_ems) const;

  const EventLog& log1_;
  const EventLog& log2_;
  CompositeOptions options_;
  const LabelSimilarity* label_measure_;
  std::vector<CompositeCandidate> candidates1_;
  std::vector<CompositeCandidate> candidates2_;
  bool explicit_candidates_ = false;
  CompositeStats stats_;

  // Iteration-invariant state hoisted out of the candidate loop.
  std::unique_ptr<DependencyGraphBuilder> builder1_;
  std::unique_ptr<DependencyGraphBuilder> builder2_;
  std::unique_ptr<CachedLabelSimilarity> cached_labels_;
  size_t denom_ = 0;  // min(|V1|, |V2|) of the original vocabularies
};

/// Exact optimal composite matching by exhaustive enumeration of disjoint
/// candidate subfamilies on both sides (Problem 1). Exponential; returns
/// ResourceExhausted when the number of combinations exceeds
/// `max_combinations`. Small-instance ground truth for tests/benches.
Result<CompositeMatchResult> ExactCompositeMatch(
    const EventLog& log1, const EventLog& log2,
    const std::vector<CompositeCandidate>& candidates1,
    const std::vector<CompositeCandidate>& candidates2,
    const CompositeOptions& options,
    const LabelSimilarity* label_measure = nullptr,
    uint64_t max_combinations = 1u << 20);

}  // namespace ems
