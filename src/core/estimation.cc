#include "core/estimation.h"

#include <algorithm>
#include <cmath>

#include "core/bounds.h"
#include "obs/context.h"

namespace ems {

EstimatedEmsSimilarity::EstimatedEmsSimilarity(
    const DependencyGraph& g1, const DependencyGraph& g2,
    const EstimationOptions& options,
    const std::vector<std::vector<double>>* label_similarity)
    : g1_(g1), g2_(g2), options_(options), label_(label_similarity) {
  EMS_DCHECK(options.exact_iterations >= 0);
}

double EstimatedEmsSimilarity::Extrapolate(Direction direction, NodeId v1,
                                           NodeId v2, double exact_at_i,
                                           int horizon) const {
  const bool forward = direction == Direction::kForward;
  const double alpha = options_.ems.alpha;
  const double c = options_.ems.c;

  const size_t A = forward ? g1_.Predecessors(v1).size()
                           : g1_.Successors(v1).size();
  const size_t B = forward ? g2_.Predecessors(v2).size()
                           : g2_.Successors(v2).size();
  if (A == 0 || B == 0) return exact_at_i;  // isolated: nothing propagates

  // C(v1^X, v1, v2^X, v2): the artificial-edge coefficient, the one term
  // the derivation keeps exact. Artificial edge frequencies equal node
  // frequencies (Section 2).
  const double f1 = g1_.NodeFrequency(v1);
  const double f2 = g2_.NodeFrequency(v2);
  double cx = 0.0;
  if (f1 + f2 > 0.0) {
    cx = c * (1.0 - std::fabs(f1 - f2) / (f1 + f2));
  }

  const double ab2 = 2.0 * static_cast<double>(A) * static_cast<double>(B);
  const double q =
      alpha * c * (ab2 - static_cast<double>(A) - static_cast<double>(B)) /
      ab2;
  const double label =
      label_ == nullptr
          ? 0.0
          : (*label_)[static_cast<size_t>(v1)][static_cast<size_t>(v2)];
  const double a =
      alpha * (static_cast<double>(A) + static_cast<double>(B)) / ab2 * cx +
      (1.0 - alpha) * label;

  const int I = options_.exact_iterations;
  if (horizon == kInfiniteDistance) {
    // The paper extrapolates to n = infinity, where the exact prefix
    // S^I vanishes from formula (2) entirely. We instead cap n at the
    // iteration where the remaining increments drop below epsilon
    // ((alpha c)^n < epsilon, Lemma 5), so the I exact iterations keep
    // improving cyclic pairs too — the trade-off Figure 5 relies on.
    const double r = alpha * c;
    int effective = options_.ems.max_iterations;
    if (r > 0.0 && r < 1.0 && options_.ems.epsilon > 0.0) {
      effective = static_cast<int>(
          std::ceil(std::log(options_.ems.epsilon) / std::log(r)));
      effective = std::clamp(effective, 1, options_.ems.max_iterations);
    }
    if (I >= effective) return exact_at_i;
    horizon = effective;
  }
  const double steps = static_cast<double>(horizon - I);
  const double qpow = std::pow(q, steps);
  if (q >= 1.0) return exact_at_i;  // cannot happen with alpha*c < 1; guard
  double estimate = qpow * exact_at_i + a * (1.0 - qpow) / (1.0 - q);
  // Clamp into the provable envelope: the true similarity is monotone
  // non-decreasing (Theorem 1), so S^I is a lower bound; and it cannot
  // exceed S^I plus the geometric increment tail (Proposition 6 /
  // Corollary 7). Within the envelope the crude extrapolation supplies
  // the shape; at its edges the exact theory takes over, so the estimate
  // converges to the exact value as I grows.
  double upper = HorizonUpperBound(exact_at_i, I, horizon, alpha, c);
  return std::clamp(estimate, exact_at_i, std::max(exact_at_i, upper));
}

SimilarityMatrix EstimatedEmsSimilarity::ComputeDirection(
    Direction direction) {
  // Phase 1 (Algorithm 1, lines 2-5): I exact iterations with
  // early-convergence pruning.
  EmsSimilarity exact(g1_, g2_, options_.ems, label_);
  SimilarityMatrix s = exact.ComputePartial(direction,
                                            options_.exact_iterations);
  stats_.Add(exact.stats());

  // Phase 2 (lines 6-8): extrapolate pairs whose horizon exceeds I.
  ScopedSpan span(options_.ems.obs, "ems_extrapolate");
  Counter* extrapolated =
      options_.ems.obs != nullptr
          ? options_.ems.obs->metrics.GetCounter("ems.pairs_extrapolated")
          : nullptr;
  const int I = options_.exact_iterations;
  for (NodeId v1 = 0; v1 < static_cast<NodeId>(g1_.NumNodes()); ++v1) {
    if (g1_.IsArtificial(v1)) continue;
    for (NodeId v2 = 0; v2 < static_cast<NodeId>(g2_.NumNodes()); ++v2) {
      if (g2_.IsArtificial(v2)) continue;
      int h = exact.ConvergenceHorizon(direction, v1, v2);
      if (I >= h) continue;  // already exact (Proposition 2)
      double est = Extrapolate(direction, v1, v2, s.at(v1, v2), h);
      s.set(v1, v2, std::clamp(est, 0.0, 1.0));
      if (extrapolated != nullptr) extrapolated->Increment();
    }
  }
  return s;
}

SimilarityMatrix EstimatedEmsSimilarity::Compute() {
  ScopedSpan span(options_.ems.obs, "ems_estimation");
  stats_ = EmsStats{};
  if (options_.ems.direction != Direction::kBoth) {
    return ComputeDirection(options_.ems.direction);
  }
  SimilarityMatrix forward = ComputeDirection(Direction::kForward);
  SimilarityMatrix backward = ComputeDirection(Direction::kBackward);
  SimilarityMatrix combined(g1_.NumNodes(), g2_.NumNodes(), 0.0);
  for (NodeId v1 = 0; v1 < static_cast<NodeId>(g1_.NumNodes()); ++v1) {
    for (NodeId v2 = 0; v2 < static_cast<NodeId>(g2_.NumNodes()); ++v2) {
      combined.set(v1, v2, (forward.at(v1, v2) + backward.at(v1, v2)) / 2.0);
    }
  }
  return combined;
}

}  // namespace ems
