#include "core/composite_candidates.h"

#include <algorithm>
#include <map>

#include "log/log_stats.h"

namespace ems {

std::vector<CompositeCandidate> DiscoverCandidates(
    const EventLog& log, const CandidateOptions& options) {
  LogStats stats(log);
  const size_t n = log.NumEvents();

  // SEQ pairs: b is a's unique, near-certain immediate successor and vice
  // versa. Confidence = min of the two conditional frequencies.
  struct Pair {
    EventId a, b;
    double confidence;
  };
  std::vector<Pair> pairs;
  std::vector<int> next_of(n, kInvalidEvent);  // chain pointers
  std::vector<int> prev_of(n, kInvalidEvent);
  for (const auto& [key, _] : stats.follows_trace_counts()) {
    auto [a, b] = key;
    if (a == b) continue;
    size_t ab = stats.FollowsOccurrences(a, b);
    if (ab < static_cast<size_t>(options.min_support)) continue;
    double fwd = static_cast<double>(ab) /
                 static_cast<double>(stats.EventOccurrences(a));
    double bwd = static_cast<double>(ab) /
                 static_cast<double>(stats.EventOccurrences(b));
    double conf = std::min(fwd, bwd);
    if (conf < options.min_confidence) continue;
    pairs.push_back(Pair{a, b, conf});
  }

  // An event may qualify in several pairs when min_confidence < 1; keep
  // the strongest chain pointer per endpoint for chaining, but keep every
  // qualifying pair as its own candidate.
  std::vector<double> next_conf(n, -1.0), prev_conf(n, -1.0);
  for (const Pair& p : pairs) {
    if (p.confidence > next_conf[static_cast<size_t>(p.a)]) {
      next_conf[static_cast<size_t>(p.a)] = p.confidence;
      next_of[static_cast<size_t>(p.a)] = p.b;
    }
    if (p.confidence > prev_conf[static_cast<size_t>(p.b)]) {
      prev_conf[static_cast<size_t>(p.b)] = p.confidence;
      prev_of[static_cast<size_t>(p.b)] = p.a;
    }
  }

  std::vector<CompositeCandidate> out;
  for (const Pair& p : pairs) {
    out.push_back(CompositeCandidate{{p.a, p.b}, p.confidence});
  }

  // Chain extension: follow mutually-consistent strongest pointers.
  for (const Pair& p : pairs) {
    if (options.max_size < 3) break;
    std::vector<EventId> chain = {p.a, p.b};
    double conf = p.confidence;
    EventId tail = p.b;
    while (static_cast<int>(chain.size()) < options.max_size) {
      int nxt = next_of[static_cast<size_t>(tail)];
      if (nxt == kInvalidEvent || prev_of[static_cast<size_t>(nxt)] != tail) {
        break;
      }
      if (std::find(chain.begin(), chain.end(), static_cast<EventId>(nxt)) !=
          chain.end()) {
        break;  // avoid cycles
      }
      chain.push_back(static_cast<EventId>(nxt));
      conf = std::min(conf, next_conf[static_cast<size_t>(tail)]);
      tail = static_cast<EventId>(nxt);
      out.push_back(CompositeCandidate{chain, conf});
    }
  }

  // De-duplicate and order: highest confidence, then smaller, then lexic.
  std::sort(out.begin(), out.end(), [](const CompositeCandidate& x,
                                       const CompositeCandidate& y) {
    if (x.confidence != y.confidence) return x.confidence > y.confidence;
    if (x.events.size() != y.events.size()) {
      return x.events.size() < y.events.size();
    }
    return x.events < y.events;
  });
  out.erase(std::unique(out.begin(), out.end()), out.end());

  if (options.max_candidates > 0 &&
      out.size() > static_cast<size_t>(options.max_candidates)) {
    out.resize(static_cast<size_t>(options.max_candidates));
  }
  return out;
}

}  // namespace ems
