// Applying a matching: translate one log into the other's vocabulary and
// quantify how well the two processes agree once events are unified —
// the downstream analyses the paper motivates (comparing processes across
// subsidiaries, finding common parts, building warehouse views).
#pragma once

#include <map>
#include <string>
#include <vector>

#include "core/matcher.h"
#include "log/event_log.h"

namespace ems {

/// Translation table derived from correspondences: each left-side event
/// maps to the display name of its correspondence's right side (composite
/// members all map to the joined composite name). Unmatched events keep
/// their own names.
std::map<std::string, std::string> TranslationTable(
    const std::vector<Correspondence>& correspondences);

/// Rewrites `log` through the table: every event occurrence is renamed to
/// its mapped name; consecutive occurrences that map to the same
/// composite name collapse into one (so an m:1 correspondence yields the
/// same granularity on both sides).
EventLog TranslateLog(const EventLog& log,
                      const std::map<std::string, std::string>& table);

/// Cross-log agreement of two logs over a shared vocabulary.
struct ConformanceReport {
  /// Jaccard overlap of the vocabularies.
  double vocabulary_overlap = 0.0;

  /// Jaccard overlap of the direct-follows relations (edges present in
  /// either log's dependency graph).
  double relation_overlap = 0.0;

  /// Mean, over log-1 trace variants weighted by frequency, of the best
  /// normalized edit similarity to any log-2 variant. 1 = every behavior
  /// of log 1 also occurs in log 2.
  double trace_coverage_1in2 = 0.0;

  /// Symmetric counterpart.
  double trace_coverage_2in1 = 0.0;

  /// Harmonic mean of the two coverages.
  double f_conformance = 0.0;
};

/// Computes the report. Meaningful when both logs use the same
/// vocabulary — typically log 1 and TranslateLog(log 2) after matching.
ConformanceReport CrossLogConformance(const EventLog& log1,
                                      const EventLog& log2);

/// Convenience: match two heterogeneous logs, translate log 2 into
/// log 1's vocabulary, and report conformance.
Result<ConformanceReport> MatchAndCompare(const EventLog& log1,
                                          const EventLog& log2,
                                          const MatchOptions& options = {});

}  // namespace ems
