// The paper's primary contribution: the iterative event matching
// similarity (EMS) of Definition 2 / formula (1), its forward and backward
// variants (Section 3.6), and the early-convergence pruning of
// Proposition 2. Convergence is guaranteed by Theorem 1 (monotone and
// bounded; unique fixed point when alpha * c < 1).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "core/similarity_matrix.h"
#include "graph/dependency_graph.h"
#include "util/status.h"

namespace ems {

struct ObsContext;

namespace exec {
class ThreadPool;
}  // namespace exec

/// Which neighbor direction the propagation follows.
enum class Direction {
  kForward,   // predecessors (in-neighbors), Definition 2
  kBackward,  // successors (out-neighbors), Section 3.6
  kBoth,      // average of the two (the production configuration)
};

/// Which iteration kernel evaluates formula (1). Both produce
/// bit-identical matrices (pinned by tests/core/ems_kernel_test.cc);
/// the naive kernel is retained as the equivalence reference and as the
/// baseline the fixpoint benchmark measures speedups against.
enum class EmsKernel {
  /// CSR adjacency scans, precomputed edge-coefficient tables, a fused
  /// forward/transposed pass, and delta-driven recomputation
  /// (docs/PERFORMANCE.md).
  kOptimized,
  /// The straightforward per-pair OneSide evaluation of the seed
  /// implementation: recomputes every coefficient and every non-pruned
  /// pair each iteration.
  kNaive,
};

/// Parameters of the EMS similarity.
struct EmsOptions {
  /// Weight of the structural component vs the label component
  /// (Definition 2). alpha = 1 is the opaque-name scenario.
  double alpha = 1.0;

  /// Decay constant c of the edge-similarity coefficient C, 0 < c < 1.
  double c = 0.8;

  /// Iteration stops when no pair moved by more than epsilon.
  double epsilon = 1e-4;

  /// Hard cap on iterations (relevant for cyclic graphs; convergence is
  /// geometric with ratio alpha * c, so the default is ample).
  int max_iterations = 100;

  /// Early-convergence pruning (Proposition 2): pairs whose
  /// min(l(v1), l(v2)) has been reached are not recomputed.
  bool prune_converged = true;

  Direction direction = Direction::kBoth;

  /// Worker threads per iteration. Each iteration reads only the previous
  /// matrix, so rows partition cleanly; useful from ~50 events upward.
  /// 1 = single-threaded (default); 0 = hardware concurrency. Results are
  /// bit-identical for every thread count (disjoint row writes, and the
  /// per-chunk reductions are order-independent).
  int num_threads = 1;

  /// Execution pool to run iterations on (borrowed, not owned). When
  /// null and num_threads != 1, the similarity lazily creates a private
  /// pool reused across all its iterations. When the computation itself
  /// runs on one of this pool's workers (nested parallelism), iterations
  /// degrade to serial instead of deadlocking on the bounded queue.
  exec::ThreadPool* pool = nullptr;

  /// Observability sink (spans + counters); null (default) disables
  /// instrumentation with near-zero overhead. Borrowed, not owned.
  ObsContext* obs = nullptr;

  /// Iteration kernel; kNaive is the retained reference implementation.
  EmsKernel kernel = EmsKernel::kOptimized;

  /// Delta-driven recomputation (optimized kernel only): a pair whose
  /// forward and backward input neighborhoods saw no change in the
  /// previous iteration is copied instead of re-evaluated — the
  /// recomputation would be bit-identical, so results are unchanged.
  /// Skips are counted in EmsStats::pairs_skipped_unchanged.
  bool skip_unchanged = true;

  /// Memory cap, in bytes per direction, for the precomputed
  /// edge-coefficient tables of the optimized kernel. A direction needs
  /// 8 * E1_real * E2_real bytes (E = neighbor-list entries over real
  /// nodes); beyond the cap the kernel falls back to computing
  /// coefficients on the fly (still CSR + fused + delta-skipping).
  /// 0 disables the tables outright.
  size_t coeff_table_max_bytes = 64ull << 20;

  /// Warm-start seed (borrowed, not owned); null = cold start from S^0.
  /// See EmsSeed for the soundness contract.
  const struct EmsSeed* seed = nullptr;

  /// Floor the iteration count at the largest finite convergence horizon
  /// of the direction (max over both graphs of the finite longest
  /// distances). With this set, every finite-horizon pair is recomputed
  /// at least through its horizon, so the returned values of those pairs
  /// are the exact fixpoint bits REGARDLESS of the starting matrix — a
  /// warm-started run and a cold run return byte-identical matrices on
  /// acyclic instances. Costs nothing on cold runs (the epsilon stop
  /// rarely fires before the horizon).
  bool run_to_horizon = false;

  /// Keep a copy of each direction's converged matrix (retrievable via
  /// captured_forward()/captured_backward() after Compute) — the raw
  /// material of the next warm-start seed. Off by default: it doubles
  /// the matrix footprint of a kBoth run.
  bool capture_direction_matrices = false;
};

/// Warm-start seed for EmsSimilarity: per-direction starting matrices
/// (typically the previous run's fixpoints) plus optional change hints.
///
/// Soundness: ANY seed matrix yields the correct fixpoint. Pairs with a
/// finite convergence horizon h recompute their exact value at iteration
/// h from inputs that are themselves exact (the Proposition 2 induction
/// never reads S^0 at or beyond the horizon), and infinite-horizon pairs
/// contract geometrically (Theorem 1) from the nearer starting point —
/// that contraction is where warm starts save iterations under the
/// epsilon stop. The artificial row/column boundary of S^0 is always
/// re-asserted over the seed.
///
/// Hints: a CLEAR bit in changed_rows[v] (changed_cols[v]) asserts that
/// row v (column v) of the seed is carried over from a fixpoint computed
/// on graphs whose frequencies and similarities relevant to that node
/// are unchanged — iteration 1 may then copy pairs whose input
/// neighborhoods are entirely clean instead of re-evaluating them. Null
/// hints mean "everything changed" (always sound; the right call after a
/// real append, where the trace-count denominator moves every
/// frequency). All-clean hints are the identical-state resume: one
/// iteration, byte-identical return of the seed. Indices beyond a hint's
/// length (new nodes) are treated as changed.
struct EmsSeed {
  /// Starting matrices per direction (borrowed). Null — or smaller than
  /// the current graphs, in which case the overlap is used — falls back
  /// to S^0 entries. A matrix with zero rows is treated as absent.
  const SimilarityMatrix* forward = nullptr;
  const SimilarityMatrix* backward = nullptr;

  const std::vector<uint8_t>* changed_rows = nullptr;
  const std::vector<uint8_t>* changed_cols = nullptr;
};

/// Counters describing one similarity computation (Figures 6 and 12
/// report these).
///
/// Reset semantics: every Compute/ComputePartial/ComputeControlled call
/// starts from a zeroed EmsStats, so `stats()` always describes the LAST
/// run only. Callers aggregating across runs (repeated Match calls, the
/// estimation's per-direction runs, composite candidate evaluations) must
/// accumulate with Add — assignment silently discards previous runs.
struct EmsStats {
  /// Iterations of the outer loop actually performed (max over directions).
  int iterations = 0;

  /// Total evaluations of formula (1), i.e. per-pair updates summed over
  /// iterations and directions. Pruned pairs do not count.
  uint64_t formula_evaluations = 0;

  /// Pair updates skipped by early-convergence pruning (Proposition 2),
  /// summed over iterations and directions.
  uint64_t pairs_pruned_converged = 0;

  /// Pair updates skipped by delta-driven recomputation (the pair's
  /// input neighborhoods were unchanged), summed over iterations and
  /// directions. Always 0 for the naive kernel or skip_unchanged=false.
  uint64_t pairs_skipped_unchanged = 0;

  void Add(const EmsStats& other) {
    iterations += other.iterations;
    formula_evaluations += other.formula_evaluations;
    pairs_pruned_converged += other.pairs_pruned_converged;
    pairs_skipped_unchanged += other.pairs_skipped_unchanged;
  }
};

/// Hooks that let callers steer one directional run; used by the
/// composite matcher's pruning strategies (Sections 4.2 and 4.3).
struct RunControls {
  /// Rows of graph 1 whose similarities are already known to be final
  /// (Proposition 4, pruning "Uc"). Frozen rows are initialized from
  /// `frozen_values` and never recomputed. Mixing frozen converged values
  /// with iterating rows preserves convergence to the true fixed point:
  /// the map stays monotone and the frozen values are exactly the fixed
  /// point's restriction.
  const std::vector<bool>* frozen_rows = nullptr;

  /// Columns of graph 2 with final similarities (used when the merge
  /// happened on side 2 and graph 1 is unchanged). A pair is frozen when
  /// its row or column is frozen.
  const std::vector<bool>* frozen_cols = nullptr;

  const SimilarityMatrix* frozen_values = nullptr;

  /// Called after each iteration with (iteration k, current matrix);
  /// returning true aborts the run (pruning "Bd": the caller has
  /// concluded from an upper bound that this candidate cannot win).
  std::function<bool(int, const SimilarityMatrix&)> should_abort;

  /// Set to true when should_abort fired.
  bool* aborted = nullptr;
};

/// \brief Computes EMS similarities between the nodes of two graphs.
///
/// Both graphs must carry the artificial event v^X (node 0); EMS is
/// defined on the extended dependency graph. `label_similarity`, if
/// provided, must be a NumNodes(g1) x NumNodes(g2) matrix (S^L of
/// Definition 2); omitted means S^L == 0 (structural-only).
class EmsSimilarity {
 public:
  EmsSimilarity(const DependencyGraph& g1, const DependencyGraph& g2,
                const EmsOptions& options,
                const std::vector<std::vector<double>>* label_similarity =
                    nullptr);
  ~EmsSimilarity();  // out-of-line: owned_pool_ is incomplete here

  /// Runs the iteration to convergence and returns the final combined
  /// similarity matrix (average of forward and backward for kBoth).
  SimilarityMatrix Compute();

  /// Runs `iterations` exact iterations of a single direction and returns
  /// the intermediate matrix S^n — the building block for estimation
  /// (Algorithm 1) and for the upper-bound computations.
  SimilarityMatrix ComputePartial(Direction direction, int iterations);

  /// Runs one direction to convergence under external controls (frozen
  /// rows, abort callback). Used by the composite matcher.
  SimilarityMatrix ComputeControlled(Direction direction,
                                     const RunControls& controls);

  /// Counters of the last Compute/ComputePartial call.
  const EmsStats& stats() const { return stats_; }

  /// Per-direction converged matrices of the last Compute call; null
  /// unless options.capture_direction_matrices was set (and, for a
  /// single-direction run, for the direction that ran).
  const SimilarityMatrix* captured_forward() const {
    return captured_forward_ ? &*captured_forward_ : nullptr;
  }
  const SimilarityMatrix* captured_backward() const {
    return captured_backward_ ? &*captured_backward_ : nullptr;
  }

  /// The per-pair convergence horizon h = min(l(v1), l(v2)) for the given
  /// direction (kInfiniteDistance when a cycle prevents early
  /// convergence). Requires artificial events on both graphs.
  int ConvergenceHorizon(Direction direction, NodeId v1, NodeId v2) const;

  /// C(v1, v1', v2, v2') of Definition 2 for the forward direction, where
  /// `fa` and `fb` are the frequencies of the two edges being compared.
  double EdgeCoefficient(double fa, double fb) const;

  /// Bytes held by the precomputed coefficient tables across the
  /// directions built so far; 0 for the naive kernel, when the cap
  /// forced the on-the-fly fallback, or before the first run.
  size_t coefficient_table_bytes() const;

  const EmsOptions& options() const { return options_; }

 private:
  struct DirectionTables;  // CSR adjacency + coefficient blocks (.cc)
  struct DeltaState;       // changed/dirty bitmaps of one run (.cc)

  // Lazily builds (once) and returns the optimized kernel's tables for
  // one direction.
  const DirectionTables& TablesFor(Direction direction);

  // One full pass of formula (1) for `direction`, reading `prev` and
  // writing `next`. `iteration` is 1-based; returns the max delta.
  // Pairs in frozen rows/columns (may be null) are copied, not recomputed.
  // `delta` (null for the naive kernel) carries the changed-entry bitmaps
  // driving skip_unchanged and is updated with this iteration's changes.
  double Iterate(Direction direction, int iteration,
                 const SimilarityMatrix& prev, SimilarityMatrix* next,
                 const std::vector<bool>* frozen_rows,
                 const std::vector<bool>* frozen_cols,
                 DeltaState* delta);

  // One-side similarity s(v1, v2) (or s(v2, v1) when `transposed`).
  double OneSide(Direction direction, const SimilarityMatrix& prev, NodeId v1,
                 NodeId v2, bool transposed) const;

  SimilarityMatrix InitialMatrix() const;
  SimilarityMatrix RunDirection(Direction direction, int max_iterations,
                                int* iterations_done,
                                const RunControls* controls = nullptr);

  // Mirrors the accumulated stats_ into the obs counters (no-op when
  // options_.obs is null).
  void FlushStatsToObs() const;

  double LabelAt(NodeId v1, NodeId v2) const;

  // The pool Iterate runs on: options_.pool, else a lazily-created owned
  // pool (kept across iterations so threads spawn once per computation).
  exec::ThreadPool* IteratePool(int threads);

  const DependencyGraph& g1_;
  const DependencyGraph& g2_;
  EmsOptions options_;
  // Label matrix flattened once at construction to a row-major buffer
  // (empty when no labels): LabelAt is on the innermost pair loop, and
  // chasing a vector<vector> there costs a double indirection per read.
  std::vector<double> label_flat_;
  bool has_labels_ = false;
  EmsStats stats_;
  std::optional<SimilarityMatrix> captured_forward_;
  std::optional<SimilarityMatrix> captured_backward_;
  std::unique_ptr<exec::ThreadPool> owned_pool_;
  std::unique_ptr<DirectionTables> forward_tables_;
  std::unique_ptr<DirectionTables> backward_tables_;
  // Per-iteration scratch of the optimized kernel: S^{n-1} gathered once
  // per row into g2 neighbor-slot order, so the innermost scan reads both
  // its operands contiguously instead of gathering per cell. Reused
  // across iterations and directions.
  std::vector<double> panel_;
};

/// Convenience wrapper: computes the EMS similarity matrix between two
/// event logs end-to-end (builds graphs with artificial events).
SimilarityMatrix ComputeEmsSimilarity(const EventLog& log1,
                                      const EventLog& log2,
                                      const EmsOptions& options = {},
                                      EmsStats* stats = nullptr);

}  // namespace ems
