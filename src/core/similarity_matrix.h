// Dense pair-wise similarity matrix between the nodes of two dependency
// graphs. Row/column 0 are the artificial events when present.
#pragma once

#include <string>
#include <vector>

#include "graph/dependency_graph.h"

namespace ems {

/// \brief Dense n1 x n2 matrix of similarities in [0, 1].
class SimilarityMatrix {
 public:
  SimilarityMatrix() = default;
  SimilarityMatrix(size_t rows, size_t cols, double init = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, init) {}

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }

  double at(NodeId r, NodeId c) const {
    EMS_DCHECK(InRange(r, c));
    return data_[static_cast<size_t>(r) * cols_ + static_cast<size_t>(c)];
  }
  void set(NodeId r, NodeId c, double v) {
    EMS_DCHECK(InRange(r, c));
    data_[static_cast<size_t>(r) * cols_ + static_cast<size_t>(c)] = v;
  }

  /// Largest absolute entry-wise difference to `other` (same shape).
  double MaxAbsDifference(const SimilarityMatrix& other) const;

  /// Average over a sub-rectangle starting at (row_begin, col_begin) —
  /// used for avg(S(W1, W2)) excluding the artificial row/column.
  double Average(NodeId row_begin, NodeId col_begin) const;

  /// Rows/cols as a plain nested vector restricted to real nodes (drops
  /// index 0 on each axis when the graphs carry artificial events) —
  /// the form the selection strategies consume.
  std::vector<std::vector<double>> RealSubmatrix(bool drop_row0,
                                                 bool drop_col0) const;

  /// Pretty-printed matrix for debugging.
  std::string DebugString(const DependencyGraph& g1,
                          const DependencyGraph& g2) const;

  const std::vector<double>& data() const { return data_; }

  /// Raw row-major storage for kernels that scan/write contiguously
  /// (the optimized EMS iteration and the forward/backward combine).
  double* mutable_data() { return data_.data(); }

 private:
  bool InRange(NodeId r, NodeId c) const {
    return r >= 0 && c >= 0 && static_cast<size_t>(r) < rows_ &&
           static_cast<size_t>(c) < cols_;
  }

  size_t rows_ = 0;
  size_t cols_ = 0;
  std::vector<double> data_;
};

}  // namespace ems
