// Empirical analysis of the estimation error — the paper's stated open
// question ("thus far, we do not get any theoretical bound of estimation.
// It is interesting to investigate the bound of estimation as a future
// study", Section 7). This module measures the gap between EMS+es and
// exact EMS per pair, reporting the distribution a theoretical bound
// would have to dominate.
#pragma once

#include <vector>

#include "core/estimation.h"

namespace ems {

/// Error statistics of one estimation run against the exact similarity.
struct EstimationErrorReport {
  int exact_iterations = 0;  // the I used
  double max_abs_error = 0.0;
  double mean_abs_error = 0.0;
  double rmse = 0.0;

  /// Fraction of pairs whose estimate is below the exact value
  /// (undershoot; the estimate is not one-sided in general).
  double undershoot_fraction = 0.0;

  /// Worst error among pairs with finite convergence horizon (these
  /// should be exact whenever I >= horizon).
  double max_error_finite_horizon = 0.0;

  /// Worst error among pairs with infinite horizon (cyclic ancestry) —
  /// where the geometric extrapolation actually approximates.
  double max_error_infinite_horizon = 0.0;

  size_t pairs = 0;
};

/// Computes exact and estimated similarities on (g1, g2) and reports the
/// error distribution for the given I.
EstimationErrorReport AnalyzeEstimationError(
    const DependencyGraph& g1, const DependencyGraph& g2, int exact_iterations,
    const EmsOptions& ems = {},
    const std::vector<std::vector<double>>* label_similarity = nullptr);

/// Sweeps I over `iterations` and returns one report per value — the
/// empirical error curve of Figure 5's x-axis.
std::vector<EstimationErrorReport> EstimationErrorCurve(
    const DependencyGraph& g1, const DependencyGraph& g2,
    const std::vector<int>& iterations, const EmsOptions& ems = {});

}  // namespace ems
