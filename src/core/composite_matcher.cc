#include "core/composite_matcher.h"

#include <algorithm>
#include <memory>
#include <set>
#include <string>
#include <unordered_map>
#include <utility>

#include "assignment/selection.h"
#include "core/bounds.h"
#include "core/estimation.h"
#include "exec/parallel.h"
#include "exec/thread_pool.h"
#include "graph/dependency_graph_builder.h"
#include "obs/context.h"
#include "text/cached_label_similarity.h"
#include "util/timer.h"

namespace ems {

namespace {

// Hash index from a node's member set (order-insensitive) to its NodeId,
// built once per lookup batch instead of scanning and re-sorting every
// node's members per query.
class MemberIndex {
 public:
  explicit MemberIndex(const DependencyGraph& g) {
    index_.reserve(g.NumNodes());
    for (NodeId v = 0; v < static_cast<NodeId>(g.NumNodes()); ++v) {
      if (g.IsArtificial(v)) continue;
      index_.emplace(Key(g.Members(v)), v);
    }
  }

  // NodeId with exactly the given member set, or -1 if absent.
  NodeId Find(const std::vector<EventId>& members) const {
    auto it = index_.find(Key(members));
    return it == index_.end() ? -1 : it->second;
  }

 private:
  static std::string Key(std::vector<EventId> members) {
    std::sort(members.begin(), members.end());
    return std::string(reinterpret_cast<const char*>(members.data()),
                       members.size() * sizeof(EventId));
  }

  std::unordered_map<std::string, NodeId> index_;
};

std::unordered_map<std::string, NodeId> NameIndex(const DependencyGraph& g) {
  std::unordered_map<std::string, NodeId> idx;
  for (NodeId v = 0; v < static_cast<NodeId>(g.NumNodes()); ++v) {
    if (g.IsArtificial(v)) continue;
    idx.emplace(g.NodeName(v), v);
  }
  return idx;
}

double CombinedAverage(const SimilarityMatrix& fwd,
                       const SimilarityMatrix& bwd) {
  // Averages are linear, so combining first is unnecessary.
  return (fwd.Average(1, 1) + bwd.Average(1, 1)) / 2.0;
}

SimilarityMatrix CombineMatrices(const SimilarityMatrix& fwd,
                                 const SimilarityMatrix& bwd) {
  SimilarityMatrix out(fwd.rows(), fwd.cols(), 0.0);
  for (NodeId r = 0; r < static_cast<NodeId>(fwd.rows()); ++r) {
    for (NodeId c = 0; c < static_cast<NodeId>(fwd.cols()); ++c) {
      out.set(r, c, (fwd.at(r, c) + bwd.at(r, c)) / 2.0);
    }
  }
  return out;
}

// Quality mass of the best 1:1 alignment: the Hungarian total over
// matched pairs with similarity >= `threshold`, divided by `denominator`
// (min of the original singleton vocabulary sizes — fixed across merges
// so the objective is comparable between greedy steps).
double MatchedTotalObjective(const SimilarityMatrix& combined,
                             double threshold, size_t denominator) {
  if (denominator == 0) return 0.0;
  std::vector<std::vector<double>> sub =
      combined.RealSubmatrix(true, true);
  double total = 0.0;
  for (const Match& m : SelectMaxTotalSimilarity(sub)) {
    if (m.similarity >= threshold) total += m.similarity;
  }
  return total / static_cast<double>(denominator);
}

// Upper bound on the matched-total objective given per-pair similarity
// upper bounds supplied by `pair_bound(v1, v2)`: counted matched pairs
// sit in distinct rows and there are at most K = min(real sizes) of
// them, each bounded by its row maximum, so (sum of the K largest row
// maxima) / denominator dominates the objective. The threshold and the
// column constraint only lower the true value. Sound, if loose.
template <typename PairBound>
double MatchedTotalBound(const DependencyGraph& g1, const DependencyGraph& g2,
                         size_t denominator, PairBound pair_bound) {
  if (denominator == 0) return 0.0;
  std::vector<double> row_max;
  for (NodeId v1 = 0; v1 < static_cast<NodeId>(g1.NumNodes()); ++v1) {
    if (g1.IsArtificial(v1)) continue;
    double best = 0.0;
    for (NodeId v2 = 0; v2 < static_cast<NodeId>(g2.NumNodes()); ++v2) {
      if (g2.IsArtificial(v2)) continue;
      best = std::max(best, pair_bound(v1, v2));
    }
    row_max.push_back(best);
  }
  size_t real1 = g1.NumNodes() - (g1.has_artificial() ? 1 : 0);
  size_t real2 = g2.NumNodes() - (g2.has_artificial() ? 1 : 0);
  size_t k = std::min(real1, real2);
  std::sort(row_max.begin(), row_max.end(), std::greater<double>());
  double total = 0.0;
  for (size_t i = 0; i < std::min(k, row_max.size()); ++i) {
    total += row_max[i];
  }
  return total / static_cast<double>(denominator);
}

}  // namespace

CompositeMatcher::CompositeMatcher(const EventLog& log1, const EventLog& log2,
                                   const CompositeOptions& options,
                                   const LabelSimilarity* label_measure)
    : log1_(log1), log2_(log2), options_(options),
      label_measure_(label_measure),
      denom_(std::min(log1.NumEvents(), log2.NumEvents())) {
  // One assignment instruments every inner EMS/estimation run too.
  options_.ems.obs = options_.obs;
  if (options_.incremental_graphs) {
    builder1_ = std::make_unique<DependencyGraphBuilder>(log1_);
    builder2_ = std::make_unique<DependencyGraphBuilder>(log2_);
  }
  if (options_.cache_labels && label_measure_ != nullptr) {
    cached_labels_ = std::make_unique<CachedLabelSimilarity>(*label_measure_);
  }
}

CompositeMatcher::~CompositeMatcher() = default;

Result<DependencyGraph> CompositeMatcher::BuildGraph(
    int side, const std::vector<std::vector<EventId>>& w,
    const DependencyGraphOptions& graph_opts) const {
  const DependencyGraphBuilder* builder =
      side == 1 ? builder1_.get() : builder2_.get();
  if (builder != nullptr) return builder->BuildWithComposites(w, graph_opts);
  const EventLog& log = side == 1 ? log1_ : log2_;
  return DependencyGraph::BuildWithComposites(log, w, graph_opts);
}

void CompositeMatcher::SetCandidates(
    std::vector<CompositeCandidate> candidates1,
    std::vector<CompositeCandidate> candidates2) {
  candidates1_ = std::move(candidates1);
  candidates2_ = std::move(candidates2);
  explicit_candidates_ = true;
}

Result<CompositeMatcher::GraphState> CompositeMatcher::Evaluate(
    const std::vector<std::vector<EventId>>& w1,
    const std::vector<std::vector<EventId>>& w2, const GraphState* previous,
    bool merged_on_side1, const std::vector<EventId>* new_composite,
    double incumbent_average, bool* pruned_out, CompositeStats* stats,
    ObsContext* obs, bool serial_ems) const {
  if (pruned_out != nullptr) *pruned_out = false;
  ScopedSpan span(obs, "candidate_eval");
  GraphState state;
  DependencyGraphOptions graph_opts = options_.graph;
  graph_opts.add_artificial_event = true;
  EMS_ASSIGN_OR_RETURN(state.g1, BuildGraph(1, w1, graph_opts));
  EMS_ASSIGN_OR_RETURN(state.g2, BuildGraph(2, w2, graph_opts));

  const LabelSimilarity* measure =
      cached_labels_ != nullptr ? cached_labels_.get() : label_measure_;
  std::vector<std::vector<double>> labels;
  const std::vector<std::vector<double>>* labels_ptr = nullptr;
  if (measure != nullptr) {
    labels = LabelSimilarityMatrix(state.g1, state.g2, *measure);
    labels_ptr = &labels;
  }
  const size_t denom = denom_;

  EmsOptions ems_opts = options_.ems;
  ems_opts.obs = obs;
  if (serial_ems) {
    // Inside a parallel greedy step the candidates already occupy the
    // workers; nested EMS parallelism would oversubscribe (and EMS is
    // bit-identical at any thread count, so nothing changes).
    ems_opts.num_threads = 1;
    ems_opts.pool = nullptr;
  }

  if (options_.use_estimation) {
    // EMS+es path: estimated similarities per direction, no Uc/Bd.
    EstimationOptions est;
    est.exact_iterations = options_.estimation_iterations;
    est.ems = ems_opts;
    est.ems.direction = Direction::kForward;
    EstimatedEmsSimilarity fwd(state.g1, state.g2, est, labels_ptr);
    state.forward = fwd.Compute();
    stats->AddEmsRun(fwd.stats());
    est.ems.direction = Direction::kBackward;
    EstimatedEmsSimilarity bwd(state.g1, state.g2, est, labels_ptr);
    state.backward = bwd.Compute();
    stats->AddEmsRun(bwd.stats());
    if (options_.objective == CompositeObjective::kAveragePairs) {
      state.average = CombinedAverage(state.forward, state.backward);
    } else {
      state.average = MatchedTotalObjective(
          CombineMatrices(state.forward, state.backward),
          options_.objective_threshold, denom);
    }
    return state;
  }

  EmsSimilarity sim(state.g1, state.g2, ems_opts, labels_ptr);

  // --- Uc (Proposition 4): freeze rows/columns whose similarities cannot
  // have changed relative to the previous state.
  const bool use_uc = previous != nullptr && new_composite != nullptr &&
                      options_.prune_unchanged;
  std::vector<bool> frozen_fwd, frozen_bwd;
  SimilarityMatrix frozen_fwd_vals, frozen_bwd_vals;
  if (use_uc) {
    const DependencyGraph& g_new = merged_on_side1 ? state.g1 : state.g2;
    const DependencyGraph& g_old = merged_on_side1 ? previous->g1
                                                   : previous->g2;
    NodeId merged = MemberIndex(g_new).Find(*new_composite);
    EMS_DCHECK(merged >= 0);
    // Forward similarity changes only for the merged node and everything
    // downstream of it; backward, upstream.
    std::vector<bool> affected_fwd(g_new.NumNodes(), false);
    std::vector<bool> affected_bwd(g_new.NumNodes(), false);
    affected_fwd[static_cast<size_t>(merged)] = true;
    affected_bwd[static_cast<size_t>(merged)] = true;
    for (NodeId v : g_new.Descendants(merged)) {
      affected_fwd[static_cast<size_t>(v)] = true;
    }
    for (NodeId v : g_new.Ancestors(merged)) {
      affected_bwd[static_cast<size_t>(v)] = true;
    }
    auto old_index = NameIndex(g_old);
    frozen_fwd.assign(g_new.NumNodes(), false);
    frozen_bwd.assign(g_new.NumNodes(), false);
    std::vector<NodeId> old_of(g_new.NumNodes(), -1);
    for (NodeId v = 0; v < static_cast<NodeId>(g_new.NumNodes()); ++v) {
      if (g_new.IsArtificial(v)) continue;
      auto it = old_index.find(g_new.NodeName(v));
      if (it == old_index.end()) continue;
      old_of[static_cast<size_t>(v)] = it->second;
      if (!affected_fwd[static_cast<size_t>(v)]) {
        frozen_fwd[static_cast<size_t>(v)] = true;
        ++stats->rows_frozen;
      }
      if (!affected_bwd[static_cast<size_t>(v)]) {
        frozen_bwd[static_cast<size_t>(v)] = true;
        ++stats->rows_frozen;
      }
    }
    // Previous-state values remapped into the new graph's indexing. The
    // unchanged side keeps identical node ids (deterministic builds).
    frozen_fwd_vals = SimilarityMatrix(state.g1.NumNodes(),
                                       state.g2.NumNodes(), 0.0);
    frozen_bwd_vals = frozen_fwd_vals;
    for (NodeId v = 0; v < static_cast<NodeId>(g_new.NumNodes()); ++v) {
      NodeId old_v = old_of[static_cast<size_t>(v)];
      if (old_v < 0) continue;
      const size_t other_n = merged_on_side1 ? state.g2.NumNodes()
                                             : state.g1.NumNodes();
      for (NodeId u = 0; u < static_cast<NodeId>(other_n); ++u) {
        if (merged_on_side1) {
          frozen_fwd_vals.set(v, u, previous->forward.at(old_v, u));
          frozen_bwd_vals.set(v, u, previous->backward.at(old_v, u));
        } else {
          frozen_fwd_vals.set(u, v, previous->forward.at(u, old_v));
          frozen_bwd_vals.set(u, v, previous->backward.at(u, old_v));
        }
      }
    }
  }

  // --- Bd (Section 4.3): abandon the candidate when the upper bound of
  // its objective cannot reach the incumbent.
  const bool use_bd = options_.prune_bounds && incumbent_average > 0.0;
  bool aborted = false;

  // Objective upper bound after iteration k of one direction, with the
  // other direction either unknown (capped per pair at 1) or final.
  auto objective_bound = [&](Direction dir, int k, const SimilarityMatrix& cur,
                             const SimilarityMatrix* fwd_final) {
    const double alpha = options_.ems.alpha;
    const double c = options_.ems.c;
    if (options_.objective == CompositeObjective::kAveragePairs) {
      double bound = AverageUpperBound(sim, dir, cur, k, state.g1, state.g2);
      double other = fwd_final != nullptr ? fwd_final->Average(1, 1) : 1.0;
      return (bound + other) / 2.0;
    }
    return MatchedTotalBound(
        state.g1, state.g2, denom, [&](NodeId v1, NodeId v2) {
          int h = sim.ConvergenceHorizon(dir, v1, v2);
          double ub = HorizonUpperBound(cur.at(v1, v2), k, h, alpha, c);
          double other = fwd_final != nullptr ? fwd_final->at(v1, v2) : 1.0;
          return (ub + other) / 2.0;
        });
  };

  auto make_controls = [&](Direction dir, const SimilarityMatrix* fwd_final,
                           const std::vector<bool>* frz,
                           const SimilarityMatrix* vals) {
    RunControls controls;
    if (use_uc) {
      if (merged_on_side1) {
        controls.frozen_rows = frz;
      } else {
        controls.frozen_cols = frz;
      }
      controls.frozen_values = vals;
    }
    if (use_bd) {
      controls.should_abort = [&objective_bound, dir, fwd_final,
                               incumbent_average](
                                  int k, const SimilarityMatrix& cur) {
        return objective_bound(dir, k, cur, fwd_final) < incumbent_average;
      };
    }
    controls.aborted = &aborted;
    return controls;
  };

  RunControls fwd_controls = make_controls(
      Direction::kForward, /*fwd_final=*/nullptr,
      use_uc ? &frozen_fwd : nullptr, use_uc ? &frozen_fwd_vals : nullptr);
  state.forward = sim.ComputeControlled(Direction::kForward, fwd_controls);
  stats->AddEmsRun(sim.stats());
  if (aborted) {
    if (pruned_out != nullptr) *pruned_out = true;
    return state;
  }

  RunControls bwd_controls = make_controls(
      Direction::kBackward, /*fwd_final=*/&state.forward,
      use_uc ? &frozen_bwd : nullptr, use_uc ? &frozen_bwd_vals : nullptr);
  state.backward = sim.ComputeControlled(Direction::kBackward, bwd_controls);
  stats->AddEmsRun(sim.stats());
  if (aborted) {
    if (pruned_out != nullptr) *pruned_out = true;
    return state;
  }

  if (options_.objective == CompositeObjective::kAveragePairs) {
    state.average = CombinedAverage(state.forward, state.backward);
  } else {
    state.average = MatchedTotalObjective(
        CombineMatrices(state.forward, state.backward),
        options_.objective_threshold, denom);
  }
  return state;
}

Result<CompositeMatchResult> CompositeMatcher::Match() {
  ScopedSpan span(options_.obs, "composite_search");
  stats_ = CompositeStats{};
  // Cache/builder counters accumulate across Match calls on one matcher;
  // the obs flush below reports this run's delta only.
  const uint64_t base_hits = cached_labels_ ? cached_labels_->hits() : 0;
  const uint64_t base_misses = cached_labels_ ? cached_labels_->misses() : 0;
  const uint64_t base_builds1 = builder1_ ? builder1_->incremental_builds() : 0;
  const uint64_t base_builds2 = builder2_ ? builder2_->incremental_builds() : 0;
  if (!explicit_candidates_) {
    ScopedSpan discovery(options_.obs, "candidate_discovery");
    candidates1_ = DiscoverCandidates(log1_, options_.candidates);
    candidates2_ = DiscoverCandidates(log2_, options_.candidates);
  }
  ObsIncrement(options_.obs, "composite.candidates_discovered",
               candidates1_.size() + candidates2_.size());

  // Worker setup for parallel candidate evaluation (serial by default).
  exec::ThreadPool* pool = options_.pool;
  const int workers =
      pool != nullptr ? pool->num_threads()
                      : exec::ThreadPool::EffectiveThreads(options_.num_threads);
  std::unique_ptr<exec::ThreadPool> owned_pool;
  if (pool == nullptr && workers > 1) {
    owned_pool = std::make_unique<exec::ThreadPool>(workers);
    pool = owned_pool.get();
  }
  const bool parallel_step = workers > 1;

  // Accepted-member bitmaps make the per-candidate overlap test O(|cand|)
  // instead of scanning every accepted composite.
  std::vector<char> used1(log1_.NumEvents(), 0);
  std::vector<char> used2(log2_.NumEvents(), 0);
  auto overlaps_used = [](const std::vector<char>& used,
                          const std::vector<EventId>& events) {
    for (EventId e : events) {
      if (e >= 0 && static_cast<size_t>(e) < used.size() &&
          used[static_cast<size_t>(e)] != 0) {
        return true;
      }
    }
    return false;
  };

  std::vector<std::vector<EventId>> w1, w2;
  EMS_ASSIGN_OR_RETURN(
      GraphState state,
      Evaluate(w1, w2, nullptr, false, nullptr, /*incumbent=*/-1.0, nullptr,
               &stats_, options_.obs, /*serial_ems=*/false));

  for (int step = 0; step < options_.max_steps; ++step) {
    ScopedSpan step_span(options_.obs, "greedy_step");
    double best_avg = -1.0;
    int best_side = 0;
    const CompositeCandidate* best_candidate = nullptr;
    GraphState best_state;

    // Surviving candidates in (side, index) order — the serial evaluation
    // order, which parallel winner selection reproduces exactly.
    struct WorkItem {
      int side;
      const CompositeCandidate* cand;
    };
    std::vector<WorkItem> work;
    for (int side = 1; side <= 2; ++side) {
      const auto& candidates = side == 1 ? candidates1_ : candidates2_;
      const auto& used = side == 1 ? used1 : used2;
      for (const CompositeCandidate& cand : candidates) {
        if (cand.events.size() < 2) continue;
        if (overlaps_used(used, cand.events)) continue;
        work.push_back({side, &cand});
      }
    }

    // Posterior-guided ranking: evaluate candidates whose members the EM
    // posterior already sends to the same partner first. The step's
    // winner set is unchanged except for exact ties (see
    // CompositeOptions::prob); the payoff is the serial Bd incumbent
    // ratcheting up sooner.
    if (options_.prob.enabled && work.size() > 1) {
      prob::EmOptions em = options_.prob;
      em.pool = nullptr;  // ranking is a cheap serial side computation
      em.num_threads = 1;
      em.obs = nullptr;
      const prob::SoftMatchResult soft = prob::ComputeSoftMatch(
          CombineMatrices(state.forward, state.backward),
          state.g1.has_artificial(), state.g2.has_artificial(), em);
      if (!soft.empty()) {
        const NodeId poff1 = state.g1.has_artificial() ? 1 : 0;
        const NodeId poff2 = state.g2.has_artificial() ? 1 : 0;
        std::vector<int> row_of(log1_.NumEvents(), -1);
        std::vector<int> col_of(log2_.NumEvents(), -1);
        for (NodeId v = poff1;
             static_cast<size_t>(v) < state.g1.NumNodes(); ++v) {
          for (EventId e : state.g1.Members(v)) {
            if (e >= 0 && static_cast<size_t>(e) < row_of.size()) {
              row_of[static_cast<size_t>(e)] = v - poff1;
            }
          }
        }
        for (NodeId v = poff2;
             static_cast<size_t>(v) < state.g2.NumNodes(); ++v) {
          for (EventId e : state.g2.Members(v)) {
            if (e >= 0 && static_cast<size_t>(e) < col_of.size()) {
              col_of[static_cast<size_t>(e)] = v - poff2;
            }
          }
        }
        // Overlap score: posterior mass all members place on a common
        // partner — Σ_j min over members of r(member, j) for side 1,
        // the column-wise analogue for side 2.
        const size_t n1 = soft.posterior.rows();
        const size_t n2 = soft.posterior.cols();
        auto overlap = [&](const WorkItem& item) {
          double total = 0.0;
          const size_t span = item.side == 1 ? n2 : n1;
          for (size_t k = 0; k < span; ++k) {
            double mass = 1.0;
            for (EventId e : item.cand->events) {
              const std::vector<int>& idx = item.side == 1 ? row_of : col_of;
              const int node = (e >= 0 && static_cast<size_t>(e) < idx.size())
                                   ? idx[static_cast<size_t>(e)]
                                   : -1;
              if (node < 0) {
                mass = 0.0;
                break;
              }
              const double p = item.side == 1
                                   ? soft.posterior.at(node, static_cast<NodeId>(k))
                                   : soft.posterior.at(static_cast<NodeId>(k), node);
              mass = std::min(mass, p);
            }
            total += mass;
          }
          return total;
        };
        std::vector<double> scores(work.size());
        for (size_t i = 0; i < work.size(); ++i) scores[i] = overlap(work[i]);
        std::vector<size_t> order(work.size());
        for (size_t i = 0; i < order.size(); ++i) order[i] = i;
        std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
          return scores[a] > scores[b];
        });
        std::vector<WorkItem> ranked;
        ranked.reserve(work.size());
        for (size_t i : order) ranked.push_back(work[i]);
        work = std::move(ranked);
        ++stats_.prob_ranked_steps;
      }
    }

    if (!parallel_step) {
      for (const WorkItem& item : work) {
        auto try_w1 = w1;
        auto try_w2 = w2;
        (item.side == 1 ? try_w1 : try_w2).push_back(item.cand->events);

        double incumbent = std::max(state.average + options_.delta, best_avg);
        bool pruned = false;
        ++stats_.candidates_evaluated;
        EMS_ASSIGN_OR_RETURN(
            GraphState eval,
            Evaluate(try_w1, try_w2, &state, item.side == 1,
                     &item.cand->events, incumbent, &pruned, &stats_,
                     options_.obs, /*serial_ems=*/false));
        if (pruned) {
          ++stats_.candidates_pruned_by_bound;
          continue;
        }
        if (eval.average > best_avg) {
          best_avg = eval.average;
          best_side = item.side;
          best_candidate = item.cand;
          best_state = std::move(eval);
        }
      }
    } else {
      // Parallel step. Every task bounds Bd against the step-entry
      // incumbent only (no ratcheting on siblings), which prunes no more
      // than the serial loop would; the index-ordered merge below with a
      // strict `>` then picks the same winner the serial loop picks (the
      // full argument is in docs/CONCURRENCY.md).
      const double step_incumbent = state.average + options_.delta;
      struct Slot {
        GraphState eval;
        bool pruned = false;
        CompositeStats stats;
        double millis = 0.0;
      };
      std::vector<Slot> slots(work.size());
      exec::TaskGroup group(pool);
      for (size_t i = 0; i < work.size(); ++i) {
        group.Run([&, i]() -> Status {
          const WorkItem& item = work[i];
          auto try_w1 = w1;
          auto try_w2 = w2;
          (item.side == 1 ? try_w1 : try_w2).push_back(item.cand->events);
          Timer timer;
          EMS_ASSIGN_OR_RETURN(
              slots[i].eval,
              Evaluate(try_w1, try_w2, &state, item.side == 1,
                       &item.cand->events, step_incumbent, &slots[i].pruned,
                       &slots[i].stats, /*obs=*/nullptr, /*serial_ems=*/true));
          slots[i].millis = timer.ElapsedMillis();
          return Status::OK();
        });
      }
      EMS_RETURN_NOT_OK(group.Wait());

      EmsStats step_ems;
      uint64_t step_runs = 0;
      uint64_t step_pruned = 0;
      for (size_t i = 0; i < work.size(); ++i) {
        Slot& slot = slots[i];
        ++stats_.candidates_evaluated;
        ++stats_.candidates_evaluated_parallel;
        step_ems.Add(slot.stats.ems);
        step_runs += slot.stats.ems_runs;
        stats_.Add(slot.stats);
        ObsObserve(options_.obs, "composite.candidate_eval_millis",
                   slot.millis);
        if (slot.pruned) {
          ++stats_.candidates_pruned_by_bound;
          ++step_pruned;
          continue;
        }
        if (slot.eval.average > best_avg) {
          best_avg = slot.eval.average;
          best_side = work[i].side;
          best_candidate = work[i].cand;
          best_state = std::move(slot.eval);
        }
      }
      // Parallel tasks run with a null obs (one TraceRecorder cannot
      // interleave concurrent spans), so mirror their aggregated EMS
      // counters here; per-run histograms are serial-only.
      if (options_.obs != nullptr && step_runs > 0) {
        ObsIncrement(options_.obs, "ems.runs", step_runs);
        ObsIncrement(options_.obs, "ems.iterations",
                     static_cast<uint64_t>(step_ems.iterations));
        ObsIncrement(options_.obs, "ems.formula_evaluations",
                     step_ems.formula_evaluations);
        ObsIncrement(options_.obs, "ems.pairs_pruned_converged",
                     step_ems.pairs_pruned_converged);
        ObsIncrement(options_.obs, "ems.pairs_skipped_unchanged",
                     step_ems.pairs_skipped_unchanged);
        ObsIncrement(options_.obs, "ems.aborted_runs", step_pruned);
      }
    }

    // Algorithm 2 line 9: stop when the best improvement is below delta.
    if (best_candidate == nullptr ||
        best_avg - state.average < options_.delta) {
      break;
    }
    (best_side == 1 ? w1 : w2).push_back(best_candidate->events);
    auto& used = best_side == 1 ? used1 : used2;
    for (EventId e : best_candidate->events) {
      if (e >= 0 && static_cast<size_t>(e) < used.size()) {
        used[static_cast<size_t>(e)] = 1;
      }
    }
    state = std::move(best_state);
    ++stats_.merges_accepted;
  }

  CompositeMatchResult result;
  result.composites1 = std::move(w1);
  result.composites2 = std::move(w2);
  result.similarity = CombineMatrices(state.forward, state.backward);
  result.average_similarity = state.average;
  result.graph1 = std::move(state.g1);
  result.graph2 = std::move(state.g2);
  result.stats = stats_;
  if (options_.obs != nullptr) {
    ObsIncrement(options_.obs, "composite.candidates_evaluated",
                 static_cast<uint64_t>(stats_.candidates_evaluated));
    ObsIncrement(options_.obs, "composite.candidates_evaluated_parallel",
                 static_cast<uint64_t>(stats_.candidates_evaluated_parallel));
    ObsIncrement(options_.obs, "composite.candidates_pruned_by_bound",
                 static_cast<uint64_t>(stats_.candidates_pruned_by_bound));
    ObsIncrement(options_.obs, "composite.merges_accepted",
                 static_cast<uint64_t>(stats_.merges_accepted));
    ObsIncrement(options_.obs, "composite.rows_frozen", stats_.rows_frozen);
    ObsIncrement(options_.obs, "composite.prob_ranked_steps",
                 static_cast<uint64_t>(stats_.prob_ranked_steps));
    ObsSetGauge(options_.obs, "composite.objective",
                result.average_similarity);
    if (cached_labels_ != nullptr) {
      ObsIncrement(options_.obs, "text.label_cache_hits",
                   cached_labels_->hits() - base_hits);
      ObsIncrement(options_.obs, "text.label_cache_misses",
                   cached_labels_->misses() - base_misses);
    }
    if (builder1_ != nullptr && builder2_ != nullptr) {
      const uint64_t builds1 = builder1_->incremental_builds() - base_builds1;
      const uint64_t builds2 = builder2_->incremental_builds() - base_builds2;
      ObsIncrement(options_.obs, "graph.incremental_builds",
                   builds1 + builds2);
      // Each incremental build replaces one full scan of that log's
      // traces in the reference path.
      ObsIncrement(options_.obs, "graph.incremental_trace_scans_saved",
                   builds1 * builder1_->num_traces() +
                       builds2 * builder2_->num_traces());
    }
  }
  return result;
}

namespace {

// All subfamilies of pairwise-disjoint candidates (indices), including
// the empty family.
void EnumerateDisjointFamilies(const std::vector<CompositeCandidate>& cands,
                               size_t idx, std::vector<size_t>* current,
                               std::vector<EventId>* used,
                               std::vector<std::vector<size_t>>* out) {
  if (idx == cands.size()) {
    out->push_back(*current);
    return;
  }
  // Skip candidate idx.
  EnumerateDisjointFamilies(cands, idx + 1, current, used, out);
  // Take candidate idx if disjoint from used events.
  for (EventId e : cands[idx].events) {
    if (std::find(used->begin(), used->end(), e) != used->end()) return;
  }
  size_t mark = used->size();
  for (EventId e : cands[idx].events) used->push_back(e);
  current->push_back(idx);
  EnumerateDisjointFamilies(cands, idx + 1, current, used, out);
  current->pop_back();
  used->resize(mark);
}

}  // namespace

Result<CompositeMatchResult> ExactCompositeMatch(
    const EventLog& log1, const EventLog& log2,
    const std::vector<CompositeCandidate>& candidates1,
    const std::vector<CompositeCandidate>& candidates2,
    const CompositeOptions& options, const LabelSimilarity* label_measure,
    uint64_t max_combinations) {
  std::vector<std::vector<size_t>> families1, families2;
  {
    std::vector<size_t> current;
    std::vector<EventId> used;
    EnumerateDisjointFamilies(candidates1, 0, &current, &used, &families1);
    current.clear();
    used.clear();
    EnumerateDisjointFamilies(candidates2, 0, &current, &used, &families2);
  }
  uint64_t combos = static_cast<uint64_t>(families1.size()) *
                    static_cast<uint64_t>(families2.size());
  if (combos > max_combinations) {
    return Status::ResourceExhausted(
        "exact composite matching: " + std::to_string(combos) +
        " combinations exceed the budget");
  }

  CompositeMatchResult best;
  best.average_similarity = -1.0;
  for (const auto& f1 : families1) {
    std::vector<std::vector<EventId>> w1;
    for (size_t i : f1) w1.push_back(candidates1[i].events);
    for (const auto& f2 : families2) {
      std::vector<std::vector<EventId>> w2;
      for (size_t j : f2) w2.push_back(candidates2[j].events);

      DependencyGraphOptions graph_opts = options.graph;
      graph_opts.add_artificial_event = true;
      EMS_ASSIGN_OR_RETURN(DependencyGraph g1, DependencyGraph::BuildWithComposites(
                                                   log1, w1, graph_opts));
      EMS_ASSIGN_OR_RETURN(DependencyGraph g2, DependencyGraph::BuildWithComposites(
                                                   log2, w2, graph_opts));
      std::vector<std::vector<double>> labels;
      const std::vector<std::vector<double>>* labels_ptr = nullptr;
      if (label_measure != nullptr) {
        labels = LabelSimilarityMatrix(g1, g2, *label_measure);
        labels_ptr = &labels;
      }
      EmsOptions ems_opts = options.ems;
      ems_opts.direction = Direction::kBoth;
      EmsSimilarity sim(g1, g2, ems_opts, labels_ptr);
      SimilarityMatrix combined = sim.Compute();
      double avg =
          options.objective == CompositeObjective::kAveragePairs
              ? combined.Average(1, 1)
              : MatchedTotalObjective(combined, options.objective_threshold,
                                      std::min(log1.NumEvents(),
                                               log2.NumEvents()));
      if (avg > best.average_similarity) {
        best.average_similarity = avg;
        best.composites1 = w1;
        best.composites2 = w2;
        best.similarity = std::move(combined);
        best.graph1 = std::move(g1);
        best.graph2 = std::move(g2);
      }
    }
  }
  return best;
}

}  // namespace ems
