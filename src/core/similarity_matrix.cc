#include "core/similarity_matrix.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/string_util.h"

namespace ems {

double SimilarityMatrix::MaxAbsDifference(const SimilarityMatrix& other) const {
  EMS_DCHECK(rows_ == other.rows_ && cols_ == other.cols_);
  double max_diff = 0.0;
  for (size_t i = 0; i < data_.size(); ++i) {
    max_diff = std::max(max_diff, std::fabs(data_[i] - other.data_[i]));
  }
  return max_diff;
}

double SimilarityMatrix::Average(NodeId row_begin, NodeId col_begin) const {
  size_t rb = static_cast<size_t>(row_begin);
  size_t cb = static_cast<size_t>(col_begin);
  if (rb >= rows_ || cb >= cols_) return 0.0;
  double total = 0.0;
  size_t count = 0;
  for (size_t r = rb; r < rows_; ++r) {
    for (size_t c = cb; c < cols_; ++c) {
      total += data_[r * cols_ + c];
      ++count;
    }
  }
  return count == 0 ? 0.0 : total / static_cast<double>(count);
}

std::vector<std::vector<double>> SimilarityMatrix::RealSubmatrix(
    bool drop_row0, bool drop_col0) const {
  size_t rb = drop_row0 ? 1 : 0;
  size_t cb = drop_col0 ? 1 : 0;
  std::vector<std::vector<double>> out;
  if (rb >= rows_ || cb >= cols_) return out;
  out.reserve(rows_ - rb);
  for (size_t r = rb; r < rows_; ++r) {
    std::vector<double> row;
    row.reserve(cols_ - cb);
    for (size_t c = cb; c < cols_; ++c) row.push_back(data_[r * cols_ + c]);
    out.push_back(std::move(row));
  }
  return out;
}

std::string SimilarityMatrix::DebugString(const DependencyGraph& g1,
                                          const DependencyGraph& g2) const {
  std::ostringstream out;
  out << "        ";
  for (NodeId c = 0; c < static_cast<NodeId>(cols_); ++c) {
    out << g2.NodeName(c).substr(0, 7) << '\t';
  }
  out << '\n';
  for (NodeId r = 0; r < static_cast<NodeId>(rows_); ++r) {
    out << g1.NodeName(r).substr(0, 7) << '\t';
    for (NodeId c = 0; c < static_cast<NodeId>(cols_); ++c) {
      out << FormatDouble(at(r, c), 3) << '\t';
    }
    out << '\n';
  }
  return out.str();
}

}  // namespace ems
