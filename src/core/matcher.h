// High-level event matching API: from two event logs to a set of
// correspondences. Wires together dependency-graph construction, the EMS
// similarity (exact or estimated), label similarity, composite matching,
// and correspondence selection — the full pipeline of Section 2.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "assignment/selection.h"
#include "core/composite_matcher.h"
#include "core/estimation.h"
#include "obs/options.h"
#include "prob/em_engine.h"
#include "text/label_similarity.h"
#include "util/status.h"

namespace ems {

/// Which similarity engine the matcher runs.
enum class SimilarityEngine {
  kExact,      // EMS iterated to convergence
  kEstimated,  // EMS+es: I exact iterations + extrapolation (Section 3.5)
};

/// Which label similarity accompanies the structural similarity.
enum class LabelMeasure {
  kNone,         // opaque-name scenario: structure only
  kQGramCosine,  // the paper's choice (Section 5.1)
  kLevenshtein,
  kTokenJaccard,
  kJaroWinkler,
};

/// Correspondence selection strategy (Section 6).
enum class SelectionStrategy {
  kMaxTotalSimilarity,  // Hungarian (the paper's evaluation setting)
  kGreedy,
  kMutualBest,
};

/// Full pipeline configuration.
struct MatchOptions {
  EmsOptions ems;

  SimilarityEngine engine = SimilarityEngine::kExact;

  /// Exact iterations before extrapolation when engine == kEstimated.
  int estimation_iterations = 5;

  LabelMeasure label_measure = LabelMeasure::kNone;

  /// Minimum edge frequency kept in the dependency graphs (Figure 7).
  double min_edge_frequency = 0.0;

  SelectionStrategy selection = SelectionStrategy::kMaxTotalSimilarity;

  /// Minimum similarity for a pair to be reported as a correspondence.
  double min_match_similarity = 0.05;

  /// Enables composite (m:n) matching via the greedy Algorithm 2.
  bool match_composites = false;

  /// Composite matching parameters (delta, prunings, candidates). The
  /// nested `ems` inside is overridden by the top-level `ems` above.
  CompositeOptions composite;

  /// Probabilistic soft correspondences (src/prob/): when
  /// `prob.enabled`, selection runs the EM posterior engine over the
  /// converged similarity, picks the MAP assignment (filtered by
  /// `prob.min_confidence` on top of `min_match_similarity`), attaches
  /// per-correspondence confidences, and fills MatchResult::soft. The
  /// nested pool/num_threads/obs are overridden by the pipeline's own
  /// (`ems.pool`, `ems.num_threads`, `obs.context`). Off by default —
  /// the hard-pick path is then byte-identical to pre-prob builds.
  prob::EmOptions prob;

  /// Observability: when `obs.context` is set, Match records per-phase
  /// spans (graph_build, label_similarity, ems_fixpoint/ems_estimation,
  /// composite_search, selection) and pipeline counters into it. The
  /// default (null) compiles the instrumentation down to pointer checks.
  ObsOptions obs;
};

/// One reported correspondence: a set of event names on each side (both
/// singletons unless composite matching merged events).
struct Correspondence {
  std::vector<std::string> events1;
  std::vector<std::string> events2;
  double similarity = 0.0;

  /// Posterior confidence of the pair when the EM engine ran
  /// (MatchOptions::prob.enabled); 0 on the classic hard-pick path.
  double confidence = 0.0;
};

/// Everything a caller may want to inspect after matching.
struct MatchResult {
  std::vector<Correspondence> correspondences;

  /// Final similarity matrix (over final graph nodes, artificial rows and
  /// columns included at index 0).
  SimilarityMatrix similarity;

  /// Final graphs (composites merged when composite matching ran).
  DependencyGraph graph1;
  DependencyGraph graph2;

  /// Iteration counters of the 1:1 EMS run. Zero when composite matching
  /// ran — the inner EMS runs of the search are then aggregated in
  /// `composite_stats.ems` (keeping the two disjoint means downstream
  /// aggregators can sum both without double counting).
  EmsStats ems_stats;

  /// Composite-matcher counters (zero when composites were disabled).
  CompositeStats composite_stats;

  /// Full posterior of the EM run (present iff MatchOptions::prob was
  /// enabled): responsibilities, MAP assignment, per-row entropies and
  /// convergence stats — snapshot-able via store::EncodeSoftMatch.
  std::optional<prob::SoftMatchResult> soft;
};

/// Creates a label-similarity measure instance.
std::unique_ptr<LabelSimilarity> MakeLabelMeasure(LabelMeasure measure);

/// Resolves `result->correspondences` from an already-computed
/// `result->similarity` over `result->graph1/graph2`, with member names
/// taken from the logs — the selection tail of Matcher::Match, exposed
/// so the corpus top-k scheduler (src/index/) can finish candidates it
/// ran EMS on itself.
void SelectCorrespondences(const MatchOptions& options, const EventLog& log1,
                           const EventLog& log2, MatchResult* result);

/// \brief End-to-end event matcher.
class Matcher {
 public:
  explicit Matcher(const MatchOptions& options = {}) : options_(options) {}

  /// Runs the full pipeline between two logs.
  Result<MatchResult> Match(const EventLog& log1, const EventLog& log2) const;

  const MatchOptions& options() const { return options_; }

 private:
  // 1:1 pipeline over prebuilt graphs; fills similarity + stats.
  void ComputeSimilarity(const DependencyGraph& g1, const DependencyGraph& g2,
                         const LabelSimilarity* measure,
                         MatchResult* result) const;

  MatchOptions options_;
};

}  // namespace ems
