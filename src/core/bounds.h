// Upper bounds on EMS similarities (Section 4.3): the per-iteration
// increment bound of Lemma 5 gives an upper bound on the converged
// similarity from any intermediate S^k (Proposition 6), tightened for
// pairs with a finite convergence horizon (Corollary 7). The composite
// matcher uses these to abandon candidates early (pruning "Bd").
#pragma once

#include "core/ems_similarity.h"

namespace ems {

/// Upper bound on S(v1, v2) given its value after k iterations
/// (Proposition 6, tightened):
///   S <= S^k + sum_{i=k+1..inf} (alpha*c)^i
///      = S^k + alpha*c * (alpha*c)^k / (1 - alpha*c).
/// The paper states the looser S^k + (alpha*c)^k / (1 - alpha*c); both are
/// valid, and PaperUpperBound below reproduces the published form.
double SimilarityUpperBound(double s_at_k, int k, double alpha, double c);

/// The bound exactly as printed in Proposition 6 (looser by a factor
/// alpha*c on the tail). Retained for fidelity tests.
double PaperUpperBound(double s_at_k, int k, double alpha, double c);

/// Horizon-aware bound (Corollary 7): for a pair converging after h
/// iterations, only increments k+1..h can occur:
///   S <= S^k + alpha*c * ((alpha*c)^k - (alpha*c)^h) / (1 - alpha*c).
/// `horizon` may be kInfiniteDistance, which degenerates to
/// SimilarityUpperBound.
double HorizonUpperBound(double s_at_k, int k, int horizon, double alpha,
                         double c);

/// Label-aware horizon bound. With label similarities present
/// (alpha < 1), a single iteration can raise a pair's value by up to
///   delta1 = alpha*c + (1 - alpha) * label_max
/// where label_max bounds every entry of the label-similarity matrix
/// S^L — strictly more than the alpha*c of Lemma 5, so HorizonUpperBound
/// is NOT admissible for labeled runs. Bounding every increment k+1..h
/// by delta1 * (alpha*c)^i / (alpha*c) gives
///   S <= S^k + delta1 * ((alpha*c)^k - (alpha*c)^h) / (1 - alpha*c),
/// which degenerates exactly to HorizonUpperBound at label_max = 0 and
/// is monotonically non-increasing in k. `horizon` may be
/// kInfiniteDistance (the (alpha*c)^h term vanishes). The corpus index
/// prunes with this bound (docs/CORPUS.md).
double LabeledHorizonUpperBound(double s_at_k, int k, int horizon,
                                double alpha, double c, double label_max);

/// Upper bound on the average of all real-pair similarities of a matrix
/// after k iterations, each pair bounded with its own horizon. `ems` must
/// be the EmsSimilarity that produced `s_at_k` (for horizons), and
/// `direction` the direction it was iterated in.
double AverageUpperBound(const EmsSimilarity& ems, Direction direction,
                         const SimilarityMatrix& s_at_k, int k,
                         const DependencyGraph& g1, const DependencyGraph& g2);

}  // namespace ems
