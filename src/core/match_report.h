// Serialization of match results for downstream tooling: JSON documents
// with the correspondences, similarity statistics, and run counters.
#pragma once

#include <string>

#include "core/matcher.h"
#include "core/translation.h"

namespace ems {

/// JSON document describing a match result:
/// {
///   "correspondences": [{"left": [...], "right": [...],
///                        "similarity": 0.81}, ...],
///   "stats": {"iterations": N, "formula_evaluations": N,
///             "composite_merges": N},
///   "graphs": {"left_events": N, "right_events": N}
/// }
std::string MatchResultToJson(const MatchResult& result);

/// JSON document for a conformance report.
std::string ConformanceToJson(const ConformanceReport& report);

}  // namespace ems
