#include "core/repository.h"

#include <algorithm>

namespace ems {

Status LogRepository::Add(const std::string& name, EventLog log) {
  if (name.empty()) {
    return Status::InvalidArgument("repository entry needs a name");
  }
  for (const Entry& e : entries_) {
    if (e.name == name) {
      return Status::InvalidArgument("duplicate repository entry '" + name +
                                     "'");
    }
  }
  entries_.push_back(Entry{name, std::move(log)});
  return Status::OK();
}

Status LogRepository::Remove(const std::string& name) {
  for (auto it = entries_.begin(); it != entries_.end(); ++it) {
    if (it->name == name) {
      entries_.erase(it);
      return Status::OK();
    }
  }
  return Status::NotFound("no repository entry '" + name + "'");
}

std::vector<std::string> LogRepository::Names() const {
  std::vector<std::string> names;
  names.reserve(entries_.size());
  for (const Entry& e : entries_) names.push_back(e.name);
  return names;
}

Result<const EventLog*> LogRepository::Get(const std::string& name) const {
  for (const Entry& e : entries_) {
    if (e.name == name) return &e.log;
  }
  return Status::NotFound("no repository entry '" + name + "'");
}

Result<std::vector<RepositoryHit>> LogRepository::Query(
    const EventLog& query, size_t top_k) const {
  std::vector<RepositoryHit> hits;
  hits.reserve(entries_.size());
  for (const Entry& e : entries_) {
    EMS_ASSIGN_OR_RETURN(MatchResult match, matcher_.Match(query, e.log));
    double total = 0.0;
    for (const Correspondence& c : match.correspondences) {
      total += c.similarity;
    }
    RepositoryHit hit;
    hit.name = e.name;
    hit.score = match.correspondences.empty()
                    ? 0.0
                    : total / static_cast<double>(match.correspondences.size());
    hit.match = std::move(match);
    hits.push_back(std::move(hit));
  }
  std::stable_sort(hits.begin(), hits.end(),
                   [](const RepositoryHit& a, const RepositoryHit& b) {
                     return a.score > b.score;
                   });
  if (hits.size() > top_k) hits.resize(top_k);
  return hits;
}

}  // namespace ems
