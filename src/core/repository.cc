#include "core/repository.h"

#include <algorithm>

#include "exec/parallel.h"

namespace ems {

Status LogRepository::Add(const std::string& name, EventLog log) {
  if (name.empty()) {
    return Status::InvalidArgument("repository entry needs a name");
  }
  for (const Entry& e : entries_) {
    if (e.name == name) {
      return Status::InvalidArgument("duplicate repository entry '" + name +
                                     "'");
    }
  }
  entries_.push_back(Entry{name, std::move(log)});
  return Status::OK();
}

Status LogRepository::Remove(const std::string& name) {
  for (auto it = entries_.begin(); it != entries_.end(); ++it) {
    if (it->name == name) {
      entries_.erase(it);
      return Status::OK();
    }
  }
  return Status::NotFound("no repository entry '" + name + "'");
}

std::vector<std::string> LogRepository::Names() const {
  std::vector<std::string> names;
  names.reserve(entries_.size());
  for (const Entry& e : entries_) names.push_back(e.name);
  return names;
}

Result<const EventLog*> LogRepository::Get(const std::string& name) const {
  for (const Entry& e : entries_) {
    if (e.name == name) return &e.log;
  }
  return Status::NotFound("no repository entry '" + name + "'");
}

Result<std::vector<RepositoryHit>> LogRepository::Query(
    const EventLog& query, size_t top_k, exec::ThreadPool* pool) const {
  std::vector<RepositoryHit> hits(entries_.size());
  exec::TaskGroup group(pool);
  for (size_t i = 0; i < entries_.size(); ++i) {
    group.Run([this, &query, &hits, i, token = group.token()]() -> Status {
      if (token.cancelled()) {
        return Status::Cancelled("repository query aborted");
      }
      const Entry& e = entries_[i];
      EMS_ASSIGN_OR_RETURN(MatchResult match, matcher_.Match(query, e.log));
      double total = 0.0;
      for (const Correspondence& c : match.correspondences) {
        total += c.similarity;
      }
      RepositoryHit& hit = hits[i];
      hit.name = e.name;
      hit.score = match.correspondences.empty()
                      ? 0.0
                      : total /
                            static_cast<double>(match.correspondences.size());
      hit.match = std::move(match);
      return Status::OK();
    });
  }
  EMS_RETURN_NOT_OK(group.Wait());
  std::stable_sort(hits.begin(), hits.end(),
                   [](const RepositoryHit& a, const RepositoryHit& b) {
                     return a.score > b.score;
                   });
  if (hits.size() > top_k) hits.resize(top_k);
  return hits;
}

}  // namespace ems
