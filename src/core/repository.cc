#include "core/repository.h"

#include <utility>

#include "index/topk_scheduler.h"

namespace ems {

namespace {

index::CorpusIndexOptions IndexOptionsFor(const MatchOptions& options) {
  index::CorpusIndexOptions opts;
  opts.min_edge_frequency = options.min_edge_frequency;
  opts.obs = options.obs.context;
  return opts;
}

}  // namespace

LogRepository::LogRepository(const MatchOptions& options)
    : options_(options), index_(IndexOptionsFor(options)) {}

Status LogRepository::Add(const std::string& name, EventLog log) {
  return index_.Add(name, std::move(log));
}

Status LogRepository::Remove(const std::string& name) {
  return index_.Remove(name);
}

std::vector<std::string> LogRepository::Names() const {
  std::vector<std::string> names;
  names.reserve(index_.size());
  for (size_t i = 0; i < index_.size(); ++i) {
    names.push_back(index_.entry(i).name);
  }
  return names;
}

Result<const EventLog*> LogRepository::Get(const std::string& name) const {
  const int i = index_.FindIndex(name);
  if (i < 0) return Status::NotFound("no repository entry '" + name + "'");
  return &index_.entry(static_cast<size_t>(i)).log;
}

Result<std::vector<RepositoryHit>> LogRepository::Query(
    const EventLog& query, size_t top_k, exec::ThreadPool* pool) const {
  return RunQuery(query, top_k, pool, /*brute_force=*/false);
}

Result<std::vector<RepositoryHit>> LogRepository::QueryBruteForce(
    const EventLog& query, size_t top_k, exec::ThreadPool* pool) const {
  return RunQuery(query, top_k, pool, /*brute_force=*/true);
}

Result<std::vector<RepositoryHit>> LogRepository::RunQuery(
    const EventLog& query, size_t top_k, exec::ThreadPool* pool,
    bool brute_force) const {
  index::TopKOptions opts;
  opts.k = top_k;
  opts.match = options_;
  opts.pool = pool;
  opts.force_brute_force = brute_force;
  index::TopKScheduler scheduler(index_, opts);
  EMS_ASSIGN_OR_RETURN(std::vector<index::TopKHit> top,
                       scheduler.Query(query));
  std::vector<RepositoryHit> hits;
  hits.reserve(top.size());
  for (index::TopKHit& hit : top) {
    RepositoryHit out;
    out.name = std::move(hit.name);
    out.score = hit.score;
    out.match = std::move(hit.match);
    hits.push_back(std::move(out));
  }
  return hits;
}

}  // namespace ems
