#include "core/matcher.h"

#include <algorithm>

#include "obs/context.h"

namespace ems {

std::unique_ptr<LabelSimilarity> MakeLabelMeasure(LabelMeasure measure) {
  switch (measure) {
    case LabelMeasure::kNone:
      return std::make_unique<NoLabelSimilarity>();
    case LabelMeasure::kQGramCosine:
      return std::make_unique<QGramCosineSimilarity>();
    case LabelMeasure::kLevenshtein:
      return std::make_unique<LevenshteinLabelSimilarity>();
    case LabelMeasure::kTokenJaccard:
      return std::make_unique<TokenJaccardSimilarity>();
    case LabelMeasure::kJaroWinkler:
      return std::make_unique<JaroWinklerLabelSimilarity>();
  }
  return std::make_unique<NoLabelSimilarity>();
}

void Matcher::ComputeSimilarity(const DependencyGraph& g1,
                                const DependencyGraph& g2,
                                const LabelSimilarity* measure,
                                MatchResult* result) const {
  ObsContext* obs = options_.obs.context;
  std::vector<std::vector<double>> labels;
  const std::vector<std::vector<double>>* labels_ptr = nullptr;
  if (measure != nullptr && options_.label_measure != LabelMeasure::kNone) {
    ScopedSpan span(obs, "label_similarity");
    labels = LabelSimilarityMatrix(g1, g2, *measure, options_.ems.pool);
    labels_ptr = &labels;
  }
  EmsOptions ems_opts = options_.ems;
  ems_opts.obs = obs;
  if (options_.engine == SimilarityEngine::kEstimated) {
    EstimationOptions est;
    est.exact_iterations = options_.estimation_iterations;
    est.ems = ems_opts;
    EstimatedEmsSimilarity sim(g1, g2, est, labels_ptr);
    result->similarity = sim.Compute();
    result->ems_stats = sim.stats();
  } else {
    EmsSimilarity sim(g1, g2, ems_opts, labels_ptr);
    result->similarity = sim.Compute();
    result->ems_stats = sim.stats();
  }
}

Result<MatchResult> Matcher::Match(const EventLog& log1,
                                   const EventLog& log2) const {
  ObsContext* obs = options_.obs.context;
  ScopedSpan root(obs, "match");
  MatchResult result;
  std::unique_ptr<LabelSimilarity> measure =
      MakeLabelMeasure(options_.label_measure);

  if (options_.match_composites) {
    CompositeOptions comp = options_.composite;
    comp.ems = options_.ems;
    comp.graph.min_edge_frequency = options_.min_edge_frequency;
    comp.use_estimation = options_.engine == SimilarityEngine::kEstimated;
    comp.estimation_iterations = options_.estimation_iterations;
    comp.obs = obs;
    // --threads reaches the composite search too: the greedy step
    // evaluates candidates on the same worker budget the EMS iteration
    // would have used (candidate tasks force their inner EMS serial).
    comp.num_threads = options_.ems.num_threads;
    comp.pool = options_.ems.pool;
    comp.prob = options_.prob;
    CompositeMatcher matcher(log1, log2, comp,
                             options_.label_measure == LabelMeasure::kNone
                                 ? nullptr
                                 : measure.get());
    EMS_ASSIGN_OR_RETURN(CompositeMatchResult comp_result, matcher.Match());
    result.similarity = std::move(comp_result.similarity);
    result.graph1 = std::move(comp_result.graph1);
    result.graph2 = std::move(comp_result.graph2);
    result.composite_stats = comp_result.stats;
  } else {
    ScopedSpan graph_span(obs, "graph_build");
    DependencyGraphOptions graph_opts;
    graph_opts.min_edge_frequency = options_.min_edge_frequency;
    result.graph1 = DependencyGraph::Build(log1, graph_opts);
    result.graph2 = DependencyGraph::Build(log2, graph_opts);
    graph_span.End();
    ComputeSimilarity(result.graph1, result.graph2, measure.get(), &result);
  }
  if (obs != nullptr) {
    ObsIncrement(obs, "graph.builds", 2);
    ObsSetGauge(obs, "graph.nodes_left",
                static_cast<double>(result.graph1.NumNodes()));
    ObsSetGauge(obs, "graph.nodes_right",
                static_cast<double>(result.graph2.NumNodes()));
  }

  SelectCorrespondences(options_, log1, log2, &result);
  return result;
}

void SelectCorrespondences(const MatchOptions& options, const EventLog& log1,
                           const EventLog& log2, MatchResult* result) {
  ObsContext* obs = options.obs.context;
  // Resolve correspondences with member names taken from the logs.
  ScopedSpan selection_span(obs, "selection");
  std::vector<std::vector<double>> sim = result->similarity.RealSubmatrix(
      result->graph1.has_artificial(), result->graph2.has_artificial());
  SelectionOptions sel;
  sel.min_similarity = options.min_match_similarity;
  std::vector<ems::Match> matches;
  std::vector<double> confidences;  // parallel to `matches` when EM ran
  if (options.prob.enabled) {
    // Probabilistic path: EM posterior over the converged similarity,
    // MAP assignment filtered by similarity AND posterior confidence.
    prob::EmOptions em = options.prob;
    em.num_threads = options.ems.num_threads;
    em.pool = options.ems.pool;
    em.obs = obs;
    result->soft = prob::ComputeSoftMatch(result->similarity,
                                          result->graph1.has_artificial(),
                                          result->graph2.has_artificial(), em);
    const std::vector<prob::SoftMatch> soft_matches = prob::SelectFromPosterior(
        *result->soft, sim, options.min_match_similarity,
        options.prob.min_confidence);
    for (const prob::SoftMatch& sm : soft_matches) {
      matches.push_back({sm.row, sm.col, sm.similarity});
      confidences.push_back(sm.confidence);
    }
  } else {
    switch (options.selection) {
      case SelectionStrategy::kMaxTotalSimilarity:
        matches = SelectMaxTotalSimilarity(sim, sel);
        break;
      case SelectionStrategy::kGreedy:
        matches = SelectGreedy(sim, sel);
        break;
      case SelectionStrategy::kMutualBest:
        matches = SelectMutualBest(sim, sel);
        break;
    }
  }
  const NodeId off1 = result->graph1.has_artificial() ? 1 : 0;
  const NodeId off2 = result->graph2.has_artificial() ? 1 : 0;
  for (size_t k = 0; k < matches.size(); ++k) {
    const ems::Match& m = matches[k];
    Correspondence corr;
    corr.similarity = m.similarity;
    if (k < confidences.size()) corr.confidence = confidences[k];
    for (EventId e : result->graph1.Members(m.row + off1)) {
      corr.events1.push_back(log1.EventName(e));
    }
    for (EventId e : result->graph2.Members(m.col + off2)) {
      corr.events2.push_back(log2.EventName(e));
    }
    if (corr.events1.empty() || corr.events2.empty()) continue;
    result->correspondences.push_back(std::move(corr));
  }
  ObsIncrement(obs, "selection.matches",
               static_cast<uint64_t>(result->correspondences.size()));
}

}  // namespace ems
