// Log repository: the process-warehouse use case that motivates the paper
// (Section 1) — a collection of event logs from many subsidiaries that
// can be queried for the processes most similar to a given log, with the
// event-level correspondences that make cross-log analysis meaningful.
//
// Queries run on the corpus index (src/index/): every stored log keeps
// its prebuilt dependency graph and q-gram label postings, so a query
// costs one graph build for the query log plus exact EMS only on the
// candidates whose admissible score bound survives the top-k incumbent
// (docs/CORPUS.md). Results are byte-identical to the retained
// brute-force scan.
#pragma once

#include <string>
#include <vector>

#include "core/matcher.h"
#include "index/corpus_index.h"

namespace ems {

namespace exec {
class ThreadPool;
}  // namespace exec

/// One ranked answer to a repository query.
struct RepositoryHit {
  std::string name;           // the stored log's name
  double score = 0.0;         // mean matched similarity, in [0, 1]
  MatchResult match;          // full correspondences against the query
};

/// \brief A searchable collection of event logs.
///
/// Logs are stored by value together with their prebuilt dependency
/// graphs; queries rank by the mean similarity of the selected
/// correspondences.
class LogRepository {
 public:
  explicit LogRepository(const MatchOptions& options = {});

  /// Adds a log under a unique name. InvalidArgument on duplicates or
  /// empty names. Builds the log's graph and index postings once, here,
  /// instead of on every query.
  Status Add(const std::string& name, EventLog log);

  /// Removes the named log; NotFound if absent.
  Status Remove(const std::string& name);

  /// Number of stored logs.
  size_t size() const { return index_.size(); }

  /// Names of all stored logs, in insertion order.
  std::vector<std::string> Names() const;

  /// Matches `query` against the stored logs and returns up to `top_k`
  /// hits, best score first. Scores are the mean similarity of selected
  /// correspondences (0 when nothing matches).
  ///
  /// Runs the index-backed top-k scheduler: candidates are ranked by an
  /// admissible upper bound and exact matching stops once the k-th best
  /// exact score beats every remaining bound. `pool` (optional,
  /// borrowed) fans the candidate evaluations out across workers.
  /// Results and ranking are byte-identical to QueryBruteForce for every
  /// pool: pruning is strict, so boundary ties always run to completion
  /// and keep insertion order via the final stable sort.
  Result<std::vector<RepositoryHit>> Query(const EventLog& query,
                                           size_t top_k = 5,
                                           exec::ThreadPool* pool =
                                               nullptr) const;

  /// The pre-index scan: matches `query` against every stored log
  /// unconditionally. Retained as the equivalence reference for tests
  /// and benchmarks.
  Result<std::vector<RepositoryHit>> QueryBruteForce(
      const EventLog& query, size_t top_k = 5,
      exec::ThreadPool* pool = nullptr) const;

  /// Access a stored log by name.
  Result<const EventLog*> Get(const std::string& name) const;

  /// The underlying corpus index (serving layer, tests).
  const index::CorpusIndex& corpus_index() const { return index_; }

 private:
  Result<std::vector<RepositoryHit>> RunQuery(const EventLog& query,
                                              size_t top_k,
                                              exec::ThreadPool* pool,
                                              bool brute_force) const;

  MatchOptions options_;
  index::CorpusIndex index_;
};

}  // namespace ems
