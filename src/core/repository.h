// Log repository: the process-warehouse use case that motivates the paper
// (Section 1) — a collection of event logs from many subsidiaries that
// can be queried for the processes most similar to a given log, with the
// event-level correspondences that make cross-log analysis meaningful.
#pragma once

#include <string>
#include <vector>

#include "core/matcher.h"

namespace ems {

namespace exec {
class ThreadPool;
}  // namespace exec

/// One ranked answer to a repository query.
struct RepositoryHit {
  std::string name;           // the stored log's name
  double score = 0.0;         // mean matched similarity, in [0, 1]
  MatchResult match;          // full correspondences against the query
};

/// \brief A searchable collection of event logs.
///
/// Logs are stored by value together with their prebuilt dependency
/// graphs; queries run the configured matcher against every stored log
/// and rank by the mean similarity of the selected correspondences.
class LogRepository {
 public:
  explicit LogRepository(const MatchOptions& options = {})
      : matcher_(options) {}

  /// Adds a log under a unique name. InvalidArgument on duplicates or
  /// empty names.
  Status Add(const std::string& name, EventLog log);

  /// Removes the named log; NotFound if absent.
  Status Remove(const std::string& name);

  /// Number of stored logs.
  size_t size() const { return entries_.size(); }

  /// Names of all stored logs, in insertion order.
  std::vector<std::string> Names() const;

  /// Matches `query` against every stored log and returns up to `top_k`
  /// hits, best score first. Scores are the mean similarity of selected
  /// correspondences (0 when nothing matches).
  ///
  /// `pool` (optional, borrowed) fans the per-log matchings out across
  /// workers — the embarrassingly-parallel warehouse scan. Results and
  /// ranking are identical to the serial run: each matching is a pure
  /// function of (query, stored log, options) and ties keep insertion
  /// order via a stable sort over the index-ordered hits.
  Result<std::vector<RepositoryHit>> Query(const EventLog& query,
                                           size_t top_k = 5,
                                           exec::ThreadPool* pool =
                                               nullptr) const;

  /// Access a stored log by name.
  Result<const EventLog*> Get(const std::string& name) const;

 private:
  struct Entry {
    std::string name;
    EventLog log;
  };

  Matcher matcher_;
  std::vector<Entry> entries_;
};

}  // namespace ems
