#include "core/translation.h"

#include <algorithm>
#include <set>

#include "log/log_filter.h"
#include "log/log_stats.h"
#include "util/string_util.h"

namespace ems {

std::map<std::string, std::string> TranslationTable(
    const std::vector<Correspondence>& correspondences) {
  std::map<std::string, std::string> table;
  for (const Correspondence& c : correspondences) {
    std::vector<std::string> sorted_right = c.events2;
    std::sort(sorted_right.begin(), sorted_right.end());
    std::string target = Join(sorted_right, "+");
    for (const std::string& left : c.events1) {
      table[left] = target;
    }
  }
  return table;
}

EventLog TranslateLog(const EventLog& log,
                      const std::map<std::string, std::string>& table) {
  // Precompute per-event: the mapped name and whether it came from a
  // many-to-one mapping (those collapse when consecutive).
  std::map<std::string, size_t> fanin;  // target -> #sources
  for (const auto& [src, dst] : table) {
    (void)src;
    ++fanin[dst];
  }
  EventLog out;
  for (const Trace& t : log.traces()) {
    std::vector<std::string> names;
    names.reserve(t.size());
    std::string last_collapsed;
    for (EventId e : t) {
      const std::string& original = log.EventName(e);
      auto it = table.find(original);
      std::string mapped = it == table.end() ? original : it->second;
      bool collapsible = it != table.end() && fanin[mapped] > 1;
      if (collapsible && mapped == last_collapsed) continue;
      names.push_back(mapped);
      last_collapsed = collapsible ? mapped : std::string();
    }
    out.AddTrace(names);
  }
  return out;
}

namespace {

double Jaccard(const std::set<std::string>& a, const std::set<std::string>& b) {
  if (a.empty() && b.empty()) return 1.0;
  size_t inter = 0;
  for (const auto& x : a) inter += b.count(x);
  size_t uni = a.size() + b.size() - inter;
  return uni == 0 ? 1.0 : static_cast<double>(inter) / static_cast<double>(uni);
}

// Normalized edit similarity between two activity sequences.
double SequenceSimilarity(const std::vector<std::string>& a,
                          const std::vector<std::string>& b) {
  const size_t la = a.size();
  const size_t lb = b.size();
  if (la == 0 && lb == 0) return 1.0;
  std::vector<size_t> row(lb + 1);
  for (size_t j = 0; j <= lb; ++j) row[j] = j;
  for (size_t i = 1; i <= la; ++i) {
    size_t diag = row[0];
    row[0] = i;
    for (size_t j = 1; j <= lb; ++j) {
      size_t up = row[j];
      size_t cost = (a[i - 1] == b[j - 1]) ? 0 : 1;
      row[j] = std::min({row[j] + 1, row[j - 1] + 1, diag + cost});
      diag = up;
    }
  }
  return 1.0 - static_cast<double>(row[lb]) /
                   static_cast<double>(std::max(la, lb));
}

// Frequency-weighted mean of each of `from`'s variants' best similarity
// against `to`'s variants.
double Coverage(const std::vector<TraceVariant>& from,
                const std::vector<TraceVariant>& to) {
  if (from.empty()) return 1.0;
  double total_weight = 0.0;
  double total = 0.0;
  for (const TraceVariant& v : from) {
    double best = 0.0;
    for (const TraceVariant& w : to) {
      best = std::max(best, SequenceSimilarity(v.activities, w.activities));
      if (best >= 1.0) break;
    }
    total += best * static_cast<double>(v.count);
    total_weight += static_cast<double>(v.count);
  }
  return total_weight == 0.0 ? 1.0 : total / total_weight;
}

std::set<std::string> DirectFollows(const EventLog& log) {
  LogStats stats(log);
  std::set<std::string> out;
  for (const auto& [pair, count] : stats.follows_trace_counts()) {
    (void)count;
    out.insert(log.EventName(pair.first) + "\x01" +
               log.EventName(pair.second));
  }
  return out;
}

}  // namespace

ConformanceReport CrossLogConformance(const EventLog& log1,
                                      const EventLog& log2) {
  ConformanceReport report;
  std::set<std::string> vocab1(log1.event_names().begin(),
                               log1.event_names().end());
  std::set<std::string> vocab2(log2.event_names().begin(),
                               log2.event_names().end());
  report.vocabulary_overlap = Jaccard(vocab1, vocab2);
  report.relation_overlap = Jaccard(DirectFollows(log1), DirectFollows(log2));

  std::vector<TraceVariant> variants1 = TraceVariants(log1);
  std::vector<TraceVariant> variants2 = TraceVariants(log2);
  report.trace_coverage_1in2 = Coverage(variants1, variants2);
  report.trace_coverage_2in1 = Coverage(variants2, variants1);
  double sum = report.trace_coverage_1in2 + report.trace_coverage_2in1;
  report.f_conformance =
      sum <= 0.0 ? 0.0
                 : 2.0 * report.trace_coverage_1in2 *
                       report.trace_coverage_2in1 / sum;
  return report;
}

Result<ConformanceReport> MatchAndCompare(const EventLog& log1,
                                          const EventLog& log2,
                                          const MatchOptions& options) {
  Matcher matcher(options);
  EMS_ASSIGN_OR_RETURN(MatchResult match, matcher.Match(log1, log2));
  std::map<std::string, std::string> table =
      TranslationTable(match.correspondences);
  EventLog translated = TranslateLog(log1, table);
  return CrossLogConformance(translated, log2);
}

}  // namespace ems
