// EM soft-correspondence engine (ROADMAP item 1): treats the converged
// EMS similarity matrix as the likelihood surface over latent row→column
// correspondences and iterates expectation-maximization to a calibrated
// posterior (docs/PROBABILISTIC.md has the full derivation).
//
//   E-step  responsibilities start from the prior-weighted temperature
//           softmax r(i,j) ∝ π_j · exp(S(i,j) / (T·spread(S))) and are
//           pushed toward double stochasticity by Sinkhorn sweeps with
//           uniform column targets n1/n2 (row pass first, so the
//           column pass does not cancel the prior multiplier); the
//           sweep ends with an exact row normalization, so every row
//           sums to 1.
//   M-step  π_j ← Σ_i r(i,j) / n1, floored and renormalized — each
//           right-side node's estimated match propensity, which
//           weights the next E-step's responsibilities. Columns that
//           attract no posterior mass shrink, concentrating the
//           distribution on plausibly-matched nodes.
//   stop    when the max-abs posterior change of an iteration is ≤
//           rtole (gemmulem's relative-tolerance idiom) or after
//           max_iterations.
//
// Determinism contract: identical output at any thread count. Only
// row-local work (softmax fill, row normalization, column scaling by a
// precomputed vector) runs on the pool — chunk boundaries never change
// a row's arithmetic — while every cross-row reduction (column sums,
// priors, delta, entropy) runs serially in fixed index order.
#pragma once

#include <vector>

#include "core/similarity_matrix.h"
#include "prob/soft_match.h"

namespace ems {

struct ObsContext;
namespace exec {
class ThreadPool;
}

namespace prob {

/// EM configuration; carried by MatchOptions/CompositeOptions as `prob`.
struct EmOptions {
  /// Master gate: when false the pipeline takes the classic hard-pick
  /// path, byte-identical to builds without the prob subsystem.
  bool enabled = false;

  /// Softmax temperature, measured relative to the spread (max − min)
  /// of the likelihood surface so sharpness is independent of the
  /// instance's similarity scale: a similarity deficit of
  /// temperature·spread costs a factor of e. Lower = sharper posteriors
  /// (T → 0 recovers the hard argmax); higher = more diffuse. Clamped
  /// to ≥ 1e-6.
  double temperature = 0.05;

  /// Relative convergence tolerance on the max-abs posterior change.
  double rtole = 1e-6;

  /// Iteration cap (candidates are finite; this is the safety net).
  int max_iterations = 50;

  /// Sinkhorn row/column renormalization sweeps per E-step.
  int sinkhorn_sweeps = 5;

  /// MAP pairs whose posterior falls below this are dropped at
  /// selection — the calibration filter that sheds dislocated rows.
  /// Compared against a row distribution that sums to 1, so useful
  /// values sit near (a small multiple of) the uniform mass 1/n2.
  double min_confidence = 0.02;

  /// Workers for the row-parallel E-step phases when `pool` is null:
  /// 1 = serial (default), 0 = hardware concurrency.
  int num_threads = 1;

  /// Borrowed shared pool; overrides num_threads when set.
  exec::ThreadPool* pool = nullptr;

  /// Observability sink (prob.* counters, em_posterior span, posterior
  /// entropy quantile histogram); null disables instrumentation.
  ObsContext* obs = nullptr;
};

/// \brief One EM run over a likelihood surface.
///
/// The matrix handed in must already be restricted to real nodes (no
/// artificial row/column); use ComputeSoftMatch below to go straight
/// from a pipeline SimilarityMatrix.
class EmCorrespondenceEngine {
 public:
  /// `likelihood` is borrowed and must outlive Run().
  EmCorrespondenceEngine(const SimilarityMatrix& likelihood,
                         const EmOptions& options);

  /// Runs E/M iterations to convergence and derives the MAP assignment,
  /// per-row modes and entropies. Deterministic for fixed inputs at any
  /// thread count.
  SoftMatchResult Run();

 private:
  const SimilarityMatrix& likelihood_;
  EmOptions options_;
};

/// Convenience wrapper: drops the artificial row/column of a pipeline
/// similarity matrix (mirroring SimilarityMatrix::RealSubmatrix) and
/// runs the engine on the real-node surface.
SoftMatchResult ComputeSoftMatch(const SimilarityMatrix& similarity,
                                 bool drop_row0, bool drop_col0,
                                 const EmOptions& options);

}  // namespace prob
}  // namespace ems
