#include "prob/em_engine.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <functional>
#include <memory>

#include "assignment/hungarian.h"
#include "exec/parallel.h"
#include "obs/context.h"

namespace ems {
namespace prob {
namespace {

// Prior floor: a column whose posterior mass vanishes keeps a sliver of
// prior so a later iteration can revive it (and the Sinkhorn column
// target never collapses to an exact zero).
constexpr double kPriorFloor = 1e-12;

// Runs `body(i)` for every row, chunked over the pool when more than one
// worker is available. Bodies must touch only row i (and read-only
// shared state): chunk boundaries then cannot change any row's
// arithmetic, which is the whole bit-identity argument.
void ForRows(exec::ThreadPool* pool, int threads, size_t rows,
             const std::function<void(size_t row)>& body) {
  if (threads <= 1 || rows <= 1) {
    for (size_t i = 0; i < rows; ++i) body(i);
    return;
  }
  exec::ParallelForChunks(pool, 0, rows, threads,
                          [&](int /*chunk*/, size_t begin, size_t end) {
                            for (size_t i = begin; i < end; ++i) body(i);
                          });
}

// Normalizes each row of `r` (n1 x n2, row-major) to sum exactly 1.0 in
// the "computed sum then divide" sense; a fully underflowed row falls
// back to the uniform distribution. Row-local, so safe under ForRows.
void NormalizeRow(double* row, size_t n2) {
  double sum = 0.0;
  for (size_t j = 0; j < n2; ++j) sum += row[j];
  if (sum > 0.0) {
    const double inv = 1.0 / sum;
    for (size_t j = 0; j < n2; ++j) row[j] *= inv;
  } else {
    const double uniform = 1.0 / static_cast<double>(n2);
    for (size_t j = 0; j < n2; ++j) row[j] = uniform;
  }
}

}  // namespace

EmCorrespondenceEngine::EmCorrespondenceEngine(
    const SimilarityMatrix& likelihood, const EmOptions& options)
    : likelihood_(likelihood), options_(options) {}

SoftMatchResult EmCorrespondenceEngine::Run() {
  ObsContext* obs = options_.obs;
  ScopedSpan span(obs, "em_posterior");

  SoftMatchResult out;
  const size_t n1 = likelihood_.rows();
  const size_t n2 = likelihood_.cols();
  out.posterior = SimilarityMatrix(n1, n2, 0.0);
  if (n1 == 0 || n2 == 0) {
    out.stats.converged = true;
    ObsIncrement(obs, "prob.runs");
    ObsIncrement(obs, "prob.converged_runs");
    return out;
  }

  exec::ThreadPool* pool = options_.pool;
  int threads = pool != nullptr
                    ? pool->num_threads()
                    : exec::ThreadPool::EffectiveThreads(options_.num_threads);
  threads = static_cast<int>(
      std::min<size_t>(static_cast<size_t>(std::max(threads, 1)), n1));
  std::unique_ptr<exec::ThreadPool> owned_pool;
  if (pool == nullptr && threads > 1) {
    owned_pool = std::make_unique<exec::ThreadPool>(threads);
    pool = owned_pool.get();
  }

  // Temperature softmax with the global max shifted out: exponents stay
  // ≤ 0, so nothing overflows at any temperature; extreme sharpness can
  // underflow whole rows, which NormalizeRow turns into uniform rows.
  // The temperature is measured relative to the spread (max - min) of
  // the likelihood surface: EMS similarities have no fixed scale — their
  // dynamic range shrinks as instances grow — and an absolute
  // temperature would leave large instances with near-uniform
  // posteriors. With the spread divided out, temperature t means "a
  // similarity deficit of t·spread costs a factor of e".
  const double temperature = std::max(options_.temperature, 1e-6);
  const std::vector<double>& s = likelihood_.data();
  double s_max = s[0];
  double s_min = s[0];
  for (double v : s) {
    s_max = std::max(s_max, v);
    s_min = std::min(s_min, v);
  }
  const double spread = s_max - s_min;
  // A flat surface carries no signal: every exponent is 0 and the
  // posterior is uniform, as it should be.
  const double scale = spread > 0.0 ? temperature * spread : 1.0;
  std::vector<double> lik(n1 * n2);
  ForRows(pool, threads, n1, [&](size_t i) {
    for (size_t j = 0; j < n2; ++j) {
      lik[i * n2 + j] = std::exp((s[i * n2 + j] - s_max) / scale);
    }
  });

  std::vector<double> prior(n2, 1.0 / static_cast<double>(n2));
  std::vector<double> prev(n1 * n2, 0.0);
  std::vector<double> col_scale(n2, 0.0);
  double* r = out.posterior.mutable_data();

  const int max_iterations = std::max(options_.max_iterations, 1);
  const int sweeps = std::max(options_.sinkhorn_sweeps, 1);
  const double rtole = std::max(options_.rtole, 0.0);
  int iterations = 0;
  bool converged = false;
  double delta = 0.0;

  while (iterations < max_iterations) {
    ++iterations;
    // E-step: restart from the likelihood surface weighted by the
    // current priors, r(i,j) ∝ π_j·lik(i,j) — the classic mixture
    // responsibility. The priors survive the Sinkhorn passes below
    // because each sweep row-normalizes FIRST: the row sums mix priors
    // across columns, so the subsequent column pass no longer divides
    // them out exactly (a column-first sweep would cancel a column
    // multiplier identically).
    ForRows(pool, threads, n1, [&](size_t i) {
      const double* src = &lik[i * n2];
      double* dst = &r[i * n2];
      for (size_t j = 0; j < n2; ++j) dst[j] = src[j] * prior[j];
    });
    // Sinkhorn sweeps toward double stochasticity: uniform column
    // targets n1/n2 inject the 1:1 competition between rows (a column
    // claimed by many rows gets scaled down, forcing them to spread),
    // which plain row-softmax responsibilities lack. With a single row
    // there is nobody to compete with and the column pass would force
    // every entry to the target — erasing the likelihood — so the sweep
    // degenerates to the plain row softmax.
    const double col_target =
        static_cast<double>(n1) / static_cast<double>(n2);
    const int effective_sweeps = n1 > 1 ? sweeps : 0;
    for (int sweep = 0; sweep < effective_sweeps; ++sweep) {
      ForRows(pool, threads, n1, [&](size_t i) { NormalizeRow(&r[i * n2], n2); });
      // Column pass: sums in fixed (i, j) order — the one cross-row
      // reduction, kept serial for determinism — then a row-local scale.
      std::fill(col_scale.begin(), col_scale.end(), 0.0);
      for (size_t i = 0; i < n1; ++i) {
        const double* row = &r[i * n2];
        for (size_t j = 0; j < n2; ++j) col_scale[j] += row[j];
      }
      for (size_t j = 0; j < n2; ++j) {
        col_scale[j] = col_scale[j] > 0.0 ? col_target / col_scale[j] : 0.0;
      }
      ForRows(pool, threads, n1, [&](size_t i) {
        double* row = &r[i * n2];
        for (size_t j = 0; j < n2; ++j) row[j] *= col_scale[j];
      });
    }
    ForRows(pool, threads, n1, [&](size_t i) { NormalizeRow(&r[i * n2], n2); });

    // M-step: priors from the column posterior mass, floored and
    // renormalized (serial reduction, fixed order).
    std::fill(prior.begin(), prior.end(), 0.0);
    for (size_t i = 0; i < n1; ++i) {
      const double* row = &r[i * n2];
      for (size_t j = 0; j < n2; ++j) prior[j] += row[j];
    }
    double prior_sum = 0.0;
    for (size_t j = 0; j < n2; ++j) {
      prior[j] = std::max(prior[j] / static_cast<double>(n1), kPriorFloor);
      prior_sum += prior[j];
    }
    for (size_t j = 0; j < n2; ++j) prior[j] /= prior_sum;

    delta = 0.0;
    for (size_t k = 0; k < n1 * n2; ++k) {
      delta = std::max(delta, std::abs(r[k] - prev[k]));
    }
    std::copy(r, r + n1 * n2, prev.begin());
    if (delta <= rtole) {
      converged = true;
      break;
    }
  }

  out.column_prior = std::move(prior);
  out.stats.iterations = iterations;
  out.stats.converged = converged;
  out.stats.final_delta = delta;

  // Per-row mode + normalized entropy (serial; also feeds the quantile
  // histogram so ems_top can report the entropy distribution).
  out.mode.resize(n1, -1);
  out.row_entropy.resize(n1, 0.0);
  const double entropy_denom =
      n2 > 1 ? std::log(static_cast<double>(n2)) : 1.0;
  double entropy_sum = 0.0;
  for (size_t i = 0; i < n1; ++i) {
    const double* row = &r[i * n2];
    double best = -1.0;
    double h = 0.0;
    int best_j = 0;
    for (size_t j = 0; j < n2; ++j) {
      if (row[j] > best) {
        best = row[j];
        best_j = static_cast<int>(j);
      }
      if (row[j] > 0.0) h -= row[j] * std::log(row[j]);
    }
    out.mode[i] = best_j;
    out.row_entropy[i] = std::clamp(h / entropy_denom, 0.0, 1.0);
    entropy_sum += out.row_entropy[i];
    ObsObserveQuantile(obs, "prob.posterior_entropy", out.row_entropy[i]);
  }
  out.stats.mean_entropy = entropy_sum / static_cast<double>(n1);

  // MAP assignment: Hungarian over the posterior, inheriting the
  // assignment layer's tie-break order (pinned by hungarian_test).
  std::vector<std::vector<double>> weights(n1, std::vector<double>(n2));
  for (size_t i = 0; i < n1; ++i) {
    for (size_t j = 0; j < n2; ++j) weights[i][j] = r[i * n2 + j];
  }
  out.map_assignment = MaxWeightAssignment(weights);

  ObsIncrement(obs, "prob.runs");
  ObsIncrement(obs, "prob.iterations", static_cast<uint64_t>(iterations));
  if (converged) ObsIncrement(obs, "prob.converged_runs");
  return out;
}

SoftMatchResult ComputeSoftMatch(const SimilarityMatrix& similarity,
                                 bool drop_row0, bool drop_col0,
                                 const EmOptions& options) {
  const size_t r0 = drop_row0 ? 1 : 0;
  const size_t c0 = drop_col0 ? 1 : 0;
  const size_t n1 = similarity.rows() > r0 ? similarity.rows() - r0 : 0;
  const size_t n2 = similarity.cols() > c0 ? similarity.cols() - c0 : 0;
  SimilarityMatrix real(n1, n2, 0.0);
  for (size_t i = 0; i < n1; ++i) {
    for (size_t j = 0; j < n2; ++j) {
      real.set(static_cast<NodeId>(i), static_cast<NodeId>(j),
               similarity.at(static_cast<NodeId>(i + r0),
                             static_cast<NodeId>(j + c0)));
    }
  }
  EmCorrespondenceEngine engine(real, options);
  return engine.Run();
}

}  // namespace prob
}  // namespace ems
