// Soft correspondence results: the posterior assignment distribution the
// EM engine (prob/em_engine.h) converges to, the MAP hard assignment
// derived from it, and the selection helper turning both into filtered
// matches with calibrated confidences (docs/PROBABILISTIC.md).
#pragma once

#include <vector>

#include "core/similarity_matrix.h"

namespace ems {
namespace prob {

/// Convergence record of one EM run (gemmulem-style rtole contract).
struct EmStats {
  int iterations = 0;
  bool converged = false;
  /// Max-abs posterior change of the last completed iteration.
  double final_delta = 0.0;
  /// Mean normalized row entropy in [0, 1] over the final posterior.
  double mean_entropy = 0.0;
};

/// Posterior correspondence distribution over the REAL nodes of the two
/// final graphs. Artificial rows/columns are dropped before the EM run:
/// row i / column j here address graph node i + off1 / j + off2 where
/// off is 1 when that graph carries an artificial event — the same
/// convention as SimilarityMatrix::RealSubmatrix and the selection
/// strategies.
struct SoftMatchResult {
  /// n1 x n2 responsibilities r(i, j) = P(row i corresponds to column j).
  /// Every row sums to 1 within 1e-9 (the E-step ends with an exact row
  /// normalization); a row whose likelihood underflowed entirely falls
  /// back to the uniform distribution, preserving the invariant.
  SimilarityMatrix posterior;

  /// Final column priors (M-step estimate of each right-side node's
  /// match propensity), length n2, sums to 1.
  std::vector<double> column_prior;

  /// MAP hard assignment: the maximum-total-posterior 1:1 matching via
  /// MaxWeightAssignment (src/assignment/hungarian.h), so the EM path
  /// reproduces the Hungarian tie-break order exactly; -1 = unassigned.
  std::vector<int> map_assignment;

  /// Per-row argmax column (Soar's map_mode idiom; first column on ties).
  std::vector<int> mode;

  /// Per-row normalized entropy in [0, 1]: 0 = deterministic assignment,
  /// 1 = uniform over all columns. The calibration signal — dislocated
  /// events (true partner absent) surface as high-entropy rows.
  std::vector<double> row_entropy;

  EmStats stats;

  bool empty() const { return posterior.rows() == 0 || posterior.cols() == 0; }

  /// Posterior mass of pair (row, col); 0 when out of range.
  double Confidence(int row, int col) const;
};

/// One selected correspondence with its calibrated confidence.
struct SoftMatch {
  int row;
  int col;
  /// Underlying EMS similarity of the pair — comparable with the hard
  /// path's Match::similarity (the posterior is NOT a similarity).
  double similarity;
  /// Posterior mass r(row, col).
  double confidence;
};

/// Turns the MAP assignment into matches: keeps (i, map[i]) pairs whose
/// underlying similarity reaches `min_similarity` (the hard path's
/// contract) AND whose posterior reaches `min_confidence` (the
/// calibration filter that drops ambiguous/dislocated rows).
/// `similarity` is the real-node submatrix the posterior was built from.
std::vector<SoftMatch> SelectFromPosterior(
    const SoftMatchResult& soft,
    const std::vector<std::vector<double>>& similarity, double min_similarity,
    double min_confidence);

}  // namespace prob
}  // namespace ems
