#include "prob/soft_match.h"

namespace ems {
namespace prob {

double SoftMatchResult::Confidence(int row, int col) const {
  if (row < 0 || col < 0 || static_cast<size_t>(row) >= posterior.rows() ||
      static_cast<size_t>(col) >= posterior.cols()) {
    return 0.0;
  }
  return posterior.at(row, col);
}

std::vector<SoftMatch> SelectFromPosterior(
    const SoftMatchResult& soft,
    const std::vector<std::vector<double>>& similarity, double min_similarity,
    double min_confidence) {
  std::vector<SoftMatch> out;
  for (size_t i = 0; i < soft.map_assignment.size(); ++i) {
    const int j = soft.map_assignment[i];
    if (j < 0) continue;
    const double confidence = soft.Confidence(static_cast<int>(i), j);
    if (confidence < min_confidence) continue;
    double sim = 0.0;
    if (i < similarity.size() && static_cast<size_t>(j) < similarity[i].size()) {
      sim = similarity[i][static_cast<size_t>(j)];
    }
    if (sim < min_similarity) continue;
    out.push_back({static_cast<int>(i), j, sim, confidence});
  }
  return out;
}

}  // namespace prob
}  // namespace ems
