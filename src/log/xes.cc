#include "log/xes.h"

#include <fstream>
#include <sstream>

#include "log/xml_scanner.h"
#include "util/string_util.h"

namespace ems {

Result<EventLog> ReadXes(std::istream& input) {
  XmlScanner scanner(input);
  EventLog log;
  bool in_log = false;
  bool in_trace = false;
  bool in_event = false;
  std::vector<std::string> current_trace;
  std::string current_event_name;
  bool saw_log = false;

  while (true) {
    auto tag_result = scanner.Next();
    if (!tag_result.ok()) {
      if (tag_result.status().IsNotFound()) break;  // clean EOF
      return tag_result.status();
    }
    const XmlScanner::Tag& tag = *tag_result;
    if (tag.name == "log") {
      if (tag.closing) in_log = false;
      else {
        in_log = true;
        saw_log = true;
      }
    } else if (tag.name == "trace" && in_log) {
      if (tag.closing) {
        log.AddTrace(current_trace);
        current_trace.clear();
        in_trace = false;
      } else if (tag.self_closing) {
        log.AddTrace({});
      } else {
        in_trace = true;
        current_trace.clear();
      }
    } else if (tag.name == "event" && in_trace) {
      if (tag.closing) {
        if (current_event_name.empty()) {
          return Status::ParseError("event without concept:name");
        }
        current_trace.push_back(current_event_name);
        in_event = false;
        current_event_name.clear();
      } else if (tag.self_closing) {
        // <event/> with no attributes: nothing to record.
      } else {
        in_event = true;
        current_event_name.clear();
      }
    } else if (tag.name == "string" && in_event && !tag.closing) {
      auto key_it = tag.attrs.find("key");
      auto val_it = tag.attrs.find("value");
      if (key_it != tag.attrs.end() && val_it != tag.attrs.end() &&
          key_it->second == "concept:name") {
        current_event_name = val_it->second;
      }
    }
  }
  if (!saw_log) return Status::ParseError("no <log> element found");
  return log;
}

Result<EventLog> ReadXesFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open '" + path + "' for reading");
  return ReadXes(in);
}

Status WriteXes(const EventLog& log, std::ostream& output) {
  output << "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n";
  output << "<log xes.version=\"1.0\" xmlns=\"http://www.xes-standard.org/\">\n";
  output << "  <extension name=\"Concept\" prefix=\"concept\" "
            "uri=\"http://www.xes-standard.org/concept.xesext\"/>\n";
  for (size_t i = 0; i < log.NumTraces(); ++i) {
    output << "  <trace>\n";
    output << "    <string key=\"concept:name\" value=\"case_" << i
           << "\"/>\n";
    for (EventId v : log.trace(i)) {
      output << "    <event>\n";
      output << "      <string key=\"concept:name\" value=\""
             << XmlEscape(log.EventName(v)) << "\"/>\n";
      output << "    </event>\n";
    }
    output << "  </trace>\n";
  }
  output << "</log>\n";
  if (!output) return Status::IOError("write failed");
  return Status::OK();
}

Status WriteXesFile(const EventLog& log, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open '" + path + "' for writing");
  return WriteXes(log, out);
}

}  // namespace ems
