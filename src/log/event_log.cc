#include "log/event_log.h"

namespace ems {

EventId EventLog::AddEvent(std::string_view name) {
  auto it = index_.find(std::string(name));
  if (it != index_.end()) return it->second;
  EventId id = static_cast<EventId>(names_.size());
  names_.emplace_back(name);
  index_.emplace(names_.back(), id);
  return id;
}

EventId EventLog::FindEvent(std::string_view name) const {
  auto it = index_.find(std::string(name));
  return it == index_.end() ? kInvalidEvent : it->second;
}

void EventLog::AddTrace(const std::vector<std::string>& names) {
  Trace t;
  t.reserve(names.size());
  for (const auto& n : names) t.push_back(AddEvent(n));
  traces_.push_back(std::move(t));
}

AppendDelta EventLog::AppendTraces(
    const std::vector<std::vector<std::string>>& batch) {
  AppendDelta delta;
  delta.first_new_trace = traces_.size();
  delta.first_new_event = names_.size();
  delta.appended_traces = batch.size();
  traces_.reserve(traces_.size() + batch.size());
  for (const auto& names : batch) AddTrace(names);
  delta.new_events = names_.size() - delta.first_new_event;
  return delta;
}

void EventLog::AddTraceIds(Trace trace) {
#ifndef NDEBUG
  for (EventId id : trace) {
    EMS_DCHECK(id >= 0 && static_cast<size_t>(id) < names_.size());
  }
#endif
  traces_.push_back(std::move(trace));
}

size_t EventLog::TotalOccurrences() const {
  size_t total = 0;
  for (const auto& t : traces_) total += t.size();
  return total;
}

Status EventLog::RenameEvent(EventId id, std::string_view name) {
  if (id < 0 || static_cast<size_t>(id) >= names_.size()) {
    return Status::OutOfRange("RenameEvent: invalid event id");
  }
  std::string new_name(name);
  auto it = index_.find(new_name);
  if (it != index_.end()) {
    if (it->second == id) return Status::OK();
    return Status::InvalidArgument("RenameEvent: name '" + new_name +
                                   "' already names a different event");
  }
  index_.erase(names_[static_cast<size_t>(id)]);
  names_[static_cast<size_t>(id)] = new_name;
  index_.emplace(std::move(new_name), id);
  return Status::OK();
}

EventLog EventLog::TransformTraces(const std::vector<Trace>& new_traces,
                                   std::vector<EventId>* id_map) const {
  EventLog out;
  std::vector<EventId> map(names_.size(), kInvalidEvent);
  for (const Trace& t : new_traces) {
    Trace mapped;
    mapped.reserve(t.size());
    for (EventId old_id : t) {
      EMS_DCHECK(old_id >= 0 && static_cast<size_t>(old_id) < names_.size());
      EventId& slot = map[static_cast<size_t>(old_id)];
      if (slot == kInvalidEvent) {
        slot = out.AddEvent(names_[static_cast<size_t>(old_id)]);
      }
      mapped.push_back(slot);
    }
    out.AddTraceIds(std::move(mapped));
  }
  if (id_map != nullptr) *id_map = std::move(map);
  return out;
}

}  // namespace ems
