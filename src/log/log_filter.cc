#include "log/log_filter.h"

#include <algorithm>

#include "log/log_stats.h"

namespace ems {

EventLog FilterByTraceLength(const EventLog& log, size_t min_length,
                             size_t max_length) {
  std::vector<Trace> kept;
  for (const Trace& t : log.traces()) {
    if (t.size() >= min_length && t.size() <= max_length) kept.push_back(t);
  }
  return log.TransformTraces(kept, nullptr);
}

std::vector<TraceVariant> TraceVariants(const EventLog& log) {
  std::map<std::vector<std::string>, size_t> counts;
  for (const Trace& t : log.traces()) {
    std::vector<std::string> names;
    names.reserve(t.size());
    for (EventId e : t) names.push_back(log.EventName(e));
    ++counts[names];
  }
  std::vector<TraceVariant> variants;
  variants.reserve(counts.size());
  for (auto& [activities, count] : counts) {
    variants.push_back(TraceVariant{activities, count});
  }
  std::sort(variants.begin(), variants.end(),
            [](const TraceVariant& a, const TraceVariant& b) {
              if (a.count != b.count) return a.count > b.count;
              return a.activities < b.activities;
            });
  return variants;
}

EventLog KeepTopVariants(const EventLog& log, size_t k) {
  std::vector<TraceVariant> variants = TraceVariants(log);
  if (k < variants.size()) variants.resize(k);
  std::set<std::vector<std::string>> keep;
  for (const TraceVariant& v : variants) keep.insert(v.activities);
  std::vector<Trace> kept;
  for (const Trace& t : log.traces()) {
    std::vector<std::string> names;
    names.reserve(t.size());
    for (EventId e : t) names.push_back(log.EventName(e));
    if (keep.count(names)) kept.push_back(t);
  }
  return log.TransformTraces(kept, nullptr);
}

EventLog ProjectOntoEvents(const EventLog& log,
                           const std::set<std::string>& keep) {
  std::vector<bool> keep_id(log.NumEvents(), false);
  for (EventId e = 0; e < static_cast<EventId>(log.NumEvents()); ++e) {
    keep_id[static_cast<size_t>(e)] = keep.count(log.EventName(e)) > 0;
  }
  std::vector<Trace> projected;
  projected.reserve(log.NumTraces());
  for (const Trace& t : log.traces()) {
    Trace copy;
    for (EventId e : t) {
      if (keep_id[static_cast<size_t>(e)]) copy.push_back(e);
    }
    projected.push_back(std::move(copy));
  }
  return log.TransformTraces(projected, nullptr);
}

EventLog FilterRareEvents(const EventLog& log, double min_fraction) {
  LogStats stats(log);
  std::set<std::string> keep;
  for (EventId e = 0; e < static_cast<EventId>(log.NumEvents()); ++e) {
    if (stats.EventFrequency(e) >= min_fraction) {
      keep.insert(log.EventName(e));
    }
  }
  return ProjectOntoEvents(log, keep);
}

LogSummary Summarize(const EventLog& log) {
  LogSummary s;
  s.num_traces = log.NumTraces();
  s.num_events = log.NumEvents();
  s.total_occurrences = log.TotalOccurrences();
  s.num_variants = TraceVariants(log).size();
  if (!log.traces().empty()) {
    s.min_trace_length = log.trace(0).size();
    for (const Trace& t : log.traces()) {
      s.min_trace_length = std::min(s.min_trace_length, t.size());
      s.max_trace_length = std::max(s.max_trace_length, t.size());
    }
    s.mean_trace_length = static_cast<double>(s.total_occurrences) /
                          static_cast<double>(s.num_traces);
  }
  return s;
}

}  // namespace ems
