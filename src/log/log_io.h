// Plain-text event-log serialization.
//
// Two line-oriented formats are supported:
//  * "trace" format: one trace per line, event names separated by a
//    delimiter (default ';'). Blank lines and '#' comments are skipped.
//  * CSV format: header `case,activity` (extra columns ignored); rows are
//    grouped by case id in order of appearance, preserving row order within
//    a case — the standard minimal process-mining CSV.
#pragma once

#include <iosfwd>
#include <string>

#include "log/event_log.h"
#include "util/status.h"

namespace ems {

/// Parses the trace-per-line format from `input`.
Result<EventLog> ReadTraceFormat(std::istream& input, char delim = ';');

/// Parses the trace-per-line format from the file at `path`.
Result<EventLog> ReadTraceFile(const std::string& path, char delim = ';');

/// Writes the trace-per-line format to `output`.
Status WriteTraceFormat(const EventLog& log, std::ostream& output,
                        char delim = ';');

/// Writes the trace-per-line format to the file at `path`.
Status WriteTraceFile(const EventLog& log, const std::string& path,
                      char delim = ';');

/// Parses `case,activity` CSV from `input`. The first line must be a
/// header containing (at least) case and activity columns, identified by
/// name (case/case_id/caseid, activity/event/concept:name,
/// case-insensitive).
Result<EventLog> ReadCsv(std::istream& input);

/// Parses `case,activity` CSV from the file at `path`.
Result<EventLog> ReadCsvFile(const std::string& path);

/// Writes `case,activity` CSV with synthetic case ids `c<i>`.
Status WriteCsv(const EventLog& log, std::ostream& output);

}  // namespace ems
