// Frequency statistics over an event log: the raw material of the
// dependency graph (Definition 1). Normalized frequencies are fractions of
// traces, matching the paper exactly:
//   f(v)      = fraction of traces in L that contain v
//   f(v1,v2)  = fraction of traces in which v1 v2 occur consecutively at
//               least once
#pragma once

#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "log/event_log.h"

namespace ems {

/// \brief Per-log occurrence and direct-follows statistics.
class LogStats {
 public:
  /// Computes statistics over `log` in a single pass.
  explicit LogStats(const EventLog& log);

  /// Fraction of traces containing event `v` (f(v) in Definition 1).
  double EventFrequency(EventId v) const;

  /// Fraction of traces where `a` is immediately followed by `b` at least
  /// once (f(a,b) in Definition 1).
  double FollowsFrequency(EventId a, EventId b) const;

  /// Number of traces containing `v`.
  size_t EventTraceCount(EventId v) const;

  /// Number of traces where `a b` occur consecutively at least once.
  size_t FollowsTraceCount(EventId a, EventId b) const;

  /// Total occurrences of `v` across all traces (may exceed trace count).
  size_t EventOccurrences(EventId v) const;

  /// Total occurrences of the bigram `a b` across all traces.
  size_t FollowsOccurrences(EventId a, EventId b) const;

  /// All direct-follows pairs with a nonzero trace count.
  const std::map<std::pair<EventId, EventId>, size_t>& follows_trace_counts()
      const {
    return follows_trace_counts_;
  }

  size_t num_traces() const { return num_traces_; }
  size_t num_events() const { return event_trace_counts_.size(); }

  /// P(next = b | current = a): conditional direct-follows probability,
  /// based on occurrence counts (used by the Markov-style baselines).
  double ConditionalFollows(EventId a, EventId b) const;

 private:
  size_t num_traces_ = 0;
  std::vector<size_t> event_trace_counts_;
  std::vector<size_t> event_occurrences_;
  std::map<std::pair<EventId, EventId>, size_t> follows_trace_counts_;
  std::map<std::pair<EventId, EventId>, size_t> follows_occurrences_;
};

}  // namespace ems
