#include "log/mxml.h"

#include <fstream>

#include "log/xml_scanner.h"
#include "util/string_util.h"

namespace ems {

Result<EventLog> ReadMxml(std::istream& input) {
  XmlScanner scanner(input);
  EventLog log;
  bool saw_workflow_log = false;
  bool in_instance = false;
  bool in_entry = false;
  bool in_element = false;
  bool in_event_type = false;
  std::vector<std::string> current_trace;
  std::string current_activity;
  std::string current_event_type;

  while (true) {
    auto tag_result = scanner.Next();
    if (!tag_result.ok()) {
      if (tag_result.status().IsNotFound()) break;
      return tag_result.status();
    }
    const XmlScanner::Tag& tag = *tag_result;

    // Text content arrives attached to the tag FOLLOWING it.
    if (in_element && tag.name == "WorkflowModelElement" && tag.closing) {
      current_activity = tag.preceding_text;
      in_element = false;
      continue;
    }
    if (in_event_type && tag.name == "EventType" && tag.closing) {
      current_event_type = ToLower(tag.preceding_text);
      in_event_type = false;
      continue;
    }

    if (tag.name == "WorkflowLog") {
      if (!tag.closing) saw_workflow_log = true;
    } else if (tag.name == "ProcessInstance") {
      if (tag.closing) {
        log.AddTrace(current_trace);
        current_trace.clear();
        in_instance = false;
      } else if (tag.self_closing) {
        log.AddTrace({});
      } else {
        in_instance = true;
        current_trace.clear();
      }
    } else if (tag.name == "AuditTrailEntry" && in_instance) {
      if (tag.closing) {
        if (current_activity.empty()) {
          return Status::ParseError(
              "AuditTrailEntry without WorkflowModelElement");
        }
        // Keep complete events (and entries that never specify a type).
        if (current_event_type.empty() || current_event_type == "complete") {
          current_trace.push_back(current_activity);
        }
        current_activity.clear();
        current_event_type.clear();
        in_entry = false;
      } else if (!tag.self_closing) {
        in_entry = true;
        current_activity.clear();
        current_event_type.clear();
      }
    } else if (tag.name == "WorkflowModelElement" && in_entry &&
               !tag.closing && !tag.self_closing) {
      in_element = true;
    } else if (tag.name == "EventType" && in_entry && !tag.closing &&
               !tag.self_closing) {
      in_event_type = true;
    }
  }
  if (!saw_workflow_log) {
    return Status::ParseError("no <WorkflowLog> element found");
  }
  return log;
}

Result<EventLog> ReadMxmlFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open '" + path + "' for reading");
  return ReadMxml(in);
}

Status WriteMxml(const EventLog& log, std::ostream& output) {
  output << "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n";
  output << "<WorkflowLog>\n";
  output << "  <Process id=\"process0\">\n";
  for (size_t i = 0; i < log.NumTraces(); ++i) {
    output << "    <ProcessInstance id=\"case_" << i << "\">\n";
    for (EventId v : log.trace(i)) {
      output << "      <AuditTrailEntry>\n";
      output << "        <WorkflowModelElement>"
             << XmlEscape(log.EventName(v)) << "</WorkflowModelElement>\n";
      output << "        <EventType>complete</EventType>\n";
      output << "      </AuditTrailEntry>\n";
    }
    output << "    </ProcessInstance>\n";
  }
  output << "  </Process>\n";
  output << "</WorkflowLog>\n";
  if (!output) return Status::IOError("write failed");
  return Status::OK();
}

Status WriteMxmlFile(const EventLog& log, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open '" + path + "' for writing");
  return WriteMxml(log, out);
}

}  // namespace ems
