#include "log/log_io.h"

#include <fstream>
#include <sstream>
#include <unordered_map>

#include "util/string_util.h"

namespace ems {

Result<EventLog> ReadTraceFormat(std::istream& input, char delim) {
  EventLog log;
  std::string line;
  size_t line_no = 0;
  while (std::getline(input, line)) {
    ++line_no;
    std::string_view trimmed = Trim(line);
    if (trimmed.empty() || trimmed.front() == '#') continue;
    std::vector<std::string> fields = Split(trimmed, delim);
    std::vector<std::string> names;
    names.reserve(fields.size());
    for (auto& f : fields) {
      std::string_view name = Trim(f);
      if (name.empty()) {
        return Status::ParseError("empty event name at line " +
                                  std::to_string(line_no));
      }
      names.emplace_back(name);
    }
    log.AddTrace(names);
  }
  return log;
}

Result<EventLog> ReadTraceFile(const std::string& path, char delim) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open '" + path + "' for reading");
  return ReadTraceFormat(in, delim);
}

Status WriteTraceFormat(const EventLog& log, std::ostream& output,
                        char delim) {
  for (const Trace& t : log.traces()) {
    for (size_t i = 0; i < t.size(); ++i) {
      if (i > 0) output << delim;
      output << log.EventName(t[i]);
    }
    output << '\n';
  }
  if (!output) return Status::IOError("write failed");
  return Status::OK();
}

Status WriteTraceFile(const EventLog& log, const std::string& path,
                      char delim) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open '" + path + "' for writing");
  return WriteTraceFormat(log, out, delim);
}

namespace {

// Minimal CSV field splitter handling double-quoted fields with "" escapes.
Result<std::vector<std::string>> SplitCsvRow(const std::string& line,
                                             size_t line_no) {
  std::vector<std::string> fields;
  std::string cur;
  bool in_quotes = false;
  for (size_t i = 0; i < line.size(); ++i) {
    char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          cur.push_back('"');
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        cur.push_back(c);
      }
    } else if (c == '"') {
      in_quotes = true;
    } else if (c == ',') {
      fields.push_back(std::move(cur));
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  if (in_quotes) {
    return Status::ParseError("unterminated quote at line " +
                              std::to_string(line_no));
  }
  fields.push_back(std::move(cur));
  return fields;
}

bool IsCaseHeader(const std::string& h) {
  std::string l = ToLower(Trim(h));
  return l == "case" || l == "case_id" || l == "caseid" || l == "case id" ||
         l == "trace";
}

bool IsActivityHeader(const std::string& h) {
  std::string l = ToLower(Trim(h));
  return l == "activity" || l == "event" || l == "concept:name" ||
         l == "task" || l == "name";
}

}  // namespace

Result<EventLog> ReadCsv(std::istream& input) {
  std::string line;
  if (!std::getline(input, line)) {
    return Status::ParseError("empty CSV input");
  }
  EMS_ASSIGN_OR_RETURN(std::vector<std::string> header, SplitCsvRow(line, 1));
  int case_col = -1;
  int act_col = -1;
  for (size_t i = 0; i < header.size(); ++i) {
    if (case_col < 0 && IsCaseHeader(header[i])) case_col = static_cast<int>(i);
    if (act_col < 0 && IsActivityHeader(header[i])) act_col = static_cast<int>(i);
  }
  if (case_col < 0 || act_col < 0) {
    return Status::ParseError(
        "CSV header must contain case and activity columns");
  }

  // Group rows by case id, preserving first-appearance order of cases and
  // row order within each case.
  std::vector<std::string> case_order;
  std::unordered_map<std::string, std::vector<std::string>> by_case;
  size_t line_no = 1;
  while (std::getline(input, line)) {
    ++line_no;
    if (Trim(line).empty()) continue;
    EMS_ASSIGN_OR_RETURN(std::vector<std::string> row,
                         SplitCsvRow(line, line_no));
    size_t needed = static_cast<size_t>(std::max(case_col, act_col)) + 1;
    if (row.size() < needed) {
      return Status::ParseError("too few columns at line " +
                                std::to_string(line_no));
    }
    std::string case_id(Trim(row[static_cast<size_t>(case_col)]));
    std::string activity(Trim(row[static_cast<size_t>(act_col)]));
    if (activity.empty()) {
      return Status::ParseError("empty activity at line " +
                                std::to_string(line_no));
    }
    auto [it, inserted] = by_case.try_emplace(case_id);
    if (inserted) case_order.push_back(case_id);
    it->second.push_back(std::move(activity));
  }

  EventLog log;
  for (const std::string& cid : case_order) log.AddTrace(by_case.at(cid));
  return log;
}

Result<EventLog> ReadCsvFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open '" + path + "' for reading");
  return ReadCsv(in);
}

namespace {

std::string CsvQuote(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) return s;
  std::string out = "\"";
  for (char c : s) {
    if (c == '"') out += "\"\"";
    else out.push_back(c);
  }
  out.push_back('"');
  return out;
}

}  // namespace

Status WriteCsv(const EventLog& log, std::ostream& output) {
  output << "case,activity\n";
  for (size_t i = 0; i < log.NumTraces(); ++i) {
    for (EventId v : log.trace(i)) {
      output << 'c' << i << ',' << CsvQuote(log.EventName(v)) << '\n';
    }
  }
  if (!output) return Status::IOError("write failed");
  return Status::OK();
}

}  // namespace ems
