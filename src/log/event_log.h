// Event log substrate: events, traces, and multiset logs (Section 2 of the
// paper). Event names are interned per log into dense EventId integers so
// that graph construction and similarity computation index arrays directly.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "util/status.h"

namespace ems {

/// Dense per-log identifier of an event class (an activity name).
using EventId = int32_t;

/// Sentinel for "no event".
inline constexpr EventId kInvalidEvent = -1;

/// A trace is a finite sequence of events from the log's vocabulary.
using Trace = std::vector<EventId>;

/// \brief Delta descriptor of one EventLog::AppendTraces call.
///
/// Identifies the appended suffix so downstream incremental structures
/// (StreamingDependencyGraph, DependencyGraphBuilder::Append) can fold in
/// exactly the new traces instead of rescanning the log.
struct AppendDelta {
  size_t first_new_trace = 0;  ///< Trace count before the append.
  size_t first_new_event = 0;  ///< Vocabulary size before the append.
  size_t appended_traces = 0;  ///< Traces added by this call.
  size_t new_events = 0;       ///< Names interned by this call.
};

/// \brief A multi-set of traces over an interned event vocabulary.
///
/// An event log L is a multiset of traces from V* (paper, Section 2). The
/// same trace may occur many times; we store each occurrence so frequency
/// statistics (Definition 1) are straightforward fractions of traces.
class EventLog {
 public:
  EventLog() = default;

  /// Interns `name`, returning its EventId (existing or fresh).
  EventId AddEvent(std::string_view name);

  /// Returns the EventId for `name`, or kInvalidEvent if absent.
  EventId FindEvent(std::string_view name) const;

  /// The name of event `id`. Requires a valid id.
  const std::string& EventName(EventId id) const {
    EMS_DCHECK(id >= 0 && static_cast<size_t>(id) < names_.size());
    return names_[static_cast<size_t>(id)];
  }

  /// Number of distinct event classes.
  size_t NumEvents() const { return names_.size(); }

  /// Appends a trace given by event names, interning as needed.
  void AddTrace(const std::vector<std::string>& names);

  /// Appends a batch of traces in place, interning new names at the end
  /// of the vocabulary: existing EventIds, trace indices, and names are
  /// all preserved (the appended log is a strict extension — the prefix
  /// property incremental consumers rely on). Returns the delta.
  AppendDelta AppendTraces(
      const std::vector<std::vector<std::string>>& batch);

  /// Appends a trace of already-interned ids. Ids must be valid.
  void AddTraceIds(Trace trace);

  /// Number of traces (multiset cardinality).
  size_t NumTraces() const { return traces_.size(); }

  const Trace& trace(size_t i) const {
    EMS_DCHECK(i < traces_.size());
    return traces_[i];
  }
  const std::vector<Trace>& traces() const { return traces_; }

  /// All event names indexed by EventId.
  const std::vector<std::string>& event_names() const { return names_; }

  /// Total number of event occurrences across all traces.
  size_t TotalOccurrences() const;

  /// Renames event `id` to `name`. The new name must not collide with an
  /// existing different event.
  Status RenameEvent(EventId id, std::string_view name);

  /// Returns a copy of this log whose traces have been transformed by `fn`
  /// (e.g., truncation). The vocabulary is re-interned so events that no
  /// longer occur are dropped; returns the mapping old-id -> new-id
  /// (kInvalidEvent for dropped events) through `id_map` if non-null.
  EventLog TransformTraces(
      const std::vector<Trace>& new_traces,
      std::vector<EventId>* id_map) const;

 private:
  std::vector<std::string> names_;
  std::unordered_map<std::string, EventId> index_;
  std::vector<Trace> traces_;
};

}  // namespace ems
