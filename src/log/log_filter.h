// Log filtering and variant analysis: the preprocessing a production
// deployment runs before matching — dropping degenerate traces, keeping
// the dominant behavior, projecting onto an event subset, and summarizing
// trace variants.
#pragma once

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "log/event_log.h"

namespace ems {

/// Keeps traces whose length is within [min_length, max_length].
EventLog FilterByTraceLength(const EventLog& log, size_t min_length,
                             size_t max_length);

/// One distinct trace shape and how often it occurs.
struct TraceVariant {
  std::vector<std::string> activities;
  size_t count = 0;
};

/// Distinct trace variants, most frequent first (ties broken by the
/// lexicographically smaller activity sequence, so the order is stable).
std::vector<TraceVariant> TraceVariants(const EventLog& log);

/// Keeps only the traces belonging to the `k` most frequent variants.
/// k >= number of variants keeps everything.
EventLog KeepTopVariants(const EventLog& log, size_t k);

/// Projects every trace onto the given activity names: occurrences of
/// all other events are removed. Unknown names are ignored.
EventLog ProjectOntoEvents(const EventLog& log,
                           const std::set<std::string>& keep);

/// Removes events occurring in fewer than `min_fraction` of the traces
/// (rare-activity noise ahead of dependency-graph construction).
EventLog FilterRareEvents(const EventLog& log, double min_fraction);

/// Per-log summary counters.
struct LogSummary {
  size_t num_traces = 0;
  size_t num_events = 0;       // distinct activities
  size_t total_occurrences = 0;
  size_t num_variants = 0;
  size_t min_trace_length = 0;
  size_t max_trace_length = 0;
  double mean_trace_length = 0.0;
};

LogSummary Summarize(const EventLog& log);

}  // namespace ems
