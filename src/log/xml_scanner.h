// Minimal pull-style XML tokenizer shared by the XES and MXML readers:
// yields element-open (with attributes), element-close, and self-closing
// events plus the text content preceding each tag. Comments, processing
// instructions, and doctypes are skipped. This is intentionally not a
// general XML parser — it covers exactly the subset the event-log
// interchange formats use.
#pragma once

#include <iosfwd>
#include <map>
#include <string>

#include "util/status.h"

namespace ems {

class XmlScanner {
 public:
  explicit XmlScanner(std::istream& in) : in_(in) {}

  struct Tag {
    std::string name;
    std::map<std::string, std::string> attrs;
    bool closing = false;       // </name>
    bool self_closing = false;  // <name ... />

    /// Unescaped character data between the previous tag and this one
    /// (trimmed of surrounding whitespace).
    std::string preceding_text;
  };

  /// Returns the next tag, or NotFound at end of input.
  Result<Tag> Next();

  /// Unescapes the five predefined XML entities; unknown entities are
  /// left as literal text.
  static std::string Unescape(const std::string& s);

 private:
  Status SkipUntil(const std::string& terminator);
  Result<Tag> ParseTag(std::string preceding_text);

  std::istream& in_;
};

}  // namespace ems
