// XES-lite: reader/writer for the IEEE XES event-log interchange format,
// restricted to the subset process-mining tools universally rely on —
// <log>/<trace>/<event> nesting with <string key="concept:name" .../>
// activity labels. Attributes other than concept:name are parsed and
// ignored. The writer emits valid XES consumable by ProM/PM4Py.
#pragma once

#include <iosfwd>
#include <string>

#include "log/event_log.h"
#include "util/status.h"

namespace ems {

/// Parses an XES document from `input`.
Result<EventLog> ReadXes(std::istream& input);

/// Parses an XES document from the file at `path`.
Result<EventLog> ReadXesFile(const std::string& path);

/// Writes `log` as an XES document to `output`.
Status WriteXes(const EventLog& log, std::ostream& output);

/// Writes `log` as an XES document to the file at `path`.
Status WriteXesFile(const EventLog& log, const std::string& path);

}  // namespace ems
