// MXML: the legacy ProM event-log interchange format
// (<WorkflowLog><Process><ProcessInstance><AuditTrailEntry>
//  <WorkflowModelElement>activity</WorkflowModelElement>...). Only
// "complete" events (or entries without an EventType) are imported, so
// start/complete lifecycle pairs do not duplicate activities.
#pragma once

#include <iosfwd>
#include <string>

#include "log/event_log.h"
#include "util/status.h"

namespace ems {

/// Parses an MXML document from `input`.
Result<EventLog> ReadMxml(std::istream& input);

/// Parses an MXML document from the file at `path`.
Result<EventLog> ReadMxmlFile(const std::string& path);

/// Writes `log` as an MXML document to `output` (all entries complete).
Status WriteMxml(const EventLog& log, std::ostream& output);

/// Writes `log` as an MXML document to the file at `path`.
Status WriteMxmlFile(const EventLog& log, const std::string& path);

}  // namespace ems
