#include "log/xml_scanner.h"

#include <cctype>
#include <istream>

#include "util/string_util.h"

namespace ems {

Result<XmlScanner::Tag> XmlScanner::Next() {
  std::string text;
  while (true) {
    int c = in_.get();
    if (c == EOF) return Status::NotFound("eof");
    if (c != '<') {
      text.push_back(static_cast<char>(c));
      continue;
    }
    int peek = in_.peek();
    if (peek == '?') {  // processing instruction
      EMS_RETURN_NOT_OK(SkipUntil("?>"));
      continue;
    }
    if (peek == '!') {  // comment, doctype, or CDATA
      in_.get();
      if (in_.peek() == '-') {
        EMS_RETURN_NOT_OK(SkipUntil("-->"));
      } else {
        EMS_RETURN_NOT_OK(SkipUntil(">"));
      }
      continue;
    }
    return ParseTag(std::string(Trim(Unescape(text))));
  }
}

Status XmlScanner::SkipUntil(const std::string& terminator) {
  size_t matched = 0;
  int c;
  while ((c = in_.get()) != EOF) {
    if (static_cast<char>(c) == terminator[matched]) {
      if (++matched == terminator.size()) return Status::OK();
    } else {
      matched = (static_cast<char>(c) == terminator[0]) ? 1 : 0;
    }
  }
  return Status::ParseError("unterminated markup (expected '" + terminator +
                            "')");
}

Result<XmlScanner::Tag> XmlScanner::ParseTag(std::string preceding_text) {
  Tag tag;
  tag.preceding_text = std::move(preceding_text);
  if (in_.peek() == '/') {
    in_.get();
    tag.closing = true;
  }
  int c;
  while ((c = in_.peek()) != EOF && !std::isspace(c) && c != '>' &&
         c != '/') {
    tag.name.push_back(static_cast<char>(in_.get()));
  }
  if (tag.name.empty()) return Status::ParseError("empty element name");
  while (true) {
    while ((c = in_.peek()) != EOF && std::isspace(c)) in_.get();
    c = in_.peek();
    if (c == EOF) return Status::ParseError("unterminated tag");
    if (c == '>') {
      in_.get();
      return tag;
    }
    if (c == '/') {
      in_.get();
      if (in_.get() != '>') return Status::ParseError("malformed '/>'");
      tag.self_closing = true;
      return tag;
    }
    std::string key;
    while ((c = in_.peek()) != EOF && c != '=' && !std::isspace(c)) {
      key.push_back(static_cast<char>(in_.get()));
    }
    while ((c = in_.peek()) != EOF && std::isspace(c)) in_.get();
    if (in_.get() != '=') {
      return Status::ParseError("attribute '" + key + "' missing '='");
    }
    while ((c = in_.peek()) != EOF && std::isspace(c)) in_.get();
    int quote = in_.get();
    if (quote != '"' && quote != '\'') {
      return Status::ParseError("attribute '" + key + "' missing quote");
    }
    std::string value;
    while ((c = in_.get()) != EOF && c != quote) {
      value.push_back(static_cast<char>(c));
    }
    if (c == EOF) return Status::ParseError("unterminated attribute value");
    tag.attrs.emplace(std::move(key), Unescape(value));
  }
}

std::string XmlScanner::Unescape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (size_t i = 0; i < s.size(); ++i) {
    if (s[i] != '&') {
      out.push_back(s[i]);
      continue;
    }
    size_t semi = s.find(';', i);
    if (semi == std::string::npos) {
      out.push_back(s[i]);
      continue;
    }
    std::string ent = s.substr(i + 1, semi - i - 1);
    if (ent == "amp") out.push_back('&');
    else if (ent == "lt") out.push_back('<');
    else if (ent == "gt") out.push_back('>');
    else if (ent == "quot") out.push_back('"');
    else if (ent == "apos") out.push_back('\'');
    else {
      out.push_back('&');
      continue;  // unknown entity: keep literal '&', do not skip
    }
    i = semi;
  }
  return out;
}

}  // namespace ems
