#include "log/log_stats.h"

#include <set>

namespace ems {

LogStats::LogStats(const EventLog& log)
    : num_traces_(log.NumTraces()),
      event_trace_counts_(log.NumEvents(), 0),
      event_occurrences_(log.NumEvents(), 0) {
  std::set<EventId> seen_events;
  std::set<std::pair<EventId, EventId>> seen_pairs;
  for (const Trace& t : log.traces()) {
    seen_events.clear();
    seen_pairs.clear();
    for (size_t i = 0; i < t.size(); ++i) {
      ++event_occurrences_[static_cast<size_t>(t[i])];
      seen_events.insert(t[i]);
      if (i + 1 < t.size()) {
        auto key = std::make_pair(t[i], t[i + 1]);
        ++follows_occurrences_[key];
        seen_pairs.insert(key);
      }
    }
    for (EventId v : seen_events) ++event_trace_counts_[static_cast<size_t>(v)];
    for (const auto& p : seen_pairs) ++follows_trace_counts_[p];
  }
}

double LogStats::EventFrequency(EventId v) const {
  if (num_traces_ == 0) return 0.0;
  return static_cast<double>(EventTraceCount(v)) /
         static_cast<double>(num_traces_);
}

double LogStats::FollowsFrequency(EventId a, EventId b) const {
  if (num_traces_ == 0) return 0.0;
  return static_cast<double>(FollowsTraceCount(a, b)) /
         static_cast<double>(num_traces_);
}

size_t LogStats::EventTraceCount(EventId v) const {
  EMS_DCHECK(v >= 0 && static_cast<size_t>(v) < event_trace_counts_.size());
  return event_trace_counts_[static_cast<size_t>(v)];
}

size_t LogStats::FollowsTraceCount(EventId a, EventId b) const {
  auto it = follows_trace_counts_.find(std::make_pair(a, b));
  return it == follows_trace_counts_.end() ? 0 : it->second;
}

size_t LogStats::EventOccurrences(EventId v) const {
  EMS_DCHECK(v >= 0 && static_cast<size_t>(v) < event_occurrences_.size());
  return event_occurrences_[static_cast<size_t>(v)];
}

size_t LogStats::FollowsOccurrences(EventId a, EventId b) const {
  auto it = follows_occurrences_.find(std::make_pair(a, b));
  return it == follows_occurrences_.end() ? 0 : it->second;
}

double LogStats::ConditionalFollows(EventId a, EventId b) const {
  size_t occ = EventOccurrences(a);
  if (occ == 0) return 0.0;
  return static_cast<double>(FollowsOccurrences(a, b)) /
         static_cast<double>(occ);
}

}  // namespace ems
