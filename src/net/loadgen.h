// Open-loop NDJSON load generator — the measurement core shared by
// tools/ems_loadgen and bench/bench_serve_load. Requests are scheduled
// on a global clock (request k is due at start + k/target_qps) and the
// schedule does not slow down when the service does: senders that fall
// behind send immediately and the lag is reported, so saturation shows
// up as achieved_qps < target plus rising latency instead of being
// hidden by a closed feedback loop.
//
// The generator owns ids: request k carries id "<k>", each connection
// records send timestamps per id, and a reader thread per connection
// matches response lines back by id to produce a latency distribution
// plus per-status counts (ok / error / overloaded / draining).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "util/status.h"

namespace ems {
namespace net {

/// Builds the request line for global sequence `seq`; the line MUST
/// carry `id` as its "id" field (the reader correlates responses by it)
/// and MUST NOT contain '\n'.
using MakeLineFn = std::function<std::string(uint64_t seq,
                                             const std::string& id)>;

/// Load profile.
struct LoadGenOptions {
  /// Target endpoint: exactly one of `tcp` ("host:port") or
  /// `socket_path` must be non-empty.
  std::string tcp;
  std::string socket_path;

  /// Concurrent connections; requests round-robin by whichever sender
  /// claims the next schedule slot first.
  int connections = 4;

  /// Open-loop arrival rate across all connections.
  double target_qps = 200.0;

  /// Generation window; senders stop claiming slots once it elapses.
  double duration_seconds = 5.0;

  /// Hard cap on requests (0 = duration alone governs).
  uint64_t max_requests = 0;

  /// Request factory. Null sends {"id":ID,"cmd":"health"} probes.
  MakeLineFn make_line;
};

/// What happened, aggregated across connections.
struct LoadGenReport {
  uint64_t sent = 0;
  uint64_t responses = 0;
  uint64_t send_errors = 0;

  /// Response lines that failed to parse or carried an unknown id.
  uint64_t protocol_errors = 0;

  /// Responses by "status" value ("ok", "error", "overloaded", ...).
  std::map<std::string, uint64_t> status_counts;

  double elapsed_seconds = 0.0;
  double achieved_qps = 0.0;

  /// Worst schedule slip: how far (seconds) a send lagged its slot.
  double max_lag_seconds = 0.0;

  /// Send-to-response latencies, sorted ascending (milliseconds).
  std::vector<double> latencies_ms;

  /// Nearest-rank quantile over latencies_ms (0 when empty).
  double LatencyQuantileMs(double q) const;
  double MeanLatencyMs() const;

  uint64_t StatusCount(const std::string& status) const {
    auto it = status_counts.find(status);
    return it == status_counts.end() ? 0 : it->second;
  }
};

/// Runs the profile to completion. Fails only when no connection could
/// be established or the options are invalid; per-request failures are
/// reported in the counts.
Result<LoadGenReport> RunLoadGen(const LoadGenOptions& options);

}  // namespace net
}  // namespace ems
