// Consistent-hash ring with virtual nodes — the shard router's placement
// function. Every shard owns `vnodes_per_shard` points on a 64-bit ring
// (XXH64 of "shard-<i>/vnode-<j>", so placement is a pure function of
// the shard count and vnode count: deterministic across processes and
// restarts); a key routes to the shard owning the first point at or
// after the key's own hash, wrapping at the top.
//
// Virtual nodes are what make the two properties the service relies on
// hold together:
//   * balance — with ~64 points per shard the arc lengths average out,
//     so shard loads stay within a few percent of uniform;
//   * minimal remapping — growing N -> N+1 only inserts the new shard's
//     points, so exactly the keys falling on the stolen arcs move
//     (~1/(N+1) of them) while every other key keeps its shard, and the
//     per-shard warm caches it implies stay warm.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

namespace ems {
namespace net {

/// Ring configuration.
struct HashRingOptions {
  /// Number of shards (>= 1; lower values clamp to 1).
  int num_shards = 1;

  /// Ring points per shard. More points -> better balance, slower
  /// construction; lookup cost is O(log(num_shards * vnodes)) either
  /// way. The default keeps shard shares within a few percent.
  int vnodes_per_shard = 64;
};

/// \brief Deterministic consistent-hash ring over integer shard ids.
///
/// Immutable after construction and safe to share across threads.
class HashRing {
 public:
  explicit HashRing(const HashRingOptions& options);
  HashRing(int num_shards, int vnodes_per_shard = 64)
      : HashRing(HashRingOptions{num_shards, vnodes_per_shard}) {}

  /// The shard in [0, num_shards) owning `key`. Keys are arbitrary
  /// bytes; the router uses the canonical path of a job's first log.
  int ShardFor(std::string_view key) const;

  int num_shards() const { return num_shards_; }
  int vnodes_per_shard() const { return vnodes_per_shard_; }

  /// Ring points (for diagnostics/tests); sorted by position.
  size_t num_points() const { return points_.size(); }

 private:
  struct Point {
    uint64_t position;
    int shard;
  };

  std::vector<Point> points_;  // sorted by (position, shard)
  int num_shards_;
  int vnodes_per_shard_;
};

}  // namespace net
}  // namespace ems
