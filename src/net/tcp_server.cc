#include "net/tcp_server.h"

#ifndef _WIN32
#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>
#endif

#include <cerrno>
#include <condition_variable>
#include <cstring>

#include "net/wire.h"
#include "obs/context.h"
#include "util/log.h"

namespace ems {
namespace net {

// One accepted client: the socket, the response-side serialization, and
// the pending-emit accounting that keeps the socket open until every
// handled line was answered.
struct TcpServer::Connection {
  int fd = -1;
  std::thread thread;
  std::atomic<bool> finished{false};

  std::mutex write_mu;
  bool dead = false;  // write failed; swallow further emits

  std::mutex pending_mu;
  std::condition_variable pending_cv;
  size_t pending = 0;
};

TcpServer::TcpServer(const TcpServerOptions& options, LineHandler* handler)
    : options_(options), handler_(handler) {}

TcpServer::~TcpServer() {
  RequestDrain();
  Wait();
#ifndef _WIN32
  if (wake_pipe_[0] >= 0) ::close(wake_pipe_[0]);
  if (wake_pipe_[1] >= 0) ::close(wake_pipe_[1]);
#endif
}

Status TcpServer::Start() {
#ifdef _WIN32
  return Status::NotImplemented("TcpServer is POSIX-only");
#else
  if (listen_fd_ >= 0) return Status::Internal("TcpServer already started");
  if (::pipe(wake_pipe_) != 0) {
    return Status::IOError(std::string("pipe: ") + std::strerror(errno));
  }
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::IOError(std::string("socket: ") + std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(options_.port));
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::InvalidArgument("bad IPv4 address '" + options_.host +
                                   "'");
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
          0 ||
      ::listen(listen_fd_, options_.backlog) < 0) {
    const std::string err = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::IOError("bind/listen " + options_.host + ":" +
                           std::to_string(options_.port) + ": " + err);
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) ==
      0) {
    port_ = ntohs(bound.sin_port);
  } else {
    port_ = options_.port;
  }
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
#endif
}

void TcpServer::RequestDrain() {
#ifndef _WIN32
  // Called from signal handlers: one flag store plus one pipe write,
  // both async-signal-safe. The accept loop does the actual teardown.
  bool expected = false;
  if (!draining_.compare_exchange_strong(expected, true)) return;
  if (wake_pipe_[1] >= 0) {
    const char byte = 'd';
    // A full pipe would mean a prior wake is still unread — fine either way.
    (void)!::write(wake_pipe_[1], &byte, 1);
  }
#endif
}

uint64_t TcpServer::Wait() {
  if (accept_thread_.joinable()) accept_thread_.join();
  ReapFinished(/*join_all=*/true);
  std::lock_guard<std::mutex> lock(mu_);
  return connections_served_;
}

void TcpServer::ReapFinished(bool join_all) {
  std::vector<std::shared_ptr<Connection>> to_join;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto it = connections_.begin(); it != connections_.end();) {
      if (join_all || (*it)->finished.load(std::memory_order_acquire)) {
        to_join.push_back(*it);
        it = connections_.erase(it);
      } else {
        ++it;
      }
    }
  }
  for (auto& conn : to_join) {
    if (conn->thread.joinable()) conn->thread.join();
  }
}

void TcpServer::AcceptLoop() {
#ifndef _WIN32
  for (;;) {
    pollfd fds[2];
    fds[0] = {listen_fd_, POLLIN, 0};
    fds[1] = {wake_pipe_[0], POLLIN, 0};
    const int rc = ::poll(fds, 2, -1);
    if (rc < 0) {
      if (errno == EINTR) continue;
      LogError(std::string("poll: ") + std::strerror(errno));
      break;
    }
    if ((fds[1].revents & POLLIN) != 0 || draining()) break;
    if ((fds[0].revents & POLLIN) == 0) continue;
    const int conn_fd = ::accept(listen_fd_, nullptr, nullptr);
    if (conn_fd < 0) {
      if (errno == EINTR) continue;
      LogError(std::string("accept: ") + std::strerror(errno));
      break;
    }
    ReapFinished(/*join_all=*/false);
    ObsIncrement(options_.obs, "net.connections_accepted");

    size_t live;
    {
      std::lock_guard<std::mutex> lock(mu_);
      live = connections_.size();
    }
    if (live >= static_cast<size_t>(options_.max_connections)) {
      // Connection-level load shedding: one explicit line, then close —
      // never a silent drop, never an unbounded thread count.
      ObsIncrement(options_.obs, "net.connections_rejected");
      (void)WriteAll(conn_fd,
                     "{\"status\":\"overloaded\",\"error\":\"connection "
                     "limit reached\"}\n");
      ::close(conn_fd);
      continue;
    }

    int one = 1;
    ::setsockopt(conn_fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    auto conn = std::make_shared<Connection>();
    conn->fd = conn_fd;
    {
      std::lock_guard<std::mutex> lock(mu_);
      connections_.push_back(conn);
      ++connections_served_;
      ObsSetGauge(options_.obs, "net.connections_active",
                  static_cast<double>(connections_.size()));
    }
    conn->thread = std::thread([this, conn] { ServeConnection(conn); });
  }

  // Draining: no new clients; half-close the read side of every live
  // connection so its reader sees EOF once in-flight bytes are consumed.
  // Responses for already-handled lines still flow — SHUT_RD only.
  ::close(listen_fd_);
  listen_fd_ = -1;
  std::vector<std::shared_ptr<Connection>> live;
  {
    std::lock_guard<std::mutex> lock(mu_);
    live = connections_;
  }
  for (auto& conn : live) {
    // write_mu guards fd lifetime: a finished connection has already
    // closed (and reset) its descriptor, and the number may have been
    // reused by an unrelated socket by now.
    std::lock_guard<std::mutex> lock(conn->write_mu);
    if (conn->fd >= 0) ::shutdown(conn->fd, SHUT_RD);
  }
#endif
}

void TcpServer::ServeConnection(std::shared_ptr<Connection> conn) {
#ifndef _WIN32
  FdLineReader reader(conn->fd);
  std::string line;
  while (reader.ReadLine(&line)) {
    if (line.empty()) continue;
    ObsIncrement(options_.obs, "net.lines_read");
    {
      std::lock_guard<std::mutex> lock(conn->pending_mu);
      ++conn->pending;
    }
    ObsContext* obs = options_.obs;
    EmitFn emit = [this, conn, obs](const std::string& response) {
      {
        std::lock_guard<std::mutex> lock(conn->write_mu);
        if (!conn->dead) {
          Status st = WriteAll(conn->fd, response + "\n");
          if (!st.ok()) {
            // The peer is gone; jobs already admitted still run to
            // completion, their responses just have nowhere to go.
            conn->dead = true;
            ObsIncrement(obs, "net.write_errors");
          }
        }
      }
      {
        std::lock_guard<std::mutex> lock(conn->pending_mu);
        --conn->pending;
      }
      conn->pending_cv.notify_all();
    };
    handler_->HandleLine(line, std::move(emit));
  }

  // EOF (client done or drain half-close): every handled line must be
  // answered before the socket closes.
  {
    std::unique_lock<std::mutex> lock(conn->pending_mu);
    conn->pending_cv.wait(lock, [&conn] { return conn->pending == 0; });
  }
  {
    std::lock_guard<std::mutex> lock(conn->write_mu);
    ::close(conn->fd);
    conn->fd = -1;
    conn->dead = true;
  }
  conn->finished.store(true, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lock(mu_);
    size_t active = 0;
    for (const auto& c : connections_) {
      if (!c->finished.load(std::memory_order_acquire)) ++active;
    }
    ObsSetGauge(options_.obs, "net.connections_active",
                static_cast<double>(active));
  }
#endif
}

}  // namespace net
}  // namespace ems
