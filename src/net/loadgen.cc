#include "net/loadgen.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <mutex>
#include <thread>
#include <unordered_map>

#include "net/wire.h"
#include "util/json_parser.h"

#ifndef _WIN32
#include <sys/socket.h>
#include <unistd.h>
#endif

namespace ems {
namespace net {

namespace {

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point start, Clock::time_point now) {
  return std::chrono::duration<double>(now - start).count();
}

std::string DefaultLine(uint64_t /*seq*/, const std::string& id) {
  return "{\"id\":\"" + id + "\",\"cmd\":\"health\"}";
}

// Everything one connection's sender and reader share.
struct ConnState {
  int fd = -1;
  std::mutex mu;
  std::unordered_map<std::string, Clock::time_point> outstanding;
  std::vector<double> latencies_ms;
  std::map<std::string, uint64_t> status_counts;
  uint64_t sent = 0;
  uint64_t responses = 0;
  uint64_t send_errors = 0;
  uint64_t protocol_errors = 0;
  double max_lag_seconds = 0.0;
};

}  // namespace

double LoadGenReport::LatencyQuantileMs(double q) const {
  if (latencies_ms.empty()) return 0.0;
  // Nearest-rank on the sorted sample.
  const double rank = q * static_cast<double>(latencies_ms.size());
  size_t index = static_cast<size_t>(std::ceil(rank));
  if (index > 0) --index;
  index = std::min(index, latencies_ms.size() - 1);
  return latencies_ms[index];
}

double LoadGenReport::MeanLatencyMs() const {
  if (latencies_ms.empty()) return 0.0;
  double sum = 0.0;
  for (double v : latencies_ms) sum += v;
  return sum / static_cast<double>(latencies_ms.size());
}

Result<LoadGenReport> RunLoadGen(const LoadGenOptions& options) {
#ifdef _WIN32
  return Status::NotImplemented("loadgen requires POSIX sockets");
#else
  if (options.connections < 1) {
    return Status::InvalidArgument("loadgen needs at least one connection");
  }
  if (options.target_qps <= 0.0) {
    return Status::InvalidArgument("target_qps must be positive");
  }
  const MakeLineFn make_line =
      options.make_line ? options.make_line : DefaultLine;

  std::vector<std::unique_ptr<ConnState>> conns;
  conns.reserve(static_cast<size_t>(options.connections));
  for (int i = 0; i < options.connections; ++i) {
    EMS_ASSIGN_OR_RETURN(int fd,
                         ConnectEndpoint(options.tcp, options.socket_path));
    auto conn = std::make_unique<ConnState>();
    conn->fd = fd;
    conns.push_back(std::move(conn));
  }

  // The open-loop schedule: slot k is due at start + k/target_qps,
  // claimed by whichever sender gets there first.
  std::atomic<uint64_t> next_seq{0};
  const Clock::time_point start = Clock::now();
  const double interval = 1.0 / options.target_qps;

  std::vector<std::thread> threads;
  threads.reserve(conns.size() * 2);
  for (auto& conn_ptr : conns) {
    ConnState* conn = conn_ptr.get();

    threads.emplace_back([&, conn] {
      for (;;) {
        const uint64_t seq =
            next_seq.fetch_add(1, std::memory_order_relaxed);
        if (options.max_requests != 0 && seq >= options.max_requests) break;
        const double due = static_cast<double>(seq) * interval;
        if (due >= options.duration_seconds) break;
        const Clock::time_point due_at =
            start + std::chrono::duration_cast<Clock::duration>(
                        std::chrono::duration<double>(due));
        std::this_thread::sleep_until(due_at);

        const std::string id = std::to_string(seq);
        const std::string line = make_line(seq, id) + "\n";
        const Clock::time_point send_at = Clock::now();
        {
          std::lock_guard<std::mutex> lock(conn->mu);
          conn->outstanding.emplace(id, send_at);
          conn->max_lag_seconds = std::max(conn->max_lag_seconds,
                                           SecondsSince(due_at, send_at));
        }
        if (!WriteAll(conn->fd, line).ok()) {
          std::lock_guard<std::mutex> lock(conn->mu);
          conn->outstanding.erase(id);
          ++conn->send_errors;
          break;  // this connection is gone; others keep the load up
        }
        std::lock_guard<std::mutex> lock(conn->mu);
        ++conn->sent;
      }
      // Half-close: the server sees EOF, answers everything in flight,
      // then closes, which EOFs our reader below.
      ::shutdown(conn->fd, SHUT_WR);
    });

    threads.emplace_back([conn] {
      FdLineReader reader(conn->fd);
      std::string line;
      while (reader.ReadLine(&line)) {
        const Clock::time_point now = Clock::now();
        Result<JsonValue> doc = ParseJson(line);
        std::lock_guard<std::mutex> lock(conn->mu);
        ++conn->responses;
        if (!doc.ok() || !doc->is_object()) {
          ++conn->protocol_errors;
          continue;
        }
        conn->status_counts[doc->GetString("status", "")]++;
        const std::string id = doc->GetString("id", "");
        auto it = conn->outstanding.find(id);
        if (it == conn->outstanding.end()) {
          // Admin responses and rejects still correlate; anything else
          // (unknown id) is the server talking out of turn.
          if (id.empty()) ++conn->protocol_errors;
          continue;
        }
        conn->latencies_ms.push_back(SecondsSince(it->second, now) *
                                     1000.0);
        conn->outstanding.erase(it);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const double elapsed = SecondsSince(start, Clock::now());

  LoadGenReport report;
  for (auto& conn : conns) {
    ::close(conn->fd);
    report.sent += conn->sent;
    report.responses += conn->responses;
    report.send_errors += conn->send_errors;
    report.protocol_errors += conn->protocol_errors;
    for (const auto& [status, count] : conn->status_counts) {
      report.status_counts[status] += count;
    }
    report.latencies_ms.insert(report.latencies_ms.end(),
                               conn->latencies_ms.begin(),
                               conn->latencies_ms.end());
    report.max_lag_seconds =
        std::max(report.max_lag_seconds, conn->max_lag_seconds);
  }
  std::sort(report.latencies_ms.begin(), report.latencies_ms.end());
  report.elapsed_seconds = elapsed;
  report.achieved_qps =
      elapsed > 0.0 ? static_cast<double>(report.sent) / elapsed : 0.0;
  return report;
#endif
}

}  // namespace net
}  // namespace ems
