#include "net/hash_ring.h"

#include <algorithm>
#include <string>

#include "store/hashing.h"

namespace ems {
namespace net {

HashRing::HashRing(const HashRingOptions& options)
    : num_shards_(std::max(1, options.num_shards)),
      vnodes_per_shard_(std::max(1, options.vnodes_per_shard)) {
  points_.reserve(static_cast<size_t>(num_shards_) *
                  static_cast<size_t>(vnodes_per_shard_));
  for (int shard = 0; shard < num_shards_; ++shard) {
    for (int vnode = 0; vnode < vnodes_per_shard_; ++vnode) {
      // The point label is the only input to placement: never change it,
      // or every deployed router remaps its whole corpus at once.
      const std::string label =
          "shard-" + std::to_string(shard) + "/vnode-" + std::to_string(vnode);
      points_.push_back(Point{store::Hash64(label), shard});
    }
  }
  std::sort(points_.begin(), points_.end(),
            [](const Point& a, const Point& b) {
              // Position ties (vanishingly rare at 64 bits) break by
              // shard id so the ring order stays deterministic.
              return a.position != b.position ? a.position < b.position
                                              : a.shard < b.shard;
            });
}

int HashRing::ShardFor(std::string_view key) const {
  const uint64_t h = store::Hash64(key);
  auto it = std::lower_bound(points_.begin(), points_.end(), h,
                             [](const Point& p, uint64_t value) {
                               return p.position < value;
                             });
  if (it == points_.end()) it = points_.begin();  // wrap past the top
  return it->shard;
}

}  // namespace net
}  // namespace ems
