// Byte-level plumbing of the networked service: host:port parsing,
// buffered newline-delimited reads from a file descriptor, SIGPIPE-safe
// full writes, and client-side connect helpers for both transports (TCP
// and Unix domain sockets). The wire grammar is the same NDJSON the
// stdin/Unix-socket service speaks — one JSON object per '\n'-terminated
// line (docs/SERVING.md) — so these helpers are all a client needs.
#pragma once

#include <string>
#include <string_view>

#include "util/status.h"

namespace ems {
namespace net {

/// A parsed "host:port" endpoint.
struct HostPort {
  std::string host;
  int port = 0;
};

/// Parses "host:port" ("127.0.0.1:7463", ":7463" and "7463" default the
/// host to 127.0.0.1). Port 0 is allowed — the listener binds an
/// ephemeral port and reports it. IPv6 literals are not supported.
Result<HostPort> ParseHostPort(std::string_view spec);

/// \brief Buffered reader of '\n'-terminated lines from a descriptor.
///
/// Reads in 64 KiB chunks; a trailing '\r' is stripped so CRLF clients
/// work. Not thread-safe; one reader per descriptor.
class FdLineReader {
 public:
  explicit FdLineReader(int fd) : fd_(fd) {}

  /// Fills `line` (without the terminator) and returns true, or returns
  /// false at end of stream. A final unterminated line is returned
  /// before EOF is reported. Read errors surface as EOF (the connection
  /// is gone either way); error() tells them apart.
  bool ReadLine(std::string* line);

  bool error() const { return error_; }

 private:
  int fd_;
  std::string buffer_;
  size_t pos_ = 0;
  bool eof_ = false;
  bool error_ = false;
};

/// Writes all of `data`, looping over short writes. Uses MSG_NOSIGNAL on
/// sockets so a vanished peer yields IOError instead of SIGPIPE.
Status WriteAll(int fd, std::string_view data);

/// Connects a stream socket to host:port. The returned descriptor is
/// owned by the caller (close() it).
Result<int> ConnectTcp(const std::string& host, int port);

/// Connects to a Unix domain socket path. Caller owns the descriptor.
Result<int> ConnectUnix(const std::string& path);

/// Connect helper over a loadgen/ems_top-style endpoint choice: exactly
/// one of `tcp_spec` ("host:port") or `socket_path` must be non-empty.
Result<int> ConnectEndpoint(const std::string& tcp_spec,
                            const std::string& socket_path);

}  // namespace net
}  // namespace ems
