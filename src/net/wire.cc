#include "net/wire.h"

#include <cerrno>
#include <cstring>

#ifndef _WIN32
#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>
#endif

namespace ems {
namespace net {

Result<HostPort> ParseHostPort(std::string_view spec) {
  if (spec.empty()) {
    return Status::InvalidArgument("empty host:port spec");
  }
  HostPort out;
  const size_t colon = spec.rfind(':');
  std::string_view port_part;
  if (colon == std::string_view::npos) {
    out.host = "127.0.0.1";
    port_part = spec;
  } else {
    out.host = std::string(spec.substr(0, colon));
    if (out.host.empty()) out.host = "127.0.0.1";
    port_part = spec.substr(colon + 1);
  }
  if (port_part.empty()) {
    return Status::InvalidArgument("missing port in '" + std::string(spec) +
                                   "'");
  }
  long port = 0;
  for (char c : port_part) {
    if (c < '0' || c > '9') {
      return Status::InvalidArgument("bad port in '" + std::string(spec) +
                                     "'");
    }
    port = port * 10 + (c - '0');
    if (port > 65535) {
      return Status::InvalidArgument("port out of range in '" +
                                     std::string(spec) + "'");
    }
  }
  out.port = static_cast<int>(port);
  return out;
}

bool FdLineReader::ReadLine(std::string* line) {
#ifdef _WIN32
  (void)line;
  error_ = true;
  return false;
#else
  line->clear();
  for (;;) {
    const size_t nl = buffer_.find('\n', pos_);
    if (nl != std::string::npos) {
      line->assign(buffer_, pos_, nl - pos_);
      pos_ = nl + 1;
      // Compact once the consumed prefix dominates, so a long-lived
      // connection does not grow the buffer without bound.
      if (pos_ > 1 && pos_ * 2 > buffer_.size()) {
        buffer_.erase(0, pos_);
        pos_ = 0;
      }
      if (!line->empty() && line->back() == '\r') line->pop_back();
      return true;
    }
    if (eof_) {
      // Hand back a final unterminated line exactly once.
      if (pos_ < buffer_.size()) {
        line->assign(buffer_, pos_, buffer_.size() - pos_);
        pos_ = buffer_.size();
        if (!line->empty() && line->back() == '\r') line->pop_back();
        return true;
      }
      return false;
    }
    char chunk[65536];
    const ssize_t n = ::read(fd_, chunk, sizeof(chunk));
    if (n > 0) {
      buffer_.append(chunk, static_cast<size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0) error_ = true;
    eof_ = true;
  }
#endif
}

Status WriteAll(int fd, std::string_view data) {
#ifdef _WIN32
  (void)fd;
  (void)data;
  return Status::NotImplemented("WriteAll is POSIX-only");
#else
  size_t written = 0;
  while (written < data.size()) {
    ssize_t n = ::send(fd, data.data() + written, data.size() - written,
                       MSG_NOSIGNAL);
    if (n < 0 && errno == ENOTSOCK) {
      n = ::write(fd, data.data() + written, data.size() - written);
    }
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) {
      return Status::IOError(std::string("write failed: ") +
                             std::strerror(errno));
    }
    written += static_cast<size_t>(n);
  }
  return Status::OK();
#endif
}

Result<int> ConnectTcp(const std::string& host, int port) {
#ifdef _WIN32
  (void)host;
  (void)port;
  return Status::NotImplemented("TCP connect is POSIX-only");
#else
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IOError(std::string("socket: ") + std::strerror(errno));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("bad IPv4 address '" + host + "'");
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    return Status::IOError("cannot connect to " + host + ":" +
                           std::to_string(port) + ": " + err);
  }
  // Job lines are small and latency-sensitive; don't batch them.
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
#endif
}

Result<int> ConnectUnix(const std::string& path) {
#ifdef _WIN32
  (void)path;
  return Status::NotImplemented("Unix sockets are POSIX-only");
#else
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IOError(std::string("socket: ") + std::strerror(errno));
  }
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    ::close(fd);
    return Status::InvalidArgument("socket path too long: " + path);
  }
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    return Status::IOError("cannot connect to " + path + ": " + err);
  }
  return fd;
#endif
}

Result<int> ConnectEndpoint(const std::string& tcp_spec,
                            const std::string& socket_path) {
  if (tcp_spec.empty() == socket_path.empty()) {
    return Status::InvalidArgument(
        "exactly one of a TCP host:port or a Unix socket path is required");
  }
  if (!socket_path.empty()) return ConnectUnix(socket_path);
  EMS_ASSIGN_OR_RETURN(HostPort hp, ParseHostPort(tcp_spec));
  return ConnectTcp(hp.host, hp.port);
}

}  // namespace net
}  // namespace ems
