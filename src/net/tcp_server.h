// TCP front end of the matching service: a line-oriented server that
// accepts concurrent client connections and hands every received NDJSON
// line to a LineHandler together with an emit callback for the response
// line. The server owns the transport concerns only — framing, per-
// connection write serialization, connection caps, drain — while the
// handler (serve::ShardedMatchService) owns routing, admission control,
// and rendering.
//
// Lifecycle:
//   TcpServer server(options, &handler);
//   EMS_RETURN_NOT_OK(server.Start());     // bound; port() is real now
//   ... server.RequestDrain() from a signal handler or admin command ...
//   server.Wait();                         // all accepted lines answered
//
// Drain contract (docs/SERVING.md): RequestDrain is async-signal-safe
// (one write to a wake pipe). The accept loop then stops accepting,
// half-closes the read side of every live connection so readers see EOF
// after the bytes already in flight, and Wait() joins once every
// connection has received a response for every line it sent.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "util/status.h"

namespace ems {

struct ObsContext;

namespace net {

/// Response sink for one request line. Thread-safe; may be invoked from
/// any thread, after HandleLine returned. Must be called exactly once
/// per handled line — the connection stays open until every pending
/// emit has fired.
using EmitFn = std::function<void(const std::string&)>;

/// \brief Per-line protocol logic plugged into the TcpServer.
class LineHandler {
 public:
  virtual ~LineHandler() = default;

  /// Handles one request line. Implementations must arrange for `emit`
  /// to be called exactly once (inline for admin commands and
  /// rejections, from a worker thread for scheduled jobs).
  virtual void HandleLine(const std::string& line, EmitFn emit) = 0;
};

/// Server configuration.
struct TcpServerOptions {
  /// IPv4 address to bind. Loopback by default: exposing the service
  /// beyond the host is a deployment decision, not a default.
  std::string host = "127.0.0.1";

  /// Port to bind; 0 picks an ephemeral port (read it back via port()).
  int port = 0;

  /// listen(2) backlog.
  int backlog = 64;

  /// Connection-level admission control: beyond this many live
  /// connections, new clients get one `overloaded` line and a close.
  int max_connections = 256;

  /// Sink for net.* metrics (borrowed, may be null).
  ObsContext* obs = nullptr;
};

/// \brief Accepting loop + per-connection reader threads.
class TcpServer {
 public:
  /// `handler` is borrowed and must outlive Wait().
  TcpServer(const TcpServerOptions& options, LineHandler* handler);
  ~TcpServer();

  TcpServer(const TcpServer&) = delete;
  TcpServer& operator=(const TcpServer&) = delete;

  /// Binds, listens, and starts the accept thread. IOError when the
  /// address is unavailable.
  Status Start();

  /// The bound port (after Start); useful with options.port == 0.
  int port() const { return port_; }

  /// Begins the graceful drain. Async-signal-safe (a single write to an
  /// internal pipe); idempotent.
  void RequestDrain();

  /// Blocks until the drain completes: accept loop exited, every
  /// connection answered and closed. Returns the total number of
  /// connections served. Implicitly waits for a RequestDrain.
  uint64_t Wait();

  /// True once RequestDrain was called.
  bool draining() const {
    return draining_.load(std::memory_order_acquire);
  }

 private:
  struct Connection;

  void AcceptLoop();
  void ServeConnection(std::shared_ptr<Connection> conn);
  void ReapFinished(bool join_all);

  TcpServerOptions options_;
  LineHandler* handler_;
  int listen_fd_ = -1;
  int wake_pipe_[2] = {-1, -1};
  int port_ = 0;
  std::atomic<bool> draining_{false};
  std::thread accept_thread_;

  std::mutex mu_;
  std::vector<std::shared_ptr<Connection>> connections_;
  uint64_t connections_served_ = 0;
};

}  // namespace net
}  // namespace ems
