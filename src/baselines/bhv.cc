#include "baselines/bhv.h"

#include <algorithm>
#include <cmath>

#include "obs/context.h"

namespace ems {

SimilarityMatrix ComputeBhvSimilarity(
    const DependencyGraph& g1, const DependencyGraph& g2,
    const BhvOptions& options,
    const std::vector<std::vector<double>>* label_similarity) {
  ScopedSpan span(options.obs, "bhv_similarity");
  const size_t n1 = g1.NumNodes();
  const size_t n2 = g2.NumNodes();
  SimilarityMatrix prev(n1, n2, 0.0);

  auto label_at = [&](NodeId a, NodeId b) {
    if (label_similarity == nullptr) return 0.0;
    return (*label_similarity)[static_cast<size_t>(a)][static_cast<size_t>(b)];
  };

  auto real_preds = [&](const DependencyGraph& g, NodeId v) {
    std::vector<NodeId> out;
    for (NodeId u : g.Predecessors(v)) {
      if (!g.IsArtificial(u)) out.push_back(u);
    }
    return out;
  };

  // Base case: two events with no (real) predecessors are structurally
  // indistinguishable sources -> similarity 1, pinned across iterations
  // (the paper's Example 2: BHV(A, 1) = 1). All other pairs start from 1
  // as well — the optimistic initialization of [19] — and contract
  // downward to their fixed point.
  std::vector<std::vector<NodeId>> preds1(n1), preds2(n2);
  for (NodeId v = 0; v < static_cast<NodeId>(n1); ++v) {
    if (g1.IsArtificial(v)) continue;
    preds1[static_cast<size_t>(v)] = real_preds(g1, v);
  }
  for (NodeId v = 0; v < static_cast<NodeId>(n2); ++v) {
    if (g2.IsArtificial(v)) continue;
    preds2[static_cast<size_t>(v)] = real_preds(g2, v);
  }
  for (NodeId v1 = 0; v1 < static_cast<NodeId>(n1); ++v1) {
    if (g1.IsArtificial(v1)) continue;
    for (NodeId v2 = 0; v2 < static_cast<NodeId>(n2); ++v2) {
      if (g2.IsArtificial(v2)) continue;
      prev.set(v1, v2, options.alpha * 1.0 +
                           (1.0 - options.alpha) * label_at(v1, v2));
    }
  }

  SimilarityMatrix next = prev;
  for (int iter = 0; iter < options.max_iterations; ++iter) {
    ObsIncrement(options.obs, "bhv.iterations");
    double max_delta = 0.0;
    for (NodeId v1 = 0; v1 < static_cast<NodeId>(n1); ++v1) {
      if (g1.IsArtificial(v1)) continue;
      const auto& p1 = preds1[static_cast<size_t>(v1)];
      for (NodeId v2 = 0; v2 < static_cast<NodeId>(n2); ++v2) {
        if (g2.IsArtificial(v2)) continue;
        const auto& p2 = preds2[static_cast<size_t>(v2)];
        if (p1.empty() && p2.empty()) continue;  // base case pinned
        double structural = 0.0;
        if (!p1.empty() && !p2.empty()) {
          // Average-of-max in both directions, decayed by c — the
          // asymmetric SimRank adaptation of [19].
          double s12 = 0.0;
          for (NodeId u1 : p1) {
            double best = 0.0;
            for (NodeId u2 : p2) best = std::max(best, prev.at(u1, u2));
            s12 += best;
          }
          s12 /= static_cast<double>(p1.size());
          double s21 = 0.0;
          for (NodeId u2 : p2) {
            double best = 0.0;
            for (NodeId u1 : p1) best = std::max(best, prev.at(u1, u2));
            s21 += best;
          }
          s21 /= static_cast<double>(p2.size());
          structural = options.c * (s12 + s21) / 2.0;
        }
        double value = options.alpha * structural +
                       (1.0 - options.alpha) * label_at(v1, v2);
        next.set(v1, v2, value);
        max_delta = std::max(max_delta, std::fabs(value - prev.at(v1, v2)));
      }
    }
    std::swap(prev, next);
    if (max_delta <= options.epsilon) break;
  }
  return prev;
}

}  // namespace ems
