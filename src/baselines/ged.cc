#include "baselines/ged.h"

#include "obs/context.h"

#include <algorithm>
#include <cmath>

namespace ems {

namespace {

// Real-node views of a graph: contiguous indices 0..n-1 with adjacency.
struct RealGraph {
  std::vector<NodeId> nodes;              // real NodeIds in index order
  std::vector<std::vector<int>> out;      // adjacency by real index
  std::vector<std::vector<int>> in;       // reverse adjacency
  size_t num_edges = 0;

  explicit RealGraph(const DependencyGraph& g) {
    const NodeId start = g.has_artificial() ? 1 : 0;
    for (NodeId v = start; v < static_cast<NodeId>(g.NumNodes()); ++v) {
      nodes.push_back(v);
    }
    out.resize(nodes.size());
    in.resize(nodes.size());
    for (size_t i = 0; i < nodes.size(); ++i) {
      for (NodeId w : g.Successors(nodes[i])) {
        if (g.IsArtificial(w)) continue;
        out[i].push_back(static_cast<int>(w - start));
        in[static_cast<size_t>(w - start)].push_back(static_cast<int>(i));
        ++num_edges;
      }
    }
  }
};

// Local substitution similarity for opaque names: compares the node
// frequencies (the only per-node statistic the published GED adaptation
// can anchor on when labels carry no signal — Example 2 of the event
// matching paper evaluates GED on opaque graphs with exactly this kind of
// local statistic).
double StructuralNodeSimilarity(const DependencyGraph& g1, NodeId a,
                                const DependencyGraph& g2, NodeId b) {
  double x = g1.NodeFrequency(a);
  double y = g2.NodeFrequency(b);
  double denom = x + y;
  return denom <= 0.0 ? 1.0 : 1.0 - std::fabs(x - y) / denom;
}

struct GedContext {
  RealGraph r1;
  RealGraph r2;
  std::vector<std::vector<double>> sim;  // node substitution similarity
  GedOptions options;

  GedContext(const DependencyGraph& g1, const DependencyGraph& g2,
             const GedOptions& opts)
      : r1(g1), r2(g2), options(opts) {
    sim.assign(r1.nodes.size(), std::vector<double>(r2.nodes.size(), 0.0));
    for (size_t i = 0; i < r1.nodes.size(); ++i) {
      for (size_t j = 0; j < r2.nodes.size(); ++j) {
        if (opts.label_measure != nullptr) {
          sim[i][j] = opts.label_measure->Similarity(
              g1.NodeName(r1.nodes[i]), g2.NodeName(r2.nodes[j]));
        } else {
          sim[i][j] =
              StructuralNodeSimilarity(g1, r1.nodes[i], g2, r2.nodes[j]);
        }
      }
    }
  }

  // Distance of a mapping given precomputed aggregates.
  double Distance(size_t mapped_count, double substitution_sum,
                  size_t matched_edges) const {
    const double n_total =
        static_cast<double>(r1.nodes.size() + r2.nodes.size());
    const double e_total = static_cast<double>(r1.num_edges + r2.num_edges);
    double snv = n_total <= 0.0
                     ? 0.0
                     : (n_total - 2.0 * static_cast<double>(mapped_count)) /
                           n_total;
    double sev =
        e_total <= 0.0
            ? 0.0
            : (e_total - 2.0 * static_cast<double>(matched_edges)) / e_total;
    double subn = mapped_count == 0
                      ? 0.0
                      : substitution_sum / static_cast<double>(mapped_count);
    double wn = options.weight_skip_nodes;
    double we = options.weight_skip_edges;
    double ws = options.weight_substitution;
    return (wn * snv + we * sev + ws * subn) / (wn + we + ws);
  }

  // Matched edges contributed by adding pair (i, j) to `mapping`:
  // edges (i, x) / (x, i) in G1 whose counterpart under the mapping is an
  // edge of G2.
  size_t MatchedEdgesDelta(const std::vector<int>& mapping, size_t i,
                           size_t j) const {
    size_t matched = 0;
    for (int x : r1.out[i]) {
      int mx = mapping[static_cast<size_t>(x)];
      if (mx < 0) continue;
      if (HasEdge2(j, static_cast<size_t>(mx))) ++matched;
    }
    for (int x : r1.in[i]) {
      int mx = mapping[static_cast<size_t>(x)];
      if (mx < 0) continue;
      if (HasEdge2(static_cast<size_t>(mx), j)) ++matched;
    }
    return matched;
  }

  bool HasEdge2(size_t a, size_t b) const {
    const auto& adj = r2.out[a];
    return std::find(adj.begin(), adj.end(), static_cast<int>(b)) !=
           adj.end();
  }
};

}  // namespace

GedResult ComputeGedMatching(const DependencyGraph& g1,
                             const DependencyGraph& g2,
                             const GedOptions& options) {
  ScopedSpan span(options.obs, "ged_matching");
  GedContext ctx(g1, g2, options);
  const size_t n1 = ctx.r1.nodes.size();
  const size_t n2 = ctx.r2.nodes.size();

  GedResult result;
  result.mapping.assign(n1, -1);
  result.node_similarity = ctx.sim;

  std::vector<bool> used2(n2, false);
  size_t mapped = 0;
  double substitution_sum = 0.0;
  size_t matched_edges = 0;
  double current = ctx.Distance(mapped, substitution_sum, matched_edges);

  // Greedy: repeatedly add the pair that lowers the distance the most.
  while (true) {
    ObsIncrement(options.obs, "ged.greedy_steps");
    double best_distance = current;
    int best_i = -1;
    int best_j = -1;
    size_t best_edges = 0;
    for (size_t i = 0; i < n1; ++i) {
      if (result.mapping[i] >= 0) continue;
      for (size_t j = 0; j < n2; ++j) {
        if (used2[j]) continue;
        size_t edge_delta = ctx.MatchedEdgesDelta(result.mapping, i, j);
        double cand = ctx.Distance(mapped + 1,
                                   substitution_sum + (1.0 - ctx.sim[i][j]),
                                   matched_edges + edge_delta);
        if (cand < best_distance - options.min_improvement) {
          best_distance = cand;
          best_i = static_cast<int>(i);
          best_j = static_cast<int>(j);
          best_edges = edge_delta;
        }
      }
    }
    if (best_i < 0) break;
    result.mapping[static_cast<size_t>(best_i)] = best_j;
    used2[static_cast<size_t>(best_j)] = true;
    ++mapped;
    substitution_sum +=
        1.0 - ctx.sim[static_cast<size_t>(best_i)][static_cast<size_t>(best_j)];
    matched_edges += best_edges;
    current = best_distance;
  }

  result.distance = current;
  return result;
}

double GedDistance(const DependencyGraph& g1, const DependencyGraph& g2,
                   const std::vector<int>& mapping,
                   const GedOptions& options) {
  GedContext ctx(g1, g2, options);
  EMS_DCHECK(mapping.size() == ctx.r1.nodes.size());
  size_t mapped = 0;
  double substitution_sum = 0.0;
  size_t matched_edges = 0;
  // Count matched edges directly: an edge (x, y) of G1 is matched when
  // both endpoints are mapped and (M(x), M(y)) is an edge of G2.
  for (size_t x = 0; x < ctx.r1.out.size(); ++x) {
    if (mapping[x] < 0) continue;
    for (int y : ctx.r1.out[x]) {
      int my = mapping[static_cast<size_t>(y)];
      if (my < 0) continue;
      if (ctx.HasEdge2(static_cast<size_t>(mapping[x]),
                       static_cast<size_t>(my))) {
        ++matched_edges;
      }
    }
  }
  for (size_t i = 0; i < mapping.size(); ++i) {
    if (mapping[i] < 0) continue;
    ++mapped;
    substitution_sum += 1.0 - ctx.sim[i][static_cast<size_t>(mapping[i])];
  }
  return ctx.Distance(mapped, substitution_sum, matched_edges);
}

}  // namespace ems
