// OPQ baseline: matching with opaque names in the style of Kang and
// Naughton [11]. Events are matched purely by the statistical structure
// of their dependency graphs: the search looks for the injective mapping
// M minimizing the distance between the two weighted dependency matrices
// (node frequencies on the diagonal, direct-follows frequencies off it).
// The exact search enumerates mappings (O(n!)) with branch-and-bound
// pruning; the paper's evaluation shows it cannot finish beyond ~30
// events, which the expansion budget reproduces. A 2-opt hill-climbing
// fallback serves larger inputs when exactness is not required.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/dependency_graph.h"
#include "util/status.h"

namespace ems {

struct ObsContext;

struct OpqOptions {
  /// Search-tree node budget for the exact branch-and-bound search; when
  /// exceeded the search gives up with ResourceExhausted (the paper's
  /// "cannot finish" regime).
  uint64_t max_expansions = 50'000'000;

  /// Random restarts of the hill-climbing fallback.
  int hill_climb_restarts = 4;

  /// Seed for hill-climbing restarts.
  uint64_t seed = 42;

  /// Observability sink (spans "opq_exact"/"opq_hill_climb", counter
  /// "opq.expansions"); null disables. Borrowed, not owned.
  ObsContext* obs = nullptr;
};

struct OpqResult {
  /// mapping[i] = real-node index of graph 2 matched to real node i of
  /// graph 1, or -1 (only when graph 2 has fewer nodes).
  std::vector<int> mapping;

  /// Squared Euclidean distance between the permuted matrices; lower is
  /// better.
  double distance = 0.0;

  /// Normal-score style similarity (higher is better): the total matrix
  /// mass explained by the mapping.
  double score = 0.0;

  uint64_t expansions = 0;
  bool exact = false;  // true if the branch and bound completed
};

/// Exact OPQ matching via branch and bound. Returns ResourceExhausted
/// when the expansion budget is exceeded.
Result<OpqResult> ComputeOpqExact(const DependencyGraph& g1,
                                  const DependencyGraph& g2,
                                  const OpqOptions& options = {});

/// Hill-climbing OPQ: greedy initialization + 2-opt swaps until a local
/// optimum, with random restarts. Always succeeds; approximate.
OpqResult ComputeOpqHillClimb(const DependencyGraph& g1,
                              const DependencyGraph& g2,
                              const OpqOptions& options = {});

/// Distance of an explicit mapping under the OPQ objective.
double OpqDistance(const DependencyGraph& g1, const DependencyGraph& g2,
                   const std::vector<int>& mapping);

}  // namespace ems
