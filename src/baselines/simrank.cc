#include "baselines/simrank.h"

#include <algorithm>
#include <cmath>

#include "obs/context.h"

namespace ems {

SimilarityMatrix ComputeSimRank(const DependencyGraph& g1,
                                const DependencyGraph& g2,
                                const SimRankOptions& options) {
  ScopedSpan span(options.obs, "simrank_similarity");
  const size_t n1 = g1.NumNodes();
  const size_t n2 = g2.NumNodes();

  auto real_preds = [](const DependencyGraph& g, NodeId v) {
    std::vector<NodeId> out;
    for (NodeId u : g.Predecessors(v)) {
      if (!g.IsArtificial(u)) out.push_back(u);
    }
    return out;
  };
  std::vector<std::vector<NodeId>> preds1(n1), preds2(n2);
  for (NodeId v = 0; v < static_cast<NodeId>(n1); ++v) {
    if (!g1.IsArtificial(v)) preds1[static_cast<size_t>(v)] = real_preds(g1, v);
  }
  for (NodeId v = 0; v < static_cast<NodeId>(n2); ++v) {
    if (!g2.IsArtificial(v)) preds2[static_cast<size_t>(v)] = real_preds(g2, v);
  }

  SimilarityMatrix prev(n1, n2, 0.0);
  for (NodeId v1 = 0; v1 < static_cast<NodeId>(n1); ++v1) {
    if (g1.IsArtificial(v1)) continue;
    for (NodeId v2 = 0; v2 < static_cast<NodeId>(n2); ++v2) {
      if (g2.IsArtificial(v2)) continue;
      prev.set(v1, v2, 1.0);  // cross-graph base case
    }
  }

  SimilarityMatrix next = prev;
  for (int iter = 0; iter < options.max_iterations; ++iter) {
    ObsIncrement(options.obs, "simrank.iterations");
    double max_delta = 0.0;
    for (NodeId v1 = 0; v1 < static_cast<NodeId>(n1); ++v1) {
      if (g1.IsArtificial(v1)) continue;
      const auto& p1 = preds1[static_cast<size_t>(v1)];
      for (NodeId v2 = 0; v2 < static_cast<NodeId>(n2); ++v2) {
        if (g2.IsArtificial(v2)) continue;
        const auto& p2 = preds2[static_cast<size_t>(v2)];
        double value;
        if (p1.empty() && p2.empty()) {
          value = 1.0;  // both sources: maximally similar, as in [10]
        } else if (p1.empty() || p2.empty()) {
          value = 0.0;
        } else {
          double sum = 0.0;
          for (NodeId u1 : p1) {
            for (NodeId u2 : p2) sum += prev.at(u1, u2);
          }
          value = options.c * sum /
                  (static_cast<double>(p1.size()) *
                   static_cast<double>(p2.size()));
        }
        next.set(v1, v2, value);
        max_delta = std::max(max_delta, std::fabs(value - prev.at(v1, v2)));
      }
    }
    std::swap(prev, next);
    if (max_delta <= options.epsilon) break;
  }
  return prev;
}

}  // namespace ems
