#include "baselines/opq.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "graph/graph_algorithms.h"
#include "obs/context.h"
#include "util/random.h"

namespace ems {

namespace {

struct OpqContext {
  std::vector<std::vector<double>> w1;  // weighted dependency matrices
  std::vector<std::vector<double>> w2;
  size_t n1 = 0;
  size_t n2 = 0;
  bool swapped = false;  // true if roles were exchanged so n1 <= n2

  OpqContext(const DependencyGraph& g1, const DependencyGraph& g2) {
    // The matching operates on the dependency (direct-follows) mass only
    // — the event-data analogue of the attribute-dependency matrices of
    // [11]. Node frequencies are deliberately not placed on the diagonal:
    // the published technique matches structure, and a frequency
    // fingerprint would grant OPQ an advantage it does not have in the
    // paper's evaluation.
    w1 = FrequencyMatrix(g1);
    w2 = FrequencyMatrix(g2);
    n1 = w1.size();
    n2 = w2.size();
    if (n1 > n2) {
      std::swap(w1, w2);
      std::swap(n1, n2);
      swapped = true;
    }
  }

  // Cost contribution of assigning i -> p on top of `mapping` (entries
  // >= 0 are already assigned; only indices < i are considered assigned).
  double AssignDelta(const std::vector<int>& mapping, size_t i,
                     size_t p) const {
    double d = Sq(w1[i][i] - w2[p][p]);
    for (size_t j = 0; j < i; ++j) {
      size_t q = static_cast<size_t>(mapping[j]);
      d += Sq(w1[i][j] - w2[p][q]);
      d += Sq(w1[j][i] - w2[q][p]);
    }
    return d;
  }

  // Residual mass of graph-2 entries not covered by the mapping.
  double UncoveredPenalty(const std::vector<bool>& used2) const {
    double d = 0.0;
    for (size_t p = 0; p < n2; ++p) {
      for (size_t q = 0; q < n2; ++q) {
        if (!used2[p] || !used2[q]) d += Sq(w2[p][q]);
      }
    }
    return d;
  }

  double FullDistance(const std::vector<int>& mapping) const {
    double d = 0.0;
    std::vector<bool> used2(n2, false);
    for (size_t i = 0; i < n1; ++i) {
      if (mapping[i] >= 0) used2[static_cast<size_t>(mapping[i])] = true;
    }
    for (size_t i = 0; i < n1; ++i) {
      for (size_t j = 0; j < n1; ++j) {
        double a = w1[i][j];
        double b = (mapping[i] >= 0 && mapping[j] >= 0)
                       ? w2[static_cast<size_t>(mapping[i])]
                            [static_cast<size_t>(mapping[j])]
                       : 0.0;
        d += Sq(a - b);
      }
    }
    return d + UncoveredPenalty(used2);
  }

  // Normal-score style: co-present weight mass explained by the mapping.
  double Score(const std::vector<int>& mapping) const {
    double s = 0.0;
    for (size_t i = 0; i < n1; ++i) {
      if (mapping[i] < 0) continue;
      for (size_t j = 0; j < n1; ++j) {
        if (mapping[j] < 0) continue;
        double a = w1[i][j];
        double b = w2[static_cast<size_t>(mapping[i])]
                     [static_cast<size_t>(mapping[j])];
        if (a > 0.0 && b > 0.0) s += (a + b) / 2.0;
      }
    }
    return s;
  }

  // Reorders graph-1 nodes by decreasing incident weight so the branch
  // and bound fixes the most constrained nodes first.
  std::vector<size_t> SearchOrder() const {
    std::vector<double> mass(n1, 0.0);
    for (size_t i = 0; i < n1; ++i) {
      for (size_t j = 0; j < n1; ++j) mass[i] += w1[i][j] + w1[j][i];
    }
    std::vector<size_t> order(n1);
    std::iota(order.begin(), order.end(), size_t{0});
    std::sort(order.begin(), order.end(),
              [&](size_t a, size_t b) { return mass[a] > mass[b]; });
    return order;
  }

  static double Sq(double x) { return x * x; }
};

struct BnbState {
  const OpqContext* ctx;
  std::vector<size_t> order;
  std::vector<int> mapping;       // by graph-1 node index
  std::vector<bool> used2;
  double partial = 0.0;
  double best_distance = 0.0;
  std::vector<int> best_mapping;
  uint64_t expansions = 0;
  uint64_t max_expansions = 0;
  bool exhausted = false;

  // `pos` indexes into `order`; cost deltas must be computed against the
  // set of already-assigned nodes, so AssignDelta uses a dense prefix:
  // we maintain `assigned` as the list of (node, target) fixed so far.
  std::vector<std::pair<size_t, size_t>> assigned;

  double PairDelta(size_t i, size_t p) const {
    double d = OpqContext::Sq(ctx->w1[i][i] - ctx->w2[p][p]);
    for (const auto& [j, q] : assigned) {
      d += OpqContext::Sq(ctx->w1[i][j] - ctx->w2[p][q]);
      d += OpqContext::Sq(ctx->w1[j][i] - ctx->w2[q][p]);
    }
    return d;
  }

  void Search(size_t pos) {
    if (exhausted) return;
    if (++expansions > max_expansions) {
      exhausted = true;
      return;
    }
    if (partial >= best_distance) return;  // bound (remaining terms >= 0)
    if (pos == order.size()) {
      double total = partial + ctx->UncoveredPenalty(used2);
      if (total < best_distance) {
        best_distance = total;
        best_mapping = mapping;
      }
      return;
    }
    size_t i = order[pos];
    // Try targets in increasing delta order for faster incumbent.
    std::vector<std::pair<double, size_t>> cands;
    cands.reserve(ctx->n2);
    for (size_t p = 0; p < ctx->n2; ++p) {
      if (used2[p]) continue;
      cands.emplace_back(PairDelta(i, p), p);
    }
    std::sort(cands.begin(), cands.end());
    for (const auto& [delta, p] : cands) {
      if (partial + delta >= best_distance) break;  // sorted: all worse
      mapping[i] = static_cast<int>(p);
      used2[p] = true;
      assigned.emplace_back(i, p);
      partial += delta;
      Search(pos + 1);
      partial -= delta;
      assigned.pop_back();
      used2[p] = false;
      mapping[i] = -1;
      if (exhausted) return;
    }
  }
};

std::vector<int> InvertMapping(const std::vector<int>& mapping, size_t n_to) {
  std::vector<int> inv(n_to, -1);
  for (size_t i = 0; i < mapping.size(); ++i) {
    if (mapping[i] >= 0) inv[static_cast<size_t>(mapping[i])] = static_cast<int>(i);
  }
  return inv;
}

OpqResult FinishResult(const OpqContext& ctx, std::vector<int> mapping,
                       uint64_t expansions, bool exact) {
  OpqResult result;
  result.distance = ctx.FullDistance(mapping);
  result.score = ctx.Score(mapping);
  result.expansions = expansions;
  result.exact = exact;
  if (ctx.swapped) {
    result.mapping = InvertMapping(mapping, ctx.n2);
  } else {
    result.mapping = std::move(mapping);
  }
  return result;
}

}  // namespace

Result<OpqResult> ComputeOpqExact(const DependencyGraph& g1,
                                  const DependencyGraph& g2,
                                  const OpqOptions& options) {
  ScopedSpan span(options.obs, "opq_exact");
  OpqContext ctx(g1, g2);
  BnbState state;
  state.ctx = &ctx;
  state.order = ctx.SearchOrder();
  state.mapping.assign(ctx.n1, -1);
  state.used2.assign(ctx.n2, false);
  // Incumbent from hill climbing makes the bound effective immediately.
  OpqResult warm = ComputeOpqHillClimb(g1, g2, options);
  // warm.mapping is in original orientation; restate in context terms.
  std::vector<int> warm_ctx = ctx.swapped
                                  ? InvertMapping(warm.mapping, ctx.n1)
                                  : warm.mapping;
  // InvertMapping above inverts g1->g2 into g2-indexed; when swapped the
  // context's "graph 1" is the original graph 2, whose size is ctx.n1.
  state.best_distance = ctx.FullDistance(warm_ctx);
  state.best_mapping = warm_ctx;
  state.max_expansions = options.max_expansions;
  state.Search(0);
  ObsIncrement(options.obs, "opq.expansions", state.expansions);
  if (state.exhausted) {
    return Status::ResourceExhausted(
        "OPQ branch and bound exceeded " +
        std::to_string(options.max_expansions) + " expansions");
  }
  return FinishResult(ctx, std::move(state.best_mapping), state.expansions,
                      /*exact=*/true);
}

OpqResult ComputeOpqHillClimb(const DependencyGraph& g1,
                              const DependencyGraph& g2,
                              const OpqOptions& options) {
  ScopedSpan span(options.obs, "opq_hill_climb");
  OpqContext ctx(g1, g2);
  Rng rng(options.seed);

  std::vector<int> best_mapping;
  double best_distance = std::numeric_limits<double>::infinity();
  uint64_t evals = 0;

  for (int restart = 0; restart <= options.hill_climb_restarts; ++restart) {
    // Init: frequency-rank alignment (restart 0), random otherwise.
    std::vector<size_t> order1(ctx.n1), order2(ctx.n2);
    std::iota(order1.begin(), order1.end(), size_t{0});
    std::iota(order2.begin(), order2.end(), size_t{0});
    if (restart == 0) {
      std::sort(order1.begin(), order1.end(), [&](size_t a, size_t b) {
        return ctx.w1[a][a] > ctx.w1[b][b];
      });
      std::sort(order2.begin(), order2.end(), [&](size_t a, size_t b) {
        return ctx.w2[a][a] > ctx.w2[b][b];
      });
    } else {
      rng.Shuffle(&order2);
    }
    std::vector<int> mapping(ctx.n1, -1);
    for (size_t k = 0; k < ctx.n1; ++k) {
      mapping[order1[k]] = static_cast<int>(order2[k]);
    }

    double current = ctx.FullDistance(mapping);
    ++evals;
    bool improved = true;
    while (improved) {
      improved = false;
      // 2-opt: swap the targets of two graph-1 nodes, or retarget a node
      // to an unused graph-2 node.
      std::vector<bool> used2(ctx.n2, false);
      for (int m : mapping) {
        if (m >= 0) used2[static_cast<size_t>(m)] = true;
      }
      for (size_t i = 0; i < ctx.n1 && !improved; ++i) {
        for (size_t j = i + 1; j < ctx.n1 && !improved; ++j) {
          std::swap(mapping[i], mapping[j]);
          double cand = ctx.FullDistance(mapping);
          ++evals;
          if (cand + 1e-12 < current) {
            current = cand;
            improved = true;
          } else {
            std::swap(mapping[i], mapping[j]);
          }
        }
        for (size_t p = 0; p < ctx.n2 && !improved; ++p) {
          if (used2[p]) continue;
          int old = mapping[i];
          mapping[i] = static_cast<int>(p);
          double cand = ctx.FullDistance(mapping);
          ++evals;
          if (cand + 1e-12 < current) {
            current = cand;
            improved = true;
          } else {
            mapping[i] = old;
          }
        }
      }
    }
    if (current < best_distance) {
      best_distance = current;
      best_mapping = mapping;
    }
  }
  return FinishResult(ctx, std::move(best_mapping), evals, /*exact=*/false);
}

double OpqDistance(const DependencyGraph& g1, const DependencyGraph& g2,
                   const std::vector<int>& mapping) {
  OpqContext ctx(g1, g2);
  if (!ctx.swapped) return ctx.FullDistance(mapping);
  return ctx.FullDistance(InvertMapping(mapping, ctx.n1));
}

}  // namespace ems
