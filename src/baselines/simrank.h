// Classic SimRank [10], adapted minimally to cross-graph matching: used
// as an ablation reference showing why plain SimRank is insufficient for
// event data (no edge-frequency coefficients, no artificial events, no
// label integration — Section 3's motivation).
#pragma once

#include "core/similarity_matrix.h"
#include "graph/dependency_graph.h"

namespace ems {

struct ObsContext;

struct SimRankOptions {
  /// SimRank decay constant.
  double c = 0.8;

  double epsilon = 1e-4;
  int max_iterations = 100;

  /// Observability sink (span "simrank_similarity", counter
  /// "simrank.iterations"); null disables. Borrowed, not owned.
  ObsContext* obs = nullptr;
};

/// Cross-graph SimRank: S^0(a, b) = 1 for every real pair (the cross-graph
/// analogue of SimRank's S(a, a) = 1 base case), then
///   S(a, b) = c / (|I(a)||I(b)|) * sum over in-neighbor pairs of S,
/// with S(a, b) pinned to 1 when both in-neighborhoods are empty and 0
/// when exactly one is. Artificial nodes, if present, are ignored.
SimilarityMatrix ComputeSimRank(const DependencyGraph& g1,
                                const DependencyGraph& g2,
                                const SimRankOptions& options = {});

}  // namespace ems
