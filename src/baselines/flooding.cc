#include "baselines/flooding.h"

#include <algorithm>
#include <cmath>

#include "obs/context.h"

namespace ems {

SimilarityMatrix ComputeSimilarityFlooding(
    const DependencyGraph& g1, const DependencyGraph& g2,
    const FloodingOptions& options,
    const std::vector<std::vector<double>>* label_similarity) {
  ScopedSpan span(options.obs, "flooding_similarity");
  const size_t n1 = g1.NumNodes();
  const size_t n2 = g2.NumNodes();

  auto real_nodes = [](const DependencyGraph& g) {
    std::vector<NodeId> out;
    for (NodeId v = 0; v < static_cast<NodeId>(g.NumNodes()); ++v) {
      if (!g.IsArtificial(v)) out.push_back(v);
    }
    return out;
  };
  std::vector<NodeId> nodes1 = real_nodes(g1);
  std::vector<NodeId> nodes2 = real_nodes(g2);

  auto real_succ = [](const DependencyGraph& g, NodeId v) {
    std::vector<NodeId> out;
    for (NodeId w : g.Successors(v)) {
      if (!g.IsArtificial(w)) out.push_back(w);
    }
    return out;
  };
  auto real_pred = [](const DependencyGraph& g, NodeId v) {
    std::vector<NodeId> out;
    for (NodeId w : g.Predecessors(v)) {
      if (!g.IsArtificial(w)) out.push_back(w);
    }
    return out;
  };

  // sigma^0: labels when available, else a uniform constant.
  SimilarityMatrix sigma0(n1, n2, 0.0);
  for (NodeId a : nodes1) {
    for (NodeId x : nodes2) {
      double v = label_similarity != nullptr
                     ? (*label_similarity)[static_cast<size_t>(a)]
                                          [static_cast<size_t>(x)]
                     : options.initial;
      sigma0.set(a, x, v);
    }
  }

  SimilarityMatrix prev = sigma0;
  SimilarityMatrix next(n1, n2, 0.0);
  for (int iter = 0; iter < options.max_iterations; ++iter) {
    ObsIncrement(options.obs, "flooding.iterations");
    // phi(p) = sigma0(p) + sigma_i(p) + incoming flooded mass. Mass
    // flows along pairwise-connectivity edges: (a, x) receives from
    // predecessors (b, y) with b -> a and y -> x, weighted by
    // 1 / (|succ(b)| * |succ(y)|), and symmetrically from successors
    // with the inverse weighting.
    double max_value = 0.0;
    for (NodeId a : nodes1) {
      std::vector<NodeId> preds_a = real_pred(g1, a);
      std::vector<NodeId> succs_a = real_succ(g1, a);
      for (NodeId x : nodes2) {
        double value = sigma0.at(a, x) + prev.at(a, x);
        for (NodeId b : preds_a) {
          double out_b = static_cast<double>(real_succ(g1, b).size());
          for (NodeId y : real_pred(g2, x)) {
            double out_y = static_cast<double>(real_succ(g2, y).size());
            if (out_b > 0 && out_y > 0) {
              value += prev.at(b, y) / (out_b * out_y);
            }
          }
        }
        for (NodeId b : succs_a) {
          double in_b = static_cast<double>(real_pred(g1, b).size());
          for (NodeId y : real_succ(g2, x)) {
            double in_y = static_cast<double>(real_pred(g2, y).size());
            if (in_b > 0 && in_y > 0) {
              value += prev.at(b, y) / (in_b * in_y);
            }
          }
        }
        next.set(a, x, value);
        max_value = std::max(max_value, value);
      }
    }
    // Normalize by the maximum (the fixpoint normalization of [14]).
    if (max_value <= 0.0) break;
    double delta = 0.0;
    for (NodeId a : nodes1) {
      for (NodeId x : nodes2) {
        double v = next.at(a, x) / max_value;
        delta = std::max(delta, std::fabs(v - prev.at(a, x)));
        next.set(a, x, v);
      }
    }
    std::swap(prev, next);
    if (delta <= options.epsilon) break;
  }
  return prev;
}

}  // namespace ems
