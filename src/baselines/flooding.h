// Similarity Flooding (Melnik, Garcia-Molina, Rahm [14]) adapted to event
// dependency graphs — the versatile graph-matching algorithm the paper's
// related work contrasts with (restricted to 1:1 correspondences). The
// pairwise connectivity graph has a node per event pair (a, x); an edge
// connects (a, x) -> (b, y) whenever a -> b in G1 and x -> y in G2.
// Similarity floods along these edges with propagation coefficients
// inversely proportional to out-degrees, iterated to fixpoint with
// per-iteration normalization.
#pragma once

#include "core/similarity_matrix.h"
#include "graph/dependency_graph.h"

namespace ems {

struct ObsContext;

struct FloodingOptions {
  /// Initial similarity for every pair when no label similarity is given.
  double initial = 1.0;

  double epsilon = 1e-4;
  int max_iterations = 200;

  /// Observability sink (span "flooding_similarity", counter
  /// "flooding.iterations"); null disables. Borrowed, not owned.
  ObsContext* obs = nullptr;
};

/// Computes similarity-flooding scores between the real nodes of two
/// dependency graphs (artificial nodes ignored). Scores are normalized
/// to [0, 1] by the maximum. `label_similarity`, if given, seeds and
/// re-injects sigma^0 (the basic "C" fixpoint variant of [14]).
SimilarityMatrix ComputeSimilarityFlooding(
    const DependencyGraph& g1, const DependencyGraph& g2,
    const FloodingOptions& options = {},
    const std::vector<std::vector<double>>* label_similarity = nullptr);

}  // namespace ems
