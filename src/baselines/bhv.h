// BHV: behavioral similarity in the style of Nejati et al. [19] — the
// SimRank-like baseline the paper compares against. Differences from EMS
// that the paper exploits experimentally:
//   * no artificial event: pairs of "source" events (empty pre-sets) get
//     structural similarity 1, a source paired with a non-source gets 0
//     (the paper's Example 2: BHV(A, 2) = 0 but BHV(A, 1) = 1);
//   * forward-only propagation (predecessors), so dislocations at the
//     beginning of traces (testbed DS-B) defeat it;
//   * no edge-frequency coefficient; a plain decay constant c.
#pragma once

#include "core/similarity_matrix.h"
#include "graph/dependency_graph.h"

namespace ems {

struct ObsContext;

/// Parameters of the BHV baseline.
struct BhvOptions {
  /// Structural vs label weight, as in EMS.
  double alpha = 1.0;

  /// Propagation decay.
  double c = 0.8;

  double epsilon = 1e-4;
  int max_iterations = 100;

  /// Observability sink (span "bhv_similarity", counter
  /// "bhv.iterations"); null disables. Borrowed, not owned.
  ObsContext* obs = nullptr;
};

/// Computes the BHV similarity matrix between the real nodes of two
/// dependency graphs built WITHOUT artificial events. If the graphs carry
/// artificial events they are ignored (rows/columns stay zero).
/// `label_similarity`, if provided, must match the graphs' node counts.
SimilarityMatrix ComputeBhvSimilarity(
    const DependencyGraph& g1, const DependencyGraph& g2,
    const BhvOptions& options = {},
    const std::vector<std::vector<double>>* label_similarity = nullptr);

}  // namespace ems
