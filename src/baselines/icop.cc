#include "baselines/icop.h"

#include <algorithm>
#include <set>

#include "obs/context.h"

namespace ems {

namespace {

struct Candidate {
  std::vector<EventId> left;
  std::vector<EventId> right;
  double score = 0.0;
};

// m:1 searcher: for the target event `target` on one side, collect the
// other side's events whose label similarity to the target clears the
// member threshold; a group of >= 2 becomes an m:1 candidate scored by
// the mean member similarity.
void AddGroupCandidates(const std::vector<std::string>& names_grouped,
                        const std::vector<std::string>& names_target,
                        const LabelSimilarity& measure,
                        const IcopOptions& options, bool grouped_is_left,
                        std::vector<Candidate>* out) {
  for (EventId t = 0; t < static_cast<EventId>(names_target.size()); ++t) {
    std::vector<std::pair<double, EventId>> members;
    for (EventId g = 0; g < static_cast<EventId>(names_grouped.size()); ++g) {
      double sim = measure.Similarity(names_grouped[static_cast<size_t>(g)],
                                      names_target[static_cast<size_t>(t)]);
      if (sim >= options.min_member_similarity) {
        members.emplace_back(sim, g);
      }
    }
    if (members.size() < 2) continue;
    std::sort(members.begin(), members.end(),
              [](const auto& a, const auto& b) { return a.first > b.first; });
    if (static_cast<int>(members.size()) > options.max_group_size) {
      members.resize(static_cast<size_t>(options.max_group_size));
    }
    Candidate cand;
    double total = 0.0;
    for (const auto& [sim, g] : members) {
      cand.left.push_back(g);
      total += sim;
    }
    cand.right.push_back(t);
    cand.score = total / static_cast<double>(members.size());
    if (!grouped_is_left) std::swap(cand.left, cand.right);
    out->push_back(std::move(cand));
  }
}

}  // namespace

std::vector<Correspondence> IcopMatch(const EventLog& log1,
                                      const EventLog& log2,
                                      const LabelSimilarity& measure,
                                      const IcopOptions& options) {
  ScopedSpan span(options.obs, "icop_matching");
  const std::vector<std::string>& names1 = log1.event_names();
  const std::vector<std::string>& names2 = log2.event_names();

  std::vector<Candidate> candidates;
  // 1:1 searcher.
  for (EventId a = 0; a < static_cast<EventId>(names1.size()); ++a) {
    for (EventId b = 0; b < static_cast<EventId>(names2.size()); ++b) {
      double sim = measure.Similarity(names1[static_cast<size_t>(a)],
                                      names2[static_cast<size_t>(b)]);
      if (sim >= options.min_pair_similarity) {
        candidates.push_back(Candidate{{a}, {b}, sim});
      }
    }
  }
  // m:1 and 1:n searchers.
  AddGroupCandidates(names1, names2, measure, options,
                     /*grouped_is_left=*/true, &candidates);
  AddGroupCandidates(names2, names1, measure, options,
                     /*grouped_is_left=*/false, &candidates);

  ObsIncrement(options.obs, "icop.candidates",
               static_cast<uint64_t>(candidates.size()));

  // Selector: best score first, events used at most once per side.
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) {
              if (a.score != b.score) return a.score > b.score;
              if (a.left != b.left) return a.left < b.left;
              return a.right < b.right;
            });
  std::vector<bool> used1(names1.size(), false);
  std::vector<bool> used2(names2.size(), false);
  std::vector<Correspondence> out;
  for (const Candidate& cand : candidates) {
    bool free = true;
    for (EventId e : cand.left) free = free && !used1[static_cast<size_t>(e)];
    for (EventId e : cand.right) free = free && !used2[static_cast<size_t>(e)];
    if (!free) continue;
    for (EventId e : cand.left) used1[static_cast<size_t>(e)] = true;
    for (EventId e : cand.right) used2[static_cast<size_t>(e)] = true;
    Correspondence corr;
    corr.similarity = cand.score;
    for (EventId e : cand.left) corr.events1.push_back(names1[static_cast<size_t>(e)]);
    for (EventId e : cand.right) corr.events2.push_back(names2[static_cast<size_t>(e)]);
    out.push_back(std::move(corr));
  }
  ObsIncrement(options.obs, "icop.selected",
               static_cast<uint64_t>(out.size()));
  return out;
}

}  // namespace ems
