// GED baseline: graph edit distance for business process model similarity
// in the style of Dijkman, Dumas, Garcia-Banuelos [5]. The distance of a
// partial 1:1 mapping M combines the fraction of skipped nodes, the
// fraction of skipped edges, and the average node substitution cost; a
// greedy search grows M by the pair that lowers the distance most. GED
// evaluates local structure only — the paper shows this mishandles
// dislocated matchings (Example 2).
#pragma once

#include <vector>

#include "graph/dependency_graph.h"
#include "text/label_similarity.h"
#include "util/status.h"

namespace ems {

struct ObsContext;

/// Weights of the three edit-distance components.
struct GedOptions {
  double weight_skip_nodes = 1.0;
  double weight_skip_edges = 1.0;
  double weight_substitution = 1.0;

  /// When no label measure is supplied (opaque names), node substitution
  /// similarity falls back to a local structural feature similarity
  /// (frequency and degree profiles).
  const LabelSimilarity* label_measure = nullptr;

  /// Greedy search stops when no candidate pair lowers the distance by
  /// more than this.
  double min_improvement = 1e-9;

  /// Observability sink (span "ged_matching", counter
  /// "ged.greedy_steps"); null disables. Borrowed, not owned.
  ObsContext* obs = nullptr;
};

/// Result of GED matching: the mapping and its distance.
struct GedResult {
  /// mapping[i] = node of graph 2 matched to real node i of graph 1
  /// (indices exclude artificial nodes), or -1 if skipped.
  std::vector<int> mapping;

  /// Graph edit distance of the returned mapping, in [0, 1]; lower is
  /// better.
  double distance = 1.0;

  /// Node-pair substitution similarities used (real nodes only), exposed
  /// so the evaluation can rank pairs if needed.
  std::vector<std::vector<double>> node_similarity;
};

/// Computes the greedy GED mapping between the real nodes of two
/// dependency graphs (artificial nodes, if present, are ignored).
GedResult ComputeGedMatching(const DependencyGraph& g1,
                             const DependencyGraph& g2,
                             const GedOptions& options = {});

/// Distance of an explicit mapping (same encoding as GedResult::mapping),
/// for tests and for the paper's Example 2 style comparisons.
double GedDistance(const DependencyGraph& g1, const DependencyGraph& g2,
                   const std::vector<int>& mapping,
                   const GedOptions& options = {});

}  // namespace ems
