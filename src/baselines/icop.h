// ICoP-style matcher (Weidlich, Dijkman, Mendling [23]): identification
// of 1:1 and m:n correspondences from label similarity alone — the
// composite-events baseline the paper's related work contrasts ("it uses
// label similarity of events to judge m:n matching, which is
// non-effective on opaque event names"). Structure is ignored entirely:
// searchers propose candidate group pairs from term overlap, a selector
// greedily picks non-overlapping correspondences by score.
#pragma once

#include <string>
#include <vector>

#include "core/matcher.h"
#include "log/event_log.h"
#include "text/label_similarity.h"

namespace ems {

struct ObsContext;

struct IcopOptions {
  /// Minimum label similarity for a 1:1 candidate.
  double min_pair_similarity = 0.5;

  /// Minimum per-member label similarity for joining an m:1 group: each
  /// grouped event must be at least this similar to the target event.
  double min_member_similarity = 0.3;

  /// Maximum members on the grouped side of an m:1 / 1:n candidate.
  int max_group_size = 3;

  /// Observability sink (span "icop_matching", counters
  /// "icop.candidates" / "icop.selected"); null disables. Borrowed.
  ObsContext* obs = nullptr;
};

/// Runs the ICoP-style matching and returns the selected
/// correspondences (singletons and groups).
std::vector<Correspondence> IcopMatch(const EventLog& log1,
                                      const EventLog& log2,
                                      const LabelSimilarity& measure,
                                      const IcopOptions& options = {});

}  // namespace ems
