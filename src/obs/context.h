// The bundle a pipeline run records into: one trace recorder plus one
// metrics registry. Created by whoever wants observability (CLI tools,
// the eval harness, tests) and passed down by pointer; every instrumented
// call site tolerates null, so a default-constructed options struct runs
// with zero instrumentation.
#pragma once

#include <cstdint>
#include <string_view>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace ems {

/// \brief Shared sink for spans and metrics of one pipeline run.
struct ObsContext {
  TraceRecorder trace;
  MetricsRegistry metrics;
};

/// Null-safe counter increment (registry lookup per call: fine at run or
/// iteration granularity; resolve a Counter* once for per-pair loops).
inline void ObsIncrement(ObsContext* obs, std::string_view name,
                         uint64_t n = 1) {
  if (obs != nullptr) obs->metrics.GetCounter(name)->Increment(n);
}

/// Null-safe gauge write.
inline void ObsSetGauge(ObsContext* obs, std::string_view name, double value) {
  if (obs != nullptr) obs->metrics.GetGauge(name)->Set(value);
}

/// Null-safe histogram observation (default buckets).
inline void ObsObserve(ObsContext* obs, std::string_view name, double value) {
  if (obs != nullptr) obs->metrics.GetHistogram(name)->Observe(value);
}

/// Null-safe quantile-histogram observation (log-scale latency buckets).
inline void ObsObserveQuantile(ObsContext* obs, std::string_view name,
                               double value) {
  if (obs != nullptr) obs->metrics.GetQuantileHistogram(name)->Observe(value);
}

}  // namespace ems
