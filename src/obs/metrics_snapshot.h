// Point-in-time capture of a MetricsRegistry plus interval diffing:
// counters are monotonic, so the difference of two snapshots divided by
// the interval is a rate (jobs/s, bytes/s) — the quantity operators
// actually watch on a long-lived service. A snapshot is plain data
// (maps of values), safe to hold, compare, and serialize after the
// registry has moved on.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "obs/metrics.h"

namespace ems {

class JsonWriter;

/// Digest of one histogram (fixed-bucket or quantile) at capture time.
struct HistogramStats {
  uint64_t count = 0;
  double sum = 0.0;
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
};

/// \brief All instrument values of a registry at one instant.
struct MetricsSnapshot {
  /// Monotonic capture time in seconds (steady clock since process
  /// start); the denominator of DiffRates.
  double at_seconds = 0.0;

  std::map<std::string, uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramStats> histograms;
  std::map<std::string, HistogramStats> quantile_histograms;

  /// Emits this snapshot as one JSON object value: {"at_seconds": ..,
  /// "counters": {..}, "gauges": {..}, "histograms": {..},
  /// "quantile_histograms": {..}}. Integer-valued gauges render as
  /// integers.
  void WriteJson(JsonWriter* w) const;
};

/// Captures every instrument of `registry` now.
MetricsSnapshot CaptureMetricsSnapshot(const MetricsRegistry& registry);

/// Counter rates between two snapshots, in events per second, keyed by
/// counter name. Counters present only in `cur` count from zero. A
/// counter that moved backwards (the registry was reset between the
/// snapshots) rates as cur/interval — a restart, never a negative rate.
/// Empty when the interval is not positive.
std::map<std::string, double> DiffRates(const MetricsSnapshot& prev,
                                        const MetricsSnapshot& cur);

}  // namespace ems
