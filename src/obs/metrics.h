// Pipeline metrics: named counters, gauges, and fixed-bucket histograms
// behind a registry. Increments are lock-free (std::atomic, relaxed) so
// instruments can live in hot loops; the registry itself takes a mutex
// only on name lookup, so hot paths should resolve their instrument once
// and increment through the pointer (instruments are never deallocated
// while the registry lives).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "obs/quantile_histogram.h"

namespace ems {

class JsonWriter;

/// Monotonically increasing event count (EMS iterations, pruned pairs,
/// candidates evaluated, ...).
class Counter {
 public:
  void Increment(uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }

  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Last-written value (graph sizes, objective values, ...).
class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }

  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram: bucket i counts observations <= bounds[i];
/// one overflow bucket counts the rest. Bounds are fixed at creation.
class Histogram {
 public:
  /// `bounds` must be strictly increasing and non-empty.
  explicit Histogram(std::vector<double> bounds);

  void Observe(double v);

  const std::vector<double>& bounds() const { return bounds_; }

  /// Count in bucket i (i == bounds().size() is the overflow bucket).
  uint64_t bucket_count(size_t i) const {
    return counts_[i].load(std::memory_order_relaxed);
  }

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<uint64_t>[]> counts_raw_;
  std::atomic<uint64_t>* counts_;  // bounds_.size() + 1 entries
  std::atomic<uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// Default histogram buckets: a coarse exponential ladder suitable for
/// iteration counts and millisecond timings alike.
const std::vector<double>& DefaultHistogramBounds();

/// The value at quantile `q` of a fixed-bucket histogram, interpolated
/// within the containing bucket. 0 when the histogram is empty.
double HistogramQuantile(const Histogram& hist, double q);

/// True when a gauge value should render as an integer (queue depths,
/// byte counts): integral and exactly representable, so neither JSON nor
/// exposition output ever shows `3e+09` for a byte gauge.
bool GaugeValueIsIntegral(double v);

/// The per-shard metric naming convention of the sharded service:
/// `<prefix>.<shard>.<name>` (e.g. "serve.shard.0.routed", exposed as
/// serve_shard_0_routed_total). One blessed spot so the router, the
/// dashboard, and the CI exposition checks can never drift apart.
std::string ShardMetricName(std::string_view prefix, int shard,
                            std::string_view name);

/// \brief Owns all named instruments of one pipeline run.
///
/// Get* returns a stable pointer, creating the instrument on first use;
/// names are exported in sorted order so JSON output is deterministic.
/// Thread-safe.
class MetricsRegistry {
 public:
  Counter* GetCounter(std::string_view name);
  Gauge* GetGauge(std::string_view name);

  /// `bounds` applies only when the histogram does not exist yet.
  Histogram* GetHistogram(std::string_view name,
                          const std::vector<double>& bounds =
                              DefaultHistogramBounds());

  /// `options` applies only when the quantile histogram does not exist
  /// yet (log-scale latency instrument; see quantile_histogram.h).
  QuantileHistogram* GetQuantileHistogram(
      std::string_view name,
      const QuantileHistogramOptions& options = QuantileHistogramOptions());

  /// The counter's current value, or 0 when it was never created.
  uint64_t CounterValue(std::string_view name) const;

  size_t NumInstruments() const;

  // Enumeration in sorted name order, for snapshot capture and text
  // exposition. The callback runs under the registry mutex: it must not
  // call back into the registry. Instrument reads are lock-free, so
  // holding the mutex does not stall Observe/Increment on other threads.
  void ForEachCounter(
      const std::function<void(const std::string&, const Counter&)>& fn) const;
  void ForEachGauge(
      const std::function<void(const std::string&, const Gauge&)>& fn) const;
  void ForEachHistogram(
      const std::function<void(const std::string&, const Histogram&)>& fn)
      const;
  void ForEachQuantileHistogram(
      const std::function<void(const std::string&, const QuantileHistogram&)>&
          fn) const;

  /// Emits {"counters": {...}, "gauges": {...}, "histograms": {...}} as
  /// one JSON object value (the caller provides the surrounding key).
  void WriteJson(JsonWriter* w) const;

  /// Convenience: the WriteJson document as a standalone string.
  std::string ToJson() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
  std::map<std::string, std::unique_ptr<QuantileHistogram>, std::less<>>
      quantile_histograms_;
};

}  // namespace ems
