// Slow-request flight recorder: a bounded in-memory record of the
// requests an operator asks about first — the N slowest and the N most
// recently failed — each retained with its span tree, so `{"cmd":"slow"}`
// on a live service answers "what was slow and where did the time go"
// without external tracing infrastructure. Admission is O(N) under a
// mutex on the request-completion path (N is small and requests are
// milliseconds); memory is bounded by the two capacities regardless of
// uptime.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "obs/trace.h"

namespace ems {

class JsonWriter;

/// One completed request as retained by the recorder.
struct FlightRecord {
  std::string request_id;
  std::string outcome;  // "ok" or "error"
  std::string error;    // status message; empty for ok requests
  double millis = 0.0;
  /// Admission order (1-based, assigned by the recorder): a total order
  /// for "most recent" even when wall times tie.
  uint64_t seq = 0;
  /// Flat span snapshot of the request's trace (may be empty).
  std::vector<SpanRecord> spans;
};

/// \brief Bounded dual-ring retention of slow and failed requests.
///
/// All methods are thread-safe. The slow side keeps the `slow_capacity`
/// largest-millis records seen so far (ties broken toward newer); the
/// failure side keeps the `failed_capacity` most recent records whose
/// outcome is not "ok". One record can appear on both sides.
class FlightRecorder {
 public:
  explicit FlightRecorder(size_t slow_capacity = 16,
                          size_t failed_capacity = 16);

  /// Admits one completed request (seq is assigned by the recorder).
  void Record(FlightRecord record);

  /// Slow retention, slowest first.
  std::vector<FlightRecord> Slowest() const;

  /// Failure retention, most recent first.
  std::vector<FlightRecord> RecentFailures() const;

  /// Total requests offered to Record (admitted or not).
  uint64_t records_seen() const;

  size_t slow_capacity() const { return slow_capacity_; }
  size_t failed_capacity() const { return failed_capacity_; }

  /// Emits {"records_seen": .., "slowest": [..], "recent_failures": [..]}
  /// as one JSON object value; each record carries its span tree.
  void WriteJson(JsonWriter* w) const;

 private:
  const size_t slow_capacity_;
  const size_t failed_capacity_;
  mutable std::mutex mu_;
  uint64_t next_seq_ = 1;
  uint64_t seen_ = 0;
  std::vector<FlightRecord> slow_;    // unordered; sorted on read
  std::vector<FlightRecord> failed_;  // ring, oldest first
};

}  // namespace ems
