#include "obs/trace.h"

#include <algorithm>
#include <cstdio>

#include "obs/context.h"
#include "util/json_writer.h"
#include "util/status.h"

namespace ems {

TraceRecorder::TraceRecorder(size_t max_spans)
    : epoch_(std::chrono::steady_clock::now()), max_spans_(max_spans) {}

int64_t TraceRecorder::ElapsedMicros() const {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

int32_t TraceRecorder::BeginSpan(std::string_view name) {
  const int64_t now = ElapsedMicros();
  std::lock_guard<std::mutex> lock(mu_);
  if (spans_.size() >= max_spans_) {
    ++dropped_;
    return -1;
  }
  SpanRecord span;
  span.name = std::string(name);
  span.id = static_cast<int32_t>(spans_.size());
  span.parent = stack_.empty() ? -1 : stack_.back();
  span.depth = static_cast<int32_t>(stack_.size());
  span.start_us = now;
  spans_.push_back(std::move(span));
  stack_.push_back(spans_.back().id);
  return spans_.back().id;
}

void TraceRecorder::EndSpan(int32_t id) {
  if (id < 0) return;
  const int64_t now = ElapsedMicros();
  std::lock_guard<std::mutex> lock(mu_);
  if (static_cast<size_t>(id) >= spans_.size()) return;
  spans_[static_cast<size_t>(id)].duration_us =
      now - spans_[static_cast<size_t>(id)].start_us;
  // LIFO discipline: pop the stack down to (and including) this span.
  // Stray ids deeper in the stack indicate a scoping bug upstream; the
  // pop keeps the recorder consistent regardless.
  while (!stack_.empty()) {
    int32_t top = stack_.back();
    stack_.pop_back();
    if (top == id) break;
  }
}

std::vector<SpanRecord> TraceRecorder::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return spans_;
}

size_t TraceRecorder::NumSpans() const {
  std::lock_guard<std::mutex> lock(mu_);
  return spans_.size();
}

uint64_t TraceRecorder::dropped_spans() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

std::string TraceRecorder::RenderTree() const {
  std::vector<SpanRecord> spans = Snapshot();
  std::string out;
  char line[256];
  for (const SpanRecord& s : spans) {
    double ms = s.duration_us < 0 ? -1.0
                                  : static_cast<double>(s.duration_us) / 1000.0;
    std::snprintf(line, sizeof(line), "%*s%s %s%.3f ms\n", s.depth * 2, "",
                  s.name.c_str(), s.duration_us < 0 ? "(open) " : "",
                  ms < 0 ? 0.0 : ms);
    out += line;
  }
  return out;
}

std::string TraceRecorder::ToChromeTraceJson() const {
  std::vector<SpanRecord> spans = Snapshot();
  JsonWriter w;
  w.BeginObject();
  w.Key("traceEvents");
  w.BeginArray();
  for (const SpanRecord& s : spans) {
    w.BeginObject();
    w.Key("name");
    w.String(s.name);
    w.Key("ph");
    w.String("X");
    w.Key("ts");
    w.Int(s.start_us);
    w.Key("dur");
    w.Int(s.duration_us < 0 ? 0 : s.duration_us);
    w.Key("pid");
    w.Int(1);
    w.Key("tid");
    w.Int(1);
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  return w.str();
}

namespace {

void WriteSpanSubtree(const std::vector<SpanRecord>& spans,
                      const std::vector<std::vector<int32_t>>& children,
                      int32_t id, JsonWriter* w) {
  const SpanRecord& s = spans[static_cast<size_t>(id)];
  w->BeginObject();
  w->Key("name");
  w->String(s.name);
  w->Key("start_us");
  w->Int(s.start_us);
  w->Key("duration_us");
  w->Int(s.duration_us);
  w->Key("children");
  w->BeginArray();
  for (int32_t child : children[static_cast<size_t>(id)]) {
    WriteSpanSubtree(spans, children, child, w);
  }
  w->EndArray();
  w->EndObject();
}

}  // namespace

void WriteSpanForestJson(const std::vector<SpanRecord>& spans, JsonWriter* w) {
  // Parent links address positions in the snapshot; the `id` field is
  // ignored so hand-built records (tests, future deserialization) can't
  // index out of bounds. Out-of-range parents render as roots.
  std::vector<std::vector<int32_t>> children(spans.size());
  for (size_t i = 0; i < spans.size(); ++i) {
    const int32_t parent = spans[i].parent;
    if (parent >= 0 && static_cast<size_t>(parent) < spans.size() &&
        static_cast<size_t>(parent) != i) {
      children[static_cast<size_t>(parent)].push_back(
          static_cast<int32_t>(i));
    }
  }
  w->BeginArray();
  for (size_t i = 0; i < spans.size(); ++i) {
    const int32_t parent = spans[i].parent;
    const bool root = parent < 0 ||
                      static_cast<size_t>(parent) >= spans.size() ||
                      static_cast<size_t>(parent) == i;
    if (root) WriteSpanSubtree(spans, children, static_cast<int32_t>(i), w);
  }
  w->EndArray();
}

void TraceRecorder::WriteJson(JsonWriter* w) const {
  WriteSpanForestJson(Snapshot(), w);
}

ScopedSpan::ScopedSpan(ObsContext* obs, std::string_view name)
    : ScopedSpan(obs != nullptr ? &obs->trace : nullptr, name) {}

}  // namespace ems
