// Log-scale quantile histogram: the latency instrument of the live
// telemetry plane. Fixed log-spaced buckets cover [min_value, max_value)
// with a configurable resolution per doubling, plus an underflow and an
// overflow bucket; Observe is lock-free (one relaxed fetch_add per
// observation), and p50/p90/p99 are extracted exactly from the bucket
// counts — "exact" meaning deterministic given the counts, with relative
// value error bounded by the bucket width (~9% at the default 8 buckets
// per doubling). Unlike the fixed-bucket Histogram (metrics.h), which is
// sized for iteration counts, this one spans microseconds to hours of
// wall time without choosing bounds per instrument.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

namespace ems {

/// Bucket layout of a QuantileHistogram, fixed at construction.
struct QuantileHistogramOptions {
  /// Lower bound of the log-spaced range; observations below land in the
  /// underflow bucket. Must be > 0.
  double min_value = 1e-3;

  /// Upper bound of the log-spaced range; observations at or above land
  /// in the overflow bucket. Must be > min_value.
  double max_value = 1e7;

  /// Buckets per power of two; 8 bounds the relative quantile error at
  /// 2^(1/8)-1 ~ 9%. Must be >= 1.
  int buckets_per_doubling = 8;
};

/// \brief Lock-free log-bucketed histogram with quantile extraction.
///
/// All mutators and accessors are safe to call concurrently; quantile
/// extraction reads a racy snapshot of the bucket counts, which is the
/// standard monitoring trade (a scrape concurrent with traffic may be
/// off by the in-flight observations, never torn).
class QuantileHistogram {
 public:
  explicit QuantileHistogram(
      const QuantileHistogramOptions& options = QuantileHistogramOptions());

  /// Records one observation. Lock-free: two relaxed fetch_adds plus one
  /// CAS-free index computation (and two bounded CAS loops for min/max).
  void Observe(double v);

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }

  /// Smallest / largest value observed so far; 0 when empty.
  double min_value() const;
  double max_value() const;

  /// The value at quantile `q` in [0, 1], interpolated within the
  /// containing bucket (geometrically, matching the log spacing).
  /// Returns 0 when the histogram is empty.
  double Quantile(double q) const;

  /// Total bucket count: log-spaced buckets + underflow + overflow.
  size_t num_buckets() const { return bounds_.size() + 1; }

  /// Count in bucket `i` (0 = underflow, num_buckets()-1 = overflow).
  uint64_t bucket_count(size_t i) const {
    return counts_[i].load(std::memory_order_relaxed);
  }

  /// Upper bound of bucket `i` (exclusive); +inf for the overflow bucket.
  double bucket_upper_bound(size_t i) const;

  /// The bucket index `v` lands in — exposed for boundary tests.
  size_t BucketIndex(double v) const;

  const QuantileHistogramOptions& options() const { return options_; }

 private:
  QuantileHistogramOptions options_;
  double log_min_ = 0.0;        // std::log(options_.min_value)
  double inv_log_step_ = 0.0;   // buckets per natural-log unit
  std::vector<double> bounds_;  // upper bound of bucket i, i < bounds_.size()
  std::unique_ptr<std::atomic<uint64_t>[]> counts_;  // bounds_.size() + 1
  std::atomic<uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> observed_min_{0.0};
  std::atomic<double> observed_max_{0.0};
  std::atomic<bool> any_{false};
};

/// Quantile extraction shared with the fixed-bucket Histogram: given
/// bucket upper bounds (the last, overflow bucket has no bound) and
/// counts (bounds.size() + 1 entries), returns the value at quantile `q`
/// with linear interpolation inside the containing bucket. 0 when empty.
double QuantileFromBucketCounts(const std::vector<double>& bounds,
                                const std::vector<uint64_t>& counts, double q);

}  // namespace ems
