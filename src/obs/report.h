// PipelineReport: the one document a run hands to tooling — span tree,
// metric values, and the pipeline's own counters (EmsStats /
// CompositeStats) merged and serialized through util/json_writer. This
// is what `ems_match --metrics-out=...` writes and what bench_common.h
// folds into BENCH_*.json.
#pragma once

#include <string>

#include "core/composite_matcher.h"
#include "core/ems_similarity.h"
#include "util/status.h"

namespace ems {

struct ObsContext;

/// \brief Merged observability snapshot of one pipeline run.
struct PipelineReport {
  /// End-to-end wall time as measured by the caller (spans cover the
  /// instrumented phases; this anchors them to the full run).
  double total_millis = 0.0;

  /// Pipeline counters, accumulated by the caller (see the reset
  /// semantics documented on the structs).
  EmsStats ems_stats;
  CompositeStats composite_stats;

  /// Borrowed span/metric source; may be null (stats-only report).
  const ObsContext* obs = nullptr;

  /// {"total_millis": .., "spans": [...], "metrics": {...},
  ///  "ems": {...}, "composite": {...}}
  std::string ToJson() const;

  /// Chrome trace_event document ("{}" when obs is null).
  std::string ToChromeTraceJson() const;

  /// Human-readable span tree plus headline counters.
  std::string RenderText() const;

  Status WriteJsonFile(const std::string& path) const;
  Status WriteChromeTraceFile(const std::string& path) const;
};

/// Assembles a report from a context and the match result counters.
PipelineReport BuildPipelineReport(const ObsContext* obs,
                                   const EmsStats& ems_stats,
                                   const CompositeStats& composite_stats,
                                   double total_millis);

}  // namespace ems
