// Phase tracing: nested spans with start/stop timestamps and parent
// links, recording where pipeline time goes (graph build -> label
// similarity -> EMS fixpoint -> pruning -> selection -> composite
// search). Exports a human-readable tree and Chrome trace_event JSON
// (load chrome://tracing or https://ui.perfetto.dev).
#pragma once

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace ems {

class JsonWriter;
struct ObsContext;

/// One closed (or still-open) span.
struct SpanRecord {
  std::string name;
  int32_t id = -1;
  int32_t parent = -1;  // index of the enclosing span; -1 for roots
  int32_t depth = 0;
  int64_t start_us = 0;      // microseconds since recorder creation
  int64_t duration_us = -1;  // -1 while the span is open
};

/// \brief Records a tree of timed spans.
///
/// Spans must be opened and closed on one thread in LIFO order (the
/// ScopedSpan RAII guard guarantees this); a mutex makes concurrent
/// recorders from different call sites safe. The recorder caps the span
/// count (composite search evaluates hundreds of candidates) — once the
/// cap is hit, BeginSpan returns -1 and `dropped_spans` counts the loss.
class TraceRecorder {
 public:
  explicit TraceRecorder(size_t max_spans = 4096);

  /// Opens a span as a child of the innermost open span. Returns the
  /// span id, or -1 when the recorder is at capacity.
  int32_t BeginSpan(std::string_view name);

  /// Closes the span; -1 is a no-op (capped BeginSpan).
  void EndSpan(int32_t id);

  /// Snapshot of all spans recorded so far (open spans have
  /// duration_us == -1).
  std::vector<SpanRecord> Snapshot() const;

  size_t NumSpans() const;
  uint64_t dropped_spans() const;

  /// Microseconds elapsed since the recorder was created.
  int64_t ElapsedMicros() const;

  /// Indented human-readable tree with per-span durations in ms.
  std::string RenderTree() const;

  /// Chrome trace_event JSON: {"traceEvents": [{"name", "ph": "X",
  /// "ts", "dur", "pid", "tid"}, ...]}.
  std::string ToChromeTraceJson() const;

  /// Emits the span tree as one JSON array value of nested
  /// {"name", "start_us", "duration_us", "children": [...]} objects.
  void WriteJson(JsonWriter* w) const;

 private:
  mutable std::mutex mu_;
  std::chrono::steady_clock::time_point epoch_;
  std::vector<SpanRecord> spans_;
  std::vector<int32_t> stack_;  // open span ids, innermost last
  uint64_t dropped_ = 0;
  size_t max_spans_;
};

/// Emits a flat span snapshot (as returned by TraceRecorder::Snapshot)
/// as one JSON array of nested {"name", "start_us", "duration_us",
/// "children": [...]} objects — shared by the live report and the
/// flight recorder's retained span trees.
void WriteSpanForestJson(const std::vector<SpanRecord>& spans, JsonWriter* w);

/// \brief RAII span guard; a null context/recorder disables it entirely.
class ScopedSpan {
 public:
  ScopedSpan(TraceRecorder* recorder, std::string_view name)
      : recorder_(recorder),
        id_(recorder != nullptr ? recorder->BeginSpan(name) : -1) {}

  /// Convenience: spans the trace recorder of `obs` (null = no-op).
  ScopedSpan(ObsContext* obs, std::string_view name);

  ~ScopedSpan() { End(); }

  /// Closes the span early; the destructor then becomes a no-op.
  void End() {
    if (recorder_ != nullptr) {
      recorder_->EndSpan(id_);
      recorder_ = nullptr;
    }
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  TraceRecorder* recorder_;
  int32_t id_;
};

}  // namespace ems
