#include "obs/metrics.h"

#include <algorithm>

#include "util/json_writer.h"
#include "util/status.h"

namespace ems {

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  EMS_DCHECK(!bounds_.empty());
  EMS_DCHECK(std::is_sorted(bounds_.begin(), bounds_.end()));
  counts_raw_ =
      std::make_unique<std::atomic<uint64_t>[]>(bounds_.size() + 1);
  counts_ = counts_raw_.get();
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    counts_[i].store(0, std::memory_order_relaxed);
  }
}

void Histogram::Observe(double v) {
  size_t i = static_cast<size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), v) - bounds_.begin());
  counts_[i].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
}

const std::vector<double>& DefaultHistogramBounds() {
  static const std::vector<double> kBounds = {1,   2,   5,    10,   20,  50,
                                              100, 200, 500,  1000, 2000,
                                              5000};
  return kBounds;
}

Counter* MetricsRegistry::GetCounter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return it->second.get();
}

Gauge* MetricsRegistry::GetGauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return it->second.get();
}

Histogram* MetricsRegistry::GetHistogram(std::string_view name,
                                         const std::vector<double>& bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name), std::make_unique<Histogram>(bounds))
             .first;
  }
  return it->second.get();
}

uint64_t MetricsRegistry::CounterValue(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second->value();
}

size_t MetricsRegistry::NumInstruments() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_.size() + gauges_.size() + histograms_.size();
}

void MetricsRegistry::WriteJson(JsonWriter* w) const {
  std::lock_guard<std::mutex> lock(mu_);
  w->BeginObject();
  w->Key("counters");
  w->BeginObject();
  for (const auto& [name, counter] : counters_) {
    w->Key(name);
    w->Int(static_cast<long long>(counter->value()));
  }
  w->EndObject();
  w->Key("gauges");
  w->BeginObject();
  for (const auto& [name, gauge] : gauges_) {
    w->Key(name);
    w->Number(gauge->value());
  }
  w->EndObject();
  w->Key("histograms");
  w->BeginObject();
  for (const auto& [name, hist] : histograms_) {
    w->Key(name);
    w->BeginObject();
    w->Key("count");
    w->Int(static_cast<long long>(hist->count()));
    w->Key("sum");
    w->Number(hist->sum());
    w->Key("bounds");
    w->BeginArray();
    for (double b : hist->bounds()) w->Number(b);
    w->EndArray();
    w->Key("buckets");
    w->BeginArray();
    for (size_t i = 0; i <= hist->bounds().size(); ++i) {
      w->Int(static_cast<long long>(hist->bucket_count(i)));
    }
    w->EndArray();
    w->EndObject();
  }
  w->EndObject();
  w->EndObject();
}

std::string MetricsRegistry::ToJson() const {
  JsonWriter w;
  WriteJson(&w);
  return w.str();
}

}  // namespace ems
