#include "obs/metrics.h"

#include <algorithm>
#include <cmath>

#include "util/json_writer.h"
#include "util/status.h"

namespace ems {

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  EMS_DCHECK(!bounds_.empty());
  EMS_DCHECK(std::is_sorted(bounds_.begin(), bounds_.end()));
  counts_raw_ =
      std::make_unique<std::atomic<uint64_t>[]>(bounds_.size() + 1);
  counts_ = counts_raw_.get();
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    counts_[i].store(0, std::memory_order_relaxed);
  }
}

void Histogram::Observe(double v) {
  size_t i = static_cast<size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), v) - bounds_.begin());
  counts_[i].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
}

double HistogramQuantile(const Histogram& hist, double q) {
  std::vector<uint64_t> counts(hist.bounds().size() + 1);
  for (size_t i = 0; i <= hist.bounds().size(); ++i) {
    counts[i] = hist.bucket_count(i);
  }
  return QuantileFromBucketCounts(hist.bounds(), counts, q);
}

bool GaugeValueIsIntegral(double v) {
  // 2^53 bounds exact double integers; beyond it "integral" is a lie.
  return std::isfinite(v) && std::nearbyint(v) == v &&
         std::abs(v) <= 9007199254740992.0;
}

std::string ShardMetricName(std::string_view prefix, int shard,
                            std::string_view name) {
  std::string out(prefix);
  out += '.';
  out += std::to_string(shard);
  out += '.';
  out += name;
  return out;
}

const std::vector<double>& DefaultHistogramBounds() {
  static const std::vector<double> kBounds = {1,   2,   5,    10,   20,  50,
                                              100, 200, 500,  1000, 2000,
                                              5000};
  return kBounds;
}

Counter* MetricsRegistry::GetCounter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return it->second.get();
}

Gauge* MetricsRegistry::GetGauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return it->second.get();
}

Histogram* MetricsRegistry::GetHistogram(std::string_view name,
                                         const std::vector<double>& bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name), std::make_unique<Histogram>(bounds))
             .first;
  }
  return it->second.get();
}

QuantileHistogram* MetricsRegistry::GetQuantileHistogram(
    std::string_view name, const QuantileHistogramOptions& options) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = quantile_histograms_.find(name);
  if (it == quantile_histograms_.end()) {
    it = quantile_histograms_
             .emplace(std::string(name),
                      std::make_unique<QuantileHistogram>(options))
             .first;
  }
  return it->second.get();
}

void MetricsRegistry::ForEachCounter(
    const std::function<void(const std::string&, const Counter&)>& fn) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, counter] : counters_) fn(name, *counter);
}

void MetricsRegistry::ForEachGauge(
    const std::function<void(const std::string&, const Gauge&)>& fn) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, gauge] : gauges_) fn(name, *gauge);
}

void MetricsRegistry::ForEachHistogram(
    const std::function<void(const std::string&, const Histogram&)>& fn)
    const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, hist] : histograms_) fn(name, *hist);
}

void MetricsRegistry::ForEachQuantileHistogram(
    const std::function<void(const std::string&, const QuantileHistogram&)>&
        fn) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, hist] : quantile_histograms_) fn(name, *hist);
}

uint64_t MetricsRegistry::CounterValue(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second->value();
}

size_t MetricsRegistry::NumInstruments() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_.size() + gauges_.size() + histograms_.size() +
         quantile_histograms_.size();
}

void MetricsRegistry::WriteJson(JsonWriter* w) const {
  std::lock_guard<std::mutex> lock(mu_);
  w->BeginObject();
  w->Key("counters");
  w->BeginObject();
  for (const auto& [name, counter] : counters_) {
    w->Key(name);
    w->Int(static_cast<long long>(counter->value()));
  }
  w->EndObject();
  w->Key("gauges");
  w->BeginObject();
  for (const auto& [name, gauge] : gauges_) {
    w->Key(name);
    const double v = gauge->value();
    // Integer-valued gauges (queue depth, cache bytes) must read back as
    // integers, never as scientific-notation doubles.
    if (GaugeValueIsIntegral(v)) {
      w->Int(static_cast<long long>(v));
    } else {
      w->Number(v);
    }
  }
  w->EndObject();
  w->Key("histograms");
  w->BeginObject();
  for (const auto& [name, hist] : histograms_) {
    w->Key(name);
    w->BeginObject();
    w->Key("count");
    w->Int(static_cast<long long>(hist->count()));
    w->Key("sum");
    w->Number(hist->sum());
    w->Key("bounds");
    w->BeginArray();
    for (double b : hist->bounds()) w->Number(b);
    w->EndArray();
    w->Key("buckets");
    w->BeginArray();
    for (size_t i = 0; i <= hist->bounds().size(); ++i) {
      w->Int(static_cast<long long>(hist->bucket_count(i)));
    }
    w->EndArray();
    w->EndObject();
  }
  w->EndObject();
  w->Key("quantile_histograms");
  w->BeginObject();
  for (const auto& [name, hist] : quantile_histograms_) {
    w->Key(name);
    w->BeginObject();
    w->Key("count");
    w->Int(static_cast<long long>(hist->count()));
    w->Key("sum");
    w->Number(hist->sum());
    w->Key("min");
    w->Number(hist->min_value());
    w->Key("max");
    w->Number(hist->max_value());
    w->Key("p50");
    w->Number(hist->Quantile(0.50));
    w->Key("p90");
    w->Number(hist->Quantile(0.90));
    w->Key("p99");
    w->Number(hist->Quantile(0.99));
    w->EndObject();
  }
  w->EndObject();
  w->EndObject();
}

std::string MetricsRegistry::ToJson() const {
  JsonWriter w;
  WriteJson(&w);
  return w.str();
}

}  // namespace ems
