#include "obs/flight_recorder.h"

#include <algorithm>

#include "util/json_writer.h"

namespace ems {

namespace {

// Slowest first; newer wins ties so a fresh repro beats a stale one.
bool SlowerThan(const FlightRecord& a, const FlightRecord& b) {
  if (a.millis != b.millis) return a.millis > b.millis;
  return a.seq > b.seq;
}

void WriteRecord(const FlightRecord& r, JsonWriter* w) {
  w->BeginObject();
  w->Key("request_id");
  w->String(r.request_id);
  w->Key("outcome");
  w->String(r.outcome);
  if (!r.error.empty()) {
    w->Key("error");
    w->String(r.error);
  }
  w->Key("millis");
  w->Number(r.millis);
  w->Key("seq");
  w->Int(static_cast<long long>(r.seq));
  w->Key("spans");
  WriteSpanForestJson(r.spans, w);
  w->EndObject();
}

}  // namespace

FlightRecorder::FlightRecorder(size_t slow_capacity, size_t failed_capacity)
    : slow_capacity_(slow_capacity), failed_capacity_(failed_capacity) {
  slow_.reserve(slow_capacity_);
  failed_.reserve(failed_capacity_);
}

void FlightRecorder::Record(FlightRecord record) {
  std::lock_guard<std::mutex> lock(mu_);
  ++seen_;
  record.seq = next_seq_++;
  if (record.outcome != "ok" && failed_capacity_ > 0) {
    if (failed_.size() == failed_capacity_) {
      failed_.erase(failed_.begin());  // evict the oldest failure
    }
    failed_.push_back(record);
  }
  if (slow_capacity_ == 0) return;
  if (slow_.size() < slow_capacity_) {
    slow_.push_back(std::move(record));
    return;
  }
  // At capacity: replace the fastest retained record iff this one is
  // slower — the retained set is always the global top-N by millis.
  // (SlowerThan orders slowest-first, so the "maximum" is the fastest.)
  auto fastest = std::max_element(slow_.begin(), slow_.end(), SlowerThan);
  if (SlowerThan(record, *fastest)) *fastest = std::move(record);
}

std::vector<FlightRecord> FlightRecorder::Slowest() const {
  std::vector<FlightRecord> out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    out = slow_;
  }
  std::sort(out.begin(), out.end(), SlowerThan);
  return out;
}

std::vector<FlightRecord> FlightRecorder::RecentFailures() const {
  std::vector<FlightRecord> out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    out = failed_;
  }
  std::reverse(out.begin(), out.end());  // ring is oldest first
  return out;
}

uint64_t FlightRecorder::records_seen() const {
  std::lock_guard<std::mutex> lock(mu_);
  return seen_;
}

void FlightRecorder::WriteJson(JsonWriter* w) const {
  const std::vector<FlightRecord> slowest = Slowest();
  const std::vector<FlightRecord> failures = RecentFailures();
  w->BeginObject();
  w->Key("records_seen");
  w->Int(static_cast<long long>(records_seen()));
  w->Key("slowest");
  w->BeginArray();
  for (const FlightRecord& r : slowest) WriteRecord(r, w);
  w->EndArray();
  w->Key("recent_failures");
  w->BeginArray();
  for (const FlightRecord& r : failures) WriteRecord(r, w);
  w->EndArray();
  w->EndObject();
}

}  // namespace ems
