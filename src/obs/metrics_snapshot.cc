#include "obs/metrics_snapshot.h"

#include <chrono>

#include "util/json_writer.h"

namespace ems {

namespace {

double SteadySeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void WriteHistogramStats(const HistogramStats& h, JsonWriter* w) {
  w->BeginObject();
  w->Key("count");
  w->Int(static_cast<long long>(h.count));
  w->Key("sum");
  w->Number(h.sum);
  w->Key("p50");
  w->Number(h.p50);
  w->Key("p90");
  w->Number(h.p90);
  w->Key("p99");
  w->Number(h.p99);
  w->EndObject();
}

}  // namespace

MetricsSnapshot CaptureMetricsSnapshot(const MetricsRegistry& registry) {
  MetricsSnapshot snapshot;
  snapshot.at_seconds = SteadySeconds();
  registry.ForEachCounter([&](const std::string& name, const Counter& c) {
    snapshot.counters.emplace(name, c.value());
  });
  registry.ForEachGauge([&](const std::string& name, const Gauge& g) {
    snapshot.gauges.emplace(name, g.value());
  });
  registry.ForEachHistogram([&](const std::string& name, const Histogram& h) {
    HistogramStats stats;
    stats.count = h.count();
    stats.sum = h.sum();
    stats.p50 = HistogramQuantile(h, 0.50);
    stats.p90 = HistogramQuantile(h, 0.90);
    stats.p99 = HistogramQuantile(h, 0.99);
    snapshot.histograms.emplace(name, stats);
  });
  registry.ForEachQuantileHistogram(
      [&](const std::string& name, const QuantileHistogram& h) {
        HistogramStats stats;
        stats.count = h.count();
        stats.sum = h.sum();
        stats.p50 = h.Quantile(0.50);
        stats.p90 = h.Quantile(0.90);
        stats.p99 = h.Quantile(0.99);
        snapshot.quantile_histograms.emplace(name, stats);
      });
  return snapshot;
}

std::map<std::string, double> DiffRates(const MetricsSnapshot& prev,
                                        const MetricsSnapshot& cur) {
  std::map<std::string, double> rates;
  const double interval = cur.at_seconds - prev.at_seconds;
  if (interval <= 0.0) return rates;
  for (const auto& [name, value] : cur.counters) {
    auto it = prev.counters.find(name);
    const uint64_t before = it == prev.counters.end() ? 0 : it->second;
    const uint64_t delta = value >= before ? value - before : value;
    rates.emplace(name, static_cast<double>(delta) / interval);
  }
  return rates;
}

void MetricsSnapshot::WriteJson(JsonWriter* w) const {
  w->BeginObject();
  w->Key("at_seconds");
  w->Number(at_seconds);
  w->Key("counters");
  w->BeginObject();
  for (const auto& [name, value] : counters) {
    w->Key(name);
    w->Int(static_cast<long long>(value));
  }
  w->EndObject();
  w->Key("gauges");
  w->BeginObject();
  for (const auto& [name, value] : gauges) {
    w->Key(name);
    if (GaugeValueIsIntegral(value)) {
      w->Int(static_cast<long long>(value));
    } else {
      w->Number(value);
    }
  }
  w->EndObject();
  w->Key("histograms");
  w->BeginObject();
  for (const auto& [name, stats] : histograms) {
    w->Key(name);
    WriteHistogramStats(stats, w);
  }
  w->EndObject();
  w->Key("quantile_histograms");
  w->BeginObject();
  for (const auto& [name, stats] : quantile_histograms) {
    w->Key(name);
    WriteHistogramStats(stats, w);
  }
  w->EndObject();
  w->EndObject();
}

}  // namespace ems
