#include "obs/exposition.h"

#include <cctype>
#include <cinttypes>
#include <cstdio>

#include "obs/metrics.h"

namespace ems {

namespace {

void AppendValue(std::string* out, double v) {
  char buf[64];
  if (GaugeValueIsIntegral(v)) {
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  } else {
    std::snprintf(buf, sizeof(buf), "%.12g", v);
  }
  *out += buf;
}

void AppendSample(std::string* out, const std::string& name,
                  std::string_view labels, double value) {
  *out += name;
  if (!labels.empty()) {
    *out += '{';
    *out += labels;
    *out += '}';
  }
  *out += ' ';
  AppendValue(out, value);
  *out += '\n';
}

void AppendType(std::string* out, const std::string& name, const char* type) {
  *out += "# TYPE ";
  *out += name;
  *out += ' ';
  *out += type;
  *out += '\n';
}

std::string LeLabel(double bound) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "le=\"%.12g\"", bound);
  return buf;
}

}  // namespace

std::string SanitizeMetricName(std::string_view raw) {
  std::string out;
  out.reserve(raw.size() + 1);
  for (char c : raw) {
    const bool ok = std::isalnum(static_cast<unsigned char>(c)) || c == '_';
    out.push_back(ok ? c : '_');
  }
  if (out.empty() || std::isdigit(static_cast<unsigned char>(out.front()))) {
    out.insert(out.begin(), '_');
  }
  return out;
}

std::string RenderExpositionText(const MetricsRegistry& registry) {
  std::string out;
  registry.ForEachCounter([&](const std::string& raw, const Counter& c) {
    const std::string name = SanitizeMetricName(raw) + "_total";
    AppendType(&out, name, "counter");
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%" PRIu64, c.value());
    out += name;
    out += ' ';
    out += buf;
    out += '\n';
  });
  registry.ForEachGauge([&](const std::string& raw, const Gauge& g) {
    const std::string name = SanitizeMetricName(raw);
    AppendType(&out, name, "gauge");
    AppendSample(&out, name, "", g.value());
  });
  registry.ForEachHistogram([&](const std::string& raw, const Histogram& h) {
    const std::string name = SanitizeMetricName(raw);
    AppendType(&out, name, "histogram");
    uint64_t cumulative = 0;
    for (size_t i = 0; i < h.bounds().size(); ++i) {
      cumulative += h.bucket_count(i);
      AppendSample(&out, name + "_bucket", LeLabel(h.bounds()[i]),
                   static_cast<double>(cumulative));
    }
    cumulative += h.bucket_count(h.bounds().size());
    AppendSample(&out, name + "_bucket", "le=\"+Inf\"",
                 static_cast<double>(cumulative));
    AppendSample(&out, name + "_sum", "", h.sum());
    AppendSample(&out, name + "_count", "", static_cast<double>(h.count()));
  });
  registry.ForEachQuantileHistogram(
      [&](const std::string& raw, const QuantileHistogram& h) {
        const std::string name = SanitizeMetricName(raw);
        AppendType(&out, name, "summary");
        AppendSample(&out, name, "quantile=\"0.5\"", h.Quantile(0.50));
        AppendSample(&out, name, "quantile=\"0.9\"", h.Quantile(0.90));
        AppendSample(&out, name, "quantile=\"0.99\"", h.Quantile(0.99));
        AppendSample(&out, name + "_sum", "", h.sum());
        AppendSample(&out, name + "_count", "", static_cast<double>(h.count()));
      });
  return out;
}

}  // namespace ems
