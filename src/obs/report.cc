#include "obs/report.h"

#include <cstdio>
#include <fstream>

#include "obs/context.h"
#include "util/json_writer.h"

namespace ems {

namespace {

void WriteEmsStats(const EmsStats& s, JsonWriter* w) {
  w->BeginObject();
  w->Key("iterations");
  w->Int(s.iterations);
  w->Key("formula_evaluations");
  w->Int(static_cast<long long>(s.formula_evaluations));
  w->Key("pairs_pruned_converged");
  w->Int(static_cast<long long>(s.pairs_pruned_converged));
  w->Key("pairs_skipped_unchanged");
  w->Int(static_cast<long long>(s.pairs_skipped_unchanged));
  w->EndObject();
}

void WriteCompositeStats(const CompositeStats& s, JsonWriter* w) {
  w->BeginObject();
  w->Key("formula_evaluations");
  w->Int(static_cast<long long>(s.formula_evaluations));
  w->Key("candidates_evaluated");
  w->Int(s.candidates_evaluated);
  w->Key("candidates_pruned_by_bound");
  w->Int(s.candidates_pruned_by_bound);
  w->Key("merges_accepted");
  w->Int(s.merges_accepted);
  w->Key("rows_frozen");
  w->Int(static_cast<long long>(s.rows_frozen));
  w->Key("ems");
  WriteEmsStats(s.ems, w);
  w->EndObject();
}

Status WriteStringToFile(const std::string& path, const std::string& body) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open '" + path + "' for writing");
  out << body << "\n";
  if (!out) return Status::IOError("write to '" + path + "' failed");
  return Status::OK();
}

}  // namespace

std::string PipelineReport::ToJson() const {
  JsonWriter w;
  w.BeginObject();
  w.Key("total_millis");
  w.Number(total_millis);
  w.Key("spans");
  if (obs != nullptr) {
    obs->trace.WriteJson(&w);
  } else {
    w.BeginArray();
    w.EndArray();
  }
  w.Key("dropped_spans");
  w.Int(obs != nullptr ? static_cast<long long>(obs->trace.dropped_spans())
                       : 0);
  w.Key("metrics");
  if (obs != nullptr) {
    obs->metrics.WriteJson(&w);
  } else {
    w.BeginObject();
    w.EndObject();
  }
  w.Key("ems");
  WriteEmsStats(ems_stats, &w);
  w.Key("composite");
  WriteCompositeStats(composite_stats, &w);
  w.EndObject();
  return w.str();
}

std::string PipelineReport::ToChromeTraceJson() const {
  if (obs == nullptr) return "{}";
  return obs->trace.ToChromeTraceJson();
}

std::string PipelineReport::RenderText() const {
  char line[160];
  std::string out;
  std::snprintf(line, sizeof(line), "total: %.3f ms\n", total_millis);
  out += line;
  std::snprintf(line, sizeof(line),
                "ems: %d iterations, %llu formula evaluations, %llu pairs "
                "pruned, %llu pairs delta-skipped\n",
                ems_stats.iterations,
                static_cast<unsigned long long>(ems_stats.formula_evaluations),
                static_cast<unsigned long long>(
                    ems_stats.pairs_pruned_converged),
                static_cast<unsigned long long>(
                    ems_stats.pairs_skipped_unchanged));
  out += line;
  if (composite_stats.candidates_evaluated > 0) {
    std::snprintf(line, sizeof(line),
                  "composite: %d candidates, %d pruned by bound, %d merges\n",
                  composite_stats.candidates_evaluated,
                  composite_stats.candidates_pruned_by_bound,
                  composite_stats.merges_accepted);
    out += line;
  }
  if (obs != nullptr) {
    bool any_histogram = false;
    auto header = [&] {
      if (!any_histogram) out += "histograms:\n";
      any_histogram = true;
    };
    obs->metrics.ForEachHistogram(
        [&](const std::string& name, const Histogram& h) {
          if (h.count() == 0) return;
          header();
          std::snprintf(line, sizeof(line),
                        "  %s: count=%llu p50=%.3f p90=%.3f p99=%.3f\n",
                        name.c_str(),
                        static_cast<unsigned long long>(h.count()),
                        HistogramQuantile(h, 0.50), HistogramQuantile(h, 0.90),
                        HistogramQuantile(h, 0.99));
          out += line;
        });
    obs->metrics.ForEachQuantileHistogram(
        [&](const std::string& name, const QuantileHistogram& h) {
          if (h.count() == 0) return;
          header();
          std::snprintf(line, sizeof(line),
                        "  %s: count=%llu p50=%.3f p90=%.3f p99=%.3f\n",
                        name.c_str(),
                        static_cast<unsigned long long>(h.count()),
                        h.Quantile(0.50), h.Quantile(0.90), h.Quantile(0.99));
          out += line;
        });
    out += "spans:\n";
    out += obs->trace.RenderTree();
  }
  return out;
}

Status PipelineReport::WriteJsonFile(const std::string& path) const {
  return WriteStringToFile(path, ToJson());
}

Status PipelineReport::WriteChromeTraceFile(const std::string& path) const {
  return WriteStringToFile(path, ToChromeTraceJson());
}

PipelineReport BuildPipelineReport(const ObsContext* obs,
                                   const EmsStats& ems_stats,
                                   const CompositeStats& composite_stats,
                                   double total_millis) {
  PipelineReport report;
  report.obs = obs;
  report.ems_stats = ems_stats;
  report.composite_stats = composite_stats;
  report.total_millis = total_millis;
  return report;
}

}  // namespace ems
