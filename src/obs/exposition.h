// Prometheus-style text exposition of a MetricsRegistry — the scrape
// format alongside the existing JSON export. Counters render as
// `<name>_total`, fixed-bucket histograms as cumulative `_bucket{le=..}`
// series with `_sum`/`_count`, and quantile histograms as summaries with
// `{quantile="0.5"|"0.9"|"0.99"}` sample lines. Metric names are
// sanitized to [a-zA-Z_][a-zA-Z0-9_]* (dots become underscores), and
// integer-valued gauges print as integers, never scientific notation.
// The format is linted in CI by scripts/check_exposition.py.
#pragma once

#include <string>
#include <string_view>

namespace ems {

class MetricsRegistry;

/// `raw` mapped into the Prometheus metric-name alphabet: every
/// character outside [a-zA-Z0-9_] becomes '_', and a leading digit is
/// prefixed with '_'.
std::string SanitizeMetricName(std::string_view raw);

/// The whole registry in text exposition format, terminated by a final
/// newline. Deterministic: instruments appear in sorted name order.
std::string RenderExpositionText(const MetricsRegistry& registry);

}  // namespace ems
