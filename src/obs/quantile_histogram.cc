#include "obs/quantile_histogram.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/status.h"

namespace ems {

QuantileHistogram::QuantileHistogram(const QuantileHistogramOptions& options)
    : options_(options) {
  EMS_DCHECK(options_.min_value > 0.0);
  EMS_DCHECK(options_.max_value > options_.min_value);
  EMS_DCHECK(options_.buckets_per_doubling >= 1);
  log_min_ = std::log(options_.min_value);
  const double log_step =
      std::log(2.0) / static_cast<double>(options_.buckets_per_doubling);
  inv_log_step_ = 1.0 / log_step;
  const double span = std::log(options_.max_value) - log_min_;
  const size_t log_buckets =
      static_cast<size_t>(std::ceil(span * inv_log_step_ - 1e-9));
  // bounds_[0] == min_value closes the underflow bucket; the remaining
  // bounds climb geometrically until they cover max_value. exp2 keeps
  // whole-doubling bounds exact (min * 2^k has no rounding), so bucket
  // edges at powers of two behave as written.
  bounds_.reserve(log_buckets + 1);
  for (size_t i = 0; i <= log_buckets; ++i) {
    bounds_.push_back(
        options_.min_value *
        std::exp2(static_cast<double>(i) /
                  static_cast<double>(options_.buckets_per_doubling)));
  }
  bounds_.back() = std::max(bounds_.back(), options_.max_value);
  counts_ = std::make_unique<std::atomic<uint64_t>[]>(bounds_.size() + 1);
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    counts_[i].store(0, std::memory_order_relaxed);
  }
}

size_t QuantileHistogram::BucketIndex(double v) const {
  if (!(v >= options_.min_value)) return 0;  // underflow; NaN lands here too
  if (v >= bounds_.back()) return bounds_.size();  // overflow
  // Bucket i (i >= 1) covers [bounds_[i-1], bounds_[i]).
  const double offset = (std::log(v) - log_min_) * inv_log_step_;
  size_t i = static_cast<size_t>(offset) + 1;
  i = std::min(i, bounds_.size() - 1);
  // std::log rounding can land one bucket off the closed-form index;
  // nudge against the actual bounds so the invariant holds exactly.
  while (i > 1 && v < bounds_[i - 1]) --i;
  while (i < bounds_.size() - 1 && v >= bounds_[i]) ++i;
  return i;
}

void QuantileHistogram::Observe(double v) {
  counts_[BucketIndex(v)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
  if (!any_.exchange(true, std::memory_order_relaxed)) {
    // First observer seeds both extrema; concurrent first observations
    // still converge through the CAS loops below.
    observed_min_.store(v, std::memory_order_relaxed);
    observed_max_.store(v, std::memory_order_relaxed);
    return;
  }
  double cur = observed_min_.load(std::memory_order_relaxed);
  while (v < cur && !observed_min_.compare_exchange_weak(
                        cur, v, std::memory_order_relaxed)) {
  }
  cur = observed_max_.load(std::memory_order_relaxed);
  while (v > cur && !observed_max_.compare_exchange_weak(
                        cur, v, std::memory_order_relaxed)) {
  }
}

double QuantileHistogram::min_value() const {
  return any_.load(std::memory_order_relaxed)
             ? observed_min_.load(std::memory_order_relaxed)
             : 0.0;
}

double QuantileHistogram::max_value() const {
  return any_.load(std::memory_order_relaxed)
             ? observed_max_.load(std::memory_order_relaxed)
             : 0.0;
}

double QuantileHistogram::bucket_upper_bound(size_t i) const {
  if (i >= bounds_.size()) return std::numeric_limits<double>::infinity();
  return bounds_[i];
}

double QuantileHistogram::Quantile(double q) const {
  std::vector<uint64_t> counts(bounds_.size() + 1);
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    counts[i] = counts_[i].load(std::memory_order_relaxed);
  }
  return QuantileFromBucketCounts(bounds_, counts, q);
}

double QuantileFromBucketCounts(const std::vector<double>& bounds,
                                const std::vector<uint64_t>& counts,
                                double q) {
  EMS_DCHECK(counts.size() == bounds.size() + 1);
  uint64_t total = 0;
  for (uint64_t c : counts) total += c;
  if (total == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the target observation, 1-based; ceil matches the "nearest
  // rank" quantile definition so p100 is the last observation.
  const uint64_t rank = std::max<uint64_t>(
      1, static_cast<uint64_t>(std::ceil(q * static_cast<double>(total))));
  uint64_t cumulative = 0;
  for (size_t i = 0; i < counts.size(); ++i) {
    if (counts[i] == 0) continue;
    const uint64_t before = cumulative;
    cumulative += counts[i];
    if (cumulative < rank) continue;
    const double lower = i == 0 ? 0.0 : bounds[i - 1];
    // Overflow bucket has no upper bound; report its lower edge.
    const double upper = i < bounds.size() ? bounds[i] : lower;
    const double fraction = static_cast<double>(rank - before) /
                            static_cast<double>(counts[i]);
    return lower + (upper - lower) * fraction;
  }
  return bounds.empty() ? 0.0 : bounds.back();
}

}  // namespace ems
