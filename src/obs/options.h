// The knob that enables pipeline observability without making option
// structs depend on the obs machinery: a borrowed ObsContext pointer.
// Null (the default) disables instrumentation — call sites check the
// pointer once, so the disabled path costs one predictable branch.
#pragma once

namespace ems {

struct ObsContext;

/// Observability configuration of a pipeline run.
struct ObsOptions {
  /// Borrowed context receiving spans and metrics; null = disabled.
  /// The context must outlive the run that uses it.
  ObsContext* context = nullptr;
};

}  // namespace ems
