// Cooperative cancellation: a source flips an atomic flag, tokens poll
// it. Tasks that honor their token stop at the next natural checkpoint
// (an EMS iteration boundary, the next pair of a sweep); nothing is ever
// interrupted mid-write, so cancelled state is always consistent.
#pragma once

#include <atomic>
#include <memory>

namespace ems {
namespace exec {

/// \brief Read side of a cancellation flag. Cheap to copy; copies share
/// the underlying flag.
class CancellationToken {
 public:
  /// A token that can never be cancelled (the default for callers that
  /// don't participate).
  CancellationToken() = default;

  bool cancelled() const {
    return flag_ != nullptr && flag_->load(std::memory_order_acquire);
  }

 private:
  friend class CancellationSource;
  explicit CancellationToken(std::shared_ptr<std::atomic<bool>> flag)
      : flag_(std::move(flag)) {}

  std::shared_ptr<std::atomic<bool>> flag_;
};

/// \brief Owner of a cancellation flag.
class CancellationSource {
 public:
  CancellationSource() : flag_(std::make_shared<std::atomic<bool>>(false)) {}

  CancellationToken token() const { return CancellationToken(flag_); }

  void Cancel() { flag_->store(true, std::memory_order_release); }

  bool cancelled() const { return flag_->load(std::memory_order_acquire); }

 private:
  std::shared_ptr<std::atomic<bool>> flag_;
};

}  // namespace exec
}  // namespace ems
