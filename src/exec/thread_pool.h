// Fixed-size worker pool over a bounded MPMC queue — the execution
// substrate shared by the parallel EMS iteration, the harness sweeps,
// and the batch matching service. Submission blocks when the queue is
// full (backpressure), workers run tasks to completion, and an optional
// ObsContext records queue depth, task latency, and throughput counters.
#pragma once

#include <cstddef>
#include <functional>
#include <thread>
#include <vector>

#include "exec/task_queue.h"

namespace ems {

struct ObsContext;
class Counter;
class Gauge;
class Histogram;

namespace exec {

/// Pool configuration.
struct ThreadPoolOptions {
  /// Worker count; 0 = hardware concurrency.
  int num_threads = 0;

  /// Bounded queue capacity; submission blocks beyond this.
  size_t queue_capacity = 1024;

  /// Observability sink for pool metrics (exec.pool.*); null disables.
  /// Borrowed, must outlive the pool.
  ObsContext* obs = nullptr;
};

/// \brief Fixed-size thread pool with a bounded task queue.
///
/// Threads start in the constructor and join in Shutdown (or the
/// destructor). Tasks must not throw — TaskGroup (parallel.h) wraps
/// fallible work and converts exceptions to Status; raw Submit callers
/// get std::terminate on escape, as with std::thread.
class ThreadPool {
 public:
  explicit ThreadPool(const ThreadPoolOptions& options);
  /// Convenience: `num_threads` workers, default capacity, no metrics.
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task, blocking while the queue is full. Returns false
  /// after Shutdown.
  bool Submit(std::function<void()> task);

  /// Non-blocking submit; false when the queue is full or shut down.
  bool TrySubmit(std::function<void()> task);

  /// Closes the queue, drains remaining tasks, joins all workers.
  /// Idempotent; called by the destructor.
  void Shutdown();

  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// Tasks currently waiting in the queue (racy snapshot, for metrics).
  size_t QueueDepth() const { return queue_.size(); }

  /// The bounded queue's capacity — the admission-control headroom a
  /// router compares QueueDepth against.
  size_t QueueCapacity() const { return queue_.capacity(); }

  /// True when the calling thread is one of this pool's workers. Used by
  /// ParallelFor/TaskGroup to degrade to inline execution instead of
  /// deadlocking on nested submission into a saturated queue.
  bool InWorkerThread() const;

  /// Resolves a requested thread count: 0 means hardware concurrency,
  /// minimum 1.
  static int EffectiveThreads(int requested);

 private:
  void WorkerLoop();
  void RecordSubmit();

  BoundedTaskQueue<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  bool shutdown_ = false;

  // Instruments resolved once at construction; null when obs is null.
  Counter* tasks_submitted_ = nullptr;
  Counter* tasks_completed_ = nullptr;
  Histogram* task_millis_ = nullptr;
  Histogram* queue_depth_ = nullptr;
  // Live queue depth (exec.pool.queued_tasks), refreshed on submit and
  // task completion — the admission-control signal a health endpoint
  // reads, where the histogram above records the distribution.
  Gauge* queued_tasks_ = nullptr;
};

}  // namespace exec
}  // namespace ems
