#include "exec/parallel.h"

#include <algorithm>
#include <exception>

namespace ems {
namespace exec {

namespace {

// Completion latch for ParallelForChunks.
struct Latch {
  std::mutex mu;
  std::condition_variable cv;
  int pending = 0;

  void Done() {
    std::lock_guard<std::mutex> lock(mu);
    if (--pending == 0) cv.notify_all();
  }

  void Wait() {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [this] { return pending == 0; });
  }
};

}  // namespace

void ParallelForChunks(
    ThreadPool* pool, size_t begin, size_t end, int max_chunks,
    const std::function<void(int chunk, size_t begin, size_t end)>& body) {
  if (begin >= end) return;
  const size_t n = end - begin;
  size_t chunks = max_chunks > 0 ? static_cast<size_t>(max_chunks) : 1;
  chunks = std::min(chunks, n);

  // Chunk geometry is a pure function of (n, chunks): the first `rem`
  // chunks get one extra element. Computed identically in serial and
  // parallel execution.
  const size_t base = n / chunks;
  const size_t rem = n % chunks;
  auto chunk_range = [&](size_t c) {
    size_t b = begin + c * base + std::min(c, rem);
    size_t e = b + base + (c < rem ? 1 : 0);
    return std::pair<size_t, size_t>(b, e);
  };

  const bool inline_only = pool == nullptr || pool->num_threads() <= 1 ||
                           pool->InWorkerThread() || chunks == 1;
  if (inline_only) {
    for (size_t c = 0; c < chunks; ++c) {
      auto [b, e] = chunk_range(c);
      body(static_cast<int>(c), b, e);
    }
    return;
  }

  Latch latch;
  latch.pending = static_cast<int>(chunks) - 1;
  for (size_t c = 1; c < chunks; ++c) {
    auto [b, e] = chunk_range(c);
    bool submitted = pool->Submit([&body, &latch, c, b, e] {
      body(static_cast<int>(c), b, e);
      latch.Done();
    });
    if (!submitted) {  // pool shut down under us: run inline
      body(static_cast<int>(c), b, e);
      latch.Done();
    }
  }
  auto [b0, e0] = chunk_range(0);
  body(0, b0, e0);
  latch.Wait();
}

void ParallelFor(ThreadPool* pool, size_t begin, size_t end,
                 const std::function<void(size_t i)>& body) {
  const int chunks =
      pool == nullptr ? 1 : ThreadPool::EffectiveThreads(pool->num_threads());
  ParallelForChunks(pool, begin, end, chunks,
                    [&body](int, size_t b, size_t e) {
                      for (size_t i = b; i < e; ++i) body(i);
                    });
}

TaskGroup::TaskGroup(ThreadPool* pool, CancellationToken parent)
    : pool_(pool), parent_(std::move(parent)) {}

TaskGroup::~TaskGroup() {
  // A group abandoned without Wait must still not leave tasks touching
  // destroyed members.
  Wait();
}

bool TaskGroup::cancelled() const {
  return cancel_.cancelled() || parent_.cancelled();
}

void TaskGroup::Record(Status status) {
  if (status.ok()) return;
  bool first = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (first_error_.ok()) {
      first_error_ = std::move(status);
      first = true;
    }
  }
  if (first) cancel_.Cancel();
}

void TaskGroup::Execute(const std::function<Status()>& fn) {
  Status status;
  try {
    status = fn();
  } catch (const std::exception& e) {
    status = Status::Internal(std::string("uncaught exception: ") + e.what());
  } catch (...) {
    status = Status::Internal("uncaught non-std exception");
  }
  Record(std::move(status));
  std::lock_guard<std::mutex> lock(mu_);
  if (--pending_ == 0) done_.notify_all();
}

void TaskGroup::Run(std::function<Status()> fn) {
  if (parent_.cancelled()) cancel_.Cancel();
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++pending_;
  }
  const bool inline_only =
      pool_ == nullptr || pool_->num_threads() <= 0 || pool_->InWorkerThread();
  if (inline_only) {
    Execute(fn);
    return;
  }
  std::function<void()> task = [this, fn = std::move(fn)] { Execute(fn); };
  if (!pool_->Submit(task)) {
    // Pool already shut down: degrade to inline execution.
    task();
  }
}

Status TaskGroup::Wait() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    done_.wait(lock, [this] { return pending_ == 0; });
    if (!first_error_.ok()) return first_error_;
  }
  if (parent_.cancelled()) {
    return Status::Cancelled("task group cancelled by caller");
  }
  return Status::OK();
}

}  // namespace exec
}  // namespace ems
