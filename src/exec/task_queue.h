// Bounded multi-producer multi-consumer queue: the backpressure point of
// the execution runtime. Producers block (or fail fast via TryPush) when
// the queue is full, so a slow pool cannot accumulate unbounded work from
// a fast submitter — the property the batch matching service relies on
// when a client streams thousands of jobs.
#pragma once

#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace ems {
namespace exec {

/// \brief Blocking bounded FIFO queue, safe for any number of producers
/// and consumers.
///
/// Closing the queue wakes every waiter: pending Push calls return false,
/// Pop drains the remaining items and then returns nullopt. All methods
/// are safe to call concurrently.
template <typename T>
class BoundedTaskQueue {
 public:
  /// `capacity` must be positive.
  explicit BoundedTaskQueue(size_t capacity) : capacity_(capacity) {}

  BoundedTaskQueue(const BoundedTaskQueue&) = delete;
  BoundedTaskQueue& operator=(const BoundedTaskQueue&) = delete;

  /// Blocks until there is room (or the queue closes). Returns false when
  /// the queue was closed before the item could be enqueued.
  bool Push(T item) {
    std::unique_lock<std::mutex> lock(mu_);
    not_full_.wait(lock,
                   [this] { return closed_ || items_.size() < capacity_; });
    if (closed_) return false;
    items_.push_back(std::move(item));
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Non-blocking push; false when full or closed.
  bool TryPush(T item) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(item));
    }
    not_empty_.notify_one();
    return true;
  }

  /// Blocks until an item is available; nullopt once the queue is closed
  /// and drained.
  std::optional<T> Pop() {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait(lock, [this] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return item;
  }

  /// Non-blocking pop; nullopt when currently empty.
  std::optional<T> TryPop() {
    std::unique_lock<std::mutex> lock(mu_);
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return item;
  }

  /// Marks the queue closed; no further Push succeeds. Idempotent.
  void Close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

  size_t capacity() const { return capacity_; }

 private:
  const size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace exec
}  // namespace ems
