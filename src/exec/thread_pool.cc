#include "exec/thread_pool.h"

#include "obs/context.h"
#include "util/timer.h"

namespace ems {
namespace exec {

namespace {

// Identifies the pool owning the current thread (null on non-worker
// threads); lets nested parallel constructs detect re-entrancy.
thread_local const ThreadPool* t_current_pool = nullptr;

}  // namespace

ThreadPool::ThreadPool(const ThreadPoolOptions& options)
    : queue_(options.queue_capacity > 0 ? options.queue_capacity : 1) {
  if (options.obs != nullptr) {
    MetricsRegistry& m = options.obs->metrics;
    tasks_submitted_ = m.GetCounter("exec.pool.tasks_submitted");
    tasks_completed_ = m.GetCounter("exec.pool.tasks_completed");
    task_millis_ = m.GetHistogram("exec.pool.task_millis");
    queue_depth_ = m.GetHistogram("exec.pool.queue_depth");
    queued_tasks_ = m.GetGauge("exec.pool.queued_tasks");
  }
  const int n = EffectiveThreads(options.num_threads);
  workers_.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::ThreadPool(int num_threads)
    : ThreadPool(ThreadPoolOptions{num_threads, 1024, nullptr}) {}

ThreadPool::~ThreadPool() { Shutdown(); }

int ThreadPool::EffectiveThreads(int requested) {
  int n = requested;
  if (n <= 0) n = static_cast<int>(std::thread::hardware_concurrency());
  return n > 0 ? n : 1;
}

void ThreadPool::WorkerLoop() {
  t_current_pool = this;
  while (true) {
    std::optional<std::function<void()>> task = queue_.Pop();
    if (!task.has_value()) break;  // closed and drained
    if (task_millis_ != nullptr) {
      Timer timer;
      (*task)();
      task_millis_->Observe(timer.ElapsedMillis());
    } else {
      (*task)();
    }
    if (tasks_completed_ != nullptr) tasks_completed_->Increment();
    if (queued_tasks_ != nullptr) {
      queued_tasks_->Set(static_cast<double>(queue_.size()));
    }
  }
  t_current_pool = nullptr;
}

bool ThreadPool::InWorkerThread() const { return t_current_pool == this; }

void ThreadPool::RecordSubmit() {
  if (tasks_submitted_ != nullptr) tasks_submitted_->Increment();
  if (queue_depth_ != nullptr || queued_tasks_ != nullptr) {
    const double depth = static_cast<double>(queue_.size());
    if (queue_depth_ != nullptr) queue_depth_->Observe(depth);
    if (queued_tasks_ != nullptr) queued_tasks_->Set(depth);
  }
}

bool ThreadPool::Submit(std::function<void()> task) {
  if (!queue_.Push(std::move(task))) return false;
  RecordSubmit();
  return true;
}

bool ThreadPool::TrySubmit(std::function<void()> task) {
  if (!queue_.TryPush(std::move(task))) return false;
  RecordSubmit();
  return true;
}

void ThreadPool::Shutdown() {
  if (shutdown_) return;
  shutdown_ = true;
  queue_.Close();
  for (std::thread& w : workers_) {
    if (w.joinable()) w.join();
  }
}

}  // namespace exec
}  // namespace ems
