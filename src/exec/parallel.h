// Structured parallelism over a ThreadPool: ParallelFor for
// data-parallel loops with deterministic chunking, TaskGroup for
// heterogeneous fallible tasks with Status propagation and cooperative
// cancellation. Both degrade gracefully: a null pool, a single-threaded
// pool, or a call from inside one of the pool's own workers runs the
// work inline on the calling thread (re-entrant submission into a
// bounded queue could otherwise deadlock).
#pragma once

#include <condition_variable>
#include <functional>
#include <mutex>

#include "exec/cancellation.h"
#include "exec/thread_pool.h"
#include "util/status.h"

namespace ems {
namespace exec {

/// Runs `body(chunk_index, begin, end)` over [begin, end) split into at
/// most `max_chunks` contiguous ranges. Chunk boundaries depend only on
/// (begin, end, max_chunks) — never on the pool size or timing — so any
/// per-chunk accumulation a caller does is reproducible run to run.
/// The calling thread executes chunk 0 itself and the call returns only
/// after every chunk finished. Bodies must not throw (use TaskGroup for
/// fallible work).
void ParallelForChunks(
    ThreadPool* pool, size_t begin, size_t end, int max_chunks,
    const std::function<void(int chunk, size_t begin, size_t end)>& body);

/// Element-wise loop: `body(i)` for i in [begin, end), partitioned over
/// the pool's workers. Serial (in index order) when pool is null or has
/// one thread.
void ParallelFor(ThreadPool* pool, size_t begin, size_t end,
                 const std::function<void(size_t i)>& body);

/// \brief A set of fallible tasks that completes together.
///
/// Run schedules a task on the pool (or runs it inline; see header
/// comment); Wait blocks until all tasks finished and returns the first
/// non-OK Status recorded. Exceptions escaping a task are captured as
/// Internal statuses. The first failure (or external cancellation)
/// cancels the group's token; queued tasks still run, so they should
/// poll `token()` and bail early when it fires.
class TaskGroup {
 public:
  /// `pool` may be null (every task runs inline). `parent` chains an
  /// external cancellation scope into the group.
  explicit TaskGroup(ThreadPool* pool,
                     CancellationToken parent = CancellationToken());
  ~TaskGroup();

  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  /// Schedules `fn`; a non-OK return is recorded and cancels the group.
  void Run(std::function<Status()> fn);

  /// Blocks until every scheduled task finished. Returns the first
  /// failure, or Cancelled when the parent token fired before all tasks
  /// completed cleanly, or OK. May be called once; Run after Wait is
  /// invalid.
  Status Wait();

  /// Token tasks should poll for cooperative early exit.
  CancellationToken token() const { return cancel_.token(); }

  /// True once a task failed or the parent token fired.
  bool cancelled() const;

 private:
  void Execute(const std::function<Status()>& fn);
  void Record(Status status);

  ThreadPool* pool_;
  CancellationToken parent_;
  CancellationSource cancel_;

  mutable std::mutex mu_;
  std::condition_variable done_;
  int pending_ = 0;
  Status first_error_;  // guarded by mu_
};

}  // namespace exec
}  // namespace ems
