#include "graph/graph_algorithms.h"

#include <gtest/gtest.h>

#include "paper_example.h"

namespace ems {
namespace {

TEST(FrequencyMatrixTest, ExcludesArtificialByDefault) {
  DependencyGraph g = testing::BuildPaperGraph2();
  auto m = FrequencyMatrix(g);
  ASSERT_EQ(m.size(), 6u);
  EXPECT_DOUBLE_EQ(m[testing::N1][testing::N2], 0.4);
  EXPECT_DOUBLE_EQ(m[testing::N4][testing::N5], 1.0);
  EXPECT_DOUBLE_EQ(m[testing::N5][testing::N4], 0.0);
}

TEST(FrequencyMatrixTest, IncludesArtificialOnRequest) {
  DependencyGraph g = testing::BuildPaperGraph2();
  auto m = FrequencyMatrix(g, /*include_artificial=*/true);
  ASSERT_EQ(m.size(), 7u);
  EXPECT_DOUBLE_EQ(m[0][1 + testing::N1], 1.0);  // f(v^X, 1) = f(1)
}

TEST(NodeFrequenciesTest, MatchesGraph) {
  DependencyGraph g = testing::BuildPaperGraph1();
  auto f = NodeFrequencies(g);
  ASSERT_EQ(f.size(), 6u);
  EXPECT_DOUBLE_EQ(f[testing::A], 0.4);
  EXPECT_DOUBLE_EQ(f[testing::C], 1.0);
}

TEST(TransitiveClosureTest, ReachabilityOnDag) {
  DependencyGraph g = testing::BuildPaperGraph2();
  auto closure = TransitiveClosure(g);
  EXPECT_TRUE(closure[testing::N1][testing::N6]);
  EXPECT_TRUE(closure[testing::N2][testing::N4]);
  EXPECT_FALSE(closure[testing::N6][testing::N1]);
  EXPECT_FALSE(closure[testing::N2][testing::N3]);
  EXPECT_FALSE(closure[testing::N1][testing::N1]);  // acyclic: no self path
}

TEST(IsAcyclicTest, DetectsCycles) {
  EXPECT_TRUE(IsAcyclic(testing::BuildPaperGraph2()));
  EXPECT_FALSE(IsAcyclic(testing::BuildPaperGraph1()));  // E <-> F
}

TEST(TopologicalOrderTest, ValidOrderOnDag) {
  DependencyGraph g = testing::BuildPaperGraph2();
  auto order = TopologicalOrder(g);
  ASSERT_EQ(order.size(), 6u);
  // Every edge must go forward in the order.
  std::vector<int> pos(g.NumNodes(), -1);
  for (size_t i = 0; i < order.size(); ++i) {
    pos[static_cast<size_t>(order[i])] = static_cast<int>(i);
  }
  for (NodeId v = 1; v < static_cast<NodeId>(g.NumNodes()); ++v) {
    for (NodeId w : g.Successors(v)) {
      if (g.IsArtificial(w)) continue;
      EXPECT_LT(pos[static_cast<size_t>(v)], pos[static_cast<size_t>(w)]);
    }
  }
}

TEST(TopologicalOrderTest, EmptyOnCyclicGraph) {
  EXPECT_TRUE(TopologicalOrder(testing::BuildPaperGraph1()).empty());
}

}  // namespace
}  // namespace ems
