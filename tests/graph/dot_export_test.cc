#include "graph/dot_export.h"

#include <sstream>

#include <gtest/gtest.h>

#include "paper_example.h"

namespace ems {
namespace {

TEST(DotExportTest, ContainsNodesAndEdges) {
  DependencyGraph g = testing::BuildPaperGraph1();
  std::string dot = ToDot(g);
  EXPECT_NE(dot.find("digraph dependency_graph"), std::string::npos);
  EXPECT_NE(dot.find("PaidCash"), std::string::npos);
  EXPECT_NE(dot.find("->"), std::string::npos);
  // Artificial node hidden by default.
  EXPECT_EQ(dot.find("<X>"), std::string::npos);
}

TEST(DotExportTest, ShowArtificialOption) {
  DependencyGraph g = testing::BuildPaperGraph1();
  DotOptions opts;
  opts.show_artificial = true;
  std::string dot = ToDot(g, opts);
  EXPECT_NE(dot.find("diamond"), std::string::npos);
}

TEST(DotExportTest, EdgeFrequenciesToggle) {
  DependencyGraph g = testing::BuildPaperGraph1();
  DotOptions no_freq;
  no_freq.edge_frequencies = false;
  std::string dot = ToDot(g, no_freq);
  // Edge lines exist but carry no label attribute.
  EXPECT_NE(dot.find("->"), std::string::npos);
  EXPECT_EQ(dot.find("label=\"0."), std::string::npos);
}

TEST(DotExportTest, QuotesEscaped) {
  EventLog log;
  log.AddTrace({"say \"hi\"", "done"});
  DependencyGraph g = DependencyGraph::Build(log);
  std::string dot = ToDot(g);
  EXPECT_NE(dot.find("\\\"hi\\\""), std::string::npos);
}

TEST(DotExportTest, MatchDotLinksCorrespondences) {
  EventLog log1 = testing::BuildPaperLog1();
  EventLog log2 = testing::BuildPaperLog2();
  Matcher matcher;
  Result<MatchResult> result = matcher.Match(log1, log2);
  ASSERT_TRUE(result.ok());
  std::ostringstream out;
  ASSERT_TRUE(WriteMatchDot(*result, out).ok());
  std::string dot = out.str();
  EXPECT_NE(dot.find("cluster_left"), std::string::npos);
  EXPECT_NE(dot.find("cluster_right"), std::string::npos);
  EXPECT_NE(dot.find("color=red"), std::string::npos);
  // One cross edge per correspondence.
  size_t cross = 0, pos = 0;
  while ((pos = dot.find("color=red", pos)) != std::string::npos) {
    ++cross;
    pos += 1;
  }
  EXPECT_EQ(cross, result->correspondences.size());
}

}  // namespace
}  // namespace ems
