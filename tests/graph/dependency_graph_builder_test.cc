// Pins DependencyGraphBuilder::BuildWithComposites bit-identical to the
// trace-scan reference (DependencyGraph::BuildWithComposites) — node
// order, names, members, every frequency double, and the artificial
// event — across synthetic, CSV, and XES logs, composite shapes, and
// graph options. The composite search relies on this equivalence to swap
// the builder in without changing any result.
#include "graph/dependency_graph_builder.h"

#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "graph/dependency_graph.h"
#include "log/log_io.h"
#include "log/xes.h"
#include "synth/dataset.h"

namespace ems {
namespace {

// Exact (bitwise, via EXPECT_EQ on doubles) structural equality.
void ExpectGraphsIdentical(const DependencyGraph& ref,
                           const DependencyGraph& got) {
  ASSERT_EQ(ref.NumNodes(), got.NumNodes());
  EXPECT_EQ(ref.has_artificial(), got.has_artificial());
  EXPECT_EQ(ref.NumEdges(), got.NumEdges());
  for (NodeId v = 0; v < static_cast<NodeId>(ref.NumNodes()); ++v) {
    EXPECT_EQ(ref.NodeName(v), got.NodeName(v)) << "node " << v;
    EXPECT_EQ(ref.NodeFrequency(v), got.NodeFrequency(v)) << "node " << v;
    EXPECT_EQ(ref.Members(v), got.Members(v)) << "node " << v;
    ASSERT_EQ(ref.Successors(v), got.Successors(v)) << "node " << v;
    EXPECT_EQ(ref.SuccessorFrequencies(v), got.SuccessorFrequencies(v))
        << "node " << v;
    ASSERT_EQ(ref.Predecessors(v), got.Predecessors(v)) << "node " << v;
    EXPECT_EQ(ref.PredecessorFrequencies(v), got.PredecessorFrequencies(v))
        << "node " << v;
  }
}

void ExpectBuilderMatchesReference(
    const EventLog& log, const std::vector<std::vector<EventId>>& composites,
    const DependencyGraphOptions& options = {}) {
  Result<DependencyGraph> ref =
      DependencyGraph::BuildWithComposites(log, composites, options);
  ASSERT_TRUE(ref.ok()) << ref.status().ToString();
  DependencyGraphBuilder builder(log);
  Result<DependencyGraph> got =
      builder.BuildWithComposites(composites, options);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  ExpectGraphsIdentical(*ref, *got);
}

EventLog SmallLog() {
  EventLog log;
  log.AddTrace({"a", "b", "c", "d"});
  log.AddTrace({"a", "c", "b", "d"});
  log.AddTrace({"a", "b", "b", "d"});  // repeated singleton event
  log.AddTrace({"a", "b", "c", "d"});  // duplicate trace (multiplicity)
  log.AddTrace({"b", "c"});
  return log;
}

TEST(DependencyGraphBuilderTest, NoCompositesMatchesReference) {
  ExpectBuilderMatchesReference(SmallLog(), {});
}

TEST(DependencyGraphBuilderTest, SingleCompositeMatchesReference) {
  EventLog log = SmallLog();
  EventId b = log.FindEvent("b");
  EventId c = log.FindEvent("c");
  ExpectBuilderMatchesReference(log, {{b, c}});
  // Unsorted member order must be preserved in Members() on both paths.
  ExpectBuilderMatchesReference(log, {{c, b}});
}

TEST(DependencyGraphBuilderTest, MultipleAndSingletonComposites) {
  EventLog log = SmallLog();
  EventId a = log.FindEvent("a");
  EventId b = log.FindEvent("b");
  EventId c = log.FindEvent("c");
  EventId d = log.FindEvent("d");
  ExpectBuilderMatchesReference(log, {{b, c}, {a, d}});
  // A singleton composite renames nothing but goes through the rewrite.
  ExpectBuilderMatchesReference(log, {{b}});
  ExpectBuilderMatchesReference(log, {{a}, {c, d}});
}

TEST(DependencyGraphBuilderTest, GraphOptionsMatchReference) {
  EventLog log = SmallLog();
  EventId b = log.FindEvent("b");
  EventId c = log.FindEvent("c");

  DependencyGraphOptions min_freq;
  min_freq.min_edge_frequency = 0.3;
  ExpectBuilderMatchesReference(log, {{b, c}}, min_freq);

  DependencyGraphOptions no_artificial;
  no_artificial.add_artificial_event = false;
  ExpectBuilderMatchesReference(log, {{b, c}}, no_artificial);
}

TEST(DependencyGraphBuilderTest, CsvLogMatchesReference) {
  std::istringstream in(
      "case,activity\n"
      "1,receive\n1,check\n1,ship\n"
      "2,receive\n2,ship\n2,check\n"
      "3,receive\n3,check\n3,check\n3,ship\n");
  Result<EventLog> log = ReadCsv(in);
  ASSERT_TRUE(log.ok()) << log.status().ToString();
  EventId check = log->FindEvent("check");
  EventId ship = log->FindEvent("ship");
  ExpectBuilderMatchesReference(*log, {});
  ExpectBuilderMatchesReference(*log, {{check, ship}});
}

TEST(DependencyGraphBuilderTest, XesLogMatchesReference) {
  std::istringstream in(
      "<?xml version=\"1.0\"?>\n"
      "<log>\n"
      "  <trace>\n"
      "    <event><string key=\"concept:name\" value=\"a\"/></event>\n"
      "    <event><string key=\"concept:name\" value=\"b\"/></event>\n"
      "    <event><string key=\"concept:name\" value=\"c\"/></event>\n"
      "  </trace>\n"
      "  <trace>\n"
      "    <event><string key=\"concept:name\" value=\"a\"/></event>\n"
      "    <event><string key=\"concept:name\" value=\"c\"/></event>\n"
      "    <event><string key=\"concept:name\" value=\"b\"/></event>\n"
      "  </trace>\n"
      "</log>\n");
  Result<EventLog> log = ReadXes(in);
  ASSERT_TRUE(log.ok()) << log.status().ToString();
  EventId b = log->FindEvent("b");
  EventId c = log->FindEvent("c");
  ExpectBuilderMatchesReference(*log, {{b, c}});
}

TEST(DependencyGraphBuilderTest, SyntheticPairMatchesReference) {
  PairOptions opts;
  opts.num_activities = 12;
  opts.num_traces = 60;
  opts.num_composites = 2;
  opts.seed = 7;
  LogPair pair = MakeLogPair(Testbed::kDsFB, opts);
  for (const EventLog* log : {&pair.log1, &pair.log2}) {
    ExpectBuilderMatchesReference(*log, {});
    // Collapse the first few events pairwise.
    if (log->NumEvents() >= 4) {
      ExpectBuilderMatchesReference(*log, {{0, 1}, {2, 3}});
      ExpectBuilderMatchesReference(*log, {{1, 3, 0}});
    }
  }
}

TEST(DependencyGraphBuilderTest, PlusInNameFallsBackToReference) {
  EventLog log;
  log.AddTrace({"a+b", "c", "d"});
  log.AddTrace({"a+b", "d", "c"});
  EventId c = log.FindEvent("c");
  EventId d = log.FindEvent("d");
  DependencyGraphBuilder builder(log);
  Result<DependencyGraph> got = builder.BuildWithComposites({{c, d}});
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  Result<DependencyGraph> ref =
      DependencyGraph::BuildWithComposites(log, {{c, d}});
  ASSERT_TRUE(ref.ok());
  ExpectGraphsIdentical(*ref, *got);
  EXPECT_EQ(builder.fallback_builds(), 1u);
  EXPECT_EQ(builder.incremental_builds(), 0u);
}

TEST(DependencyGraphBuilderTest, ErrorStatusesMatchReference) {
  EventLog log = SmallLog();
  DependencyGraphBuilder builder(log);
  struct Case {
    std::vector<std::vector<EventId>> composites;
  };
  const Case cases[] = {
      {{{}}},                 // empty composite
      {{{0, 99}}},            // invalid event id
      {{{0, 1}, {1, 2}}},     // overlap on event
  };
  for (const Case& c : cases) {
    Result<DependencyGraph> ref =
        DependencyGraph::BuildWithComposites(log, c.composites);
    Result<DependencyGraph> got = builder.BuildWithComposites(c.composites);
    ASSERT_FALSE(ref.ok());
    ASSERT_FALSE(got.ok());
    EXPECT_EQ(ref.status().ToString(), got.status().ToString());
  }
}

TEST(DependencyGraphBuilderTest, CountsBuildsAndGroups) {
  EventLog log = SmallLog();
  DependencyGraphBuilder builder(log);
  EXPECT_EQ(builder.num_traces(), 5u);
  // The two identical traces share one group.
  EXPECT_EQ(builder.num_trace_groups(), 4u);
  ASSERT_TRUE(builder.BuildWithComposites({}).ok());
  ASSERT_TRUE(builder.BuildWithComposites({{0, 1}}).ok());
  EXPECT_EQ(builder.incremental_builds(), 2u);
  EXPECT_EQ(builder.fallback_builds(), 0u);
}

TEST(DependencyGraphBuilderTest, AppendMatchesFreshBuilder) {
  EventLog log = SmallLog();
  DependencyGraphBuilder builder(log);
  // Three append rounds: repeats (multiplicity bumps), a new trace group
  // over old vocabulary, and new vocabulary.
  const std::vector<std::vector<std::vector<std::string>>> batches = {
      {{"a", "b", "c"}, {"c", "a"}},
      {{"b", "c", "b"}},
      {{"a", "d", "e"}, {"e", "d"}},
  };
  for (const auto& batch : batches) {
    AppendDelta delta = log.AppendTraces(batch);
    builder.Append(delta.first_new_trace);
    DependencyGraphBuilder fresh(log);
    EXPECT_EQ(builder.num_traces(), fresh.num_traces());
    EXPECT_EQ(builder.num_trace_groups(), fresh.num_trace_groups());

    Result<DependencyGraph> inc = builder.BuildWithComposites({});
    Result<DependencyGraph> ref = fresh.BuildWithComposites({});
    ASSERT_TRUE(inc.ok());
    ASSERT_TRUE(ref.ok());
    ExpectGraphsIdentical(*ref, *inc);

    EventId a = log.FindEvent("a");
    EventId b = log.FindEvent("b");
    Result<DependencyGraph> inc_c = builder.BuildWithComposites({{a, b}});
    Result<DependencyGraph> ref_c = fresh.BuildWithComposites({{a, b}});
    ASSERT_TRUE(inc_c.ok());
    ASSERT_TRUE(ref_c.ok());
    ExpectGraphsIdentical(*ref_c, *inc_c);
  }
}

TEST(DependencyGraphBuilderTest, ConcurrentBuildsAreIdentical) {
  EventLog log = SmallLog();
  EventId b = log.FindEvent("b");
  EventId c = log.FindEvent("c");
  const DependencyGraphBuilder builder(log);
  Result<DependencyGraph> ref = builder.BuildWithComposites({{b, c}});
  ASSERT_TRUE(ref.ok());

  constexpr int kThreads = 4;
  std::vector<Result<DependencyGraph>> results;
  results.reserve(kThreads);
  for (int i = 0; i < kThreads; ++i) {
    results.push_back(Status::Internal("not run"));
  }
  std::vector<std::thread> threads;
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&, i] {
      results[static_cast<size_t>(i)] = builder.BuildWithComposites({{b, c}});
    });
  }
  for (std::thread& t : threads) t.join();
  for (const auto& r : results) {
    ASSERT_TRUE(r.ok());
    ExpectGraphsIdentical(*ref, *r);
  }
}

}  // namespace
}  // namespace ems
