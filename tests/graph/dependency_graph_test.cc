#include "graph/dependency_graph.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "paper_example.h"

namespace ems {
namespace {

EventLog SimpleLog() {
  EventLog log;
  // 5 traces: a b c (x3), a c (x1), b c (x1)
  log.AddTrace({"a", "b", "c"});
  log.AddTrace({"a", "b", "c"});
  log.AddTrace({"a", "b", "c"});
  log.AddTrace({"a", "c"});
  log.AddTrace({"b", "c"});
  return log;
}

TEST(DependencyGraphTest, BuildWithoutArtificial) {
  EventLog log = SimpleLog();
  DependencyGraphOptions opts;
  opts.add_artificial_event = false;
  DependencyGraph g = DependencyGraph::Build(log, opts);
  EXPECT_FALSE(g.has_artificial());
  EXPECT_EQ(g.NumNodes(), 3u);
  NodeId a = 0, b = 1, c = 2;
  EXPECT_DOUBLE_EQ(g.NodeFrequency(a), 0.8);
  EXPECT_DOUBLE_EQ(g.NodeFrequency(b), 0.8);
  EXPECT_DOUBLE_EQ(g.NodeFrequency(c), 1.0);
  EXPECT_DOUBLE_EQ(g.EdgeFrequency(a, b), 0.6);
  EXPECT_DOUBLE_EQ(g.EdgeFrequency(b, c), 0.8);
  EXPECT_DOUBLE_EQ(g.EdgeFrequency(a, c), 0.2);
  EXPECT_FALSE(g.HasEdge(c, a));
}

TEST(DependencyGraphTest, ArtificialNodeConnectsEverything) {
  EventLog log = SimpleLog();
  DependencyGraph g = DependencyGraph::Build(log);
  ASSERT_TRUE(g.has_artificial());
  EXPECT_EQ(g.artificial_node(), 0);
  EXPECT_EQ(g.NumNodes(), 4u);
  for (NodeId v = 1; v < 4; ++v) {
    EXPECT_TRUE(g.HasEdge(0, v));
    EXPECT_TRUE(g.HasEdge(v, 0));
    // Artificial edge weight equals the node frequency (Section 2).
    EXPECT_DOUBLE_EQ(g.EdgeFrequency(0, v), g.NodeFrequency(v));
    EXPECT_DOUBLE_EQ(g.EdgeFrequency(v, 0), g.NodeFrequency(v));
  }
}

TEST(DependencyGraphTest, PreAndPostSets) {
  EventLog log = SimpleLog();
  DependencyGraphOptions opts;
  opts.add_artificial_event = false;
  DependencyGraph g = DependencyGraph::Build(log, opts);
  // c's predecessors: a and b.
  auto preds = g.Predecessors(2);
  std::sort(preds.begin(), preds.end());
  EXPECT_EQ(preds, (std::vector<NodeId>{0, 1}));
  EXPECT_TRUE(g.Successors(2).empty());
}

TEST(DependencyGraphTest, MinEdgeFrequencyFilters) {
  EventLog log = SimpleLog();
  DependencyGraphOptions opts;
  opts.min_edge_frequency = 0.5;
  DependencyGraph g = DependencyGraph::Build(log, opts);
  // a->c (0.2) filtered; a->b (0.6) and b->c (0.8) kept.
  NodeId a = 1, b = 2, c = 3;  // shifted by artificial node
  EXPECT_FALSE(g.HasEdge(a, c));
  EXPECT_TRUE(g.HasEdge(a, b));
  EXPECT_TRUE(g.HasEdge(b, c));
  // Artificial edges survive regardless of frequency.
  EXPECT_TRUE(g.HasEdge(0, a));
}

TEST(DependencyGraphTest, FilterEdgesCopy) {
  EventLog log = SimpleLog();
  DependencyGraph g = DependencyGraph::Build(log);
  DependencyGraph filtered = g.FilterEdges(0.5);
  EXPECT_LT(filtered.NumEdges(), g.NumEdges());
  EXPECT_EQ(filtered.NumNodes(), g.NumNodes());
  EXPECT_FALSE(filtered.HasEdge(1, 3));  // a->c gone
}

TEST(DependencyGraphTest, SelfLoopsAreNotEdges) {
  EventLog log;
  log.AddTrace({"a", "a", "b"});
  DependencyGraphOptions opts;
  opts.add_artificial_event = false;
  DependencyGraph g = DependencyGraph::Build(log, opts);
  EXPECT_FALSE(g.HasEdge(0, 0));  // f(v, v) is the node frequency
  EXPECT_TRUE(g.HasEdge(0, 1));
}

TEST(DependencyGraphTest, LongestDistancesOnPaperGraph) {
  DependencyGraph g1 = testing::BuildPaperGraph1();
  const auto& l = g1.LongestDistancesFromArtificial();
  // Node ids shift by 1 for the artificial node.
  EXPECT_EQ(l[0], 0);                            // v^X itself
  EXPECT_EQ(l[1 + testing::A], 1);               // source: only v^X precedes
  EXPECT_EQ(l[1 + testing::B], 1);
  EXPECT_EQ(l[1 + testing::C], 2);               // Example 5
  EXPECT_EQ(l[1 + testing::D], 3);               // Example 5
  // E and F form a 2-cycle (concurrent play-out): no early convergence.
  EXPECT_EQ(l[1 + testing::E], kInfiniteDistance);
  EXPECT_EQ(l[1 + testing::F], kInfiniteDistance);
}

TEST(DependencyGraphTest, LongestDistancesOnDagGraph2) {
  DependencyGraph g2 = testing::BuildPaperGraph2();
  const auto& l = g2.LongestDistancesFromArtificial();
  EXPECT_EQ(l[1 + testing::N1], 1);
  EXPECT_EQ(l[1 + testing::N2], 2);
  EXPECT_EQ(l[1 + testing::N3], 2);
  EXPECT_EQ(l[1 + testing::N4], 3);
  EXPECT_EQ(l[1 + testing::N5], 4);
  EXPECT_EQ(l[1 + testing::N6], 5);
}

TEST(DependencyGraphTest, BackwardLongestDistances) {
  DependencyGraph g2 = testing::BuildPaperGraph2();
  const auto& l = g2.LongestDistancesToArtificial();
  EXPECT_EQ(l[1 + testing::N6], 1);  // sink: only v^X follows
  EXPECT_EQ(l[1 + testing::N5], 2);
  EXPECT_EQ(l[1 + testing::N4], 3);
  EXPECT_EQ(l[1 + testing::N2], 4);
  EXPECT_EQ(l[1 + testing::N1], 5);
}

TEST(DependencyGraphTest, AncestorsAndDescendants) {
  DependencyGraph g2 = testing::BuildPaperGraph2();
  auto anc = g2.Ancestors(1 + testing::N4);
  std::sort(anc.begin(), anc.end());
  EXPECT_EQ(anc, (std::vector<NodeId>{1 + testing::N1, 1 + testing::N2,
                                      1 + testing::N3}));
  auto desc = g2.Descendants(1 + testing::N4);
  std::sort(desc.begin(), desc.end());
  EXPECT_EQ(desc, (std::vector<NodeId>{1 + testing::N5, 1 + testing::N6}));
  // The artificial node never appears in ancestor sets.
  for (NodeId v : g2.Ancestors(1 + testing::N6)) {
    EXPECT_FALSE(g2.IsArtificial(v));
  }
}

TEST(DependencyGraphTest, MergeNodesContractsEdges) {
  DependencyGraph g1 = testing::BuildPaperGraph1();
  Result<DependencyGraph> merged_result =
      g1.MergeNodes({1 + testing::C, 1 + testing::D});
  ASSERT_TRUE(merged_result.ok());
  const DependencyGraph& m = *merged_result;
  EXPECT_EQ(m.NumNodes(), g1.NumNodes() - 1);
  // Find the merged node by member set.
  NodeId merged = -1;
  for (NodeId v = 1; v < static_cast<NodeId>(m.NumNodes()); ++v) {
    if (m.Members(v).size() == 2) merged = v;
  }
  ASSERT_GE(merged, 0);
  EXPECT_DOUBLE_EQ(m.NodeFrequency(merged), 1.0);  // max of members
  // A -> CD (was A -> C) and CD -> E (was D -> E) survive.
  NodeId a = -1, e = -1;
  for (NodeId v = 1; v < static_cast<NodeId>(m.NumNodes()); ++v) {
    if (m.NodeName(v) == "PaidCash") a = v;
    if (m.NodeName(v) == "ShipGoods") e = v;
  }
  ASSERT_GE(a, 0);
  ASSERT_GE(e, 0);
  EXPECT_TRUE(m.HasEdge(a, merged));
  EXPECT_TRUE(m.HasEdge(merged, e));
}

TEST(DependencyGraphTest, MergeNodesRejectsBadInput) {
  DependencyGraph g1 = testing::BuildPaperGraph1();
  EXPECT_TRUE(g1.MergeNodes({1}).status().IsInvalidArgument());
  EXPECT_TRUE(g1.MergeNodes({1, 1}).status().IsInvalidArgument());
  EXPECT_TRUE(g1.MergeNodes({0, 1}).status().IsInvalidArgument());  // v^X
}

TEST(DependencyGraphTest, BuildWithCompositesCollapsesRuns) {
  EventLog log;
  log.AddTrace({"a", "c", "d", "b"});
  log.AddTrace({"a", "c", "d", "b"});
  EventId c = log.FindEvent("c");
  EventId d = log.FindEvent("d");
  Result<DependencyGraph> g =
      DependencyGraph::BuildWithComposites(log, {{c, d}});
  ASSERT_TRUE(g.ok());
  // 4 original events -> 3 nodes (+ artificial).
  EXPECT_EQ(g->NumNodes(), 4u);
  NodeId comp = -1;
  for (NodeId v = 1; v < 4; ++v) {
    if (g->Members(v).size() == 2) comp = v;
  }
  ASSERT_GE(comp, 0);
  EXPECT_EQ(g->NodeName(comp), "c+d");
  std::vector<EventId> members = g->Members(comp);
  std::sort(members.begin(), members.end());
  EXPECT_EQ(members, (std::vector<EventId>{c, d}));
  EXPECT_DOUBLE_EQ(g->NodeFrequency(comp), 1.0);
}

TEST(DependencyGraphTest, BuildWithCompositesRejectsOverlap) {
  EventLog log;
  log.AddTrace({"a", "b", "c"});
  Result<DependencyGraph> g =
      DependencyGraph::BuildWithComposites(log, {{0, 1}, {1, 2}});
  EXPECT_TRUE(g.status().IsInvalidArgument());
}

TEST(DependencyGraphTest, BuildWithCompositesRejectsInvalidIds) {
  EventLog log;
  log.AddTrace({"a"});
  Result<DependencyGraph> g =
      DependencyGraph::BuildWithComposites(log, {{0, 99}});
  EXPECT_TRUE(g.status().IsInvalidArgument());
}

TEST(DependencyGraphTest, AverageDegreeCountsAllEdges) {
  DependencyGraphOptions opts;
  opts.add_artificial_event = false;
  EventLog log = SimpleLog();
  DependencyGraph g = DependencyGraph::Build(log, opts);
  // Edges: a->b, b->c, a->c => 3 edges / 3 nodes.
  EXPECT_DOUBLE_EQ(g.AverageDegree(), 1.0);
}

TEST(DependencyGraphTest, DebugStringMentionsNodes) {
  DependencyGraph g = testing::BuildPaperGraph1();
  std::string s = g.DebugString();
  EXPECT_NE(s.find("PaidCash"), std::string::npos);
  EXPECT_NE(s.find("<X>"), std::string::npos);
}

}  // namespace
}  // namespace ems
